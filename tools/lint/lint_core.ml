(* tdmd-lint: a compiler-libs AST pass enforcing the repo's
   concurrency, I/O and exception-safety invariants.

   Every rule is grounded in a bug this repo actually shipped: the
   [Obj.magic] heap dummy (PR 2), EINTR-unsafe [Unix.read]/[Unix.write]
   (PR 4), leaked mutexes on exception paths, [with _ ->] handlers that
   swallowed [Out_of_memory] during crash-safety reasoning, and float
   equality by polymorphic [=].

   The pass is purely syntactic (Parsetree + Ast_iterator, no typing
   environment), so the record-compare rule works from identifier-name
   heuristics; the fixture corpus under test/lint_fixtures/ pins down
   exactly what each rule does and does not flag. *)

type rule =
  | Obj_magic
  | Bare_unix_io
  | Naked_mutex_lock
  | Catch_all
  | Direct_io
  | Poly_compare_record
  | Float_equal

let all_rules =
  [
    Obj_magic;
    Bare_unix_io;
    Naked_mutex_lock;
    Catch_all;
    Direct_io;
    Poly_compare_record;
    Float_equal;
  ]

let rule_id = function
  | Obj_magic -> "obj-magic"
  | Bare_unix_io -> "bare-unix-io"
  | Naked_mutex_lock -> "naked-mutex-lock"
  | Catch_all -> "catch-all"
  | Direct_io -> "no-direct-io"
  | Poly_compare_record -> "poly-compare-record"
  | Float_equal -> "float-equal"

let rule_of_id = function
  | "obj-magic" -> Some Obj_magic
  | "bare-unix-io" -> Some Bare_unix_io
  | "naked-mutex-lock" -> Some Naked_mutex_lock
  | "catch-all" -> Some Catch_all
  | "no-direct-io" -> Some Direct_io
  | "poly-compare-record" -> Some Poly_compare_record
  | "float-equal" -> Some Float_equal
  | _ -> None

let rule_doc = function
  | Obj_magic ->
    "Obj.magic defeats the type system; PR 2 removed an unsound heap dummy \
     built on it"
  | Bare_unix_io ->
    "bare Unix.read/write/single_write is EINTR- and short-write-unsafe; use \
     Protocol.write_all / Protocol.read_exact"
  | Naked_mutex_lock ->
    "a naked Mutex.lock leaks the mutex if the critical section raises; use \
     Tdmd_prelude.Locked.with_lock"
  | Catch_all ->
    "try ... with _ -> swallows Out_of_memory/Stack_overflow and poisons \
     crash-safety reasoning; match the exceptions you mean"
  | Direct_io ->
    "no direct stdout/stderr in lib/; telemetry flows through Tdmd_obs"
  | Poly_compare_record ->
    "polymorphic =/compare on instance/placement/graph/flow records is \
     allocation-heavy and order-fragile in hot paths; use a dedicated equal"
  | Float_equal ->
    "= against a float literal; use Float.equal or an explicit tolerance"

type diagnostic = { file : string; line : int; rule : string; message : string }

let compare_diagnostic a b =
  match compare a.file b.file with
  | 0 -> (
    match compare a.line b.line with 0 -> compare a.rule b.rule | c -> c)
  | c -> c

let to_string d = Printf.sprintf "%s:%d: [%s] %s" d.file d.line d.rule d.message

(* ------------------------------------------------------------------ *)
(* AST checks                                                          *)
(* ------------------------------------------------------------------ *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

(* Matches [segs] at the end of [path], so both [Obj.magic] and
   [Stdlib.Obj.magic] hit. *)
let ends_with path segs =
  let lp = List.length path and ls = List.length segs in
  lp >= ls && drop (lp - ls) path = segs

(* Identifier-name heuristic for the record-compare rule: strip
   trailing digits, primes and underscores, then an optional plural
   's', and look the stem up.  [inst1], [placement'], [flows] all
   resolve to their record stem. *)
let record_stems = [ "inst"; "instance"; "placement"; "graph"; "flow"; "outcome" ]

let record_ish name =
  let n = String.lowercase_ascii name in
  let len = ref (String.length n) in
  while
    !len > 0
    && match n.[!len - 1] with '0' .. '9' | '_' | '\'' -> true | _ -> false
  do
    decr len
  done;
  let base = String.sub n 0 !len in
  let depluraled =
    if !len > 1 && n.[!len - 1] = 's' then Some (String.sub n 0 (!len - 1))
    else None
  in
  List.mem base record_stems
  || match depluraled with Some d -> List.mem d record_stems | None -> false

let ident_path (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { Asttypes.txt; _ } -> Some (flatten_lid txt)
  | _ -> None

let plain_record_ident (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { Asttypes.txt = Longident.Lident n; _ } ->
    record_ish n
  | _ -> false

let is_float_literal (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_float _) -> true
  | _ -> false

let is_catch_all_pattern (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any -> true
  | Parsetree.Ppat_alias ({ Parsetree.ppat_desc = Parsetree.Ppat_any; _ }, _)
    ->
    true
  | _ -> false

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let collect ~rules ~file structure =
  let out = ref [] in
  let enabled r = List.mem r rules in
  let add r loc message =
    out := { file; line = line_of loc; rule = rule_id r; message } :: !out
  in
  let check_ident loc path =
    if enabled Obj_magic && ends_with path [ "Obj"; "magic" ] then
      add Obj_magic loc "Obj.magic is banned (unsound; see PR 2's heap dummy)";
    if
      enabled Bare_unix_io
      && (ends_with path [ "Unix"; "read" ]
         || ends_with path [ "Unix"; "write" ]
         || ends_with path [ "Unix"; "single_write" ])
    then
      add Bare_unix_io loc
        (Printf.sprintf
           "bare %s is EINTR/short-write-unsafe; use Protocol.write_all / \
            Protocol.read_exact"
           (String.concat "." path));
    if enabled Naked_mutex_lock && ends_with path [ "Mutex"; "lock" ] then
      add Naked_mutex_lock loc
        "naked Mutex.lock leaks the mutex on exceptions; use \
         Tdmd_prelude.Locked.with_lock";
    if enabled Direct_io then begin
      let direct =
        match path with
        | [ "print_endline" ]
        | [ "Stdlib"; "print_endline" ]
        | [ "prerr_endline" ]
        | [ "Stdlib"; "prerr_endline" ]
        | [ "print_string" ]
        | [ "Stdlib"; "print_string" ]
        | [ "prerr_string" ]
        | [ "Stdlib"; "prerr_string" ]
        | [ "print_newline" ]
        | [ "Stdlib"; "print_newline" ]
        | [ "print_int" ]
        | [ "Stdlib"; "print_int" ]
        | [ "print_float" ]
        | [ "Stdlib"; "print_float" ]
        | [ "print_char" ]
        | [ "Stdlib"; "print_char" ] ->
          true
        | _ ->
          ends_with path [ "Printf"; "printf" ]
          || ends_with path [ "Printf"; "eprintf" ]
          || ends_with path [ "Format"; "printf" ]
          || ends_with path [ "Format"; "eprintf" ]
      in
      if direct then
        add Direct_io loc
          (Printf.sprintf "%s in lib/: telemetry must flow through Tdmd_obs"
             (String.concat "." path))
    end
  in
  let check_apply loc f args =
    match ident_path f with
    | None -> ()
    | Some path ->
      let op = match List.rev path with o :: _ -> o | [] -> "" in
      let operands = List.map snd args in
      if
        enabled Float_equal
        && (op = "=" || op = "<>" || op = "==" || op = "!=")
        && List.exists is_float_literal operands
      then
        add Float_equal loc
          (Printf.sprintf
             "(%s) against a float literal; use Float.equal or an explicit \
              tolerance"
             op);
      if
        enabled Poly_compare_record
        && (op = "=" || op = "<>"
           || path = [ "compare" ]
           || path = [ "Stdlib"; "compare" ])
        && List.exists plain_record_ident operands
      then
        add Poly_compare_record loc
          (Printf.sprintf
             "polymorphic %s on an instance/placement/graph/flow value; use a \
              dedicated equal/compare"
             (String.concat "." path))
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      Ast_iterator.expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { Asttypes.txt; _ } ->
            check_ident e.Parsetree.pexp_loc (flatten_lid txt)
          | Parsetree.Pexp_apply (f, args) ->
            check_apply e.Parsetree.pexp_loc f args
          | Parsetree.Pexp_try (_, cases) ->
            if enabled Catch_all then
              List.iter
                (fun (c : Parsetree.case) ->
                  if
                    is_catch_all_pattern c.Parsetree.pc_lhs
                    && c.Parsetree.pc_guard = None
                  then
                    add Catch_all c.Parsetree.pc_lhs.Parsetree.ppat_loc
                      "catch-all handler swallows \
                       Out_of_memory/Stack_overflow; match the exceptions \
                       you mean and re-raise the rest")
                cases
          | Parsetree.Pexp_match (_, cases) ->
            if enabled Catch_all then
              List.iter
                (fun (c : Parsetree.case) ->
                  match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
                  | Parsetree.Ppat_exception p
                    when is_catch_all_pattern p && c.Parsetree.pc_guard = None
                    ->
                    add Catch_all p.Parsetree.ppat_loc
                      "catch-all exception case swallows \
                       Out_of_memory/Stack_overflow; match the exceptions \
                       you mean"
                  | _ -> ())
                cases
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.expr it e);
    }
  in
  iter.Ast_iterator.structure iter structure;
  !out

(* ------------------------------------------------------------------ *)
(* Suppression comments                                                *)
(* ------------------------------------------------------------------ *)

(* [(* tdmd-lint: allow RULE[,RULE]* — reason *)] — the rule list must
   name known rules and the reason is mandatory.  A suppression covers
   the line it sits on and the following line, so both trailing and
   preceding-line comments work. *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

let is_separator tok =
  tok = "\xe2\x80\x94" (* em dash *) || tok = "-" || tok = "--"
  || String.length tok >= 3 && String.sub tok 0 3 = "\xe2\x80\x94"

let parse_suppression ~file ~line text =
  (* [text] is everything after "tdmd-lint: allow" up to "*)" or EOL. *)
  let tokens =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  let rec take_rules acc = function
    | tok :: rest when not (is_separator tok) -> (
      match rule_of_id tok with
      | Some r -> take_rules (r :: acc) rest
      | None -> (List.rev acc, Some tok, rest))
    | rest -> (List.rev acc, None, rest)
  in
  let rules, bad, rest = take_rules [] tokens in
  let reason =
    match rest with
    | sep :: tail when is_separator sep -> String.concat " " tail
    | tail -> String.concat " " tail
  in
  match (rules, bad) with
  | _, Some tok ->
    Error
      {
        file;
        line;
        rule = "suppression";
        message = Printf.sprintf "unknown rule %S in suppression comment" tok;
      }
  | [], None ->
    Error
      {
        file;
        line;
        rule = "suppression";
        message = "suppression comment names no rule";
      }
  | rules, None ->
    if String.trim reason = "" then
      Error
        {
          file;
          line;
          rule = "suppression";
          message =
            "suppression comment needs a reason: (* tdmd-lint: allow RULE \
             \xe2\x80\x94 reason *)";
        }
    else Ok rules

let scan_suppressions ~file source =
  let table : (int, rule list) Hashtbl.t = Hashtbl.create 8 in
  let errors = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line_text ->
      let line = i + 1 in
      match find_sub line_text "tdmd-lint: allow" 0 with
      | None -> ()
      | Some at ->
        let start = at + String.length "tdmd-lint: allow" in
        let stop =
          match find_sub line_text "*)" start with
          | Some e -> e
          | None -> String.length line_text
        in
        let text = String.sub line_text start (stop - start) in
        (match parse_suppression ~file ~line text with
        | Ok rules ->
          let prev =
            match Hashtbl.find_opt table line with Some rs -> rs | None -> []
          in
          Hashtbl.replace table line (rules @ prev)
        | Error d -> errors := d :: !errors))
    lines;
  (table, !errors)

let suppressed table rule line =
  let covers l =
    match Hashtbl.find_opt table l with
    | Some rules -> List.exists (fun r -> rule_id r = rule) rules
    | None -> false
  in
  covers line || covers (line - 1)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let parse_string ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let lint_source ?(rules = all_rules) ~file source =
  match parse_string ~file source with
  | exception exn ->
    let line =
      match exn with
      | Syntaxerr.Error e -> line_of (Syntaxerr.location_of_error e)
      | _ -> 1
    in
    [ { file; line; rule = "parse-error"; message = "cannot parse file" } ]
  | structure ->
    let raw = collect ~rules ~file structure in
    let table, sup_errors = scan_suppressions ~file source in
    let kept =
      List.filter (fun d -> not (suppressed table d.rule d.line)) raw
    in
    List.sort compare_diagnostic (sup_errors @ kept)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?rules path = lint_source ?rules ~file:path (read_file path)

(* ------------------------------------------------------------------ *)
(* Per-path rule policy                                                *)
(* ------------------------------------------------------------------ *)

(* The repo's scoping contract:
   - obj-magic, float-equal: everywhere;
   - bare-unix-io: everywhere except the EINTR-safe wrappers themselves
     (lib/server/protocol.ml);
   - naked-mutex-lock: everywhere except the combinator's own
     implementation (lib/prelude/locked.ml);
   - no-direct-io: lib/ only (bin/bench/test own their stdout);
   - catch-all: everywhere except test/ (tests may shrug at cleanup);
   - poly-compare-record: lib/core/ hot paths only. *)
let rules_for_path path =
  let under dir =
    let p = dir ^ "/" in
    String.length path >= String.length p
    && String.sub path 0 (String.length p) = p
  in
  List.filter
    (fun r ->
      match r with
      | Obj_magic | Float_equal -> true
      | Bare_unix_io -> path <> "lib/server/protocol.ml"
      | Naked_mutex_lock -> path <> "lib/prelude/locked.ml"
      | Direct_io -> under "lib"
      | Catch_all -> not (under "test")
      | Poly_compare_record -> under "lib/core")
    all_rules

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let baseline_key d = Printf.sprintf "%s:%d:%s" d.file d.line d.rule

let load_baseline path =
  let table = Hashtbl.create 16 in
  (if Sys.file_exists path then
     let content = read_file path in
     List.iter
       (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then Hashtbl.replace table line ())
       (String.split_on_char '\n' content));
  table

let baseline_entries diagnostics =
  List.map baseline_key (List.sort compare_diagnostic diagnostics)

(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diagnostics_to_json diagnostics =
  let item d =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
      (json_escape d.file) d.line (json_escape d.rule) (json_escape d.message)
  in
  Printf.sprintf "{\"tool\":\"tdmd-lint\",\"count\":%d,\"violations\":[%s]}"
    (List.length diagnostics)
    (String.concat "," (List.map item diagnostics))
