(* tdmd-lint: a compiler-libs AST pass enforcing the repo's per-file
   concurrency, I/O and exception-safety invariants.  (Whole-program
   properties — lock ordering, domain escape, string registries — live
   in tools/analyze; the shared suppression/baseline/report machinery
   lives in tools/kit.)

   Every rule is grounded in a bug this repo actually shipped: the
   [Obj.magic] heap dummy (PR 2), EINTR-unsafe [Unix.read]/[Unix.write]
   (PR 4), leaked mutexes on exception paths, [with _ ->] handlers that
   swallowed [Out_of_memory] during crash-safety reasoning, and float
   equality by polymorphic [=].

   The pass is purely syntactic (Parsetree + Ast_iterator, no typing
   environment), so the record-compare rule works from identifier-name
   heuristics; the fixture corpus under test/lint_fixtures/ pins down
   exactly what each rule does and does not flag.  Both [.ml] and
   [.mli] files are linted: interfaces carry expressions in attribute
   payloads and those are held to the same rules. *)

module K = Check_kit

type rule =
  | Obj_magic
  | Bare_unix_io
  | Naked_mutex_lock
  | Catch_all
  | Direct_io
  | Poly_compare_record
  | Float_equal

let all_rules =
  [
    Obj_magic;
    Bare_unix_io;
    Naked_mutex_lock;
    Catch_all;
    Direct_io;
    Poly_compare_record;
    Float_equal;
  ]

let rule_id = function
  | Obj_magic -> "obj-magic"
  | Bare_unix_io -> "bare-unix-io"
  | Naked_mutex_lock -> "naked-mutex-lock"
  | Catch_all -> "catch-all"
  | Direct_io -> "no-direct-io"
  | Poly_compare_record -> "poly-compare-record"
  | Float_equal -> "float-equal"

let rule_of_id = function
  | "obj-magic" -> Some Obj_magic
  | "bare-unix-io" -> Some Bare_unix_io
  | "naked-mutex-lock" -> Some Naked_mutex_lock
  | "catch-all" -> Some Catch_all
  | "no-direct-io" -> Some Direct_io
  | "poly-compare-record" -> Some Poly_compare_record
  | "float-equal" -> Some Float_equal
  | _ -> None

let rule_doc = function
  | Obj_magic ->
    "Obj.magic defeats the type system; PR 2 removed an unsound heap dummy \
     built on it"
  | Bare_unix_io ->
    "bare Unix.read/write/single_write is EINTR- and short-write-unsafe; use \
     Protocol.write_all / Protocol.read_exact"
  | Naked_mutex_lock ->
    "a naked Mutex.lock leaks the mutex if the critical section raises; use \
     Tdmd_prelude.Locked.with_lock"
  | Catch_all ->
    "try ... with _ -> swallows Out_of_memory/Stack_overflow and poisons \
     crash-safety reasoning; match the exceptions you mean"
  | Direct_io ->
    "no direct stdout/stderr in lib/; telemetry flows through Tdmd_obs"
  | Poly_compare_record ->
    "polymorphic =/compare on instance/placement/graph/flow records is \
     allocation-heavy and order-fragile in hot paths; use a dedicated equal"
  | Float_equal ->
    "= against a float literal; use Float.equal or an explicit tolerance"

type diagnostic = K.diagnostic = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

let compare_diagnostic = K.compare_diagnostic
let to_string = K.to_string

(* ------------------------------------------------------------------ *)
(* AST checks                                                          *)
(* ------------------------------------------------------------------ *)

let flatten_lid = K.flatten_lid
let ends_with = K.ends_with

(* Identifier-name heuristic for the record-compare rule: strip
   trailing digits, primes and underscores, then an optional plural
   's', and look the stem up.  [inst1], [placement'], [flows] all
   resolve to their record stem. *)
let record_stems = [ "inst"; "instance"; "placement"; "graph"; "flow"; "outcome" ]

let record_ish name =
  let n = String.lowercase_ascii name in
  let len = ref (String.length n) in
  while
    !len > 0
    && match n.[!len - 1] with '0' .. '9' | '_' | '\'' -> true | _ -> false
  do
    decr len
  done;
  let base = String.sub n 0 !len in
  let depluraled =
    if !len > 1 && n.[!len - 1] = 's' then Some (String.sub n 0 (!len - 1))
    else None
  in
  List.mem base record_stems
  || match depluraled with Some d -> List.mem d record_stems | None -> false

let ident_path (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { Asttypes.txt; _ } -> Some (flatten_lid txt)
  | _ -> None

let plain_record_ident (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { Asttypes.txt = Longident.Lident n; _ } ->
    record_ish n
  | _ -> false

let is_float_literal (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_float _) -> true
  | _ -> false

let is_catch_all_pattern (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any -> true
  | Parsetree.Ppat_alias ({ Parsetree.ppat_desc = Parsetree.Ppat_any; _ }, _)
    ->
    true
  | _ -> false

let line_of = K.line_of

let collect ~rules ~file ast =
  let out = ref [] in
  let enabled r = List.mem r rules in
  let add r loc message =
    out := { file; line = line_of loc; rule = rule_id r; message } :: !out
  in
  let check_ident loc path =
    if enabled Obj_magic && ends_with path [ "Obj"; "magic" ] then
      add Obj_magic loc "Obj.magic is banned (unsound; see PR 2's heap dummy)";
    if
      enabled Bare_unix_io
      && (ends_with path [ "Unix"; "read" ]
         || ends_with path [ "Unix"; "write" ]
         || ends_with path [ "Unix"; "single_write" ])
    then
      add Bare_unix_io loc
        (Printf.sprintf
           "bare %s is EINTR/short-write-unsafe; use Protocol.write_all / \
            Protocol.read_exact"
           (String.concat "." path));
    if enabled Naked_mutex_lock && ends_with path [ "Mutex"; "lock" ] then
      add Naked_mutex_lock loc
        "naked Mutex.lock leaks the mutex on exceptions; use \
         Tdmd_prelude.Locked.with_lock";
    if enabled Direct_io then begin
      let direct =
        match path with
        | [ "print_endline" ]
        | [ "Stdlib"; "print_endline" ]
        | [ "prerr_endline" ]
        | [ "Stdlib"; "prerr_endline" ]
        | [ "print_string" ]
        | [ "Stdlib"; "print_string" ]
        | [ "prerr_string" ]
        | [ "Stdlib"; "prerr_string" ]
        | [ "print_newline" ]
        | [ "Stdlib"; "print_newline" ]
        | [ "print_int" ]
        | [ "Stdlib"; "print_int" ]
        | [ "print_float" ]
        | [ "Stdlib"; "print_float" ]
        | [ "print_char" ]
        | [ "Stdlib"; "print_char" ] ->
          true
        | _ ->
          ends_with path [ "Printf"; "printf" ]
          || ends_with path [ "Printf"; "eprintf" ]
          || ends_with path [ "Format"; "printf" ]
          || ends_with path [ "Format"; "eprintf" ]
      in
      if direct then
        add Direct_io loc
          (Printf.sprintf "%s in lib/: telemetry must flow through Tdmd_obs"
             (String.concat "." path))
    end
  in
  let check_apply loc f args =
    match ident_path f with
    | None -> ()
    | Some path ->
      let head = match List.rev path with o :: _ -> o | [] -> "" in
      let operands = List.map snd args in
      if
        enabled Float_equal
        && (head = "=" || head = "<>" || head = "==" || head = "!=")
        && List.exists is_float_literal operands
      then
        add Float_equal loc
          (Printf.sprintf
             "(%s) against a float literal; use Float.equal or an explicit \
              tolerance"
             head);
      if
        enabled Poly_compare_record
        && (head = "=" || head = "<>"
           || path = [ "compare" ]
           || path = [ "Stdlib"; "compare" ])
        && List.exists plain_record_ident operands
      then
        add Poly_compare_record loc
          (Printf.sprintf
             "polymorphic %s on an instance/placement/graph/flow value; use a \
              dedicated equal/compare"
             (String.concat "." path))
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      Ast_iterator.expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { Asttypes.txt; _ } ->
            check_ident e.Parsetree.pexp_loc (flatten_lid txt)
          | Parsetree.Pexp_apply (f, args) ->
            check_apply e.Parsetree.pexp_loc f args
          | Parsetree.Pexp_try (_, cases) ->
            if enabled Catch_all then
              List.iter
                (fun (c : Parsetree.case) ->
                  if
                    is_catch_all_pattern c.Parsetree.pc_lhs
                    && c.Parsetree.pc_guard = None
                  then
                    add Catch_all c.Parsetree.pc_lhs.Parsetree.ppat_loc
                      "catch-all handler swallows \
                       Out_of_memory/Stack_overflow; match the exceptions \
                       you mean and re-raise the rest")
                cases
          | Parsetree.Pexp_match (_, cases) ->
            if enabled Catch_all then
              List.iter
                (fun (c : Parsetree.case) ->
                  match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
                  | Parsetree.Ppat_exception p
                    when is_catch_all_pattern p && c.Parsetree.pc_guard = None
                    ->
                    add Catch_all p.Parsetree.ppat_loc
                      "catch-all exception case swallows \
                       Out_of_memory/Stack_overflow; match the exceptions \
                       you mean"
                  | _ -> ())
                cases
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.expr it e);
    }
  in
  K.iter_ast iter ast;
  !out

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let marker = "tdmd-lint"
let known_rule id = rule_of_id id <> None

let parse_string ~file source =
  match K.parse_ast ~file source with
  | K.Impl s -> s
  | K.Intf _ -> []

let lint_source ?(rules = all_rules) ~file source =
  match K.parse_ast ~file source with
  | exception exn -> [ K.parse_error_diagnostic ~file exn ]
  | ast ->
    let raw = collect ~rules ~file ast in
    let table, sup_errors =
      K.scan_suppressions ~marker ~known_rule ~file source
    in
    let kept =
      List.filter (fun d -> not (K.suppressed table d.rule d.line)) raw
    in
    List.sort compare_diagnostic (sup_errors @ kept)

let read_file = K.read_file
let lint_file ?rules path = lint_source ?rules ~file:path (read_file path)

(* ------------------------------------------------------------------ *)
(* Per-path rule policy                                                *)
(* ------------------------------------------------------------------ *)

(* The repo's scoping contract:
   - obj-magic, float-equal: everywhere;
   - bare-unix-io: everywhere except the EINTR-safe wrappers themselves
     (lib/server/protocol.ml and its interface);
   - naked-mutex-lock: everywhere except the combinator's own
     implementation (lib/prelude/locked.ml);
   - no-direct-io: lib/ only (bin/bench/test own their stdout);
   - catch-all: everywhere except test/ (tests may shrug at cleanup);
   - poly-compare-record: lib/core/ hot paths only.
   An [.mli] inherits the policy of its implementation. *)
let rules_for_path path =
  let path =
    if Filename.check_suffix path ".mli" then Filename.chop_suffix path "i"
    else path
  in
  let under dir =
    let p = dir ^ "/" in
    String.length path >= String.length p
    && String.sub path 0 (String.length p) = p
  in
  List.filter
    (fun r ->
      match r with
      | Obj_magic | Float_equal -> true
      | Bare_unix_io -> path <> "lib/server/protocol.ml"
      | Naked_mutex_lock -> path <> "lib/prelude/locked.ml"
      | Direct_io -> under "lib"
      | Catch_all -> not (under "test")
      | Poly_compare_record -> under "lib/core")
    all_rules

(* ------------------------------------------------------------------ *)
(* Baseline and reports (shared with tdmd-analyze via Check_kit)       *)
(* ------------------------------------------------------------------ *)

let baseline_key = K.baseline_key
let load_baseline = K.load_baseline
let baseline_entries = K.baseline_entries
let json_escape = K.json_escape
let diagnostics_to_json diagnostics = K.diagnostics_to_json ~tool:marker diagnostics
