(* Command-line driver for tdmd-lint.

   Usage: tdmd_lint [options] PATH...
   Paths are files or directories (searched recursively for .ml files,
   skipping _build and .git).  Diagnostics print as
   "file:line: [rule] message"; the exit status is 1 when any
   non-baselined violation remains, 2 on usage errors. *)

let usage = "tdmd_lint [options] PATH...\nOptions:"

let baseline_file = ref ""
let update_baseline = ref false
let json_out = ref ""
let excludes = ref []
let list_rules = ref false
let roots = ref []

let spec =
  [
    ( "--baseline",
      Arg.Set_string baseline_file,
      "FILE grandfathered violations (one file:line:rule per line)" );
    ( "--update-baseline",
      Arg.Set update_baseline,
      " rewrite the baseline file with every current violation" );
    ("--json", Arg.Set_string json_out, "FILE write a JSON report");
    ( "--exclude",
      Arg.String (fun p -> excludes := p :: !excludes),
      "PATH skip files under this path (repeatable)" );
    ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
  ]

let normalize path =
  (* "./lib//server" -> "lib/server"; keeps diagnostics and the
     baseline stable however the tool is invoked. *)
  let parts =
    String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")
  in
  String.concat "/" parts

let excluded path =
  List.exists
    (fun e ->
      let e = normalize e in
      path = e
      || String.length path > String.length e
         && String.sub path 0 (String.length e + 1) = e ^ "/")
    !excludes

let rec walk acc path =
  let path = normalize path in
  if excluded path then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "_build" || name = ".git" then acc
        else walk acc (Filename.concat path name))
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%-22s %s\n" (Lint_core.rule_id r) (Lint_core.rule_doc r))
      Lint_core.all_rules;
    exit 0
  end;
  if !roots = [] then begin
    prerr_endline "tdmd-lint: no paths given";
    Arg.usage spec usage;
    exit 2
  end;
  let files =
    List.sort_uniq compare (List.fold_left walk [] (List.rev !roots))
  in
  let diagnostics =
    List.concat_map
      (fun file ->
        let rules = Lint_core.rules_for_path file in
        Lint_core.lint_file ~rules file)
      files
  in
  let diagnostics = List.sort Lint_core.compare_diagnostic diagnostics in
  if !update_baseline then begin
    if !baseline_file = "" then begin
      prerr_endline "tdmd-lint: --update-baseline needs --baseline FILE";
      exit 2
    end;
    let oc = open_out !baseline_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc
          "# tdmd-lint baseline: grandfathered violations (file:line:rule).\n\
           # Regenerate with: tdmd_lint --baseline FILE --update-baseline \
           PATH...\n";
        List.iter
          (fun entry -> output_string oc (entry ^ "\n"))
          (Lint_core.baseline_entries diagnostics));
    Printf.printf "tdmd-lint: baseline updated with %d entries\n"
      (List.length diagnostics);
    exit 0
  end;
  let baseline =
    if !baseline_file = "" then Hashtbl.create 1
    else Lint_core.load_baseline !baseline_file
  in
  let fresh, grandfathered =
    List.partition
      (fun d -> not (Hashtbl.mem baseline (Lint_core.baseline_key d)))
      diagnostics
  in
  (* Stale baseline entries are fixed sites: prompt for a re-baseline so
     the file only ever shrinks deliberately. *)
  let live = Hashtbl.create 16 in
  List.iter
    (fun d -> Hashtbl.replace live (Lint_core.baseline_key d) ())
    grandfathered;
  Hashtbl.iter
    (fun key () ->
      if not (Hashtbl.mem live key) then
        Printf.eprintf
          "tdmd-lint: stale baseline entry %s (fixed? run --update-baseline)\n"
          key)
    baseline;
  if !json_out <> "" then begin
    let oc = open_out !json_out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Lint_core.diagnostics_to_json fresh);
        output_char oc '\n')
  end;
  List.iter (fun d -> print_endline (Lint_core.to_string d)) fresh;
  if fresh <> [] then begin
    Printf.eprintf
      "tdmd-lint: %d violation(s) in %d file(s) scanned (%d grandfathered)\n"
      (List.length fresh) (List.length files)
      (List.length grandfathered);
    exit 1
  end
  else
    Printf.eprintf "tdmd-lint: clean — %d file(s) scanned, %d grandfathered\n"
      (List.length files)
      (List.length grandfathered)
