(* Command-line driver for tdmd-lint.

   Usage: tdmd_lint [options] PATH...
   Paths are files or directories (searched recursively for .ml/.mli
   files, skipping _build and .git).  Diagnostics print as
   "file:line: [rule] message"; the exit status is 1 when any
   non-baselined violation remains (or, under --check-baseline, when a
   baseline entry no longer fires), 2 on usage errors.  All flag
   handling lives in Check_kit.main, shared with tdmd-analyze. *)

let () =
  Check_kit.main
    {
      Check_kit.name = "tdmd-lint";
      suffixes = [ ".ml"; ".mli" ];
      rule_catalogue =
        List.map
          (fun r -> (Lint_core.rule_id r, Lint_core.rule_doc r))
          Lint_core.all_rules;
      extra_spec = [];
      analyze =
        (fun ~files ->
          List.concat_map
            (fun file ->
              let rules = Lint_core.rules_for_path file in
              Lint_core.lint_file ~rules file)
            files);
    }
