(* tdmd-analyze: whole-program static analysis over the repo's sources
   (compiler-libs only, like tdmd-lint; the shared suppression /
   baseline / report machinery lives in tools/kit).

   Where tdmd-lint checks one file at a time, this pass parses every
   .ml/.mli once, builds a per-module value-level call graph, and runs
   three interprocedural analyses:

   - lock-order: every [Locked.with_lock] / [Mutex.lock] site is an
     acquisition of a lock class (Module.field); held-lock sets
     propagate through the call graph, acquisitions while holding
     another lock become order edges, and any cycle in the resulting
     order graph is a potential deadlock, reported with the full
     witness path ("A.f acquires l2 at file:line while holding l1").
     Acquiring a lock you already hold is reported too (OCaml's Mutex
     is not reentrant).  Closures passed to Thread.create /
     Domain.spawn / Pool.submit run on a fresh thread, so traversal
     resets the held set for them — spawning while holding a lock is
     not nesting.

   - domain-escape: mutable state (record mutable fields, refs, arrays,
     Hashtbl/Queue/Buffer/...) mutated inside a closure passed to a
     spawn primitive must be under a [Locked.with_lock] (or a detected
     lock wrapper) or go through [Atomic]; this is the static
     counterpart of the Parallel.map race PR 2's review caught by
     hand.  The pass follows calls to same-module functions from the
     closure; cross-module callees are trusted to guard their own
     state.

   - registry consistency: wire op names, wire error codes, fault
     points and telemetry counter names are string literals scattered
     across protocol.ml / session.ml / client.ml / tests; each use must
     appear in the single declared registry (tools/analyze/registry.txt)
     and every registry entry must still be referenced somewhere, so
     the two can never drift apart silently.

   Everything is syntactic (Parsetree + Ast_iterator, no typing
   environment): lock identity is "innermost module . field name",
   calls resolve by module-qualified value name, and the fixture corpus
   under test/analyze_fixtures pins down exactly what each rule does
   and does not flag. *)

module K = Check_kit
open Parsetree

(* ------------------------------------------------------------------ *)
(* Rule catalogue                                                      *)
(* ------------------------------------------------------------------ *)

let rule_lock = "lock-order"
let rule_escape = "domain-escape"
let rule_op = "wire-op"
let rule_code = "wire-code"
let rule_fault = "fault-point"
let rule_counter = "counter-name"

let rule_catalogue =
  [
    ( rule_lock,
      "cycle (or re-entry) in the whole-program lock-acquisition order \
       graph: a potential deadlock, reported with its witness path" );
    ( rule_escape,
      "mutable state mutated inside a closure passed to Thread.create / \
       Domain.spawn / Pool.submit without with_lock or Atomic" );
    (rule_op, "wire op literal that is not in the declared registry");
    (rule_code, "wire error-code literal that is not in the declared registry");
    ( rule_fault,
      "fault point passed or injected that is not in the declared registry, \
       or registered but never passed by a code site" );
    ( rule_counter,
      "telemetry counter bumped or read that is not in the declared \
       registry, or registered but never touched" );
  ]

let known_rule id = List.mem_assoc id rule_catalogue

(* ------------------------------------------------------------------ *)
(* Registry file                                                       *)
(* ------------------------------------------------------------------ *)

module Registry = struct
  type entry = { kind : string; name : string; line : int }
  type t = { path : string; entries : entry list }

  let kinds = [ "op"; "code"; "fault"; "counter" ]
  let empty = { path = ""; entries = [] }

  (* One declaration per line: "KIND NAME", '#' comments and blank
     lines ignored. *)
  let load path =
    let entries = ref [] and errors = ref [] in
    List.iteri
      (fun i raw ->
        let line = i + 1 in
        let s = String.trim raw in
        if s = "" || s.[0] = '#' then ()
        else
          match String.index_opt s ' ' with
          | Some sp
            when List.mem (String.sub s 0 sp) kinds
                 && String.trim
                      (String.sub s (sp + 1) (String.length s - sp - 1))
                    <> "" ->
            entries :=
              {
                kind = String.sub s 0 sp;
                name =
                  String.trim (String.sub s (sp + 1) (String.length s - sp - 1));
                line;
              }
              :: !entries
          | _ ->
            errors :=
              {
                K.file = path;
                line;
                rule = "registry";
                message =
                  Printf.sprintf
                    "malformed registry line %S (expected \"KIND NAME\" with \
                     KIND one of %s)"
                    s
                    (String.concat "/" kinds);
              }
              :: !errors)
      (String.split_on_char '\n' (K.read_file path));
    ({ path; entries = List.rev !entries }, List.rev !errors)

  let mem t kind name =
    List.exists (fun e -> e.kind = kind && e.name = name) t.entries
end

(* ------------------------------------------------------------------ *)
(* Parsed files, module environment, call-graph bindings               *)
(* ------------------------------------------------------------------ *)

type pfile = {
  p_path : string;
  p_source : string;
  p_ast : K.ast;
  p_mod : string;  (* capitalized basename: lib/server/engine.ml -> Engine *)
}

type binding = {
  b_file : string;  (* path, for same-module checks *)
  b_mod : string;  (* innermost module segment, e.g. "Pool" *)
  b_name : string;
  b_expr : expression;
}

type genv = {
  bindings : (string * string, binding) Hashtbl.t;
  (* module-local lock wrappers, e.g. Session.locked / Server.with_tel:
     (mod, name) -> lock class their closure argument runs under *)
  wrappers : (string * string, string) Hashtbl.t;
  (* per file path: local module aliases, e.g. "Tel" -> "Telemetry" *)
  aliases : (string, (string, string) Hashtbl.t) Hashtbl.t;
}

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let contains_sub s sub = K.find_sub s sub 0 <> None
let is_fixture path = contains_sub path "analyze_fixtures"

let under dir path =
  let p = dir ^ "/" in
  String.length path >= String.length p
  && String.sub path 0 (String.length p) = p

(* Scoping: concurrency rules skip test/ (ad-hoc test threads are not
   production locking discipline) except the analyzer's own fixtures;
   registry collection skips tools/ (the analyzers' sources quote rule
   names and grammar fragments, not live wire strings) and test/
   (tests deliberately send unknown ops and bump scratch counters to
   exercise the error paths the registry exists to keep honest). *)
let lock_scope path = is_fixture path || not (under "test" path)
let escape_scope path = is_fixture path || under "lib" path

let registry_scope path =
  is_fixture path || not (under "tools" path || under "test" path)

let last_seg path = match List.rev path with s :: _ -> s | [] -> ""

let ident_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { Asttypes.txt; _ } -> Some (K.flatten_lid txt)
  | _ -> None

let string_const (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

let pat_vars p =
  let acc = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      Ast_iterator.pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { Asttypes.txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { Asttypes.txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.pat it p);
    }
  in
  iter.Ast_iterator.pat iter p;
  !acc

let rec peel_params acc e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
    let name =
      match pat.ppat_desc with
      | Ppat_var { Asttypes.txt; _ } -> Some txt
      | _ -> None
    in
    peel_params (acc @ [ name ]) body
  | _ -> (acc, e)

let rec module_items me =
  match me.pmod_desc with
  | Pmod_structure items -> Some items
  | Pmod_constraint (me, _) -> module_items me
  | _ -> None

let build_genv pfiles =
  let g =
    {
      bindings = Hashtbl.create 512;
      wrappers = Hashtbl.create 8;
      aliases = Hashtbl.create 32;
    }
  in
  let add_binding b =
    let key = (b.b_mod, b.b_name) in
    (* On cross-file collisions (two modules named Main, two submodules
       named Config) prefer lib/: that is where the shared state and
       locks the analyses care about live. *)
    match Hashtbl.find_opt g.bindings key with
    | Some old when under "lib" old.b_file && not (under "lib" b.b_file) -> ()
    | _ -> Hashtbl.replace g.bindings key b
  in
  List.iter
    (fun pf ->
      let amap = Hashtbl.create 8 in
      Hashtbl.replace g.aliases pf.p_path amap;
      match pf.p_ast with
      | K.Intf _ -> ()
      | K.Impl structure ->
        let rec go modseg items =
          List.iter
            (fun item ->
              match item.pstr_desc with
              | Pstr_value (_, vbs) ->
                List.iter
                  (fun vb ->
                    match vb.pvb_pat.ppat_desc with
                    | Ppat_var { Asttypes.txt; _ } ->
                      add_binding
                        {
                          b_file = pf.p_path;
                          b_mod = modseg;
                          b_name = txt;
                          b_expr = vb.pvb_expr;
                        }
                    | _ -> ())
                  vbs
              | Pstr_module mb -> (
                match (mb.pmb_name.Asttypes.txt, mb.pmb_expr.pmod_desc) with
                | Some name, Pmod_ident { Asttypes.txt; _ } ->
                  (* module Tel = Tdmd_obs.Telemetry: calls through the
                     alias resolve to the target's last segment. *)
                  Hashtbl.replace amap name (last_seg (K.flatten_lid txt))
                | Some name, _ -> (
                  match module_items mb.pmb_expr with
                  | Some items -> go name items
                  | None -> ())
                | None, _ -> ())
              | _ -> ())
            items
        in
        go pf.p_mod structure)
    pfiles;
  (* Lock-wrapper detection: a binding whose whole body is
     [with_lock <lock-of-param> k] where [k] is a function parameter
     (Session.locked) or a lambda immediately applying one
     (Server.with_tel).  Call sites then count as acquisitions of the
     wrapped lock, with their closure argument running under it. *)
  Hashtbl.iter
    (fun (bmod, bname) b ->
      let params, body = peel_params [] b.b_expr in
      let param_names = List.filter_map Fun.id params in
      match body.pexp_desc with
      | Pexp_apply (f, args) when List.length args >= 2 -> (
        match ident_path f with
        | Some path when K.ends_with path [ "Locked"; "with_lock" ] -> (
          let is_param e =
            match e.pexp_desc with
            | Pexp_ident { Asttypes.txt = Longident.Lident n; _ } ->
              List.mem n param_names
            | _ -> false
          in
          let applies_param e =
            match e.pexp_desc with
            | Pexp_fun (_, _, _, inner) -> (
              match inner.pexp_desc with
              | Pexp_apply (h, _) -> is_param h
              | _ -> false)
            | _ -> is_param e
          in
          match List.map snd args with
          | lock_arg :: rest when List.exists applies_param rest ->
            let lock_name =
              let leaf e =
                match e.pexp_desc with
                | Pexp_field (_, { Asttypes.txt; _ }) ->
                  last_seg (K.flatten_lid txt)
                | Pexp_ident { Asttypes.txt; _ } ->
                  last_seg (K.flatten_lid txt)
                | _ -> "<lock>"
              in
              leaf lock_arg
            in
            Hashtbl.replace g.wrappers (bmod, bname)
              (b.b_mod ^ "." ^ lock_name)
          | _ -> ())
        | _ -> ())
      | _ -> ())
    g.bindings;
  g

let aliases_of g path =
  match Hashtbl.find_opt g.aliases path with
  | Some t -> t
  | None -> Hashtbl.create 1

let resolve_name ~amap ~cur_mod path =
  match List.rev path with
  | [] -> None
  | name :: rev ->
    let modseg =
      match rev with
      | [] -> cur_mod
      | m :: _ -> (
        match Hashtbl.find_opt amap m with Some r -> r | None -> m)
    in
    Some (modseg, name)

let is_with_lock path = K.ends_with path [ "Locked"; "with_lock" ]
let is_mutex_lock path = K.ends_with path [ "Mutex"; "lock" ]

let spawn_name path =
  if K.ends_with path [ "Thread"; "create" ] then Some "Thread.create"
  else if K.ends_with path [ "Domain"; "spawn" ] then Some "Domain.spawn"
  else if K.ends_with path [ "Pool"; "submit" ] then Some "Pool.submit"
  else None

let lock_class ~cur_mod e =
  let rec leaf e =
    match e.pexp_desc with
    | Pexp_field (_, { Asttypes.txt; _ }) -> last_seg (K.flatten_lid txt)
    | Pexp_ident { Asttypes.txt; _ } -> last_seg (K.flatten_lid txt)
    | Pexp_constraint (e, _) -> leaf e
    | _ -> "<lock>"
  in
  cur_mod ^ "." ^ leaf e

(* ------------------------------------------------------------------ *)
(* Lock-order analysis                                                 *)
(* ------------------------------------------------------------------ *)

type acq = {
  a_key : string * string;  (* enclosing top-level binding *)
  a_fn : string;  (* display: "Server.reader" *)
  a_lock : string;
  a_file : string;
  a_line : int;
  a_held : string list;
  a_spawned : bool;  (* inside a spawned closure: runs on a new thread *)
}

type callsite = {
  c_key : string * string;
  c_fn : string;
  c_target : string * string;
  c_file : string;
  c_line : int;
  c_held : string list;
  c_spawned : bool;
}

let collect_lock_facts g pf =
  let acqs = ref [] and calls = ref [] in
  match pf.p_ast with
  | K.Intf _ -> ([], [])
  | K.Impl structure ->
    let amap = aliases_of g pf.p_path in
    let held = ref [] in
    let in_spawn = ref false in
    let cur_mod = ref pf.p_mod in
    let cur_key = ref (pf.p_mod, "<top>") in
    let display () = fst !cur_key ^ "." ^ snd !cur_key in
    let iter = ref Ast_iterator.default_iterator in
    let walk e = !iter.Ast_iterator.expr !iter e in
    let expr _it e =
      match e.pexp_desc with
      | Pexp_apply (f, args) -> (
        let loc = K.line_of e.pexp_loc in
        match ident_path f with
        | None ->
          walk f;
          List.iter (fun (_, a) -> walk a) args
        | Some path -> (
          let resolved = resolve_name ~amap ~cur_mod:!cur_mod path in
          let wrapper_class =
            match resolved with
            | Some key -> Hashtbl.find_opt g.wrappers key
            | None -> None
          in
          let acquire cls =
            acqs :=
              {
                a_key = !cur_key;
                a_fn = display ();
                a_lock = cls;
                a_file = pf.p_path;
                a_line = loc;
                a_held = List.sort_uniq compare !held;
                a_spawned = !in_spawn;
              }
              :: !acqs
          in
          if is_with_lock path then begin
            (match List.map snd args with
            | lock_arg :: _ ->
              acquire (lock_class ~cur_mod:!cur_mod lock_arg)
            | [] -> ());
            (match List.map snd args with
            | lock_arg :: rest ->
              walk lock_arg;
              let cls = lock_class ~cur_mod:!cur_mod lock_arg in
              let saved = !held in
              held := cls :: saved;
              List.iter walk rest;
              held := saved
            | [] -> ())
          end
          else
            match wrapper_class with
            | Some cls ->
              acquire cls;
              let saved = !held in
              held := cls :: saved;
              List.iter (fun (_, a) -> walk a) args;
              held := saved
            | None -> (
              if is_mutex_lock path then
                (* Naked Mutex.lock (only sanctioned inside locked.ml):
                   record the acquisition for ordering, but its scope is
                   not syntactic so the held set is not extended. *)
                List.iter
                  (fun (_, a) -> acquire (lock_class ~cur_mod:!cur_mod a))
                  args;
              match spawn_name path with
              | Some _ ->
                (* The closure runs on a fresh thread holding nothing:
                   reset the held set, and mark everything inside as
                   spawned so it does not leak into this function's
                   may-acquire summary. *)
                let saved_h = !held and saved_s = !in_spawn in
                held := [];
                in_spawn := true;
                List.iter (fun (_, a) -> walk a) args;
                held := saved_h;
                in_spawn := saved_s
              | None ->
                (match resolved with
                | Some target ->
                  if Hashtbl.mem g.bindings target then
                    calls :=
                      {
                        c_key = !cur_key;
                        c_fn = display ();
                        c_target = target;
                        c_file = pf.p_path;
                        c_line = loc;
                        c_held = List.sort_uniq compare !held;
                        c_spawned = !in_spawn;
                      }
                      :: !calls
                | None -> ());
                walk f;
                List.iter (fun (_, a) -> walk a) args)))
      | _ -> Ast_iterator.default_iterator.Ast_iterator.expr !iter e
    in
    iter := { Ast_iterator.default_iterator with Ast_iterator.expr = expr };
    let rec go modseg items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let name =
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { Asttypes.txt; _ } -> txt
                  | _ -> "<pat>"
                in
                cur_mod := modseg;
                cur_key := (modseg, name);
                held := [];
                in_spawn := false;
                walk vb.pvb_expr)
              vbs
          | Pstr_eval (e, _) ->
            cur_mod := modseg;
            cur_key := (modseg, "<top>");
            held := [];
            in_spawn := false;
            walk e
          | Pstr_module mb -> (
            match (mb.pmb_name.Asttypes.txt, module_items mb.pmb_expr) with
            | Some name, Some sub -> go name sub
            | _ -> ())
          | _ -> ())
        items
    in
    go pf.p_mod structure;
    (List.rev !acqs, List.rev !calls)

(* may_acquire summaries: for each function, which lock classes it (or
   its non-spawned callees) may acquire, with one representative call
   chain per lock for witness printing. *)
type may = { m_path : string list; m_file : string; m_line : int }

let may_acquire acqs calls =
  let summaries : (string * string, (string * may) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let get key =
    match Hashtbl.find_opt summaries key with Some l -> l | None -> []
  in
  let add key lock m =
    let cur = get key in
    if not (List.mem_assoc lock cur) then begin
      Hashtbl.replace summaries key ((lock, m) :: cur);
      true
    end
    else false
  in
  List.iter
    (fun a ->
      if not a.a_spawned then
        ignore
          (add a.a_key a.a_lock
             { m_path = [ a.a_fn ]; m_file = a.a_file; m_line = a.a_line }))
    acqs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        if not c.c_spawned then
          List.iter
            (fun (lock, m) ->
              if
                add c.c_key lock
                  { m with m_path = c.c_fn :: m.m_path }
              then changed := true)
            (get c.c_target))
      calls
  done;
  summaries

type edge = {
  e_from : string;
  e_to : string;
  e_text : string;
  e_file : string;
  e_line : int;
}

let lock_order_diagnostics acqs calls =
  let summaries = may_acquire acqs calls in
  let edges : (string * string, edge) Hashtbl.t = Hashtbl.create 32 in
  let self : (string, edge) Hashtbl.t = Hashtbl.create 8 in
  let consider e =
    let better old = (e.e_file, e.e_line, e.e_text) < (old.e_file, old.e_line, old.e_text) in
    if e.e_from = e.e_to then (
      match Hashtbl.find_opt self e.e_from with
      | Some old when not (better old) -> ()
      | _ -> Hashtbl.replace self e.e_from e)
    else
      match Hashtbl.find_opt edges (e.e_from, e.e_to) with
      | Some old when not (better old) -> ()
      | _ -> Hashtbl.replace edges (e.e_from, e.e_to) e
  in
  List.iter
    (fun a ->
      List.iter
        (fun h ->
          consider
            {
              e_from = h;
              e_to = a.a_lock;
              e_text =
                Printf.sprintf "%s acquires %s at %s:%d while holding %s"
                  a.a_fn a.a_lock a.a_file a.a_line h;
              e_file = a.a_file;
              e_line = a.a_line;
            })
        a.a_held)
    acqs;
  List.iter
    (fun c ->
      if c.c_held <> [] then
        match Hashtbl.find_opt summaries c.c_target with
        | None -> ()
        | Some locks ->
          List.iter
            (fun (lock, m) ->
              List.iter
                (fun h ->
                  consider
                    {
                      e_from = h;
                      e_to = lock;
                      e_text =
                        Printf.sprintf
                          "%s calls %s at %s:%d while holding %s; %s \
                           acquires %s at %s:%d"
                          c.c_fn
                          (fst c.c_target ^ "." ^ snd c.c_target)
                          c.c_file c.c_line h
                          (String.concat " -> " m.m_path)
                          lock m.m_file m.m_line;
                      e_file = c.c_file;
                      e_line = c.c_line;
                    })
                c.c_held)
            locks)
    calls;
  let out = ref [] in
  (* Re-entry: acquiring (directly or through a callee) a lock class
     already held.  OCaml's Mutex self-deadlocks on re-entry. *)
  List.iter
    (fun (_, e) ->
      out :=
        {
          K.file = e.e_file;
          line = e.e_line;
          rule = rule_lock;
          message =
            Printf.sprintf
              "lock %s is acquired while already held (Mutex is not \
               reentrant): %s"
              e.e_from e.e_text;
        }
        :: !out)
    (List.sort compare (Hashtbl.fold (fun k e l -> (k, e) :: l) self []));
  (* Cycles among distinct lock classes: Tarjan SCCs over the order
     graph, then one diagnostic per cyclic component with the witness
     of every edge along a deterministic cycle through it. *)
  let edge_list =
    List.sort compare (Hashtbl.fold (fun k e l -> (k, e) :: l) edges [])
  in
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun ((a, b), _) -> [ a; b ]) edge_list)
  in
  let succs n =
    List.filter_map
      (fun ((a, b), _) -> if a = n then Some b else None)
      edge_list
  in
  let index = Hashtbl.create 16
  and lowlink = Hashtbl.create 16
  and on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let scc = pop [] in
      if List.length scc > 1 then sccs := List.sort compare scc :: !sccs
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) nodes;
  List.iter
    (fun scc ->
      let in_scc n = List.mem n scc in
      let start = List.hd scc in
      (* Shortest deterministic cycle through [start] within the SCC:
         BFS from its smallest in-SCC successor back to start. *)
      let rec bfs frontier parents =
        match frontier with
        | [] -> None
        | n :: rest ->
          if n = start then Some parents
          else
            let nexts =
              List.sort_uniq compare
                (List.filter
                   (fun w -> in_scc w && not (List.mem_assoc w parents))
                   (succs n))
            in
            let parents = parents @ List.map (fun w -> (w, n)) nexts in
            bfs (rest @ nexts) parents
      in
      let cycle =
        match List.sort compare (List.filter in_scc (succs start)) with
        | [] -> []
        | first_hop :: _ -> (
          match bfs [ first_hop ] [ (first_hop, start) ] with
          | None -> []
          | Some parents ->
            (* start was re-discovered with some parent; walk the parent
               chain back to the original start to lay out the cycle. *)
            let rec back n acc =
              if n = start && acc <> [] then n :: acc
              else back (List.assoc n parents) (n :: acc)
            in
            back start [])
      in
      let rec pairs = function
        | a :: (b :: _ as rest) -> ((a, b) :: pairs rest)
        | _ -> []
      in
      let cycle_edges =
        List.filter_map (fun k -> Hashtbl.find_opt edges k) (pairs cycle)
      in
      match cycle_edges with
      | [] -> ()
      | first :: _ ->
        out :=
          {
            K.file = first.e_file;
            line = first.e_line;
            rule = rule_lock;
            message =
              Printf.sprintf "lock-order cycle: %s; %s"
                (String.concat " -> " cycle)
                (String.concat "; "
                   (List.map (fun e -> e.e_text) cycle_edges));
          }
          :: !out)
    (List.sort compare !sccs);
  !out

(* ------------------------------------------------------------------ *)
(* Domain-escape analysis                                              *)
(* ------------------------------------------------------------------ *)

let mutators =
  [
    ([ "Hashtbl" ], [ "replace"; "add"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ([ "Queue" ], [ "push"; "add"; "pop"; "take"; "clear"; "transfer" ]);
    ([ "Stack" ], [ "push"; "pop"; "clear" ]);
    ([ "Buffer" ],
     [ "add_char"; "add_string"; "add_bytes"; "add_subbytes"; "clear"; "reset" ]);
    ([ "Array" ], [ "set"; "fill"; "blit"; "sort" ]);
    ([ "Bytes" ], [ "set"; "fill"; "blit" ]);
  ]

let mutator_target path args =
  let first_nolabel () =
    List.find_map
      (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
      args
  in
  if path = [ ":=" ] || K.ends_with path [ "Stdlib"; ":=" ] then first_nolabel ()
  else if path = [ "incr" ] || path = [ "decr" ]
          || K.ends_with path [ "Stdlib"; "incr" ]
          || K.ends_with path [ "Stdlib"; "decr" ]
  then first_nolabel ()
  else if
    List.exists
      (fun (m, fns) ->
        List.exists (fun fn -> K.ends_with path (m @ [ fn ])) fns)
      mutators
  then first_nolabel ()
  else None

(* Root variable of an lvalue: [t.conns] -> t, [results.(i)] -> results,
   [Globals.table] -> always free (module-level state). *)
let rec root_var (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { Asttypes.txt = Longident.Lident n; _ } -> Some (Some n, n)
  | Pexp_ident { Asttypes.txt; _ } ->
    Some (None, String.concat "." (K.flatten_lid txt))
  | Pexp_field (e, _) -> root_var e
  | Pexp_constraint (e, _) -> root_var e
  | Pexp_apply (f, args) -> (
    match ident_path f with
    | Some p
      when K.ends_with p [ "Array"; "get" ] || K.ends_with p [ "Bytes"; "get" ]
      -> (
      match args with (_, a) :: _ -> root_var a | [] -> None)
    | _ -> None)
  | _ -> None

let escape_diagnostics g pf =
  match pf.p_ast with
  | K.Intf _ -> []
  | K.Impl structure ->
    let amap = aliases_of g pf.p_path in
    let out = ref [] in
    let seen = Hashtbl.create 16 in
    let emit ~line ~target ~spawn_desc =
      let key = (pf.p_path, line, target) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out :=
          {
            K.file = pf.p_path;
            line;
            rule = rule_escape;
            message =
              Printf.sprintf
                "%s is mutated inside a closure passed to %s without \
                 with_lock; shared state crossing a domain/thread boundary \
                 needs Locked.with_lock or Atomic"
                target spawn_desc;
          }
          :: !out
      end
    in
    (* Walk a closure that escapes to another thread.  [bound] tracks
       names bound inside the closure (locals are thread-private);
       [guard] counts enclosing with_lock sections; same-module callees
       are followed (their params stay unbound: arguments at the spawn
       site are exactly the shared state we care about). *)
    let check_closure ~spawn_desc ~cur_mod0 root_expr ~bound0 =
      let bound = ref bound0 in
      let guard = ref 0 in
      let cur_mod = ref cur_mod0 in
      let visited = Hashtbl.create 16 in
      let iter = ref Ast_iterator.default_iterator in
      let walk e = !iter.Ast_iterator.expr !iter e in
      let with_bound names f =
        let saved = !bound in
        bound := names @ saved;
        f ();
        bound := saved
      in
      let is_free = function
        | Some n, _ -> not (List.mem n !bound)
        | None, _ -> true
      in
      let walk_case (c : case) =
        with_bound (pat_vars c.pc_lhs) (fun () ->
            Option.iter walk c.pc_guard;
            walk c.pc_rhs)
      in
      let expr _it e =
        match e.pexp_desc with
        | Pexp_fun (_, default, pat, body) ->
          Option.iter walk default;
          with_bound (pat_vars pat) (fun () -> walk body)
        | Pexp_function cases -> List.iter walk_case cases
        | Pexp_let (_, vbs, body) ->
          let names = List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs in
          with_bound names (fun () ->
              List.iter (fun vb -> walk vb.pvb_expr) vbs;
              walk body)
        | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
          walk scrut;
          List.iter walk_case cases
        | Pexp_for (pat, lo, hi, _, body) ->
          walk lo;
          walk hi;
          with_bound (pat_vars pat) (fun () -> walk body)
        | Pexp_setfield (obj, _, v) ->
          (match root_var obj with
          | Some r when !guard = 0 && is_free r ->
            emit ~line:(K.line_of e.pexp_loc) ~target:(snd r) ~spawn_desc
          | _ -> ());
          walk obj;
          walk v
        | Pexp_apply (f, args) -> (
          match ident_path f with
          | None ->
            walk f;
            List.iter (fun (_, a) -> walk a) args
          | Some path -> (
            (match mutator_target path args with
            | Some lv -> (
              match root_var lv with
              | Some r when !guard = 0 && is_free r ->
                emit ~line:(K.line_of e.pexp_loc) ~target:(snd r) ~spawn_desc
              | _ -> ())
            | None -> ());
            let resolved = resolve_name ~amap ~cur_mod:!cur_mod path in
            let wrapper =
              match resolved with
              | Some key -> Hashtbl.mem g.wrappers key
              | None -> false
            in
            if is_with_lock path || wrapper then begin
              incr guard;
              List.iter (fun (_, a) -> walk a) args;
              decr guard
            end
            else
              match spawn_name path with
              | Some _ ->
                (* A spawn inside the closure starts yet another thread
                   that holds none of our locks. *)
                let saved = !guard in
                guard := 0;
                List.iter (fun (_, a) -> walk a) args;
                guard := saved
              | None ->
                (match resolved with
                | Some ((m, n) as key) -> (
                  match Hashtbl.find_opt g.bindings key with
                  | Some b
                    when b.b_file = pf.p_path
                         && not (Hashtbl.mem visited (m, n, !guard)) ->
                    Hashtbl.replace visited (m, n, !guard) ();
                    let saved_mod = !cur_mod and saved_bound = !bound in
                    cur_mod := b.b_mod;
                    bound := [];
                    let _, body = peel_params [] b.b_expr in
                    walk body;
                    cur_mod := saved_mod;
                    bound := saved_bound
                  | _ -> ())
                | None -> ());
                walk f;
                List.iter (fun (_, a) -> walk a) args))
        | _ -> Ast_iterator.default_iterator.Ast_iterator.expr !iter e
      in
      iter := { Ast_iterator.default_iterator with Ast_iterator.expr = expr };
      walk root_expr
    in
    (* Find every spawn site; a let-tracking walker so [Domain.spawn
       worker] resolves when [worker] is a local lambda. *)
    let locals = ref [] in
    let cur_mod = ref pf.p_mod in
    let scan = ref Ast_iterator.default_iterator in
    let walk e = !scan.Ast_iterator.expr !scan e in
    let expr _it e =
      match e.pexp_desc with
      | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> walk vb.pvb_expr) vbs;
        let saved = !locals in
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { Asttypes.txt; _ } ->
              locals := (txt, vb.pvb_expr) :: !locals
            | _ -> ())
          vbs;
        walk body;
        locals := saved
      | Pexp_apply (f, args) -> (
        walk f;
        List.iter (fun (_, a) -> walk a) args;
        match ident_path f with
        | Some path -> (
          match spawn_name path with
          | Some prim ->
            let spawn_desc =
              Printf.sprintf "%s at %s:%d" prim pf.p_path
                (K.line_of e.pexp_loc)
            in
            List.iter
              (fun (_, a) ->
                match a.pexp_desc with
                | Pexp_fun _ | Pexp_function _ ->
                  check_closure ~spawn_desc ~cur_mod0:!cur_mod a ~bound0:[]
                | Pexp_ident { Asttypes.txt = Longident.Lident n; _ } -> (
                  match List.assoc_opt n !locals with
                  | Some le ->
                    (* local lambda: its params come from the spawn
                       primitive, so they are thread-private *)
                    check_closure ~spawn_desc ~cur_mod0:!cur_mod le ~bound0:[]
                  | None -> (
                    match
                      resolve_name ~amap ~cur_mod:!cur_mod [ n ]
                      |> Option.map (Hashtbl.find_opt g.bindings)
                    with
                    | Some (Some b) when b.b_file = pf.p_path ->
                      let _, body = peel_params [] b.b_expr in
                      check_closure ~spawn_desc ~cur_mod0:b.b_mod body
                        ~bound0:[]
                    | _ -> ()))
                | Pexp_apply (h, _) -> (
                  (* partial application: the applied arguments are the
                     caller's state, so the callee's params stay free *)
                  match ident_path h with
                  | Some hp -> (
                    match resolve_name ~amap ~cur_mod:!cur_mod hp with
                    | Some key -> (
                      match Hashtbl.find_opt g.bindings key with
                      | Some b when b.b_file = pf.p_path ->
                        let _, body = peel_params [] b.b_expr in
                        check_closure ~spawn_desc ~cur_mod0:b.b_mod body
                          ~bound0:[]
                      | _ -> ())
                    | None -> ())
                  | None -> ())
                | _ -> ())
              args
          | None -> ())
        | None -> ())
      | _ -> Ast_iterator.default_iterator.Ast_iterator.expr !scan e
    in
    scan := { Ast_iterator.default_iterator with Ast_iterator.expr = expr };
    let rec go modseg items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            cur_mod := modseg;
            locals := [];
            List.iter (fun vb -> walk vb.pvb_expr) vbs
          | Pstr_eval (e, _) ->
            cur_mod := modseg;
            locals := [];
            walk e
          | Pstr_module mb -> (
            match (mb.pmb_name.Asttypes.txt, module_items mb.pmb_expr) with
            | Some name, Some sub -> go name sub
            | _ -> ())
          | _ -> ())
        items
    in
    go pf.p_mod structure;
    List.rev !out

(* ------------------------------------------------------------------ *)
(* String-registry consistency                                         *)
(* ------------------------------------------------------------------ *)

let fault_kinds = [ "crash"; "eintr"; "short"; "corrupt"; "fail"; "die"; "delay" ]
let fault_fns = [ "hit"; "fail"; "eintr"; "clamp"; "mangle"; "fire" ]
let counter_fns = [ "count"; "gauge"; "get_count"; "counter" ]

(* "die@shard.apply:p=0.5;seed=3" -> [shard.apply].  Only dotted points
   count: the fault-grammar unit tests exercise bare one-letter points
   (p, q) that deliberately name nothing. *)
let injection_points s =
  if not (String.contains s '@') then []
  else
    String.split_on_char ';' s
    |> List.filter_map (fun seg ->
           match String.index_opt seg '@' with
           | None -> None
           | Some i ->
             let kind = String.sub seg 0 i in
             if not (List.mem kind fault_kinds) then None
             else
               let rest =
                 String.sub seg (i + 1) (String.length seg - i - 1)
               in
               let point =
                 match String.index_opt rest ':' with
                 | Some j -> String.sub rest 0 j
                 | None -> rest
               in
               if String.contains point '.' then Some point else None)

type uses = {
  mutable u_ops : (string * string * int) list;
  mutable u_codes : (string * string * int) list;
  mutable u_faults : (string * string * int) list;  (* declared by code *)
  mutable u_injections : (string * string * int) list;
  mutable u_counters : (string * string * int) list;
}

let rec pattern_strings p =
  match p.ppat_desc with
  | Ppat_constant (Pconst_string (s, _, _)) -> [ s ]
  | Ppat_or (a, b) -> pattern_strings a @ pattern_strings b
  | Ppat_alias (a, _) -> pattern_strings a
  | _ -> []

let collect_uses pf u =
  let file = pf.p_path in
  let in_lib_server = under "lib/server" file || is_fixture file in
  let is_client = Filename.basename file = "client.ml" || is_fixture file in
  let is_telemetry_def = file = "lib/obs/telemetry.ml" in
  let add l v line = l := (v, file, line) :: !l in
  let ops = ref u.u_ops
  and codes = ref u.u_codes
  and faults = ref u.u_faults
  and injections = ref u.u_injections
  and counters = ref u.u_counters in
  let json_string_construct (e : expression) =
    match e.pexp_desc with
    | Pexp_construct ({ Asttypes.txt; _ }, Some arg)
      when last_seg (K.flatten_lid txt) = "String" ->
      string_const arg
    | _ -> None
  in
  let expr it e =
    let line = K.line_of e.pexp_loc in
    (match e.pexp_desc with
    (* ("op", Json.String "solve") pairs anywhere on the wire *)
    | Pexp_tuple [ k; v ] when string_const k = Some "op" -> (
      match json_string_construct v with
      | Some op -> add ops op (K.line_of v.pexp_loc)
      | None -> ())
    (* server/client dispatch arms: match op with "solve" -> ... *)
    | Pexp_match
        ({ pexp_desc = Pexp_ident { Asttypes.txt = Longident.Lident "op"; _ }; _ },
         cases) ->
      List.iter
        (fun (c : case) ->
          List.iter
            (fun s -> add ops s (K.line_of c.pc_lhs.ppat_loc))
            (pattern_strings c.pc_lhs))
        cases
    (* Error ("code", msg) replies inside lib/server *)
    | Pexp_construct
        ({ Asttypes.txt = lid; _ },
         Some { pexp_desc = Pexp_tuple [ c; _ ]; _ })
      when in_lib_server && last_seg (K.flatten_lid lid) = "Error" -> (
      match string_const c with
      | Some code -> add codes code (K.line_of c.pexp_loc)
      | None -> ())
    (* optional fault-point parameters: ?(point = "sock.write") *)
    | Pexp_fun (Asttypes.Optional "point", Some d, _, _) -> (
      match string_const d with
      | Some p -> add faults p (K.line_of d.pexp_loc)
      | None -> ())
    | Pexp_apply (f, args) ->
      List.iter
        (fun (lbl, a) ->
          match (lbl, string_const a) with
          | Asttypes.Labelled "code", Some c ->
            add codes c (K.line_of a.pexp_loc)
          | Asttypes.Labelled "point", Some p ->
            add faults p (K.line_of a.pexp_loc)
          | _ -> ())
        args;
      (match ident_path f with
      | Some path ->
        let name = last_seg path in
        if
          List.length path >= 2
          && List.nth path (List.length path - 2) = "Faults"
          && List.mem name fault_fns
        then
          List.iter
            (fun (lbl, a) ->
              match (lbl, string_const a) with
              | Asttypes.Nolabel, Some p -> add faults p (K.line_of a.pexp_loc)
              | _ -> ())
            args;
        if List.mem name counter_fns && not is_telemetry_def then (
          match
            List.find_map
              (fun (lbl, a) ->
                match (lbl, string_const a) with
                | Asttypes.Nolabel, Some s -> Some (s, a)
                | _ -> None)
              args
          with
          | Some (s, a) -> add counters s (K.line_of a.pexp_loc)
          | None -> ())
      | None -> ())
    | Pexp_constant (Pconst_string (s, _, _)) ->
      List.iter (fun p -> add injections p line) (injection_points s)
    | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.expr it e
  in
  let pat it p =
    (if is_client then
       match p.ppat_desc with
       | Ppat_construct ({ Asttypes.txt; _ }, Some (_, arg))
         when last_seg (K.flatten_lid txt) = "String" ->
         List.iter
           (fun s -> add codes s (K.line_of p.ppat_loc))
           (pattern_strings arg)
       | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.pat it p
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      Ast_iterator.expr = expr;
      Ast_iterator.pat = pat;
    }
  in
  K.iter_ast iter pf.p_ast;
  u.u_ops <- !ops;
  u.u_codes <- !codes;
  u.u_faults <- !faults;
  u.u_injections <- !injections;
  u.u_counters <- !counters

let registry_diagnostics (reg : Registry.t) u =
  let out = ref [] in
  let reg_path = reg.Registry.path in
  let diag file line rule message = out := { K.file; line; rule; message } :: !out in
  let check kind rule what (v, file, line) =
    if not (Registry.mem reg kind v) then
      diag file line rule
        (Printf.sprintf "%s %S is not in the registry (%s)" what v reg_path)
  in
  List.iter (check "op" rule_op "wire op") u.u_ops;
  List.iter (check "code" rule_code "wire error code") u.u_codes;
  List.iter (check "fault" rule_fault "fault point") u.u_faults;
  List.iter (check "counter" rule_counter "telemetry counter") u.u_counters;
  List.iter
    (fun (p, file, line) ->
      let base =
        if Filename.check_suffix p ".fail" then Filename.chop_suffix p ".fail"
        else p
      in
      if not (Registry.mem reg "fault" p || Registry.mem reg "fault" base)
      then
        diag file line rule_fault
          (Printf.sprintf
             "fault injection targets point %S which is not in the registry \
              (%s)"
             p reg_path))
    u.u_injections;
  (* Orphans: a registry entry nothing references any more is drift in
     the other direction (an op nobody serves, a fault point no code
     site passes, a counter never bumped). *)
  let seen kind =
    match kind with
    | "op" -> List.map (fun (v, _, _) -> v) u.u_ops
    | "code" -> List.map (fun (v, _, _) -> v) u.u_codes
    | "fault" -> List.map (fun (v, _, _) -> v) u.u_faults
    | _ -> List.map (fun (v, _, _) -> v) u.u_counters
  in
  let orphan_rule = function
    | "op" -> rule_op
    | "code" -> rule_code
    | "fault" -> rule_fault
    | _ -> rule_counter
  in
  let orphan_what = function
    | "op" -> "no op literal constructs or matches it"
    | "code" -> "no code site constructs or matches it"
    | "fault" -> "no code site passes it to Faults"
    | _ -> "no code site bumps or reads it"
  in
  List.iter
    (fun (e : Registry.entry) ->
      let kind = e.Registry.kind and name = e.Registry.name in
      if not (List.mem name (seen kind)) then
        diag reg_path e.Registry.line (orphan_rule kind)
          (Printf.sprintf "registry %s %S is orphaned: %s" kind name
             (orphan_what kind)))
    reg.Registry.entries;
  !out

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let marker = "tdmd-analyze"

let analyze_sources ?registry sources =
  let pfiles, parse_errors =
    List.fold_left
      (fun (pfs, errs) (path, source) ->
        match K.parse_ast ~file:path source with
        | ast ->
          ( {
              p_path = path;
              p_source = source;
              p_ast = ast;
              p_mod = module_of_path path;
            }
            :: pfs,
            errs )
        | exception exn ->
          (pfs, K.parse_error_diagnostic ~file:path exn :: errs))
      ([], []) sources
  in
  let pfiles = List.sort (fun a b -> compare a.p_path b.p_path) pfiles in
  let g = build_genv pfiles in
  let lock_files = List.filter (fun pf -> lock_scope pf.p_path) pfiles in
  let facts = List.map (collect_lock_facts g) lock_files in
  let acqs = List.concat_map fst facts in
  let calls = List.concat_map snd facts in
  let lock_diags = lock_order_diagnostics acqs calls in
  let escape_diags =
    List.concat_map
      (fun pf -> if escape_scope pf.p_path then escape_diagnostics g pf else [])
      pfiles
  in
  let registry_diags =
    match registry with
    | None -> []
    | Some reg ->
      let u =
        {
          u_ops = [];
          u_codes = [];
          u_faults = [];
          u_injections = [];
          u_counters = [];
        }
      in
      List.iter
        (fun pf -> if registry_scope pf.p_path then collect_uses pf u)
        pfiles;
      registry_diagnostics reg u
  in
  let raw = lock_diags @ escape_diags @ registry_diags in
  (* Apply per-file suppression comments (the marker followed by
     ": allow RULE" and a mandatory reason). *)
  let by_file = Hashtbl.create 16 in
  List.iter (fun pf -> Hashtbl.replace by_file pf.p_path pf.p_source) pfiles;
  let sup_errors = ref [] in
  let tables = Hashtbl.create 16 in
  Hashtbl.iter
    (fun path source ->
      let table, errs =
        K.scan_suppressions ~marker ~known_rule ~file:path source
      in
      Hashtbl.replace tables path table;
      sup_errors := errs @ !sup_errors)
    by_file;
  let kept =
    List.filter
      (fun (d : K.diagnostic) ->
        match Hashtbl.find_opt tables d.K.file with
        | Some table -> not (K.suppressed table d.K.rule d.K.line)
        | None -> true)
      raw
  in
  List.sort_uniq K.compare_diagnostic (parse_errors @ !sup_errors @ kept)

let analyze_files ?registry_path files =
  let registry, reg_errors =
    match registry_path with
    | None -> (None, [])
    | Some path ->
      if Sys.file_exists path then
        let reg, errs = Registry.load path in
        (Some reg, errs)
      else
        ( None,
          [
            {
              K.file = path;
              line = 1;
              rule = "registry";
              message = "registry file not found";
            };
          ] )
  in
  let sources = List.map (fun f -> (f, K.read_file f)) files in
  List.sort K.compare_diagnostic
    (reg_errors @ analyze_sources ?registry sources)
