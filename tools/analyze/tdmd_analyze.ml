(* Command-line driver for tdmd-analyze.

   Usage: tdmd_analyze --registry FILE [options] PATH...
   Same contract as tdmd-lint (shared driver in Check_kit): paths are
   walked for .ml/.mli, diagnostics print as "file:line: [rule]
   message", exit 1 on fresh violations (or stale baseline entries
   under --check-baseline), 2 on usage errors.  The whole file set is
   analyzed in one pass: the lock-order and domain-escape analyses are
   interprocedural and the registry check needs every use site before
   it can call an entry orphaned. *)

let registry = ref ""

let () =
  Check_kit.main
    {
      Check_kit.name = "tdmd-analyze";
      suffixes = [ ".ml"; ".mli" ];
      rule_catalogue = Analyze_core.rule_catalogue;
      extra_spec =
        [
          ( "--registry",
            Arg.Set_string registry,
            "FILE declared op/code/fault/counter registry (one \"KIND NAME\" \
             per line); without it the registry rules are skipped" );
        ];
      analyze =
        (fun ~files ->
          Analyze_core.analyze_files
            ?registry_path:(if !registry = "" then None else Some !registry)
            files);
    }
