(* Shared machinery for the repo's static-analysis tools (tdmd-lint,
   tdmd-analyze): diagnostics, suppression comments, baselines, file
   walking, JSON/SARIF reports and the common command-line driver.

   Both tools are compiler-libs AST passes with the same operational
   contract — "file:line: [rule] message" output, a checked-in baseline
   that only shrinks, and reasoned in-source suppressions — so the
   contract lives here once and the tools plug in only their rules. *)

type diagnostic = { file : string; line : int; rule : string; message : string }

let compare_diagnostic a b =
  match compare a.file b.file with
  | 0 -> (
    match compare a.line b.line with 0 -> compare a.rule b.rule | c -> c)
  | c -> c

let to_string d = Printf.sprintf "%s:%d: [%s] %s" d.file d.line d.rule d.message

(* ------------------------------------------------------------------ *)
(* Small parsing helpers shared by the AST passes                      *)
(* ------------------------------------------------------------------ *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

(* Matches [segs] at the end of [path], so both [Obj.magic] and
   [Stdlib.Obj.magic] hit. *)
let ends_with path segs =
  let lp = List.length path and ls = List.length segs in
  lp >= ls && drop (lp - ls) path = segs

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

(* Interfaces parse with [Parse.interface]; expressions still occur in
   them (attribute payloads, e.g. [@@check (fun x -> x = 0.0)]), so the
   expression-level rules apply to both kinds of file. *)
let parse_ast ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  if Filename.check_suffix file ".mli" then Intf (Parse.interface lexbuf)
  else Impl (Parse.implementation lexbuf)

let iter_ast (iter : Ast_iterator.iterator) = function
  | Impl structure -> iter.Ast_iterator.structure iter structure
  | Intf signature -> iter.Ast_iterator.signature iter signature

let parse_error_diagnostic ~file exn =
  let line =
    match exn with
    | Syntaxerr.Error e -> line_of (Syntaxerr.location_of_error e)
    | _ -> 1
  in
  { file; line; rule = "parse-error"; message = "cannot parse file" }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Suppression comments                                                *)
(* ------------------------------------------------------------------ *)

(* [(* MARKER: allow RULE[,RULE]* — reason *)] — the rule list must name
   rules the tool knows and the reason is mandatory.  A suppression
   covers the line it sits on and the following line, so both trailing
   and preceding-line comments work.  [marker] is the tool name
   ("tdmd-lint" / "tdmd-analyze"), so each tool only honours its own
   comments. *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

let is_separator tok =
  tok = "\xe2\x80\x94" (* em dash *)
  || tok = "-" || tok = "--"
  || (String.length tok >= 3 && String.sub tok 0 3 = "\xe2\x80\x94")

let parse_suppression ~marker ~known_rule ~file ~line text =
  (* [text] is everything after "MARKER: allow" up to "*)" or EOL. *)
  let tokens =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  let rec take_rules acc = function
    | tok :: rest when not (is_separator tok) ->
      if known_rule tok then take_rules (tok :: acc) rest
      else (List.rev acc, Some tok, rest)
    | rest -> (List.rev acc, None, rest)
  in
  let rules, bad, rest = take_rules [] tokens in
  let reason =
    match rest with
    | sep :: tail when is_separator sep -> String.concat " " tail
    | tail -> String.concat " " tail
  in
  match (rules, bad) with
  | _, Some tok ->
    Error
      {
        file;
        line;
        rule = "suppression";
        message = Printf.sprintf "unknown rule %S in suppression comment" tok;
      }
  | [], None ->
    Error
      {
        file;
        line;
        rule = "suppression";
        message = "suppression comment names no rule";
      }
  | rules, None ->
    if String.trim reason = "" then
      Error
        {
          file;
          line;
          rule = "suppression";
          message =
            Printf.sprintf
              "suppression comment needs a reason: (* %s: allow RULE \
               \xe2\x80\x94 reason *)"
              marker;
        }
    else Ok rules

type suppressions = (int, string list) Hashtbl.t

let scan_suppressions ~marker ~known_rule ~file source :
    suppressions * diagnostic list =
  let table : suppressions = Hashtbl.create 8 in
  let errors = ref [] in
  let needle = marker ^ ": allow" in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line_text ->
      let line = i + 1 in
      match find_sub line_text needle 0 with
      | None -> ()
      | Some at ->
        let start = at + String.length needle in
        let stop =
          match find_sub line_text "*)" start with
          | Some e -> e
          | None -> String.length line_text
        in
        let text = String.sub line_text start (stop - start) in
        (match parse_suppression ~marker ~known_rule ~file ~line text with
        | Ok rules ->
          let prev =
            match Hashtbl.find_opt table line with Some rs -> rs | None -> []
          in
          Hashtbl.replace table line (rules @ prev)
        | Error d -> errors := d :: !errors))
    lines;
  (table, !errors)

let suppressed (table : suppressions) rule line =
  let covers l =
    match Hashtbl.find_opt table l with
    | Some rules -> List.mem rule rules
    | None -> false
  in
  covers line || covers (line - 1)

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let baseline_key d = Printf.sprintf "%s:%d:%s" d.file d.line d.rule

let load_baseline path =
  let table = Hashtbl.create 16 in
  (if Sys.file_exists path then
     let content = read_file path in
     List.iter
       (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then Hashtbl.replace table line ())
       (String.split_on_char '\n' content));
  table

let baseline_entries diagnostics =
  List.map baseline_key (List.sort compare_diagnostic diagnostics)

(* ------------------------------------------------------------------ *)
(* Reports: JSON and SARIF                                             *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diagnostics_to_json ~tool diagnostics =
  let item d =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
      (json_escape d.file) d.line (json_escape d.rule) (json_escape d.message)
  in
  Printf.sprintf "{\"tool\":\"%s\",\"count\":%d,\"violations\":[%s]}"
    (json_escape tool)
    (List.length diagnostics)
    (String.concat "," (List.map item diagnostics))

(* Minimal SARIF 2.1.0 — enough for GitHub's code-scanning upload to
   render each diagnostic as an annotation on the PR diff. *)
let diagnostics_to_sarif ~tool ~rules diagnostics =
  let rule_json (id, doc) =
    Printf.sprintf "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}"
      (json_escape id) (json_escape doc)
  in
  let result d =
    Printf.sprintf
      "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d}}}]}"
      (json_escape d.rule) (json_escape d.message) (json_escape d.file)
      (max 1 d.line)
  in
  Printf.sprintf
    "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"%s\",\"informationUri\":\"https://example.invalid/tdmd\",\"rules\":[%s]}},\"results\":[%s]}]}"
    (json_escape tool)
    (String.concat "," (List.map rule_json rules))
    (String.concat "," (List.map result diagnostics))

(* ------------------------------------------------------------------ *)
(* File walking                                                        *)
(* ------------------------------------------------------------------ *)

let normalize path =
  (* "./lib//server" -> "lib/server"; keeps diagnostics and the
     baseline stable however the tool is invoked. *)
  let parts =
    String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")
  in
  String.concat "/" parts

let excluded ~excludes path =
  List.exists
    (fun e ->
      let e = normalize e in
      path = e
      || String.length path > String.length e
         && String.sub path 0 (String.length e + 1) = e ^ "/")
    excludes

let rec walk ~suffixes ~excludes acc path =
  let path = normalize path in
  if excluded ~excludes path then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "_build" || name = ".git" then acc
        else walk ~suffixes ~excludes acc (Filename.concat path name))
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if List.exists (fun s -> Filename.check_suffix path s) suffixes then
    path :: acc
  else acc

let walk_files ~suffixes ~excludes roots =
  List.sort_uniq compare
    (List.fold_left (walk ~suffixes ~excludes) [] roots)

(* ------------------------------------------------------------------ *)
(* Shared command-line driver                                          *)
(* ------------------------------------------------------------------ *)

type tool = {
  name : string;  (** also the suppression-comment marker *)
  suffixes : string list;  (** file suffixes to pick up when walking *)
  rule_catalogue : (string * string) list;  (** (rule id, one-line doc) *)
  extra_spec : (string * Arg.spec * string) list;
      (** tool-specific flags, e.g. tdmd-analyze's --registry *)
  analyze : files:string list -> diagnostic list;
      (** whole run: normalized file list in, diagnostics out (already
          suppression-filtered and sorted) *)
}

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let main tool =
  let usage =
    Printf.sprintf "%s [options] PATH...\nOptions:"
      (Filename.basename Sys.executable_name)
  in
  let baseline_file = ref "" in
  let update_baseline = ref false in
  let check_baseline = ref false in
  let json_out = ref "" in
  let sarif_out = ref "" in
  let excludes = ref [] in
  let list_rules = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.Set_string baseline_file,
        "FILE grandfathered violations (one file:line:rule per line)" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline file with every current violation" );
      ( "--check-baseline",
        Arg.Set check_baseline,
        " fail (exit 1) on stale baseline entries, so baselines only shrink" );
      ("--json", Arg.Set_string json_out, "FILE write a JSON report");
      ( "--sarif",
        Arg.Set_string sarif_out,
        "FILE write a SARIF 2.1.0 report (GitHub code-scanning annotations)" );
      ( "--exclude",
        Arg.String (fun p -> excludes := p :: !excludes),
        "PATH skip files under this path (repeatable)" );
      ( "--list-rules",
        Arg.Set list_rules,
        " print the rule catalogue and exit" );
    ]
    @ tool.extra_spec
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (id, doc) -> Printf.printf "%-22s %s\n" id doc)
      tool.rule_catalogue;
    exit 0
  end;
  if !roots = [] then begin
    Printf.eprintf "%s: no paths given\n" tool.name;
    Arg.usage spec usage;
    exit 2
  end;
  let files =
    walk_files ~suffixes:tool.suffixes ~excludes:!excludes (List.rev !roots)
  in
  let diagnostics =
    List.sort compare_diagnostic (tool.analyze ~files)
  in
  if !update_baseline then begin
    if !baseline_file = "" then begin
      Printf.eprintf "%s: --update-baseline needs --baseline FILE\n" tool.name;
      exit 2
    end;
    write_file !baseline_file
      (Printf.sprintf
         "# %s baseline: grandfathered violations (file:line:rule).\n\
          # Regenerate with: %s --baseline FILE --update-baseline PATH...\n%s"
         tool.name tool.name
         (String.concat ""
            (List.map (fun e -> e ^ "\n") (baseline_entries diagnostics))));
    Printf.printf "%s: baseline updated with %d entries\n" tool.name
      (List.length diagnostics);
    exit 0
  end;
  let baseline =
    if !baseline_file = "" then Hashtbl.create 1
    else load_baseline !baseline_file
  in
  let fresh, grandfathered =
    List.partition
      (fun d -> not (Hashtbl.mem baseline (baseline_key d)))
      diagnostics
  in
  (* Stale baseline entries are fixed sites: by default prompt for a
     re-baseline; under --check-baseline they fail the run, so the file
     only ever shrinks deliberately. *)
  let live = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace live (baseline_key d) ()) grandfathered;
  let stale = ref [] in
  Hashtbl.iter
    (fun key () -> if not (Hashtbl.mem live key) then stale := key :: !stale)
    baseline;
  let stale = List.sort compare !stale in
  List.iter
    (fun key ->
      Printf.eprintf "%s: stale baseline entry %s (fixed? run --update-baseline)\n"
        tool.name key)
    stale;
  if !json_out <> "" then
    write_file !json_out (diagnostics_to_json ~tool:tool.name fresh ^ "\n");
  if !sarif_out <> "" then
    write_file !sarif_out
      (diagnostics_to_sarif ~tool:tool.name ~rules:tool.rule_catalogue fresh
      ^ "\n");
  List.iter (fun d -> print_endline (to_string d)) fresh;
  let stale_fails = !check_baseline && stale <> [] in
  if fresh <> [] || stale_fails then begin
    Printf.eprintf
      "%s: %d violation(s) in %d file(s) scanned (%d grandfathered, %d stale)\n"
      tool.name (List.length fresh) (List.length files)
      (List.length grandfathered)
      (List.length stale);
    exit 1
  end
  else
    Printf.eprintf "%s: clean \xe2\x80\x94 %d file(s) scanned, %d grandfathered\n"
      tool.name (List.length files)
      (List.length grandfathered)
