module Json = Tdmd_obs.Json
module Tel = Tdmd_obs.Telemetry

(* Linking the serving layer brings the portfolio names (portfolio /
   anneal / genetic) into the registry: anytime solves depend on them
   and the registry tables are consulted before any request runs. *)
let () = Tdmd_portfolio.Register.install ()

(* ------------------------------------------------------------------ *)
(* Durability configuration                                            *)
(* ------------------------------------------------------------------ *)

type durability = {
  dir : string;
  fsync : Journal.fsync_policy;
  snapshot_every : int;
  faults : Faults.t;
}

let durability ?(fsync = Journal.Always) ?(snapshot_every = 0) ?(faults = Faults.none)
    dir =
  if snapshot_every < 0 then
    invalid_arg "Session.durability: snapshot_every must be >= 0";
  { dir; fsync; snapshot_every; faults }

let snapshot_file cfg = Filename.concat cfg.dir "snapshot.json"
let journal_file cfg epoch = Filename.concat cfg.dir (Printf.sprintf "journal-%d.wal" epoch)

let default_dedup_cap = 8192

(* ------------------------------------------------------------------ *)
(* Construction config                                                  *)
(* ------------------------------------------------------------------ *)

module Config = struct
  type nonrec t = {
    churn_k : int;
    migration_budget : int;
    dedup_cap : int;
    durability : durability option;
    dtel : Tdmd_obs.Telemetry.t option;
  }

  let default =
    {
      churn_k = 8;
      migration_budget = 0;
      dedup_cap = default_dedup_cap;
      durability = None;
      dtel = None;
    }
end

type durable = {
  cfg : durability;
  mutable journal : Journal.t;
  mutable epoch : int;
  mutable since_snapshot : int;
}

type t = {
  tree : Tdmd.Instance.Tree.t option;
  general : Tdmd.Instance.t;
  churn : Tdmd.Incremental.t;
  lock : Mutex.t;
  (* Idempotency ids of applied mutating ops.  Kept even without a
     journal — client retries exist either way — and snapshotted /
     rebuilt from the journal when one is configured.  Bounded: ids are
     remembered in arrival order and the oldest evicted past
     [dedup_cap], so memory and snapshot size stay O(cap) under
     unbounded churn (a retry must land within the last [cap] mutating
     ops to be suppressed). *)
  dedup : (string, unit) Hashtbl.t;
  dedup_order : string Queue.t;  (* insertion order, for eviction *)
  dedup_cap : int;
  dtel : Tel.t;  (* journal + dedup + snapshot counters, under the lock *)
  durable : durable option;
  (* Set by [abandon] when a supervisor retires this session in favor of
     a freshly recovered one.  A retired session answers every op
     "unavailable" instead of touching state whose journal lock it no
     longer holds. *)
  mutable dead : bool;
}

let dedup_remember ~tel ~cap table order r =
  if not (Hashtbl.mem table r) then begin
    Hashtbl.replace table r ();
    Queue.push r order;
    while Hashtbl.length table > cap do
      let oldest = Queue.pop order in
      Hashtbl.remove table oldest;
      Tel.count tel "dedup_evictions" 1
    done
  end

let remember t r = dedup_remember ~tel:t.dtel ~cap:t.dedup_cap t.dedup t.dedup_order r

let general t = t.general

type reply = (Json.t, string * string) result

let locked t f = Tdmd_prelude.Locked.with_lock t.lock f

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                      *)
(* ------------------------------------------------------------------ *)

let flow_to_json (f : Tdmd_flow.Flow.t) =
  Json.Obj
    [
      ("id", Json.Int f.Tdmd_flow.Flow.id);
      ("rate", Json.Int f.Tdmd_flow.Flow.rate);
      ( "path",
        Json.List
          (Array.to_list (Array.map (fun v -> Json.Int v) f.Tdmd_flow.Flow.path))
      );
    ]

let snapshot_json t d =
  let churn = t.churn in
  let ctel = Tdmd.Incremental.telemetry churn in
  Json.Obj
    [
      ("format", Json.Int 1);
      ("epoch", Json.Int d.epoch);
      ("k", Json.Int (Tel.get_count ctel "budget"));
      ("static", Protocol.instance_to_json t.general);
      ( "live",
        Json.Obj
          [
            ( "flows",
              Json.List (List.map flow_to_json (Tdmd.Incremental.flows churn)) );
            ( "placed",
              Json.List
                (List.map
                   (fun v -> Json.Int v)
                   (Tdmd.Incremental.placed_order churn)) );
            ("moves", Json.Int (Tdmd.Incremental.moves churn));
            ("arrivals", Json.Int (Tel.get_count ctel "arrivals"));
            ("departures", Json.Int (Tel.get_count ctel "departures"));
            (* The rebalancing state must ride along: replaying the
               journal only reproduces automatic rebalance passes under
               the same migration budget.  Absent in pre-rebalance
               snapshots; the parser defaults them to 0. *)
            ( "migration_budget",
              Json.Int (Tdmd.Incremental.migration_budget churn) );
            ("rebalances", Json.Int (Tdmd.Incremental.rebalances churn));
            ( "rebalance_moves",
              Json.Int (Tdmd.Incremental.rebalance_moves churn) );
          ] );
      (* Insertion order, oldest first: recovery must rebuild the same
         eviction order, not just the same set. *)
      ( "dedup",
        Json.List
          (List.rev
             (Queue.fold (fun acc k -> Json.String k :: acc) [] t.dedup_order))
      );
    ]

let ( let* ) = Result.bind

let int_field json name =
  match Json.member name json with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "snapshot: bad field %S" name)

(* Fields added after format-1 snapshots first shipped: absent means 0,
   so pre-rebalance snapshots keep recovering. *)
let opt_int_field json name =
  match Json.member name json with
  | Some (Json.Int i) -> Ok i
  | None -> Ok 0
  | Some _ -> Error (Printf.sprintf "snapshot: bad field %S" name)

type snapshot_state = {
  s_epoch : int;
  s_k : int;
  s_static : Tdmd.Instance.t;
  s_flows : Tdmd_flow.Flow.t list;
  s_placed : int list;
  s_moves : int;
  s_arrivals : int;
  s_departures : int;
  s_migration_budget : int;
  s_rebalances : int;
  s_rebalance_moves : int;
  s_dedup : string list;
}

let parse_snapshot json =
  let* format = int_field json "format" in
  if format <> 1 then Error (Printf.sprintf "snapshot: unsupported format %d" format)
  else begin
    let* epoch = int_field json "epoch" in
    let* k = int_field json "k" in
    let* static =
      match Json.member "static" json with
      | Some s -> Protocol.instance_of_json s
      | None -> Error "snapshot: missing field \"static\""
    in
    let* live =
      match Json.member "live" json with
      | Some l -> Ok l
      | None -> Error "snapshot: missing field \"live\""
    in
    let* flows =
      match Json.member "flows" live with
      | Some (Json.List fs) ->
        List.fold_right
          (fun f acc ->
            let* acc = acc in
            let* id = int_field f "id" in
            let* rate = int_field f "rate" in
            let* path =
              match Json.member "path" f with
              | Some (Json.List vs) ->
                List.fold_right
                  (fun v tail ->
                    let* tail = tail in
                    match v with
                    | Json.Int i -> Ok (i :: tail)
                    | _ -> Error "snapshot: flow path must be integers")
                  vs (Ok [])
              | _ -> Error "snapshot: flow missing \"path\""
            in
            match Tdmd_flow.Flow.make ~id ~rate ~path with
            | f -> Ok (f :: acc)
            | exception Invalid_argument msg -> Error ("snapshot: " ^ msg))
          fs (Ok [])
      | _ -> Error "snapshot: live missing \"flows\""
    in
    let* placed =
      match Json.member "placed" live with
      | Some (Json.List vs) ->
        List.fold_right
          (fun v acc ->
            let* acc = acc in
            match v with
            | Json.Int i -> Ok (i :: acc)
            | _ -> Error "snapshot: placed must be integers")
          vs (Ok [])
      | _ -> Error "snapshot: live missing \"placed\""
    in
    let* moves = int_field live "moves" in
    let* arrivals = int_field live "arrivals" in
    let* departures = int_field live "departures" in
    let* migration_budget = opt_int_field live "migration_budget" in
    let* rebalances = opt_int_field live "rebalances" in
    let* rebalance_moves = opt_int_field live "rebalance_moves" in
    let* dedup =
      match Json.member "dedup" json with
      | Some (Json.List vs) ->
        List.fold_right
          (fun v acc ->
            let* acc = acc in
            match v with
            | Json.String s -> Ok (s :: acc)
            | _ -> Error "snapshot: dedup entries must be strings")
          vs (Ok [])
      | None -> Ok []
      | Some _ -> Error "snapshot: field \"dedup\" must be a list"
    in
    Ok
      {
        s_epoch = epoch;
        s_k = k;
        s_static = static;
        s_flows = flows;
        s_placed = placed;
        s_moves = moves;
        s_arrivals = arrivals;
        s_departures = departures;
        s_migration_budget = migration_budget;
        s_rebalances = rebalances;
        s_rebalance_moves = rebalance_moves;
        s_dedup = dedup;
      }
  end

(* Crash-safe snapshot write: tmp + fsync + rename + directory fsync.
   Journal segment rotation happens around it (see [write_snapshot]) so
   that a crash at any point leaves either the old (snapshot, segment)
   pair or the new one — never a snapshot whose ops are still in the
   live segment. *)
let write_snapshot_file cfg json =
  let tmp = snapshot_file cfg ^ ".tmp" in
  let payload = Bytes.of_string (Json.to_string json ^ "\n") in
  Faults.hit cfg.faults "snap.pre_write";
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Protocol.write_all ~faults:cfg.faults ~point:"snap.write" fd payload;
      Unix.fsync fd);
  Faults.hit cfg.faults "snap.pre_rename";
  Sys.rename tmp (snapshot_file cfg);
  (* Make the rename itself durable. *)
  (try
     let dfd = Unix.openfile cfg.dir [ Unix.O_RDONLY ] 0 in
     Fun.protect
       ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
       (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
   with Unix.Unix_error _ -> ());
  Faults.hit cfg.faults "snap.post_rename";
  Bytes.length payload

(* Under the session lock.  Ordering: (1) open + lock the next segment,
   (2) snapshot pointing at it, (3) retire the old segment.  A crash
   between any two steps recovers consistently (the snapshot names the
   segment to replay). *)
let write_snapshot t d =
  let next_epoch = d.epoch + 1 in
  let next_journal, ops =
    Journal.open_append ~faults:d.cfg.faults ~tel:t.dtel ~fsync:d.cfg.fsync
      (journal_file d.cfg next_epoch)
  in
  (* A leftover segment from a crashed snapshot attempt must be empty of
     meaning: its ops were never referenced by any snapshot.  Drop them. *)
  if ops <> [] then Journal.reset next_journal;
  let old_epoch = d.epoch in
  let old_journal = d.journal in
  d.epoch <- next_epoch;
  let bytes =
    match write_snapshot_file d.cfg (snapshot_json t d) with
    | b -> b
    | exception (Faults.Crash _ as e) ->
      (* A simulated kill -9 must not clean up: recovery has to cope
         with the half-rotated directory exactly as a real crash leaves
         it (old snapshot + old segment still present, next segment
         half-born). *)
      raise e
    | exception e ->
      (* Snapshot failed: stay on the old segment, next attempt retries. *)
      d.epoch <- old_epoch;
      Journal.close next_journal;
      (try Sys.remove (journal_file d.cfg next_epoch) with Sys_error _ -> ());
      raise e
  in
  d.journal <- next_journal;
  Journal.close old_journal;
  (try Sys.remove (journal_file d.cfg old_epoch) with Sys_error _ -> ());
  Faults.hit d.cfg.faults "snap.post_retire";
  d.since_snapshot <- 0;
  Tel.count t.dtel "snapshots" 1;
  Tel.gauge t.dtel "snapshot_bytes" (float_of_int bytes)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ?durable ~dtel ~dedup_cap ~churn_k ~migration_budget tree general =
  if dedup_cap < 1 then invalid_arg "Session: dedup_cap must be >= 1";
  let churn =
    Tdmd.Incremental.create ~migration_budget
      ~graph:general.Tdmd.Instance.graph ~lambda:general.Tdmd.Instance.lambda
      ~k:churn_k ()
  in
  {
    tree;
    general;
    churn;
    lock = Mutex.create ();
    dedup = Hashtbl.create 64;
    dedup_order = Queue.create ();
    dedup_cap;
    dtel;
    durable;
    dead = false;
  }

let init_durable ~dtel cfg =
  if Sys.file_exists (snapshot_file cfg) then
    raise
      (Sys_error
         (Printf.sprintf
            "%s already holds a snapshot — recover from it instead of starting fresh"
            cfg.dir));
  if not (Sys.file_exists cfg.dir) then Unix.mkdir cfg.dir 0o755;
  let journal, ops =
    Journal.open_append ~faults:cfg.faults ~tel:dtel ~fsync:cfg.fsync
      (journal_file cfg 0)
  in
  (* Ops in an epoch-0 segment with no snapshot would replay from the
     empty initial state; the seed snapshot written right after this
     rotates them away anyway. *)
  ignore ops;
  { cfg; journal; epoch = 0; since_snapshot = 0 }

let build ~(config : Config.t) tree general =
  let dtel =
    match config.Config.dtel with Some t -> t | None -> Tel.create ()
  in
  let dedup_cap = config.Config.dedup_cap and churn_k = config.Config.churn_k in
  let migration_budget = config.Config.migration_budget in
  match config.Config.durability with
  | None -> make ~dtel ~dedup_cap ~churn_k ~migration_budget tree general
  | Some cfg ->
    let d = init_durable ~dtel cfg in
    let t =
      make ~durable:d ~dtel ~dedup_cap ~churn_k ~migration_budget tree general
    in
    (* Seed snapshot: from here on the directory is self-contained. *)
    locked t (fun () -> write_snapshot t d);
    t

let create ?(config = Config.default) inst = build ~config None inst

let create_tree ?(config = Config.default) tree_inst =
  build ~config (Some tree_inst) (Tdmd.Instance.Tree.to_general tree_inst)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let apply_op churn = function
  | Journal.Arrive { id; rate; path; req = _ } ->
    Tdmd.Incremental.arrive churn (Tdmd_flow.Flow.make ~id ~rate ~path)
  | Journal.Depart { flow_id; req = _ } ->
    (* Unknown departs are refused before they reach the journal, so a
       live id is guaranteed here — except in journals written before
       that check existed, whose phantom records replay as the no-op
       they effectively were. *)
    if Tdmd.Incremental.mem_flow churn flow_id then
      Tdmd.Incremental.depart churn flow_id
  | Journal.Rebalance { budget; req = _ } ->
    (* The journalled budget is the resolved one, so replay spends
       exactly the moves the original call did. *)
    ignore (Tdmd.Incremental.rebalance ~budget churn)
  | Journal.Cross_prepare _ | Journal.Cross_done _ ->
    (* Coordinator records never land in a shard journal; treat one as
       the corruption it is rather than silently skipping it. *)
    invalid_arg "cross-shard record in a shard journal"

let op_req = function
  | Journal.Arrive { req; _ }
  | Journal.Depart { req; _ }
  | Journal.Rebalance { req; _ } ->
    req
  | Journal.Cross_prepare { xid; _ } | Journal.Cross_done { xid } -> Some xid

let segment_epoch name =
  let pre = "journal-" and suf = ".wal" in
  let pl = String.length pre and sl = String.length suf in
  let n = String.length name in
  if n > pl + sl && String.sub name 0 pl = pre && String.sub name (n - sl) sl = suf
  then int_of_string_opt (String.sub name pl (n - pl - sl))
  else None

(* A crash between the snapshot rename and retiring the old segment —
   or between opening the next segment and the rename — leaves a
   journal segment no snapshot will ever name again.  Only the segment
   the snapshot points at carries meaning; everything else (and a
   leftover snapshot tmp) is garbage that would otherwise accumulate
   forever. *)
let remove_stale_files cfg ~tel ~keep_epoch =
  match Sys.readdir cfg.dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        let stale =
          match segment_epoch name with
          | Some e -> e <> keep_epoch
          | None -> name = Filename.basename (snapshot_file cfg) ^ ".tmp"
        in
        if stale then begin
          (try Sys.remove (Filename.concat cfg.dir name) with Sys_error _ -> ());
          Tel.count tel "wal_stale_segments_removed" 1
        end)
      entries

let recover ?(dedup_cap = default_dedup_cap) cfg =
  if dedup_cap < 1 then invalid_arg "Session.recover: dedup_cap must be >= 1";
  let* json =
    match read_file (snapshot_file cfg) with
    | contents -> Json.of_string contents
    | exception Sys_error msg -> Error ("cannot read snapshot: " ^ msg)
  in
  let* snap = parse_snapshot json in
  let epoch = snap.s_epoch and static = snap.s_static in
  let* churn =
    match
      Tdmd.Incremental.restore ~migration_budget:snap.s_migration_budget
        ~rebalances:snap.s_rebalances ~rebalance_moves:snap.s_rebalance_moves
        ~graph:static.Tdmd.Instance.graph ~lambda:static.Tdmd.Instance.lambda
        ~k:snap.s_k ~flows:snap.s_flows ~placed:snap.s_placed
        ~moves:snap.s_moves ~arrivals:snap.s_arrivals
        ~departures:snap.s_departures ()
    with
    | churn -> Ok churn
    | exception Invalid_argument msg -> Error ("snapshot state invalid: " ^ msg)
  in
  let dtel = Tel.create () in
  remove_stale_files cfg ~tel:dtel ~keep_epoch:epoch;
  let* journal, ops =
    match
      Journal.open_append ~faults:cfg.faults ~tel:dtel ~fsync:cfg.fsync
        (journal_file cfg epoch)
    with
    | r -> Ok r
    | exception Sys_error msg -> Error msg
  in
  let dedup = Hashtbl.create 64 in
  let dedup_order = Queue.create () in
  let rememb = dedup_remember ~tel:dtel ~cap:dedup_cap dedup dedup_order in
  List.iter rememb snap.s_dedup;
  let* () =
    try
      List.iter
        (fun op ->
          apply_op churn op;
          match op_req op with Some r -> rememb r | None -> ())
        ops;
      Ok ()
    with Invalid_argument msg ->
      Journal.close journal;
      Error ("journal replay failed: " ^ msg)
  in
  let d = { cfg; journal; epoch; since_snapshot = List.length ops } in
  let t =
    {
      tree = None;
      general = static;
      churn;
      lock = Mutex.create ();
      dedup;
      dedup_order;
      dedup_cap;
      dtel;
      durable = Some d;
      dead = false;
    }
  in
  Ok t

(* ------------------------------------------------------------------ *)
(* Solve dispatch (unchanged by durability)                            *)
(* ------------------------------------------------------------------ *)

let outcome_fields ~algo ~k ~seed ~target
    { Tdmd.Solver_intf.placement; bandwidth; feasible; telemetry } =
  [
    ("algo", Json.String algo);
    ("k", Json.Int k);
    ("seed", Json.Int seed);
    ( "on",
      Json.String
        (match target with Protocol.Static -> "static" | Protocol.Live -> "live") );
    ( "placement",
      Json.List
        (List.map (fun v -> Json.Int v) (Tdmd.Placement.to_list placement)) );
    ("bandwidth", Json.Float bandwidth);
    ("feasible", Json.Bool feasible);
    ("telemetry", Tdmd_obs.Telemetry.to_json telemetry);
  ]

(* General-registry dispatch against an explicit instance: the sharded
   engine solves Live over the union of all shards' flows with this. *)
let solve_on_instance ~algo ~k ~seed ~target inst =
  match Tdmd.Solvers.find_general algo with
  | None -> Error ("unknown-algo", Tdmd.Solvers.describe_unknown algo)
  | Some f -> (
    let rng = Tdmd_prelude.Rng.create seed in
    match f ~rng ~k inst with
    | outcome -> Ok (Json.Obj (outcome_fields ~algo ~k ~seed ~target outcome))
    | exception Invalid_argument msg -> Error ("bad-request", msg)
    | exception Failure msg -> Error ("bad-request", msg))

let solve t ~algo ~k ~seed ~target =
  let rng = Tdmd_prelude.Rng.create seed in
  let run =
    match target with
    | Protocol.Static -> (
      match t.tree with
      | Some tree_inst -> (
        match Tdmd.Solvers.on_tree algo with
        | Some f -> Ok (fun () -> f ~rng ~k tree_inst)
        | None -> Error (Tdmd.Solvers.describe_unknown ~tree_input:true algo))
      | None -> (
        match Tdmd.Solvers.find_general algo with
        | Some f -> Ok (fun () -> f ~rng ~k t.general)
        | None -> Error (Tdmd.Solvers.describe_unknown algo)))
    | Protocol.Live -> (
      match Tdmd.Solvers.find_general algo with
      | Some f ->
        (* Snapshot under the lock, solve outside it. *)
        let snapshot = locked t (fun () -> Tdmd.Incremental.instance t.churn) in
        Ok (fun () -> f ~rng ~k snapshot)
      | None -> Error (Tdmd.Solvers.describe_unknown algo))
  in
  match run with
  | Error msg -> Error ("unknown-algo", msg)
  | Ok run -> (
    match run () with
    | outcome -> Ok (Json.Obj (outcome_fields ~algo ~k ~seed ~target outcome))
    | exception Invalid_argument msg -> Error ("bad-request", msg)
    | exception Failure msg -> Error ("bad-request", msg))

(* ------------------------------------------------------------------ *)
(* Anytime solves (deadline-bounded portfolio race)                    *)
(* ------------------------------------------------------------------ *)

(* Any registry name becomes an anytime request: the three portfolio
   names select their members directly, any other known solver races as
   a restart-wrapped seed against the two metaheuristics. *)
let anytime_members ~has_tree algo =
  match algo with
  | "portfolio" -> Ok Tdmd_portfolio.Portfolio.default_members
  | "anneal" -> Ok [ Tdmd_portfolio.Portfolio.Anneal ]
  | "genetic" -> Ok [ Tdmd_portfolio.Portfolio.Genetic ]
  | _ ->
    if
      Option.is_some (Tdmd.Solvers.find_general algo)
      || (has_tree && Option.is_some (Tdmd.Solvers.find_tree algo))
    then
      Ok
        [
          Tdmd_portfolio.Portfolio.Seed algo;
          Tdmd_portfolio.Portfolio.Anneal;
          Tdmd_portfolio.Portfolio.Genetic;
        ]
    else Error (Tdmd.Solvers.describe_unknown ~tree_input:has_tree algo)

let solve_anytime_on_instance ?tree ~algo ~k ~seed ~target ~budget_ms inst =
  match anytime_members ~has_tree:(Option.is_some tree) algo with
  | Error msg -> Error ("unknown-algo", msg)
  | Ok members -> (
    let run () =
      let rng = Tdmd_prelude.Rng.create seed in
      let t = Tdmd_portfolio.Portfolio.start ~members ?tree ~rng ~k inst in
      let best =
        Tdmd_portfolio.Portfolio.await ~deadline_ms:budget_ms t
      in
      let outcome = Tdmd_portfolio.Portfolio.outcome_of t best in
      Json.Obj
        (outcome_fields ~algo ~k ~seed ~target outcome
        @ [
            ("anytime", Json.Bool true);
            ("budget_ms", Json.Int budget_ms);
            ( "member",
              Json.String
                (match best with
                | Some b -> b.Tdmd_portfolio.Portfolio.member
                | None -> "fallback") );
            ( "improvements",
              Json.Int (Tdmd_portfolio.Portfolio.improvements t) );
          ])
    in
    match run () with
    | obj -> Ok obj
    | exception Invalid_argument msg -> Error ("bad-request", msg)
    | exception Failure msg -> Error ("bad-request", msg))

let solve_anytime t ~algo ~k ~seed ~target ~budget_ms =
  match target with
  | Protocol.Static ->
    solve_anytime_on_instance ?tree:t.tree ~algo ~k ~seed ~target ~budget_ms
      t.general
  | Protocol.Live ->
    (* Snapshot under the lock, race outside it — same discipline as
       the run-to-completion path. *)
    let snapshot = locked t (fun () -> Tdmd.Incremental.instance t.churn) in
    solve_anytime_on_instance ~algo ~k ~seed ~target ~budget_ms snapshot

(* ------------------------------------------------------------------ *)
(* Churn (journaled when durable)                                      *)
(* ------------------------------------------------------------------ *)

let churn_fields_unlocked t =
  let placement = Tdmd.Incremental.placement t.churn in
  [
    ("flows", Json.Int (Tdmd.Incremental.flow_count t.churn));
    ( "placement",
      Json.List
        (List.map (fun v -> Json.Int v) (Tdmd.Placement.to_list placement)) );
    ("bandwidth", Json.Float (Tdmd.Incremental.bandwidth t.churn));
    ("feasible", Json.Bool (Tdmd.Incremental.feasible t.churn));
    ("moves", Json.Int (Tdmd.Incremental.moves t.churn));
    ( "arrivals",
      Json.Int
        (Tdmd_obs.Telemetry.get_count (Tdmd.Incremental.telemetry t.churn)
           "arrivals") );
    ( "departures",
      Json.Int
        (Tdmd_obs.Telemetry.get_count (Tdmd.Incremental.telemetry t.churn)
           "departures") );
    ("rebalances", Json.Int (Tdmd.Incremental.rebalances t.churn));
    ("rebalance_moves", Json.Int (Tdmd.Incremental.rebalance_moves t.churn));
  ]

let churn_stats t = locked t (fun () -> churn_fields_unlocked t)

let live_instance t = locked t (fun () -> Tdmd.Incremental.instance t.churn)
let live_flows t = locked t (fun () -> Tdmd.Incremental.flows t.churn)

type churn_summary = {
  live_flows : int;
  placement : Tdmd.Placement.t;
  bandwidth : float;
  feasible : bool;
  moves : int;
  arrivals : int;
  departures : int;
  rebalances : int;
  rebalance_moves : int;
}

let churn_summary t =
  locked t (fun () ->
      let ctel = Tdmd.Incremental.telemetry t.churn in
      {
        live_flows = Tdmd.Incremental.flow_count t.churn;
        placement = Tdmd.Incremental.placement t.churn;
        bandwidth = Tdmd.Incremental.bandwidth t.churn;
        feasible = Tdmd.Incremental.feasible t.churn;
        moves = Tdmd.Incremental.moves t.churn;
        arrivals = Tel.get_count ctel "arrivals";
        departures = Tel.get_count ctel "departures";
        rebalances = Tdmd.Incremental.rebalances t.churn;
        rebalance_moves = Tdmd.Incremental.rebalance_moves t.churn;
      })

(* Dedup check, WAL append, apply, snapshot — all under the session
   lock.  The journal record precedes the state change (write-ahead):
   if we die between the two, replay applies the op and its [req] lands
   in the rebuilt dedup table, so the client's retry is suppressed and
   observes the applied state.  Callers must finish all validation
   before calling: nothing may enter the journal that [apply] (and
   hence replay) would refuse. *)
let dedup_reply t ~op_name =
  Tel.count t.dtel "dedup_hits" 1;
  Ok
    (Json.Obj
       (("op", Json.String op_name)
       :: ("dedup", Json.Bool true)
       :: churn_fields_unlocked t))

type batch_op =
  | Batch_arrive of { req : string option; id : int; rate : int; path : int list }
  | Batch_depart of { req : string option; flow_id : int }
  | Batch_rebalance of { req : string option; budget : int option }

(* One op under the (held) session lock.  Group commit: the journal
   record is appended with [~flush:false]; the caller fires one
   policy-respecting {!Journal.flush} per batch, so a batch of b ops
   costs one fsync instead of b.  Returns whether a record was appended
   alongside the reply, so a failed batch-end flush can downgrade
   exactly the replies whose durability it lost. *)
let journaled_unlocked t ~req ~op_name ~(op : unit -> Journal.op)
    ~(apply : unit -> (string * Json.t) list) =
  let appended =
    match t.durable with
    | Some d -> (
      match Journal.append ~flush:false d.journal (op ()) with
      | () -> Ok true
      (* Oversized record: refused before anything reached the disk
         or the engine — a definitive answer, not worth a retry. *)
      | exception Invalid_argument msg -> Error ("bad-request", msg)
      (* Poisoned or failed append: the append invariant was restored
         (or the journal poisoned), nothing was applied.  Answer this
         op; the rest of the batch still gets its chance. *)
      | exception Sys_error msg -> Error ("internal", msg)
      | exception Unix.Unix_error (err, fn, _) ->
        Error ("internal", Printf.sprintf "%s: %s" fn (Unix.error_message err)))
    | None -> Ok false
  in
  match appended with
  | Error e -> (false, Error e)
  | Ok journaled ->
    (* [apply] returns op-specific reply fields (e.g. rebalance's
       moves spent) appended after the shared churn fields. *)
    let extra = apply () in
    (match req with Some r -> remember t r | None -> ());
    (match t.durable with
    | Some d ->
      d.since_snapshot <- d.since_snapshot + 1;
      if d.cfg.snapshot_every > 0 && d.since_snapshot >= d.cfg.snapshot_every
      then write_snapshot t d
    | None -> ());
    ( journaled,
      Ok
        (Json.Obj
           ((("op", Json.String op_name) :: churn_fields_unlocked t) @ extra))
    )

let apply_one_unlocked t bop =
  match bop with
  | Batch_arrive { req; id; rate; path } -> (
    match Tdmd_flow.Flow.make ~id ~rate ~path with
    | exception Invalid_argument msg -> (false, Error ("bad-request", msg))
    | flow -> (
      (* Dedup before the duplicate-id check: a retry of an applied
         arrive would otherwise be answered "conflict" — with its own
         flow. *)
      match req with
      | Some r when Hashtbl.mem t.dedup r ->
        (false, dedup_reply t ~op_name:"arrive")
      | _ ->
        if Tdmd.Incremental.mem_flow t.churn id then
          (false, Error ("conflict", Printf.sprintf "flow %d is already active" id))
        else begin
          match Tdmd_flow.Flow.validate t.general.Tdmd.Instance.graph flow with
          | Error msg -> (false, Error ("bad-request", msg))
          | Ok () ->
            journaled_unlocked t ~req ~op_name:"arrive"
              ~op:(fun () -> Journal.Arrive { id; rate; path; req })
              ~apply:(fun () ->
                Tdmd.Incremental.arrive t.churn flow;
                [])
        end))
  | Batch_depart { req; flow_id } -> (
    match req with
    | Some r when Hashtbl.mem t.dedup r -> (false, dedup_reply t ~op_name:"depart")
    | _ ->
      (* Unknown ids must be refused here, before the journal sees the
         record: the engine treats them as a caller bug, and replay must
         never encounter an op the live path would have raised on. *)
      if not (Tdmd.Incremental.mem_flow t.churn flow_id) then
        (false, Error ("conflict", Printf.sprintf "flow %d is not active" flow_id))
      else
        journaled_unlocked t ~req ~op_name:"depart"
          ~op:(fun () -> Journal.Depart { flow_id; req })
          ~apply:(fun () ->
            Tdmd.Incremental.depart t.churn flow_id;
            []))
  | Batch_rebalance { req; budget } -> (
    match budget with
    | Some b when b < 0 ->
      (false, Error ("bad-request", "rebalance: budget must be >= 0"))
    | _ -> (
      match req with
      | Some r when Hashtbl.mem t.dedup r ->
        (false, dedup_reply t ~op_name:"rebalance")
      | _ ->
        (* Journal the *resolved* budget: replay must spend exactly the
           moves this call did even if the engine is later recovered
           under a different default. *)
        let b =
          match budget with
          | Some b -> b
          | None -> Tdmd.Incremental.migration_budget t.churn
        in
        journaled_unlocked t ~req ~op_name:"rebalance"
          ~op:(fun () -> Journal.Rebalance { budget = b; req })
          ~apply:(fun () ->
            let used = Tdmd.Incremental.rebalance ~budget:b t.churn in
            [ ("budget", Json.Int b); ("moves_used", Json.Int used) ])))

let apply_batch t ops =
  match ops with
  | [] -> []
  | ops ->
    locked t (fun () ->
        if t.dead then
          List.map
            (fun _ -> Error ("unavailable", "session retired; retry"))
            ops
        else begin
        let out = List.map (fun bop -> apply_one_unlocked t bop) ops in
        let flush_result =
          match t.durable with
          | Some d when List.exists fst out -> (
            match Journal.flush d.journal with
            | () -> Ok ()
            | exception Sys_error msg -> Error ("internal", msg)
            | exception Unix.Unix_error (err, fn, _) ->
              Error
                ("internal", Printf.sprintf "%s: %s" fn (Unix.error_message err)))
          | _ -> Ok ()
        in
        match flush_result with
        | Ok () -> List.map snd out
        | Error e ->
          (* The fsync failed: every record this batch appended is on
             disk but of unknown durability (the journal is now
             poisoned).  Never ack what we cannot promise. *)
          List.map
            (fun (journaled, reply) -> if journaled then Error e else reply)
            out
        end)

let arrive t ?req ~id ~rate ~path () =
  match apply_batch t [ Batch_arrive { req; id; rate; path } ] with
  | [ reply ] -> reply
  | _ -> assert false

let depart t ?req id =
  match apply_batch t [ Batch_depart { req; flow_id = id } ] with
  | [ reply ] -> reply
  | _ -> assert false

let rebalance t ?req ?budget () =
  match apply_batch t [ Batch_rebalance { req; budget } ] with
  | [ reply ] -> reply
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Durability stats and shutdown                                       *)
(* ------------------------------------------------------------------ *)

let durability_stats t =
  locked t (fun () ->
      match t.durable with
      | None -> []
      | Some d ->
        let c name = Json.Int (Tel.get_count t.dtel name) in
        [
          ( "durability",
            Json.Obj
              [
                ("dir", Json.String d.cfg.dir);
                ( "fsync",
                  Json.String (Journal.fsync_policy_to_string d.cfg.fsync) );
                ("epoch", Json.Int d.epoch);
                ("journal_bytes", Json.Int (Journal.size_bytes d.journal));
                ("wal_appends", c "wal_appends");
                ("wal_fsyncs", c "wal_fsyncs");
                ("wal_replayed", c "wal_replayed");
                ("wal_torn_truncations", c "wal_torn_truncations");
                ("wal_append_failures", c "wal_append_failures");
                ("wal_poisoned", Json.Bool (Journal.poisoned d.journal));
                ("wal_stale_segments_removed", c "wal_stale_segments_removed");
                ("snapshots", c "snapshots");
                ("dedup_size", Json.Int (Hashtbl.length t.dedup));
                ("dedup_cap", Json.Int t.dedup_cap);
                ("dedup_hits", c "dedup_hits");
                ("dedup_evictions", c "dedup_evictions");
              ] );
        ])

let durability_telemetry t = t.dtel

let wal_poisoned t =
  locked t (fun () ->
      match t.durable with
      | None -> false
      | Some d -> Journal.poisoned d.journal)

let close t =
  locked t (fun () ->
      match t.durable with
      | None -> ()
      | Some _ when t.dead -> ()
      | Some d ->
        (* Final snapshot: restart after a clean shutdown replays
           nothing. *)
        write_snapshot t d;
        Journal.close d.journal)

(* Supervised-restart retirement: the caller is about to [recover] a
   replacement from disk, so no snapshot is written (the journal is the
   authority) and journal errors are moot — just release the descriptor
   and fence future ops. *)
let abandon t =
  locked t (fun () ->
      if not t.dead then begin
        t.dead <- true;
        match t.durable with
        | None -> ()
        | Some d -> Journal.abandon d.journal
      end)
