module Json = Tdmd_obs.Json

type t = {
  tree : Tdmd.Instance.Tree.t option;
  general : Tdmd.Instance.t;
  churn : Tdmd.Incremental.t;
  lock : Mutex.t;
}

let make ~churn_k tree general =
  {
    tree;
    general;
    churn =
      Tdmd.Incremental.create ~graph:general.Tdmd.Instance.graph
        ~lambda:general.Tdmd.Instance.lambda ~k:churn_k;
    lock = Mutex.create ();
  }

let of_general ~churn_k inst = make ~churn_k None inst

let of_tree ~churn_k tree =
  make ~churn_k (Some tree) (Tdmd.Instance.Tree.to_general tree)

let general t = t.general

type reply = (Json.t, string * string) result

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let outcome_fields ~algo ~k ~seed ~target
    { Tdmd.Solver_intf.placement; bandwidth; feasible; telemetry } =
  [
    ("algo", Json.String algo);
    ("k", Json.Int k);
    ("seed", Json.Int seed);
    ( "on",
      Json.String
        (match target with Protocol.Static -> "static" | Protocol.Live -> "live") );
    ( "placement",
      Json.List
        (List.map (fun v -> Json.Int v) (Tdmd.Placement.to_list placement)) );
    ("bandwidth", Json.Float bandwidth);
    ("feasible", Json.Bool feasible);
    ("telemetry", Tdmd_obs.Telemetry.to_json telemetry);
  ]

let solve t ~algo ~k ~seed ~target =
  let rng = Tdmd_prelude.Rng.create seed in
  let run =
    match target with
    | Protocol.Static -> (
      match t.tree with
      | Some tree_inst -> (
        match Tdmd.Solvers.on_tree algo with
        | Some f -> Ok (fun () -> f ~rng ~k tree_inst)
        | None -> Error (Tdmd.Solvers.describe_unknown ~tree_input:true algo))
      | None -> (
        match Tdmd.Solvers.find_general algo with
        | Some f -> Ok (fun () -> f ~rng ~k t.general)
        | None -> Error (Tdmd.Solvers.describe_unknown algo)))
    | Protocol.Live -> (
      match Tdmd.Solvers.find_general algo with
      | Some f ->
        (* Snapshot under the lock, solve outside it. *)
        let snapshot = locked t (fun () -> Tdmd.Incremental.instance t.churn) in
        Ok (fun () -> f ~rng ~k snapshot)
      | None -> Error (Tdmd.Solvers.describe_unknown algo))
  in
  match run with
  | Error msg -> Error ("unknown-algo", msg)
  | Ok run -> (
    match run () with
    | outcome -> Ok (Json.Obj (outcome_fields ~algo ~k ~seed ~target outcome))
    | exception Invalid_argument msg -> Error ("bad-request", msg)
    | exception Failure msg -> Error ("bad-request", msg))

let churn_fields_unlocked t =
  let placement = Tdmd.Incremental.placement t.churn in
  [
    ("flows", Json.Int (List.length (Tdmd.Incremental.flows t.churn)));
    ( "placement",
      Json.List
        (List.map (fun v -> Json.Int v) (Tdmd.Placement.to_list placement)) );
    ("bandwidth", Json.Float (Tdmd.Incremental.bandwidth t.churn));
    ("feasible", Json.Bool (Tdmd.Incremental.feasible t.churn));
    ("moves", Json.Int (Tdmd.Incremental.moves t.churn));
    ( "arrivals",
      Json.Int
        (Tdmd_obs.Telemetry.get_count (Tdmd.Incremental.telemetry t.churn)
           "arrivals") );
    ( "departures",
      Json.Int
        (Tdmd_obs.Telemetry.get_count (Tdmd.Incremental.telemetry t.churn)
           "departures") );
  ]

let churn_stats t = locked t (fun () -> churn_fields_unlocked t)

let arrive t ~id ~rate ~path =
  match Tdmd_flow.Flow.make ~id ~rate ~path with
  | exception Invalid_argument msg -> Error ("bad-request", msg)
  | flow ->
    locked t (fun () ->
        if
          List.exists
            (fun (f : Tdmd_flow.Flow.t) -> f.Tdmd_flow.Flow.id = id)
            (Tdmd.Incremental.flows t.churn)
        then Error ("conflict", Printf.sprintf "flow %d is already active" id)
        else begin
          match Tdmd.Incremental.arrive t.churn flow with
          | () ->
            Ok (Json.Obj (("op", Json.String "arrive") :: churn_fields_unlocked t))
          | exception Invalid_argument msg -> Error ("bad-request", msg)
        end)

let depart t id =
  locked t (fun () ->
      Tdmd.Incremental.depart t.churn id;
      Ok (Json.Obj (("op", Json.String "depart") :: churn_fields_unlocked t)))
