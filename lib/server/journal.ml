module Json = Tdmd_obs.Json
module Crc32 = Tdmd_prelude.Crc32

(* ------------------------------------------------------------------ *)
(* Operations and their codec                                          *)
(* ------------------------------------------------------------------ *)

type op =
  | Arrive of { id : int; rate : int; path : int list; req : string option }
  | Depart of { flow_id : int; req : string option }
  | Rebalance of { budget : int; req : string option }
  | Cross_prepare of { xid : string; home : int; op : op }
  | Cross_done of { xid : string }

let req_field = function
  | Some r -> [ ("req", Json.String r) ]
  | None -> []

let rec op_to_json = function
  | Arrive { id; rate; path; req } ->
    Json.Obj
      ([
         ("op", Json.String "arrive");
         ("id", Json.Int id);
         ("rate", Json.Int rate);
         ("path", Json.List (List.map (fun v -> Json.Int v) path));
       ]
      @ req_field req)
  | Depart { flow_id; req } ->
    Json.Obj
      ([ ("op", Json.String "depart"); ("flow_id", Json.Int flow_id) ]
      @ req_field req)
  | Rebalance { budget; req } ->
    Json.Obj
      ([ ("op", Json.String "rebalance"); ("budget", Json.Int budget) ]
      @ req_field req)
  | Cross_prepare { xid; home; op } ->
    Json.Obj
      [
        ("op", Json.String "cross-prepare");
        ("xid", Json.String xid);
        ("home", Json.Int home);
        ("inner", op_to_json op);
      ]
  | Cross_done { xid } ->
    Json.Obj [ ("op", Json.String "cross-done"); ("xid", Json.String xid) ]

let ( let* ) = Result.bind

let int_field json name =
  match Json.member name json with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "journal record: bad field %S" name)

let req_of json =
  match Json.member "req" json with
  | None -> Ok None
  | Some (Json.String r) -> Ok (Some r)
  | Some _ -> Error "journal record: field \"req\" must be a string"

let string_field json name =
  match Json.member name json with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "journal record: bad field %S" name)

let rec op_of_json json =
  match Json.member "op" json with
  | Some (Json.String "arrive") ->
    let* id = int_field json "id" in
    let* rate = int_field json "rate" in
    let* path =
      match Json.member "path" json with
      | Some (Json.List vs) ->
        List.fold_right
          (fun v acc ->
            let* acc = acc in
            match v with
            | Json.Int i -> Ok (i :: acc)
            | _ -> Error "journal record: path must be a list of integers")
          vs (Ok [])
      | _ -> Error "journal record: missing field \"path\""
    in
    let* req = req_of json in
    Ok (Arrive { id; rate; path; req })
  | Some (Json.String "depart") ->
    let* flow_id = int_field json "flow_id" in
    let* req = req_of json in
    Ok (Depart { flow_id; req })
  | Some (Json.String "rebalance") ->
    let* budget = int_field json "budget" in
    if budget < 0 then Error "journal record: rebalance budget must be >= 0"
    else
      let* req = req_of json in
      Ok (Rebalance { budget; req })
  | Some (Json.String "cross-prepare") ->
    let* xid = string_field json "xid" in
    let* home = int_field json "home" in
    let* op =
      match Json.member "inner" json with
      | Some inner -> op_of_json inner
      | None -> Error "journal record: missing field \"inner\""
    in
    (match op with
    | Cross_prepare _ | Cross_done _ ->
      Error "journal record: cross records do not nest"
    | Rebalance _ ->
      (* Rebalance is per-shard local (each shard spends its own budget
         on its own placement), so it never rides the cross-shard
         prepare path. *)
      Error "journal record: rebalance cannot be cross-shard"
    | Arrive _ | Depart _ -> Ok (Cross_prepare { xid; home; op }))
  | Some (Json.String "cross-done") ->
    let* xid = string_field json "xid" in
    Ok (Cross_done { xid })
  | Some (Json.String other) ->
    Error (Printf.sprintf "journal record: unknown op %S" other)
  | _ -> Error "journal record: missing field \"op\""

(* ------------------------------------------------------------------ *)
(* On-disk framing                                                     *)
(* ------------------------------------------------------------------ *)

(* A length that decodes above this is necessarily corruption: single
   records are tiny (one churn op). *)
let max_record = 1 lsl 20

let be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let set_be32 b off v =
  Bytes.set_uint8 b off ((v lsr 24) land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 3) (v land 0xff)

let encode op =
  let payload = Json.to_string (op_to_json op) in
  let len = String.length payload in
  (* Replay treats len > max_record as corruption, so writing such a
     record would make it — and every record after it — unreadable.
     Refuse before anything touches the disk. *)
  if len > max_record then
    invalid_arg
      (Printf.sprintf "journal record: %d-byte payload exceeds the %d-byte limit"
         len max_record);
  let b = Bytes.create (8 + len) in
  set_be32 b 0 len;
  set_be32 b 4 (Crc32.string payload);
  Bytes.blit_string payload 0 b 8 len;
  Bytes.unsafe_to_string b

(* [data] is the whole file: decode the longest valid prefix.  Returns
   the ops and the byte offset of the first unreadable record. *)
let decode_prefix data =
  let total = String.length data in
  let rec go off acc =
    if off + 8 > total then (List.rev acc, off)
    else begin
      let len = be32 data off in
      let crc = be32 data (off + 4) in
      if len > max_record || off + 8 + len > total then (List.rev acc, off)
      else begin
        let payload = String.sub data (off + 8) len in
        if Crc32.string payload <> crc then (List.rev acc, off)
        else begin
          match Result.bind (Json.of_string payload) op_of_json with
          | Ok op -> go (off + 8 + len) (op :: acc)
          | Error _ -> (List.rev acc, off)
        end
      end
    end
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Fsync policy                                                        *)
(* ------------------------------------------------------------------ *)

type fsync_policy = Always | Every_n of int | Never

let fsync_policy_of_string = function
  | "always" -> Ok Always
  | "none" -> Ok Never
  | s -> (
    let prefix = "every-" in
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then begin
      match int_of_string_opt (String.sub s pl (String.length s - pl)) with
      | Some n when n >= 1 -> Ok (Every_n n)
      | _ -> Error (Printf.sprintf "bad fsync policy %S (every-N needs N >= 1)" s)
    end
    else Error (Printf.sprintf "unknown fsync policy %S (always | every-N | none)" s))

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "none"
  | Every_n n -> Printf.sprintf "every-%d" n

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  fd : Unix.file_descr;
  path : string;
  fsync : fsync_policy;
  faults : Faults.t;
  tel : Tdmd_obs.Telemetry.t;
  mutable unsynced : int;  (* records since last fsync *)
  mutable written : int;
  mutable size : int;      (* valid bytes on disk *)
  mutable poisoned : bool; (* invariant lost: refuse further appends *)
}

let count t name n = Tdmd_obs.Telemetry.count t.tel name n

let read_whole fd =
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  match Protocol.read_exact fd size ~clean_eof:false with
  | Ok buf -> Bytes.unsafe_to_string buf
  | Error (`Eof | `Bad _) -> failwith "journal shrank while reading"

let replay path =
  if not (Sys.file_exists path) then Ok ([], 0)
  else begin
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "cannot open %s: %s" path (Unix.error_message err))
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match read_whole fd with
          | data ->
            let ops, good = decode_prefix data in
            Ok (ops, String.length data - good)
          | exception (Unix.Unix_error _ | Failure _) ->
            Error (Printf.sprintf "cannot read %s" path))
  end

let open_append ?(faults = Faults.none) ?tel ~fsync path =
  let tel =
    match tel with Some t -> t | None -> Tdmd_obs.Telemetry.create ()
  in
  let fd =
    try Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
    with Unix.Unix_error (err, _, _) ->
      raise (Sys_error (Printf.sprintf "cannot open journal %s: %s" path
                          (Unix.error_message err)))
  in
  (* One writer per journal, ever: the lock dies with the process, so a
     kill -9 leaves the file claimable. *)
  (try Unix.lockf fd Unix.F_TLOCK 0
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise (Sys_error (Printf.sprintf "journal %s is locked by another process" path)));
  let data = read_whole fd in
  let ops, good = decode_prefix data in
  let torn = String.length data - good in
  Tdmd_obs.Telemetry.count tel "wal_replayed" (List.length ops);
  if torn > 0 then begin
    Tdmd_obs.Telemetry.count tel "wal_torn_truncations" 1;
    Tdmd_obs.Telemetry.count tel "wal_torn_bytes" torn;
    Unix.ftruncate fd good
  end;
  ignore (Unix.lseek fd good Unix.SEEK_SET);
  let t =
    { fd; path; fsync; faults; tel; unsynced = 0; written = 0; size = good;
      poisoned = false }
  in
  (t, ops)

let do_fsync t =
  Unix.fsync t.fd;
  t.unsynced <- 0;
  count t "wal_fsyncs" 1

let maybe_fsync t =
  match t.fsync with
  | Never -> ()
  | Always -> do_fsync t
  | Every_n n -> if t.unsynced >= n then do_fsync t

let append ?(flush = true) t op =
  if t.poisoned then
    raise
      (Sys_error
         (Printf.sprintf
            "journal %s: poisoned by an earlier write failure; recover before \
             accepting new ops"
            t.path));
  let record = Bytes.of_string (encode op) in
  Faults.hit t.faults "wal.append.pre_write";
  Faults.mangle t.faults "wal.write" record;
  (try Protocol.write_all ~faults:t.faults ~point:"wal.write" t.fd record with
  | Faults.Crash _ as e ->
    (* Simulated kill -9: leave the torn tail for recovery to find. *)
    raise e
  | e ->
    (* A prefix of the record may be on disk and the fd offset is
       mid-record.  Restore the append invariant — valid bytes = t.size,
       offset at t.size — so every later acked record is still readable
       on replay; if even that fails, no further append can be trusted
       to land at a decodable boundary. *)
    (try
       Unix.ftruncate t.fd t.size;
       ignore (Unix.lseek t.fd t.size Unix.SEEK_SET)
     with Unix.Unix_error _ | Sys_error _ -> t.poisoned <- true);
    count t "wal_append_failures" 1;
    raise e);
  t.size <- t.size + Bytes.length record;
  t.written <- t.written + 1;
  t.unsynced <- t.unsynced + 1;
  count t "wal_appends" 1;
  count t "wal_bytes" (Bytes.length record);
  Faults.hit t.faults "wal.append.post_write";
  (* Group commit: a batch appends its first n-1 records with
     [flush:false] and only the last one runs the fsync policy — one
     fsync then covers the whole batch, because fsync flushes the file,
     not the record. *)
  if flush then begin
    (try maybe_fsync t with
    | Faults.Crash _ as e -> raise e
    | e ->
      (* The record is intact on disk but its durability is unknown, and
         a failed fsync must not be retried as if nothing happened (the
         kernel may have dropped the dirty pages).  Stop acking. *)
      t.poisoned <- true;
      count t "wal_append_failures" 1;
      raise e);
    Faults.hit t.faults "wal.append.post_fsync"
  end

let sync t = if t.unsynced > 0 then do_fsync t

(* Batch-end counterpart of the [flush:true] tail of [append]: apply the
   fsync policy to everything appended with [flush:false], with the same
   poisoning discipline and the same crash-point. *)
let flush t =
  (try maybe_fsync t with
  | Faults.Crash _ as e -> raise e
  | e ->
    t.poisoned <- true;
    count t "wal_append_failures" 1;
    raise e);
  Faults.hit t.faults "wal.append.post_fsync"

let reset t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  t.size <- 0;
  t.unsynced <- 0;
  do_fsync t

let records_written t = t.written
let size_bytes t = t.size
let poisoned t = t.poisoned

let close t =
  (match t.fsync with Never -> () | Always | Every_n _ -> sync t);
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Supervised restart path: the journal is being replaced by a fresh
   recovery, so a final sync would only re-raise whatever poisoned it.
   Just drop the descriptor (releasing the lock) without promising
   anything about the unsynced tail. *)
let abandon t =
  t.poisoned <- true;
  try Unix.close t.fd with Unix.Unix_error _ -> ()
