module Json = Tdmd_obs.Json
module Tel = Tdmd_obs.Telemetry
module Locked = Tdmd_prelude.Locked

type config = {
  addr : Protocol.addr;
  domains : int;
  queue_capacity : int;
  default_deadline_ms : int option;
  metrics_out : string option;
}

let default_config addr =
  {
    addr;
    domains = 2;
    queue_capacity = 64;
    default_deadline_ms = None;
    metrics_out = None;
  }

type conn = {
  fd : Unix.file_descr;
  write_lock : Mutex.t;
  mutable open_ : bool;
}

type t = {
  cfg : config;
  engine : Engine.t;
  listen_fd : Unix.file_descr;
  pool : Tdmd_prelude.Parallel.Pool.t;
  tel : Tel.t;
  tel_lock : Mutex.t;
  latency : Tdmd_prelude.Histogram.t;  (* seconds, log bins *)
  stop_flag : bool Atomic.t;
  mutable conns : conn list;
  conns_lock : Mutex.t;
  mutable readers : Thread.t list;
  mutable acceptor : Thread.t option;
  start_ns : int64;
  mutable stopped : bool;
}

(* All telemetry mutation funnels through here: Telemetry.t is not
   thread-safe and counts arrive from reader threads and worker domains
   alike. *)
let with_tel t f = Locked.with_lock t.tel_lock (fun () -> f t.tel)

let count t name n = with_tel t (fun tel -> Tel.count tel name n)

let record_latency t seconds =
  Locked.with_lock t.tel_lock (fun () ->
      Tdmd_prelude.Histogram.add t.latency seconds)

(* [open_] is only read/written under [write_lock], so a worker can
   never write to an fd the reader has already closed (fd numbers are
   reused by the kernel — a plain check-then-write would race). *)
let send t conn json =
  Locked.with_lock conn.write_lock (fun () ->
      if conn.open_ then begin
        try Protocol.write_frame conn.fd json
        with Unix.Unix_error _ ->
          (* Peer vanished between compute and reply; the reader thread
             will see the close and clean up. *)
          count t "write_errors" 1
      end)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_fields t =
  let pct p =
    let v =
      Locked.with_lock t.tel_lock (fun () ->
          Tdmd_prelude.Histogram.percentile t.latency p)
    in
    if Float.is_nan v then Json.Null else Json.Float (v *. 1000.0)
  in
  let counter name = Json.Int (with_tel t (fun tel -> Tel.get_count tel name)) in
  let uptime =
    Int64.to_float (Int64.sub (Tdmd_obs.Clock.now_ns ()) t.start_ns) /. 1e9
  in
  [
    ("op", Json.String "stats");
    ("uptime_s", Json.Float uptime);
    ("requests", counter "requests");
    ("completed", counter "completed");
    ("rejected", counter "rejected");
    ("timeouts", counter "timeouts");
    ("bad_requests", counter "bad_requests");
    ("errors", counter "errors");
    ("queue_depth", Json.Int (Tdmd_prelude.Parallel.Pool.queue_depth t.pool));
    ("anytime_solves", counter "anytime_solves");
    ("pool_job_errors", Json.Int (Tdmd_prelude.Parallel.Pool.job_errors ()));
    ("latency_p50_ms", pct 0.50);
    ("latency_p95_ms", pct 0.95);
    ("latency_p99_ms", pct 0.99);
    ("churn", Json.Obj (Engine.churn_stats t.engine));
  ]
  @ Engine.stats_fields t.engine

let telemetry t = t.tel

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let op_counter = function
  | Protocol.Ping -> "op_ping"
  | Protocol.Sleep _ -> "op_sleep"
  | Protocol.Solve _ -> "op_solve"
  | Protocol.Arrive _ -> "op_arrive"
  | Protocol.Depart _ -> "op_depart"
  | Protocol.Rebalance _ -> "op_rebalance"
  | Protocol.Stats -> "op_stats"
  | Protocol.Health -> "op_health"
  | Protocol.Shutdown -> "op_shutdown"

let execute t ?req ?shard_hint (request : Protocol.request) : Session.reply =
  match request with
  | Protocol.Ping -> Ok (Protocol.ok [ ("op", Json.String "ping") ])
  | Protocol.Sleep ms ->
    Unix.sleepf (float_of_int ms /. 1000.0);
    Ok (Protocol.ok [ ("op", Json.String "sleep"); ("ms", Json.Int ms) ])
  | Protocol.Solve { algo; k; seed; target } -> (
    match Engine.solve t.engine ~algo ~k ~seed ~target with
    | Ok (Json.Obj fields) -> Ok (Protocol.ok fields)
    | Ok other -> Ok (Protocol.ok [ ("result", other) ])
    | Error _ as e -> e)
  | Protocol.Arrive { id; rate; path } -> (
    match Engine.arrive t.engine ?req ~id ~rate ~path () with
    | Ok (Json.Obj fields) -> Ok (Protocol.ok fields)
    | Ok other -> Ok (Protocol.ok [ ("result", other) ])
    | Error _ as e -> e)
  | Protocol.Depart id -> (
    match Engine.depart t.engine ?req ?shard_hint id with
    | Ok (Json.Obj fields) -> Ok (Protocol.ok fields)
    | Ok other -> Ok (Protocol.ok [ ("result", other) ])
    | Error _ as e -> e)
  | Protocol.Rebalance { budget } -> (
    match Engine.rebalance t.engine ?req ?budget () with
    | Ok (Json.Obj fields) -> Ok (Protocol.ok fields)
    | Ok other -> Ok (Protocol.ok [ ("result", other) ])
    | Error _ as e -> e)
  | Protocol.Stats -> (
    (* Stats aggregates live churn across every shard; while one is down
       the aggregate would silently under-count, so it is gated exactly
       like a live solve.  The [health] op below stays available for
       observing the outage itself. *)
    match Engine.read_status t.engine with
    | Engine.Read_unavailable msg -> Error ("unavailable", msg)
    | Engine.Read_ok -> Ok (Protocol.ok (stats_fields t))
    | Engine.Read_degraded ->
      Ok (Protocol.ok (stats_fields t @ [ ("degraded", Json.Bool true) ])))
  | Protocol.Health ->
    Ok
      (Protocol.ok
         (("op", Json.String "health") :: Engine.health_fields t.engine))
  | Protocol.Shutdown -> Ok (Protocol.ok [ ("op", Json.String "shutdown") ])

let reply_with_id t id = function
  | Ok (Json.Obj (("ok", ok_v) :: rest)) -> (
    match id with
    | Some idv -> Json.Obj (("ok", ok_v) :: ("id", idv) :: rest)
    | None -> Json.Obj (("ok", ok_v) :: rest))
  | Ok other -> other
  | Error (code, msg) ->
    (* [unavailable] carries the supervisor's retry hint so clients back
       off for as long as a recovery typically takes instead of
       hammering a shard that cannot answer yet. *)
    let retry_after_ms =
      if code = "unavailable" then Some (Engine.retry_after_ms t.engine)
      else None
    in
    Protocol.error ?id ?retry_after_ms ~code msg

(* The pool job for a compute op: deadline check, execute, reply,
   record latency. *)
let run_job t conn (env : Protocol.envelope) ~enqueued_ns =
  let deadline_ms =
    match env.Protocol.deadline_ms with
    | Some d -> Some d
    | None -> t.cfg.default_deadline_ms
  in
  let waited_ns = Int64.sub (Tdmd_obs.Clock.now_ns ()) enqueued_ns in
  let waited_ms = Int64.to_float waited_ns /. 1e6 in
  (* A deadlined Solve is never expired away: whatever budget survived
     the queue wait goes to an anytime portfolio race, which always has
     at least the greedy-cover answer in hand.  Every other op keeps
     the queueing-budget semantics. *)
  let anytime_budget =
    match (env.Protocol.request, deadline_ms) with
    | Protocol.Solve _, Some d ->
      Some (max 0 (d - int_of_float waited_ms))
    | _ -> None
  in
  let expired =
    match deadline_ms with
    | Some d -> Option.is_none anytime_budget && waited_ms > float_of_int d
    | None -> false
  in
  if expired then begin
    count t "timeouts" 1;
    send t conn
      (Protocol.error ?id:env.Protocol.id ~code:"deadline"
         (Printf.sprintf "deadline of %d ms expired after %.1f ms in queue"
            (Option.get deadline_ms)
            (Int64.to_float waited_ns /. 1e6)))
  end
  else begin
    let result =
      try
        match (env.Protocol.request, anytime_budget) with
        | Protocol.Solve { algo; k; seed; target }, Some budget_ms -> (
          count t "anytime_solves" 1;
          match
            Engine.solve_anytime t.engine ~algo ~k ~seed ~target ~budget_ms
          with
          | Ok (Json.Obj fields) -> Ok (Protocol.ok fields)
          | Ok other -> Ok (Protocol.ok [ ("result", other) ])
          | Error _ as e -> e)
        | _ ->
          execute t ?req:env.Protocol.req ?shard_hint:env.Protocol.shard_hint
            env.Protocol.request
      with
      | Faults.Crash point ->
        (* A planned crash must take the whole process down as abruptly
           as kill -9 would: no reply, no drain, no at_exit cleanup. *)
        (* tdmd-lint: allow no-direct-io — last words before _exit 137; telemetry would never be flushed *)
        prerr_endline ("tdmd serve: injected crash at " ^ point);
        Unix._exit 137
      | e -> Error ("internal", Printexc.to_string e)
    in
    (match result with
    | Ok _ -> count t "completed" 1
    | Error _ -> count t "errors" 1);
    send t conn (reply_with_id t env.Protocol.id result);
    record_latency t
      (Int64.to_float (Int64.sub (Tdmd_obs.Clock.now_ns ()) enqueued_ns) /. 1e9)
  end

(* ------------------------------------------------------------------ *)
(* Connection reader                                                   *)
(* ------------------------------------------------------------------ *)

let close_conn t conn =
  Locked.with_lock t.conns_lock (fun () ->
      t.conns <- List.filter (fun c -> c != conn) t.conns);
  Locked.with_lock conn.write_lock (fun () ->
      if conn.open_ then begin
        conn.open_ <- false;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)

let reader t conn () =
  let rec loop () =
    match Protocol.read_frame conn.fd with
    | exception Unix.Unix_error _ -> close_conn t conn
    | Error `Eof -> close_conn t conn
    | Error (`Bad msg) ->
      count t "requests" 1;
      count t "bad_requests" 1;
      send t conn (Protocol.error ~code:"bad-request" msg);
      (* Framing may be out of sync after a bad frame; drop the
         connection rather than misparse everything that follows. *)
      close_conn t conn
    | Ok json -> (
      count t "requests" 1;
      match Protocol.request_of_json json with
      | Error msg ->
        count t "bad_requests" 1;
        send t conn (Protocol.error ?id:(Json.member "id" json) ~code:"bad-request" msg);
        loop ()
      | Ok env -> (
        count t (op_counter env.Protocol.request) 1;
        if Atomic.get t.stop_flag then begin
          send t conn
            (Protocol.error ?id:env.Protocol.id ~code:"shutting-down"
               "server is draining");
          loop ()
        end
        else begin
          match env.Protocol.request with
          | Protocol.Ping | Protocol.Stats | Protocol.Health ->
            (* Answered inline: cheap, and must work under full load —
               [health] especially must answer while shards recover. *)
            (match execute t env.Protocol.request with
            | Ok _ as r ->
              count t "completed" 1;
              send t conn (reply_with_id t env.Protocol.id r)
            | Error _ as r ->
              count t "errors" 1;
              send t conn (reply_with_id t env.Protocol.id r));
            loop ()
          | Protocol.Shutdown ->
            count t "completed" 1;
            send t conn (reply_with_id t env.Protocol.id (execute t env.Protocol.request));
            Atomic.set t.stop_flag true;
            loop ()
          | Protocol.Sleep _ | Protocol.Solve _ | Protocol.Arrive _
          | Protocol.Depart _ | Protocol.Rebalance _ ->
            let enqueued_ns = Tdmd_obs.Clock.now_ns () in
            let job () = run_job t conn env ~enqueued_ns in
            if Tdmd_prelude.Parallel.Pool.submit t.pool job then begin
              with_tel t (fun tel ->
                  Tel.gauge tel "queue_depth"
                    (float_of_int (Tdmd_prelude.Parallel.Pool.queue_depth t.pool)))
            end
            else begin
              count t "rejected" 1;
              send t conn
                (Protocol.error ?id:env.Protocol.id ~code:"overloaded"
                   (Printf.sprintf "request queue full (capacity %d)"
                      t.cfg.queue_capacity))
            end;
            loop ()
        end))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Acceptor and lifecycle                                              *)
(* ------------------------------------------------------------------ *)

(* [close] from another thread does not wake a blocked [accept] on
   Linux, so the acceptor polls readiness with a short [select] and
   re-checks the stop flag between polls. *)
let acceptor t () =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()  (* listener closed: drain *)
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error _ -> ()
        | fd, _peer ->
          let conn = { fd; write_lock = Mutex.create (); open_ = true } in
          Locked.with_lock t.conns_lock (fun () ->
              t.conns <- conn :: t.conns;
              t.readers <- Thread.create (reader t conn) () :: t.readers);
          loop ())
    end
  in
  loop ()

let start cfg engine =
  if cfg.domains < 1 then invalid_arg "Server.start: domains must be >= 1";
  (* A worker writing to a connection whose peer died must get EPIPE,
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (match cfg.addr with
  | Protocol.Unix_sock path when Sys.file_exists path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let domain_of_addr = function
    | Protocol.Unix_sock _ -> Unix.PF_UNIX
    | Protocol.Tcp _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket (domain_of_addr cfg.addr) Unix.SOCK_STREAM 0 in
  (match cfg.addr with
  | Protocol.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
  | Protocol.Unix_sock _ -> ());
  Unix.bind listen_fd (Protocol.sockaddr cfg.addr);
  Unix.listen listen_fd 64;
  let t =
    {
      cfg;
      engine;
      listen_fd;
      pool =
        Tdmd_prelude.Parallel.Pool.create ~domains:cfg.domains
          ~capacity:cfg.queue_capacity ();
      tel = Tel.create ();
      tel_lock = Mutex.create ();
      latency =
        Tdmd_prelude.Histogram.create ~scale:Tdmd_prelude.Histogram.Log ~lo:1e-6
          ~hi:100.0 ~bins:192 ();
      stop_flag = Atomic.make false;
      conns = [];
      conns_lock = Mutex.create ();
      readers = [];
      acceptor = None;
      start_ns = Tdmd_obs.Clock.now_ns ();
      stopped = false;
    }
  in
  t.acceptor <- Some (Thread.create (acceptor t) ());
  t

let start_session cfg session = start cfg (Engine.of_session session)
let request_stop t = Atomic.set t.stop_flag true

let emit_final_metrics t =
  match t.cfg.metrics_out with
  | None -> ()
  | Some file -> (
    try
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Tdmd_obs.Sink.emit
            (Tdmd_obs.Sink.of_channel oc)
            (Tdmd_obs.Sink.record ~event:"serve"
               ~extra:
                 (("addr", Json.String (Protocol.addr_to_string t.cfg.addr))
                 :: List.filter (fun (k, _) -> k <> "op") (stats_fields t))
               t.tel))
    with Sys_error _ -> ())

let wait t =
  while not (Atomic.get t.stop_flag) do
    Thread.delay 0.02
  done;
  if not t.stopped then begin
    t.stopped <- true;
    (* 1. No new connections: the acceptor notices the stop flag at its
       next poll; only then is the listener closed. *)
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* 2. Readers now answer "shutting-down"; everything already queued
       runs to completion and is answered. *)
    Tdmd_prelude.Parallel.Pool.shutdown t.pool;
    (* 3. Wake readers blocked in read and let them clean up. *)
    let conns, readers =
      Locked.with_lock t.conns_lock (fun () -> (t.conns, t.readers))
    in
    List.iter
      (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join readers;
    emit_final_metrics t;
    match t.cfg.addr with
    | Protocol.Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Protocol.Tcp _ -> ()
  end
