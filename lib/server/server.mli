(** The `tdmd serve` daemon: sockets in front of the solver registry.

    Threading model (OCaml 5, no external deps):

    - one {e acceptor} systhread blocks in [accept];
    - one {e reader} systhread per connection parses frames and replies
      to control ops ([ping], [stats], [health], [shutdown]) inline, so
      the server stays observable even when every worker is busy;
    - compute ops ([solve], [arrive], [depart], [sleep]) are submitted
      to a {!Tdmd_prelude.Parallel.Pool} of worker {e domains} with a
      bounded queue — a full queue answers ["overloaded"] immediately
      (backpressure), and a request whose ["deadline_ms"] expires while
      queued is answered ["deadline"] without being executed.

    Health-gated routing: an op aimed at a [Recovering]/[Poisoned]
    shard (and [stats]/live solves while any shard is down, unless the
    engine allows degraded reads) is answered code ["unavailable"] with
    the supervisor's ["retry_after_ms"] hint attached; [health] always
    answers inline with {!Engine.health_fields}.

    Responses are written under a per-connection lock, so concurrent
    completions interleave at frame granularity.  {!request_stop} (or a
    client's [shutdown] op, or the CLI's SIGINT/SIGTERM handlers)
    triggers a graceful drain: the listener closes, queued work
    completes and is answered, then connections shut down.

    Observability: counters [requests], [completed], [rejected],
    [timeouts], [bad_requests], [errors], per-op [op_*] counters, a
    [queue_depth] gauge, and a log-scaled latency histogram feeding the
    [stats] op's p50/p95/p99; on stop, a summary record is appended to
    [metrics_out] when set. *)

type config = {
  addr : Protocol.addr;
  domains : int;          (** worker domains (>= 1) *)
  queue_capacity : int;   (** bounded request queue (>= 1) *)
  default_deadline_ms : int option;
      (** applied when a request carries no ["deadline_ms"] *)
  metrics_out : string option;
      (** JSON-lines file receiving one summary record on stop *)
}

val default_config : Protocol.addr -> config
(** 2 domains, queue of 64, no default deadline, no metrics file. *)

type t

val start : config -> Engine.t -> t
(** Bind, listen and return once the server is accepting (a client may
    connect immediately after [start] returns).  An existing socket
    file at a [Unix_sock] path is replaced.  The engine may be a single
    shard (the pre-shard behaviour, bit for bit) or sharded
    ({!Engine.create} with [~shards]).
    @raise Unix.Unix_error when binding fails. *)

val start_session : config -> Session.t -> t
(** [start] on a 1-shard engine wrapping [session] — the pre-shard
    entry point, kept for callers that build a bare {!Session}. *)

val request_stop : t -> unit
(** Flag the server to stop; async-signal-safe (a single atomic store),
    so the CLI installs it directly as the SIGINT/SIGTERM handler.
    Actual draining happens inside {!wait}. *)

val wait : t -> unit
(** Block until a stop is requested, then drain: refuse new work,
    finish and answer everything already queued, close connections,
    join every thread and domain, and write the [metrics_out] summary.
    Returns when the server is fully stopped. *)

val telemetry : t -> Tdmd_obs.Telemetry.t
(** Live server counters (shared — read-mostly use only). *)

val stats_fields : t -> (string * Protocol.Json.t) list
(** The [stats] op's server section: counters, queue depth, uptime and
    latency percentiles (milliseconds). *)
