module Json = Tdmd_obs.Json
module Locked = Tdmd_prelude.Locked
module Partition = Tdmd_topo.Partition

type source =
  | General of Tdmd.Instance.t
  | Tree of Tdmd.Instance.Tree.t

(* Cross-shard coordinator: a tiny journal of prepare/done pairs.  A
   prepare is made durable BEFORE the op is handed to its home shard;
   the done record retires it once the shard has decided (applied,
   deduplicated or refused).  Recovery re-submits every prepare without
   a done — the shard's xid-keyed dedup table makes that idempotent. *)
type coord = {
  journal : Journal.t;
  lock : Mutex.t;
  tag : string;  (* per-boot unique prefix for generated xids *)
  mutable seq : int;
  mutable inflight : int;
  mutable prepares : int;
  mutable replayed : int;
}

type t = {
  shards : Shard.t array;  (* cells are swapped by supervised restarts *)
  router : Router.t;
  coord : coord option;  (* durable and sharded only *)
  general : Tdmd.Instance.t;  (* canonical static instance *)
  sup : Supervisor.t;
  degraded_reads : bool;
  dedup_cap : int;
  (* Per-shard durability config, for the supervised restart path; [None]
     when there is no disk state to recover a failed shard from. *)
  shard_cfg : (int -> Session.durability) option;
}

let shard_count t = Array.length t.shards
let router t = t.router
let shard t i = t.shards.(i)
let general t = t.general
let supervisor t = t.sup
let retry_after_ms t = Supervisor.retry_after_ms t.sup
let degraded_reads t = t.degraded_reads

let shard_dir root i = Filename.concat root (Printf.sprintf "shard-%d" i)
let coord_file root = Filename.concat root "coord.wal"

let ensure_dir dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let fresh_tag () =
  Printf.sprintf "xc-%d-%Ld" (Unix.getpid ()) (Tdmd_obs.Clock.now_ns ())

let make_coord journal =
  {
    journal;
    lock = Mutex.create ();
    tag = fresh_tag ();
    seq = 0;
    inflight = 0;
    prepares = 0;
    replayed = 0;
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let shard_config ~(config : Session.Config.t) ~root i =
  match config.Session.Config.durability with
  | None -> config
  | Some d ->
    {
      config with
      Session.Config.durability =
        Some { d with Session.dir = shard_dir root i };
    }

let build_session ~config source =
  match source with
  | General inst -> Session.create ~config inst
  | Tree tree_inst -> Session.create_tree ~config tree_inst

(* In-place supervised restart of one shard: retire the dead session
   (releasing its journal descriptor without a snapshot — the disk is
   the authority), recover a replacement from the shard directory, swap
   it into the shard array (a pointer write, atomic for concurrent
   readers) and reconcile the routing table against the recovered flow
   set.  Runs on the supervisor's recovery thread. *)
let restart_shard t i =
  match t.shard_cfg with
  | None -> Error "shard is not durable; nothing to recover from"
  | Some cfg_of ->
    let cfg = cfg_of i in
    Session.abandon (Shard.session t.shards.(i));
    (match Session.recover ~dedup_cap:t.dedup_cap cfg with
    | Error _ as e -> e
    | Ok session ->
      t.shards.(i) <- Shard.create ~faults:cfg.Session.faults ~id:i session;
      Router.reconcile t.router ~shard:i
        ~flow_ids:
          (List.map
             (fun (f : Tdmd_flow.Flow.t) -> f.Tdmd_flow.Flow.id)
             (Session.live_flows session));
      Ok ())

(* Tie the knot between the engine and its supervisor: the restart
   closure needs the engine, which holds the supervisor. *)
let finish ?supervisor ?(degraded_reads = false) ~dedup_cap ~shard_cfg ~faults
    ~shards ~router ~coord general =
  let cell = ref None in
  let restart =
    match shard_cfg with
    | None -> None
    | Some _ ->
      Some
        (fun i ->
          match !cell with
          | Some t -> restart_shard t i
          | None -> Error "engine still initialising")
  in
  let sup =
    Supervisor.create ?config:supervisor ~faults ~restart
      ~shards:(Array.length shards) ()
  in
  let t =
    { shards; router; coord; general; sup; degraded_reads; dedup_cap; shard_cfg }
  in
  cell := Some t;
  t

let durability_of (config : Session.Config.t) = config.Session.Config.durability

let faults_of (config : Session.Config.t) =
  match durability_of config with
  | Some d -> d.Session.faults
  | None -> Faults.none

let create ?supervisor ?degraded_reads ?(config = Session.Config.default)
    ?(shards = 1) ?partition source =
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  let general =
    match source with
    | General inst -> inst
    | Tree tree_inst -> Tdmd.Instance.Tree.to_general tree_inst
  in
  let partition =
    match partition with
    | Some p ->
      if Partition.shards p <> shards then
        invalid_arg "Engine.create: partition/shards mismatch";
      if Partition.vertex_count p <> Tdmd_graph.Digraph.vertex_count general.Tdmd.Instance.graph
      then invalid_arg "Engine.create: partition covers a different graph";
      p
    | None -> Partition.make general.Tdmd.Instance.graph ~shards
  in
  let faults = faults_of config in
  if shards = 1 then begin
    (* Single shard: the session lives directly in the durability root,
       exactly as the pre-shard engine laid it out, so existing
       directories keep recovering and every answer stays bit-identical. *)
    let session = build_session ~config source in
    let shard_cfg = Option.map (fun d _ -> d) (durability_of config) in
    finish ?supervisor ?degraded_reads
      ~dedup_cap:config.Session.Config.dedup_cap ~shard_cfg ~faults
      ~shards:[| Shard.create ~faults ~id:0 session |]
      ~router:(Router.create partition) ~coord:None general
  end
  else begin
    let root =
      match durability_of config with
      | None -> None
      | Some d ->
        ensure_dir d.Session.dir;
        Some d.Session.dir
    in
    let shard_arr =
      Array.init shards (fun i ->
          let config =
            match root with
            | None -> config
            | Some root -> shard_config ~config ~root i
          in
          Shard.create ~faults ~id:i (build_session ~config source))
    in
    let coord =
      match root with
      | None -> None
      | Some root ->
        let journal, ops =
          Journal.open_append ~faults ~fsync:Journal.Always (coord_file root)
        in
        (* A fresh engine must not inherit in-flight ops: the shard
           directories were just seeded empty, so any leftover records
           are from an aborted directory reuse. *)
        if ops <> [] then Journal.reset journal;
        Some (make_coord journal)
    in
    let shard_cfg =
      match (durability_of config, root) with
      | Some d, Some root ->
        Some (fun i -> { d with Session.dir = shard_dir root i })
      | _ -> None
    in
    finish ?supervisor ?degraded_reads
      ~dedup_cap:config.Session.Config.dedup_cap ~shard_cfg ~faults
      ~shards:shard_arr ~router:(Router.create partition) ~coord general
  end

let of_session session =
  let general = Session.general session in
  let n = Tdmd_graph.Digraph.vertex_count general.Tdmd.Instance.graph in
  finish ~dedup_cap:Session.default_dedup_cap ~shard_cfg:None
    ~faults:Faults.none
    ~shards:[| Shard.create ~id:0 session |]
    ~router:(Router.create (Partition.trivial ~n))
    ~coord:None general

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let sharded_layout root = Sys.file_exists (shard_dir root 0)

let detect_shards root =
  let rec go i = if Sys.file_exists (shard_dir root i) then go (i + 1) else i in
  go 0

let rebuild_router partition shards =
  let router = Router.create partition in
  Array.iter
    (fun sh ->
      List.iter
        (fun (f : Tdmd_flow.Flow.t) ->
          Router.assign router ~flow_id:f.Tdmd_flow.Flow.id ~shard:(Shard.id sh))
        (Session.live_flows (Shard.session sh)))
    shards;
  router

(* Cross-shard ops whose prepare has no matching done: the coordinator
   died between handing them to the home shard and retiring them (or
   before handing them over at all). *)
let inflight_prepares ops =
  let done_xids = Hashtbl.create 16 in
  List.iter
    (function
      | Journal.Cross_done { xid } -> Hashtbl.replace done_xids xid ()
      | Journal.Cross_prepare _ | Journal.Arrive _ | Journal.Depart _
      | Journal.Rebalance _ -> ())
    ops;
  List.filter_map
    (function
      | Journal.Cross_prepare { xid; home; op } when not (Hashtbl.mem done_xids xid)
        ->
        Some (xid, home, op)
      | _ -> None)
    ops

let batch_op_of_journal xid = function
  | Journal.Arrive { id; rate; path; req = _ } ->
    Ok (Session.Batch_arrive { req = Some xid; id; rate; path })
  | Journal.Depart { flow_id; req = _ } ->
    Ok (Session.Batch_depart { req = Some xid; flow_id })
  | Journal.Rebalance _ ->
    (* Rebalance is per-shard local; the codec refuses to nest it, so a
       prepare carrying one is corruption. *)
    Error "coordinator journal: rebalance cannot be cross-shard"
  | Journal.Cross_prepare _ | Journal.Cross_done _ ->
    Error "coordinator journal: nested cross record"

let recover ?supervisor ?degraded_reads ?(dedup_cap = Session.default_dedup_cap)
    (cfg : Session.durability) =
  let root = cfg.Session.dir in
  let faults = cfg.Session.faults in
  if not (sharded_layout root) then begin
    (* Flat pre-shard layout: one session in the root. *)
    let* session = Session.recover ~dedup_cap cfg in
    let general = Session.general session in
    let n = Tdmd_graph.Digraph.vertex_count general.Tdmd.Instance.graph in
    Ok
      (finish ?supervisor ?degraded_reads ~dedup_cap
         ~shard_cfg:(Some (fun _ -> cfg))
         ~faults
         ~shards:[| Shard.create ~faults ~id:0 session |]
         ~router:(Router.create (Partition.trivial ~n))
         ~coord:None general)
  end
  else begin
    let n_shards = detect_shards root in
    let* sessions =
      Array.fold_left
        (fun acc i ->
          let* acc = acc in
          let* s =
            Result.map_error
              (Printf.sprintf "shard %d: %s" i)
              (Session.recover ~dedup_cap { cfg with Session.dir = shard_dir root i })
          in
          Ok (s :: acc))
        (Ok [])
        (Array.init n_shards (fun i -> i))
    in
    let sessions = Array.of_list (List.rev sessions) in
    let shards = Array.mapi (fun i s -> Shard.create ~faults ~id:i s) sessions in
    let general = Session.general sessions.(0) in
    (* The partition is a deterministic function of the recovered graph,
       so it is the partition the engine was created with. *)
    let partition = Partition.make general.Tdmd.Instance.graph ~shards:n_shards in
    let router = rebuild_router partition shards in
    let* journal, ops =
      match
        Journal.open_append ~faults ~fsync:Journal.Always (coord_file root)
      with
      | r -> Ok r
      | exception Sys_error msg -> Error msg
    in
    let coord = make_coord journal in
    let engine =
      finish ?supervisor ?degraded_reads ~dedup_cap
        ~shard_cfg:(Some (fun i -> { cfg with Session.dir = shard_dir root i }))
        ~faults ~shards ~router ~coord:(Some coord) general
    in
    (* Replay in-flight cross-shard ops in journal order.  The home
       shard's dedup table is keyed by xid, so an op it already applied
       answers ["dedup": true] instead of applying twice. *)
    let* () =
      List.fold_left
        (fun acc (xid, home, op) ->
          let* () = acc in
          if home < 0 || home >= n_shards then
            Error (Printf.sprintf "coordinator journal: prepare %s targets shard %d of %d" xid home n_shards)
          else begin
            let* bop = batch_op_of_journal xid op in
            let reply = Shard.submit shards.(home) bop in
            (match (bop, reply) with
            | Session.Batch_arrive { id; _ }, Ok _ ->
              Router.assign router ~flow_id:id ~shard:home
            | Session.Batch_depart { flow_id; _ }, Ok _ ->
              Router.release router ~flow_id
            | Session.Batch_rebalance _, Ok _ -> ()
            | _, Error _ -> ());
            Journal.append journal (Journal.Cross_done { xid });
            coord.replayed <- coord.replayed + 1;
            Ok ()
          end)
        (Ok ()) (inflight_prepares ops)
    in
    (* Every surviving prepare is retired: compact so the next boot
       replays nothing. *)
    Journal.reset journal;
    Ok engine
  end

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)
(* ------------------------------------------------------------------ *)

let tag_shard t ~shard ~cross reply =
  if Array.length t.shards = 1 then reply
  else
    (* Routing detail is appended only in sharded mode, so [--shards 1]
       replies stay byte-identical to the pre-shard engine. *)
    match reply with
    | Ok (Json.Obj fields) ->
      Ok
        (Json.Obj
           (fields
           @ (("shard", Json.Int shard)
             :: (if cross then [ ("cross", Json.Bool true) ] else []))))
    | (Ok _ | Error _) as r -> r

let next_xid coord =
  coord.seq <- coord.seq + 1;
  Printf.sprintf "%s-%d" coord.tag coord.seq

let mid_op_unavailable =
  Error
    ( "unavailable",
      "shard failed mid-op; op may or may not be applied — retry with the \
       same req" )

(* Dispatch one op to a shard under the supervisor: refuse up front when
   the shard is not [Serving]; absorb a mid-op shard death (the
   leader's [Faults.Die], a poisoned journal's exception) into a
   supervised restart plus an ["unavailable"] answer; and detect WAL
   poisoning — which {!Session.apply_batch} surfaces as [Error] replies,
   never exceptions — after the batch, so the shard restarts instead of
   wedging. *)
let check_poisoned t i =
  if Session.wal_poisoned (Shard.session t.shards.(i)) then
    Supervisor.report_failure t.sup i ~reason:"wal poisoned"

let guarded_submit t i bop =
  match Supervisor.guard t.sup i with
  | Error msg -> Error ("unavailable", msg)
  | Ok () ->
    let reply =
      Supervisor.protect t.sup i
        ~fallback:(fun _ -> mid_op_unavailable)
        (fun () -> Shard.submit t.shards.(i) bop)
    in
    check_poisoned t i;
    reply

(* Two-phase apply of an op whose path spans shards: durable prepare,
   home-shard apply (its own WAL + group commit), durable done.  The
   xid — the client's idempotency id when it sent one — rides as the
   op's [req] on the home shard, so replaying a prepare after a crash
   cannot double-apply.  Callers have already health-gated every
   participant, so a prepare is only written while all of them serve;
   if the home shard dies under the op anyway, the done record is still
   appended — the op either reached the shard's own WAL (shard recovery
   replays it) or never did (the client was answered ["unavailable"]
   and retries) — so no orphan prepare outlives the call. *)
let cross_submit t ~home ~req ~journal_op ~batch_op_of_xid =
  match t.coord with
  | None ->
    (* Not durable: no intent to persist, just route to the home shard. *)
    guarded_submit t home (batch_op_of_xid req)
  | Some coord ->
    let xid =
      match req with
      | Some r -> r
      | None -> Locked.with_lock coord.lock (fun () -> next_xid coord)
    in
    Locked.with_lock coord.lock (fun () ->
        Journal.append coord.journal
          (Journal.Cross_prepare { xid; home; op = journal_op xid });
        coord.prepares <- coord.prepares + 1;
        coord.inflight <- coord.inflight + 1);
    let reply =
      Supervisor.protect t.sup home
        ~fallback:(fun _ -> mid_op_unavailable)
        (fun () -> Shard.submit t.shards.(home) (batch_op_of_xid (Some xid)))
    in
    check_poisoned t home;
    Locked.with_lock coord.lock (fun () ->
        Journal.append coord.journal (Journal.Cross_done { xid });
        coord.inflight <- coord.inflight - 1;
        (* The journal only matters while an op is in flight; compact it
           the moment it goes quiet so it never grows without bound. *)
        if coord.inflight = 0 then Journal.reset coord.journal);
    reply

let arrive t ?req ~id ~rate ~path () =
  let decision =
    match Router.route_arrive t.router ~path with
    | d -> Ok d
    | exception Invalid_argument msg -> Error ("bad-request", msg)
  in
  match decision with
  | Error _ as e -> e
  | Ok decision -> (
    let home, cross, spans =
      match decision with
      | Router.Local s -> (s, false, [ s ])
      | Router.Cross { home; spans } -> (home, true, spans)
    in
    (* Health-gate every participant BEFORE the coordinator writes a
       prepare: a cross-shard op refused here aborts cleanly, with no
       orphan prepare for recovery to chase. *)
    let down =
      List.find_map
        (fun s ->
          match Supervisor.guard t.sup s with
          | Ok () -> None
          | Error msg -> Some msg)
        spans
    in
    match down with
    | Some msg -> Error ("unavailable", msg)
    | None -> (
    (* Global duplicate-id check: each session only knows its own flows,
       so an id resident on another shard must be refused here.  A retry
       (same path, hence same route) lands on its own shard instead and
       reaches that session's dedup table first, which decides between
       ["dedup"] and ["conflict"] exactly as the pre-shard engine did. *)
    match Router.lookup t.router ~flow_id:id with
    | Some resident when resident <> home ->
      Error ("conflict", Printf.sprintf "flow %d is already active" id)
    | Some _ | None ->
      begin
      let reply =
        if cross then
          cross_submit t ~home ~req
            ~journal_op:(fun xid ->
              Journal.Arrive { id; rate; path; req = Some xid })
            ~batch_op_of_xid:(fun req ->
              Session.Batch_arrive { req; id; rate; path })
        else guarded_submit t home (Session.Batch_arrive { req; id; rate; path })
      in
      (match reply with
      | Ok _ -> Router.assign t.router ~flow_id:id ~shard:home
      | Error _ -> ());
      tag_shard t ~shard:home ~cross reply
      end))

let depart t ?req ?shard_hint flow_id =
  let home = Router.route_depart t.router ?hint:shard_hint ~flow_id () in
  let reply = guarded_submit t home (Session.Batch_depart { req; flow_id }) in
  (match reply with
  | Ok _ -> Router.release t.router ~flow_id
  | Error _ -> ());
  tag_shard t ~shard:home ~cross:false reply

(* ------------------------------------------------------------------ *)
(* Solve                                                               *)
(* ------------------------------------------------------------------ *)

let combined_live_instance t =
  let flows =
    Array.to_list t.shards
    |> List.concat_map (fun sh -> Session.live_flows (Shard.session sh))
  in
  (* Shard-major order (shard 0's flows first): deterministic given the
     shard contents, which recovery reproduces exactly. *)
  Tdmd.Instance.make ~graph:t.general.Tdmd.Instance.graph ~flows
    ~lambda:t.general.Tdmd.Instance.lambda

(* Read-only ops against live state while a shard is down: refused by
   default (the live union would silently miss the recovering shard's
   churn), answered from the last applied state and flagged
   ["degraded": true] under [serve --degraded-reads].  Static solves
   are pure functions of the immutable static instance and are never
   gated. *)
type read_status = Read_ok | Read_degraded | Read_unavailable of string

let read_status t =
  if Supervisor.all_serving t.sup then Read_ok
  else if t.degraded_reads then Read_degraded
  else
    Read_unavailable
      "a shard is recovering or poisoned; live reads are refused without \
       --degraded-reads"

let tag_degraded = function
  | Ok (Json.Obj fields) ->
    Ok (Json.Obj (fields @ [ ("degraded", Json.Bool true) ]))
  | (Ok _ | Error _) as r -> r

let solve t ~algo ~k ~seed ~target =
  match (target, Array.length t.shards) with
  | Protocol.Static, _ ->
    (* Shard 0's session carries the same static instance (and tree
       view) every shard does; with one shard this IS the pre-shard
       path, bit for bit. *)
    Session.solve (Shard.session t.shards.(0)) ~algo ~k ~seed ~target
  | Protocol.Live, n -> (
    match read_status t with
    | Read_unavailable msg -> Error ("unavailable", msg)
    | (Read_ok | Read_degraded) as st ->
      let reply =
        if n = 1 then
          Session.solve (Shard.session t.shards.(0)) ~algo ~k ~seed ~target
        else begin
          match combined_live_instance t with
          | inst -> Session.solve_on_instance ~algo ~k ~seed ~target inst
          | exception Invalid_argument msg -> Error ("internal", msg)
        end
      in
      if st = Read_degraded then tag_degraded reply else reply)

let solve_anytime t ~algo ~k ~seed ~target ~budget_ms =
  match (target, Array.length t.shards) with
  | Protocol.Static, _ ->
    Session.solve_anytime
      (Shard.session t.shards.(0))
      ~algo ~k ~seed ~target ~budget_ms
  | Protocol.Live, n -> (
    match read_status t with
    | Read_unavailable msg -> Error ("unavailable", msg)
    | (Read_ok | Read_degraded) as st ->
      let reply =
        if n = 1 then
          Session.solve_anytime
            (Shard.session t.shards.(0))
            ~algo ~k ~seed ~target ~budget_ms
        else begin
          match combined_live_instance t with
          | inst ->
            Session.solve_anytime_on_instance ~algo ~k ~seed ~target ~budget_ms
              inst
          | exception Invalid_argument msg -> Error ("internal", msg)
        end
      in
      if st = Read_degraded then tag_degraded reply else reply)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let single t = Shard.session t.shards.(0)

let churn_stats t =
  if Array.length t.shards = 1 then Session.churn_stats (single t)
  else begin
    let summaries =
      Array.map (fun sh -> Session.churn_summary (Shard.session sh)) t.shards
    in
    let sum f = Array.fold_left (fun acc s -> acc + f s) 0 summaries in
    let sumf f = Array.fold_left (fun acc s -> acc +. f s) 0.0 summaries in
    let placement =
      Array.fold_left
        (fun acc s -> Tdmd.Placement.union acc s.Session.placement)
        Tdmd.Placement.empty summaries
    in
    [
      ("flows", Json.Int (sum (fun s -> s.Session.live_flows)));
      ( "placement",
        Json.List
          (List.map (fun v -> Json.Int v) (Tdmd.Placement.to_list placement)) );
      ("bandwidth", Json.Float (sumf (fun s -> s.Session.bandwidth)));
      ( "feasible",
        Json.Bool (Array.for_all (fun s -> s.Session.feasible) summaries) );
      ("moves", Json.Int (sum (fun s -> s.Session.moves)));
      ("arrivals", Json.Int (sum (fun s -> s.Session.arrivals)));
      ("departures", Json.Int (sum (fun s -> s.Session.departures)));
      ("rebalances", Json.Int (sum (fun s -> s.Session.rebalances)));
      ("rebalance_moves", Json.Int (sum (fun s -> s.Session.rebalance_moves)));
    ]
  end

(* Rebalance fans out to every shard: each shard's placement is
   independent, so each spends its own budget on its own local search.
   The same [req] goes to every shard — dedup tables are per-shard, so
   a retry is suppressed on exactly the shards that already applied it
   and runs on any shard that had not. *)
let rebalance t ?req ?budget () =
  if Array.length t.shards = 1 then
    guarded_submit t 0 (Session.Batch_rebalance { req; budget })
  else if not (Supervisor.all_serving t.sup) then
    (* A partial rebalance (some shards re-placed, one skipped) would
       leave the fleet optimizing against two different placements;
       require the whole fleet up and let the client retry. *)
    Error ("unavailable", "rebalance needs every shard serving; retry")
  else begin
    let replies =
      Array.mapi
        (fun i _ -> guarded_submit t i (Session.Batch_rebalance { req; budget }))
        t.shards
    in
    match Array.find_opt Result.is_error replies with
    | Some (Error _ as e) -> e
    | Some (Ok _) | None ->
      let field name json =
        match json with
        | Ok (Json.Obj fields) -> List.assoc_opt name fields
        | Ok _ | Error _ -> None
      in
      let sum_int name =
        Array.fold_left
          (fun acc r ->
            match field name r with Some (Json.Int i) -> acc + i | _ -> acc)
          0 replies
      in
      (* A dedup hit answers without budget/moves_used; surface the
         resolved budget from any shard that ran, and flag dedup only
         when every shard suppressed the retry. *)
      let budget_field =
        Array.fold_left
          (fun acc r ->
            match acc with
            | Some _ -> acc
            | None -> (
              match field "budget" r with
              | Some (Json.Int b) -> Some b
              | _ -> None))
          None replies
      in
      let all_dedup =
        Array.for_all (fun r -> field "dedup" r = Some (Json.Bool true)) replies
      in
      Ok
        (Json.Obj
           ((("op", Json.String "rebalance") :: churn_stats t)
           @ (match budget_field with
             | Some b -> [ ("budget", Json.Int b) ]
             | None -> [])
           @ [ ("moves_used", Json.Int (sum_int "moves_used")) ]
           @ (if all_dedup then [ ("dedup", Json.Bool true) ] else [])))
  end

let shard_stats_json t =
  Array.to_list
    (Array.map
       (fun sh ->
         let st = Shard.stats sh in
         let summary = Session.churn_summary (Shard.session sh) in
         let batch_avg =
           if st.Shard.batches = 0 then 0.0
           else float_of_int st.Shard.batched_ops /. float_of_int st.Shard.batches
         in
         Json.Obj
           [
             ("shard", Json.Int (Shard.id sh));
             ("flows", Json.Int summary.Session.live_flows);
             ("queue_depth", Json.Int st.Shard.queue_depth);
             ("queue_peak", Json.Int st.Shard.queue_peak);
             ("batches", Json.Int st.Shard.batches);
             ("batched_ops", Json.Int st.Shard.batched_ops);
             ("fsync_batch_avg", Json.Float batch_avg);
             ("fsync_batch_max", Json.Int st.Shard.batch_max);
           ])
       t.shards)

let coord_stats_json coord =
  Locked.with_lock coord.lock (fun () ->
      Json.Obj
        [
          ("prepares", Json.Int coord.prepares);
          ("inflight", Json.Int coord.inflight);
          ("replayed", Json.Int coord.replayed);
          ("journal_bytes", Json.Int (Journal.size_bytes coord.journal));
        ])

let health_fields t =
  let hs = Supervisor.health t.sup in
  [
    ( "healthy",
      Json.Bool
        (Array.for_all (fun h -> h.Supervisor.state = Supervisor.Serving) hs) );
    ("degraded_reads", Json.Bool t.degraded_reads);
    ( "shards",
      Json.List
        (Array.to_list
           (Array.mapi
              (fun i h ->
                Json.Obj
                  [
                    ("shard", Json.Int i);
                    ( "state",
                      Json.String (Supervisor.state_to_string h.Supervisor.state)
                    );
                    ("restarts", Json.Int h.Supervisor.restarts);
                    ("recovery_failures", Json.Int h.Supervisor.failures);
                    ( "consecutive_failures",
                      Json.Int h.Supervisor.consecutive_failures );
                    ("breaker_trips", Json.Int h.Supervisor.breaker_trips);
                    ("last_recovery_ms", Json.Float h.Supervisor.last_recovery_ms);
                    ( "wal_poisoned",
                      Json.Bool (Session.wal_poisoned (Shard.session t.shards.(i)))
                    );
                  ])
              hs)) );
  ]

let stats_fields t =
  let base =
    if Array.length t.shards = 1 then Session.durability_stats (single t)
    else
      ("shards", Json.List (shard_stats_json t))
      ::
      (match t.coord with
      | Some coord -> [ ("coord", coord_stats_json coord) ]
      | None -> [])
  in
  base @ [ ("health", Json.Obj (health_fields t)) ]

let durability_telemetry t = Session.durability_telemetry (single t)

let close t =
  (* Join every recovery thread first so a mid-restart shard swap cannot
     race the closes below. *)
  Supervisor.shutdown t.sup;
  Array.iter
    (fun sh ->
      try Shard.close sh
      with Sys_error _ | Unix.Unix_error (_, _, _) ->
        (* A shard that died and never recovered (poisoned WAL, breaker
           open) cannot take a final snapshot; retire it without one —
           the disk already holds everything it acked. *)
        Session.abandon (Shard.session sh))
    t.shards;
  match t.coord with
  | None -> ()
  | Some coord ->
    Locked.with_lock coord.lock (fun () ->
        if coord.inflight = 0 then Journal.reset coord.journal;
        Journal.close coord.journal)
