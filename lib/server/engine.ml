module Json = Tdmd_obs.Json
module Locked = Tdmd_prelude.Locked
module Partition = Tdmd_topo.Partition

type source =
  | General of Tdmd.Instance.t
  | Tree of Tdmd.Instance.Tree.t

(* Cross-shard coordinator: a tiny journal of prepare/done pairs.  A
   prepare is made durable BEFORE the op is handed to its home shard;
   the done record retires it once the shard has decided (applied,
   deduplicated or refused).  Recovery re-submits every prepare without
   a done — the shard's xid-keyed dedup table makes that idempotent. *)
type coord = {
  journal : Journal.t;
  lock : Mutex.t;
  tag : string;  (* per-boot unique prefix for generated xids *)
  mutable seq : int;
  mutable inflight : int;
  mutable prepares : int;
  mutable replayed : int;
}

type t = {
  shards : Shard.t array;
  router : Router.t;
  coord : coord option;  (* durable and sharded only *)
  general : Tdmd.Instance.t;  (* canonical static instance *)
}

let shard_count t = Array.length t.shards
let router t = t.router
let shard t i = t.shards.(i)
let general t = t.general

let shard_dir root i = Filename.concat root (Printf.sprintf "shard-%d" i)
let coord_file root = Filename.concat root "coord.wal"

let ensure_dir dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let fresh_tag () =
  Printf.sprintf "xc-%d-%Ld" (Unix.getpid ()) (Tdmd_obs.Clock.now_ns ())

let make_coord journal =
  {
    journal;
    lock = Mutex.create ();
    tag = fresh_tag ();
    seq = 0;
    inflight = 0;
    prepares = 0;
    replayed = 0;
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let shard_config ~(config : Session.Config.t) ~root i =
  match config.Session.Config.durability with
  | None -> config
  | Some d ->
    {
      config with
      Session.Config.durability =
        Some { d with Session.dir = shard_dir root i };
    }

let build_session ~config source =
  match source with
  | General inst -> Session.create ~config inst
  | Tree tree_inst -> Session.create_tree ~config tree_inst

let create ?(config = Session.Config.default) ?(shards = 1) ?partition source =
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  let general =
    match source with
    | General inst -> inst
    | Tree tree_inst -> Tdmd.Instance.Tree.to_general tree_inst
  in
  let partition =
    match partition with
    | Some p ->
      if Partition.shards p <> shards then
        invalid_arg "Engine.create: partition/shards mismatch";
      if Partition.vertex_count p <> Tdmd_graph.Digraph.vertex_count general.Tdmd.Instance.graph
      then invalid_arg "Engine.create: partition covers a different graph";
      p
    | None -> Partition.make general.Tdmd.Instance.graph ~shards
  in
  if shards = 1 then begin
    (* Single shard: the session lives directly in the durability root,
       exactly as the pre-shard engine laid it out, so existing
       directories keep recovering and every answer stays bit-identical. *)
    let session = build_session ~config source in
    {
      shards = [| Shard.create ~id:0 session |];
      router = Router.create partition;
      coord = None;
      general;
    }
  end
  else begin
    let root =
      match config.Session.Config.durability with
      | None -> None
      | Some d ->
        ensure_dir d.Session.dir;
        Some d.Session.dir
    in
    let shard_arr =
      Array.init shards (fun i ->
          let config =
            match root with
            | None -> config
            | Some root -> shard_config ~config ~root i
          in
          Shard.create ~id:i (build_session ~config source))
    in
    let coord =
      match root with
      | None -> None
      | Some root ->
        let faults =
          match config.Session.Config.durability with
          | Some d -> d.Session.faults
          | None -> Faults.none
        in
        let journal, ops =
          Journal.open_append ~faults ~fsync:Journal.Always (coord_file root)
        in
        (* A fresh engine must not inherit in-flight ops: the shard
           directories were just seeded empty, so any leftover records
           are from an aborted directory reuse. *)
        if ops <> [] then Journal.reset journal;
        Some (make_coord journal)
    in
    { shards = shard_arr; router = Router.create partition; coord; general }
  end

let of_session session =
  let general = Session.general session in
  let n = Tdmd_graph.Digraph.vertex_count general.Tdmd.Instance.graph in
  {
    shards = [| Shard.create ~id:0 session |];
    router = Router.create (Partition.trivial ~n);
    coord = None;
    general;
  }

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let sharded_layout root = Sys.file_exists (shard_dir root 0)

let detect_shards root =
  let rec go i = if Sys.file_exists (shard_dir root i) then go (i + 1) else i in
  go 0

let rebuild_router partition shards =
  let router = Router.create partition in
  Array.iter
    (fun sh ->
      List.iter
        (fun (f : Tdmd_flow.Flow.t) ->
          Router.assign router ~flow_id:f.Tdmd_flow.Flow.id ~shard:(Shard.id sh))
        (Session.live_flows (Shard.session sh)))
    shards;
  router

(* Cross-shard ops whose prepare has no matching done: the coordinator
   died between handing them to the home shard and retiring them (or
   before handing them over at all). *)
let inflight_prepares ops =
  let done_xids = Hashtbl.create 16 in
  List.iter
    (function
      | Journal.Cross_done { xid } -> Hashtbl.replace done_xids xid ()
      | Journal.Cross_prepare _ | Journal.Arrive _ | Journal.Depart _
      | Journal.Rebalance _ -> ())
    ops;
  List.filter_map
    (function
      | Journal.Cross_prepare { xid; home; op } when not (Hashtbl.mem done_xids xid)
        ->
        Some (xid, home, op)
      | _ -> None)
    ops

let batch_op_of_journal xid = function
  | Journal.Arrive { id; rate; path; req = _ } ->
    Ok (Session.Batch_arrive { req = Some xid; id; rate; path })
  | Journal.Depart { flow_id; req = _ } ->
    Ok (Session.Batch_depart { req = Some xid; flow_id })
  | Journal.Rebalance _ ->
    (* Rebalance is per-shard local; the codec refuses to nest it, so a
       prepare carrying one is corruption. *)
    Error "coordinator journal: rebalance cannot be cross-shard"
  | Journal.Cross_prepare _ | Journal.Cross_done _ ->
    Error "coordinator journal: nested cross record"

let recover ?(dedup_cap = Session.default_dedup_cap) (cfg : Session.durability) =
  let root = cfg.Session.dir in
  if not (sharded_layout root) then begin
    (* Flat pre-shard layout: one session in the root. *)
    let* session = Session.recover ~dedup_cap cfg in
    let general = Session.general session in
    let n = Tdmd_graph.Digraph.vertex_count general.Tdmd.Instance.graph in
    Ok
      {
        shards = [| Shard.create ~id:0 session |];
        router = Router.create (Partition.trivial ~n);
        coord = None;
        general;
      }
  end
  else begin
    let n_shards = detect_shards root in
    let* sessions =
      Array.fold_left
        (fun acc i ->
          let* acc = acc in
          let* s =
            Result.map_error
              (Printf.sprintf "shard %d: %s" i)
              (Session.recover ~dedup_cap { cfg with Session.dir = shard_dir root i })
          in
          Ok (s :: acc))
        (Ok [])
        (Array.init n_shards (fun i -> i))
    in
    let sessions = Array.of_list (List.rev sessions) in
    let shards = Array.mapi (fun i s -> Shard.create ~id:i s) sessions in
    let general = Session.general sessions.(0) in
    (* The partition is a deterministic function of the recovered graph,
       so it is the partition the engine was created with. *)
    let partition = Partition.make general.Tdmd.Instance.graph ~shards:n_shards in
    let router = rebuild_router partition shards in
    let* journal, ops =
      match
        Journal.open_append ~faults:cfg.Session.faults ~fsync:Journal.Always
          (coord_file root)
      with
      | r -> Ok r
      | exception Sys_error msg -> Error msg
    in
    let coord = make_coord journal in
    let engine = { shards; router; coord = Some coord; general } in
    (* Replay in-flight cross-shard ops in journal order.  The home
       shard's dedup table is keyed by xid, so an op it already applied
       answers ["dedup": true] instead of applying twice. *)
    let* () =
      List.fold_left
        (fun acc (xid, home, op) ->
          let* () = acc in
          if home < 0 || home >= n_shards then
            Error (Printf.sprintf "coordinator journal: prepare %s targets shard %d of %d" xid home n_shards)
          else begin
            let* bop = batch_op_of_journal xid op in
            let reply = Shard.submit shards.(home) bop in
            (match (bop, reply) with
            | Session.Batch_arrive { id; _ }, Ok _ ->
              Router.assign router ~flow_id:id ~shard:home
            | Session.Batch_depart { flow_id; _ }, Ok _ ->
              Router.release router ~flow_id
            | Session.Batch_rebalance _, Ok _ -> ()
            | _, Error _ -> ());
            Journal.append journal (Journal.Cross_done { xid });
            coord.replayed <- coord.replayed + 1;
            Ok ()
          end)
        (Ok ()) (inflight_prepares ops)
    in
    (* Every surviving prepare is retired: compact so the next boot
       replays nothing. *)
    Journal.reset journal;
    Ok engine
  end

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)
(* ------------------------------------------------------------------ *)

let tag_shard t ~shard ~cross reply =
  if Array.length t.shards = 1 then reply
  else
    (* Routing detail is appended only in sharded mode, so [--shards 1]
       replies stay byte-identical to the pre-shard engine. *)
    match reply with
    | Ok (Json.Obj fields) ->
      Ok
        (Json.Obj
           (fields
           @ (("shard", Json.Int shard)
             :: (if cross then [ ("cross", Json.Bool true) ] else []))))
    | (Ok _ | Error _) as r -> r

let next_xid coord =
  coord.seq <- coord.seq + 1;
  Printf.sprintf "%s-%d" coord.tag coord.seq

(* Two-phase apply of an op whose path spans shards: durable prepare,
   home-shard apply (its own WAL + group commit), durable done.  The
   xid — the client's idempotency id when it sent one — rides as the
   op's [req] on the home shard, so replaying a prepare after a crash
   cannot double-apply. *)
let cross_submit t ~home ~req ~journal_op ~batch_op_of_xid =
  match t.coord with
  | None ->
    (* Not durable: no intent to persist, just route to the home shard. *)
    Shard.submit t.shards.(home) (batch_op_of_xid req)
  | Some coord ->
    let xid =
      match req with
      | Some r -> r
      | None -> Locked.with_lock coord.lock (fun () -> next_xid coord)
    in
    Locked.with_lock coord.lock (fun () ->
        Journal.append coord.journal
          (Journal.Cross_prepare { xid; home; op = journal_op xid });
        coord.prepares <- coord.prepares + 1;
        coord.inflight <- coord.inflight + 1);
    let reply = Shard.submit t.shards.(home) (batch_op_of_xid (Some xid)) in
    Locked.with_lock coord.lock (fun () ->
        Journal.append coord.journal (Journal.Cross_done { xid });
        coord.inflight <- coord.inflight - 1;
        (* The journal only matters while an op is in flight; compact it
           the moment it goes quiet so it never grows without bound. *)
        if coord.inflight = 0 then Journal.reset coord.journal);
    reply

let arrive t ?req ~id ~rate ~path () =
  let decision =
    match Router.route_arrive t.router ~path with
    | d -> Ok d
    | exception Invalid_argument msg -> Error ("bad-request", msg)
  in
  match decision with
  | Error _ as e -> e
  | Ok decision -> (
    let home, cross =
      match decision with
      | Router.Local s -> (s, false)
      | Router.Cross { home; _ } -> (home, true)
    in
    (* Global duplicate-id check: each session only knows its own flows,
       so an id resident on another shard must be refused here.  A retry
       (same path, hence same route) lands on its own shard instead and
       reaches that session's dedup table first, which decides between
       ["dedup"] and ["conflict"] exactly as the pre-shard engine did. *)
    match Router.lookup t.router ~flow_id:id with
    | Some resident when resident <> home ->
      Error ("conflict", Printf.sprintf "flow %d is already active" id)
    | Some _ | None ->
      begin
      let reply =
        if cross then
          cross_submit t ~home ~req
            ~journal_op:(fun xid ->
              Journal.Arrive { id; rate; path; req = Some xid })
            ~batch_op_of_xid:(fun req ->
              Session.Batch_arrive { req; id; rate; path })
        else
          Shard.submit t.shards.(home)
            (Session.Batch_arrive { req; id; rate; path })
      in
      (match reply with
      | Ok _ -> Router.assign t.router ~flow_id:id ~shard:home
      | Error _ -> ());
      tag_shard t ~shard:home ~cross reply
      end)

let depart t ?req ?shard_hint flow_id =
  let home = Router.route_depart t.router ?hint:shard_hint ~flow_id () in
  let reply =
    Shard.submit t.shards.(home) (Session.Batch_depart { req; flow_id })
  in
  (match reply with
  | Ok _ -> Router.release t.router ~flow_id
  | Error _ -> ());
  tag_shard t ~shard:home ~cross:false reply

(* ------------------------------------------------------------------ *)
(* Solve                                                               *)
(* ------------------------------------------------------------------ *)

let combined_live_instance t =
  let flows =
    Array.to_list t.shards
    |> List.concat_map (fun sh -> Session.live_flows (Shard.session sh))
  in
  (* Shard-major order (shard 0's flows first): deterministic given the
     shard contents, which recovery reproduces exactly. *)
  Tdmd.Instance.make ~graph:t.general.Tdmd.Instance.graph ~flows
    ~lambda:t.general.Tdmd.Instance.lambda

let solve t ~algo ~k ~seed ~target =
  match (target, Array.length t.shards) with
  | _, 1 | Protocol.Static, _ ->
    (* Shard 0's session carries the same static instance (and tree
       view) every shard does; with one shard this IS the pre-shard
       path, bit for bit. *)
    Session.solve (Shard.session t.shards.(0)) ~algo ~k ~seed ~target
  | Protocol.Live, _ -> (
    match combined_live_instance t with
    | inst -> Session.solve_on_instance ~algo ~k ~seed ~target inst
    | exception Invalid_argument msg -> Error ("internal", msg))

let solve_anytime t ~algo ~k ~seed ~target ~budget_ms =
  match (target, Array.length t.shards) with
  | _, 1 | Protocol.Static, _ ->
    Session.solve_anytime
      (Shard.session t.shards.(0))
      ~algo ~k ~seed ~target ~budget_ms
  | Protocol.Live, _ -> (
    match combined_live_instance t with
    | inst ->
      Session.solve_anytime_on_instance ~algo ~k ~seed ~target ~budget_ms inst
    | exception Invalid_argument msg -> Error ("internal", msg))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let single t = Shard.session t.shards.(0)

let churn_stats t =
  if Array.length t.shards = 1 then Session.churn_stats (single t)
  else begin
    let summaries =
      Array.map (fun sh -> Session.churn_summary (Shard.session sh)) t.shards
    in
    let sum f = Array.fold_left (fun acc s -> acc + f s) 0 summaries in
    let sumf f = Array.fold_left (fun acc s -> acc +. f s) 0.0 summaries in
    let placement =
      Array.fold_left
        (fun acc s -> Tdmd.Placement.union acc s.Session.placement)
        Tdmd.Placement.empty summaries
    in
    [
      ("flows", Json.Int (sum (fun s -> s.Session.live_flows)));
      ( "placement",
        Json.List
          (List.map (fun v -> Json.Int v) (Tdmd.Placement.to_list placement)) );
      ("bandwidth", Json.Float (sumf (fun s -> s.Session.bandwidth)));
      ( "feasible",
        Json.Bool (Array.for_all (fun s -> s.Session.feasible) summaries) );
      ("moves", Json.Int (sum (fun s -> s.Session.moves)));
      ("arrivals", Json.Int (sum (fun s -> s.Session.arrivals)));
      ("departures", Json.Int (sum (fun s -> s.Session.departures)));
      ("rebalances", Json.Int (sum (fun s -> s.Session.rebalances)));
      ("rebalance_moves", Json.Int (sum (fun s -> s.Session.rebalance_moves)));
    ]
  end

(* Rebalance fans out to every shard: each shard's placement is
   independent, so each spends its own budget on its own local search.
   The same [req] goes to every shard — dedup tables are per-shard, so
   a retry is suppressed on exactly the shards that already applied it
   and runs on any shard that had not. *)
let rebalance t ?req ?budget () =
  if Array.length t.shards = 1 then
    Shard.submit t.shards.(0) (Session.Batch_rebalance { req; budget })
  else begin
    let replies =
      Array.map
        (fun sh -> Shard.submit sh (Session.Batch_rebalance { req; budget }))
        t.shards
    in
    match Array.find_opt Result.is_error replies with
    | Some (Error _ as e) -> e
    | Some (Ok _) | None ->
      let field name json =
        match json with
        | Ok (Json.Obj fields) -> List.assoc_opt name fields
        | Ok _ | Error _ -> None
      in
      let sum_int name =
        Array.fold_left
          (fun acc r ->
            match field name r with Some (Json.Int i) -> acc + i | _ -> acc)
          0 replies
      in
      (* A dedup hit answers without budget/moves_used; surface the
         resolved budget from any shard that ran, and flag dedup only
         when every shard suppressed the retry. *)
      let budget_field =
        Array.fold_left
          (fun acc r ->
            match acc with
            | Some _ -> acc
            | None -> (
              match field "budget" r with
              | Some (Json.Int b) -> Some b
              | _ -> None))
          None replies
      in
      let all_dedup =
        Array.for_all (fun r -> field "dedup" r = Some (Json.Bool true)) replies
      in
      Ok
        (Json.Obj
           ((("op", Json.String "rebalance") :: churn_stats t)
           @ (match budget_field with
             | Some b -> [ ("budget", Json.Int b) ]
             | None -> [])
           @ [ ("moves_used", Json.Int (sum_int "moves_used")) ]
           @ (if all_dedup then [ ("dedup", Json.Bool true) ] else [])))
  end

let shard_stats_json t =
  Array.to_list
    (Array.map
       (fun sh ->
         let st = Shard.stats sh in
         let summary = Session.churn_summary (Shard.session sh) in
         let batch_avg =
           if st.Shard.batches = 0 then 0.0
           else float_of_int st.Shard.batched_ops /. float_of_int st.Shard.batches
         in
         Json.Obj
           [
             ("shard", Json.Int (Shard.id sh));
             ("flows", Json.Int summary.Session.live_flows);
             ("queue_depth", Json.Int st.Shard.queue_depth);
             ("queue_peak", Json.Int st.Shard.queue_peak);
             ("batches", Json.Int st.Shard.batches);
             ("batched_ops", Json.Int st.Shard.batched_ops);
             ("fsync_batch_avg", Json.Float batch_avg);
             ("fsync_batch_max", Json.Int st.Shard.batch_max);
           ])
       t.shards)

let coord_stats_json coord =
  Locked.with_lock coord.lock (fun () ->
      Json.Obj
        [
          ("prepares", Json.Int coord.prepares);
          ("inflight", Json.Int coord.inflight);
          ("replayed", Json.Int coord.replayed);
          ("journal_bytes", Json.Int (Journal.size_bytes coord.journal));
        ])

let stats_fields t =
  if Array.length t.shards = 1 then Session.durability_stats (single t)
  else
    ("shards", Json.List (shard_stats_json t))
    ::
    (match t.coord with
    | Some coord -> [ ("coord", coord_stats_json coord) ]
    | None -> [])

let durability_telemetry t = Session.durability_telemetry (single t)

let close t =
  Array.iter Shard.close t.shards;
  match t.coord with
  | None -> ()
  | Some coord ->
    Locked.with_lock coord.lock (fun () ->
        if coord.inflight = 0 then Journal.reset coord.journal;
        Journal.close coord.journal)
