module Json = Tdmd_obs.Json

type t = { fd : Unix.file_descr; mutable open_ : bool }

let connect addr =
  let domain =
    match addr with
    | Protocol.Unix_sock _ -> Unix.PF_UNIX
    | Protocol.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Protocol.sockaddr addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; open_ = true }

let connect_retry ?(attempts = 50) ?(delay = 0.1) addr =
  let rec go n =
    match connect addr with
    | c -> Ok c
    | exception (Unix.Unix_error _ as e) ->
      if n <= 1 then Error (Printexc.to_string e)
      else begin
        Thread.delay delay;
        go (n - 1)
      end
  in
  go (max 1 attempts)

let rpc_json t json =
  if not t.open_ then Error "client is closed"
  else begin
    match Protocol.write_frame t.fd json with
    | exception Unix.Unix_error (err, _, _) ->
      Error ("write: " ^ Unix.error_message err)
    | () -> (
      match Protocol.read_frame t.fd with
      | Ok v -> Ok v
      | Error `Eof -> Error "connection closed by server"
      | Error (`Bad msg) -> Error msg
      | exception Unix.Unix_error (err, _, _) ->
        Error ("read: " ^ Unix.error_message err))
  end

let rpc t ?id ?deadline_ms request =
  rpc_json t (Protocol.request_to_json ?id ?deadline_ms request)

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
