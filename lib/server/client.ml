module Json = Tdmd_obs.Json
module Backoff = Tdmd_prelude.Backoff

type t = {
  mutable addr : Protocol.addr;  (* updated when following a redirect *)
  retry : Backoff.policy;
  seed : int option;
  mutable fd : Unix.file_descr option;  (* None = disconnected *)
  mutable closed : bool;                (* explicit [close]: terminal *)
  mutable next_req : int;
  tag : string;  (* per-client prefix for generated idempotency ids *)
}

let raw_connect addr =
  let domain =
    match addr with
    | Protocol.Unix_sock _ -> Unix.PF_UNIX
    | Protocol.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Protocol.sockaddr addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* Ids must not collide with a previous incarnation of this process
   talking to a server whose dedup table survived (journaled), so the
   tag mixes the pid with a wall-clock microsecond stamp. *)
let fresh_tag () =
  Printf.sprintf "c%d.%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6)

let connect ?(retry = Backoff.default) ?seed addr =
  let fd = raw_connect addr in
  { addr; retry; seed; fd = Some fd; closed = false; next_req = 0;
    tag = fresh_tag () }

let budget_exhausted_prefix = "retry-budget-exhausted: "

let budget_exhausted msg =
  String.length msg >= String.length budget_exhausted_prefix
  && String.sub msg 0 (String.length budget_exhausted_prefix)
     = budget_exhausted_prefix

let connect_retry ?(policy = Backoff.default) ?seed addr =
  let b = Backoff.start ?seed policy in
  let rec go () =
    match connect ~retry:policy ?seed addr with
    | c -> Ok c
    | exception (Unix.Unix_error _ as e) ->
      if Backoff.sleep b then go ()
      else
        Error
          (Printf.sprintf "%s%s (gave up after %d attempts over %.2f s)"
             budget_exhausted_prefix (Printexc.to_string e)
             (Backoff.attempts b) (Backoff.elapsed b))
  in
  go ()

let drop_connection t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let reconnect t =
  drop_connection t;
  match raw_connect t.addr with
  | fd -> t.fd <- Some fd
  | exception Unix.Unix_error _ -> ()  (* stay disconnected; caller retries *)

(* One write/read exchange.  Any transport failure drops the connection
   so a later retry starts from a clean reconnect instead of a
   half-written frame. *)
let exchange t json =
  if t.closed then Error (`Fatal "client is closed")
  else
    match t.fd with
    | None -> Error (`Transport "not connected")
    | Some fd -> (
      match Protocol.write_frame fd json with
      | exception Unix.Unix_error (err, _, _) ->
        drop_connection t;
        Error (`Transport ("write: " ^ Unix.error_message err))
      | () -> (
        match Protocol.read_frame fd with
        | Ok v -> Ok v
        | Error `Eof ->
          drop_connection t;
          Error (`Transport "connection closed by server")
        | Error (`Bad msg) ->
          (* Framing is out of sync — same reasoning as the server's
             reader: reconnect rather than misparse what follows. *)
          drop_connection t;
          Error (`Transport msg)
        | exception Unix.Unix_error (err, _, _) ->
          drop_connection t;
          Error (`Transport ("read: " ^ Unix.error_message err))))

(* A sharded deployment may answer "that flow lives on the replica at
   ADDR".  The client transparently follows exactly one redirect per
   call: reconnect there, resend, and return whatever comes back (a
   second redirect is returned verbatim — chasing chains hides routing
   loops).  The address sticks, so subsequent calls go directly. *)
let redirect_target json =
  match
    (Json.member "ok" json, Json.member "code" json, Json.member "redirect" json)
  with
  | Some (Json.Bool false), Some (Json.String "redirect"), Some (Json.String a)
    -> (
    match Protocol.addr_of_string a with Ok addr -> Some addr | Error _ -> None)
  | _ -> None

let exchange_follow t json =
  match exchange t json with
  | Error _ as e -> e
  | Ok resp -> (
    match redirect_target resp with
    | None -> Ok resp
    | Some addr -> (
      t.addr <- addr;
      reconnect t;
      match t.fd with
      | None -> Error (`Transport "reconnect after redirect failed")
      | Some _ -> exchange t json))

let rpc_json t json =
  match exchange_follow t json with
  | Ok v -> Ok v
  | Error (`Fatal msg | `Transport msg) -> Error msg

let rpc t ?id ?deadline_ms ?req request =
  rpc_json t (Protocol.request_to_json ?id ?deadline_ms ?req request)

let gen_req t =
  let n = t.next_req in
  t.next_req <- n + 1;
  Printf.sprintf "%s-%d" t.tag n

let is_mutating = function
  | Protocol.Arrive _ | Protocol.Depart _ | Protocol.Rebalance _ -> true
  | Protocol.Ping | Protocol.Sleep _ | Protocol.Solve _ | Protocol.Stats
  | Protocol.Health | Protocol.Shutdown ->
    false

(* Retryable server answers: the queue was full, or the target shard is
   restarting.  Everything else the server says ("bad-request",
   "conflict", "deadline", ...) is a real answer and retrying would not
   change it. *)
let retryable json =
  match (Json.member "ok" json, Json.member "code" json) with
  | ( Some (Json.Bool false),
      Some (Json.String ("overloaded" | "unavailable")) ) ->
    true
  | _ -> false

(* The server's push-back hint on "unavailable" replies: how long a
   shard recovery typically takes. *)
let server_delay json =
  match Json.member "retry_after_ms" json with
  | Some (Json.Int ms) when ms >= 0 -> Some (float_of_int ms /. 1000.0)
  | _ -> None

let rpc_retry t ?id ?deadline_ms ?req ?policy request =
  let req =
    match req with
    | Some _ -> req
    | None -> if is_mutating request then Some (gen_req t) else None
  in
  let json = Protocol.request_to_json ?id ?deadline_ms ?req request in
  let b = Backoff.start ?seed:t.seed (Option.value policy ~default:t.retry) in
  let give_up msg =
    (* A distinct, machine-matchable failure (see {!budget_exhausted}):
       callers treat "the server definitively said no" and "I ran out of
       retry budget" very differently. *)
    Error
      (Printf.sprintf "%s%s (gave up after %d attempts over %.2f s)"
         budget_exhausted_prefix msg (Backoff.attempts b) (Backoff.elapsed b))
  in
  (* One unit of waiting, honoring a server-pushed retry_after_ms when
     present (it draws down the same attempt/wall-clock budget as a
     jittered sleep, so a stream of hints cannot stretch the give-up
     point). *)
  let wait ~hint =
    match hint with Some d -> Backoff.sleep_for b d | None -> Backoff.sleep b
  in
  let rec attempt () =
    match exchange_follow t json with
    | Error (`Fatal msg) -> Error msg
    | Ok resp when not (retryable resp) -> Ok resp
    | Ok resp ->
      (* Overloaded or unavailable: the connection is fine, just wait
         and resend. *)
      let reason =
        match Json.member "code" resp with
        | Some (Json.String "unavailable") -> "shard unavailable"
        | _ -> "server overloaded"
      in
      if wait ~hint:(server_delay resp) then attempt () else give_up reason
    | Error (`Transport msg) ->
      (* The request may or may not have been applied before the
         connection died — safe to resend only because mutating ops
         carry an idempotency id the server deduplicates. *)
      if wait ~hint:None then begin
        reconnect t;
        attempt ()
      end
      else give_up msg
  in
  attempt ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    drop_connection t
  end
