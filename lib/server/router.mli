(** Flow-to-shard routing over a {!Tdmd_topo.Partition}.

    Arrivals route by path ownership: a path wholly inside one shard's
    region is [Local] to it; a path spanning regions is [Cross] with a
    home shard (the one owning most of its vertices) for the
    coordinator to target.  Departures carry no path, so the router
    remembers each flow's home shard from its arrival. *)

type decision =
  | Local of int
  | Cross of { home : int; spans : int list }
      (** [spans] is the sorted list of shards the path touches *)

type t

val create : Tdmd_topo.Partition.t -> t
val partition : t -> Tdmd_topo.Partition.t
val shards : t -> int

val route_arrive : t -> path:int list -> decision
(** @raise Invalid_argument on an empty path or a vertex outside the
    partitioned graph (callers map this to a bad-request reply). *)

val assign : t -> flow_id:int -> shard:int -> unit
(** Record an applied arrival's home shard.  Thread-safe. *)

val release : t -> flow_id:int -> unit
(** Forget a departed flow. *)

val lookup : t -> flow_id:int -> int option
(** The remembered home shard of an active flow, if any. *)

val route_depart : t -> ?hint:int -> flow_id:int -> unit -> int
(** The remembered home shard; falls back to a valid [hint] and then to
    shard 0 (whose no-op depart reply matches the pre-shard engine's
    unknown-flow behaviour). *)

val reconcile : t -> shard:int -> flow_ids:int list -> unit
(** Fold [flow_ids] — the recovered session's live flows after a
    supervised restart of [shard], the durable truth for that shard —
    into the table.  Entries homed on [shard] whose flow is {e absent}
    from [flow_ids] are deliberately kept: a mapping only exists for an
    applied arrive, so an absent flow means its depart was applied and
    journaled but the ack died with the leader, and the client's retry
    (same idempotency id) must still route to [shard], whose recovered
    dedup table suppresses it — dropping the entry would send the retry
    to the shard-0 fallback, which answers ["conflict"].  The retry's
    ack releases the entry.  Entries homed on other shards are
    untouched.  Thread-safe. *)

val assignments : t -> (int * int) list
(** Current [(flow_id, shard)] pairs, for recovery-time rebuilds. *)
