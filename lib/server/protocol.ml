module Json = Tdmd_obs.Json

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)
(* ------------------------------------------------------------------ *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  let prefix p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then Ok (Unix_sock (after "unix:"))
  else if prefix "tcp:" then begin
    match String.rindex_opt (after "tcp:") ':' with
    | None -> Error "tcp address must be tcp:HOST:PORT"
    | Some i ->
      let hp = after "tcp:" in
      let host = String.sub hp 0 i in
      let port = String.sub hp (i + 1) (String.length hp - i - 1) in
      (match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad port %S" port))
  end
  else if s = "" then Error "empty address"
  else Ok (Unix_sock s)

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
        | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (ip, port)

(* ------------------------------------------------------------------ *)
(* Framing: 4-byte big-endian length + JSON payload                    *)
(* ------------------------------------------------------------------ *)

let max_frame = 16 * 1024 * 1024

(* EINTR-safe, short-write-correct write loop.  A partial [write] (full
   socket buffer, signal mid-copy) resumes at the right offset, so a
   frame can never hit the wire torn; [EINTR] retries without progress.
   The fault hooks shrink or interrupt individual passes deterministically
   so tests can prove both properties. *)
let write_all ?(faults = Faults.none) ?(point = "sock.write") fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    let want = len - !off in
    if Faults.enabled faults then Faults.fail faults point;
    let want = if Faults.enabled faults then Faults.clamp faults point want else want in
    let simulated_eintr = Faults.enabled faults && Faults.eintr faults point in
    if not simulated_eintr then begin
      match Unix.write fd bytes !off want with
      | n -> off := !off + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done

let write_frame ?faults fd json =
  let payload = Bytes.of_string (Json.to_string json) in
  let len = Bytes.length payload in
  let frame = Bytes.create (4 + len) in
  Bytes.set_uint8 frame 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 frame 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 frame 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 frame 3 (len land 0xff);
  Bytes.blit payload 0 frame 4 len;
  (* One write for the whole frame: responses from different worker
     domains interleave at frame granularity under the connection's
     write lock, never inside a frame. *)
  write_all ?faults fd frame

(* [`Eof] only when the stream ends cleanly *between* frames; anything
   truncated mid-frame is [`Bad]. *)
let read_exact ?(faults = Faults.none) fd n ~clean_eof =
  let buf = Bytes.create n in
  let rec go off =
    let want = n - off in
    let want = if Faults.enabled faults then Faults.clamp faults "sock.read" want else want in
    if off >= n then Ok buf
    else if Faults.enabled faults && Faults.eintr faults "sock.read" then go off
    else begin
      match Unix.read fd buf off want with
      | 0 -> if off = 0 && clean_eof then Error `Eof else Error (`Bad "truncated frame")
      | r -> go (off + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

let read_frame ?faults fd =
  match read_exact ?faults fd 4 ~clean_eof:true with
  | Error _ as e -> e
  | Ok hdr ->
    let len =
      (Bytes.get_uint8 hdr 0 lsl 24)
      lor (Bytes.get_uint8 hdr 1 lsl 16)
      lor (Bytes.get_uint8 hdr 2 lsl 8)
      lor Bytes.get_uint8 hdr 3
    in
    if len > max_frame then Error (`Bad (Printf.sprintf "frame of %d bytes exceeds limit" len))
    else begin
      match read_exact ?faults fd len ~clean_eof:false with
      | Error `Eof -> Error (`Bad "truncated frame")
      | Error (`Bad _) as e -> e
      | Ok payload -> (
        match Json.of_string (Bytes.to_string payload) with
        | Ok v -> Ok v
        | Error msg -> Error (`Bad ("invalid JSON payload: " ^ msg)))
    end

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type solve_target = Static | Live

type request =
  | Ping
  | Sleep of int
  | Solve of { algo : string; k : int; seed : int; target : solve_target }
  | Arrive of { id : int; rate : int; path : int list }
  | Depart of int
  | Rebalance of { budget : int option }
  | Stats
  | Health
  | Shutdown

(* The wire protocol is versioned so routing fields can be added
   without breaking older peers.  [V1] is today's frames, unchanged on
   the wire: the version marker ("v") and the shard-routing fields are
   optional, and a V1 sender that omits them parses exactly as before. *)
type version = V1

let version_to_int = function V1 -> 1

type envelope = {
  version : version;
  id : Json.t option;
  deadline_ms : int option;
  req : string option;
  shard_hint : int option;
  request : request;
}

let request_to_json ?id ?deadline_ms ?req ?shard_hint request =
  let base =
    match request with
    | Ping -> [ ("op", Json.String "ping") ]
    | Sleep ms -> [ ("op", Json.String "sleep"); ("ms", Json.Int ms) ]
    | Solve { algo; k; seed; target } ->
      [
        ("op", Json.String "solve");
        ("algo", Json.String algo);
        ("k", Json.Int k);
        ("seed", Json.Int seed);
        ("on", Json.String (match target with Static -> "static" | Live -> "live"));
      ]
    | Arrive { id; rate; path } ->
      [
        ("op", Json.String "arrive");
        ( "flow",
          Json.Obj
            [
              ("id", Json.Int id);
              ("rate", Json.Int rate);
              ("path", Json.List (List.map (fun v -> Json.Int v) path));
            ] );
      ]
    | Depart id -> [ ("op", Json.String "depart"); ("flow_id", Json.Int id) ]
    | Rebalance { budget } ->
      ("op", Json.String "rebalance")
      :: (match budget with
         | Some b -> [ ("budget", Json.Int b) ]
         | None -> [])
    | Stats -> [ ("op", Json.String "stats") ]
    | Health -> [ ("op", Json.String "health") ]
    | Shutdown -> [ ("op", Json.String "shutdown") ]
  in
  let envelope =
    (match id with Some v -> [ ("id", v) ] | None -> [])
    @ (match deadline_ms with Some d -> [ ("deadline_ms", Json.Int d) ] | None -> [])
    @ (match req with Some r -> [ ("req", Json.String r) ] | None -> [])
    @ (match shard_hint with Some s -> [ ("shard_hint", Json.Int s) ] | None -> [])
  in
  Json.Obj (base @ envelope)

let int_field json name =
  match Json.member name json with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field_opt json name ~default =
  match Json.member name json with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Ok default

let string_field json name =
  match Json.member name json with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) = Result.bind

let parse_request json =
  let* op = string_field json "op" in
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "health" -> Ok Health
  | "shutdown" -> Ok Shutdown
  | "sleep" ->
    let* ms = int_field json "ms" in
    if ms < 0 then Error "sleep: ms must be >= 0" else Ok (Sleep ms)
  | "solve" ->
    let* algo = string_field json "algo" in
    let* k = int_field json "k" in
    let* seed = int_field_opt json "seed" ~default:0 in
    let* target =
      match Json.member "on" json with
      | None | Some (Json.String "static") -> Ok Static
      | Some (Json.String "live") -> Ok Live
      | Some _ -> Error "field \"on\" must be \"static\" or \"live\""
    in
    if k < 1 then Error "solve: k must be >= 1"
    else Ok (Solve { algo; k; seed; target })
  | "arrive" -> (
    match Json.member "flow" json with
    | Some flow ->
      let* id = int_field flow "id" in
      let* rate = int_field flow "rate" in
      let* path =
        match Json.member "path" flow with
        | Some (Json.List vs) ->
          List.fold_right
            (fun v acc ->
              let* acc = acc in
              match v with
              | Json.Int i -> Ok (i :: acc)
              | _ -> Error "flow path must be a list of integers")
            vs (Ok [])
        | _ -> Error "missing flow field \"path\""
      in
      Ok (Arrive { id; rate; path })
    | None -> Error "missing field \"flow\"")
  | "depart" ->
    let* id = int_field json "flow_id" in
    Ok (Depart id)
  | "rebalance" -> (
    match Json.member "budget" json with
    | None -> Ok (Rebalance { budget = None })
    | Some (Json.Int b) when b >= 0 -> Ok (Rebalance { budget = Some b })
    | Some _ -> Error "rebalance: field \"budget\" must be a non-negative integer")
  | other -> Error (Printf.sprintf "unknown op %S" other)

let request_of_json json =
  match json with
  | Json.Obj _ ->
    let* version =
      match Json.member "v" json with
      | None | Some (Json.Int 1) -> Ok V1
      | Some (Json.Int v) ->
        Error (Printf.sprintf "unsupported protocol version %d" v)
      | Some _ -> Error "field \"v\" must be an integer"
    in
    let* request = parse_request json in
    let* deadline_ms =
      match Json.member "deadline_ms" json with
      | None -> Ok None
      | Some (Json.Int d) when d >= 0 -> Ok (Some d)
      | Some _ -> Error "field \"deadline_ms\" must be a non-negative integer"
    in
    let* req =
      match Json.member "req" json with
      | None -> Ok None
      | Some (Json.String r) when r <> "" -> Ok (Some r)
      | Some _ -> Error "field \"req\" must be a non-empty string"
    in
    let* shard_hint =
      match Json.member "shard_hint" json with
      | None -> Ok None
      | Some (Json.Int s) when s >= 0 -> Ok (Some s)
      | Some _ -> Error "field \"shard_hint\" must be a non-negative integer"
    in
    Ok { version; id = Json.member "id" json; deadline_ms; req; shard_hint; request }
  | _ -> Error "request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let id_field = function Some v -> [ ("id", v) ] | None -> []

let ok ?id fields = Json.Obj ((("ok", Json.Bool true) :: id_field id) @ fields)

(* [retry_after_ms] is a V1-additive hint on retryable errors (today:
   ["unavailable"] while a shard recovers) — old clients ignore the
   extra field and keep their own jittered schedule. *)
let error ?id ?retry_after_ms ~code msg =
  Json.Obj
    ((("ok", Json.Bool false) :: id_field id)
    @ [ ("code", Json.String code); ("error", Json.String msg) ]
    @
    match retry_after_ms with
    | Some ms -> [ ("retry_after_ms", Json.Int ms) ]
    | None -> [])

(* A shard-aware deployment can answer "not mine, ask that replica":
   the client reconnects to ["redirect"] and resends once. *)
let redirect ?id addr =
  Json.Obj
    ((("ok", Json.Bool false) :: id_field id)
    @ [
        ("code", Json.String "redirect");
        ("error", Json.String "flow is owned by another replica");
        ("redirect", Json.String (addr_to_string addr));
      ])

(* ------------------------------------------------------------------ *)
(* Instance codec                                                      *)
(* ------------------------------------------------------------------ *)

let instance_to_json (inst : Tdmd.Instance.t) =
  let g = inst.Tdmd.Instance.graph in
  let edges =
    List.map
      (fun { Tdmd_graph.Digraph.src; dst; _ } ->
        Json.List [ Json.Int src; Json.Int dst ])
      (Tdmd_graph.Digraph.edges g)
  in
  let flows =
    List.map
      (fun (f : Tdmd_flow.Flow.t) ->
        Json.Obj
          [
            ("id", Json.Int f.Tdmd_flow.Flow.id);
            ("rate", Json.Int f.Tdmd_flow.Flow.rate);
            ( "path",
              Json.List
                (Array.to_list
                   (Array.map (fun v -> Json.Int v) f.Tdmd_flow.Flow.path)) );
          ])
      (Tdmd.Instance.flows inst)
  in
  Json.Obj
    [
      ("lambda", Json.Float inst.Tdmd.Instance.lambda);
      ("vertices", Json.Int (Tdmd_graph.Digraph.vertex_count g));
      ("undirected", Json.Bool false);
      ("edges", Json.List edges);
      ("flows", Json.List flows);
    ]

let instance_of_json json =
  let* lambda =
    match Json.member "lambda" json with
    | Some v -> (
      match Json.to_float v with
      | Some x -> Ok x
      | None -> Error "field \"lambda\" must be a number")
    | None -> Error "missing field \"lambda\""
  in
  let* n = int_field json "vertices" in
  if n < 1 then Error "field \"vertices\" must be >= 1"
  else begin
    let undirected =
      match Json.member "undirected" json with
      | Some (Json.Bool b) -> b
      | _ -> true
    in
    let g = Tdmd_graph.Digraph.create n in
    let* () =
      match Json.member "edges" json with
      | Some (Json.List es) ->
        List.fold_left
          (fun acc e ->
            let* () = acc in
            match e with
            | Json.List [ Json.Int u; Json.Int v ]
              when u >= 0 && u < n && v >= 0 && v < n && u <> v ->
              (try
                 if undirected then Tdmd_graph.Digraph.add_undirected g u v
                 else Tdmd_graph.Digraph.add_edge g u v;
                 Ok ()
               with Invalid_argument msg -> Error msg)
            | _ -> Error "each edge must be [u, v] with valid vertex ids")
          (Ok ()) es
      | _ -> Error "missing field \"edges\""
    in
    let* flows =
      match Json.member "flows" json with
      | Some (Json.List fs) ->
        List.fold_right
          (fun f acc ->
            let* acc = acc in
            let* id = int_field f "id" in
            let* rate = int_field f "rate" in
            let* path =
              match Json.member "path" f with
              | Some (Json.List vs) ->
                List.fold_right
                  (fun v tail ->
                    let* tail = tail in
                    match v with
                    | Json.Int i -> Ok (i :: tail)
                    | _ -> Error "flow path must be a list of integers")
                  vs (Ok [])
              | _ -> Error "missing flow field \"path\""
            in
            match Tdmd_flow.Flow.make ~id ~rate ~path with
            | f -> Ok (f :: acc)
            | exception Invalid_argument msg -> Error msg)
          fs (Ok [])
      | _ -> Error "missing field \"flows\""
    in
    match Tdmd.Instance.make ~graph:g ~flows ~lambda with
    | inst -> Ok inst
    | exception Invalid_argument msg -> Error msg
  end
