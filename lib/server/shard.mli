(** One shard of the sharded placement engine: a {!Session} (its own
    churn engine, WAL segment stream and dedup table) fronted by a
    group-commit queue.

    Concurrent {!submit} calls from worker domains enqueue their op and
    elect a leader: the first submitter into an idle queue drains it —
    including everything that arrives while a batch is committing — into
    {!Session.apply_batch}, amortizing one session-lock acquisition and
    one WAL fsync over the whole batch.  Everyone else blocks on a
    condition variable until the leader fills in their reply.  Under
    contention batches form naturally; an uncontended shard degenerates
    to batches of one, which is exactly the pre-shard code path. *)

type t

val create : ?faults:Faults.t -> id:int -> Session.t -> t
(** Wrap a session as shard [id].  The shard owns the session: close it
    via {!close} only.  [faults] arms the leader-loop points
    ["shard.apply"] (before the batch reaches the session — a [die]
    kills the leader with the batch un-applied) and ["shard.apply.post"]
    (batch applied and durable, waiters not yet acked — the
    exactly-once-under-retry window). *)

val id : t -> int
val session : t -> Session.t

val submit : t -> Session.batch_op -> Session.reply
(** Enqueue one churn op and block until a leader (possibly this very
    caller) commits the batch containing it.  Thread-safe. *)

type stats = {
  queue_depth : int;  (** ops awaiting a leader right now *)
  queue_peak : int;  (** high-water mark of [queue_depth] *)
  batches : int;  (** group commits so far *)
  batched_ops : int;  (** ops across all batches; [/. batches] = mean size *)
  batch_max : int;  (** largest single batch *)
}

val stats : t -> stats

val close : t -> unit
(** {!Session.close} the underlying session (final snapshot). *)
