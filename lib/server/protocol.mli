(** Wire protocol of the placement service.

    Transport: a byte stream (Unix-domain or TCP socket) carrying
    {e length-prefixed JSON} frames — a 4-byte big-endian unsigned
    payload length followed by exactly that many bytes of UTF-8 JSON
    ({!Tdmd_obs.Json}).  Both directions use the same framing; one
    request frame yields exactly one response frame, in order, so a
    closed-loop client can simply alternate write/read.

    Requests are objects with an ["op"] field plus op-specific
    arguments and three optional envelope fields: ["id"] (any JSON
    value, echoed verbatim in the response), ["deadline_ms"] (time
    budget; most requests still waiting in queue when it expires are
    answered with a ["deadline"] error instead of being executed, but a
    deadlined [solve] becomes an {e anytime} solve — the remaining
    budget is spent racing a solver portfolio and the best placement
    found so far is returned, flagged ["anytime": true]) and ["req"]
    (a non-empty idempotency string under which mutating ops are
    deduplicated server-side).

    Responses are objects with ["ok": true] and op-specific fields, or
    ["ok": false] with ["code"] (machine-readable, see {!section:codes})
    and ["error"] (human-readable). *)

module Json = Tdmd_obs.Json

(** {1 Addresses} *)

type addr =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or a bare filesystem path
    (treated as [Unix_sock]). *)

val addr_to_string : addr -> string
val sockaddr : addr -> Unix.sockaddr

(** {1 Framing} *)

val max_frame : int
(** Refuse frames larger than this (16 MiB) — a corrupt or hostile
    length prefix must not allocate unboundedly. *)

val write_all :
  ?faults:Faults.t -> ?point:string -> Unix.file_descr -> bytes -> unit
(** EINTR-safe, short-write-correct write loop (also used by the WAL).
    A partial [write] resumes at the right offset so no frame or journal
    record is ever emitted torn; [EINTR] retries without progress.
    [faults]/[point] (default ["sock.write"]) let tests shrink or
    interrupt individual passes deterministically.
    @raise Unix.Unix_error on real transport failure. *)

val write_frame : ?faults:Faults.t -> Unix.file_descr -> Json.t -> unit
(** Serialize and send one frame.  @raise Unix.Unix_error on transport
    failure (e.g. the peer is gone). *)

val read_exact :
  ?faults:Faults.t ->
  Unix.file_descr ->
  int ->
  clean_eof:bool ->
  (bytes, [ `Eof | `Bad of string ]) result
(** Read exactly [n] bytes, EINTR-safe and resuming across short reads
    (also used by the WAL to slurp segments).  An end-of-stream at
    offset 0 is [`Eof] when [clean_eof] is set and [`Bad _] otherwise;
    an end-of-stream mid-buffer is always [`Bad _]. *)

val read_frame :
  ?faults:Faults.t -> Unix.file_descr -> (Json.t, [ `Eof | `Bad of string ]) result
(** Read one frame.  [`Eof] on clean close before a length prefix;
    [`Bad _] on truncation, oversized lengths or invalid JSON.  Reads
    are EINTR-safe and resume across short returns; [faults] injects
    both at point ["sock.read"]. *)

(** {1 Requests} *)

type solve_target =
  | Static  (** the instance loaded at session start *)
  | Live    (** the churn engine's current flow set *)

type request =
  | Ping
  | Sleep of int  (** milliseconds; a load/test aid that occupies a worker *)
  | Solve of { algo : string; k : int; seed : int; target : solve_target }
  | Arrive of { id : int; rate : int; path : int list }
  | Depart of int
  | Rebalance of { budget : int option }
      (** one migration-budgeted rebalance pass; [budget] must be
          [>= 0] and defaults to the server's configured migration
          budget *)
  | Stats
  | Health
      (** lightweight per-shard health probe: answered inline by the
          reader thread (never queued), so it works even while every
          worker is busy or a shard is down *)
  | Shutdown

type version = V1  (** today's frames, byte-for-byte the pre-versioned wire *)

val version_to_int : version -> int

type envelope = {
  version : version;
      (** from the optional ["v"] field: absent or [1] parses as {!V1};
          anything else is refused with ["unsupported protocol version"],
          so future versions can change frames without silent misparses *)
  id : Json.t option;
  deadline_ms : int option;
  req : string option;
      (** idempotency id: the server deduplicates mutating ops
          ([arrive]/[depart]) carrying a ["req"] it has already applied,
          so a client may retry them safely (see {!Session}) *)
  shard_hint : int option;
      (** optional routing hint for sharded deployments: which shard the
          client believes owns the flow (used by [depart], whose frame
          carries no path); never required, invalid hints are ignored *)
  request : request;
}

val request_to_json :
  ?id:Json.t -> ?deadline_ms:int -> ?req:string -> ?shard_hint:int ->
  request -> Json.t
val request_of_json : Json.t -> (envelope, string) result

(** {1:codes Responses} *)

val ok : ?id:Json.t -> (string * Json.t) list -> Json.t
(** [{"ok": true, "id": id?, ...fields}]. *)

val error : ?id:Json.t -> ?retry_after_ms:int -> code:string -> string -> Json.t
(** [{"ok": false, "id": id?, "code": code, "error": msg}].  Codes in
    use: ["bad-request"] (unparseable frame / unknown op / invalid
    arguments), ["unknown-algo"] (name not in the registry; the message
    lists the registry), ["overloaded"] (bounded queue full — retry
    later), ["deadline"] (queueing budget expired before execution —
    never emitted for [solve], which answers anytime instead),
    ["shutting-down"] (server is draining), ["conflict"] (e.g.
    duplicate flow id), ["unavailable"] (the owning shard is recovering
    or poisoned — retry later), ["redirect"] (see {!redirect}).
    [retry_after_ms] adds an optional ["retry_after_ms"] integer (a
    V1-additive server hint on retryable errors; older clients ignore
    it). *)

val redirect : ?id:Json.t -> addr -> Json.t
(** [{"ok": false, "code": "redirect", "redirect": "<addr>", ...}] — a
    shard-aware deployment answering "that flow is owned by the replica
    at [addr]".  {!Client.rpc} reconnects there and resends exactly
    once. *)

(** {1 Instance codec}

    Inline instances for [serve --instance]: an object with ["lambda"],
    ["vertices"] (vertex count), ["edges"] ([[u,v], ...]) and ["flows"]
    ([{"id","rate","path"}, ...]).  ["undirected"] (default [true])
    controls whether each edge pair adds both arcs. *)

val instance_to_json : Tdmd.Instance.t -> Json.t
val instance_of_json : Json.t -> (Tdmd.Instance.t, string) result
