module Locked = Tdmd_prelude.Locked

exception Crash of string

type kind = Crash_k | Eintr_k | Short_k | Corrupt_k | Fail_k

type directive = { kind : kind; point : string; nth : int }

type t = {
  directives : directive list;
  counts : (string, int) Hashtbl.t;  (* per-point pass counts *)
  rng : Tdmd_prelude.Rng.t;          (* offsets for short/corrupt *)
  lock : Mutex.t;  (* points are hit from reader threads and workers *)
}

let none =
  {
    directives = [];
    counts = Hashtbl.create 1;
    rng = Tdmd_prelude.Rng.create 0;
    lock = Mutex.create ();
  }

let enabled t = t.directives <> []

let kind_of_string = function
  | "crash" -> Some Crash_k
  | "eintr" -> Some Eintr_k
  | "short" -> Some Short_k
  | "corrupt" -> Some Corrupt_k
  | "fail" -> Some Fail_k
  | _ -> None

let of_spec spec =
  let parts =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parse_directive part =
    match String.index_opt part '@' with
    | None -> (
      match String.split_on_char '=' part with
      | [ "seed"; v ] -> (
        match int_of_string_opt v with
        | Some s -> Ok (`Seed s)
        | None -> Error (Printf.sprintf "bad seed %S" v))
      | _ ->
        Error
          (Printf.sprintf "bad directive %S (expected KIND@POINT[:NTH] or seed=N)"
             part))
    | Some at -> (
      let kind_s = String.sub part 0 at in
      let tail = String.sub part (at + 1) (String.length part - at - 1) in
      let point, nth =
        match String.rindex_opt tail ':' with
        | Some i -> (
          let p = String.sub tail 0 i in
          let n = String.sub tail (i + 1) (String.length tail - i - 1) in
          match int_of_string_opt n with
          | Some n when n >= 1 -> (p, n)
          | _ -> (tail, 1))
        | None -> (tail, 1)
      in
      match kind_of_string kind_s with
      | Some kind when point <> "" -> Ok (`Directive { kind; point; nth })
      | Some _ -> Error (Printf.sprintf "empty point in %S" part)
      | None -> Error (Printf.sprintf "unknown fault kind %S" kind_s))
  in
  let rec go seed acc = function
    | [] ->
      Ok
        {
          directives = List.rev acc;
          counts = Hashtbl.create 8;
          rng = Tdmd_prelude.Rng.create seed;
          lock = Mutex.create ();
        }
    | part :: rest -> (
      match parse_directive part with
      | Error _ as e -> e
      | Ok (`Seed s) -> go s acc rest
      | Ok (`Directive d) -> go seed (d :: acc) rest)
  in
  go 0 [] parts

let from_env () =
  match Sys.getenv_opt "TDMD_FAULTS" with
  | None | Some "" -> none
  | Some spec -> (
    match of_spec spec with
    | Ok t -> t
    | Error msg ->
      (* tdmd-lint: allow no-direct-io — a bad TDMD_FAULTS spec aborts startup before any sink exists *)
      Printf.eprintf "TDMD_FAULTS: %s\n%!" msg;
      exit 2)

(* Count the pass and return the directives firing at exactly this
   count.  One mutex for the whole plan: fault runs are not performance
   runs. *)
let fire t point =
  if not (enabled t) then []
  else
    Locked.with_lock t.lock (fun () ->
        let n =
          (match Hashtbl.find_opt t.counts point with Some c -> c | None -> 0)
          + 1
        in
        Hashtbl.replace t.counts point n;
        List.filter (fun d -> d.point = point && d.nth = n) t.directives)

let hit t point =
  List.iter
    (fun d -> match d.kind with Crash_k -> raise (Crash point) | _ -> ())
    (fire t point)

let eintr t point =
  List.exists (fun d -> d.kind = Eintr_k) (fire t point)

(* Its own point namespace ([POINT.fail]) so arming a failure does not
   shift the hit counts that [short]/[eintr] directives at [POINT] were
   tuned against. *)
let fail t point =
  if List.exists (fun d -> d.kind = Fail_k) (fire t (point ^ ".fail")) then
    raise (Unix.Unix_error (Unix.EIO, "write", point))

let clamp t point len =
  let fired = fire t point in
  if len <= 1 then len
  else if List.exists (fun d -> d.kind = Short_k) fired then
    Locked.with_lock t.lock (fun () -> 1 + Tdmd_prelude.Rng.int t.rng (len - 1))
  else len

let mangle t point buf =
  let fired = fire t point in
  if Bytes.length buf > 0 && List.exists (fun d -> d.kind = Corrupt_k) fired
  then begin
    let i, bit =
      Locked.with_lock t.lock (fun () ->
          let i = Tdmd_prelude.Rng.int t.rng (Bytes.length buf) in
          (i, 1 lsl Tdmd_prelude.Rng.int t.rng 8))
    in
    Bytes.set_uint8 buf i (Bytes.get_uint8 buf i lxor bit)
  end

let hits t =
  let l =
    Locked.with_lock t.lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts [])
  in
  List.sort compare l
