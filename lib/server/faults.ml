module Locked = Tdmd_prelude.Locked

exception Crash of string
exception Die of string

type kind = Crash_k | Eintr_k | Short_k | Corrupt_k | Fail_k | Die_k | Delay_k

type trigger = Nth of int | Prob of float

type directive = { kind : kind; point : string; trigger : trigger }

type t = {
  directives : directive list;
  counts : (string, int) Hashtbl.t;  (* per-point pass counts *)
  rng : Tdmd_prelude.Rng.t;          (* offsets, prob draws, delay widths *)
  seed : int;
  lock : Mutex.t;  (* points are hit from reader threads and workers *)
}

let none =
  {
    directives = [];
    counts = Hashtbl.create 1;
    rng = Tdmd_prelude.Rng.create 0;
    seed = 0;
    lock = Mutex.create ();
  }

let enabled t = t.directives <> []

let kind_of_string = function
  | "crash" -> Some Crash_k
  | "eintr" -> Some Eintr_k
  | "short" -> Some Short_k
  | "corrupt" -> Some Corrupt_k
  | "fail" -> Some Fail_k
  | "die" -> Some Die_k
  | "delay" -> Some Delay_k
  | _ -> None

let string_of_kind = function
  | Crash_k -> "crash"
  | Eintr_k -> "eintr"
  | Short_k -> "short"
  | Corrupt_k -> "corrupt"
  | Fail_k -> "fail"
  | Die_k -> "die"
  | Delay_k -> "delay"

(* Kinds whose firing raises: two of these armed so they can fire on the
   same pass of the same point would race for the exception, which makes
   the plan ambiguous rather than deterministic. *)
let raises = function
  | Crash_k | Die_k | Fail_k -> true
  | Eintr_k | Short_k | Corrupt_k | Delay_k -> false

let may_coincide a b =
  match (a, b) with
  | Nth n, Nth m -> n = m
  | Prob _, _ | _, Prob _ -> true

let check_conflicts directives =
  let rec go = function
    | [] -> Ok ()
    | d :: rest ->
      if List.exists (fun e -> e = d) rest then
        Error
          (Printf.sprintf "duplicate directive %s@%s" (string_of_kind d.kind)
             d.point)
      else if
        raises d.kind
        && List.exists
             (fun e ->
               e.point = d.point && raises e.kind
               && may_coincide d.trigger e.trigger)
             rest
      then
        Error
          (Printf.sprintf
             "conflicting directives at point %S: two raising kinds could \
              fire on the same pass"
             d.point)
      else go rest
  in
  go directives

let of_spec spec =
  let parts =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parse_directive part =
    match String.index_opt part '@' with
    | None -> (
      match String.split_on_char '=' part with
      | [ "seed"; v ] -> (
        match int_of_string_opt v with
        | Some s -> Ok (`Seed s)
        | None -> Error (Printf.sprintf "bad seed %S" v))
      | _ ->
        Error
          (Printf.sprintf
             "bad directive %S (expected KIND@POINT[:NTH|:p=P] or seed=N)"
             part))
    | Some at -> (
      let kind_s = String.sub part 0 at in
      let tail = String.sub part (at + 1) (String.length part - at - 1) in
      let point_trigger =
        match String.rindex_opt tail ':' with
        | Some i -> (
          let p = String.sub tail 0 i in
          let n = String.sub tail (i + 1) (String.length tail - i - 1) in
          match int_of_string_opt n with
          | Some n when n >= 1 -> Ok (p, Nth n)
          | Some _ ->
            Error (Printf.sprintf "bad NTH in %S (must be >= 1)" part)
          | None -> (
            match String.split_on_char '=' n with
            | [ "p"; v ] -> (
              match float_of_string_opt v with
              | Some p_val when p_val > 0. && p_val <= 1. ->
                Ok (p, Prob p_val)
              | Some _ ->
                Error
                  (Printf.sprintf "bad probability in %S (need 0 < p <= 1)"
                     part)
              | None -> Error (Printf.sprintf "bad probability in %S" part))
            | _ ->
              Error
                (Printf.sprintf
                   "bad trigger %S in %S (expected :NTH or :p=P)" n part)))
        | None -> Ok (tail, Nth 1)
      in
      match point_trigger with
      | Error _ as e -> e
      | Ok (point, trigger) -> (
        match kind_of_string kind_s with
        | Some kind when point <> "" -> Ok (`Directive { kind; point; trigger })
        | Some _ -> Error (Printf.sprintf "empty point in %S" part)
        | None -> Error (Printf.sprintf "unknown fault kind %S" kind_s)))
  in
  let rec go seed acc = function
    | [] -> (
      let directives = List.rev acc in
      match check_conflicts directives with
      | Error _ as e -> e
      | Ok () ->
        Ok
          {
            directives;
            counts = Hashtbl.create 8;
            rng = Tdmd_prelude.Rng.create seed;
            seed;
            lock = Mutex.create ();
          })
    | part :: rest -> (
      match parse_directive part with
      | Error _ as e -> e
      | Ok (`Seed s) -> go s acc rest
      | Ok (`Directive d) -> go seed (d :: acc) rest)
  in
  go 0 [] parts

let to_spec t =
  let dir d =
    let trig =
      match d.trigger with
      | Nth n -> Printf.sprintf ":%d" n
      | Prob p -> Printf.sprintf ":p=%.17g" p
    in
    Printf.sprintf "%s@%s%s" (string_of_kind d.kind) d.point trig
  in
  let parts = List.map dir t.directives in
  let parts =
    if t.seed = 0 then parts else parts @ [ Printf.sprintf "seed=%d" t.seed ]
  in
  String.concat ";" parts

let from_env () =
  match Sys.getenv_opt "TDMD_FAULTS" with
  | None | Some "" -> none
  | Some spec -> (
    match of_spec spec with
    | Ok t -> t
    | Error msg ->
      (* tdmd-lint: allow no-direct-io — a bad TDMD_FAULTS spec aborts startup before any sink exists *)
      Printf.eprintf "TDMD_FAULTS: %s\n%!" msg;
      exit 2)

(* Count the pass and return the directives firing on it: [Nth n] fires
   at exactly the [n]-th pass, [Prob p] fires on an independent seeded
   draw every pass.  One mutex for the whole plan: fault runs are not
   performance runs. *)
let fire t point =
  if not (enabled t) then []
  else
    Locked.with_lock t.lock (fun () ->
        let n =
          (match Hashtbl.find_opt t.counts point with Some c -> c | None -> 0)
          + 1
        in
        Hashtbl.replace t.counts point n;
        List.filter
          (fun d ->
            d.point = point
            &&
            match d.trigger with
            | Nth k -> k = n
            | Prob p -> Tdmd_prelude.Rng.float t.rng 1.0 < p)
          t.directives)

let hit t point =
  let fired = fire t point in
  if List.exists (fun d -> d.kind = Delay_k) fired then begin
    let dt =
      Locked.with_lock t.lock (fun () ->
          0.001 +. Tdmd_prelude.Rng.float t.rng 0.009)
    in
    Unix.sleepf dt
  end;
  if List.exists (fun d -> d.kind = Crash_k) fired then raise (Crash point);
  if List.exists (fun d -> d.kind = Die_k) fired then raise (Die point)

let eintr t point =
  List.exists (fun d -> d.kind = Eintr_k) (fire t point)

(* Its own point namespace ([POINT.fail]) so arming a failure does not
   shift the hit counts that [short]/[eintr] directives at [POINT] were
   tuned against. *)
let fail t point =
  if List.exists (fun d -> d.kind = Fail_k) (fire t (point ^ ".fail")) then
    raise (Unix.Unix_error (Unix.EIO, "write", point))

let clamp t point len =
  let fired = fire t point in
  if len <= 1 then len
  else if List.exists (fun d -> d.kind = Short_k) fired then
    Locked.with_lock t.lock (fun () -> 1 + Tdmd_prelude.Rng.int t.rng (len - 1))
  else len

let mangle t point buf =
  let fired = fire t point in
  if Bytes.length buf > 0 && List.exists (fun d -> d.kind = Corrupt_k) fired
  then begin
    let i, bit =
      Locked.with_lock t.lock (fun () ->
          let i = Tdmd_prelude.Rng.int t.rng (Bytes.length buf) in
          (i, 1 lsl Tdmd_prelude.Rng.int t.rng 8))
    in
    Bytes.set_uint8 buf i (Bytes.get_uint8 buf i lxor bit)
  end

let hits t =
  let l =
    Locked.with_lock t.lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts [])
  in
  List.sort compare l
