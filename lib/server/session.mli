(** Server-side session: one loaded instance, many requests.

    A session pins the data every request runs against: the static
    instance loaded at startup (tree or general) and a churn engine
    ({!Tdmd.Incremental}) over the same graph that [arrive]/[depart]
    mutate.  All mutating and snapshot-taking operations are serialized
    behind an internal mutex, so session methods may be called from any
    worker domain; [solve] releases the lock before running the solver,
    so long solves never block churn. *)

type t

val of_general : churn_k:int -> Tdmd.Instance.t -> t
(** Serve a general instance: tree-only solvers are refused with a
    registry listing. *)

val of_tree : churn_k:int -> Tdmd.Instance.Tree.t -> t
(** Serve a tree instance: every registry name resolves (general
    solvers see the {!Tdmd.Instance.Tree.to_general} view). *)

val general : t -> Tdmd.Instance.t
(** The static instance's general view (used by tests and the bench to
    cross-check server answers against direct registry calls). *)

type reply = (Protocol.Json.t, string * string) result
(** [Ok response_obj] or [Error (code, message)] in the sense of
    {!Protocol.error}. *)

val solve :
  t -> algo:string -> k:int -> seed:int -> target:Protocol.solve_target -> reply
(** Dispatch by registry name with [Rng.create seed] — the answer is
    bit-identical to calling the registry directly with the same seed.
    Response fields: ["algo"], ["k"], ["seed"], ["on"], ["placement"]
    (sorted vertex list), ["bandwidth"], ["feasible"], ["telemetry"]. *)

val arrive : t -> id:int -> rate:int -> path:int list -> reply
(** Feed one arrival to the churn engine.  ["conflict"] on duplicate
    flow ids, ["bad-request"] on paths not in the graph.  Response
    carries the post-event deployment summary (see {!churn_stats}). *)

val depart : t -> int -> reply
(** Feed one departure (unknown ids are a no-op, as in
    {!Tdmd.Incremental.depart}). *)

val churn_stats : t -> (string * Protocol.Json.t) list
(** ["flows"], ["placement"], ["bandwidth"], ["feasible"], ["moves"],
    ["arrivals"], ["departures"] of the churn engine, under the lock. *)
