(** Server-side session: one loaded instance, many requests.

    A session pins the data every request runs against: the static
    instance loaded at startup (tree or general) and a churn engine
    ({!Tdmd.Incremental}) over the same graph that [arrive]/[depart]
    mutate.  All mutating and snapshot-taking operations are serialized
    behind an internal mutex, so session methods may be called from any
    worker domain; [solve] releases the lock before running the solver,
    so long solves never block churn.

    {2 Durability}

    With a {!durability} config the session becomes crash-safe: every
    churn op is appended to a write-ahead journal ({!Journal}) {e before}
    it mutates the engine, and the engine is periodically serialized to
    an atomic snapshot that truncates the journal.  {!recover} rebuilds
    a bit-identical session from the directory after a crash — same
    answers to every query and the same behaviour for every future
    event.  Mutating requests carrying an idempotency id (the envelope
    ["req"] field) are deduplicated across the crash, so a client retry
    of an op the server applied just before dying is suppressed rather
    than applied twice. *)

type t

(** {1 Durability configuration} *)

type durability = {
  dir : string;  (** journal + snapshot directory, created if missing *)
  fsync : Journal.fsync_policy;
  snapshot_every : int;
      (** write a snapshot (and truncate the journal) after this many
          journaled ops; [0] = only at startup and {!close} *)
  faults : Faults.t;  (** deterministic fault plan for tests *)
}

val durability :
  ?fsync:Journal.fsync_policy ->
  ?snapshot_every:int ->
  ?faults:Faults.t ->
  string ->
  durability
(** [durability dir] with [fsync] defaulting to {!Journal.Always} and
    [snapshot_every] to [0].
    @raise Invalid_argument if [snapshot_every < 0]. *)

val snapshot_file : durability -> string
(** [dir/snapshot.json] — where the atomic snapshot lives. *)

val journal_file : durability -> int -> string
(** [journal_file cfg epoch] is [dir/journal-<epoch>.wal].  Segments are
    rotated by epoch at each snapshot; the snapshot records which epoch
    continues it, so a crash mid-rotation recovers consistently. *)

(** {1 Construction} *)

val default_dedup_cap : int
(** Default bound (8192) on remembered idempotency ids.  The dedup
    table is FIFO-bounded: past the cap the oldest id is evicted, so a
    retry is only suppressed when it lands within the last [cap]
    mutating ops — and memory/snapshot size stay O(cap) under unbounded
    churn. *)

(** Everything a session's behaviour depends on, in one record — shards
    and tests build sessions uniformly from a [Config.t] instead of
    threading four optional arguments. *)
module Config : sig
  type t = {
    churn_k : int;  (** middlebox budget of the churn engine *)
    migration_budget : int;
        (** moves the rebalancer may spend after each churn event
            (see {!Tdmd.Incremental.create}); 0 = pin-only *)
    dedup_cap : int;  (** >= 1; see {!default_dedup_cap} *)
    durability : durability option;  (** [None] = in-memory only *)
    dtel : Tdmd_obs.Telemetry.t option;
        (** share a telemetry sink (e.g. one per shard directory);
            [None] = the session creates its own *)
  }

  val default : t
  (** [churn_k = 8], [migration_budget = 0],
      [dedup_cap = default_dedup_cap], not durable. *)
end

val create : ?config:Config.t -> Tdmd.Instance.t -> t
(** Serve a general instance: tree-only solvers are refused with a
    registry listing.  With [config.durability] the directory is
    initialised (journal opened + locked, seed snapshot written) so it
    is self-contained from the first op.
    @raise Invalid_argument if [config.dedup_cap < 1].
    @raise Sys_error if the directory already holds a snapshot (use
    {!recover}) or the journal is locked by another process. *)

val create_tree : ?config:Config.t -> Tdmd.Instance.Tree.t -> t
(** Serve a tree instance: every registry name resolves (general
    solvers see the {!Tdmd.Instance.Tree.to_general} view).  Note the
    snapshot codec stores the general view only, so {!recover} of a
    tree session serves it as a general session. *)

val recover : ?dedup_cap:int -> durability -> (t, string) result
(** Rebuild a session from [cfg.dir]: parse the snapshot, restore the
    churn engine ({!Tdmd.Incremental.restore}), then replay the journal
    segment the snapshot names — truncating a torn tail — and rebuild
    the dedup table (in its original insertion order, re-bounded by
    [?dedup_cap]) from both.  The result is bit-identical to the
    pre-crash session.  Journal segments whose epoch is {e not} the one
    the snapshot names — orphans of a crash mid-rotation — are deleted,
    as is a leftover snapshot temp file.  Takes over the journal
    (exclusive lock) and continues appending to it. *)

val general : t -> Tdmd.Instance.t
(** The static instance's general view (used by tests and the bench to
    cross-check server answers against direct registry calls). *)

type reply = (Protocol.Json.t, string * string) result
(** [Ok response_obj] or [Error (code, message)] in the sense of
    {!Protocol.error}. *)

val solve_on_instance :
  algo:string ->
  k:int ->
  seed:int ->
  target:Protocol.solve_target ->
  Tdmd.Instance.t ->
  reply
(** General-registry dispatch against an explicit instance, with the
    same seeding and response fields as {!solve}.  The sharded engine
    uses this to solve [Live] over the union of all shards' flows. *)

val solve :
  t -> algo:string -> k:int -> seed:int -> target:Protocol.solve_target -> reply
(** Dispatch by registry name with [Rng.create seed] — the answer is
    bit-identical to calling the registry directly with the same seed.
    Response fields: ["algo"], ["k"], ["seed"], ["on"], ["placement"]
    (sorted vertex list), ["bandwidth"], ["feasible"], ["telemetry"]. *)

val solve_anytime_on_instance :
  ?tree:Tdmd.Instance.Tree.t ->
  algo:string ->
  k:int ->
  seed:int ->
  target:Protocol.solve_target ->
  budget_ms:int ->
  Tdmd.Instance.t ->
  reply
(** Deadline-bounded solve: race a {!Tdmd_portfolio.Portfolio} for at
    most [budget_ms] and answer with the best feasible placement found
    so far instead of a deadline error.  ["portfolio"] /["anneal"] /
    ["genetic"] select their members directly; any other known registry
    name races as a restart-wrapped seed against the two metaheuristics
    (tree-only names need [?tree]).  The response carries the {!solve}
    fields plus ["anytime"]:true, ["budget_ms"], ["member"] (who found
    the answer; ["fallback"] when nothing was published within the
    budget) and ["improvements"]. *)

val solve_anytime :
  t ->
  algo:string ->
  k:int ->
  seed:int ->
  target:Protocol.solve_target ->
  budget_ms:int ->
  reply
(** {!solve_anytime_on_instance} against this session's static instance
    ([target = Static], with the tree view passed through when the
    session serves a tree) or a locked snapshot of its live churn
    engine ([target = Live]). *)

val arrive : t -> ?req:string -> id:int -> rate:int -> path:int list -> unit -> reply
(** Feed one arrival to the churn engine.  ["conflict"] on duplicate
    flow ids, ["bad-request"] on paths not in the graph.  Response
    carries the post-event deployment summary (see {!churn_stats}).
    With [?req], the op is journaled before it is applied and
    deduplicated: a second call with the same [req] is a no-op that
    returns the current summary plus ["dedup": true]. *)

val depart : t -> ?req:string -> int -> reply
(** Feed one departure.  Unknown ids answer ["conflict"] {e before}
    anything reaches the journal — the engine treats a phantom
    departure as a caller bug ({!Tdmd.Incremental.depart} raises), so
    the serve layer refuses it instead of silently counting it.
    [?req] as in {!arrive}. *)

val rebalance : t -> ?req:string -> ?budget:int -> unit -> reply
(** Run one bounded local-search rebalance pass
    ({!Tdmd.Incremental.rebalance}).  [budget] caps the moves this pass
    may spend; it defaults to the engine's configured migration budget
    and must be [>= 0] (["bad-request"] otherwise).  The {e resolved}
    budget is journaled, so crash replay spends exactly the same moves.
    Response adds ["budget"] and ["moves_used"] to the usual churn
    summary.  [?req] as in {!arrive}. *)

(** {1 Batched churn (group commit)} *)

type batch_op =
  | Batch_arrive of { req : string option; id : int; rate : int; path : int list }
  | Batch_depart of { req : string option; flow_id : int }
  | Batch_rebalance of { req : string option; budget : int option }

val apply_batch : t -> batch_op list -> reply list
(** Apply a batch of churn ops under {e one} lock acquisition and — when
    durable — {e one} fsync (each record is appended with
    [Journal.append ~flush:false]; a single {!Journal.flush} at batch
    end makes the whole batch durable before any reply is returned, so
    the acked-implies-durable invariant is batch-granular, never
    weakened).  Replies come back in op order; a per-op failure
    (bad-request, conflict, dedup hit, journal I/O error) answers that
    op and the rest of the batch proceeds.  If the batch-end fsync
    fails, every reply whose record's durability is now unknown is
    downgraded to [Error ("internal", _)] and the journal is poisoned.
    [arrive]/[depart] are one-element batches of this, so single-op and
    batched paths compute bit-identical states. *)

(** {1 Live-state accessors (for the sharded engine)} *)

val live_instance : t -> Tdmd.Instance.t
(** Snapshot of the churn engine's current instance, under the lock. *)

val live_flows : t -> Tdmd_flow.Flow.t list
(** The churn engine's active flows, under the lock. *)

type churn_summary = {
  live_flows : int;
  placement : Tdmd.Placement.t;
  bandwidth : float;
  feasible : bool;
  moves : int;
  arrivals : int;
  departures : int;
  rebalances : int;
  rebalance_moves : int;
}

val churn_summary : t -> churn_summary
(** Typed counterpart of {!churn_stats}, for cross-shard aggregation. *)

val churn_stats : t -> (string * Protocol.Json.t) list
(** ["flows"], ["placement"], ["bandwidth"], ["feasible"], ["moves"],
    ["arrivals"], ["departures"], ["rebalances"], ["rebalance_moves"]
    of the churn engine, under the lock. *)

val durability_stats : t -> (string * Protocol.Json.t) list
(** A single ["durability"] field (empty list when the session is not
    durable): dir, fsync policy, epoch, journal bytes, WAL/replay/
    truncation/snapshot/dedup counters. *)

val durability_telemetry : t -> Tdmd_obs.Telemetry.t
(** Counters behind {!durability_stats} — ["wal_appends"],
    ["wal_bytes"], ["wal_fsyncs"], ["wal_replayed"],
    ["wal_torn_truncations"], ["wal_torn_bytes"],
    ["wal_append_failures"], ["wal_stale_segments_removed"],
    ["snapshots"], ["dedup_hits"], ["dedup_evictions"].  Read it only
    while the session is quiescent. *)

val wal_poisoned : t -> bool
(** [true] once a failed append/fsync has poisoned the journal — every
    further mutating op will be refused until the session is recovered.
    The supervisor polls this after each batch to trigger a restart.
    Always [false] for non-durable sessions. *)

val close : t -> unit
(** Durable sessions: write a final snapshot (so a restart replays
    nothing) and release the journal.  Harmless no-op otherwise (and on
    {!abandon}ed sessions). *)

val abandon : t -> unit
(** Retire the session without a final snapshot: release the journal
    descriptor (ignoring errors — the journal may be poisoned) and
    fence all future ops, which answer [Error ("unavailable", _)] from
    then on.  The supervised-restart path: the on-disk state is the
    authority and a fresh {!recover} replaces this session.  Idempotent;
    never raises. *)
