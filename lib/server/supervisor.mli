(** Per-shard health state machine and supervised restart.

    The serve layer is crash-{e safe} (WAL + snapshots + recovery) but a
    shard whose leader dies mid-batch, or whose journal poisons after a
    failed fsync, used to wedge every request routed at it.  The
    supervisor makes it crash-{e tolerant}: each shard carries a health
    state

    {v Serving --failure--> Recovering --K consecutive failed
       recoveries--> Poisoned v}

    and a failure (reported by the engine, or caught by {!protect}
    around a dispatch) spawns one background recovery thread that
    retries the shard's snapshot⊕replay restart procedure under
    {!Tdmd_prelude.Backoff} until it succeeds (back to [Serving]) or the
    circuit breaker trips ([Poisoned] — the shard stays down and answers
    ["unavailable"] until an operator intervenes, instead of
    crash-looping against a broken disk).

    The supervisor hosts the project's {e single} sanctioned
    catch-and-restart site (see {!protect}): everything else in
    [lib/server] matches the exceptions it means, and [Faults.Crash]
    (the stand-in for [kill -9]) is always re-raised so crash tests keep
    killing the process. *)

type state = Serving | Recovering | Poisoned

val state_to_string : state -> string
(** ["serving"] / ["recovering"] / ["poisoned"] — the wire spelling used
    by the [health] RPC. *)

type config = {
  max_failures : int;
      (** K: trip the breaker to [Poisoned] after this many consecutive
          failed recovery attempts (>= 1) *)
  backoff : Tdmd_prelude.Backoff.policy;
      (** schedule between recovery attempts; the default is unlimited
          attempts/budget so [max_failures] alone governs *)
  retry_after_ms : int;
      (** pushed to clients in ["retry_after_ms"] on [unavailable]
          replies *)
}

val default_config : config
(** [max_failures = 5], backoff base 10 ms / cap 250 ms,
    [retry_after_ms = 50]. *)

val config :
  ?max_failures:int ->
  ?backoff:Tdmd_prelude.Backoff.policy ->
  ?retry_after_ms:int ->
  unit ->
  config
(** {!default_config} with overrides.
    @raise Invalid_argument on [max_failures < 1] or
    [retry_after_ms < 0]. *)

type t

val create :
  ?config:config ->
  ?tel:Tdmd_obs.Telemetry.t ->
  ?faults:Faults.t ->
  restart:(int -> (unit, string) result) option ->
  shards:int ->
  unit ->
  t
(** [create ~restart ~shards ()] starts every shard [Serving].
    [restart] is the in-place restart procedure (abandon the dead
    session, recover a replacement from disk, swap it in); [None] —
    non-durable engines, which have no disk state to recover from —
    makes the first failure trip straight through recovery attempts
    that all fail.  [faults] arms the recovery-attempt point
    ["sup.recover"] (a [die] there fails that attempt; a [crash] kills
    the process mid-recovery).  [tel] receives the counters
    ["sup_failures_reported"], ["sup_restarts"],
    ["sup_recovery_failures"], ["sup_breaker_trips"] and the gauge
    ["sup_last_recovery_ms"]. *)

val shards : t -> int
val retry_after_ms : t -> int
val telemetry : t -> Tdmd_obs.Telemetry.t

val state : t -> int -> state
val healthy : t -> int -> bool
val all_serving : t -> bool

val guard : t -> int -> (unit, string) result
(** Consult shard [i]'s health before dispatching to it: [Ok ()] when
    [Serving], otherwise [Error msg] with a client-facing explanation
    (the caller answers code ["unavailable"] with
    {!retry_after_ms}). *)

type shard_health = {
  state : state;
  restarts : int;  (** successful supervised restarts *)
  failures : int;  (** failed recovery attempts, lifetime *)
  consecutive_failures : int;  (** resets to 0 on success *)
  breaker_trips : int;
  last_recovery_ms : float;  (** duration of the last successful recovery *)
  last_error : string option;
}

val health : t -> shard_health array
(** Consistent snapshot of every shard's health, for [stats] and the
    [health] RPC. *)

val report_failure : t -> int -> reason:string -> unit
(** Mark shard [i] failed and spawn its recovery thread.  No-op when the
    shard is already [Recovering] or [Poisoned] (one recovery thread per
    failure episode), or after {!shutdown}. *)

val protect : t -> int -> fallback:(string -> 'a) -> (unit -> 'a) -> 'a
(** Run a dispatch against shard [i] under the sanctioned catch-all:
    exceptions other than [Faults.Crash] (always re-raised) are absorbed
    as a shard failure — {!report_failure} fires and [fallback reason]
    supplies the caller's reply (typically an ["unavailable"] error).
    The op may or may not have been applied; exactly-once is the
    journaled dedup table's job, so the fallback reply must tell the
    client to retry {e with the same req}. *)

val await : ?timeout_s:float -> t -> int -> state -> bool
(** Test helper: poll until shard [i] reaches the given state or the
    timeout (default 10 s) expires. *)

val shutdown : t -> unit
(** Stop spawning recoveries and join every recovery thread ever
    spawned.  In-flight attempts finish their current try (bounded by
    the backoff cap) first.  Call before closing the engine's shards so
    a mid-restart swap cannot race the close. *)
