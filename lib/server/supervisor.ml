module Locked = Tdmd_prelude.Locked
module Backoff = Tdmd_prelude.Backoff
module Tel = Tdmd_obs.Telemetry

type state = Serving | Recovering | Poisoned

let state_to_string = function
  | Serving -> "serving"
  | Recovering -> "recovering"
  | Poisoned -> "poisoned"

type config = {
  max_failures : int;
  backoff : Backoff.policy;
  retry_after_ms : int;
}

let default_config =
  {
    max_failures = 5;
    (* Unlimited attempts/budget: the consecutive-failure breaker is the
       only thing that stops the loop, so K governs exactly. *)
    backoff = Backoff.policy ~base:0.01 ~cap:0.25 ~max_attempts:0 ~budget:0.0 ();
    retry_after_ms = 50;
  }

let config ?(max_failures = default_config.max_failures)
    ?(backoff = default_config.backoff)
    ?(retry_after_ms = default_config.retry_after_ms) () =
  if max_failures < 1 then
    invalid_arg "Supervisor.config: max_failures must be >= 1";
  if retry_after_ms < 0 then
    invalid_arg "Supervisor.config: retry_after_ms must be >= 0";
  { max_failures; backoff; retry_after_ms }

type shard_health = {
  state : state;
  restarts : int;
  failures : int;
  consecutive_failures : int;
  breaker_trips : int;
  last_recovery_ms : float;
  last_error : string option;
}

type cell = {
  mutable st : state;
  mutable restarts : int;
  mutable failures : int;
  mutable consecutive : int;
  mutable trips : int;
  mutable last_recovery_ms : float;
  mutable last_error : string option;
}

type t = {
  cfg : config;
  tel : Tel.t;
  faults : Faults.t;
  restart : (int -> (unit, string) result) option;
  cells : cell array;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable threads : Thread.t list;
}

let create ?(config = default_config) ?tel ?(faults = Faults.none) ~restart
    ~shards () =
  if shards < 1 then invalid_arg "Supervisor.create: shards must be >= 1";
  if config.max_failures < 1 then
    invalid_arg "Supervisor.create: max_failures must be >= 1";
  let tel = match tel with Some t -> t | None -> Tel.create () in
  {
    cfg = config;
    tel;
    faults;
    restart;
    cells =
      Array.init shards (fun _ ->
          {
            st = Serving;
            restarts = 0;
            failures = 0;
            consecutive = 0;
            trips = 0;
            last_recovery_ms = 0.0;
            last_error = None;
          });
    lock = Mutex.create ();
    stopping = false;
    threads = [];
  }

let shards t = Array.length t.cells
let retry_after_ms t = t.cfg.retry_after_ms
let telemetry t = t.tel

let state t i = Locked.with_lock t.lock (fun () -> t.cells.(i).st)
let healthy t i = state t i = Serving

let all_serving t =
  Locked.with_lock t.lock (fun () ->
      Array.for_all (fun c -> c.st = Serving) t.cells)

let guard t i =
  Locked.with_lock t.lock (fun () ->
      match t.cells.(i).st with
      | Serving -> Ok ()
      | Recovering -> Error (Printf.sprintf "shard %d is recovering; retry" i)
      | Poisoned ->
        Error
          (Printf.sprintf
             "shard %d is poisoned (circuit breaker open after %d consecutive \
              failed recoveries)"
             i t.cfg.max_failures))

let health t =
  Locked.with_lock t.lock (fun () ->
      Array.map
        (fun c ->
          {
            state = c.st;
            restarts = c.restarts;
            failures = c.failures;
            consecutive_failures = c.consecutive;
            breaker_trips = c.trips;
            last_recovery_ms = c.last_recovery_ms;
            last_error = c.last_error;
          })
        t.cells)

(* The supervisor's single sanctioned catch-and-restart site.  Anything
   a shard raises mid-op or mid-recovery — Faults.Die, a poisoned
   journal's Sys_error, EIO from a dying disk, an invalid snapshot —
   must count as a shard failure and feed the restart machinery, never
   kill the serving process.  Faults.Crash stays fatal by design: it is
   the stand-in for kill -9 and the crash-recovery tests depend on the
   process actually dying. *)
let absorb f =
  try Ok (f ()) with
  | Faults.Crash _ as e -> raise e
  (* tdmd-lint: allow catch-all — the single sanctioned catch-and-restart site: any shard failure must become a supervised restart, not a process death; Crash is re-raised above *)
  | _ as e -> Error (Printexc.to_string e)

let run_restart t i =
  match
    absorb (fun () ->
        Faults.hit t.faults "sup.recover";
        match t.restart with
        | None -> Error "shard has no restart procedure (not durable)"
        | Some f -> f i)
  with
  | Ok (Ok ()) -> Ok ()
  | Ok (Error msg) | Error msg -> Error msg

let recover_loop t i =
  let cell = t.cells.(i) in
  let b = Backoff.start ~seed:(0x5eed + i) t.cfg.backoff in
  let trip () =
    Locked.with_lock t.lock (fun () ->
        cell.st <- Poisoned;
        cell.trips <- cell.trips + 1;
        Tel.count t.tel "sup_breaker_trips" 1)
  in
  let rec attempt () =
    (* Backoff before each try: the dying leader gets time to unwind and
       a flapping disk is not hammered. *)
    if not (Backoff.sleep b) then trip ()
    else if Locked.with_lock t.lock (fun () -> t.stopping) then ()
    else begin
      let t0 = Unix.gettimeofday () in
      match run_restart t i with
      | Ok () ->
        Locked.with_lock t.lock (fun () ->
            cell.st <- Serving;
            cell.restarts <- cell.restarts + 1;
            cell.consecutive <- 0;
            cell.last_recovery_ms <- (Unix.gettimeofday () -. t0) *. 1000.0;
            cell.last_error <- None;
            Tel.count t.tel "sup_restarts" 1;
            Tel.gauge t.tel "sup_last_recovery_ms" cell.last_recovery_ms)
      | Error msg ->
        let tripped =
          Locked.with_lock t.lock (fun () ->
              cell.failures <- cell.failures + 1;
              cell.consecutive <- cell.consecutive + 1;
              cell.last_error <- Some msg;
              Tel.count t.tel "sup_recovery_failures" 1;
              cell.consecutive >= t.cfg.max_failures)
        in
        if tripped then trip () else attempt ()
    end
  in
  attempt ()

let report_failure t i ~reason =
  let spawn =
    Locked.with_lock t.lock (fun () ->
        match t.cells.(i).st with
        | Recovering | Poisoned -> false
        | Serving ->
          t.cells.(i).st <- Recovering;
          t.cells.(i).last_error <- Some reason;
          Tel.count t.tel "sup_failures_reported" 1;
          not t.stopping)
  in
  if spawn then begin
    let th = Thread.create (fun () -> recover_loop t i) () in
    Locked.with_lock t.lock (fun () -> t.threads <- th :: t.threads)
  end

let protect t i ~fallback f =
  match absorb f with
  | Ok r -> r
  | Error reason ->
    report_failure t i ~reason;
    fallback reason

let await ?(timeout_s = 10.0) t i want =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if state t i = want then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let shutdown t =
  let threads =
    Locked.with_lock t.lock (fun () ->
        t.stopping <- true;
        let ths = t.threads in
        t.threads <- [];
        ths)
  in
  List.iter Thread.join threads
