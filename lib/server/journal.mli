(** Append-only write-ahead log of churn operations.

    One record per accepted mutating request, framed on disk as

    {v 4-byte BE payload length | 4-byte BE CRC-32 of payload | payload v}

    where the payload is one compact {!Tdmd_obs.Json} object (the same
    encoder every other machine-readable output of the project uses).
    The CRC makes torn and corrupted tails detectable: {!replay} stops
    at the first record whose header is incomplete, whose length is
    implausible, whose checksum mismatches or whose JSON does not parse
    — everything before it is a valid prefix of the logged history.

    Opening for append ({!open_append}) takes an exclusive [lockf] lock
    (two servers must never interleave records), replays the file, and
    {e truncates} the torn tail in place so the next append starts at a
    clean boundary.

    Durability is governed by {!fsync_policy}; every [fsync] and every
    replayed/truncated record is counted in the telemetry passed at
    open ({!counters}). *)

(** {1 Operations} *)

type op =
  | Arrive of { id : int; rate : int; path : int list; req : string option }
  | Depart of { flow_id : int; req : string option }
      (** [req] is the client-supplied idempotency id, journaled so the
          dedup table survives a crash. *)
  | Rebalance of { budget : int; req : string option }
      (** A bounded local-search rebalance pass.  [budget] is the
          {e resolved} move budget the live pass ran with (never the
          engine default by reference), so replay spends exactly the
          same moves regardless of how the engine is later configured.
          Never nests inside {!Cross_prepare}: rebalancing is per-shard
          local. *)
  | Cross_prepare of { xid : string; home : int; op : op }
      (** Coordinator journal only: a cross-shard op bound for shard
          [home], recorded durably before the shard applies it.  [xid]
          doubles as the op's idempotency id on the shard, so a replayed
          prepare cannot double-apply.  Never nests. *)
  | Cross_done of { xid : string }
      (** Coordinator journal only: the prepare with this [xid] was
          acked by its home shard; recovery skips it. *)

val op_to_json : op -> Tdmd_obs.Json.t
val op_of_json : Tdmd_obs.Json.t -> (op, string) result

val max_record : int
(** Upper bound (1 MiB) on a record's encoded payload, enforced
    identically on both sides: {!encode} refuses to produce a larger
    record, and replay treats a larger decoded length as corruption. *)

val encode : op -> string
(** The full framed record (header + payload) as written to disk.
    @raise Invalid_argument when the payload exceeds {!max_record} — an
    op that encode accepts is always readable on replay. *)

(** {1 Fsync policy} *)

type fsync_policy =
  | Always       (** fsync after every record: no acked op is ever lost *)
  | Every_n of int
      (** fsync every n-th record: at most n-1 acked ops lost per crash *)
  | Never        (** leave it to the OS: crash loses the page-cache tail *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** ["always"], ["none"], or ["every-N"] (e.g. ["every-16"]). *)

val fsync_policy_to_string : fsync_policy -> string

(** {1 Writer} *)

type t

val open_append :
  ?faults:Faults.t ->
  ?tel:Tdmd_obs.Telemetry.t ->
  fsync:fsync_policy ->
  string ->
  t * op list
(** [open_append ~fsync path] opens (creating if absent) and returns the
    replayed prefix; the torn tail, if any, has been truncated away.
    Named crash-points consulted on every append:
    ["wal.append.pre_write"], ["wal.append.post_write"] (data written,
    not yet fsynced) and ["wal.append.post_fsync"].
    @raise Sys_error when the file cannot be opened or is locked by
    another process. *)

val append : ?flush:bool -> t -> op -> unit
(** Write one record and apply the fsync policy.  [flush] defaults to
    [true]; group commit passes [~flush:false] for all but a batch's
    last record, so one fsync (which flushes the whole file) covers the
    batch and the ["wal.append.post_fsync"] crash-point fires once per
    batch rather than once per record.  Failure-atomic: when
    append raises (other than [Faults.Crash], which stands in for the
    process dying), the file is truncated back to its pre-call length
    and the offset restored, so a half-written record can never sit in
    front of later successful appends and silently eat them on replay.
    If that restoration itself fails — or an [fsync] fails, leaving the
    durability of acked records unknown — the journal is {e poisoned}
    and every further append raises [Sys_error] until a fresh
    open/recovery.
    @raise Invalid_argument when the op exceeds {!max_record} (nothing
    is written), [Unix.Unix_error] on I/O failure, [Sys_error] when
    poisoned, [Faults.Crash] at an armed crash-point. *)

val poisoned : t -> bool
(** [true] once a failed append/fsync has lost the append invariant;
    the journal then refuses all further appends. *)

val sync : t -> unit
(** Unconditional fsync (used before a snapshot truncates the log). *)

val flush : t -> unit
(** End a group-committed batch: apply the fsync policy to the records
    appended with [~flush:false] and fire ["wal.append.post_fsync"].
    Poisons the journal if the fsync fails, exactly as {!append} would. *)

val reset : t -> unit
(** Compaction: drop every record (the state they rebuilt now lives in
    a snapshot) and fsync the empty file. *)

val records_written : t -> int
(** Appends since open (not counting the replayed prefix). *)

val size_bytes : t -> int

val close : t -> unit
(** Final [sync] (under [Always]/[Every_n]) and release the lock. *)

val abandon : t -> unit
(** Release the descriptor (and lock) {e without} syncing and poison the
    handle against further appends: the supervised-restart path, where a
    fresh recovery is about to replace this journal and a failing final
    sync must not block it.  Never raises. *)

(** {1 Read-only replay} *)

val replay : string -> (op list * int, string) result
(** [replay path] without locking or truncating: the decoded prefix and
    the number of trailing bytes that were unreadable (0 for a clean
    log).  [Error _] only when the file cannot be read at all; a missing
    file is [Ok ([], 0)]. *)

(** {1 Telemetry keys}

    Counters accumulated into the [tel] passed to {!open_append}:
    ["wal_appends"], ["wal_bytes"], ["wal_fsyncs"], ["wal_replayed"]
    (records recovered at open), ["wal_torn_truncations"] (1 when a torn
    tail was cut), ["wal_torn_bytes"], ["wal_append_failures"] (appends
    that raised after reaching the disk path). *)
