(** Deterministic fault injection for the durability, socket and shard
    lifecycle paths.

    A fault plan arms {e directives} at {e named points} — places in the
    WAL, snapshot, frame-I/O, shard-apply and supervisor-recovery code
    that consult the plan on every pass.  A directive fires either at
    one specific hit count of its point ([:NTH]) or probabilistically on
    every pass ([:p=P], seeded draw), so a seeded plan plus a
    deterministic workload reproduces a failure bit-for-bit; everything
    is inert (a few branch tests) when the plan is {!none}.

    Directive kinds:
    - {b crash}: raise {!Crash} — an in-process stand-in for [kill -9]
      used by the crash-recovery property tests (the CI smoke kills the
      real process as well);
    - {b die}: raise {!Die} — a {e shard-scoped} failure: the supervisor
      catches it and restarts the one shard, the process survives;
    - {b delay}: sleep a seeded 1–10 ms — latency injection that widens
      race windows without changing any outcome;
    - {b eintr}: tell an I/O loop to behave as if the syscall returned
      [EINTR] once;
    - {b short}: clamp one read/write to a strict prefix, exercising
      short-I/O handling;
    - {b corrupt}: flip one pseudo-random byte of an in-flight buffer
      (CRC and framing must catch it downstream);
    - {b fail}: make one I/O pass raise [Unix_error (EIO, _, _)] — a
      deterministic stand-in for [ENOSPC]/media errors mid-record.
      [fail] directives listen at [POINT.fail] (e.g.
      [fail@wal.write.fail:2]) so they do not shift the hit counts of
      [short]/[eintr] directives armed at [POINT].

    Spec grammar (also accepted from the [TDMD_FAULTS] environment
    variable): semicolon-separated [KIND@POINT[:NTH|:p=P]] with an
    optional [seed=N]; [NTH] is the 1-based hit at which the directive
    fires (default 1), [p=P] with [0 < P <= 1] fires on an independent
    seeded draw every pass.  Examples:
    [crash@wal.append.post_write:3;seed=7],
    [die@shard.apply:p=0.02;delay@shard.apply:p=0.1;seed=11].

    Malformed triggers, duplicate directives, and plans where two
    exception-raising kinds ([crash]/[die]/[fail]) could fire on the
    same pass of the same point are rejected with a clear error — a
    typo'd or ambiguous plan must never silently run as something
    else. *)

exception Crash of string
(** Raised by a [crash] directive; carries the point name.  Callers
    must {e not} catch it on the durability path — the whole point is
    that the process dies with its buffers in whatever state they are
    in. *)

exception Die of string
(** Raised by a [die] directive; carries the point name.  Unlike
    {!Crash} this models a shard-scoped failure: the supervisor's single
    sanctioned catch site may absorb it and restart the shard in
    place. *)

type t

val none : t
(** The empty plan: every hook is a no-op. *)

val enabled : t -> bool
(** [false] exactly for {!none}-equivalent plans (lets hot paths skip
    hook bookkeeping). *)

val of_spec : string -> (t, string) result
(** Parse the grammar above.  [""] yields an inert plan.  Rejects bad
    triggers, duplicate directives and same-pass raising conflicts. *)

val to_spec : t -> string
(** Render a plan back to the spec grammar ([of_spec (to_spec t)]
    re-parses to an equivalent plan; pass-count state is not part of the
    rendering). *)

val from_env : unit -> t
(** Plan from [TDMD_FAULTS]; inert when unset.  Exits with a message on
    stderr when the spec is malformed (a silent typo must not disable a
    fault run). *)

(** {1 Hooks} *)

val hit : t -> string -> unit
(** Pass a named point.  Sleeps 1–10 ms (seeded) when a [delay]
    directive fires.
    @raise Crash when a [crash] directive fires.
    @raise Die when a [die] directive fires. *)

val eintr : t -> string -> bool
(** [true] when the caller should simulate one [EINTR] return at this
    point (the hit is consumed). *)

val fail : t -> string -> unit
(** Pass the [POINT.fail] companion point of [point].
    @raise Unix.Unix_error [(EIO, _, point)] when a [fail] directive
    fires — the caller's normal error path must handle it exactly as a
    real I/O failure. *)

val clamp : t -> string -> int -> int
(** [clamp t point len] is how many bytes the caller may actually
    read/write this pass: [len] normally, a strict prefix in [\[1,
    len)] when a [short] directive fires ([len] when [len <= 1]). *)

val mangle : t -> string -> bytes -> unit
(** Flip one byte in place when a [corrupt] directive fires at this
    point; no-op otherwise or on empty buffers. *)

val hits : t -> (string * int) list
(** Observed pass counts per point, sorted by name (test assertions and
    the [--trace] output of fault runs). *)
