module Locked = Tdmd_prelude.Locked
module Partition = Tdmd_topo.Partition

type decision = Local of int | Cross of { home : int; spans : int list }

type t = {
  partition : Partition.t;
  lock : Mutex.t;
  (* flow id -> home shard, so a depart (which carries no path) finds
     the shard its arrive landed on. *)
  flows : (int, int) Hashtbl.t;
}

let create partition =
  { partition; lock = Mutex.create (); flows = Hashtbl.create 64 }

let partition t = t.partition
let shards t = Partition.shards t.partition

let route_arrive t ~path =
  match Partition.ownership t.partition (Array.of_list path) with
  | Partition.Owned s -> Local s
  | Partition.Cross { home; spans } -> Cross { home; spans }

let assign t ~flow_id ~shard =
  Locked.with_lock t.lock (fun () -> Hashtbl.replace t.flows flow_id shard)

let release t ~flow_id =
  Locked.with_lock t.lock (fun () -> Hashtbl.remove t.flows flow_id)

let lookup t ~flow_id =
  Locked.with_lock t.lock (fun () -> Hashtbl.find_opt t.flows flow_id)

let route_depart t ?hint ~flow_id () =
  Locked.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.flows flow_id with
      | Some s -> s
      | None -> (
        (* Unknown flow: an out-of-range hint is ignored, and with no
           usable hint the depart lands on shard 0, which answers it as
           the same no-op the pre-shard engine did. *)
        match hint with
        | Some h when h >= 0 && h < shards t -> h
        | Some _ | None -> 0))

(* After a supervised shard restart the recovered session's flow set is
   the durable truth for that shard; the routing table may have drifted
   (ops acked by the WAL but whose router assignment died with the
   leader).  Re-add every recovered flow, but keep entries homed on the
   shard whose flows are absent from the recovered set: a mapping only
   exists for an applied arrive, so an absent flow means its depart was
   applied (journaled) and the ack lost with the leader — the client's
   retry must still route to this shard, whose recovered dedup table
   answers it ["dedup": true] instead of shard 0 refusing it as a
   conflict.  The retry's ack releases the entry; an abandoned retry
   leaks one entry, the same O(1) residue an unconsumed dedup record
   leaves. *)
let reconcile t ~shard ~flow_ids =
  Locked.with_lock t.lock (fun () ->
      List.iter (fun flow_id -> Hashtbl.replace t.flows flow_id shard) flow_ids)

let assignments t =
  Locked.with_lock t.lock (fun () ->
      Hashtbl.fold (fun flow_id shard acc -> (flow_id, shard) :: acc) t.flows [])
