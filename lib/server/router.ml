module Locked = Tdmd_prelude.Locked
module Partition = Tdmd_topo.Partition

type decision = Local of int | Cross of { home : int; spans : int list }

type t = {
  partition : Partition.t;
  lock : Mutex.t;
  (* flow id -> home shard, so a depart (which carries no path) finds
     the shard its arrive landed on. *)
  flows : (int, int) Hashtbl.t;
}

let create partition =
  { partition; lock = Mutex.create (); flows = Hashtbl.create 64 }

let partition t = t.partition
let shards t = Partition.shards t.partition

let route_arrive t ~path =
  match Partition.ownership t.partition (Array.of_list path) with
  | Partition.Owned s -> Local s
  | Partition.Cross { home; spans } -> Cross { home; spans }

let assign t ~flow_id ~shard =
  Locked.with_lock t.lock (fun () -> Hashtbl.replace t.flows flow_id shard)

let release t ~flow_id =
  Locked.with_lock t.lock (fun () -> Hashtbl.remove t.flows flow_id)

let lookup t ~flow_id =
  Locked.with_lock t.lock (fun () -> Hashtbl.find_opt t.flows flow_id)

let route_depart t ?hint ~flow_id () =
  Locked.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.flows flow_id with
      | Some s -> s
      | None -> (
        (* Unknown flow: an out-of-range hint is ignored, and with no
           usable hint the depart lands on shard 0, which answers it as
           the same no-op the pre-shard engine did. *)
        match hint with
        | Some h when h >= 0 && h < shards t -> h
        | Some _ | None -> 0))

let assignments t =
  Locked.with_lock t.lock (fun () ->
      Hashtbl.fold (fun flow_id shard acc -> (flow_id, shard) :: acc) t.flows [])
