module Locked = Tdmd_prelude.Locked

(* One churn item waiting for the current leader to commit it. *)
type item = { op : Session.batch_op; mutable reply : Session.reply option }

type t = {
  id : int;
  session : Session.t;
  faults : Faults.t;
  lock : Mutex.t;
  cond : Condition.t;
  pending : item Queue.t;
  mutable committing : bool;  (* a leader is draining the queue *)
  mutable batches : int;
  mutable batched_ops : int;
  mutable batch_max : int;
  mutable queue_peak : int;
}

let create ?(faults = Faults.none) ~id session =
  {
    id;
    session;
    faults;
    lock = Mutex.create ();
    cond = Condition.create ();
    pending = Queue.create ();
    committing = false;
    batches = 0;
    batched_ops = 0;
    batch_max = 0;
    queue_peak = 0;
  }

let id t = t.id
let session t = t.session

(* The leader drains the queue into {!Session.apply_batch} until it runs
   dry, applying each batch OUTSIDE the shard lock (the session has its
   own) so submitters keep enqueueing while the batch commits — that
   queue-while-committing window is where group commit finds its
   batches. *)
let run_leader t =
  let rec loop () =
    let batch =
      Locked.with_lock t.lock (fun () ->
          if Queue.is_empty t.pending then begin
            t.committing <- false;
            Condition.broadcast t.cond;
            None
          end
          else begin
            let items = List.of_seq (Queue.to_seq t.pending) in
            Queue.clear t.pending;
            Some items
          end)
    in
    match batch with
    | None -> ()
    | Some items ->
      let replies =
        try
          (* [shard.apply] fires before anything reaches the session: a
             [die] here kills the leader with the batch cleanly
             un-applied.  [shard.apply.post] fires after the batch is
             applied and durable but before any waiter is acked — the
             harshest exactly-once window, where only the journaled
             dedup ids stand between a client retry and a double
             apply. *)
          Faults.hit t.faults "shard.apply";
          let replies =
            Session.apply_batch t.session (List.map (fun i -> i.op) items)
          in
          Faults.hit t.faults "shard.apply.post";
          replies
        with e ->
          (* Faults.Crash (the process is "dying") or something
             apply_batch does not map to a reply: unblock every waiter
             before propagating, or they block forever on a leader that
             no longer exists. *)
          Locked.with_lock t.lock (fun () ->
              let fail item =
                if Option.is_none item.reply then
                  item.reply <-
                    Some
                      (Error
                         ( "unavailable",
                           "shard restarting; op may or may not be applied — \
                            retry with the same req" ))
              in
              List.iter fail items;
              Queue.iter fail t.pending;
              Queue.clear t.pending;
              t.committing <- false;
              Condition.broadcast t.cond);
          raise e
      in
      Locked.with_lock t.lock (fun () ->
          List.iter2 (fun item reply -> item.reply <- Some reply) items replies;
          t.batches <- t.batches + 1;
          let n = List.length items in
          t.batched_ops <- t.batched_ops + n;
          if n > t.batch_max then t.batch_max <- n;
          Condition.broadcast t.cond);
      loop ()
  in
  loop ()

let submit t op =
  let item = { op; reply = None } in
  let leader =
    Locked.with_lock t.lock (fun () ->
        Queue.push item t.pending;
        let depth = Queue.length t.pending in
        if depth > t.queue_peak then t.queue_peak <- depth;
        if t.committing then false
        else begin
          t.committing <- true;
          true
        end)
  in
  if leader then run_leader t;
  Locked.with_lock t.lock (fun () ->
      while Option.is_none item.reply do
        Condition.wait t.cond t.lock
      done;
      Option.get item.reply)

type stats = {
  queue_depth : int;
  queue_peak : int;
  batches : int;
  batched_ops : int;
  batch_max : int;
}

let stats t =
  Locked.with_lock t.lock (fun () ->
      {
        queue_depth = Queue.length t.pending;
        queue_peak = t.queue_peak;
        batches = t.batches;
        batched_ops = t.batched_ops;
        batch_max = t.batch_max;
      })

let close t = Session.close t.session
