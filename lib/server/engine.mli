(** The sharded placement engine behind [tdmd serve].

    An engine owns [N] {!Shard}s — each a full {!Session} (churn engine,
    WAL segment stream, dedup table) over its own slice of the flow
    population — plus a {!Router} assigning flows to shards by path
    ownership over a {!Tdmd_topo.Partition} of the topology, and a
    cross-shard coordinator used only for arrivals whose path spans
    shards.

    {2 Equivalence at one shard}

    With [shards = 1] every request takes the exact pre-shard code path:
    the single session lives directly in the durability root (the PR 4
    on-disk layout), replies carry no routing fields, and placements,
    stats and recovery are bit-identical to the monolithic [Session]
    engine.

    {2 Cross-shard commit (two-phase apply)}

    An arrival spanning shards is made durable as a [Cross_prepare]
    record in the coordinator journal {e before} its home shard (the
    one owning most of its path) applies it through the shard's own
    WAL; a [Cross_done] retires it once the shard has decided.  The op
    carries its [xid] as idempotency id, so {!recover} can blindly
    re-submit every prepare without a done — an op the shard already
    applied answers ["dedup": true] instead of applying twice.

    {2 Recovery}

    Each shard recovers independently (its own snapshot ⊕ journal, via
    {!Session.recover}); the flow→shard routing table is rebuilt from
    the recovered sessions' live flows, the partition is recomputed
    (it is a deterministic function of the recovered graph), and the
    coordinator finally replays in-flight cross-shard ops.  A flat
    (pre-shard) directory recovers as a 1-shard engine.

    {2 Supervision}

    Every durable engine carries a {!Supervisor}: a shard whose leader
    dies mid-batch ([Faults.Die], a poisoned WAL, a failing disk) is
    marked [Recovering] and restarted in place — abandon the dead
    session, {!Session.recover} a replacement from the shard directory,
    swap it into the shard array and reconcile the router — on a
    background thread under {!Tdmd_prelude.Backoff}, while every other
    shard keeps serving.  Ops aimed at a [Recovering] or [Poisoned]
    shard answer code ["unavailable"] (the server attaches
    ["retry_after_ms"]); cross-shard arrivals health-gate {e every}
    participant before the coordinator writes a prepare, so an aborted
    2PC leaves no orphan prepare behind.  Live reads ({!solve} on
    [Live], the server's [stats]) are refused while any shard is down
    unless the engine was built with [~degraded_reads:true], in which
    case they answer from the last applied state flagged
    ["degraded": true]. *)

type source =
  | General of Tdmd.Instance.t
  | Tree of Tdmd.Instance.Tree.t

type t

val create :
  ?supervisor:Supervisor.config ->
  ?degraded_reads:bool ->
  ?config:Session.Config.t ->
  ?shards:int ->
  ?partition:Tdmd_topo.Partition.t ->
  source ->
  t
(** [create ~config ~shards source] builds [shards] sessions from
    [config] ([Session.Config.default], 1 shard, and a degree-seeded
    {!Tdmd_topo.Partition.make} of the instance graph by default).
    When durable, [config]'s directory is the root: shard [i] lives in
    [root/shard-<i>/] (or directly in [root] at 1 shard) and the
    coordinator journal at [root/coord.wal].  [config.churn_k] is each
    shard's budget — the sharded live deployment may place up to
    [shards * churn_k] middleboxes in total.  [supervisor] tunes the
    health state machine ({!Supervisor.default_config} otherwise);
    [degraded_reads] (default [false]) lets live reads answer flagged
    ["degraded": true] while a shard is down.
    @raise Invalid_argument on [shards < 1] or a partition that does
    not match [shards]/the instance graph. *)

val of_session : Session.t -> t
(** Wrap an already-built session as a 1-shard engine (the pre-shard
    entry point; every call takes the session's own code path). *)

val recover :
  ?supervisor:Supervisor.config ->
  ?degraded_reads:bool ->
  ?dedup_cap:int ->
  Session.durability ->
  (t, string) result
(** Rebuild an engine from a durability root: per-shard recovery, router
    rebuild, coordinator replay (see above).  The shard count is
    detected from the [shard-<i>] directories; a root with none is
    recovered as a flat 1-shard engine. *)

val shard_count : t -> int
val shard : t -> int -> Shard.t
val router : t -> Router.t
val general : t -> Tdmd.Instance.t
val supervisor : t -> Supervisor.t

val retry_after_ms : t -> int
(** The supervisor's hint, for the server to attach to ["unavailable"]
    replies. *)

val degraded_reads : t -> bool

(** {1 Requests} *)

val arrive :
  t -> ?req:string -> id:int -> rate:int -> path:int list -> unit ->
  Session.reply
(** Route by path ownership and submit to the home shard's group-commit
    queue (via the coordinator when the path spans shards).  Sharded
    replies additionally carry ["shard"] and — for spanning paths —
    ["cross": true]; 1-shard replies are unchanged.  Every participant
    shard is health-gated first: any of them down answers
    ["unavailable"] before a cross-shard prepare is written. *)

val depart : t -> ?req:string -> ?shard_hint:int -> int -> Session.reply
(** Route to the flow's remembered home shard ([shard_hint], then shard
    0, for unknown flows — whose reply is a ["conflict"] refusal).
    Health-gated like {!arrive}. *)

val rebalance : t -> ?req:string -> ?budget:int -> unit -> Session.reply
(** Run one migration-budgeted rebalance pass ({!Session.rebalance}) on
    {e every} shard — placements are per-shard, so each spends its own
    budget locally and no cross-shard commit is needed.  The same [req]
    reaches every shard (dedup tables are per-shard, making a retry
    idempotent shard by shard).  1 shard: the session's reply verbatim.
    Sharded: aggregated churn stats plus the resolved ["budget"] and the
    summed ["moves_used"]; ["dedup": true] only when every shard
    suppressed the retry.  Requires {e every} shard [Serving] (a partial
    rebalance would leave shards optimizing against different
    placements); otherwise ["unavailable"]. *)

val solve :
  t -> algo:string -> k:int -> seed:int -> target:Protocol.solve_target ->
  Session.reply
(** [Static] targets dispatch through shard 0's session,
    bit-identically to the pre-shard engine, and are never health-gated
    (they are a pure function of the immutable static instance).  A
    [Live] solve (1 shard: the session's own churn state; sharded: the
    union of all shards' flows in shard-major order) is refused with
    ["unavailable"] while any shard is down, unless [degraded_reads] is
    set — then it answers from the last applied state flagged
    ["degraded": true]. *)

val solve_anytime :
  t ->
  algo:string ->
  k:int ->
  seed:int ->
  target:Protocol.solve_target ->
  budget_ms:int ->
  Session.reply
(** Deadline-bounded variant, routed exactly like {!solve} (shard 0 /
    live union) but through {!Session.solve_anytime}: a portfolio race
    answers with the best feasible placement found within [budget_ms]
    instead of a deadline error. *)

(** {1 Stats and shutdown} *)

val churn_stats : t -> (string * Protocol.Json.t) list
(** Same keys as {!Session.churn_stats}.  Sharded: flows, moves,
    arrivals, departures and bandwidth are summed; the placement is the
    union; ["feasible"] is the conjunction. *)

val stats_fields : t -> (string * Protocol.Json.t) list
(** 1 shard: {!Session.durability_stats}, plus the ["health"] object.
    Sharded: a ["shards"] list (per shard: flows, queue depth/peak,
    group-commit batch counters) plus a ["coord"] object when durable,
    plus ["health"]. *)

val health_fields : t -> (string * Protocol.Json.t) list
(** The [health] RPC / [stats.health] payload: ["healthy"] (every shard
    [Serving]), ["degraded_reads"], and per shard its state, restart and
    recovery-failure counters, breaker trips, last recovery duration and
    ["wal_poisoned"]. *)

type read_status = Read_ok | Read_degraded | Read_unavailable of string

val read_status : t -> read_status
(** How a live read-only op should answer right now: normally, flagged
    degraded, or refused (the server gates [stats] with this; {!solve}
    applies it internally). *)

val durability_telemetry : t -> Tdmd_obs.Telemetry.t
(** Shard 0's session telemetry (the only shard at [--shards 1]; tests
    read it while the engine is quiescent). *)

val close : t -> unit
(** Join the supervisor's recovery threads, close every shard (final
    snapshots; a shard whose journal is poisoned or whose disk fails is
    abandoned without one — its WAL already holds everything acked) and
    the coordinator journal. *)
