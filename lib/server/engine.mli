(** The sharded placement engine behind [tdmd serve].

    An engine owns [N] {!Shard}s — each a full {!Session} (churn engine,
    WAL segment stream, dedup table) over its own slice of the flow
    population — plus a {!Router} assigning flows to shards by path
    ownership over a {!Tdmd_topo.Partition} of the topology, and a
    cross-shard coordinator used only for arrivals whose path spans
    shards.

    {2 Equivalence at one shard}

    With [shards = 1] every request takes the exact pre-shard code path:
    the single session lives directly in the durability root (the PR 4
    on-disk layout), replies carry no routing fields, and placements,
    stats and recovery are bit-identical to the monolithic [Session]
    engine.

    {2 Cross-shard commit (two-phase apply)}

    An arrival spanning shards is made durable as a [Cross_prepare]
    record in the coordinator journal {e before} its home shard (the
    one owning most of its path) applies it through the shard's own
    WAL; a [Cross_done] retires it once the shard has decided.  The op
    carries its [xid] as idempotency id, so {!recover} can blindly
    re-submit every prepare without a done — an op the shard already
    applied answers ["dedup": true] instead of applying twice.

    {2 Recovery}

    Each shard recovers independently (its own snapshot ⊕ journal, via
    {!Session.recover}); the flow→shard routing table is rebuilt from
    the recovered sessions' live flows, the partition is recomputed
    (it is a deterministic function of the recovered graph), and the
    coordinator finally replays in-flight cross-shard ops.  A flat
    (pre-shard) directory recovers as a 1-shard engine. *)

type source =
  | General of Tdmd.Instance.t
  | Tree of Tdmd.Instance.Tree.t

type t

val create :
  ?config:Session.Config.t ->
  ?shards:int ->
  ?partition:Tdmd_topo.Partition.t ->
  source ->
  t
(** [create ~config ~shards source] builds [shards] sessions from
    [config] ([Session.Config.default], 1 shard, and a degree-seeded
    {!Tdmd_topo.Partition.make} of the instance graph by default).
    When durable, [config]'s directory is the root: shard [i] lives in
    [root/shard-<i>/] (or directly in [root] at 1 shard) and the
    coordinator journal at [root/coord.wal].  [config.churn_k] is each
    shard's budget — the sharded live deployment may place up to
    [shards * churn_k] middleboxes in total.
    @raise Invalid_argument on [shards < 1] or a partition that does
    not match [shards]/the instance graph. *)

val of_session : Session.t -> t
(** Wrap an already-built session as a 1-shard engine (the pre-shard
    entry point; every call takes the session's own code path). *)

val recover :
  ?dedup_cap:int -> Session.durability -> (t, string) result
(** Rebuild an engine from a durability root: per-shard recovery, router
    rebuild, coordinator replay (see above).  The shard count is
    detected from the [shard-<i>] directories; a root with none is
    recovered as a flat 1-shard engine. *)

val shard_count : t -> int
val shard : t -> int -> Shard.t
val router : t -> Router.t
val general : t -> Tdmd.Instance.t

(** {1 Requests} *)

val arrive :
  t -> ?req:string -> id:int -> rate:int -> path:int list -> unit ->
  Session.reply
(** Route by path ownership and submit to the home shard's group-commit
    queue (via the coordinator when the path spans shards).  Sharded
    replies additionally carry ["shard"] and — for spanning paths —
    ["cross": true]; 1-shard replies are unchanged. *)

val depart : t -> ?req:string -> ?shard_hint:int -> int -> Session.reply
(** Route to the flow's remembered home shard ([shard_hint], then shard
    0, for unknown flows — whose reply is a ["conflict"] refusal). *)

val rebalance : t -> ?req:string -> ?budget:int -> unit -> Session.reply
(** Run one migration-budgeted rebalance pass ({!Session.rebalance}) on
    {e every} shard — placements are per-shard, so each spends its own
    budget locally and no cross-shard commit is needed.  The same [req]
    reaches every shard (dedup tables are per-shard, making a retry
    idempotent shard by shard).  1 shard: the session's reply verbatim.
    Sharded: aggregated churn stats plus the resolved ["budget"] and the
    summed ["moves_used"]; ["dedup": true] only when every shard
    suppressed the retry. *)

val solve :
  t -> algo:string -> k:int -> seed:int -> target:Protocol.solve_target ->
  Session.reply
(** [Static] targets (and everything at 1 shard) dispatch through shard
    0's session, bit-identically to the pre-shard engine.  A sharded
    [Live] solve runs the general-registry solver over the union of all
    shards' flows in shard-major order. *)

val solve_anytime :
  t ->
  algo:string ->
  k:int ->
  seed:int ->
  target:Protocol.solve_target ->
  budget_ms:int ->
  Session.reply
(** Deadline-bounded variant, routed exactly like {!solve} (shard 0 /
    live union) but through {!Session.solve_anytime}: a portfolio race
    answers with the best feasible placement found within [budget_ms]
    instead of a deadline error. *)

(** {1 Stats and shutdown} *)

val churn_stats : t -> (string * Protocol.Json.t) list
(** Same keys as {!Session.churn_stats}.  Sharded: flows, moves,
    arrivals, departures and bandwidth are summed; the placement is the
    union; ["feasible"] is the conjunction. *)

val stats_fields : t -> (string * Protocol.Json.t) list
(** 1 shard: {!Session.durability_stats} verbatim.  Sharded: a
    ["shards"] list (per shard: flows, queue depth/peak, group-commit
    batch counters) plus a ["coord"] object when durable. *)

val durability_telemetry : t -> Tdmd_obs.Telemetry.t
(** Shard 0's session telemetry (the only shard at [--shards 1]; tests
    read it while the engine is quiescent). *)

val close : t -> unit
(** Close every shard (final snapshots) and the coordinator journal. *)
