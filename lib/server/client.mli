(** Blocking client for the placement service.

    One connection, closed-loop: {!rpc} writes a frame and blocks until
    the matching response frame arrives.  For concurrent load, open one
    client per thread (the bench and the integration tests do exactly
    that). *)

type t

val connect : Protocol.addr -> t
(** @raise Unix.Unix_error when nothing listens at the address. *)

val connect_retry : ?attempts:int -> ?delay:float -> Protocol.addr -> (t, string) result
(** Retry [connect] (default 50 × 0.1 s) — for scripts racing a server
    that is still binding its socket. *)

val rpc :
  t ->
  ?id:Protocol.Json.t ->
  ?deadline_ms:int ->
  Protocol.request ->
  (Protocol.Json.t, string) result
(** Send one request and read one response (any well-formed response
    object is [Ok], including ["ok": false] errors — transport-level
    failures are [Error]). *)

val rpc_json : t -> Protocol.Json.t -> (Protocol.Json.t, string) result
(** Raw variant: send an arbitrary JSON value as the request frame. *)

val close : t -> unit
