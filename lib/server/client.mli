(** Blocking client for the placement service.

    One connection, closed-loop: {!rpc} writes a frame and blocks until
    the matching response frame arrives.  For concurrent load, open one
    client per thread (the bench and the integration tests do exactly
    that).

    {!rpc_retry} adds the failure handling a long-lived caller wants:
    exponential backoff with decorrelated jitter
    ({!Tdmd_prelude.Backoff}), transparent reconnect when the server
    drops the connection, and automatic idempotency ids on mutating
    requests so a retry of an op the server already applied is
    deduplicated instead of applied twice.

    {2 Redirects}

    Both {!rpc} and {!rpc_retry} transparently follow {e one}
    ["redirect"] response per call (a sharded deployment answering
    "that flow is owned by the replica at ADDR", see
    {!Protocol.redirect}): the client reconnects to the named address —
    which sticks for subsequent calls — and resends the frame once.  A
    second consecutive redirect is returned verbatim rather than
    chased, so a routing loop surfaces instead of hanging the caller. *)

type t

val connect :
  ?retry:Tdmd_prelude.Backoff.policy -> ?seed:int -> Protocol.addr -> t
(** [retry] (default {!Tdmd_prelude.Backoff.default}) and [seed]
    (default: nondeterministic) govern later {!rpc_retry} calls on this
    client; the initial connect itself is one attempt.
    @raise Unix.Unix_error when nothing listens at the address. *)

val connect_retry :
  ?policy:Tdmd_prelude.Backoff.policy ->
  ?seed:int ->
  Protocol.addr ->
  (t, string) result
(** Retry [connect] under [policy] — exponential backoff with
    decorrelated jitter, capped by the policy's attempt and time
    budgets — for scripts racing a server that is still binding its
    socket. *)

val rpc :
  t ->
  ?id:Protocol.Json.t ->
  ?deadline_ms:int ->
  ?req:string ->
  Protocol.request ->
  (Protocol.Json.t, string) result
(** Send one request and read one response (any well-formed response
    object is [Ok], including ["ok": false] errors — transport-level
    failures are [Error]).  No retries; a transport failure leaves the
    client disconnected and every later call fails until a reconnecting
    call ({!rpc_retry}) or a fresh client.  [req] is the idempotency id
    passed through to the server. *)

val rpc_retry :
  t ->
  ?id:Protocol.Json.t ->
  ?deadline_ms:int ->
  ?req:string ->
  ?policy:Tdmd_prelude.Backoff.policy ->
  Protocol.request ->
  (Protocol.Json.t, string) result
(** Like {!rpc}, but retries under [policy] (default: the client's
    connect-time policy) on the three failures where a retry can help:
    transport errors (connection reset / closed — reconnects first),
    ["overloaded"] responses (queue full — just waits) and
    ["unavailable"] responses (shard restarting — waits the server's
    ["retry_after_ms"] hint when pushed, a jittered backoff otherwise;
    either way the wait draws down the same attempt and wall-clock
    budget, so a stream of hints cannot stretch the give-up point).
    Definitive server answers, including errors like ["bad-request"],
    are returned as-is.  Mutating requests ([arrive]/[depart]) without
    an explicit [req] get a generated idempotency id, kept stable
    across the retries, so the server applies the op at most once even
    if the connection died after the op was executed but before the
    response arrived.

    When the policy's attempt or wall-clock budget runs out, the
    [Error] message starts with ["retry-budget-exhausted: "] — test
    with {!budget_exhausted}. *)

val budget_exhausted : string -> bool
(** [true] exactly when an [Error] from {!rpc_retry} (or
    {!connect_retry}) means the retry budget ran out, as opposed to a
    transport failure or a closed client. *)

val rpc_json : t -> Protocol.Json.t -> (Protocol.Json.t, string) result
(** Raw variant of {!rpc}: send an arbitrary JSON value as the request
    frame. *)

val close : t -> unit
