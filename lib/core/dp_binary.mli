(** The paper's binary-tree DP, transcribed directly from Eqs. 7–10.

    Sec. 5.1 presents the recurrences for binary trees ("for simplicity,
    we only discuss the solution for the binary tree"); {!Dp}
    generalises them by sequential child merging.  This module is an
    independent implementation of the two-subtree form —
    [F(v,k) = min { min_p F(v_l,p) + F(v_r,k-p) + λ·Σb(f) ,
                    min_q P(v_l,q,b_l) + P(v_r,k-1-q,b_r) + uplinks } ]
    — used to cross-check {!Dp} on random binary trees (they must agree
    exactly) and as the fidelity artifact for the paper's own
    presentation.

    Accepts trees whose internal vertices have one or two children
    (a missing subtree contributes the empty table). *)

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["states"], ["budget"], ["placement_size"]; span
          [dp-binary] *)
}

val solve : k:int -> Instance.Tree.t -> report
(** @raise Invalid_argument if some vertex has more than two
    children. *)
