(** Heuristic Algorithm for Trees (paper Alg. 2).

    Start with a middlebox on every leaf (the bandwidth-optimal but
    budget-oblivious deployment), then repeatedly *merge* the pair of
    deployed boxes whose replacement by one box at their LCA increases
    total bandwidth the least — Δb(i,j), tracked in a min-heap — until
    at most [k] boxes remain.

    Δb is evaluated *exactly* as b(P∖{v_i,v_j} ∪ {LCA}) − b(P), which
    coincides with the paper's closed form
    (1−λ)·[R_i·(depth i − depth a) + R_j·(depth j − depth a)] whenever
    no third deployed box sits between a merged box and the LCA (always
    true while P is an antichain, e.g. in all of the paper's worked
    steps — pinned in tests) and is safe when it is not.  Heap entries
    are invalidated lazily: stale entries are re-evaluated on pop and
    pushed back if their penalty changed. *)

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;   (** true whenever k ≥ 1 (root merge always exists) *)
  merges : int;
      (** number of merge rounds performed — deprecated alias of the
          ["merges"] telemetry counter *)
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["merges"], ["delta_evals"], ["oracle_ns"]
          (nanoseconds inside Δb evaluations), ["budget"],
          ["placement_size"]; span [hat] *)
}

val run : ?incremental:bool -> k:int -> Instance.Tree.t -> report
(** [incremental] (default [true]) answers each Δb through the
    {!Inc_oracle} mirror of the current deployment — O(flows through the
    merged pair and their LCA) per evaluation instead of a full-instance
    rescan.  Both paths compute Δb in integer diminished-volume units
    scaled by (1−λ), so their outputs are bit-for-bit identical
    (differential-tested). *)

val delta_b : Instance.Tree.t -> Placement.t -> int -> int -> float
(** Exact merge penalty Δb(i,j) of replacing the boxes on [i] and [j]
    by one on their LCA, relative to the given deployment (exposed for
    the Sec. 5.2 worked-example tests).  Partially applying to the
    instance builds the LCA table and flow index once — the shared
    tables [run] uses — so per-pair queries no longer pay the
    O(n log n) [Lca.build]. *)
