(** Heuristic Algorithm for Trees (paper Alg. 2).

    Start with a middlebox on every leaf (the bandwidth-optimal but
    budget-oblivious deployment), then repeatedly *merge* the pair of
    deployed boxes whose replacement by one box at their LCA increases
    total bandwidth the least — Δb(i,j), tracked in a min-heap — until
    at most [k] boxes remain.

    Δb is evaluated *exactly* as b(P∖{v_i,v_j} ∪ {LCA}) − b(P), which
    coincides with the paper's closed form
    (1−λ)·[R_i·(depth i − depth a) + R_j·(depth j − depth a)] whenever
    no third deployed box sits between a merged box and the LCA (always
    true while P is an antichain, e.g. in all of the paper's worked
    steps — pinned in tests) and is safe when it is not.  Heap entries
    are invalidated lazily: stale entries are re-evaluated on pop and
    pushed back if their penalty changed. *)

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;   (** true whenever k ≥ 1 (root merge always exists) *)
  merges : int;
      (** number of merge rounds performed — deprecated alias of the
          ["merges"] telemetry counter *)
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["merges"], ["delta_evals"], ["budget"],
          ["placement_size"]; span [hat] *)
}

val run : k:int -> Instance.Tree.t -> report

val delta_b : Instance.Tree.t -> Placement.t -> int -> int -> float
(** Exact merge penalty Δb(i,j) of replacing the boxes on [i] and [j]
    by one on their LCA, relative to the given deployment (exposed for
    the Sec. 5.2 worked-example tests). *)
