open Tdmd_prelude

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  retries : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

let report_of instance ~retries ~telemetry placement =
  Tdmd_obs.Telemetry.count telemetry "retries" retries;
  Tdmd_obs.Telemetry.count telemetry "placement_size" (Placement.size placement);
  {
    placement;
    bandwidth = Bandwidth.total instance placement;
    feasible = Allocation.is_feasible instance placement;
    retries;
    telemetry;
  }

let random rng ?(attempts = 200) ~k instance =
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  let n = Instance.vertex_count instance in
  let k = min k n in
  let draw () = Placement.of_list (Rng.sample_without_replacement rng n k) in
  let placement, retries =
    Tdmd_obs.Telemetry.with_span tel "random" (fun () ->
        let rec attempt i =
          let p = draw () in
          if Allocation.is_feasible instance p then (p, i)
          else if i >= attempts then
            (* Fall back: keep a random half-prefix, then covering picks. *)
            let seed =
              Rng.sample_without_replacement rng n (max 0 (k - (k / 2)))
            in
            ( Placement.of_list (Cover_fixup.within instance ~chosen:seed ~budget:k),
              i )
          else attempt (i + 1)
        in
        attempt 0)
  in
  report_of instance ~retries ~telemetry:tel placement

let best_effort ~k instance =
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  let n = Instance.vertex_count instance in
  let chosen =
    Tdmd_obs.Telemetry.with_span tel "best-effort" (fun () ->
        let scored =
          List.map
            (fun v -> (v, Bandwidth.marginal instance Placement.empty v))
            (Listx.range 0 (n - 1))
        in
        Tdmd_obs.Telemetry.count tel "singleton_evals" (List.length scored);
        let ranked =
          List.stable_sort (fun (_, a) (_, b) -> compare b a) scored
          |> List.map fst
        in
        Cover_fixup.within instance ~chosen:(Listx.take k ranked) ~budget:k)
  in
  report_of instance ~retries:0 ~telemetry:tel (Placement.of_list chosen)
