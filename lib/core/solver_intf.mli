(** The unified solver API.

    Every placement algorithm in this library — whatever its internal
    ablation counters — can be viewed as a function from an instance
    and a budget to one shared {!outcome}: the deployment, its price,
    whether every flow is served, and the run's {!Tdmd_obs.Telemetry.t}
    (where the per-solver counters now live; the per-solver [report]
    records keep their old fields as deprecated aliases).

    {!Solvers} holds the registry of named implementations; the CLI,
    the experiment harness and the bench all dispatch through it. *)

type outcome = {
  placement : Placement.t;
  bandwidth : float;  (** b(P, F) of the returned deployment *)
  feasible : bool;    (** all flows served? *)
  telemetry : Tdmd_obs.Telemetry.t;
}

val outcome :
  placement:Placement.t ->
  bandwidth:float ->
  feasible:bool ->
  telemetry:Tdmd_obs.Telemetry.t ->
  outcome

module type SOLVER = sig
  type input
  (** [Instance.t] for general-topology solvers, [Instance.Tree.t] for
      the Sec. 5 tree solvers. *)

  val name : string
  (** Registry / [--algo] name. *)

  val solve : rng:Tdmd_prelude.Rng.t -> k:int -> input -> outcome
  (** Deterministic solvers ignore [rng] (only [random] draws from
      it); [k] is the middlebox budget. *)
end

module type GENERAL = SOLVER with type input = Instance.t
module type TREE = SOLVER with type input = Instance.Tree.t
