module Rt = Tdmd_tree.Rooted_tree

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  telemetry : Tdmd_obs.Telemetry.t;
}

(* Per-vertex table with the same semantics as Dp: p.(kappa).(b) is the
   minimum consumption on edges strictly inside T_v with exactly kappa
   boxes and exactly b processed rate; choice.(kappa).(b) records the
   decision for traceback. *)
type cell_choice =
  | Leaf_box                      (* box on this leaf *)
  | Leaf_none
  | Split of { box : bool; kl : int; bl : int }
      (* left subtree gets (kl, bl); right gets the rest (after the
         box's budget unit when [box]) *)

type node_table = {
  p : float array array;
  choice : cell_choice option array array;
}

let solve ~k inst =
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.span_open tel "dp-binary";
  let finish r =
    Tdmd_obs.Telemetry.span_close tel;
    Tdmd_obs.Telemetry.count tel "placement_size" (Placement.size r.placement);
    r
  in
  let tree = inst.Instance.Tree.tree in
  let lambda = inst.Instance.Tree.lambda in
  let n = Rt.size tree in
  let b_sub = Instance.Tree.subtree_rate inst in
  let subtree_size = Array.make n 1 in
  List.iter
    (fun v ->
      let p = Rt.parent tree v in
      if p >= 0 then subtree_size.(p) <- subtree_size.(p) + subtree_size.(v))
    (Rt.postorder tree);
  let k_cap = Array.map (fun s -> min k s) subtree_size in
  let tables = Array.make n None in
  (* The empty subtree: only (0 boxes, 0 processed) at cost 0. *)
  let empty_table =
    { p = [| [| 0.0 |] |]; choice = [| [| Some Leaf_none |] |] }
  in
  let get_table v = Option.get tables.(v) in
  List.iter
    (fun v ->
      let kv = k_cap.(v) and bv = b_sub.(v) in
      let p = Array.make_matrix (kv + 1) (bv + 1) infinity in
      let choice = Array.make_matrix (kv + 1) (bv + 1) None in
      (match Rt.children tree v with
      | [] ->
        (* Eqs. 9-10: a leaf costs nothing inside; a box forces its
           flows processed, no box leaves them for an ancestor. *)
        p.(0).(0) <- 0.0;
        choice.(0).(0) <- Some Leaf_none;
        if kv >= 1 then begin
          p.(1).(bv) <- 0.0;
          choice.(1).(bv) <- Some Leaf_box
        end
      | children ->
        let left, right, bl_max, br_max, kl_max, kr_max =
          match children with
          | [ l ] -> (get_table l, empty_table, b_sub.(l), 0, k_cap.(l), 0)
          | [ l; r ] ->
            (get_table l, get_table r, b_sub.(l), b_sub.(r), k_cap.(l), k_cap.(r))
          | _ -> invalid_arg "Dp_binary.solve: vertex has more than two children"
        in
        (* Uplink of a subtree with total rate bc and processed rate b:
           lambda*b + (bc - b), the paper's per-subtree terms. *)
        let uplink bc b = float_of_int bc -. ((1.0 -. lambda) *. float_of_int b) in
        (* Eq. 8 (no box at v): P(v,k,b) = min_p P(l,p,bl) + P(r,k-p,br)
           + uplinks, with b = bl + br.  Eq. 7's box case places one on
           v, jumping b to R_v. *)
        for kl = 0 to kl_max do
          for bl = 0 to bl_max do
            let pl = left.p.(kl).(bl) in
            if pl < infinity then
              for kr = 0 to min kr_max (kv - kl) do
                for br = 0 to br_max do
                  let pr = right.p.(kr).(br) in
                  if pr < infinity then begin
                    let cost = pl +. pr +. uplink bl_max bl +. uplink br_max br in
                    let kappa = kl + kr and b = bl + br in
                    if cost < p.(kappa).(b) then begin
                      p.(kappa).(b) <- cost;
                      choice.(kappa).(b) <- Some (Split { box = false; kl; bl })
                    end;
                    (* Box at v: same inside cost, one more budget unit,
                       everything through v processed. *)
                    if kappa + 1 <= kv && cost < p.(kappa + 1).(bv) then begin
                      p.(kappa + 1).(bv) <- cost;
                      choice.(kappa + 1).(bv) <- Some (Split { box = true; kl; bl })
                    end
                  end
                done
              done
          done
        done);
      Tdmd_obs.Telemetry.count tel "states"
        (Array.length p * Array.length p.(0));
      tables.(v) <- Some { p; choice })
    (Rt.postorder tree);
  let root = Rt.root tree in
  if Array.length inst.Instance.Tree.flows = 0 then
    finish { placement = Placement.empty; bandwidth = 0.0; feasible = true;
             telemetry = tel }
  else begin
    let b_root = b_sub.(root) in
    let tbl = get_table root in
    let best = ref infinity and best_kappa = ref (-1) in
    for kappa = 0 to min k k_cap.(root) do
      if tbl.p.(kappa).(b_root) < !best then begin
        best := tbl.p.(kappa).(b_root);
        best_kappa := kappa
      end
    done;
    if !best_kappa < 0 then
      finish
        {
          placement = Placement.empty;
          bandwidth =
            float_of_int (Instance.total_path_volume (Instance.Tree.to_general inst));
          feasible = false;
          telemetry = tel;
        }
    else begin
      let acc = ref [] in
      let rec assign v kappa b =
        let tbl = get_table v in
        match Option.get tbl.choice.(kappa).(b) with
        | Leaf_none -> ()
        | Leaf_box -> acc := v :: !acc
        | Split { box; kl; bl } ->
          if box then acc := v :: !acc;
          let children = Rt.children tree v in
          let l = List.nth children 0 in
          assign l kl bl;
          (match children with
          | [ _; r ] ->
            let spent = kappa - kl - (if box then 1 else 0) in
            (* With a box at v, the recorded (kl, bl) describes the
               children state, whose combined processed rate we must
               recover: it is whatever the right table allowed. *)
            let br =
              if box then begin
                (* Find the br that witnesses the stored cost. *)
                let target = tbl.p.(kappa).(b) in
                let left_tbl = get_table l and right_tbl = get_table r in
                let uplink bc pb =
                  float_of_int bc -. ((1.0 -. lambda) *. float_of_int pb)
                in
                let found = ref (-1) in
                for cand = 0 to b_sub.(r) do
                  if !found < 0 && right_tbl.p.(spent).(cand) < infinity
                     && left_tbl.p.(kl).(bl) < infinity
                  then begin
                    let cost =
                      left_tbl.p.(kl).(bl) +. right_tbl.p.(spent).(cand)
                      +. uplink b_sub.(l) bl
                      +. uplink b_sub.(r) cand
                    in
                    if cost = target then found := cand
                  end
                done;
                assert (!found >= 0);
                !found
              end
              else b - bl
            in
            assign r spent br
          | _ -> assert (kappa - kl - (if box then 1 else 0) = 0))
      in
      assign root !best_kappa b_root;
      let placement = Placement.of_list !acc in
      finish { placement; bandwidth = !best; feasible = true; telemetry = tel }
    end
  end
