module Flow = Tdmd_flow.Flow

type assignment = {
  served : (int * int) list;
  unserved : int list;
  bandwidth : float;
}

let allocate instance ~capacity placement =
  let lambda = instance.Instance.lambda in
  let residual = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.replace residual v capacity)
    (Placement.to_list placement);
  let flows =
    Array.to_list instance.Instance.flows
    |> List.stable_sort (fun a b -> compare b.Flow.rate a.Flow.rate)
  in
  let served = ref [] and unserved = ref [] and bw = ref 0.0 in
  List.iter
    (fun f ->
      (* Earliest on-path box with spare capacity. *)
      let rec scan i =
        if i = Array.length f.Flow.path then None
        else begin
          let v = f.Flow.path.(i) in
          match Hashtbl.find_opt residual v with
          | Some r when r >= f.Flow.rate -> Some (v, i)
          | _ -> scan (i + 1)
        end
      in
      match scan 0 with
      | Some (v, l) ->
        Hashtbl.replace residual v (Hashtbl.find residual v - f.Flow.rate);
        served := (f.Flow.id, v) :: !served;
        bw :=
          !bw +. Bandwidth.flow_consumption ~lambda f (Allocation.Served_at { vertex = v; l })
      | None ->
        unserved := f.Flow.id :: !unserved;
        bw := !bw +. Bandwidth.flow_consumption ~lambda f Allocation.Unserved)
    flows;
  { served = List.rev !served; unserved = List.rev !unserved; bandwidth = !bw }

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  unserved_flows : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

let greedy ~k ~capacity instance =
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.count tel "capacity" capacity;
  Tdmd_obs.Telemetry.span_open tel "capacitated";
  let n = Instance.vertex_count instance in
  let eval p =
    Tdmd_obs.Telemetry.count tel "allocations" 1;
    (allocate instance ~capacity p).bandwidth
  in
  let rec round placement current =
    if Placement.size placement >= k then placement
    else begin
      let best = ref (-1) and best_bw = ref current in
      for v = 0 to n - 1 do
        if not (Placement.mem placement v) then begin
          let bw = eval (Placement.add placement v) in
          if bw < !best_bw -. 1e-9 then begin
            best := v;
            best_bw := bw
          end
        end
      done;
      if !best < 0 then placement
      else round (Placement.add placement !best) !best_bw
    end
  in
  let placement = round Placement.empty (eval Placement.empty) in
  let a = allocate instance ~capacity placement in
  Tdmd_obs.Telemetry.span_close tel;
  Tdmd_obs.Telemetry.count tel "unserved_flows" (List.length a.unserved);
  Tdmd_obs.Telemetry.count tel "placement_size" (Placement.size placement);
  {
    placement;
    bandwidth = a.bandwidth;
    feasible = a.unserved = [];
    unserved_flows = List.length a.unserved;
    telemetry = tel;
  }
