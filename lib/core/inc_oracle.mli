(** Incremental decrement/bandwidth oracle for the solver hot paths.

    Every greedy-style solver (GTP/CELF, HAT's merge loop, the local
    search, the feasibility fix-up) repeatedly asks "what does deploying
    or retiring one middlebox do to the objective?".  Answering by
    rescanning every flow costs O(|F| · avg-path-length) per query;
    GTP/CELF issue O(|V|²) such queries and HAT one per heap pair, so the
    oracle dominates end-to-end wall-clock (paper Theorem 3's
    O(|V|² log |V|) bound assumes a cheap marginal oracle).

    This structure precomputes a vertex → (flow, path-position) inverted
    index at construction and maintains, per flow, the earliest deployed
    position on its path.  Then:

    - {!marginal_volume} answers a marginal query in O(flows through v),
      without mutation;
    - {!add} / {!remove} commit a deployment change in O(flows through v)
      (plus, on removal, the rescan to each flow's next deployed vertex);
    - {!undo} reverts the most recent [add]/[remove], enabling cheap
      what-if probes (HAT's Δb, local-search swaps).

    All state is kept in {e integer} diminished-volume units (see
    {!Bandwidth.diminished_volume}); the (1−λ) scaling is applied only at
    the float boundary.  Every answer therefore agrees {e bit-for-bit}
    with a from-scratch naive scan — the invariant the CELF "cached gains
    are upper bounds" acceptance test depends on, and what the
    differential tests in [test/test_inc_oracle.ml] lock in. *)

type t

val create : Instance.t -> t
(** Empty deployment.  O(|V| + Σ_f |p_f|) construction. *)

val of_list : Instance.t -> int list -> t
(** [create] plus the given deployment, with an empty undo journal. *)

val reset : t -> unit
(** Return to the empty deployment and clear the undo journal. *)

(** {1 Deployment edits} *)

val add : t -> int -> unit
(** Deploy on a vertex (no-op if already deployed).  Journaled. *)

val remove : t -> int -> unit
(** Retire a vertex (no-op if not deployed).  Journaled. *)

val undo : t -> unit
(** Revert the most recent {!add}/{!remove} (no-ops revert to nothing).
    @raise Invalid_argument when the journal is empty. *)

(** {1 Queries} *)

val mem : t -> int -> bool
val size : t -> int
(** Number of deployed vertices. *)

val placement : t -> Placement.t

val diminished_volume : t -> int
(** Equals [Bandwidth.diminished_volume] of the current deployment. *)

val decrement : t -> float
(** (1−λ) · {!diminished_volume}: d(P) of the current deployment. *)

val bandwidth : t -> float
(** b(P, F) = Σ_f r_f·|p_f| − (1−λ)·{!diminished_volume}. *)

val marginal_volume : t -> int -> int
(** Increase of {!diminished_volume} if the vertex were deployed (0 when
    already deployed).  Pure: does not modify the oracle. *)

val marginal : t -> int -> float
(** (1−λ) · {!marginal_volume}: d_P({v}) (paper Def. 2). *)

val unserved_count : t -> int
val is_feasible : t -> bool
(** All flows pass a deployed vertex? *)

val iter_unserved : t -> (int -> unit) -> unit
(** Apply a function to the index (into the instance's flow array) of
    every currently-unserved flow — the fix-up's cover counting. *)
