(** The paper's two comparison schemes (Sec. 6.2).

    - Random: deploy on k uniformly random vertices.  The paper only
      scores feasible deployments and regenerates otherwise; [random]
      therefore retries with fresh draws, and after [attempts] failures
      falls back to greedy set-cover picks so the caller always gets a
      feasible plan when one exists at this budget (the report counts
      the retries, which the harness logs).

    - Best-effort: "deploys one middlebox on the vertex which can reduce
      the bandwidth of flows mostly, until it deploys k middleboxes".
      Implemented as the *non-adaptive* ranking by singleton decrement
      d_∅(v) — the natural reading that distinguishes it from GTP's
      adaptive greedy (see DESIGN.md §5.1); like GTP it finishes with
      covering picks when unserved flows remain within the budget. *)

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  retries : int;
      (** Random: infeasible draws discarded; 0 otherwise — deprecated
          alias of the ["retries"] telemetry counter *)
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["retries"], ["budget"], ["placement_size"] (and
          ["singleton_evals"] for best-effort); span [random] or
          [best-effort] *)
}

val random :
  Tdmd_prelude.Rng.t -> ?attempts:int -> k:int -> Instance.t -> report
(** Default [attempts] = 200. *)

val best_effort : k:int -> Instance.t -> report
