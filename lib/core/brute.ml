type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  subsets : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

let binomial n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let rec go acc i = if i > k then acc else go (acc * (n - i + 1) / i) (i + 1) in
    go 1 1
  end

let solve ~k instance =
  let n = Instance.vertex_count instance in
  let k = min k n in
  let total =
    let rec sum acc j = if j > k then acc else sum (acc + binomial n j) (j + 1) in
    sum 0 0
  in
  if total > 10_000_000 then invalid_arg "Brute.solve: instance too large";
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.span_open tel "brute";
  let best = ref None in
  let count = ref 0 in
  (* Enumerate subsets of size <= k as sorted int lists. *)
  let rec enum start chosen size =
    incr count;
    let placement = Placement.of_list chosen in
    if Allocation.is_feasible instance placement then begin
      let bw = Bandwidth.total instance placement in
      match !best with
      | Some (_, best_bw) when best_bw <= bw -> ()
      | _ -> best := Some (placement, bw)
    end;
    if size < k then
      for v = start to n - 1 do
        enum (v + 1) (v :: chosen) (size + 1)
      done
  in
  enum 0 [] 0;
  Tdmd_obs.Telemetry.span_close tel;
  Tdmd_obs.Telemetry.count tel "subsets" !count;
  match !best with
  | Some (placement, bandwidth) ->
    Tdmd_obs.Telemetry.count tel "placement_size" (Placement.size placement);
    { placement; bandwidth; feasible = true; subsets = !count; telemetry = tel }
  | None ->
    Tdmd_obs.Telemetry.count tel "placement_size" 0;
    {
      placement = Placement.empty;
      bandwidth = float_of_int (Instance.total_path_volume instance);
      feasible = false;
      subsets = !count;
      telemetry = tel;
    }
