type report = {
  placement : Placement.t;
  bandwidth : float;
  decrement : float;
  feasible : bool;
  oracle_calls : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

let report_of instance ~oracle_calls ~telemetry chosen =
  let placement = Placement.of_list chosen in
  Tdmd_obs.Telemetry.count telemetry "oracle_calls" oracle_calls;
  Tdmd_obs.Telemetry.count telemetry "placement_size" (Placement.size placement);
  {
    placement;
    bandwidth = Bandwidth.total instance placement;
    decrement = Bandwidth.decrement instance placement;
    feasible = Allocation.is_feasible instance placement;
    oracle_calls;
    telemetry;
  }

(* Wrap every oracle evaluation (from-scratch values and incremental
   marginals alike) with a "delta_evals" counter and a nanosecond
   accumulator; [flush] publishes the total as "oracle_ns" once the run
   completes, so the bench can attribute wall-clock to the oracle. *)
let instrument tel oracle =
  let ns = ref 0L in
  let timed f x =
    Tdmd_obs.Telemetry.count tel "delta_evals" 1;
    let t0 = Tdmd_obs.Clock.now_ns () in
    let r = f x in
    ns := Int64.add !ns (Int64.sub (Tdmd_obs.Clock.now_ns ()) t0);
    r
  in
  let oracle =
    {
      oracle with
      Tdmd_submod.Submodular.value = timed oracle.Tdmd_submod.Submodular.value;
      incremental =
        Option.map
          (fun inc ->
            { inc with Tdmd_submod.Submodular.gain = timed inc.Tdmd_submod.Submodular.gain })
          oracle.Tdmd_submod.Submodular.incremental;
    }
  in
  (oracle, fun () -> Tdmd_obs.Telemetry.count tel "oracle_ns" (Int64.to_int !ns))

let run_with ~label selector ?budget ?(incremental = true) instance =
  let budget =
    match budget with Some k -> k | None -> Instance.vertex_count instance
  in
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" budget;
  let oracle =
    if incremental then Bandwidth.oracle instance
    else Bandwidth.oracle_naive instance
  in
  let oracle, flush_oracle_ns = instrument tel oracle in
  (* Spend the whole budget: the greedy keeps deploying while any vertex
     has positive marginal decrement (bandwidth only improves), and the
     fix-up then covers any still-unserved flows. *)
  let report =
    Tdmd_obs.Telemetry.with_span tel label (fun () ->
        let sel =
          Tdmd_obs.Telemetry.with_span tel "greedy" (fun () ->
              selector ~stop:(fun _ -> false) ~k:budget oracle)
        in
        let chosen =
          Tdmd_obs.Telemetry.with_span tel "cover-fixup" (fun () ->
              Cover_fixup.within instance ~chosen:sel.Tdmd_submod.Submodular.chosen
                ~budget)
        in
        report_of instance ~oracle_calls:sel.Tdmd_submod.Submodular.oracle_calls
          ~telemetry:tel chosen)
  in
  flush_oracle_ns ();
  report

let run ?budget ?incremental instance =
  run_with ~label:"gtp"
    (fun ~stop ~k o -> Tdmd_submod.Submodular.greedy ~stop ~k o)
    ?budget ?incremental instance

let run_celf ?budget ?incremental instance =
  run_with ~label:"gtp-celf"
    (fun ~stop ~k o -> Tdmd_submod.Submodular.lazy_greedy ~stop ~k o)
    ?budget ?incremental instance

let derived_k instance =
  (* Alg. 1 verbatim: deploy the max-marginal vertex until every flow is
     processed; the number of boxes it used is the derived k. *)
  let oracle = Bandwidth.oracle instance in
  let stop chosen = Allocation.is_feasible instance (Placement.of_list chosen) in
  let sel =
    Tdmd_submod.Submodular.greedy ~stop ~k:(Instance.vertex_count instance) oracle
  in
  let chosen =
    Cover_fixup.within instance ~chosen:sel.Tdmd_submod.Submodular.chosen
      ~budget:(Instance.vertex_count instance)
  in
  Placement.size (Placement.of_list chosen)
