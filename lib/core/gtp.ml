type report = {
  placement : Placement.t;
  bandwidth : float;
  decrement : float;
  feasible : bool;
  oracle_calls : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

let report_of instance ~oracle_calls ~telemetry chosen =
  let placement = Placement.of_list chosen in
  Tdmd_obs.Telemetry.count telemetry "oracle_calls" oracle_calls;
  Tdmd_obs.Telemetry.count telemetry "placement_size" (Placement.size placement);
  {
    placement;
    bandwidth = Bandwidth.total instance placement;
    decrement = Bandwidth.decrement instance placement;
    feasible = Allocation.is_feasible instance placement;
    oracle_calls;
    telemetry;
  }

let run_with ~label selector ?budget instance =
  let budget =
    match budget with Some k -> k | None -> Instance.vertex_count instance
  in
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" budget;
  let oracle = Bandwidth.oracle instance in
  (* Spend the whole budget: the greedy keeps deploying while any vertex
     has positive marginal decrement (bandwidth only improves), and the
     fix-up then covers any still-unserved flows. *)
  Tdmd_obs.Telemetry.with_span tel label (fun () ->
      let sel =
        Tdmd_obs.Telemetry.with_span tel "greedy" (fun () ->
            selector ~stop:(fun _ -> false) ~k:budget oracle)
      in
      let chosen =
        Tdmd_obs.Telemetry.with_span tel "cover-fixup" (fun () ->
            Cover_fixup.within instance ~chosen:sel.Tdmd_submod.Submodular.chosen
              ~budget)
      in
      report_of instance ~oracle_calls:sel.Tdmd_submod.Submodular.oracle_calls
        ~telemetry:tel chosen)

let run ?budget instance =
  run_with ~label:"gtp"
    (fun ~stop ~k o -> Tdmd_submod.Submodular.greedy ~stop ~k o)
    ?budget instance

let run_celf ?budget instance =
  run_with ~label:"gtp-celf"
    (fun ~stop ~k o -> Tdmd_submod.Submodular.lazy_greedy ~stop ~k o)
    ?budget instance

let derived_k instance =
  (* Alg. 1 verbatim: deploy the max-marginal vertex until every flow is
     processed; the number of boxes it used is the derived k. *)
  let oracle = Bandwidth.oracle instance in
  let stop chosen = Allocation.is_feasible instance (Placement.of_list chosen) in
  let sel =
    Tdmd_submod.Submodular.greedy ~stop ~k:(Instance.vertex_count instance) oracle
  in
  let chosen =
    Cover_fixup.within instance ~chosen:sel.Tdmd_submod.Submodular.chosen
      ~budget:(Instance.vertex_count instance)
  in
  Placement.size (Placement.of_list chosen)
