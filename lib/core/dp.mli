(** Optimal dynamic programming on trees (paper Sec. 5.1, Eqs. 7–10).

    States follow the paper with one uniform convention, validated
    against every worked number in Figs. 5–7 (see
    [test/test_paper_examples.ml]):

    - [P(v, κ, b)] = minimum bandwidth consumed on the edges *strictly
      inside* the subtree [T_v] (v's own uplink is charged by v's
      parent) using *exactly* [κ] middleboxes in [T_v], with flows of
      total initial rate *exactly* [b] processed somewhere in [T_v].
    - [F(v, k) = min_{κ ≤ k} P(v, κ, R_v)] where [R_v] is the total
      rate sourced in [T_v] — the fully-served value with budget [k].

    Children are merged sequentially (a knapsack over (κ, b) pairs),
    which generalises the binary-tree formulation of Eqs. 7–8 to
    arbitrary branching.  A box at [v] processes every flow not already
    served below, at uplink cost [λ·b + (R_c − b)] per child uplink —
    exactly the paper's terms.  The budget relaxation happens at query
    time, so a single table build answers all [k' ≤ k_max].

    Rates must be integral (the DP is pseudo-polynomial in
    [r_max = max_f r_f], Theorem 5); see {!Scaled_dp} for arbitrary
    rates.  Optimality is cross-checked against {!Brute} in the
    property tests. *)

type report = {
  placement : Placement.t;
  bandwidth : float;   (** b(P, F) = the DP optimum *)
  feasible : bool;     (** false only when [k = 0] and flows exist *)
  states : int;
      (** DP states materialised (ablation metric) — deprecated alias
          of the ["states"] telemetry counter *)
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["states"], ["budget"], ["placement_size"]; spans
          [dp > build, traceback] *)
}

val solve : k:int -> Instance.Tree.t -> report
(** Optimal deployment of at most [k] middleboxes.  Traceback
    reconstructs an optimal placement, whose evaluated bandwidth equals
    the DP value (asserted in tests). *)

type tables
(** Fully materialised DP tables, for table-level inspection. *)

val build : k_max:int -> Instance.Tree.t -> tables

val f_value : tables -> v:int -> k:int -> float
(** The paper's F(v, k) (Fig. 6); [infinity] when infeasible. *)

val p_value : tables -> v:int -> k:int -> b:int -> float
(** The paper's P(v, k, b) (Fig. 7) under the budget reading
    [min_{κ ≤ k}]; [infinity] for unachievable [b]. *)

val state_count : tables -> int
