module Rt = Tdmd_tree.Rooted_tree

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  states : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

type tables = {
  inst : Instance.Tree.t;
  b_sub : int array;               (* R_v: rate sourced in T_v *)
  k_cap : int array;               (* min (k_max, |T_v|) *)
  p : float array array array;     (* p.(v).(kappa).(b), exact kappa/b *)
  merge_choice : int array array array array;
      (* merge_choice.(v).(i).(kappa).(beta): packed (kappa_c, b_c) of
         the optimal split when merging the i-th child (1-based) *)
  box_beta : int array array;      (* argmin beta of m_final.(v).(kappa-1) *)
  box_val : float array array;     (* value of the box-at-v case *)
  children : int array array;
  states : int;
}

let pack stride kc bc = (kc * stride) + bc
let unpack stride packed = (packed / stride, packed mod stride)

let build ~k_max inst =
  if k_max < 0 then invalid_arg "Dp.build: negative k_max";
  let tree = inst.Instance.Tree.tree in
  let lambda = inst.Instance.Tree.lambda in
  let n = Rt.size tree in
  let b_sub = Instance.Tree.subtree_rate inst in
  let subtree_size = Array.make n 1 in
  List.iter
    (fun v ->
      let pnt = Rt.parent tree v in
      if pnt >= 0 then subtree_size.(pnt) <- subtree_size.(pnt) + subtree_size.(v))
    (Rt.postorder tree);
  let k_cap = Array.map (fun s -> min k_max s) subtree_size in
  let p = Array.make n [||] in
  let merge_choice = Array.make n [||] in
  let box_beta = Array.make n [||] in
  let box_val = Array.make n [||] in
  let children = Array.make n [||] in
  let states = ref 0 in
  let infty = infinity in
  List.iter
    (fun v ->
      let kv = k_cap.(v) and bv = b_sub.(v) in
      let cs = Array.of_list (Rt.children tree v) in
      children.(v) <- cs;
      let stride = bv + 1 in
      (* Sequential knapsack over children: m_prev.(kappa).(beta) is the
         best inside-cost of the first i child subtrees plus their
         uplinks, using exactly kappa boxes and processing exactly beta. *)
      let m_prev = ref (Array.make_matrix (kv + 1) (bv + 1) infty) in
      !m_prev.(0).(0) <- 0.0;
      let choices = Array.make (Array.length cs + 1) [||] in
      Array.iteri
        (fun idx c ->
          let i = idx + 1 in
          let m_next = Array.make_matrix (kv + 1) (bv + 1) infty in
          let choice = Array.make_matrix (kv + 1) (bv + 1) (-1) in
          let kc_max = k_cap.(c) and bc_max = b_sub.(c) in
          for kappa = 0 to kv do
            for beta = 0 to bv do
              let prev = !m_prev.(kappa).(beta) in
              if prev < infty then
                for kc = 0 to min (kv - kappa) kc_max do
                  let pc_row = p.(c).(kc) in
                  for bc = 0 to min (bv - beta) bc_max do
                    let pc = pc_row.(bc) in
                    if pc < infty then begin
                      (* Uplink c -> v: processed flows cross at lambda
                         times their rate, the rest at full rate. *)
                      let uplink =
                        float_of_int bc_max -. ((1.0 -. lambda) *. float_of_int bc)
                      in
                      let cand = prev +. pc +. uplink in
                      let k' = kappa + kc and b' = beta + bc in
                      if cand < m_next.(k').(b') then begin
                        m_next.(k').(b') <- cand;
                        choice.(k').(b') <- pack stride kc bc
                      end
                    end
                  done
                done
            done
          done;
          choices.(i) <- choice;
          m_prev := m_next)
        cs;
      merge_choice.(v) <- choices;
      (* Box-at-v case: one budget unit goes to v; every flow through v
         is then processed, so b jumps to R_v regardless of beta. *)
      let bb = Array.make (kv + 1) (-1) in
      let bvl = Array.make (kv + 1) infty in
      for kappa = 1 to kv do
        for beta = 0 to bv do
          let c = !m_prev.(kappa - 1).(beta) in
          if c < bvl.(kappa) then begin
            bvl.(kappa) <- c;
            bb.(kappa) <- beta
          end
        done
      done;
      box_beta.(v) <- bb;
      box_val.(v) <- bvl;
      let tbl = Array.make_matrix (kv + 1) (bv + 1) infty in
      for kappa = 0 to kv do
        for b = 0 to bv do
          tbl.(kappa).(b) <- !m_prev.(kappa).(b)
        done;
        if kappa >= 1 && bvl.(kappa) < tbl.(kappa).(bv) then
          tbl.(kappa).(bv) <- bvl.(kappa)
      done;
      p.(v) <- tbl;
      states := !states + ((kv + 1) * (bv + 1)))
    (Rt.postorder tree);
  {
    inst;
    b_sub;
    k_cap;
    p;
    merge_choice;
    box_beta;
    box_val;
    children;
    states = !states;
  }

let p_exact t ~v ~kappa ~b =
  if kappa < 0 || kappa > t.k_cap.(v) || b < 0 || b > t.b_sub.(v) then infinity
  else t.p.(v).(kappa).(b)

let p_value t ~v ~k ~b =
  let best = ref infinity in
  for kappa = 0 to min k t.k_cap.(v) do
    let x = p_exact t ~v ~kappa ~b in
    if x < !best then best := x
  done;
  !best

let f_value t ~v ~k = p_value t ~v ~k ~b:(t.b_sub.(v))

let state_count (t : tables) = t.states

(* Traceback: walk the stored choices from (root, kappa*, R_root) down,
   collecting box vertices. *)
let traceback t ~kappa_root =
  let tree = t.inst.Instance.Tree.tree in
  let root = Rt.root tree in
  let acc = ref [] in
  let rec assign v kappa b =
    let bv = t.b_sub.(v) in
    let value = t.p.(v).(kappa).(b) in
    assert (value < infinity);
    let use_box = kappa >= 1 && b = bv && t.box_val.(v).(kappa) = value in
    let kappa, b =
      if use_box then begin
        acc := v :: !acc;
        (kappa - 1, t.box_beta.(v).(kappa))
      end
      else (kappa, b)
    in
    (* Undo the child merges right-to-left. *)
    let stride = bv + 1 in
    let kappa = ref kappa and b = ref b in
    for i = Array.length t.children.(v) downto 1 do
      let packed = t.merge_choice.(v).(i).(!kappa).(!b) in
      assert (packed >= 0);
      let kc, bc = unpack stride packed in
      let c = t.children.(v).(i - 1) in
      assign c kc bc;
      kappa := !kappa - kc;
      b := !b - bc
    done;
    assert (!kappa = 0 && !b = 0)
  in
  assign root kappa_root t.b_sub.(root);
  Placement.of_list !acc

let solve ~k inst =
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  let finish (r : report) =
    Tdmd_obs.Telemetry.count tel "states" r.states;
    Tdmd_obs.Telemetry.count tel "placement_size" (Placement.size r.placement);
    r
  in
  finish
  @@ Tdmd_obs.Telemetry.with_span tel "dp" (fun () ->
  let t = Tdmd_obs.Telemetry.with_span tel "build" (fun () -> build ~k_max:k inst) in
  let tree = inst.Instance.Tree.tree in
  let root = Rt.root tree in
  let b_root = t.b_sub.(root) in
  if Array.length inst.Instance.Tree.flows = 0 then
    { placement = Placement.empty; bandwidth = 0.0; feasible = true;
      states = t.states; telemetry = tel }
  else begin
    let best = ref infinity and best_kappa = ref (-1) in
    for kappa = 0 to min k t.k_cap.(root) do
      let x = p_exact t ~v:root ~kappa ~b:b_root in
      if x < !best then begin
        best := x;
        best_kappa := kappa
      end
    done;
    if !best_kappa < 0 then
      {
        placement = Placement.empty;
        bandwidth = float_of_int (Instance.total_path_volume (Instance.Tree.to_general inst));
        feasible = false;
        states = t.states;
        telemetry = tel;
      }
    else begin
      let placement =
        Tdmd_obs.Telemetry.with_span tel "traceback" (fun () ->
            traceback t ~kappa_root:!best_kappa)
      in
      { placement; bandwidth = !best; feasible = true; states = t.states;
        telemetry = tel }
    end
  end)
