(** Swap-based local search refinement.

    A standard post-pass the paper leaves on the table: starting from
    any feasible deployment, repeatedly apply the best
    remove-one/add-one swap (or a pure addition while under budget)
    that strictly lowers the bandwidth while keeping every flow served.
    Terminates at a 1-swap local optimum; never returns a worse
    deployment than its input.  The ablation bench quantifies how much
    it closes the GTP/HAT-to-DP gap. *)

type report = {
  placement : Placement.t;
  bandwidth : float;
  swaps : int;        (** improving moves applied *)
  evaluations : int;
      (** candidate deployments scored — [swaps] and [evaluations] are
          deprecated aliases of the same-named telemetry counters *)
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["swaps"], ["evaluations"], ["delta_evals"],
          ["oracle_ns"], ["budget"], ["placement_size"];
          span [local-search] *)
}

val refine : ?max_rounds:int -> k:int -> Instance.t -> Placement.t -> report
(** [refine ~k inst p] requires [p] feasible (raises [Invalid_argument]
    otherwise).  Default [max_rounds] = 1000.  Candidate moves are
    probed on an {!Inc_oracle} (add/remove + undo), so each evaluation
    costs O(flows through the touched vertices) rather than a full
    objective rescan. *)
