type outcome = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  telemetry : Tdmd_obs.Telemetry.t;
}

let outcome ~placement ~bandwidth ~feasible ~telemetry =
  { placement; bandwidth; feasible; telemetry }

module type SOLVER = sig
  type input

  val name : string
  val solve : rng:Tdmd_prelude.Rng.t -> k:int -> input -> outcome
end

module type GENERAL = SOLVER with type input = Instance.t
module type TREE = SOLVER with type input = Instance.Tree.t
