type report = {
  placement : Placement.t;
  bandwidth : float;
  swaps : int;
  evaluations : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

(* Candidate moves (additions while under budget, then one-for-one
   swaps) are probed on the incremental oracle with add/remove + undo:
   each probe costs O(flows through the touched vertices) instead of the
   former full-instance rescan, and feasibility falls out of the
   oracle's unserved counter instead of a second scan.  Probe order and
   tie-breaking (first strictly-better candidate wins) are unchanged. *)
let refine ?(max_rounds = 1000) ~k instance placement =
  if not (Allocation.is_feasible instance placement) then
    invalid_arg "Local_search.refine: infeasible starting deployment";
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.span_open tel "local-search";
  let n = Instance.vertex_count instance in
  let evaluations = ref 0 in
  let oracle_ns = ref 0L in
  let rec round t placement current swaps rounds_left =
    if rounds_left = 0 then (placement, current, swaps)
    else begin
      let best = ref None in
      (* [t] currently reflects the candidate; [rebuild] materialises it
         as a Placement.t only when it becomes the new best. *)
      let consider rebuild =
        if Inc_oracle.is_feasible t then begin
          incr evaluations;
          let bw = Inc_oracle.bandwidth t in
          match !best with
          | Some (_, b) when b <= bw -> ()
          | _ -> if bw < current -. 1e-9 then best := Some (rebuild (), bw)
        end
      in
      let probe v rebuild =
        Tdmd_obs.Telemetry.count tel "delta_evals" 1;
        let t0 = Tdmd_obs.Clock.now_ns () in
        Inc_oracle.add t v;
        consider rebuild;
        Inc_oracle.undo t;
        oracle_ns := Int64.add !oracle_ns (Int64.sub (Tdmd_obs.Clock.now_ns ()) t0)
      in
      (* Pure additions while under budget. *)
      if Placement.size placement < k then
        for v = 0 to n - 1 do
          if not (Placement.mem placement v) then
            probe v (fun () -> Placement.add placement v)
        done;
      (* One-for-one swaps. *)
      List.iter
        (fun out ->
          Inc_oracle.remove t out;
          let without = Placement.remove placement out in
          for v = 0 to n - 1 do
            if (not (Placement.mem placement v)) && v <> out then
              probe v (fun () -> Placement.add without v)
          done;
          Inc_oracle.undo t)
        (Placement.to_list placement);
      match !best with
      | None -> (placement, current, swaps)
      | Some (next, bw) ->
        round (Inc_oracle.of_list instance (Placement.to_list next)) next bw
          (swaps + 1) (rounds_left - 1)
    end
  in
  let t0 = Inc_oracle.of_list instance (Placement.to_list placement) in
  let start_bw = Inc_oracle.bandwidth t0 in
  let placement, _, swaps = round t0 placement start_bw 0 max_rounds in
  (* Report the objective through the same summation as every other
     solver (identical mathematically; avoids mixing rounding styles in
     cross-solver comparisons). *)
  let bandwidth = Bandwidth.total instance placement in
  Tdmd_obs.Telemetry.span_close tel;
  Tdmd_obs.Telemetry.count tel "swaps" swaps;
  Tdmd_obs.Telemetry.count tel "evaluations" !evaluations;
  Tdmd_obs.Telemetry.count tel "oracle_ns" (Int64.to_int !oracle_ns);
  Tdmd_obs.Telemetry.count tel "placement_size" (Placement.size placement);
  { placement; bandwidth; swaps; evaluations = !evaluations; telemetry = tel }
