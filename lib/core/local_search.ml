type report = {
  placement : Placement.t;
  bandwidth : float;
  swaps : int;
  evaluations : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

let refine ?(max_rounds = 1000) ~k instance placement =
  if not (Allocation.is_feasible instance placement) then
    invalid_arg "Local_search.refine: infeasible starting deployment";
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.span_open tel "local-search";
  let n = Instance.vertex_count instance in
  let evaluations = ref 0 in
  let score p =
    incr evaluations;
    Bandwidth.total instance p
  in
  let rec round placement current swaps rounds_left =
    if rounds_left = 0 then (placement, current, swaps)
    else begin
      let best = ref None in
      let consider candidate =
        if Allocation.is_feasible instance candidate then begin
          let bw = score candidate in
          match !best with
          | Some (_, b) when b <= bw -> ()
          | _ -> if bw < current -. 1e-9 then best := Some (candidate, bw)
        end
      in
      (* Pure additions while under budget. *)
      if Placement.size placement < k then
        for v = 0 to n - 1 do
          if not (Placement.mem placement v) then consider (Placement.add placement v)
        done;
      (* One-for-one swaps. *)
      List.iter
        (fun out ->
          let without = Placement.remove placement out in
          for v = 0 to n - 1 do
            if (not (Placement.mem placement v)) && v <> out then
              consider (Placement.add without v)
          done)
        (Placement.to_list placement);
      match !best with
      | None -> (placement, current, swaps)
      | Some (next, bw) -> round next bw (swaps + 1) (rounds_left - 1)
    end
  in
  let start_bw = Bandwidth.total instance placement in
  let placement, bandwidth, swaps = round placement start_bw 0 max_rounds in
  Tdmd_obs.Telemetry.span_close tel;
  Tdmd_obs.Telemetry.count tel "swaps" swaps;
  Tdmd_obs.Telemetry.count tel "evaluations" !evaluations;
  Tdmd_obs.Telemetry.count tel "placement_size" (Placement.size placement);
  { placement; bandwidth; swaps; evaluations = !evaluations; telemetry = tel }
