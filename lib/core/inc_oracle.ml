module Flow = Tdmd_flow.Flow

(* All bookkeeping lives in integer diminished-volume space (see
   bandwidth.ml): serving flow f at path position l contributes
   r_f · (hops_f − l) diminished edge-units, and the (1−λ) scaling is
   applied only at the float boundary, so every incremental answer is an
   integer-valued float that agrees bit-for-bit with a from-scratch
   Bandwidth.diminished_volume scan. *)

type op = Added of int | Removed of int | Untouched

type t = {
  flows : Flow.t array;
  one_minus_lambda : float;
  total_volume : int;            (* Σ_f r_f · hops_f *)
  index : (int * int) array array;  (* vertex -> (flow index, path position) *)
  placed : Bytes.t;              (* vertex -> deployed? *)
  pos_placed : Bytes.t array;    (* flow -> deployed bitmap over path positions *)
  first : int array;             (* flow -> serving position; path length = unserved *)
  mutable dim_volume : int;      (* Σ served r_f · (hops_f − first_f) *)
  mutable unserved : int;
  mutable placed_count : int;
  mutable log : op list;         (* most recent first, for undo *)
}

(* Diminished edge-units of one flow served at position [l] (l = hops is
   the destination: zero diminished edges; l > hops means unserved). *)
let contrib rate hops l = if l > hops then 0 else rate * (hops - l)

let create instance =
  let n = Instance.vertex_count instance in
  let flows = instance.Instance.flows in
  let counts = Array.make n 0 in
  Array.iter
    (fun f -> Array.iter (fun v -> counts.(v) <- counts.(v) + 1) f.Flow.path)
    flows;
  let index = Array.init n (fun v -> Array.make counts.(v) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun fi f ->
      Array.iteri
        (fun pos v ->
          index.(v).(fill.(v)) <- (fi, pos);
          fill.(v) <- fill.(v) + 1)
        f.Flow.path)
    flows;
  {
    flows;
    one_minus_lambda = 1.0 -. instance.Instance.lambda;
    total_volume = Instance.total_path_volume instance;
    index;
    placed = Bytes.make n '\000';
    pos_placed = Array.map (fun f -> Bytes.make (Array.length f.Flow.path) '\000') flows;
    first = Array.map (fun f -> Array.length f.Flow.path) flows;
    dim_volume = 0;
    unserved = Array.length flows;
    placed_count = 0;
    log = [];
  }

let mem t v = Bytes.get t.placed v = '\001'
let size t = t.placed_count
let diminished_volume t = t.dim_volume
let decrement t = t.one_minus_lambda *. float_of_int t.dim_volume

let bandwidth t =
  float_of_int t.total_volume -. (t.one_minus_lambda *. float_of_int t.dim_volume)

let unserved_count t = t.unserved
let is_feasible t = t.unserved = 0

let do_add t v =
  Bytes.set t.placed v '\001';
  t.placed_count <- t.placed_count + 1;
  Array.iter
    (fun (fi, pos) ->
      Bytes.set t.pos_placed.(fi) pos '\001';
      let old = t.first.(fi) in
      if pos < old then begin
        let f = t.flows.(fi) in
        let hops = Flow.hop_count f in
        if old > hops then t.unserved <- t.unserved - 1;
        t.dim_volume <-
          t.dim_volume + contrib f.Flow.rate hops pos - contrib f.Flow.rate hops old;
        t.first.(fi) <- pos
      end)
    t.index.(v)

let do_remove t v =
  Bytes.set t.placed v '\000';
  t.placed_count <- t.placed_count - 1;
  Array.iter
    (fun (fi, pos) ->
      Bytes.set t.pos_placed.(fi) pos '\000';
      if pos = t.first.(fi) then begin
        let f = t.flows.(fi) in
        let hops = Flow.hop_count f in
        let len = hops + 1 in
        let bits = t.pos_placed.(fi) in
        (* Next deployed vertex down the path, or the unserved sentinel. *)
        let q = ref (pos + 1) in
        while !q < len && Bytes.get bits !q = '\000' do
          incr q
        done;
        let next = !q in
        if next > hops then t.unserved <- t.unserved + 1;
        t.dim_volume <-
          t.dim_volume + contrib f.Flow.rate hops next - contrib f.Flow.rate hops pos;
        t.first.(fi) <- next
      end)
    t.index.(v)

let add t v =
  if mem t v then t.log <- Untouched :: t.log
  else begin
    do_add t v;
    t.log <- Added v :: t.log
  end

let remove t v =
  if not (mem t v) then t.log <- Untouched :: t.log
  else begin
    do_remove t v;
    t.log <- Removed v :: t.log
  end

let undo t =
  match t.log with
  | [] -> invalid_arg "Inc_oracle.undo: nothing to undo"
  | Untouched :: rest -> t.log <- rest
  | Added v :: rest ->
    do_remove t v;
    t.log <- rest
  | Removed v :: rest ->
    do_add t v;
    t.log <- rest

let reset t =
  Bytes.fill t.placed 0 (Bytes.length t.placed) '\000';
  Array.iter (fun b -> Bytes.fill b 0 (Bytes.length b) '\000') t.pos_placed;
  Array.iteri (fun fi f -> t.first.(fi) <- Array.length f.Flow.path) t.flows;
  t.dim_volume <- 0;
  t.unserved <- Array.length t.flows;
  t.placed_count <- 0;
  t.log <- []

let of_list instance vs =
  let t = create instance in
  List.iter (fun v -> if not (mem t v) then do_add t v) vs;
  t

let marginal_volume t v =
  if mem t v then 0
  else
    Array.fold_left
      (fun acc (fi, pos) ->
        if pos < t.first.(fi) then begin
          let f = t.flows.(fi) in
          let hops = Flow.hop_count f in
          acc + contrib f.Flow.rate hops pos - contrib f.Flow.rate hops t.first.(fi)
        end
        else acc)
      0 t.index.(v)

let marginal t v = t.one_minus_lambda *. float_of_int (marginal_volume t v)

let iter_unserved t k =
  Array.iteri
    (fun fi f -> if t.first.(fi) > Flow.hop_count f then k fi)
    t.flows

let placement t =
  let vs = ref [] in
  for v = Bytes.length t.placed - 1 downto 0 do
    if mem t v then vs := v :: !vs
  done;
  Placement.of_list !vs
