(** Dynamic deployment maintenance under flow churn.

    The paper solves a static snapshot; operational networks see flows
    arrive and depart (its own Sec. 6.1 cites demand changes as why
    links are over-provisioned).  This extension maintains a deployment
    of at most [k] boxes across {!Tdmd_traffic.Temporal}-style events
    with bounded churn:

    - arrival: if the new flow is unserved, add the best covering /
      highest-marginal vertex when budget remains, otherwise replace
      the deployed box whose removal costs least;
    - departure: drop boxes that no longer serve any flow, then spend
      freed budget on the current best-marginal vertex when it still
      helps.

    Every deployed/removed box counts as one *move* — the
    quality-vs-churn trade against from-scratch GTP is an ablation
    bench. *)

type t

val create :
  graph:Tdmd_graph.Digraph.t -> lambda:float -> k:int -> t

val arrive : t -> Tdmd_flow.Flow.t -> unit
(** @raise Invalid_argument on duplicate flow ids or invalid paths. *)

val depart : t -> int -> unit
(** Remove the flow with the given id; unknown ids are ignored. *)

val flows : t -> Tdmd_flow.Flow.t list

val mem_flow : t -> int -> bool
(** O(1) id-index lookup: is a flow with this id currently live?  The
    serve path checks this on every arrival (duplicate-id conflict), so
    it must not scan {!flows}. *)

val flow_count : t -> int
(** Number of live flows, O(1) (equals [List.length (flows t)]). *)

val placement : t -> Placement.t
val bandwidth : t -> float
val feasible : t -> bool
val moves : t -> int
(** Total placement changes so far (adds + removals). *)

val telemetry : t -> Tdmd_obs.Telemetry.t
(** Lifetime telemetry: counters ["moves"], ["arrivals"],
    ["departures"], ["budget"].  [moves] above is a deprecated alias of
    the ["moves"] counter. *)

val instance : t -> Instance.t
(** Current snapshot as a static instance. *)

(** {1 State export / restore}

    The placement service snapshots engines to disk and rebuilds them
    after a crash (see [Tdmd_server.Session]); rebuilt engines must be
    {e bit-identical} — same answers to every observation above and the
    same behaviour for every future event.  That requires exporting the
    internal orders, not just the sets. *)

val placed_order : t -> int list
(** The deployment in {e selection} order (unlike {!placement}, which
    sorts).  Selection order feeds future replacement decisions, so a
    faithful restore needs it. *)

val restore :
  graph:Tdmd_graph.Digraph.t ->
  lambda:float ->
  k:int ->
  flows:Tdmd_flow.Flow.t list ->
  placed:int list ->
  moves:int ->
  arrivals:int ->
  departures:int ->
  t
(** Rebuild an engine from exported state: [flows] in arrival order
    (as returned by {!flows}), [placed] in selection order (as returned
    by {!placed_order}), and the lifetime counters.  The result is
    bit-identical to the engine the state was exported from.
    @raise Invalid_argument on invalid flows/placement/counters. *)
