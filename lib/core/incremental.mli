(** Dynamic deployment maintenance under flow churn.

    The paper solves a static snapshot; operational networks see flows
    arrive and depart (its own Sec. 6.1 cites demand changes as why
    links are over-provisioned).  This extension maintains a deployment
    of at most [k] boxes across {!Tdmd_traffic.Temporal}-style events
    with bounded churn:

    - arrival: if the new flow is unserved, add the best covering /
      highest-marginal vertex when budget remains, otherwise replace
      the deployed box whose removal costs least;
    - departure: drop boxes that no longer serve any flow, then spend
      freed budget on the current best-marginal vertex when it still
      helps;
    - rebalance: bounded local search in the Lukovszki–Rost–Schmid
      spirit ("Approximate and Incremental Network Function
      Placement") — spend at most a {e migration budget} of instance
      moves on strictly-improving adds and single-box swaps, keeping
      the placement near-optimal as churn drifts it.

    All decisions compare exact integer diminished-volume marginals
    (the {!Inc_oracle} convention), and the flow store is an
    arrival-ordered tombstone list with an id index, so events are
    amortised O(path + flows-through-touched-vertices) — no per-event
    instance rebuild and no float thresholds.

    Every deployed/removed box counts as one *move* — the
    quality-vs-churn trade against from-scratch GTP is an ablation
    bench ([bench churn-timeline]). *)

type t

val create :
  ?migration_budget:int ->
  graph:Tdmd_graph.Digraph.t ->
  lambda:float ->
  k:int ->
  unit ->
  t
(** [migration_budget] (default 0) is the number of instance moves the
    rebalancer may spend after {e each} churn event: 0 keeps the
    historical pin-only behaviour bit-for-bit, larger budgets trade
    migrations for bandwidth, and a huge budget approximates
    recompute-from-scratch.
    @raise Invalid_argument if [k < 1] or [migration_budget < 0]. *)

val arrive : t -> Tdmd_flow.Flow.t -> unit
(** @raise Invalid_argument on duplicate flow ids or invalid paths. *)

val depart : t -> int -> unit
(** Remove the flow with the given id.
    @raise Invalid_argument on unknown ids — callers must check
    {!mem_flow} first (the serve layer surfaces this as a churn
    conflict instead of silently counting a phantom departure). *)

val rebalance : ?budget:int -> t -> int
(** Run one bounded local-search pass: greedy adds while deployment
    budget remains (one move each), then best strictly-improving
    single-box swaps (two moves each), spending at most [budget] moves
    (default: the engine's migration budget).  Deterministic — ties
    break towards the earliest-placed box and the lowest vertex — so
    journal replay reproduces it bit-for-bit.  Returns the number of
    moves actually spent.
    @raise Invalid_argument on negative budgets. *)

val flows : t -> Tdmd_flow.Flow.t list

val mem_flow : t -> int -> bool
(** O(1) id-index lookup: is a flow with this id currently live?  The
    serve path checks this on every arrival (duplicate-id conflict)
    and departure (unknown-id conflict), so it must not scan
    {!flows}. *)

val flow_count : t -> int
(** Number of live flows, O(1) (equals [List.length (flows t)]). *)

val placement : t -> Placement.t
val bandwidth : t -> float
val feasible : t -> bool
val moves : t -> int
(** Total placement changes so far (adds + removals). *)

val migration_budget : t -> int
(** The per-event rebalancing budget this engine was created with. *)

val rebalances : t -> int
(** Rebalance passes run so far (explicit {!rebalance} calls plus the
    automatic post-event pass when the migration budget is positive). *)

val rebalance_moves : t -> int
(** Moves spent by rebalance passes (a subset of {!moves}). *)

val telemetry : t -> Tdmd_obs.Telemetry.t
(** Lifetime telemetry: counters ["moves"], ["arrivals"],
    ["departures"], ["budget"], ["migration_budget"], ["rebalances"],
    ["rebalance_moves"].  [moves] above is a deprecated alias of the
    ["moves"] counter. *)

val instance : t -> Instance.t
(** Current snapshot as a static instance. *)

(** {1 State export / restore}

    The placement service snapshots engines to disk and rebuilds them
    after a crash (see [Tdmd_server.Session]); rebuilt engines must be
    {e bit-identical} — same answers to every observation above and the
    same behaviour for every future event.  That requires exporting the
    internal orders, not just the sets. *)

val placed_order : t -> int list
(** The deployment in {e selection} order (unlike {!placement}, which
    sorts).  Selection order feeds future replacement and swap
    decisions, so a faithful restore needs it. *)

val restore :
  ?migration_budget:int ->
  ?rebalances:int ->
  ?rebalance_moves:int ->
  graph:Tdmd_graph.Digraph.t ->
  lambda:float ->
  k:int ->
  flows:Tdmd_flow.Flow.t list ->
  placed:int list ->
  moves:int ->
  arrivals:int ->
  departures:int ->
  unit ->
  t
(** Rebuild an engine from exported state: [flows] in arrival order
    (as returned by {!flows}), [placed] in selection order (as returned
    by {!placed_order}), the lifetime counters, and the migration
    budget the engine ran with (replaying journalled events only
    reproduces the automatic rebalance passes under the same budget).
    The result is bit-identical to the engine the state was exported
    from.
    @raise Invalid_argument on invalid flows/placement/counters,
    including duplicate placed vertices. *)
