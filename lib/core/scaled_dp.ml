module Flow = Tdmd_flow.Flow

type report = {
  placement : Placement.t;
  bandwidth : float;
  scaled_states : int;
  feasible : bool;
  telemetry : Tdmd_obs.Telemetry.t;
}

let solve ~k ~theta inst =
  if theta < 1 then invalid_arg "Scaled_dp.solve: theta must be >= 1";
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "theta" theta;
  Tdmd_obs.Telemetry.span_open tel "scaled-dp";
  let scaled_flows =
    Array.to_list inst.Instance.Tree.flows
    |> List.map (fun f ->
           let rate = (f.Flow.rate + theta - 1) / theta in
           Flow.make ~id:f.Flow.id ~rate ~path:(Array.to_list f.Flow.path))
  in
  let scaled =
    Instance.Tree.make ~tree:inst.Instance.Tree.tree ~flows:scaled_flows
      ~lambda:inst.Instance.Tree.lambda
  in
  let r = Dp.solve ~k scaled in
  let general = Instance.Tree.to_general inst in
  Tdmd_obs.Telemetry.span_close tel;
  (* The inner DP's spans and counters (its "states" are the scaled
     instance's) nest under this run's record. *)
  Tdmd_obs.Telemetry.merge ~into:tel r.Dp.telemetry;
  Tdmd_obs.Telemetry.count tel "scaled_states" r.Dp.states;
  {
    placement = r.Dp.placement;
    bandwidth = Bandwidth.total general r.Dp.placement;
    scaled_states = r.Dp.states;
    feasible = r.Dp.feasible;
    telemetry = tel;
  }
