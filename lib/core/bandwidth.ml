module Flow = Tdmd_flow.Flow

let flow_consumption ~lambda f serving =
  let r = float_of_int f.Flow.rate in
  let hops = float_of_int (Flow.hop_count f) in
  match serving with
  | Allocation.Unserved -> r *. hops
  | Allocation.Served_at { l; _ } ->
    let l = float_of_int l in
    (r *. l) +. (lambda *. r *. (hops -. l))

let total instance placement =
  let lambda = instance.Instance.lambda in
  Array.fold_left
    (fun acc f -> acc +. flow_consumption ~lambda f (Allocation.serve placement f))
    0.0 instance.Instance.flows

let unprocessed_volume instance = float_of_int (Instance.total_path_volume instance)

(* Σ_f r_f · (#edges carried at the diminished rate): an integer, so
   d(P) = (1-λ)·diminished_volume with no accumulated rounding. *)
let diminished_volume instance placement =
  Array.fold_left
    (fun acc f ->
      match Allocation.serve placement f with
      | Allocation.Unserved -> acc
      | Allocation.Served_at { l; _ } -> acc + (f.Flow.rate * (Flow.hop_count f - l)))
    0 instance.Instance.flows

let decrement instance placement =
  (1.0 -. instance.Instance.lambda)
  *. float_of_int (diminished_volume instance placement)

let marginal instance placement v =
  decrement instance (Placement.add placement v) -. decrement instance placement

let max_decrement instance =
  (1.0 -. instance.Instance.lambda) *. unprocessed_volume instance

(* The oracle drops the positive (1-λ) factor: argmax selection is
   unchanged, and integer-valued floats make every greedy comparison
   exact — submodularity then holds bit-for-bit, which the CELF lazy
   evaluation's "cached gains are upper bounds" invariant needs. *)
let oracle_naive instance =
  Tdmd_submod.Submodular.make
    ~ground:(Instance.vertex_count instance)
    ~value:(fun vs -> float_of_int (diminished_volume instance (Placement.of_list vs)))
    ()

(* Same λ-free integer objective, with marginals answered by the
   incremental index in O(flows through v).  Both interfaces stay exact
   integers in float, so greedy/CELF selections agree bit-for-bit with
   the naive path (differential-tested in test_inc_oracle). *)
let oracle instance =
  let t = Inc_oracle.create instance in
  Tdmd_submod.Submodular.make
    ~ground:(Instance.vertex_count instance)
    ~value:(fun vs -> float_of_int (diminished_volume instance (Placement.of_list vs)))
    ~incremental:
      {
        Tdmd_submod.Submodular.restart = (fun () -> Inc_oracle.reset t);
        gain = (fun v -> float_of_int (Inc_oracle.marginal_volume t v));
        commit = (fun v -> Inc_oracle.add t v);
      }
    ()
