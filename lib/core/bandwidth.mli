(** The objective (paper Eq. 1) and the decrement function (Defs. 1–2).

    Convention.  A middlebox processes a flow *before* it traverses the
    remaining edges: serving flow [f] at source-offset [l] (edges from
    [src f] to the serving vertex) leaves the first [l] edges at the
    full rate [r_f] and diminishes the remaining [|p_f| − l] edges to
    [λ·r_f], so

    [b(f) = r_f·l + λ·r_f·(|p_f| − l)].

    The paper writes the same quantity as [r_f·(|p_f| − (1−λ)·l̃)] where
    [l̃ = |p_f| − l] counts the *diminished* edges (its Sec. 5 text:
    "(|p_f| − l_v(f)) edges consuming r_f and l_v(f) edges consuming
    λ·r_f"); its Sec. 3 prose defines l_v(f) as the distance from the
    source, which contradicts its own Fig. 1 arithmetic — we follow the
    arithmetic.  Every worked value of Fig. 1 (total 12 with two boxes,
    8 with three), Tab. 2, and Figs. 6–7 is pinned by unit tests in
    [test/test_paper_examples.ml] under this convention.  Serving early
    (small [l]) is best, hence the forced earliest-middlebox
    allocation. *)

val flow_consumption :
  lambda:float -> Tdmd_flow.Flow.t -> Allocation.serving -> float
(** Bandwidth consumed by one flow under a serving decision; an
    [Unserved] flow consumes its full [r_f·|p_f|]. *)

val total : Instance.t -> Placement.t -> float
(** b(P, F): Eq. 1 under the forced earliest-middlebox allocation. *)

val decrement : Instance.t -> Placement.t -> float
(** d(P) = Σ_f r_f·|p_f| − b(P) (Def. 1).  Monotone submodular
    (Theorem 2). *)

val marginal : Instance.t -> Placement.t -> int -> float
(** d_P({v}) = d(P ∪ {v}) − d(P) (Def. 2). *)

val max_decrement : Instance.t -> float
(** (1−λ)·Σ_f r_f·|p_f| (Lemma 1): the decrement when every flow is
    served at its source. *)

val diminished_volume : Instance.t -> Placement.t -> int
(** Σ_f r_f · (edges carried at the diminished rate) under the forced
    allocation — the integer such that
    [decrement = (1-λ) · diminished_volume]. *)

val oracle : Instance.t -> Tdmd_submod.Submodular.oracle
(** The decrement function packaged for the generic greedy machinery
    (ground set = vertices).  Returns the λ-independent
    {!diminished_volume} as a float: the positive (1−λ) scaling cannot
    change any argmax, and integer-valued floats keep greedy and CELF
    comparisons exact (no rounding-induced submodularity violations).
    Carries the {!Inc_oracle}-backed incremental interface, so
    [Submodular.greedy]/[lazy_greedy] answer each marginal in
    O(flows through v) instead of rescanning every flow. *)

val oracle_naive : Instance.t -> Tdmd_submod.Submodular.oracle
(** Same objective without the incremental interface — every query is a
    from-scratch scan.  Kept as the reference side of the differential
    tests and the [bench oracle] baseline. *)
