type general_solver =
  rng:Tdmd_prelude.Rng.t -> k:int -> Instance.t -> Solver_intf.outcome

type tree_solver =
  rng:Tdmd_prelude.Rng.t -> k:int -> Instance.Tree.t -> Solver_intf.outcome

let outcome = Solver_intf.outcome

module Gtp_solver : Solver_intf.GENERAL = struct
  type input = Instance.t

  let name = "gtp"

  let solve ~rng:_ ~k inst =
    let r = Gtp.run ~budget:k inst in
    outcome ~placement:r.Gtp.placement ~bandwidth:r.Gtp.bandwidth
      ~feasible:r.Gtp.feasible ~telemetry:r.Gtp.telemetry
end

module Celf_solver : Solver_intf.GENERAL = struct
  type input = Instance.t

  let name = "celf"

  let solve ~rng:_ ~k inst =
    let r = Gtp.run_celf ~budget:k inst in
    outcome ~placement:r.Gtp.placement ~bandwidth:r.Gtp.bandwidth
      ~feasible:r.Gtp.feasible ~telemetry:r.Gtp.telemetry
end

module Best_effort_solver : Solver_intf.GENERAL = struct
  type input = Instance.t

  let name = "best-effort"

  let solve ~rng:_ ~k inst =
    let r = Baselines.best_effort ~k inst in
    outcome ~placement:r.Baselines.placement ~bandwidth:r.Baselines.bandwidth
      ~feasible:r.Baselines.feasible ~telemetry:r.Baselines.telemetry
end

module Random_solver : Solver_intf.GENERAL = struct
  type input = Instance.t

  let name = "random"

  let solve ~rng ~k inst =
    let r = Baselines.random rng ~k inst in
    outcome ~placement:r.Baselines.placement ~bandwidth:r.Baselines.bandwidth
      ~feasible:r.Baselines.feasible ~telemetry:r.Baselines.telemetry
end

module Brute_solver : Solver_intf.GENERAL = struct
  type input = Instance.t

  let name = "brute"

  let solve ~rng:_ ~k inst =
    let r = Brute.solve ~k inst in
    outcome ~placement:r.Brute.placement ~bandwidth:r.Brute.bandwidth
      ~feasible:r.Brute.feasible ~telemetry:r.Brute.telemetry
end

module Gtp_ls_solver : Solver_intf.GENERAL = struct
  type input = Instance.t

  let name = "gtp-ls"

  (* GTP then the swap-based refinement: never worse than plain GTP.
     The refinement requires a feasible start, so an infeasible greedy
     run is returned as-is. *)
  let solve ~rng:_ ~k inst =
    let g = Gtp.run ~budget:k inst in
    if not g.Gtp.feasible then
      outcome ~placement:g.Gtp.placement ~bandwidth:g.Gtp.bandwidth
        ~feasible:false ~telemetry:g.Gtp.telemetry
    else begin
      let r = Local_search.refine ~k inst g.Gtp.placement in
      let tel = g.Gtp.telemetry in
      Tdmd_obs.Telemetry.merge ~into:tel r.Local_search.telemetry;
      (* [budget] and [placement_size] are run parameters, not work
         counters: the merge added both phases', so restate them. *)
      Tdmd_obs.Telemetry.set tel "budget" (Tdmd_obs.Telemetry.Int k);
      Tdmd_obs.Telemetry.set tel "placement_size"
        (Tdmd_obs.Telemetry.Int (Placement.size r.Local_search.placement));
      outcome ~placement:r.Local_search.placement
        ~bandwidth:r.Local_search.bandwidth ~feasible:true ~telemetry:tel
    end
end

module Incremental_solver : Solver_intf.GENERAL = struct
  type input = Instance.t

  let name = "incremental"

  (* One-shot view of the churn maintainer: replay the instance's flows
     as an arrival sequence and keep the final deployment.  Mirrors how
     an operator would reach this static snapshot online. *)
  let solve ~rng:_ ~k inst =
    let state =
      Incremental.create ~graph:inst.Instance.graph
        ~lambda:inst.Instance.lambda ~k:(max k 1) ()
    in
    Tdmd_obs.Telemetry.with_span
      (Incremental.telemetry state)
      "incremental-replay"
      (fun () -> Array.iter (Incremental.arrive state) inst.Instance.flows);
    outcome
      ~placement:(Incremental.placement state)
      ~bandwidth:(Incremental.bandwidth state)
      ~feasible:(Incremental.feasible state)
      ~telemetry:(Incremental.telemetry state)
end

(* The incremental-lrs family: the same arrival replay, but each event
   carries a migration budget spent by the bounded local-search
   rebalancer (Lukovszki–Rost–Schmid-style), so the maintained
   placement tracks the optimum instead of drifting.  [B] moves per
   event; a huge [B] approximates recompute-from-scratch. *)
let lrs_replay ~migration_budget ~k inst =
  let state =
    Incremental.create ~migration_budget ~graph:inst.Instance.graph
      ~lambda:inst.Instance.lambda ~k:(max k 1) ()
  in
  Tdmd_obs.Telemetry.with_span
    (Incremental.telemetry state)
    "incremental-lrs-replay"
    (fun () -> Array.iter (Incremental.arrive state) inst.Instance.flows);
  outcome
    ~placement:(Incremental.placement state)
    ~bandwidth:(Incremental.bandwidth state)
    ~feasible:(Incremental.feasible state)
    ~telemetry:(Incremental.telemetry state)

module Incremental_lrs_solver : Solver_intf.GENERAL = struct
  type input = Instance.t

  let name = "incremental-lrs"

  (* B = 2: at most one box swap per event — the cheapest budget that
     still counters churn drift. *)
  let solve ~rng:_ ~k inst = lrs_replay ~migration_budget:2 ~k inst
end

module Incremental_lrs_max_solver : Solver_intf.GENERAL = struct
  type input = Instance.t

  let name = "incremental-lrs-max"

  (* Unbounded budget: rebalance to a local optimum after every event,
     approximating recompute-from-scratch at incremental cost. *)
  let solve ~rng:_ ~k inst = lrs_replay ~migration_budget:max_int ~k inst
end

module Dp_solver : Solver_intf.TREE = struct
  type input = Instance.Tree.t

  let name = "dp"

  let solve ~rng:_ ~k inst =
    let r = Dp.solve ~k inst in
    outcome ~placement:r.Dp.placement ~bandwidth:r.Dp.bandwidth
      ~feasible:r.Dp.feasible ~telemetry:r.Dp.telemetry
end

module Dp_binary_solver : Solver_intf.TREE = struct
  type input = Instance.Tree.t

  let name = "dp-binary"

  let solve ~rng:_ ~k inst =
    let r = Dp_binary.solve ~k inst in
    outcome ~placement:r.Dp_binary.placement ~bandwidth:r.Dp_binary.bandwidth
      ~feasible:r.Dp_binary.feasible ~telemetry:r.Dp_binary.telemetry
end

module Hat_solver : Solver_intf.TREE = struct
  type input = Instance.Tree.t

  let name = "hat"

  let solve ~rng:_ ~k inst =
    let r = Hat.run ~k inst in
    outcome ~placement:r.Hat.placement ~bandwidth:r.Hat.bandwidth
      ~feasible:r.Hat.feasible ~telemetry:r.Hat.telemetry
end

module Scaled_dp_solver : Solver_intf.TREE = struct
  type input = Instance.Tree.t

  let name = "scaled-dp"

  (* theta = 4 matches the ablation bench's operating point. *)
  let solve ~rng:_ ~k inst =
    let r = Scaled_dp.solve ~k ~theta:4 inst in
    outcome ~placement:r.Scaled_dp.placement ~bandwidth:r.Scaled_dp.bandwidth
      ~feasible:r.Scaled_dp.feasible ~telemetry:r.Scaled_dp.telemetry
end

let general_modules : (module Solver_intf.GENERAL) list =
  [
    (module Gtp_solver);
    (module Celf_solver);
    (module Best_effort_solver);
    (module Random_solver);
    (module Brute_solver);
    (module Gtp_ls_solver);
    (module Incremental_solver);
    (module Incremental_lrs_solver);
    (module Incremental_lrs_max_solver);
  ]

let tree_modules : (module Solver_intf.TREE) list =
  [
    (module Dp_solver);
    (module Dp_binary_solver);
    (module Hat_solver);
    (module Scaled_dp_solver);
  ]

let builtin_general : (string * general_solver) list =
  List.map
    (fun (module S : Solver_intf.GENERAL) ->
      (S.name, fun ~rng ~k inst -> S.solve ~rng ~k inst))
    general_modules

let builtin_tree : (string * tree_solver) list =
  List.map
    (fun (module S : Solver_intf.TREE) ->
      (S.name, fun ~rng ~k inst -> S.solve ~rng ~k inst))
    tree_modules

(* Extension point for solvers living in libraries that depend on this
   one (tdmd.portfolio's metaheuristics register here).  Registration is
   a start-up-time act — module initialisation or an explicit install
   call — before any concurrent use, so a plain ref suffices. *)
let extra_general : (string * general_solver) list ref = ref []

let register_general name solve =
  if
    List.mem_assoc name builtin_general
    || List.mem_assoc name builtin_tree
    || List.mem_assoc name !extra_general
  then invalid_arg ("Solvers.register_general: duplicate name " ^ name);
  extra_general := !extra_general @ [ (name, solve) ]

let general () = builtin_general @ !extra_general
let tree () = builtin_tree

let find_general name =
  match List.assoc_opt name builtin_general with
  | Some _ as hit -> hit
  | None -> List.assoc_opt name !extra_general

let find_tree name = List.assoc_opt name builtin_tree

let on_tree name =
  match find_tree name with
  | Some f -> Some f
  | None ->
    find_general name
    |> Option.map (fun f ~rng ~k inst -> f ~rng ~k (Instance.Tree.to_general inst))

let general_names () = List.map fst (general ())
let tree_names () = List.map fst (tree ())
let names () = general_names () @ tree_names ()

let describe_unknown ?(tree_input = false) name =
  if (not tree_input) && List.mem name (tree_names ()) then
    Printf.sprintf
      "%S solves tree instances only (run it against a tree topology); \
       solvers available here: %s"
      name
      (String.concat " | " (general_names ()))
  else
    Printf.sprintf "unknown algorithm %S (general: %s; tree-only: %s)" name
      (String.concat " | " (general_names ()))
      (String.concat " | " (tree_names ()))
