(* Cover counting shared by both entry points: tally, for every vertex,
   how many of the given unserved flows pass through it (paths have no
   repeated vertices, so one increment per flow), zero out excluded
   vertices, and take the argmax with lowest-vertex tie-breaking — the
   same selection rule as the former quadratic List.mem/List.filter
   formulation. *)
let best_covering ~n ~excluded counts =
  let best = ref (-1) and best_cover = ref 0 in
  for v = 0 to n - 1 do
    if (not (excluded v)) && counts.(v) > !best_cover then begin
      best := v;
      best_cover := counts.(v)
    end
  done;
  if !best < 0 then None else Some !best

let best_cover_vertex instance chosen unserved =
  let n = Instance.vertex_count instance in
  let counts = Array.make n 0 in
  List.iter
    (fun f ->
      Array.iter (fun v -> counts.(v) <- counts.(v) + 1) f.Tdmd_flow.Flow.path)
    unserved;
  let excluded = Array.make n false in
  List.iter (fun v -> if v >= 0 && v < n then excluded.(v) <- true) chosen;
  best_covering ~n ~excluded:(fun v -> excluded.(v)) counts

let within instance ~chosen ~budget =
  let n = Instance.vertex_count instance in
  let flows = instance.Instance.flows in
  let chosen = Array.of_list chosen in
  let t = Inc_oracle.create instance in
  let counts = Array.make n 0 in
  (* Candidate for a kept prefix: the prefix (first occurrences, in
     order) plus greedy covering picks driven by the oracle's unserved
     tracking.  Afterwards [t] reflects the candidate, so the caller
     reads feasibility straight off it. *)
  let extend kept_len =
    Inc_oracle.reset t;
    let prefix = ref [] in
    for i = 0 to kept_len - 1 do
      let v = chosen.(i) in
      if not (Inc_oracle.mem t v) then begin
        Inc_oracle.add t v;
        prefix := v :: !prefix
      end
    done;
    let ext = ref [] in
    let exhausted = ref false in
    while
      (not !exhausted)
      && (not (Inc_oracle.is_feasible t))
      && Inc_oracle.size t < budget
    do
      Array.fill counts 0 n 0;
      Inc_oracle.iter_unserved t (fun fi ->
          Array.iter
            (fun v -> counts.(v) <- counts.(v) + 1)
            flows.(fi).Tdmd_flow.Flow.path);
      match best_covering ~n ~excluded:(Inc_oracle.mem t) counts with
      | None -> exhausted := true
      | Some v ->
        Inc_oracle.add t v;
        ext := v :: !ext
    done;
    List.rev_append !prefix (List.rev !ext)
  in
  (* Keep ever-shorter prefixes (dropping the lowest-value picks first)
     until covering picks fit in the budget. *)
  let rec attempt kept_len fallback =
    let candidate = extend kept_len in
    let feasible = Inc_oracle.is_feasible t in
    let fallback = match fallback with Some f -> Some f | None -> Some candidate in
    if feasible then candidate
    else if kept_len = 0 then (match fallback with Some f -> f | None -> candidate)
    else attempt (kept_len - 1) fallback
  in
  attempt (Array.length chosen) None
