(** General Topology Placement (paper Alg. 1).

    Greedy maximisation of the submodular decrement: repeatedly deploy
    on the vertex with the maximum marginal decrement until every flow
    is processed.  By Theorem 3 the decrement of the result is at least
    (1 − 1/e) of the optimum for the same number of middleboxes.

    The evaluation also imposes an explicit budget [k]; [run ~budget]
    stops at the budget even if some flows remain unserved, and the
    report says whether the deployment is feasible (the paper only
    scores feasible deployments and regenerates traffic otherwise). *)

type report = {
  placement : Placement.t;
  bandwidth : float;        (** b(P, F) of the returned deployment *)
  decrement : float;        (** d(P) *)
  feasible : bool;          (** all flows served? *)
  oracle_calls : int;
      (** decrement-oracle evaluations performed — deprecated alias of
          the ["oracle_calls"] telemetry counter *)
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["oracle_calls"], ["delta_evals"], ["oracle_ns"]
          (nanoseconds spent inside oracle evaluations), ["budget"],
          ["placement_size"]; spans [gtp > greedy, cover-fixup] *)
}

val run : ?budget:int -> ?incremental:bool -> Instance.t -> report
(** Plain greedy, exactly Alg. 1.  Default budget: |V|.  [incremental]
    (default [true]) selects the {!Inc_oracle}-backed marginal oracle;
    [false] forces the from-scratch scan — same deployment bit-for-bit
    (differential-tested), kept for benchmarking and as the reference. *)

val run_celf : ?budget:int -> ?incremental:bool -> Instance.t -> report
(** Lazy-greedy (CELF) acceleration — same deployment as {!run} (the
    ablation bench verifies this and counts saved oracle calls). *)

val derived_k : Instance.t -> int
(** The k "derived from the algorithm" (Sec. 4.2): middleboxes GTP
    needs to make the deployment feasible with no budget. *)
