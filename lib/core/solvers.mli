(** First-class solver registry.

    Central list of every placement algorithm reachable by name, split
    by the input it needs.  [bin/tdmd_cli.ml]'s [--algo] dispatch,
    [Tdmd_sim.Experiments]'s algorithm lists and the bench's solver
    sweep all resolve through this table — adding a solver here makes
    it reachable everywhere at once.

    General solvers ({!general}):
    - ["gtp"]          — paper Alg. 1 greedy ({!Gtp.run})
    - ["celf"]         — lazy-greedy GTP ({!Gtp.run_celf})
    - ["best-effort"]  — non-adaptive singleton ranking ({!Baselines})
    - ["random"]       — feasibility-retrying random placement
    - ["brute"]        — exhaustive optimum (small instances only)
    - ["gtp-ls"]       — GTP followed by {!Local_search.refine}
    - ["incremental"]  — {!Incremental} maintenance, replaying the
                         instance's flows as an arrival sequence
    - ["incremental-lrs"]     — the same replay with a migration budget
                                of 2 moves per event spent by the
                                bounded local-search rebalancer
    - ["incremental-lrs-max"] — unbounded migration budget: rebalance
                                to a local optimum after every event

    Tree solvers ({!tree}):
    - ["dp"]           — optimal tree DP (Sec. 5.1)
    - ["dp-binary"]    — Eqs. 7–10 transcription (binary trees only)
    - ["hat"]          — leaf-merge heuristic (Alg. 2)
    - ["scaled-dp"]    — rate-quantised DP at θ = 4

    Libraries layered above this one extend the general table at
    start-up through {!register_general} — [Tdmd_portfolio.Register]
    contributes ["anneal"], ["genetic"] and ["portfolio"] this way —
    so the listing functions below are functions of [unit], not
    values. *)

type general_solver =
  rng:Tdmd_prelude.Rng.t -> k:int -> Instance.t -> Solver_intf.outcome

type tree_solver =
  rng:Tdmd_prelude.Rng.t -> k:int -> Instance.Tree.t -> Solver_intf.outcome

val general : unit -> (string * general_solver) list
(** Built-in general solvers followed by {!register_general} extras in
    registration order. *)

val tree : unit -> (string * tree_solver) list

val register_general : string -> general_solver -> unit
(** Extend the general table with a dynamically provided solver.  Call
    at start-up, before any concurrent registry use (the table is a
    plain ref, deliberately unsynchronised).
    @raise Invalid_argument when [name] is already registered, in any
    table — a collision would make {!on_tree} dispatch ambiguous. *)

val general_modules : (module Solver_intf.GENERAL) list
val tree_modules : (module Solver_intf.TREE) list
(** The built-in solvers as first-class {!Solver_intf.SOLVER} modules. *)

val find_general : string -> general_solver option
val find_tree : string -> tree_solver option

val on_tree : string -> tree_solver option
(** Resolve a name against the tree registry first, then lift a
    general solver through {!Instance.Tree.to_general} — every
    registered solver can score a tree instance. *)

val names : unit -> string list
(** All registry names: tree-only solvers last, as in [--algo]'s
    documentation. *)

val general_names : unit -> string list
val tree_names : unit -> string list

val describe_unknown : ?tree_input:bool -> string -> string
(** Diagnostic for a name that failed to resolve, listing what the
    registry does offer.  With [~tree_input:false] (the default) a
    name that {e is} registered — but only for trees — yields a message
    explaining the topology restriction instead of claiming the name is
    unknown.  Shared by the CLI and the serving layer so every surface
    reports the same registry. *)
