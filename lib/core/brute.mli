(** Exhaustive optimal solver for small instances.

    Enumerates every vertex subset of size ≤ k and keeps the feasible
    one with minimum bandwidth.  Exponential — the oracle the property
    tests use to certify DP optimality and to bound GTP/HAT
    sub-optimality on random small instances.

    @raise Invalid_argument when C(|V|, k) would exceed ~10⁷ subsets. *)

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;  (** false when no subset of size ≤ k serves all flows *)
  subsets : int;
      (** subsets examined — deprecated alias of the ["subsets"]
          telemetry counter *)
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["subsets"], ["budget"], ["placement_size"]; span
          [brute] *)
}

val solve : k:int -> Instance.t -> report
