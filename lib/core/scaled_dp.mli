(** Extension: rate-scaled approximation of the tree DP.

    The DP is pseudo-polynomial in the flow rates (Theorem 5); the
    paper notes that rates "in an arbitrary precision and order of
    magnitude" make it computationally hard and that a PTAS is
    non-trivial (Sec. 5.1).  The standard engineering answer is rate
    quantisation: divide every rate by a factor θ, round up, solve the
    DP on the small-rate instance, and keep its *placement*, which is
    then scored on the true instance.  θ = 1 is exactly {!Dp};
    larger θ trades optimality for a ~θ² smaller state space.  The
    ablation bench measures both sides of the trade. *)

type report = {
  placement : Placement.t;
  bandwidth : float;      (** true-instance bandwidth of the placement *)
  scaled_states : int;
      (** DP states after quantisation — deprecated alias of the
          ["scaled_states"] telemetry counter *)
  feasible : bool;
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["scaled_states"], ["theta"], plus the inner DP's
          counters; spans [scaled-dp] then the inner [dp] run *)
}

val solve : k:int -> theta:int -> Instance.Tree.t -> report
(** @raise Invalid_argument when [theta < 1]. *)
