module Flow = Tdmd_flow.Flow

(* All placement decisions live in integer diminished-volume space (see
   bandwidth.ml / inc_oracle.ml): serving flow f at path position l is
   worth r_f · (hops_f − l) diminished edge-units, and the (1−λ) scaling
   happens only at the float reporting boundary.  Comparing exact
   integers instead of float marginals removes the old 1e-9 threshold
   (which silently suppressed every gain when 1−λ was tiny); a
   regression that reintroduces a float-literal comparison here is
   caught by tdmd-lint's [float-equal] rule. *)
let contrib rate hops l = if l > hops then 0 else rate * (hops - l)

(* A mutable-flow-set variant of [Inc_oracle]: the same inverted index
   and counters, but flows arrive and depart (per-vertex hash tables
   instead of frozen arrays), so every churn event costs
   O(path + flows-through-touched-vertices) instead of rebuilding an
   [Instance] over all live flows. *)
module Dyn = struct
  type entry = {
    flow : Flow.t;
    mutable first : int; (* serving path position; path length = unserved *)
  }

  type t = {
    index : (int, entry * int) Hashtbl.t array;
        (* vertex -> flow id -> (entry, path position) *)
    entries : (int, entry) Hashtbl.t; (* live flows by id *)
    placed : Bytes.t; (* vertex -> deployed? *)
    served_at : int array; (* vertex -> #flows served there *)
    mutable total_volume : int; (* Σ_f r_f · hops_f *)
    mutable dim_volume : int; (* Σ served r_f · (hops_f − first_f) *)
    mutable unserved : int;
  }

  (* One vertex op's worth of changed flows, for probe/undo.  [`Add]/
     [`Remove] record which placed bit to flip back; each pair is the
     entry plus its pre-op serving position. *)
  type token = { added : bool; vertex : int; changes : (entry * int) list }

  let create n =
    {
      index = Array.init n (fun _ -> Hashtbl.create 8);
      entries = Hashtbl.create 64;
      placed = Bytes.make n '\000';
      served_at = Array.make n 0;
      total_volume = 0;
      dim_volume = 0;
      unserved = 0;
    }

  let mem t v = Bytes.get t.placed v = '\001'
  let is_feasible t = t.unserved = 0
  let unserved_count t = t.unserved
  let dim_volume t = t.dim_volume
  let served_count t v = t.served_at.(v)

  (* Move [e] from serving position [e.first] to [pos], maintaining the
     dim-volume / unserved / served-at counters. *)
  let shift t e pos =
    let f = e.flow in
    let hops = Flow.hop_count f in
    let old = e.first in
    if old > hops then t.unserved <- t.unserved - 1
    else t.served_at.(f.Flow.path.(old)) <- t.served_at.(f.Flow.path.(old)) - 1;
    if pos > hops then t.unserved <- t.unserved + 1
    else t.served_at.(f.Flow.path.(pos)) <- t.served_at.(f.Flow.path.(pos)) + 1;
    t.dim_volume <-
      t.dim_volume + contrib f.Flow.rate hops pos - contrib f.Flow.rate hops old;
    e.first <- pos

  let do_add t v =
    Bytes.set t.placed v '\001';
    let changes = ref [] in
    Hashtbl.iter
      (fun _ (e, pos) ->
        if pos < e.first then begin
          changes := (e, e.first) :: !changes;
          shift t e pos
        end)
      t.index.(v);
    { added = true; vertex = v; changes = !changes }

  let do_remove t v =
    Bytes.set t.placed v '\000';
    let changes = ref [] in
    Hashtbl.iter
      (fun _ (e, pos) ->
        if pos = e.first then begin
          let path = e.flow.Flow.path in
          let len = Array.length path in
          (* Next deployed vertex down the path, or the unserved
             sentinel.  [v]'s bit is already clear, and paths repeat no
             vertex, so the scan is over the post-removal deployment. *)
          let q = ref (pos + 1) in
          while !q < len && Bytes.get t.placed path.(!q) = '\000' do
            incr q
          done;
          changes := (e, pos) :: !changes;
          shift t e !q
        end)
      t.index.(v);
    { added = false; vertex = v; changes = !changes }

  let apply_add t v = ignore (do_add t v)
  let apply_remove t v = ignore (do_remove t v)
  let probe_add = do_add
  let probe_remove = do_remove

  let undo t tok =
    Bytes.set t.placed tok.vertex (if tok.added then '\000' else '\001');
    List.iter (fun (e, old_first) -> shift t e old_first) tok.changes

  let add_flow t f =
    let path = f.Flow.path in
    let len = Array.length path in
    let hops = len - 1 in
    let first = ref 0 in
    while !first < len && Bytes.get t.placed path.(!first) = '\000' do
      incr first
    done;
    let e = { flow = f; first = !first } in
    Array.iteri (fun pos v -> Hashtbl.replace t.index.(v) f.Flow.id (e, pos)) path;
    Hashtbl.replace t.entries f.Flow.id e;
    t.total_volume <- t.total_volume + (f.Flow.rate * hops);
    if e.first > hops then t.unserved <- t.unserved + 1
    else begin
      t.dim_volume <- t.dim_volume + contrib f.Flow.rate hops e.first;
      t.served_at.(path.(e.first)) <- t.served_at.(path.(e.first)) + 1
    end

  let remove_flow t id =
    let e = Hashtbl.find t.entries id in
    let path = e.flow.Flow.path in
    let hops = Array.length path - 1 in
    Array.iter (fun v -> Hashtbl.remove t.index.(v) id) path;
    Hashtbl.remove t.entries id;
    t.total_volume <- t.total_volume - (e.flow.Flow.rate * hops);
    if e.first > hops then t.unserved <- t.unserved - 1
    else begin
      t.dim_volume <- t.dim_volume - contrib e.flow.Flow.rate hops e.first;
      t.served_at.(path.(e.first)) <- t.served_at.(path.(e.first)) - 1
    end

  let marginal t v =
    if mem t v then 0
    else
      Hashtbl.fold
        (fun _ (e, pos) acc ->
          if pos < e.first then begin
            let f = e.flow in
            let hops = Flow.hop_count f in
            acc + contrib f.Flow.rate hops pos - contrib f.Flow.rate hops e.first
          end
          else acc)
        t.index.(v) 0
end

(* Arrival-ordered flow store with O(1) arrive/depart: a newest-first
   list of liveness cells plus an id index.  Departure tombstones the
   cell; the list is compacted once tombstones outnumber live flows, so
   the store is amortised O(1) per event while [flows] still reads back
   the exact arrival order the server's snapshots depend on. *)
type cell = { cf : Flow.t; mutable live : bool }

type t = {
  graph : Tdmd_graph.Digraph.t;
  lambda : float;
  k : int;
  migration_budget : int; (* moves the rebalancer may spend per event *)
  mutable rev_flows : cell list; (* newest first, may contain tombstones *)
  mutable dead : int; (* tombstones still in [rev_flows] *)
  ids : (int, cell) Hashtbl.t; (* id index over live flows *)
  oracle : Dyn.t;
  mutable placed : int list; (* deployment, selection order *)
  mutable moves : int;
  mutable rebalances : int;
  mutable rebalance_moves : int;
  tel : Tdmd_obs.Telemetry.t;
}

let create ?(migration_budget = 0) ~graph ~lambda ~k () =
  if k < 1 then invalid_arg "Incremental.create: k must be >= 1";
  if migration_budget < 0 then
    invalid_arg "Incremental.create: negative migration budget";
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.count tel "migration_budget" migration_budget;
  {
    graph;
    lambda;
    k;
    migration_budget;
    rev_flows = [];
    dead = 0;
    ids = Hashtbl.create 64;
    oracle = Dyn.create (Tdmd_graph.Digraph.vertex_count graph);
    placed = [];
    moves = 0;
    rebalances = 0;
    rebalance_moves = 0;
    tel;
  }

let flows t =
  List.fold_left
    (fun acc c -> if c.live then c.cf :: acc else acc)
    [] t.rev_flows

let instance t = Instance.make ~graph:t.graph ~flows:(flows t) ~lambda:t.lambda
let placement t = Placement.of_list t.placed
let placed_order t = t.placed
let mem_flow t id = Hashtbl.mem t.ids id
let flow_count t = Hashtbl.length t.ids
let bandwidth t = Bandwidth.total (instance t) (placement t)
let feasible t = Dyn.is_feasible t.oracle
let moves t = t.moves
let migration_budget t = t.migration_budget
let rebalances t = t.rebalances
let rebalance_moves t = t.rebalance_moves
let telemetry t = t.tel

let compact t =
  if t.dead > 64 && t.dead > Hashtbl.length t.ids then begin
    t.rev_flows <- List.filter (fun c -> c.live) t.rev_flows;
    t.dead <- 0
  end

let set_placed t placed =
  let before = Placement.of_list t.placed in
  let after = Placement.of_list placed in
  let added =
    List.filter (fun v -> not (Placement.mem before v)) (Placement.to_list after)
  in
  let removed =
    List.filter (fun v -> not (Placement.mem after v)) (Placement.to_list before)
  in
  List.iter (Dyn.apply_remove t.oracle) removed;
  List.iter (Dyn.apply_add t.oracle) added;
  let n_moves = List.length added + List.length removed in
  t.moves <- t.moves + n_moves;
  Tdmd_obs.Telemetry.count t.tel "moves" n_moves;
  t.placed <- placed

(* Highest exact-integer marginal over undeployed vertices; strictly
   positive gains only, lowest vertex wins ties. *)
let best_marginal t =
  let best = ref (-1) and best_gain = ref 0 in
  for v = 0 to Tdmd_graph.Digraph.vertex_count t.graph - 1 do
    if not (Dyn.mem t.oracle v) then begin
      let g = Dyn.marginal t.oracle v in
      if g > !best_gain then begin
        best := v;
        best_gain := g
      end
    end
  done;
  if !best < 0 then None else Some !best

(* Bounded local search in the Lukovszki–Rost–Schmid spirit: spend at
   most [budget] instance moves on strictly-improving changes — first
   plain adds while deployment budget remains (1 move each), then
   best single-box swaps (2 moves each).  A swap is accepted only when
   it strictly increases served diminished volume and never increases
   the unserved-flow count, so the search is deterministic (first
   placed box, then lowest vertex, wins ties) and terminates: every
   accepted change strictly grows [dim_volume], which is bounded. *)
let rebalance ?budget t =
  let budget = match budget with Some b -> b | None -> t.migration_budget in
  if budget < 0 then invalid_arg "Incremental.rebalance: negative budget";
  let spent = ref 0 in
  let adding = ref true in
  while !adding && List.length t.placed < t.k && !spent < budget do
    match best_marginal t with
    | Some v ->
      set_placed t (t.placed @ [ v ]);
      incr spent
    | None -> adding := false
  done;
  let swapping = ref true in
  while !swapping && !spent + 2 <= budget do
    let dim0 = Dyn.dim_volume t.oracle in
    let uns0 = Dyn.unserved_count t.oracle in
    let best = ref None in
    List.iter
      (fun u ->
        let tr = Dyn.probe_remove t.oracle u in
        (match best_marginal t with
        | Some v ->
          let ta = Dyn.probe_add t.oracle v in
          let net = Dyn.dim_volume t.oracle - dim0 in
          let ok = Dyn.unserved_count t.oracle <= uns0 in
          Dyn.undo t.oracle ta;
          if ok && net > 0 then begin
            match !best with
            | Some (bn, _, _) when bn >= net -> ()
            | _ -> best := Some (net, u, v)
          end
        | None -> ());
        Dyn.undo t.oracle tr)
      t.placed;
    match !best with
    | Some (_, u, v) ->
      set_placed t (List.filter (fun w -> w <> u) t.placed @ [ v ]);
      spent := !spent + 2
    | None -> swapping := false
  done;
  t.rebalances <- t.rebalances + 1;
  t.rebalance_moves <- t.rebalance_moves + !spent;
  Tdmd_obs.Telemetry.count t.tel "rebalances" 1;
  Tdmd_obs.Telemetry.count t.tel "rebalance_moves" !spent;
  !spent

let auto_rebalance t =
  if t.migration_budget > 0 then ignore (rebalance t)

let arrive t f =
  if Hashtbl.mem t.ids f.Flow.id then
    invalid_arg "Incremental.arrive: duplicate flow id";
  (match Flow.validate t.graph f with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Incremental.arrive: " ^ msg));
  Tdmd_obs.Telemetry.count t.tel "arrivals" 1;
  let c = { cf = f; live = true } in
  t.rev_flows <- c :: t.rev_flows;
  Hashtbl.replace t.ids f.Flow.id c;
  Dyn.add_flow t.oracle f;
  if not (Dyn.is_feasible t.oracle) then begin
    (* Prefer serving the new flow at its highest-marginal on-path
       vertex while budget remains, then let the shared fix-up restore
       feasibility for anything else (including flows stranded by an
       earlier budget-exhausted event).  Selection rule: first maximum
       in path order, with already-deployed vertices competing at zero
       marginal — but a deployed winner (a zero-marginal tie where the
       new flow is already served at its first hop) must not be
       appended again, so the pick degrades to a no-op instead of
       duplicating a placed entry. *)
    let chosen =
      if List.length t.placed < t.k then begin
        let best = ref f.Flow.path.(0)
        and best_gain = ref (Dyn.marginal t.oracle f.Flow.path.(0)) in
        Array.iter
          (fun v ->
            let g = Dyn.marginal t.oracle v in
            if g > !best_gain then begin
              best := v;
              best_gain := g
            end)
          f.Flow.path;
        if Dyn.mem t.oracle !best then t.placed else t.placed @ [ !best ]
      end
      else t.placed
    in
    set_placed t (Cover_fixup.within (instance t) ~chosen ~budget:t.k)
  end;
  auto_rebalance t

let depart t id =
  (match Hashtbl.find_opt t.ids id with
  | None -> invalid_arg "Incremental.depart: unknown flow id"
  | Some c ->
    Tdmd_obs.Telemetry.count t.tel "departures" 1;
    c.live <- false;
    t.dead <- t.dead + 1;
    Hashtbl.remove t.ids id;
    Dyn.remove_flow t.oracle id;
    compact t);
  (* Boxes that serve nobody are pure waste now. *)
  let useful =
    List.filter (fun v -> Dyn.served_count t.oracle v > 0) t.placed
  in
  if List.length useful < List.length t.placed then set_placed t useful;
  (* Spend freed budget where it helps. *)
  (if List.length t.placed < t.k then
     match best_marginal t with
     | Some v -> set_placed t (t.placed @ [ v ])
     | None -> ());
  (* A departure can also unlock feasibility denied at a previous
     budget-exhausted event. *)
  if not (Dyn.is_feasible t.oracle) then
    set_placed t (Cover_fixup.within (instance t) ~chosen:t.placed ~budget:t.k);
  auto_rebalance t

(* Rebuild an engine bit-for-bit from an exported state (the server's
   snapshot file).  Both list orders are load-bearing: [flows] is the
   arrival order and [placed] the selection order, and both feed future
   decisions (serving positions, Cover_fixup's chosen order, swap
   scan order). *)
let restore ?(migration_budget = 0) ?(rebalances = 0) ?(rebalance_moves = 0)
    ~graph ~lambda ~k ~flows ~placed ~moves ~arrivals ~departures () =
  if k < 1 then invalid_arg "Incremental.restore: k must be >= 1";
  if migration_budget < 0 then
    invalid_arg "Incremental.restore: negative migration budget";
  if List.length placed > k then
    invalid_arg "Incremental.restore: placement exceeds budget";
  let n = Tdmd_graph.Digraph.vertex_count graph in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Incremental.restore: placed vertex outside the graph")
    placed;
  List.iter
    (fun f ->
      match Flow.validate graph f with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Incremental.restore: " ^ msg))
    flows;
  if moves < 0 || arrivals < 0 || departures < 0 || rebalances < 0
     || rebalance_moves < 0
  then invalid_arg "Incremental.restore: negative counters";
  let ids = Hashtbl.create (max 64 (List.length flows)) in
  let rev_flows =
    List.fold_left
      (fun acc f ->
        let id = f.Flow.id in
        if Hashtbl.mem ids id then
          invalid_arg "Incremental.restore: duplicate flow ids";
        let c = { cf = f; live = true } in
        Hashtbl.replace ids id c;
        c :: acc)
      [] flows
  in
  let oracle = Dyn.create n in
  List.iter (Dyn.add_flow oracle) flows;
  List.iter
    (fun v ->
      if Dyn.mem oracle v then
        invalid_arg "Incremental.restore: duplicate placed vertices";
      Dyn.apply_add oracle v)
    placed;
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.count tel "migration_budget" migration_budget;
  Tdmd_obs.Telemetry.count tel "moves" moves;
  Tdmd_obs.Telemetry.count tel "arrivals" arrivals;
  Tdmd_obs.Telemetry.count tel "departures" departures;
  Tdmd_obs.Telemetry.count tel "rebalances" rebalances;
  Tdmd_obs.Telemetry.count tel "rebalance_moves" rebalance_moves;
  {
    graph;
    lambda;
    k;
    migration_budget;
    rev_flows;
    dead = 0;
    ids;
    oracle;
    placed;
    moves;
    rebalances;
    rebalance_moves;
    tel;
  }
