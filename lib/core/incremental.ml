module Flow = Tdmd_flow.Flow

type t = {
  graph : Tdmd_graph.Digraph.t;
  lambda : float;
  k : int;
  mutable current : Flow.t list;  (* arrival order *)
  ids : (int, unit) Hashtbl.t;    (* id index over [current] *)
  mutable placed : int list;      (* deployment, selection order *)
  mutable moves : int;
  tel : Tdmd_obs.Telemetry.t;
}

let create ~graph ~lambda ~k =
  if k < 1 then invalid_arg "Incremental.create: k must be >= 1";
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  {
    graph;
    lambda;
    k;
    current = [];
    ids = Hashtbl.create 64;
    placed = [];
    moves = 0;
    tel;
  }

let instance t =
  Instance.make ~graph:t.graph ~flows:t.current ~lambda:t.lambda

let placement t = Placement.of_list t.placed

let placed_order t = t.placed

(* Rebuild an engine bit-for-bit from an exported state (the server's
   snapshot file).  Both list orders are load-bearing: [flows] is the
   arrival order and [placed] the selection order, and both feed future
   decisions (append positions, Cover_fixup's chosen order). *)
let restore ~graph ~lambda ~k ~flows ~placed ~moves ~arrivals ~departures =
  if k < 1 then invalid_arg "Incremental.restore: k must be >= 1";
  if List.length placed > k then
    invalid_arg "Incremental.restore: placement exceeds budget";
  let n = Tdmd_graph.Digraph.vertex_count graph in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Incremental.restore: placed vertex outside the graph")
    placed;
  List.iter
    (fun f ->
      match Flow.validate graph f with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Incremental.restore: " ^ msg))
    flows;
  let ids = Hashtbl.create (max 64 (List.length flows)) in
  List.iter
    (fun f ->
      let id = f.Flow.id in
      if Hashtbl.mem ids id then
        invalid_arg "Incremental.restore: duplicate flow ids";
      Hashtbl.replace ids id ())
    flows;
  if moves < 0 || arrivals < 0 || departures < 0 then
    invalid_arg "Incremental.restore: negative counters";
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.count tel "moves" moves;
  Tdmd_obs.Telemetry.count tel "arrivals" arrivals;
  Tdmd_obs.Telemetry.count tel "departures" departures;
  { graph; lambda; k; current = flows; ids; placed; moves; tel }

let flows t = t.current
let mem_flow t id = Hashtbl.mem t.ids id
let flow_count t = Hashtbl.length t.ids
let bandwidth t = Bandwidth.total (instance t) (placement t)
let feasible t = Allocation.is_feasible (instance t) (placement t)
let moves t = t.moves
let telemetry t = t.tel

let set_placed t placed =
  let before = Placement.of_list t.placed in
  let after = Placement.of_list placed in
  let added =
    List.length (List.filter (fun v -> not (Placement.mem before v)) (Placement.to_list after))
  in
  let removed =
    List.length (List.filter (fun v -> not (Placement.mem after v)) (Placement.to_list before))
  in
  t.moves <- t.moves + added + removed;
  Tdmd_obs.Telemetry.count t.tel "moves" (added + removed);
  t.placed <- placed

let best_marginal inst placed =
  let n = Instance.vertex_count inst in
  let p = Placement.of_list placed in
  let best = ref (-1) and best_gain = ref 1e-9 in
  for v = 0 to n - 1 do
    if not (Placement.mem p v) then begin
      let g = Bandwidth.marginal inst p v in
      if g > !best_gain then begin
        best := v;
        best_gain := g
      end
    end
  done;
  if !best < 0 then None else Some !best

let arrive t f =
  if Hashtbl.mem t.ids f.Flow.id then
    invalid_arg "Incremental.arrive: duplicate flow id";
  (match Flow.validate t.graph f with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Incremental.arrive: " ^ msg));
  Tdmd_obs.Telemetry.count t.tel "arrivals" 1;
  t.current <- t.current @ [ f ];
  Hashtbl.replace t.ids f.Flow.id ();
  let inst = instance t in
  if not (Allocation.is_feasible inst (placement t)) then begin
    (* Prefer serving the new flow at its highest-marginal on-path
       vertex while budget remains, then let the shared fix-up restore
       feasibility for anything else (including flows stranded by an
       earlier budget-exhausted event). *)
    let chosen =
      if List.length t.placed < t.k then begin
        let candidates = Array.to_list f.Flow.path in
        let p = placement t in
        let best =
          Tdmd_prelude.Listx.max_by
            (fun v -> Bandwidth.marginal inst p v)
            candidates
        in
        t.placed @ [ best ]
      end
      else t.placed
    in
    set_placed t (Cover_fixup.within inst ~chosen ~budget:t.k)
  end

let depart t id =
  Tdmd_obs.Telemetry.count t.tel "departures" 1;
  t.current <- List.filter (fun f -> f.Flow.id <> id) t.current;
  Hashtbl.remove t.ids id;
  let inst = instance t in
  (* Boxes that serve nobody are pure waste now. *)
  let p = placement t in
  let servers =
    Array.to_list (Allocation.all inst p)
    |> List.filter_map (function
         | Allocation.Served_at { vertex; _ } -> Some vertex
         | Allocation.Unserved -> None)
  in
  let useful = List.filter (fun v -> List.mem v servers) t.placed in
  if List.length useful < List.length t.placed then set_placed t useful;
  (* Spend freed budget where it helps. *)
  (if List.length t.placed < t.k then begin
     match best_marginal inst t.placed with
     | Some v -> set_placed t (t.placed @ [ v ])
     | None -> ()
   end);
  (* A departure can also unlock feasibility denied at a previous
     budget-exhausted event. *)
  if not (Allocation.is_feasible inst (placement t)) then
    set_placed t (Cover_fixup.within inst ~chosen:t.placed ~budget:t.k)
