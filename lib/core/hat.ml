module Rt = Tdmd_tree.Rooted_tree

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  merges : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

(* The per-instance tables every Δb evaluation needs: built once and
   shared by [run] and the public [delta_b] (which used to rebuild the
   O(n log n) LCA table on every call). *)
type ctx = {
  general : Instance.t;
  lca : Tdmd_tree.Lca.t;
}

let context inst =
  {
    general = Instance.Tree.to_general inst;
    lca = Tdmd_tree.Lca.build inst.Instance.Tree.tree;
  }

let merged_placement ctx placement i j =
  let a = Tdmd_tree.Lca.query ctx.lca i j in
  Placement.add (Placement.remove (Placement.remove placement i) j) a

(* Δb(i,j) = b(after) − b(before) = (1−λ)·(dim_before − dim_after), with
   both volumes integers — so the naive and incremental paths produce the
   same float bit pattern, and λ = 0.5 instances stay exact. *)
let scale ctx d = (1.0 -. ctx.general.Instance.lambda) *. float_of_int d

let delta_naive ctx placement i j =
  let before = Bandwidth.diminished_volume ctx.general placement in
  let after =
    Bandwidth.diminished_volume ctx.general (merged_placement ctx placement i j)
  in
  scale ctx (before - after)

let delta_b inst =
  let ctx = context inst in
  fun placement i j -> delta_naive ctx placement i j

let run ?(incremental = true) ~k inst =
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.span_open tel "hat";
  let tree = inst.Instance.Tree.tree in
  let ctx = context inst in
  let leaves = Rt.leaves tree in
  let placement = ref (Placement.of_list leaves) in
  (* Mirror of [!placement] answering Δb in O(flows through i, j, lca)
     via remove/remove/add probes rolled back with [undo]. *)
  let oracle = if incremental then Some (Inc_oracle.of_list ctx.general leaves) else None in
  let oracle_ns = ref 0L in
  let round = ref 0 in
  let delta p i j =
    Tdmd_obs.Telemetry.count tel "delta_evals" 1;
    let t0 = Tdmd_obs.Clock.now_ns () in
    let d =
      match oracle with
      | None -> delta_naive ctx p i j
      | Some o ->
        let before = Inc_oracle.diminished_volume o in
        let a = Tdmd_tree.Lca.query ctx.lca i j in
        Inc_oracle.remove o i;
        Inc_oracle.remove o j;
        Inc_oracle.add o a;
        let after = Inc_oracle.diminished_volume o in
        Inc_oracle.undo o;
        Inc_oracle.undo o;
        Inc_oracle.undo o;
        scale ctx (before - after)
    in
    oracle_ns := Int64.add !oracle_ns (Int64.sub (Tdmd_obs.Clock.now_ns ()) t0);
    d
  in
  (* Heap of (penalty, i, j, round-stamp); ties broken by vertex ids so
     runs are deterministic (and match the paper's k = 2 walkthrough). *)
  let cmp (d1, i1, j1, _) (d2, i2, j2, _) = compare (d1, i1, j1) (d2, i2, j2) in
  let heap = Tdmd_heap.Binary_heap.create ~cmp () in
  let push_pair i j =
    let i, j = if i < j then (i, j) else (j, i) in
    Tdmd_heap.Binary_heap.push heap (delta !placement i j, i, j, !round)
  in
  let push_all_pairs () =
    let vs = Array.of_list (Placement.to_list !placement) in
    let n = Array.length vs in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        push_pair vs.(a) vs.(b)
      done
    done
  in
  push_all_pairs ();
  let merges = ref 0 in
  while Placement.size !placement > max k 1 do
    match Tdmd_heap.Binary_heap.pop heap with
    | None ->
      (* All entries went stale together; rebuild the pair set. *)
      push_all_pairs ()
    | Some (stored, i, j, stamp) ->
      if Placement.mem !placement i && Placement.mem !placement j then begin
        let fresh = if stamp = !round then stored else delta !placement i j in
        let next_is_worse =
          match Tdmd_heap.Binary_heap.peek heap with
          | None -> true
          | Some (d, _, _, _) -> fresh <= d
        in
        if stamp = !round || next_is_worse then begin
          let a = Tdmd_tree.Lca.query ctx.lca i j in
          placement := merged_placement ctx !placement i j;
          (match oracle with
          | None -> ()
          | Some o ->
            Inc_oracle.remove o i;
            Inc_oracle.remove o j;
            Inc_oracle.add o a);
          incr round;
          incr merges;
          (* Paper's heap update: pairs with i or j die (filtered lazily
             above); pairs with the LCA are inserted. *)
          List.iter
            (fun v -> if v <> a then push_pair v a)
            (Placement.to_list !placement)
        end
        else Tdmd_heap.Binary_heap.push heap (fresh, i, j, !round)
      end
  done;
  let placement = !placement in
  Tdmd_obs.Telemetry.span_close tel;
  Tdmd_obs.Telemetry.count tel "merges" !merges;
  Tdmd_obs.Telemetry.count tel "oracle_ns" (Int64.to_int !oracle_ns);
  Tdmd_obs.Telemetry.count tel "placement_size" (Placement.size placement);
  {
    placement;
    bandwidth = Bandwidth.total ctx.general placement;
    feasible = Allocation.is_feasible ctx.general placement;
    merges = !merges;
    telemetry = tel;
  }
