module Rt = Tdmd_tree.Rooted_tree

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  merges : int;
  telemetry : Tdmd_obs.Telemetry.t;
}

let merged_placement lca placement i j =
  let a = Tdmd_tree.Lca.query lca i j in
  Placement.add (Placement.remove (Placement.remove placement i) j) a

let delta_general general lca placement i j =
  let after = merged_placement lca placement i j in
  Bandwidth.total general after -. Bandwidth.total general placement

let delta_b inst placement i j =
  let lca = Tdmd_tree.Lca.build inst.Instance.Tree.tree in
  delta_general (Instance.Tree.to_general inst) lca placement i j

let run ~k inst =
  let tel = Tdmd_obs.Telemetry.create () in
  Tdmd_obs.Telemetry.count tel "budget" k;
  Tdmd_obs.Telemetry.span_open tel "hat";
  let tree = inst.Instance.Tree.tree in
  let general = Instance.Tree.to_general inst in
  let lca = Tdmd_tree.Lca.build tree in
  let placement = ref (Placement.of_list (Rt.leaves tree)) in
  let round = ref 0 in
  let delta p i j =
    Tdmd_obs.Telemetry.count tel "delta_evals" 1;
    delta_general general lca p i j
  in
  (* Heap of (penalty, i, j, round-stamp); ties broken by vertex ids so
     runs are deterministic (and match the paper's k = 2 walkthrough). *)
  let cmp (d1, i1, j1, _) (d2, i2, j2, _) = compare (d1, i1, j1) (d2, i2, j2) in
  let heap = Tdmd_heap.Binary_heap.create ~cmp () in
  let push_pair i j =
    let i, j = if i < j then (i, j) else (j, i) in
    Tdmd_heap.Binary_heap.push heap (delta !placement i j, i, j, !round)
  in
  let push_all_pairs () =
    let vs = Array.of_list (Placement.to_list !placement) in
    let n = Array.length vs in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        push_pair vs.(a) vs.(b)
      done
    done
  in
  push_all_pairs ();
  let merges = ref 0 in
  while Placement.size !placement > max k 1 do
    match Tdmd_heap.Binary_heap.pop heap with
    | None ->
      (* All entries went stale together; rebuild the pair set. *)
      push_all_pairs ()
    | Some (stored, i, j, stamp) ->
      if Placement.mem !placement i && Placement.mem !placement j then begin
        let fresh = if stamp = !round then stored else delta !placement i j in
        let next_is_worse =
          match Tdmd_heap.Binary_heap.peek heap with
          | None -> true
          | Some (d, _, _, _) -> fresh <= d
        in
        if stamp = !round || next_is_worse then begin
          let a = Tdmd_tree.Lca.query lca i j in
          placement := merged_placement lca !placement i j;
          incr round;
          incr merges;
          (* Paper's heap update: pairs with i or j die (filtered lazily
             above); pairs with the LCA are inserted. *)
          List.iter
            (fun v -> if v <> a then push_pair v a)
            (Placement.to_list !placement)
        end
        else Tdmd_heap.Binary_heap.push heap (fresh, i, j, !round)
      end
  done;
  let placement = !placement in
  Tdmd_obs.Telemetry.span_close tel;
  Tdmd_obs.Telemetry.count tel "merges" !merges;
  Tdmd_obs.Telemetry.count tel "placement_size" (Placement.size placement);
  {
    placement;
    bandwidth = Bandwidth.total general placement;
    feasible = Allocation.is_feasible general placement;
    merges = !merges;
    telemetry = tel;
  }
