(** Extension: per-middlebox processing capacity.

    The paper assumes uncapacitated middleboxes ("a middlebox does not
    have a capacity limit", Sec. 1) and cites capacity-aware placement
    as the neighbouring problem (Sallam & Ji, INFOCOM 2019).  This
    module adds the natural capacitated variant as a library extension:
    a deployed box can process at most [capacity] total flow rate.

    Allocation is no longer forced: we use the first-fit rule — flows
    in descending rate order each take the earliest deployed box on
    their path with spare capacity.  The solver is the GTP greedy run
    against this capacitated allocation (the objective is no longer
    guaranteed submodular, so the (1 − 1/e) bound does not carry over —
    an ablation bench quantifies the gap empirically). *)

type assignment = {
  served : (int * int) list;  (** (flow id, serving vertex) *)
  unserved : int list;        (** flow ids *)
  bandwidth : float;
}

val allocate : Instance.t -> capacity:int -> Placement.t -> assignment
(** First-fit capacitated allocation for a fixed deployment. *)

type report = {
  placement : Placement.t;
  bandwidth : float;
  feasible : bool;
  unserved_flows : int;
      (** deprecated alias of the ["unserved_flows"] telemetry counter *)
  telemetry : Tdmd_obs.Telemetry.t;
      (** counters ["unserved_flows"], ["allocations"], ["budget"],
          ["capacity"], ["placement_size"]; span [capacitated] *)
}

val greedy : k:int -> capacity:int -> Instance.t -> report
(** Capacitated greedy: repeatedly add the vertex whose addition lowers
    the capacitated bandwidth most (covering unserved flows counts as a
    reduction from their full-rate consumption), up to [k] boxes. *)
