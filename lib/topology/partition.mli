(** Deterministic vertex partitioner for sharding the placement service.

    A partition assigns every vertex of a topology to exactly one shard
    by multi-source BFS from a seed list (Ark hubs by default, falling
    back to the highest-degree vertices).  The assignment is a pure
    function of [(graph, seeds, shards)]: the queue runs in insertion
    order and neighbours are visited in sorted order, so a recovered or
    restarted server recomputes the identical partition. *)

type t

val shards : t -> int
(** Number of shards (>= 1). *)

val vertex_count : t -> int

val owner : t -> int -> int
(** [owner t v] is the shard owning vertex [v].
    @raise Invalid_argument if [v] is outside the graph. *)

val trivial : n:int -> t
(** The single-shard partition over [n] vertices: everything is shard 0. *)

val make : ?seeds:int list -> Tdmd_graph.Digraph.t -> shards:int -> t
(** [make ?seeds g ~shards] partitions [g]'s vertices into [shards]
    regions grown by BFS from [seeds] (seed [i] roots shard
    [i mod shards]).  With no seeds (or an empty list) the [shards]
    highest-degree vertices seed the regions.  Unreachable vertices
    fall back to shard 0.
    @raise Invalid_argument if [shards < 1] or a seed is out of range. *)

val of_ark : ?shards:int -> Ark.t -> t
(** Hub-rooted partition of an Ark topology: the hub list seeds the
    regions.  [shards] defaults to the hub count. *)

type ownership =
  | Owned of int  (** every path vertex lives in this shard *)
  | Cross of { home : int; spans : int list }
      (** the path spans [spans] (sorted, >= 2 shards); [home] is the
          shard owning the most path vertices, ties to the lowest id *)

val ownership : t -> int array -> ownership
(** Which shard(s) a flow path touches.
    @raise Invalid_argument on an empty path. *)

val counts : t -> int array
(** Vertices per shard, indexed by shard id. *)
