module G = Tdmd_graph.Digraph

type t = { shards : int; owner : int array }

let shards t = t.shards
let vertex_count t = Array.length t.owner

let owner t v =
  if v < 0 || v >= Array.length t.owner then
    invalid_arg (Printf.sprintf "Partition.owner: vertex %d outside the graph" v);
  t.owner.(v)

let trivial ~n =
  if n < 1 then invalid_arg "Partition.trivial: n must be >= 1";
  { shards = 1; owner = Array.make n 0 }

(* Deterministic seed choice when the caller has no hub list: the
   highest-degree vertices are the hubs of every topology this repo
   generates (Ark backbones, fat-tree cores), and ties break on the
   vertex id so the same graph always partitions the same way. *)
let default_seeds g ~shards =
  let n = G.vertex_count g in
  let deg v = G.out_degree g v + G.in_degree g v in
  let by_degree = List.init n (fun v -> v) in
  let by_degree =
    List.stable_sort
      (fun a b ->
        match compare (deg b) (deg a) with 0 -> compare a b | c -> c)
      by_degree
  in
  List.filteri (fun i _ -> i < shards) by_degree

(* Multi-source BFS: seed [i] roots shard [i mod shards], every vertex
   joins the shard of the first seed region to reach it.  The queue is
   processed in insertion order and neighbours in sorted order, so the
   assignment is a pure function of (graph, seeds, shards) — restarts
   and replicas always agree.  Vertices unreachable from every seed
   (impossible on the generated topologies, which are connected) fall
   back to shard 0. *)
let make ?seeds g ~shards =
  let n = G.vertex_count g in
  if shards < 1 then invalid_arg "Partition.make: shards must be >= 1";
  if shards = 1 then trivial ~n
  else begin
    let seeds =
      match seeds with
      | Some [] | None -> default_seeds g ~shards
      | Some l ->
        List.iter
          (fun v ->
            if v < 0 || v >= n then
              invalid_arg
                (Printf.sprintf "Partition.make: seed %d outside the graph" v))
          l;
        l
    in
    let owner = Array.make n (-1) in
    let q = Queue.create () in
    List.iteri
      (fun i v ->
        if owner.(v) < 0 then begin
          owner.(v) <- i mod shards;
          Queue.push v q
        end)
      seeds;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let next = List.sort_uniq compare (G.succ g u @ G.pred g u) in
      List.iter
        (fun v ->
          if owner.(v) < 0 then begin
            owner.(v) <- owner.(u);
            Queue.push v q
          end)
        next
    done;
    Array.iteri (fun v s -> if s < 0 then owner.(v) <- 0) owner;
    { shards; owner }
  end

let of_ark ?shards ark =
  let hubs = ark.Ark.hubs in
  let shards =
    match shards with Some s -> s | None -> max 1 (List.length hubs)
  in
  make ~seeds:hubs ark.Ark.graph ~shards

type ownership = Owned of int | Cross of { home : int; spans : int list }

(* A path's home is the shard owning the most of its vertices (ties to
   the lowest shard id): cross-shard flows land on the engine that sees
   most of their footprint, so most of their candidate middlebox sites
   are local ones. *)
let ownership t path =
  if Array.length path = 0 then invalid_arg "Partition.ownership: empty path";
  let counts = Array.make t.shards 0 in
  Array.iter (fun v -> counts.(owner t v) <- counts.(owner t v) + 1) path;
  let spans = ref [] and home = ref 0 in
  for s = t.shards - 1 downto 0 do
    if counts.(s) > 0 then begin
      spans := s :: !spans;
      if counts.(s) >= counts.(!home) then home := s
    end
  done;
  (* The downward sweep leaves [home] at the lowest shard with the
     maximum count only if we compare with >=; re-derive explicitly to
     keep the tie-break story honest. *)
  let home =
    let best = ref (-1) and arg = ref 0 in
    Array.iteri
      (fun s c -> if c > !best then begin best := c; arg := s end)
      counts;
    !arg
  in
  match !spans with
  | [ s ] -> Owned s
  | spans -> Cross { home; spans }

let counts t =
  let c = Array.make t.shards 0 in
  Array.iter (fun s -> c.(s) <- c.(s) + 1) t.owner;
  c
