(** Structured JSON-lines sink.

    One JSON object per line — the format every machine-readable output
    of the project shares ([--metrics-out], the bench's [BENCH_*.json]).
    Writers are trivial wrappers over a byte sink so tests can capture
    into a [Buffer.t] and production code into a channel. *)

type t

val of_channel : out_channel -> t
val of_buffer : Buffer.t -> t

val emit : t -> Json.t -> unit
(** Write one record and a newline; channel sinks flush per record so
    partially-written files are still valid JSON-lines prefixes. *)

val record :
  ?extra:(string * Json.t) list -> event:string -> Telemetry.t -> Json.t
(** Standard record shape: [{"event": ..., <extra fields>, "telemetry":
    {...}}], ready for {!emit}. *)
