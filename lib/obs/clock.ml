let now_ns () = Monotonic_clock.now ()
let ns_to_s ns = Int64.to_float ns /. 1e9
