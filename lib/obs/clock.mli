(** Monotonic clock, nanosecond resolution.

    Spans must not jump backwards with NTP adjustments, so telemetry
    timing uses CLOCK_MONOTONIC (via the bechamel stub already in the
    dependency set) rather than [Unix.gettimeofday]. *)

val now_ns : unit -> int64
(** Nanoseconds since an unspecified monotonic origin. *)

val ns_to_s : int64 -> float
(** Convenience conversion for reports. *)
