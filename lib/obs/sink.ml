type t = { write : string -> unit; flush : unit -> unit }

let of_channel oc =
  { write = (fun s -> output_string oc s); flush = (fun () -> flush oc) }

let of_buffer buf =
  { write = Buffer.add_string buf; flush = ignore }

let emit t j =
  t.write (Json.to_string j);
  t.write "\n";
  t.flush ()

let record ?(extra = []) ~event tel =
  Json.Obj ((("event", Json.String event) :: extra) @ [ ("telemetry", Telemetry.to_json tel) ])
