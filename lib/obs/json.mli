(** Minimal JSON tree: enough for telemetry records and their tests.

    The container images this project targets carry no JSON library, so
    the sink carries its own emitter and a small parser (used by the
    round-trip tests and any tooling that reads the JSON-lines files
    back).  Emission is deterministic: object fields keep insertion
    order, floats print with enough digits to round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no newlines — JSON-lines safe).
    Non-finite floats render as [null]. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing whitespace allowed.  Numbers without
    [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_float : t -> float option
(** Numeric coercion of [Int] and [Float]. *)
