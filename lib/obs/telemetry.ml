type value = Int of int | Float of float | Bool of bool | String of string

type span = {
  label : string;
  start_ns : int64;
  dur_ns : int64;
  children : span list;
}

type open_span = {
  olabel : string;
  ostart : int64;
  mutable ochildren : span list;  (* reversed *)
}

type t = {
  table : (string, value) Hashtbl.t;
  mutable order : string list;  (* reversed first-write order *)
  mutable roots : span list;    (* reversed *)
  mutable stack : open_span list;  (* innermost first *)
}

let create () =
  { table = Hashtbl.create 16; order = []; roots = []; stack = [] }

let set t name v =
  if not (Hashtbl.mem t.table name) then t.order <- name :: t.order;
  Hashtbl.replace t.table name v

let find t name = Hashtbl.find_opt t.table name

let count t name n =
  match find t name with
  | None -> set t name (Int n)
  | Some (Int prev) -> Hashtbl.replace t.table name (Int (prev + n))
  | Some _ -> invalid_arg ("Telemetry.count: " ^ name ^ " is not a counter")

let get_count t name =
  match find t name with Some (Int n) -> n | _ -> 0

let gauge t name x = set t name (Float x)

let metrics t =
  List.rev_map (fun name -> (name, Hashtbl.find t.table name)) t.order

let span_open t label =
  t.stack <- { olabel = label; ostart = Clock.now_ns (); ochildren = [] } :: t.stack

let span_close t =
  match t.stack with
  | [] -> invalid_arg "Telemetry.span_close: no open span"
  | top :: rest ->
    let span =
      {
        label = top.olabel;
        start_ns = top.ostart;
        dur_ns = Int64.sub (Clock.now_ns ()) top.ostart;
        children = List.rev top.ochildren;
      }
    in
    t.stack <- rest;
    (match rest with
    | parent :: _ -> parent.ochildren <- span :: parent.ochildren
    | [] -> t.roots <- span :: t.roots)

let with_span t label f =
  span_open t label;
  Fun.protect ~finally:(fun () -> span_close t) f

let spans t = List.rev t.roots

let merge ~into src =
  List.iter
    (fun (name, v) ->
      match v with
      | Int n -> count into name n
      | v -> set into name v)
    (metrics src);
  List.iter (fun s -> into.roots <- s :: into.roots) (spans src)

let json_of_value = function
  | Int n -> Json.Int n
  | Float x -> Json.Float x
  | Bool b -> Json.Bool b
  | String s -> Json.String s

let rec json_of_span s =
  Json.Obj
    [
      ("label", Json.String s.label);
      ("dur_ns", Json.Int (Int64.to_int s.dur_ns));
      ("children", Json.List (List.map json_of_span s.children));
    ]

let to_json t =
  Json.Obj
    [
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) (metrics t)));
      ("spans", Json.List (List.map json_of_span (spans t)));
    ]

let pp_value ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Float x -> Format.fprintf ppf "%g" x
  | Bool b -> Format.pp_print_bool ppf b
  | String s -> Format.pp_print_string ppf s

let pp ppf t =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-24s %a@\n" name pp_value v)
    (metrics t);
  let rec pp_span indent s =
    Format.fprintf ppf "%s%s %.3f ms@\n" indent s.label
      (Int64.to_float s.dur_ns /. 1e6);
    List.iter (pp_span (indent ^ "  ")) s.children
  in
  List.iter (pp_span "") (spans t)
