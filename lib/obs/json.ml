type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_nan x || Float.abs x = infinity then "null"
  else begin
    (* Shortest representation that still round-trips the double; keep a
       decimal point so floats stay floats when parsed back. *)
    let s = Printf.sprintf "%.12g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  end

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  if
    c.pos + String.length word <= String.length c.s
    && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  (* Codepoint to UTF-8; surrogates were combined by the caller. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek c with
      | Some ('0' .. '9' as ch) -> Char.code ch - Char.code '0'
      | Some ('a' .. 'f' as ch) -> Char.code ch - Char.code 'a' + 10
      | Some ('A' .. 'F' as ch) -> Char.code ch - Char.code 'A' + 10
      | _ -> fail c "expected hex digit"
    in
    advance c;
    v := (!v * 16) + d
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        let hi = hex4 c in
        let code =
          if hi >= 0xD800 && hi <= 0xDBFF then begin
            expect c '\\';
            expect c 'u';
            let lo = hex4 c in
            0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
          end
          else hi
        in
        utf8_of_code buf code
      | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
      advance c;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some x -> Float x
    | None -> fail c "bad number"
  else begin
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail c "bad number")
  end

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length s then Ok v else Error "trailing garbage"
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None
