(** Per-run solver telemetry (the observability record every solver
    returns).

    One [t] collects three kinds of signal for a single solver run:

    - {b spans}: nestable monotonic-clock timers with labels, recorded
      as a forest in completion order — where the time went;
    - {b counters}: monotonically accumulated integers (oracle calls,
      DP states, merge rounds, …) — how much work was done;
    - {b gauges / values}: last-write-wins key–value metrics (budget,
      theta, placement size, …) — the run's parameters and outputs.

    All metrics share one key space; counters are [Int]-valued and
    gauges [Float]-valued by convention.  A [t] is cheap to create and
    carries no global state, so solvers allocate one per run and the
    harness aggregates them. *)

type value = Int of int | Float of float | Bool of bool | String of string

type span = {
  label : string;
  start_ns : int64;  (** monotonic, relative to an unspecified origin *)
  dur_ns : int64;
  children : span list;  (** in start order *)
}

type t

val create : unit -> t

(** {1 Counters and gauges} *)

val count : t -> string -> int -> unit
(** [count t name n] adds [n] to counter [name] (created at 0).
    @raise Invalid_argument if [name] holds a non-[Int] value. *)

val get_count : t -> string -> int
(** Current counter total; 0 when absent. *)

val gauge : t -> string -> float -> unit
(** Set gauge [name] (last write wins). *)

val set : t -> string -> value -> unit
(** Set an arbitrary key–value metric (last write wins). *)

val find : t -> string -> value option
val metrics : t -> (string * value) list
(** All metrics in first-write order. *)

(** {1 Spans} *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Time [f] under a span nested in the innermost open span; the span
    is closed even if [f] raises. *)

val span_open : t -> string -> unit
val span_close : t -> unit
(** Manual variants for non-lexical lifetimes.
    @raise Invalid_argument when no span is open. *)

val spans : t -> span list
(** Completed root spans, in start order.  Open spans are invisible
    until closed. *)

(** {1 Aggregation and output} *)

val merge : into:t -> t -> unit
(** Fold a sub-run into an enclosing run: counters add, other metrics
    overwrite, completed root spans append. *)

val to_json : t -> Json.t
(** [{"metrics": {...}, "spans": [...]}] with spans as
    [{"label", "dur_ns", "children"}] trees. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering: one metric per line, then the span tree
    with millisecond durations (the CLI's [--trace] output). *)
