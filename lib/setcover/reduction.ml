module G = Tdmd_graph.Digraph
module Flow = Tdmd_flow.Flow

let to_tdmd (sc : Setcover.t) =
  let n_sets = Array.length sc.Setcover.sets in
  let g = G.create n_sets in
  for u = 0 to n_sets - 1 do
    for v = 0 to n_sets - 1 do
      if u <> v then G.add_edge g u v
    done
  done;
  let flows =
    List.init sc.Setcover.universe (fun e ->
        let path =
          List.filter
            (fun i -> List.mem e sc.Setcover.sets.(i))
            (List.init n_sets (fun i -> i))
        in
        if path = [] then
          invalid_arg "Reduction.to_tdmd: element contained in no set";
        Flow.make ~id:e ~rate:1 ~path)
  in
  (g, flows)

let of_flows ~vertex_count flows =
  let indexed = List.mapi (fun i f -> (i, f)) flows in
  let sets =
    List.init vertex_count (fun v ->
        List.filter_map
          (fun (i, f) -> if Flow.mem_vertex f v then Some i else None)
          indexed)
  in
  Setcover.make ~universe:(List.length flows) sets

let feasible_exact ~vertex_count ~k flows =
  Setcover.decision (of_flows ~vertex_count flows) ~k

let min_middleboxes_exact ~vertex_count flows =
  match Setcover.exact (of_flows ~vertex_count flows) with
  | Some cover -> List.length cover
  | None -> invalid_arg "Reduction.min_middleboxes_exact: uncoverable flows"
