open Tdmd_prelude

type incremental = {
  restart : unit -> unit;
  gain : int -> float;
  commit : int -> unit;
}

type oracle = {
  ground : int;
  value : int list -> float;
  incremental : incremental option;
}

let make ~ground ~value ?incremental () = { ground; value; incremental }

type result = {
  chosen : int list;
  gains : float list;
  oracle_calls : int;
}

let greedy_incremental ~stop ~k ~ground inc =
  inc.restart ();
  let calls = ref 0 in
  let gain v =
    incr calls;
    inc.gain v
  in
  let in_set = Array.make (max ground 1) false in
  let rec round chosen gains =
    if List.length chosen >= k || stop (List.rev chosen) then
      { chosen = List.rev chosen; gains = List.rev gains; oracle_calls = !calls }
    else begin
      let best = ref (-1) and best_gain = ref 1e-12 in
      for v = 0 to ground - 1 do
        if not in_set.(v) then begin
          let g = gain v in
          if g > !best_gain then begin
            best := v;
            best_gain := g
          end
        end
      done;
      if !best < 0 then
        { chosen = List.rev chosen; gains = List.rev gains; oracle_calls = !calls }
      else begin
        inc.commit !best;
        in_set.(!best) <- true;
        round (!best :: chosen) (!best_gain :: gains)
      end
    end
  in
  round [] []

let greedy ?(stop = fun _ -> false) ~k oracle =
  match oracle.incremental with
  | Some inc -> greedy_incremental ~stop ~k ~ground:oracle.ground inc
  | None ->
    let calls = ref 0 in
    let value s =
      incr calls;
      oracle.value s
    in
    let rec round chosen gains base =
      if List.length chosen >= k || stop (List.rev chosen) then
        { chosen = List.rev chosen; gains = List.rev gains; oracle_calls = !calls }
      else begin
        (* Exact comparison, lowest index wins ties — identical tie
           handling to [lazy_greedy], so the two return the same set. *)
        let best = ref (-1) and best_gain = ref 1e-12 in
        for v = 0 to oracle.ground - 1 do
          if not (List.mem v chosen) then begin
            let g = value (v :: chosen) -. base in
            if g > !best_gain then begin
              best := v;
              best_gain := g
            end
          end
        done;
        if !best < 0 then
          { chosen = List.rev chosen; gains = List.rev gains; oracle_calls = !calls }
        else
          round (!best :: chosen) (!best_gain :: gains) (base +. !best_gain)
      end
    in
    round [] [] (value [])

let lazy_greedy_incremental ~stop ~k ~ground inc =
  inc.restart ();
  let calls = ref 0 in
  let gain v =
    incr calls;
    inc.gain v
  in
  let cmp (g1, v1) (g2, v2) = if g1 = g2 then compare v1 v2 else compare g2 g1 in
  let heap = Tdmd_heap.Binary_heap.create ~cmp () in
  for v = 0 to ground - 1 do
    Tdmd_heap.Binary_heap.push heap (infinity, v)
  done;
  let rec select chosen gains =
    if List.length chosen >= k || stop (List.rev chosen) then (chosen, gains)
    else begin
      match Tdmd_heap.Binary_heap.pop heap with
      | None -> (chosen, gains)
      | Some (_, v) ->
        let fresh = gain v in
        (* Same acceptance rule as the naive CELF path below: the fresh
           gain must beat the next cached upper bound, ties deferring to
           the lower index exactly as [greedy] does. *)
        let accept =
          match Tdmd_heap.Binary_heap.peek heap with
          | None -> true
          | Some (g_next, v_next) -> fresh > g_next || (fresh = g_next && v < v_next)
        in
        if accept then begin
          if fresh <= 1e-12 then (chosen, gains)
          else begin
            inc.commit v;
            select (v :: chosen) (fresh :: gains)
          end
        end
        else begin
          Tdmd_heap.Binary_heap.push heap (fresh, v);
          select chosen gains
        end
    end
  in
  let chosen, gains = select [] [] in
  { chosen = List.rev chosen; gains = List.rev gains; oracle_calls = !calls }

let lazy_greedy_naive ?(stop = fun _ -> false) ~k oracle =
  let calls = ref 0 in
  let value s =
    incr calls;
    oracle.value s
  in
  let base = ref (value []) in
  (* Max-heap by cached gain; stale entries are re-evaluated on pop.
     Ties and float noise: an entry is "fresh enough" when re-evaluation
     cannot beat the next candidate. *)
  let cmp (g1, v1) (g2, v2) =
    if g1 = g2 then compare v1 v2 else compare g2 g1
  in
  let heap = Tdmd_heap.Binary_heap.create ~cmp () in
  for v = 0 to oracle.ground - 1 do
    Tdmd_heap.Binary_heap.push heap (infinity, v)
  done;
  let rec select chosen gains =
    if List.length chosen >= k || stop (List.rev chosen) then (chosen, gains)
    else begin
      match Tdmd_heap.Binary_heap.pop heap with
      | None -> (chosen, gains)
      | Some (_, v) ->
        let fresh = value (v :: chosen) -. !base in
        (* Cached gains are upper bounds (submodularity), so [v] is the
           true argmax when its fresh gain still beats the next cached
           gain.  The acceptance test is exactly the heap order (ties
           defer to the lower index, matching [greedy]); anything softer
           can disagree with the ordering and re-pop the same entry
           forever. *)
        let accept =
          match Tdmd_heap.Binary_heap.peek heap with
          | None -> true
          | Some (g_next, v_next) -> fresh > g_next || (fresh = g_next && v < v_next)
        in
        if accept then begin
          if fresh <= 1e-12 then (chosen, gains)
          else begin
            base := !base +. fresh;
            select (v :: chosen) (fresh :: gains)
          end
        end
        else begin
          Tdmd_heap.Binary_heap.push heap (fresh, v);
          select chosen gains
        end
    end
  in
  let chosen, gains = select [] [] in
  { chosen = List.rev chosen; gains = List.rev gains; oracle_calls = !calls }

let lazy_greedy ?(stop = fun _ -> false) ~k oracle =
  match oracle.incremental with
  | Some inc -> lazy_greedy_incremental ~stop ~k ~ground:oracle.ground inc
  | None -> lazy_greedy_naive ~stop ~k oracle

let random_subset rng n ~avoid =
  let s = ref [] in
  for v = 0 to n - 1 do
    if v <> avoid && Rng.bool rng then s := v :: !s
  done;
  !s

let check_monotone rng ~trials oracle =
  let rec go t =
    if t = 0 then Ok ()
    else begin
      let v = Rng.int rng oracle.ground in
      let s = random_subset rng oracle.ground ~avoid:v in
      let fs = oracle.value s and fsv = oracle.value (v :: s) in
      if fsv +. 1e-9 < fs then
        Error
          (Printf.sprintf "monotonicity violated: f(S)=%g > f(S+{%d})=%g" fs v fsv)
      else go (t - 1)
    end
  in
  go trials

let check_submodular rng ~trials oracle =
  let rec go t =
    if t = 0 then Ok ()
    else begin
      let v = Rng.int rng oracle.ground in
      let small = random_subset rng oracle.ground ~avoid:v in
      let extra = random_subset rng oracle.ground ~avoid:v in
      let large = List.sort_uniq compare (small @ extra) in
      let gain s = oracle.value (v :: s) -. oracle.value s in
      if gain small +. 1e-9 < gain large then
        Error
          (Printf.sprintf
             "submodularity violated at element %d: gain(small)=%g < gain(large)=%g" v
             (gain small) (gain large))
      else go (t - 1)
    end
  in
  go trials
