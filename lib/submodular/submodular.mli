(** Monotone submodular maximisation under a cardinality constraint.

    The TDMD decrement function d(P) is monotone submodular (paper
    Theorem 2), so GTP is the classical greedy with its (1 − 1/e)
    guarantee (Theorem 3).  This module factors that machinery out: the
    ground set is [0 .. n-1] and the objective is an oracle over element
    lists.  [lazy_greedy] (CELF; Leskovec et al., KDD 2007) exploits
    submodularity to skip re-evaluations and returns *the same set* as
    [greedy] — an ablation bench measures the saved oracle calls. *)

type incremental = {
  restart : unit -> unit;  (** reset the committed set to ∅ *)
  gain : int -> float;     (** marginal value of an element vs. the committed set *)
  commit : int -> unit;    (** accept an element into the committed set *)
}
(** Optional fast path for oracles that can answer marginals against a
    mutable committed set without re-evaluating from scratch (the TDMD
    decrement backs this with {e Inc_oracle}: O(flows through v) per
    [gain] instead of O(|F|·avg-path-length)).  The greedy drivers use
    it commit-on-accept: [gain] for every candidate probe, [commit] only
    for the accepted element.  [gain] must return exactly
    [value (v :: committed) -. value committed] — the differential tests
    assert bit-for-bit agreement on integer-valued objectives. *)

type oracle = {
  ground : int;                 (** ground-set size *)
  value : int list -> float;    (** set function; [value []] may be non-zero *)
  incremental : incremental option;
      (** fast marginal interface; [None] forces from-scratch evaluation *)
}

val make :
  ground:int -> value:(int list -> float) -> ?incremental:incremental -> unit -> oracle
(** Plain constructor; [incremental] defaults to [None]. *)

type result = {
  chosen : int list;            (** in selection order *)
  gains : float list;           (** marginal gain of each selection *)
  oracle_calls : int;
}

val greedy :
  ?stop:(int list -> bool) -> k:int -> oracle -> result
(** Plain adaptive greedy: repeatedly add the element with the largest
    marginal gain (lowest index wins ties) until [k] elements are chosen,
    no element has positive gain, or [stop chosen] becomes true (checked
    after each selection — GTP uses it for "all flows processed").  When
    the oracle carries an {!incremental} interface, marginals come from
    it (identical selections whenever [gain] is exact; far cheaper). *)

val lazy_greedy :
  ?stop:(int list -> bool) -> k:int -> oracle -> result
(** CELF lazy evaluation.  Identical output to {!greedy} for submodular
    objectives (ties broken by index, like [greedy]); typically far
    fewer oracle calls. *)

val check_monotone :
  Tdmd_prelude.Rng.t -> trials:int -> oracle -> (unit, string) Stdlib.result
(** Randomised monotonicity check: f(S) ≤ f(S ∪ {v}).  Used by the
    property tests to validate Theorem 2 empirically. *)

val check_submodular :
  Tdmd_prelude.Rng.t -> trials:int -> oracle -> (unit, string) Stdlib.result
(** Randomised diminishing-returns check:
    f(S ∪ {v}) − f(S) ≥ f(S' ∪ {v}) − f(S') for sampled S ⊆ S'. *)
