let recommended_domains () = min 8 (Domain.recommended_domain_count ())

exception Worker_failure of exn

let map ?(domains = 1) f xs =
  match xs with
  | [] -> []
  | _ when domains <= 1 -> List.map f xs
  | _ ->
    let tasks = Array.of_list xs in
    let n = Array.length tasks in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Option.is_none (Atomic.get failure) then begin
          (match f tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            (* First failure wins; a plain [set] would let a later domain's
               exception overwrite the one that actually aborted the run. *)
            ignore (Atomic.compare_and_set failure None (Some (Worker_failure e))));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (Worker_failure e) -> raise e
    | Some e -> raise e
    | None -> ());
    Array.to_list (Array.map Option.get results)

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)
