let recommended_domains () = min 8 (Domain.recommended_domain_count ())

exception Worker_failure of exn

let map ?(domains = 1) f xs =
  match xs with
  | [] -> []
  | _ when domains <= 1 -> List.map f xs
  | _ ->
    let tasks = Array.of_list xs in
    let n = Array.length tasks in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Option.is_none (Atomic.get failure) then begin
          (match f tasks.(i) with
          (* tdmd-analyze: allow domain-escape — each slot is written by exactly one domain (fetch_and_add hands out distinct indices) and read only after every domain is joined *)
          | v -> results.(i) <- Some v
          | exception e ->
            (* First failure wins; a plain [set] would let a later domain's
               exception overwrite the one that actually aborted the run. *)
            ignore (Atomic.compare_and_set failure None (Some (Worker_failure e))));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (Worker_failure e) -> raise e
    | Some e -> raise e
    | None -> ());
    Array.to_list (Array.map Option.get results)

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)

module Pool = struct
  type t = {
    jobs : (unit -> unit) Queue.t;
    mutex : Mutex.t;
    nonempty : Condition.t;
    capacity : int;
    on_error : exn -> unit;
    cancelled : bool Atomic.t;
    mutable accepting : bool;
    mutable workers : unit Domain.t list;
  }

  (* Process-wide because a server may own several pools (engine workers,
     portfolio members) and its stats endpoint wants one number. *)
  let errors = Atomic.make 0
  let job_errors () = Atomic.get errors

  let default_on_error e =
    Atomic.incr errors;
    (* tdmd-lint: allow no-direct-io — crashed jobs must leave a trace even with no telemetry sink wired up *)
    Printf.eprintf "tdmd pool: job raised %s\n%!" (Printexc.to_string e)

  let worker t () =
    let rec loop () =
      (* Drain mode: keep executing whatever is still queued, exit only
         once the queue is empty. *)
      let job =
        Locked.with_lock t.mutex (fun () ->
            while Queue.is_empty t.jobs && t.accepting do
              Condition.wait t.nonempty t.mutex
            done;
            if Queue.is_empty t.jobs then None else Some (Queue.pop t.jobs))
      in
      match job with
      | None -> ()
      | Some job ->
        (try job () with e -> t.on_error e);
        loop ()
    in
    loop ()

  let create ?(on_error = default_on_error) ~domains ~capacity () =
    if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
    if capacity < 1 then invalid_arg "Pool.create: capacity must be >= 1";
    let t =
      {
        jobs = Queue.create ();
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        capacity;
        on_error;
        cancelled = Atomic.make false;
        accepting = true;
        workers = [];
      }
    in
    t.workers <- List.init domains (fun _ -> Domain.spawn (worker t));
    t

  let submit t job =
    Locked.with_lock t.mutex (fun () ->
        let ok = t.accepting && Queue.length t.jobs < t.capacity in
        if ok then begin
          Queue.push job t.jobs;
          Condition.signal t.nonempty
        end;
        ok)

  let queue_depth t =
    Locked.with_lock t.mutex (fun () -> Queue.length t.jobs)

  let cancel t =
    Atomic.set t.cancelled true;
    Locked.with_lock t.mutex (fun () ->
        t.accepting <- false;
        Queue.clear t.jobs;
        Condition.broadcast t.nonempty)

  let cancelling t = Atomic.get t.cancelled

  let shutdown t =
    Locked.with_lock t.mutex (fun () ->
        t.accepting <- false;
        Condition.broadcast t.nonempty);
    List.iter Domain.join t.workers;
    t.workers <- []
end
