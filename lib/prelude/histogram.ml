type scale = Linear | Log

type t = {
  lo : float;
  hi : float;
  scale : scale;
  bins : int array;
  mutable total : int;
}

let create ?(scale = Linear) ~lo ~hi ~bins () =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: empty range";
  if scale = Log && lo <= 0.0 then
    invalid_arg "Histogram.create: log scale needs lo > 0";
  { lo; hi; scale; bins = Array.make bins 0; total = 0 }

let bin_index t x =
  let n = Array.length t.bins in
  let raw =
    match t.scale with
    | Linear -> int_of_float (Float.of_int n *. ((x -. t.lo) /. (t.hi -. t.lo)))
    | Log ->
      if x <= t.lo then 0
      else
        int_of_float
          (Float.of_int n *. (Float.log (x /. t.lo) /. Float.log (t.hi /. t.lo)))
  in
  max 0 (min (n - 1) raw)

let add t x =
  t.bins.(bin_index t x) <- t.bins.(bin_index t x) + 1;
  t.total <- t.total + 1

let count t = t.total
let bin_counts t = Array.copy t.bins

let bin_edges t =
  let n = Array.length t.bins in
  match t.scale with
  | Linear ->
    let step = (t.hi -. t.lo) /. float_of_int n in
    Array.init n (fun i ->
        (t.lo +. (float_of_int i *. step), t.lo +. (float_of_int (i + 1) *. step)))
  | Log ->
    let r = Float.pow (t.hi /. t.lo) (1.0 /. float_of_int n) in
    Array.init n (fun i ->
        (t.lo *. Float.pow r (float_of_int i), t.lo *. Float.pow r (float_of_int (i + 1))))

let percentile t p =
  if t.total = 0 then nan
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let target = p *. float_of_int t.total in
    let edges = bin_edges t in
    let rec go i cum =
      if i >= Array.length t.bins then snd edges.(Array.length t.bins - 1)
      else begin
        let c = t.bins.(i) in
        let cum' = cum +. float_of_int c in
        if cum' >= target && c > 0 then begin
          let lo, hi = edges.(i) in
          let frac = if c = 0 then 0.0 else (target -. cum) /. float_of_int c in
          lo +. (Float.max 0.0 (Float.min 1.0 frac) *. (hi -. lo))
        end
        else go (i + 1) cum'
      end
    in
    go 0 0.0
  end

let render ?(width = 40) t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left max 1 t.bins in
  Array.iteri
    (fun i c ->
      let lo, hi = (bin_edges t).(i) in
      let bar = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%8.3g, %8.3g) %6d %s\n" lo hi c (String.make bar '#')))
    t.bins;
  Buffer.contents buf
