type t = { header : string array; mutable rows : string array list }

let create header = { header = Array.of_list header; rows = [] }

let add_row t cells =
  let n = Array.length t.header in
  let row = Array.make n "" in
  List.iteri
    (fun i c ->
      if i >= n then invalid_arg "Table.add_row: too many cells";
      row.(i) <- c)
    cells;
  t.rows <- row :: t.rows

let widths t =
  let n = Array.length t.header in
  let w = Array.map String.length t.header in
  List.iter
    (fun row ->
      for i = 0 to n - 1 do
        if String.length row.(i) > w.(i) then w.(i) <- String.length row.(i)
      done)
    t.rows;
  w

let pad s width = s ^ String.make (width - String.length s) ' '

let to_string t =
  let w = widths t in
  let buf = Buffer.create 256 in
  let emit_row row =
    Array.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad c w.(i)))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  Array.iter
    (fun width ->
      Buffer.add_string buf (String.make width '-');
      Buffer.add_string buf "  ")
    w;
  Buffer.add_char buf '\n';
  List.iter emit_row (List.rev t.rows);
  Buffer.contents buf

(* tdmd-lint: allow no-direct-io — console rendering is this module's contract; the CLI calls it on purpose *)
let print t = print_string (to_string t)

let csv_cell c =
  let needs_quote =
    String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c
  in
  if needs_quote then begin
    let buf = Buffer.create (String.length c + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf ch)
      c;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else c

let to_csv t =
  let buf = Buffer.create 256 in
  let emit row =
    Array.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (csv_cell c))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.header;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

let cell_float x = Printf.sprintf "%.4g" x

let cell_pm mean std = Printf.sprintf "%.4g ± %.2g" mean std
