(** Multicore work distribution over OCaml 5 domains.

    A minimal deterministic parallel map: tasks are indexed, a shared
    atomic counter hands indices to worker domains, and each result is
    written to its own slot — so the output order is always the input
    order regardless of scheduling.  Used by the experiment harness to
    spread independent seeded repetitions across cores (bandwidth
    results are bit-identical to the sequential run because every
    repetition's RNG is pre-split before spawning; only wall-clock
    *timing* measurements become noisier under contention). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] evaluates [f] over [xs] on up to [domains]
    domains (default: sequential when [domains <= 1]).  [f] must not
    rely on shared mutable state.  Exceptions from [f] are re-raised in
    the caller after all domains join. *)

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit

(** Long-lived worker pool with a bounded job queue.

    Unlike {!map} (fork/join over a fixed task list), a [Pool.t] keeps
    its domains alive and accepts jobs one at a time — the shape a
    request-serving daemon needs.  The queue is bounded: {!Pool.submit}
    never blocks, it {e rejects} when the queue is full, which is the
    backpressure signal ([tdmd.server] turns it into a 503-style
    response).  Jobs are [unit -> unit] thunks and must do their own
    result delivery; exceptions escaping a job are routed to the pool's
    [on_error] callback and never kill a worker.  The default callback
    bumps the process-wide {!Pool.job_errors} counter and writes one
    stderr line — a silently swallowed job crash is never the default. *)
module Pool : sig
  type t

  val create :
    ?on_error:(exn -> unit) -> domains:int -> capacity:int -> unit -> t
  (** Spawn [domains] worker domains sharing one FIFO queue holding at
      most [capacity] pending jobs (jobs being executed do not count).
      @raise Invalid_argument when [domains < 1] or [capacity < 1]. *)

  val submit : t -> (unit -> unit) -> bool
  (** Enqueue a job; [false] when the queue is at capacity or the pool
      is shutting down (the job is dropped — the caller owns the
      rejection path). *)

  val queue_depth : t -> int
  (** Jobs enqueued and not yet picked up by a worker. *)

  val cancel : t -> unit
  (** Cooperative cancellation: stop accepting, discard jobs still
      queued, and raise the {!cancelling} flag that long-running jobs
      are expected to poll.  Does {e not} join the workers — follow up
      with {!shutdown} to wait for in-flight jobs to notice the flag
      and return.  Idempotent. *)

  val cancelling : t -> bool
  (** True once {!cancel} has been called.  Cheap (one [Atomic.get]);
      long-running jobs poll it between steps and return early. *)

  val shutdown : t -> unit
  (** Graceful drain: stop accepting, let workers finish every job
      already queued, then join them.  Idempotent. *)

  val job_errors : unit -> int
  (** Process-wide count of job exceptions routed to the {e default}
      [on_error] (custom callbacks do their own accounting).  Exposed
      in [tdmd serve] stats as [pool_job_errors]. *)
end
