type policy = {
  base : float;
  cap : float;
  max_attempts : int;
  budget : float;
}

let policy ?(base = 0.05) ?(cap = 1.0) ?(max_attempts = 0) ?(budget = 10.0) () =
  if base <= 0.0 then invalid_arg "Backoff.policy: base must be > 0";
  if cap < base then invalid_arg "Backoff.policy: cap must be >= base";
  if max_attempts < 0 then invalid_arg "Backoff.policy: max_attempts < 0";
  if budget < 0.0 then invalid_arg "Backoff.policy: budget < 0";
  { base; cap; max_attempts; budget }

let default = policy ()

type t = {
  p : policy;
  rng : Rng.t;
  mutable prev : float;
  mutable used : int;
  mutable slept : float;
}

let start ?(seed = 0) p = { p; rng = Rng.create seed; prev = 0.0; used = 0; slept = 0.0 }

let attempts t = t.used
let elapsed t = t.slept

let next t =
  if t.p.max_attempts > 0 && t.used >= t.p.max_attempts then None
  else if t.p.budget > 0.0 && t.slept >= t.p.budget then None
  else begin
    (* Decorrelated jitter (Brooker, "Exponential Backoff And Jitter"):
       uniform in [base, 3*prev], so the expectation grows ~1.5x per
       attempt while successive delays stay independent enough that
       clients sharing a failure don't re-collide. *)
    let hi = Float.min t.p.cap (Float.max t.p.base (3.0 *. t.prev)) in
    let d =
      if t.used = 0 then t.p.base
      else t.p.base +. Rng.float t.rng (Float.max 0.0 (hi -. t.p.base))
    in
    let d = Float.min d t.p.cap in
    (* Never plan past the budget: the final sleep is clipped so the
       give-up point is exactly [budget], not budget + one cap. *)
    let d =
      if t.p.budget > 0.0 then Float.min d (t.p.budget -. t.slept) else d
    in
    t.prev <- d;
    t.used <- t.used + 1;
    t.slept <- t.slept +. d;
    Some d
  end

let sleep t =
  match next t with
  | None -> false
  | Some d ->
    if d > 0.0 then Unix.sleepf d;
    true

let sleep_for t d =
  if d < 0.0 then invalid_arg "Backoff.sleep_for: negative delay";
  if t.p.max_attempts > 0 && t.used >= t.p.max_attempts then false
  else if t.p.budget > 0.0 && t.slept >= t.p.budget then false
  else begin
    (* A server-directed delay replaces the jittered one for this
       attempt but still draws down the same attempt/budget accounting,
       so a retry_after_ms stream cannot stretch the give-up point. *)
    let d =
      if t.p.budget > 0.0 then Float.min d (t.p.budget -. t.slept) else d
    in
    t.prev <- Float.min d t.p.cap;
    t.used <- t.used + 1;
    t.slept <- t.slept +. d;
    if d > 0.0 then Unix.sleepf d;
    true
  end
