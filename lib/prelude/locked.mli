(** Exception-safe mutual exclusion.

    [with_lock m f] runs [f ()] with [m] held and releases [m] on every
    exit path, including exceptions ([Fun.protect] underneath).  The
    whole repo locks through this combinator: a naked [Mutex.lock]
    leaks the mutex if anything between it and the matching unlock
    raises, and tdmd-lint's [naked-mutex-lock] rule rejects naked
    locking everywhere outside this module's implementation.

    Blocking calls that need the raw mutex — e.g. [Condition.wait c m]
    — are fine inside [f]: they unlock and re-lock [m] internally and
    return with it held, which is exactly the invariant [with_lock]
    maintains. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
