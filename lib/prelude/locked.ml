(* The only file allowed to call [Mutex.lock] (enforced by tdmd-lint's
   naked-mutex-lock rule): every other locking site must go through
   [with_lock] so an exception raised under the lock can never leak a
   held mutex. *)

let with_lock m f =
  (* tdmd-lint: allow naked-mutex-lock — this is the combinator the rule points everyone at *)
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
