(* Reflected CRC-32, polynomial 0xEDB88320, init/xorout 0xFFFFFFFF —
   the checksum of zlib, PNG and Ethernet.  One 256-entry table built at
   module init; all arithmetic stays in the low 32 bits of a native int
   (OCaml ints are 63-bit on every platform this project targets). *)

let mask32 = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let bytes ?(crc = 0) ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes: pos/len out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor mask32) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Bytes.get_uint8 b i) land 0xff) lxor (!c lsr 8)
  done;
  (!c lxor mask32) land mask32

let string ?crc s = bytes ?crc (Bytes.unsafe_of_string s)
