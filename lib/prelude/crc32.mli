(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320).

    Used by the server's write-ahead journal to detect torn or corrupted
    records; table-driven, no dependencies.  Checksums are returned as a
    non-negative [int] in [\[0, 2^32)] so they fit OCaml's native int on
    64-bit platforms and serialize as plain JSON integers. *)

val bytes : ?crc:int -> ?pos:int -> ?len:int -> bytes -> int
(** [bytes ?crc b ~pos ~len] extends checksum [crc] (default: the empty
    checksum) over [len] bytes of [b] starting at [pos] (defaults: the
    whole buffer).  Feeding a buffer in chunks yields the same result as
    one call over the concatenation.
    @raise Invalid_argument when [pos]/[len] fall outside [b]. *)

val string : ?crc:int -> string -> int
(** [string s] is the checksum of all of [s]. *)
