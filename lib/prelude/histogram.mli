(** Fixed-bin histograms for workload, topology and latency statistics. *)

type t

type scale = Linear | Log

val create : ?scale:scale -> lo:float -> hi:float -> bins:int -> unit -> t
(** Uniform ([Linear], default) or geometric ([Log]) bins over
    [\[lo, hi)]; out-of-range samples clamp to the first/last bin.
    [Log] bins suit quantities spanning orders of magnitude (request
    latencies) and require [lo > 0].  @raise Invalid_argument if
    [bins <= 0], [hi <= lo], or [Log] with [lo <= 0]. *)

val add : t -> float -> unit
val count : t -> int
val bin_counts : t -> int array
val bin_edges : t -> (float * float) array
(** Per-bin [(lower, upper)] bounds, same order as {!bin_counts}. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,1\]]: estimated p-quantile of the
    recorded samples, linearly interpolated inside the containing bin
    (so the error is bounded by the bin width).  [nan] when empty. *)

val render : ?width:int -> t -> string
(** ASCII bar chart, one bin per line (bars scaled to [width], default
    40 columns). *)
