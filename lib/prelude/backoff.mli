(** Exponential backoff with decorrelated jitter.

    The retry schedule of every client-side loop in the project (socket
    connects, retryable RPC errors).  Delays follow the "decorrelated
    jitter" scheme: the n-th delay is uniform in [\[base, 3·prev\]],
    clamped to [cap] — growth is exponential in expectation, but
    concurrent clients never synchronize into retry storms the way a
    deterministic doubling schedule does.

    Determinism: the jitter stream comes from {!Rng}, so a seed fixes
    the whole schedule; the total-budget cap counts the {e planned}
    sleep time rather than wall-clock, which keeps the giving-up point
    reproducible in tests. *)

type policy = {
  base : float;     (** first delay and per-delay lower bound, seconds *)
  cap : float;      (** per-delay upper bound, seconds *)
  max_attempts : int;  (** give up after this many delays (0 = unlimited) *)
  budget : float;   (** give up once cumulative planned sleep exceeds this
                        many seconds (0 = unlimited) *)
}

val policy :
  ?base:float -> ?cap:float -> ?max_attempts:int -> ?budget:float -> unit ->
  policy
(** Defaults: [base = 0.05], [cap = 1.0], [max_attempts = 0] (unlimited),
    [budget = 10.0].
    @raise Invalid_argument on non-positive [base]/[cap] or [cap < base]. *)

val default : policy
(** [policy ()]. *)

type t
(** Mutable schedule state: previous delay, attempts used, budget left. *)

val start : ?seed:int -> policy -> t
(** Fresh schedule.  Equal seeds yield equal delay sequences (default
    seed 0). *)

val next : t -> float option
(** The next planned delay, or [None] when the policy says give up.
    Does not sleep. *)

val sleep : t -> bool
(** [next] + [Unix.sleepf]; [false] means the budget is exhausted and
    the caller should stop retrying.  Blocks only the calling thread. *)

val sleep_for : t -> float -> bool
(** [sleep_for t d] sleeps a {e server-directed} delay of [d] seconds
    (e.g. a pushed [retry_after_ms]) instead of the jittered one, while
    still consuming one attempt and [d] of the planned-sleep budget —
    the final sleep is clipped to the remaining budget exactly like
    {!next}.  [false] means the policy is already exhausted and nothing
    was slept.
    @raise Invalid_argument when [d < 0]. *)

val attempts : t -> int
(** Delays handed out so far. *)

val elapsed : t -> float
(** Cumulative planned sleep handed out so far, seconds. *)
