(** Repetition runner: the paper runs every sweep point several times
    and plots mean with error bars for both metrics (bandwidth and
    wall-clock execution time).  Each observation also carries the
    run's {!Tdmd_obs.Telemetry.t}, and points summarise the numeric
    telemetry metrics next to the two headline ones. *)

type observation = {
  bandwidth : float;
  seconds : float;
  feasible : bool;
  telemetry : Tdmd_obs.Telemetry.t;
}

type point = {
  x : float;                              (** sweep-variable value *)
  bandwidth : Tdmd_prelude.Stats.summary; (** over feasible repetitions *)
  seconds : Tdmd_prelude.Stats.summary;
  infeasible_runs : int;                  (** dropped repetitions *)
  metrics : (string * Tdmd_prelude.Stats.summary) list;
      (** numeric telemetry metrics (counters and gauges) summarised
          over the same repetitions, in first-seen order *)
}

val repeat :
  seed:int -> reps:int -> (Tdmd_prelude.Rng.t -> observation) -> x:float -> point
(** [repeat ~seed ~reps f ~x] calls [f] with [reps] independent
    generators split from [seed].  Infeasible observations are dropped
    from the summaries (the paper "only studies feasible deployments")
    but counted. *)

val measure : (unit -> 'a) -> ('a -> float * bool) -> observation
(** [measure run extract] times [run ()] and extracts
    (bandwidth, feasible) from its result; the telemetry is empty. *)

val measure_outcome : (unit -> Tdmd.Solver_intf.outcome) -> observation
(** Like {!measure} for registry solvers: bandwidth, feasibility and
    telemetry all come from the shared outcome. *)

type joint_point = {
  jx : float;
  by_algo : (string * point) list;   (** same algorithm order as given *)
  redraws : int;                     (** instances regenerated *)
}

val joint :
  domains:int ->
  seed:int ->
  reps:int ->
  x:float ->
  build:(Tdmd_prelude.Rng.t -> 'inst) ->
  algos:(string * ('inst -> Tdmd_prelude.Rng.t -> observation)) list ->
  joint_point
(** The paper's protocol (Sec. 6.1): per repetition, draw ONE instance
    and score every algorithm on it; if any algorithm's deployment is
    infeasible, regenerate the traffic (bounded retries — after 20
    redraws the draw is kept and the infeasibility shows up in the
    feasible counts) so all algorithms aggregate over identical
    instances.

    [domains] > 1 spreads repetitions over OCaml 5 domains
    ({!Tdmd_prelude.Parallel}); repetition generators are pre-split, so
    bandwidth results are identical to the sequential run — only the
    wall-clock timing summaries get noisier under core contention, so
    keep timing-figure runs sequential. *)
