
type tree = {
  size : int;
  k : int;
  lambda : float;
  density : float;
  rates : Tdmd_traffic.Rate_dist.t;
  link_capacity : int;
}

type general = {
  size : int;
  k : int;
  lambda : float;
  density : float;
  rates : Tdmd_traffic.Rate_dist.t;
  link_capacity : int;
}

(* Paper defaults (Sec. 6.2).  Tree rates are capped lower than the
   general ones so the pseudo-polynomial DP's b-dimension stays small
   enough to sweep (the paper's DP likewise dominates every time
   figure). *)
let default_tree : tree =
  {
    size = 22;
    k = 8;
    lambda = 0.5;
    density = 0.5;
    rates = Tdmd_traffic.Rate_dist.Caida_like { r_max = 10 };
    link_capacity = 30;
  }

let default_general : general =
  {
    size = 30;
    k = 10;
    lambda = 0.5;
    density = 0.5;
    rates = Tdmd_traffic.Rate_dist.Caida_like { r_max = 50 };
    link_capacity = 40;
  }

let build_tree rng (s : tree) =
  let ark = Tdmd_topo.Ark.generate rng ~n:(max (2 * s.size) 8) in
  let tree0 = Tdmd_topo.Ark.tree_of rng ark in
  let tree = Tdmd_topo.Topo_tree.resize rng tree0 s.size in
  let flows =
    Tdmd_traffic.Workload.tree_flows rng tree ~rates:s.rates ~density:s.density
      ~link_capacity:s.link_capacity ()
  in
  Tdmd.Instance.Tree.make ~tree ~flows ~lambda:s.lambda

let build_general rng (s : general) =
  let ark = Tdmd_topo.Ark.generate rng ~n:(max (2 * s.size) 8) in
  let graph, dests = Tdmd_topo.Ark.general_of rng ark ~size:s.size in
  let flows =
    Tdmd_traffic.Workload.general_flows rng graph ~dests ~rates:s.rates
      ~density:s.density ~link_capacity:s.link_capacity ()
  in
  Tdmd.Instance.make ~graph ~flows ~lambda:s.lambda
