open Tdmd_prelude

type observation = {
  bandwidth : float;
  seconds : float;
  feasible : bool;
  telemetry : Tdmd_obs.Telemetry.t;
}

type point = {
  x : float;
  bandwidth : Stats.summary;
  seconds : Stats.summary;
  infeasible_runs : int;
  metrics : (string * Stats.summary) list;
}

(* Numeric telemetry metrics of a batch of observations, summarised per
   key in first-seen order (string/bool metrics are not aggregable). *)
let metric_summaries obs =
  let order = ref [] in
  let table = Hashtbl.create 16 in
  List.iter
    (fun (o : observation) ->
      List.iter
        (fun (name, v) ->
          let x =
            match v with
            | Tdmd_obs.Telemetry.Int n -> Some (float_of_int n)
            | Tdmd_obs.Telemetry.Float x -> Some x
            | _ -> None
          in
          match x with
          | None -> ()
          | Some x ->
            let w =
              match Hashtbl.find_opt table name with
              | Some w -> w
              | None ->
                let w = Stats.Welford.create () in
                Hashtbl.add table name w;
                order := name :: !order;
                w
            in
            Stats.Welford.add w x)
        (Tdmd_obs.Telemetry.metrics o.telemetry))
    obs;
  List.rev_map
    (fun name ->
      let w = Hashtbl.find table name in
      ( name,
        {
          Stats.n = Stats.Welford.count w;
          mean = Stats.Welford.mean w;
          stddev = Stats.Welford.stddev w;
          min = Stats.Welford.min w;
          max = Stats.Welford.max w;
        } ))
    !order

let repeat ~seed ~reps f ~x =
  let master = Rng.create seed in
  let obs = List.init reps (fun _ -> f (Rng.split master)) in
  let feasible = List.filter (fun (o : observation) -> o.feasible) obs in
  let summaries =
    match feasible with
    | [] ->
      (* Degenerate: report over all runs rather than an empty summary. *)
      obs
    | _ -> feasible
  in
  {
    x;
    bandwidth = Stats.summarize (List.map (fun (o : observation) -> o.bandwidth) summaries);
    seconds = Stats.summarize (List.map (fun (o : observation) -> o.seconds) summaries);
    infeasible_runs = List.length obs - List.length feasible;
    metrics = metric_summaries summaries;
  }

let measure run extract =
  let result, seconds = Timer.time run in
  let bandwidth, feasible = extract result in
  { bandwidth; seconds; feasible; telemetry = Tdmd_obs.Telemetry.create () }

let measure_outcome run =
  let outcome, seconds = Timer.time run in
  {
    bandwidth = outcome.Tdmd.Solver_intf.bandwidth;
    seconds;
    feasible = outcome.Tdmd.Solver_intf.feasible;
    telemetry = outcome.Tdmd.Solver_intf.telemetry;
  }

type joint_point = {
  jx : float;
  by_algo : (string * point) list;
  redraws : int;
}

let joint ~domains ~seed ~reps ~x ~build ~algos =
  let master = Rng.create seed in
  (* Pre-split one generator per repetition so the results are identical
     whether repetitions run sequentially or across domains. *)
  let rep_rngs = List.init reps (fun _ -> Rng.split master) in
  let run_rep rep_rng =
    (* Draw instances until every algorithm's plan is feasible, like the
       paper's "we choose to regenerate a traffic distribution". *)
    let rec draw tries redraws =
      let rng = Rng.split rep_rng in
      let inst = build rng in
      let obs = List.map (fun (name, f) -> (name, f inst (Rng.split rng))) algos in
      if List.for_all (fun (_, (o : observation)) -> o.feasible) obs || tries >= 20
      then (obs, redraws)
      else draw (tries + 1) (redraws + 1)
    in
    draw 0 0
  in
  let rep_results = Tdmd_prelude.Parallel.map ~domains run_rep rep_rngs in
  let acc =
    List.map (fun (name, _) -> (name, Stats.Welford.create (), Stats.Welford.create ())) algos
  in
  let observations = Hashtbl.create 8 in
  let infeasible = Hashtbl.create 8 in
  let redraws = ref 0 in
  List.iter
    (fun (obs, rep_redraws) ->
      redraws := !redraws + rep_redraws;
      List.iter2
        (fun (name, bw, sec) (name', (o : observation)) ->
          assert (name = name');
          Stats.Welford.add bw o.bandwidth;
          Stats.Welford.add sec o.seconds;
          Hashtbl.replace observations name
            (o :: Option.value ~default:[] (Hashtbl.find_opt observations name));
          if not o.feasible then
            Hashtbl.replace infeasible name
              (1 + Option.value ~default:0 (Hashtbl.find_opt infeasible name)))
        acc obs)
    rep_results;
  let summary w =
    {
      Stats.n = Stats.Welford.count w;
      mean = Stats.Welford.mean w;
      stddev = Stats.Welford.stddev w;
      min = Stats.Welford.min w;
      max = Stats.Welford.max w;
    }
  in
  {
    jx = x;
    by_algo =
      List.map
        (fun (name, bw, sec) ->
          ( name,
            {
              x;
              bandwidth = summary bw;
              seconds = summary sec;
              infeasible_runs =
                Option.value ~default:0 (Hashtbl.find_opt infeasible name);
              metrics =
                metric_summaries
                  (Option.value ~default:[] (Hashtbl.find_opt observations name));
            } ))
        acc;
    redraws = !redraws;
  }
