open Tdmd_prelude

type series = {
  algorithm : string;
  points : Runner.point list;
}

type result = {
  fig_id : string;
  title : string;
  x_label : string;
  series : series list;
}

(* An algorithm entry: figure label + registry name, resolved through
   the shared solver registry (Tdmd.Solvers) so the experiments, CLI
   and bench all dispatch the same implementations.  Tree experiments
   run all five algorithms (Sec. 6.3); general experiments run
   Random / Best-effort / GTP (Sec. 6.4). *)

let resolve_tree name =
  match Tdmd.Solvers.on_tree name with
  | Some f -> f
  | None -> invalid_arg ("Experiments: unknown tree solver " ^ name)

let resolve_general name =
  match Tdmd.Solvers.find_general name with
  | Some f -> f
  | None -> invalid_arg ("Experiments: unknown general solver " ^ name)

type tree_algo = {
  t_name : string;
  t_run : Rng.t -> k:int -> Tdmd.Instance.Tree.t -> Tdmd.Solver_intf.outcome;
}

type general_algo = {
  g_name : string;
  g_run : Rng.t -> k:int -> Tdmd.Instance.t -> Tdmd.Solver_intf.outcome;
}

let tree_algo (t_name, registry_name) =
  let f = resolve_tree registry_name in
  { t_name; t_run = (fun rng ~k inst -> f ~rng ~k inst) }

let general_algo (g_name, registry_name) =
  let f = resolve_general registry_name in
  { g_name; g_run = (fun rng ~k inst -> f ~rng ~k inst) }

let tree_algos : tree_algo list =
  List.map tree_algo
    [
      ("Random", "random");
      ("Best-effort", "best-effort");
      ("GTP", "gtp");
      ("HAT", "hat");
      ("DP", "dp");
    ]

let general_algos : general_algo list =
  List.map general_algo
    [ ("Random", "random"); ("Best-effort", "best-effort"); ("GTP", "gtp") ]

(* Sweep drivers: [configure] maps a sweep value to the scenario and
   budget at that point.  Every algorithm scores the same instance draws
   (Runner.joint), per the paper's regeneration protocol. *)
(* TDMD_JOBS=<n> parallelises repetitions across domains (identical
   bandwidth numbers; timing noisier -- see Runner.joint). *)
let domains =
  match Sys.getenv_opt "TDMD_JOBS" with
  | Some s -> (match int_of_string_opt s with Some d when d >= 1 -> d | _ -> 1)
  | None -> 1

let joint_sweep ~seed ~reps ~xs ~configure ~build ~names ~runs =
  let joint_points =
    List.map
      (fun x ->
        let scenario, k = configure x in
        Runner.joint ~domains
          ~seed:(seed + int_of_float (x *. 1000.0))
          ~reps ~x
          ~build:(fun rng -> build rng scenario)
          ~algos:
            (List.map
               (fun (name, run) ->
                 ( name,
                   fun inst rng ->
                     Runner.measure_outcome (fun () -> run rng ~k inst) ))
               runs))
      xs
  in
  List.map
    (fun name ->
      {
        algorithm = name;
        points =
          List.map (fun jp -> List.assoc name jp.Runner.by_algo) joint_points;
      })
    names

let tree_sweep ~seed ~reps ~xs ~configure =
  joint_sweep ~seed ~reps ~xs ~configure ~build:Scenario.build_tree
    ~names:(List.map (fun a -> a.t_name) tree_algos)
    ~runs:(List.map (fun a -> (a.t_name, a.t_run)) tree_algos)

let general_sweep ~seed ~reps ~xs ~configure =
  joint_sweep ~seed ~reps ~xs ~configure ~build:Scenario.build_general
    ~names:(List.map (fun a -> a.g_name) general_algos)
    ~runs:(List.map (fun a -> (a.g_name, a.g_run)) general_algos)

let make_result ~fig_id ~title ~x_label series = { fig_id; title; x_label; series }

(* ------------------------------------------------------------------ *)
(* Tree figures                                                        *)
(* ------------------------------------------------------------------ *)

let fig9 ?(seed = 9000) ?(reps = 5) () =
  let xs = List.map float_of_int [ 1; 4; 7; 10; 13; 16 ] in
  let series =
    tree_sweep ~seed ~reps ~xs ~configure:(fun x ->
        (Scenario.default_tree, int_of_float x))
  in
  make_result ~fig_id:"fig9" ~title:"Middlebox number constraint k in tree"
    ~x_label:"k" series

let fig10 ?(seed = 10000) ?(reps = 5) () =
  let xs = Listx.frange ~lo:0.0 ~hi:0.9 ~step:0.1 in
  let series =
    tree_sweep ~seed ~reps ~xs ~configure:(fun lambda ->
        ({ Scenario.default_tree with Scenario.lambda }, Scenario.default_tree.Scenario.k))
  in
  make_result ~fig_id:"fig10" ~title:"Traffic-changing ratio in tree"
    ~x_label:"lambda" series

let fig11 ?(seed = 11000) ?(reps = 5) () =
  let xs = Listx.frange ~lo:0.3 ~hi:0.8 ~step:0.1 in
  let series =
    tree_sweep ~seed ~reps ~xs ~configure:(fun density ->
        ({ Scenario.default_tree with Scenario.density }, Scenario.default_tree.Scenario.k))
  in
  make_result ~fig_id:"fig11" ~title:"Flow density in tree" ~x_label:"density" series

let fig12 ?(seed = 12000) ?(reps = 5) () =
  let xs = List.map float_of_int [ 12; 16; 20; 24; 28; 32 ] in
  let series =
    tree_sweep ~seed ~reps ~xs ~configure:(fun x ->
        ( { Scenario.default_tree with Scenario.size = int_of_float x },
          Scenario.default_tree.Scenario.k ))
  in
  make_result ~fig_id:"fig12" ~title:"Topology size in tree" ~x_label:"|V|" series

(* ------------------------------------------------------------------ *)
(* General-topology figures                                            *)
(* ------------------------------------------------------------------ *)

let fig13 ?(seed = 13000) ?(reps = 5) () =
  let xs = List.map float_of_int [ 12; 14; 16; 18; 20; 22 ] in
  let series =
    general_sweep ~seed ~reps ~xs ~configure:(fun x ->
        (Scenario.default_general, int_of_float x))
  in
  make_result ~fig_id:"fig13" ~title:"Middlebox number k in a general topology"
    ~x_label:"k" series

let fig14 ?(seed = 14000) ?(reps = 5) () =
  let xs = Listx.frange ~lo:0.0 ~hi:0.9 ~step:0.1 in
  let series =
    general_sweep ~seed ~reps ~xs ~configure:(fun lambda ->
        ( { Scenario.default_general with Scenario.lambda },
          Scenario.default_general.Scenario.k ))
  in
  make_result ~fig_id:"fig14" ~title:"Traffic-changing ratio in a general topology"
    ~x_label:"lambda" series

let fig15 ?(seed = 15000) ?(reps = 5) () =
  let xs = Listx.frange ~lo:0.3 ~hi:0.8 ~step:0.1 in
  let series =
    general_sweep ~seed ~reps ~xs ~configure:(fun density ->
        ( { Scenario.default_general with Scenario.density },
          Scenario.default_general.Scenario.k ))
  in
  make_result ~fig_id:"fig15" ~title:"Flow density in a general topology"
    ~x_label:"density" series

let fig16 ?(seed = 16000) ?(reps = 5) () =
  let xs = List.map float_of_int [ 12; 20; 28; 36; 44; 52 ] in
  let series =
    general_sweep ~seed ~reps ~xs ~configure:(fun x ->
        ( { Scenario.default_general with Scenario.size = int_of_float x },
          Scenario.default_general.Scenario.k ))
  in
  make_result ~fig_id:"fig16" ~title:"Topology size in a general topology"
    ~x_label:"|V|" series

(* ------------------------------------------------------------------ *)
(* Fig. 17: spam filters (lambda = 0), k x density grids               *)
(* ------------------------------------------------------------------ *)

type grid = {
  fig_id : string;
  title : string;
  k_values : int list;
  density_values : float list;
  cells : (int * float * float) list;
}

let grid_of ~fig_id ~title ~k_values ~density_values ~cell =
  let cells =
    List.concat_map
      (fun k ->
        List.map (fun density -> (k, density, cell ~k ~density)) density_values)
      k_values
  in
  { fig_id; title; k_values; density_values; cells }

let fig17_tree ?(seed = 17000) ?(reps = 3) () =
  let k_values = [ 4; 8; 12 ] and density_values = [ 0.4; 0.6; 0.8 ] in
  grid_of ~fig_id:"fig17a" ~title:"Spam filters (lambda=0): GTP in tree" ~k_values
    ~density_values ~cell:(fun ~k ~density ->
      let scenario =
        { Scenario.default_tree with Scenario.lambda = 0.0; Scenario.density }
      in
      let point =
        Runner.repeat
          ~seed:(seed + (k * 100) + int_of_float (density *. 10.0))
          ~reps ~x:density
          (fun rng ->
            let inst = Scenario.build_tree rng scenario in
            Runner.measure
              (fun () -> Tdmd.Gtp.run ~budget:k (Tdmd.Instance.Tree.to_general inst))
              (fun r -> (r.Tdmd.Gtp.bandwidth, r.Tdmd.Gtp.feasible)))
      in
      point.Runner.bandwidth.Stats.mean)

let fig17_general ?(seed = 17500) ?(reps = 3) () =
  let k_values = [ 6; 10; 14 ] and density_values = [ 0.4; 0.6; 0.8 ] in
  grid_of ~fig_id:"fig17b" ~title:"Spam filters (lambda=0): GTP in general topology"
    ~k_values ~density_values ~cell:(fun ~k ~density ->
      let scenario =
        { Scenario.default_general with Scenario.lambda = 0.0; Scenario.density }
      in
      let point =
        Runner.repeat
          ~seed:(seed + (k * 100) + int_of_float (density *. 10.0))
          ~reps ~x:density
          (fun rng ->
            let inst = Scenario.build_general rng scenario in
            Runner.measure
              (fun () -> Tdmd.Gtp.run ~budget:k inst)
              (fun r -> (r.Tdmd.Gtp.bandwidth, r.Tdmd.Gtp.feasible)))
      in
      point.Runner.bandwidth.Stats.mean)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

type ablation_row = {
  label : string;
  metric : string;
  value : float;
}

let ablation ?(seed = 18000) ?(reps = 5) () =
  let rows = ref [] in
  let push label metric value = rows := { label; metric; value } :: !rows in
  let master = Rng.create seed in
  (* CELF vs plain GTP: identical bandwidth, fewer oracle calls. *)
  let plain_calls = Stats.Welford.create () and celf_calls = Stats.Welford.create () in
  let bw_gap = Stats.Welford.create () in
  for _ = 1 to reps do
    let rng = Rng.split master in
    let inst = Scenario.build_general rng Scenario.default_general in
    let a = Tdmd.Gtp.run ~budget:Scenario.default_general.Scenario.k inst in
    let b = Tdmd.Gtp.run_celf ~budget:Scenario.default_general.Scenario.k inst in
    Stats.Welford.add plain_calls (float_of_int a.Tdmd.Gtp.oracle_calls);
    Stats.Welford.add celf_calls (float_of_int b.Tdmd.Gtp.oracle_calls);
    Stats.Welford.add bw_gap (Float.abs (a.Tdmd.Gtp.bandwidth -. b.Tdmd.Gtp.bandwidth))
  done;
  push "GTP plain" "oracle calls" (Stats.Welford.mean plain_calls);
  push "GTP CELF" "oracle calls" (Stats.Welford.mean celf_calls);
  push "GTP CELF" "bandwidth gap vs plain" (Stats.Welford.mean bw_gap);
  (* Rate-scaled DP: value loss and state savings at theta = 4. *)
  let loss = Stats.Welford.create () in
  let state_ratio = Stats.Welford.create () in
  let time_ratio = Stats.Welford.create () in
  for _ = 1 to reps do
    let rng = Rng.split master in
    let inst = Scenario.build_tree rng Scenario.default_tree in
    let k = Scenario.default_tree.Scenario.k in
    let (dp, dp_t) = Timer.time (fun () -> Tdmd.Dp.solve ~k inst) in
    let (sc, sc_t) = Timer.time (fun () -> Tdmd.Scaled_dp.solve ~k ~theta:4 inst) in
    if dp.Tdmd.Dp.bandwidth > 0.0 then
      Stats.Welford.add loss
        ((sc.Tdmd.Scaled_dp.bandwidth -. dp.Tdmd.Dp.bandwidth)
        /. dp.Tdmd.Dp.bandwidth);
    Stats.Welford.add state_ratio
      (float_of_int sc.Tdmd.Scaled_dp.scaled_states /. float_of_int dp.Tdmd.Dp.states);
    if dp_t > 0.0 then Stats.Welford.add time_ratio (sc_t /. dp_t)
  done;
  push "Scaled DP (theta=4)" "relative bandwidth loss" (Stats.Welford.mean loss);
  push "Scaled DP (theta=4)" "state ratio vs exact DP" (Stats.Welford.mean state_ratio);
  push "Scaled DP (theta=4)" "time ratio vs exact DP" (Stats.Welford.mean time_ratio);
  (* HAT merge effort at the default scenario. *)
  let merges = Stats.Welford.create () in
  for _ = 1 to reps do
    let rng = Rng.split master in
    let inst = Scenario.build_tree rng Scenario.default_tree in
    let r = Tdmd.Hat.run ~k:Scenario.default_tree.Scenario.k inst in
    Stats.Welford.add merges (float_of_int r.Tdmd.Hat.merges)
  done;
  push "HAT" "merge rounds" (Stats.Welford.mean merges);
  (* Local search refinement: how much of the greedy-to-optimal gap the
     swap pass closes at the default tree scenario. *)
  let ls_gain_gtp = Stats.Welford.create () in
  let ls_swaps = Stats.Welford.create () in
  for _ = 1 to reps do
    let rng = Rng.split master in
    let inst = Scenario.build_tree rng Scenario.default_tree in
    let general = Tdmd.Instance.Tree.to_general inst in
    let k = Scenario.default_tree.Scenario.k in
    let gtp = Tdmd.Gtp.run ~budget:k general in
    if gtp.Tdmd.Gtp.feasible then begin
      let r = Tdmd.Local_search.refine ~k general gtp.Tdmd.Gtp.placement in
      if gtp.Tdmd.Gtp.bandwidth > 0.0 then
        Stats.Welford.add ls_gain_gtp
          ((gtp.Tdmd.Gtp.bandwidth -. r.Tdmd.Local_search.bandwidth)
          /. gtp.Tdmd.Gtp.bandwidth);
      Stats.Welford.add ls_swaps (float_of_int r.Tdmd.Local_search.swaps)
    end
  done;
  push "Local search on GTP" "relative bandwidth gain" (Stats.Welford.mean ls_gain_gtp);
  push "Local search on GTP" "improving swaps" (Stats.Welford.mean ls_swaps);
  (* Binary-tree DP (Eqs. 7-8 verbatim) vs the general merge DP: values
     must coincide; compare their runtimes on random binary trees. *)
  let agree = Stats.Welford.create () in
  let time_ratio_bin = Stats.Welford.create () in
  for _ = 1 to reps do
    let rng = Rng.split master in
    let tree = Tdmd_topo.Topo_tree.random_binary rng 21 in
    let flows =
      Tdmd_traffic.Workload.tree_flows rng tree
        ~rates:Scenario.default_tree.Scenario.rates
        ~density:Scenario.default_tree.Scenario.density
        ~link_capacity:Scenario.default_tree.Scenario.link_capacity ()
    in
    let inst = Tdmd.Instance.Tree.make ~tree ~flows ~lambda:0.5 in
    let k = Scenario.default_tree.Scenario.k in
    let general_dp, t_gen = Timer.time (fun () -> Tdmd.Dp.solve ~k inst) in
    let binary_dp, t_bin = Timer.time (fun () -> Tdmd.Dp_binary.solve ~k inst) in
    Stats.Welford.add agree
      (Float.abs (general_dp.Tdmd.Dp.bandwidth -. binary_dp.Tdmd.Dp_binary.bandwidth));
    if t_gen > 0.0 then Stats.Welford.add time_ratio_bin (t_bin /. t_gen)
  done;
  push "Binary DP (eqs 7-8)" "value gap vs general DP" (Stats.Welford.mean agree);
  push "Binary DP (eqs 7-8)" "time ratio vs general DP" (Stats.Welford.mean time_ratio_bin);
  (* Incremental maintenance vs from-scratch GTP over a flow-churn
     timeline: quality ratio and placement moves. *)
  let ratio = Stats.Welford.create () in
  let inc_moves = Stats.Welford.create () in
  for _ = 1 to reps do
    let rng = Rng.split master in
    let ark = Tdmd_topo.Ark.generate rng ~n:40 in
    let graph, dests = Tdmd_topo.Ark.general_of rng ark ~size:24 in
    let dest_arr = Array.of_list dests in
    let n = Tdmd_graph.Digraph.vertex_count graph in
    let k = 6 in
    let timeline =
      Tdmd_traffic.Temporal.generate rng ~horizon:60.0 ~mean_interarrival:1.5
        ~mean_lifetime:12.0 ~draw_flow:(fun rng id ->
          let rec draw () =
            let src = Rng.int rng n in
            let dst = Rng.choose rng dest_arr in
            if src = dst then draw ()
            else begin
              match Tdmd_graph.Bfs.shortest_path graph ~src ~dst with
              | Some path -> Tdmd_flow.Flow.make ~id ~rate:(Rng.int_in rng 1 8) ~path
              | None -> draw ()
            end
          in
          draw ())
    in
    let inc = Tdmd.Incremental.create ~graph ~lambda:0.5 ~k () in
    List.iter
      (fun (_, ev) ->
        (match ev with
        | Tdmd_traffic.Temporal.Arrival f -> Tdmd.Incremental.arrive inc f
        | Tdmd_traffic.Temporal.Departure id -> Tdmd.Incremental.depart inc id);
        if Tdmd.Incremental.flows inc <> [] && Tdmd.Incremental.feasible inc then begin
          let scratch = Tdmd.Gtp.run ~budget:k (Tdmd.Incremental.instance inc) in
          if scratch.Tdmd.Gtp.bandwidth > 0.0 then
            Stats.Welford.add ratio
              (Tdmd.Incremental.bandwidth inc /. scratch.Tdmd.Gtp.bandwidth)
        end)
      timeline;
    Stats.Welford.add inc_moves (float_of_int (Tdmd.Incremental.moves inc))
  done;
  push "Incremental vs scratch GTP" "bandwidth ratio (mean)" (Stats.Welford.mean ratio);
  push "Incremental vs scratch GTP" "placement moves per timeline"
    (Stats.Welford.mean inc_moves);
  List.rev !rows
