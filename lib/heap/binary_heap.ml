(* Slots are ['a option] so empty cells are an honest [None] rather than
   the old [Obj.magic 0] dummy — which was unsound for heaps of boxed
   floats ([Array.make] specialises on the runtime representation of its
   seed) and pinned popped elements alive for the life of the heap. *)
type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a option array;
  mutable size : int;
}

let create ?(capacity = 16) ~cmp () =
  { cmp; data = Array.make (max capacity 1) None; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let get t i = match t.data.(i) with Some x -> x | None -> assert false

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let data = Array.make (2 * cap) None in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp (get t l) (get t !smallest) < 0 then smallest := l;
  if r < t.size && t.cmp (get t r) (get t !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  grow t;
  t.data.(t.size) <- Some x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    (* Clear the vacated slot so the element can be collected. *)
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Binary_heap.pop_exn: empty heap"

let of_list ~cmp xs =
  match xs with
  | [] -> create ~cmp ()
  | _ ->
    let data = Array.of_list (List.map Option.some xs) in
    let t = { cmp; data; size = Array.length data } in
    for i = (t.size / 2) - 1 downto 0 do
      sift_down t i
    done;
    t

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
