module Oracle = Tdmd.Inc_oracle

type result = {
  placement : int list;
  volume : int;
  feasible : bool;
  steps : int;
  improvements : int;
}

let no_result ~feasible =
  { placement = []; volume = 0; feasible; steps = 0; improvements = 0 }

let useful_vertices inst =
  let n = Tdmd.Instance.vertex_count inst in
  let on_path = Array.make n false in
  Array.iter
    (fun f -> Array.iter (fun v -> on_path.(v) <- true) f.Tdmd_flow.Flow.path)
    inst.Tdmd.Instance.flows;
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if on_path.(v) then acc := v :: !acc
  done;
  Array.of_list !acc

let greedy_cover inst ~k =
  if k <= 0 then [] else Tdmd.Cover_fixup.within inst ~chosen:[] ~budget:k

let eval oracle verts =
  Oracle.reset oracle;
  List.iter (fun v -> if not (Oracle.mem oracle v) then Oracle.add oracle v) verts;
  (Oracle.diminished_volume oracle, Oracle.is_feasible oracle)

let sorted_verts oracle = Tdmd.Placement.to_list (Oracle.placement oracle)

let rec compare_verts a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> if x <> y then Int.compare x y else compare_verts a' b'
