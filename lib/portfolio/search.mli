(** Shared machinery for the portfolio's metaheuristic members.

    Everything here works in the exact-integer diminished-volume domain
    of {!Tdmd.Inc_oracle} — candidates are compared as [int]s, never as
    floats, so two runs that visit the same states score them
    bit-identically.  Feasibility repair goes through
    {!Tdmd.Cover_fixup}, the same fixup the greedy registry solvers
    use. *)

type result = {
  placement : int list;  (** best feasible placement found, sorted; [[]] if none *)
  volume : int;  (** its exact-integer diminished volume *)
  feasible : bool;  (** false only when no feasible placement was seen *)
  steps : int;  (** optimisation steps actually executed *)
  improvements : int;  (** strict best-so-far improvements published *)
}

val no_result : feasible:bool -> result
(** Zero-step result for degenerate inputs ([k <= 0], no flows). *)

val useful_vertices : Tdmd.Instance.t -> int array
(** Vertices lying on at least one flow path, ascending — the only
    vertices a move can gain anything from. *)

val greedy_cover : Tdmd.Instance.t -> k:int -> int list
(** [Cover_fixup.within] from an empty start: a feasible placement
    within budget whenever one exists, used as the common seed and as
    the deadline-zero fallback answer. *)

val eval : Tdmd.Inc_oracle.t -> int list -> int * bool
(** [(volume, feasible)] of a vertex list, evaluated on a scratch
    oracle ([reset] + [add]s — the oracle's prior state is discarded). *)

val sorted_verts : Tdmd.Inc_oracle.t -> int list
(** The oracle's current placement as a sorted vertex list. *)

val compare_verts : int list -> int list -> int
(** Lexicographic order on sorted vertex lists — the deterministic
    tie-break used everywhere two equal-volume placements must be
    ordered. *)
