(** Simulated annealing over placements.

    The walk moves by add / drop / swap of middlebox vertices, each
    probed through {!Tdmd.Inc_oracle}'s journal (apply, score, [undo] on
    reject) so a step costs O(flows-through-vertex), not a re-solve.
    Acceptance is Metropolis on the {e exact-integer} diminished-volume
    delta with geometric cooling; floats enter only the accept draw.
    The temperature is a function of the absolute step index (fixed
    half-life, floored), not of the total budget, so a run at a larger
    [steps] replays a smaller run's draws exactly — best-so-far is
    monotone in the step budget.
    Infeasible intermediate states are explored but never reported —
    {!Tdmd.Cover_fixup.within} periodically repairs the walk, and only
    feasible strict improvements reach [on_best]. *)

val run :
  rng:Tdmd_prelude.Rng.t ->
  k:int ->
  steps:int ->
  ?init:int list ->
  ?should_stop:(unit -> bool) ->
  ?on_best:(volume:int -> placement:int list -> unit) ->
  Tdmd.Instance.t ->
  Search.result
(** [run ~rng ~k ~steps inst] anneals for at most [steps] moves from
    [?init] (default: the greedy cover), polling [should_stop] before
    each move for cooperative cancellation.  [on_best] fires on every
    strict feasible improvement with the new best volume and sorted
    placement.  Deterministic for a fixed [(rng seed, k, steps, init)]:
    the rng draw sequence depends only on the walk itself. *)
