module Oracle = Tdmd.Inc_oracle
module Rng = Tdmd_prelude.Rng

(* Final temperature = t0 / cooling_floor: low enough that late-stage
   moves are effectively greedy. *)
let cooling_floor = 256.0

(* Steps per halving of the temperature.  The schedule is a function of
   the absolute step index alone — NOT of the total budget — so a run
   at a larger step budget replays a smaller run's draws exactly and
   its best-so-far can only be equal or better.  That prefix property
   is what makes the quality-vs-budget curve provably monotone. *)
let half_life = 200.0

(* Bounded rejection sampling: a placement covering most of the useful
   pool would otherwise make the draw loop unbounded.  Returning [None]
   after 8 misses keeps every step O(1) and, crucially, keeps the rng
   draw count a pure function of the walk so runs are reproducible. *)
let pick_absent rng oracle useful =
  let len = Array.length useful in
  let rec go attempts =
    if attempts >= 8 then None
    else
      let v = useful.(Rng.int rng len) in
      if Oracle.mem oracle v then go (attempts + 1) else Some v
  in
  if len = 0 then None else go 0

let pick_deployed rng oracle =
  match Search.sorted_verts oracle with
  | [] -> None
  | verts -> Some (List.nth verts (Rng.int rng (List.length verts)))

let run ~rng ~k ~steps ?init ?(should_stop = fun () -> false)
    ?(on_best = fun ~volume:_ ~placement:_ -> ()) inst =
  let useful = Search.useful_vertices inst in
  if k <= 0 || Array.length useful = 0 then
    Search.no_result ~feasible:(Oracle.is_feasible (Oracle.create inst))
  else begin
    let start =
      match init with
      | Some p -> Tdmd.Cover_fixup.within inst ~chosen:p ~budget:k
      | None -> Search.greedy_cover inst ~k
    in
    let oracle = Oracle.of_list inst start in
    let cur = ref (Oracle.diminished_volume oracle) in
    let best = ref None in
    let improvements = ref 0 in
    let publish () =
      if Oracle.is_feasible oracle then begin
        let improved =
          match !best with None -> true | Some (bv, _) -> !cur > bv
        in
        if improved then begin
          let verts = Search.sorted_verts oracle in
          best := Some (!cur, verts);
          incr improvements;
          on_best ~volume:!cur ~placement:verts
        end
      end
    in
    publish ();
    let t0 = Float.max 1.0 (float_of_int !cur /. 8.0) in
    let temp i =
      Float.max
        (t0 /. cooling_floor)
        (t0 *. (0.5 ** (float_of_int i /. half_life)))
    in
    (* Metropolis on the integer delta; floats appear only in the accept
       draw, never in objective comparisons. *)
    let accept delta i =
      delta >= 0 || Rng.float rng 1.0 < Float.exp (float_of_int delta /. temp i)
    in
    let executed = ref 0 in
    (try
       for i = 0 to steps - 1 do
         if should_stop () then raise Stdlib.Exit;
         incr executed;
         let size = Oracle.size oracle in
         let kind =
           if size = 0 then `Add
           else if size >= k then if Rng.bool rng then `Swap else `Drop
           else match Rng.int rng 3 with 0 -> `Add | 1 -> `Drop | _ -> `Swap
         in
         (match kind with
         | `Add -> (
           match pick_absent rng oracle useful with
           | None -> ()
           | Some v ->
             (* Adds never decrease diminished volume: always accept. *)
             Oracle.add oracle v;
             cur := Oracle.diminished_volume oracle)
         | `Drop -> (
           match pick_deployed rng oracle with
           | None -> ()
           | Some v ->
             Oracle.remove oracle v;
             let nv = Oracle.diminished_volume oracle in
             if accept (nv - !cur) i then cur := nv else Oracle.undo oracle)
         | `Swap -> (
           match pick_deployed rng oracle with
           | None -> ()
           | Some u -> (
             Oracle.remove oracle u;
             match pick_absent rng oracle useful with
             | None -> Oracle.undo oracle
             | Some v ->
               Oracle.add oracle v;
               let nv = Oracle.diminished_volume oracle in
               if accept (nv - !cur) i then cur := nv
               else begin
                 Oracle.undo oracle;
                 Oracle.undo oracle
               end)));
         (* Infeasible excursions are allowed (dropping a lone cover
            vertex can be the gateway to a better basin) but never
            published; drag the walk back through the repair
            periodically so publishable states keep appearing. *)
         if (not (Oracle.is_feasible oracle)) && i land 31 = 0 then begin
           let repaired =
             Tdmd.Cover_fixup.within inst ~chosen:(Search.sorted_verts oracle)
               ~budget:k
           in
           ignore (Search.eval oracle repaired);
           cur := Oracle.diminished_volume oracle
         end;
         publish ()
       done
     with Stdlib.Exit -> ());
    match !best with
    | Some (volume, placement) ->
      {
        Search.placement;
        volume;
        feasible = true;
        steps = !executed;
        improvements = !improvements;
      }
    | None ->
      {
        Search.placement = [];
        volume = 0;
        feasible = false;
        steps = !executed;
        improvements = 0;
      }
  end
