(** Steady-state genetic search over placements.

    A population of [12] placements (the greedy cover plus random
    repaired subsets) evolves one child per step: tournament-2 parent
    selection, uniform crossover over the parents' union, a 1-in-4
    vertex-toggle mutation, budget clamping, and feasibility repair
    through {!Tdmd.Cover_fixup.within}.  Each child is scored on the
    {e exact-integer} diminished volume via a scratch
    {!Tdmd.Inc_oracle} and replaces the current worst individual only
    when strictly fitter — ties broken lexicographically, so evolution
    is deterministic for a fixed seed. *)

val run :
  rng:Tdmd_prelude.Rng.t ->
  k:int ->
  steps:int ->
  ?init:int list ->
  ?should_stop:(unit -> bool) ->
  ?on_best:(volume:int -> placement:int list -> unit) ->
  Tdmd.Instance.t ->
  Search.result
(** [run ~rng ~k ~steps inst] evolves for at most [steps] children from
    a population seeded with [?init] (default: the greedy cover),
    polling [should_stop] before each step.  [on_best] fires on every
    strict feasible improvement.  Same determinism contract as
    {!Anneal.run}. *)
