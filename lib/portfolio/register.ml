module Telemetry = Tdmd_obs.Telemetry

(* Budgets for registry-style run-to-completion calls.  Steps are moves
   (one oracle probe each), so these are a few milliseconds on the
   fig-1-scale instances the registry tests use and well under a second
   at bench sizes. *)
let solo_steps = 4000
let portfolio_steps = 1500

let result_outcome inst (r : Search.result) tel =
  Telemetry.set tel "steps" (Telemetry.Int r.Search.steps);
  Telemetry.set tel "improvements" (Telemetry.Int r.Search.improvements);
  Telemetry.set tel "placement_size" (Telemetry.Int (List.length r.Search.placement));
  let placement = Tdmd.Placement.of_list r.Search.placement in
  Tdmd.Solver_intf.outcome ~placement
    ~bandwidth:(Tdmd.Bandwidth.total inst placement)
    ~feasible:r.Search.feasible ~telemetry:tel

let anneal_solver ~rng ~k inst =
  let tel = Telemetry.create () in
  let r =
    Telemetry.with_span tel "anneal" (fun () ->
        Anneal.run ~rng ~k ~steps:solo_steps inst)
  in
  result_outcome inst r tel

let genetic_solver ~rng ~k inst =
  let tel = Telemetry.create () in
  let r =
    Telemetry.with_span tel "genetic" (fun () ->
        Genetic.run ~rng ~k ~steps:portfolio_steps inst)
  in
  result_outcome inst r tel

let portfolio_solver ~rng ~k inst =
  let tel = Telemetry.create () in
  let t, best =
    Telemetry.with_span tel "portfolio" (fun () ->
        let t = Portfolio.start ~steps:portfolio_steps ~rng ~k inst in
        let best = Portfolio.await t in
        (t, best))
  in
  Portfolio.outcome_of ~telemetry:tel t best

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Tdmd.Solvers.register_general "anneal" anneal_solver;
    Tdmd.Solvers.register_general "genetic" genetic_solver;
    Tdmd.Solvers.register_general "portfolio" portfolio_solver
  end
