module Oracle = Tdmd.Inc_oracle
module Rng = Tdmd_prelude.Rng
module Pool = Tdmd_prelude.Parallel.Pool
module Telemetry = Tdmd_obs.Telemetry

type member = Anneal | Genetic | Seed of string

let member_name = function
  | Anneal -> "anneal"
  | Genetic -> "genetic"
  | Seed s -> "seed:" ^ s

let default_members = [ Seed "gtp"; Anneal; Genetic; Seed "hat"; Seed "random" ]

type best = {
  volume : int;
  bandwidth : float;
  placement : int list;
  member : string;
  rank : int;
}

type t = {
  inst : Tdmd.Instance.t;
  k : int;
  steps : int option;
  tree : Tdmd.Instance.Tree.t option;
  cell : best option Atomic.t;
  improvements : int Atomic.t;
  pool : Pool.t;
  member_count : int;
  finished : int Atomic.t;
  fallback : int list;
  fallback_feasible : bool;
  fallback_bandwidth : float;
  on_publish : (best -> unit) option;
  mutable joined : bool;
}

(* Strict total order on candidates: higher exact volume first, then the
   lexicographically smaller placement, then the lower member rank.
   Because the order is total and publication is a CAS loop keeping the
   maximum, the final cell content is the order-free maximum over every
   candidate any member ever published — independent of scheduling, so
   step-budgeted runs are bit-identical across domain counts. *)
let better a b =
  a.volume > b.volume
  || (a.volume = b.volume
     &&
     let c = Search.compare_verts a.placement b.placement in
     c < 0 || (c = 0 && a.rank < b.rank))

let publish t oracle ~member ~rank verts =
  let volume, ok = Search.eval oracle verts in
  if ok then begin
    let cand =
      {
        volume;
        bandwidth = Oracle.bandwidth oracle;
        placement = Search.sorted_verts oracle;
        member;
        rank;
      }
    in
    let rec cas () =
      let cur = Atomic.get t.cell in
      let improves = match cur with None -> true | Some b -> better cand b in
      if improves then
        if Atomic.compare_and_set t.cell cur (Some cand) then begin
          Atomic.incr t.improvements;
          match t.on_publish with None -> () | Some f -> f cand
        end
        else cas ()
    in
    cas ()
  end

let member_steps t = match t.steps with Some s -> s | None -> max_int

let run_member t ~rank ~rng m =
  let oracle = Oracle.create t.inst in
  let name = member_name m in
  let should_stop () = Pool.cancelling t.pool in
  let on_best ~volume:_ ~placement = publish t oracle ~member:name ~rank placement in
  match m with
  | Anneal ->
    ignore
      (Anneal.run ~rng ~k:t.k ~steps:(member_steps t) ~should_stop ~on_best
         t.inst)
  | Genetic ->
    ignore
      (Genetic.run ~rng ~k:t.k ~steps:(member_steps t) ~should_stop ~on_best
         t.inst)
  | Seed algo -> (
    let publish_outcome (o : Tdmd.Solver_intf.outcome) =
      if o.Tdmd.Solver_intf.feasible then
        publish t oracle ~member:name ~rank
          (Tdmd.Placement.to_list o.Tdmd.Solver_intf.placement)
    in
    match Tdmd.Solvers.find_general algo with
    | Some solve ->
      (* Restart loop: each restart gets an independent rng split.  Two
         identical consecutive results mean the solver is deterministic
         for this instance — further restarts cannot publish anything
         new, so stop early. *)
      let restart_cap =
        match t.steps with Some s -> max 1 (s / 64) | None -> max_int
      in
      let rec go i prev =
        if i < restart_cap && not (should_stop ()) then begin
          let o = solve ~rng:(Rng.split rng) ~k:t.k t.inst in
          let verts = Tdmd.Placement.to_list o.Tdmd.Solver_intf.placement in
          publish_outcome o;
          match prev with
          | Some p when Search.compare_verts p verts = 0 -> ()
          | _ -> go (i + 1) (Some verts)
        end
      in
      go 0 None
    | None -> (
      (* Tree-only names (e.g. "hat") contribute when the caller passed
         the tree view; [Tree.to_general] preserves vertex ids so the
         result evaluates directly on the general oracle. *)
      match t.tree with
      | None -> ()
      | Some tree -> (
        match Tdmd.Solvers.find_tree algo with
        | None -> ()
        | Some solve -> publish_outcome (solve ~rng:(Rng.split rng) ~k:t.k tree))
      ))

let start ?(members = default_members)
    ?(domains = Tdmd_prelude.Parallel.recommended_domains ()) ?steps ?tree
    ?on_publish ~rng ~k inst =
  let member_count = List.length members in
  if member_count = 0 then invalid_arg "Portfolio.start: members is empty";
  if k < 0 then invalid_arg "Portfolio.start: k must be >= 0";
  (* Fixed per-member split of the one root seed, in member-list order:
     reproducibility does not depend on which domain runs what. *)
  let seeded = List.mapi (fun i m -> (i + 1, Rng.split rng, m)) members in
  let scratch = Oracle.create inst in
  let fallback = Search.greedy_cover inst ~k in
  let _, fallback_feasible = Search.eval scratch fallback in
  let fallback_bandwidth = Oracle.bandwidth scratch in
  let pool =
    Pool.create
      ~domains:(max 1 (min domains member_count))
      ~capacity:member_count ()
  in
  let t =
    {
      inst;
      k;
      steps;
      tree;
      cell = Atomic.make None;
      improvements = Atomic.make 0;
      pool;
      member_count;
      finished = Atomic.make 0;
      fallback;
      fallback_feasible;
      fallback_bandwidth;
      on_publish;
      joined = false;
    }
  in
  (* The greedy cover is published synchronously (rank 0, member
     "cover") before any member starts: a deadline-bounded await always
     has a feasible answer in hand when one is this easy to build. *)
  if fallback_feasible then publish t scratch ~member:"cover" ~rank:0 fallback;
  List.iter
    (fun (rank, mrng, m) ->
      let accepted =
        Pool.submit t.pool (fun () ->
            Fun.protect
              ~finally:(fun () -> Atomic.incr t.finished)
              (fun () -> run_member t ~rank ~rng:mrng m))
      in
      if not accepted then Atomic.incr t.finished)
    seeded;
  t

let best_now t = Atomic.get t.cell
let improvements t = Atomic.get t.improvements

let stop t =
  if not t.joined then begin
    t.joined <- true;
    Pool.cancel t.pool;
    Pool.shutdown t.pool
  end

let now_ms () = Int64.to_float (Tdmd_obs.Clock.now_ns ()) /. 1e6

let await ?deadline_ms t =
  (match deadline_ms with
  | None ->
    while Atomic.get t.finished < t.member_count do
      Unix.sleepf 0.001
    done
  | Some ms ->
    let until = now_ms () +. float_of_int (max 0 ms) in
    while Atomic.get t.finished < t.member_count && now_ms () < until do
      Unix.sleepf 0.001
    done);
  stop t;
  best_now t

let outcome_of ?telemetry t best =
  let tel = match telemetry with Some tel -> tel | None -> Telemetry.create () in
  Telemetry.set tel "members" (Telemetry.Int t.member_count);
  Telemetry.set tel "improvements" (Telemetry.Int (improvements t));
  (match t.steps with
  | Some s -> Telemetry.set tel "member_steps" (Telemetry.Int s)
  | None -> ());
  let placement, bandwidth, feasible, member =
    match best with
    | Some b -> (b.placement, b.bandwidth, true, b.member)
    | None ->
      (t.fallback, t.fallback_bandwidth, t.fallback_feasible, "fallback")
  in
  Telemetry.set tel "member" (Telemetry.String member);
  Telemetry.set tel "placement_size" (Telemetry.Int (List.length placement));
  Tdmd.Solver_intf.outcome
    ~placement:(Tdmd.Placement.of_list placement)
    ~bandwidth ~feasible ~telemetry:tel
