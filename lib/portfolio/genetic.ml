module Oracle = Tdmd.Inc_oracle
module Rng = Tdmd_prelude.Rng

type indiv = { verts : int list; volume : int; ok : bool }

(* Strict fitness order: feasible beats infeasible, then higher exact
   volume, then the lexicographically smaller placement.  Strictness
   makes worst-replacement deterministic under ties. *)
let fitter a b =
  if a.ok <> b.ok then a.ok
  else if a.volume <> b.volume then a.volume > b.volume
  else Search.compare_verts a.verts b.verts < 0

let pop_size = 12

let tournament rng pop =
  let i = Rng.int rng (Array.length pop) in
  let j = Rng.int rng (Array.length pop) in
  if fitter pop.(j) pop.(i) then pop.(j) else pop.(i)

(* Uniform crossover over the parents' union: vertices both parents
   agree on are kept, the rest are coin-flipped. *)
let crossover rng a b =
  let union = List.sort_uniq Int.compare (a.verts @ b.verts) in
  List.filter
    (fun v -> (List.mem v a.verts && List.mem v b.verts) || Rng.bool rng)
    union

let mutate rng useful child =
  if Rng.int rng 4 <> 0 then child
  else
    let v = useful.(Rng.int rng (Array.length useful)) in
    if List.mem v child then List.filter (fun u -> u <> v) child
    else v :: child

(* Enforce the budget by keeping a uniformly-drawn k-subset. *)
let clamp rng ~k verts =
  let arr = Array.of_list verts in
  if Array.length arr <= k then verts
  else begin
    Rng.shuffle rng arr;
    List.sort_uniq Int.compare (Array.to_list (Array.sub arr 0 k))
  end

let run ~rng ~k ~steps ?init ?(should_stop = fun () -> false)
    ?(on_best = fun ~volume:_ ~placement:_ -> ()) inst =
  let useful = Search.useful_vertices inst in
  if k <= 0 || Array.length useful = 0 then
    Search.no_result ~feasible:(Oracle.is_feasible (Oracle.create inst))
  else begin
    let oracle = Oracle.create inst in
    let assess verts =
      let repaired = Tdmd.Cover_fixup.within inst ~chosen:verts ~budget:k in
      let volume, ok = Search.eval oracle repaired in
      { verts = Search.sorted_verts oracle; volume; ok }
    in
    let random_verts () =
      let want = 1 + Rng.int rng k in
      let rec draw acc n attempts =
        if n >= want || attempts >= 4 * want then acc
        else
          let v = useful.(Rng.int rng (Array.length useful)) in
          if List.mem v acc then draw acc n (attempts + 1)
          else draw (v :: acc) (n + 1) (attempts + 1)
      in
      draw [] 0 0
    in
    let seed0 =
      match init with Some p -> p | None -> Search.greedy_cover inst ~k
    in
    (* Explicit fill loop: rng draws must happen in slot order, which
       [Array.init]'s evaluation order does not guarantee. *)
    let pop = Array.make pop_size (assess seed0) in
    for i = 1 to pop_size - 1 do
      pop.(i) <- assess (random_verts ())
    done;
    let best = ref None in
    let improvements = ref 0 in
    let consider ind =
      if ind.ok then begin
        let improved =
          match !best with None -> true | Some b -> ind.volume > b.volume
        in
        if improved then begin
          best := Some ind;
          incr improvements;
          on_best ~volume:ind.volume ~placement:ind.verts
        end
      end
    in
    Array.iter consider pop;
    let executed = ref 0 in
    (try
       for _step = 0 to steps - 1 do
         if should_stop () then raise Stdlib.Exit;
         incr executed;
         let a = tournament rng pop in
         let b = tournament rng pop in
         let child =
           clamp rng ~k (mutate rng useful (crossover rng a b))
         in
         let ind = assess child in
         (* Steady state: the child replaces the current worst, and only
            when strictly fitter. *)
         let worst = ref 0 in
         for i = 1 to pop_size - 1 do
           if fitter pop.(!worst) pop.(i) then worst := i
         done;
         if fitter ind pop.(!worst) then pop.(!worst) <- ind;
         consider ind
       done
     with Stdlib.Exit -> ());
    match !best with
    | Some ind ->
      {
        Search.placement = ind.verts;
        volume = ind.volume;
        feasible = true;
        steps = !executed;
        improvements = !improvements;
      }
    | None ->
      {
        Search.placement = [];
        volume = 0;
        feasible = false;
        steps = !executed;
        improvements = 0;
      }
  end
