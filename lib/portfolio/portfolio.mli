(** Anytime portfolio runner: race metaheuristics and registry seeds
    across {!Tdmd_prelude.Parallel.Pool} domains.

    {!start} spawns one pool job per configured member — the simulated
    annealer, the genetic search, and restart-wrapped registry solvers
    ([Seed "gtp"], [Seed "random"], …).  Every member publishes its
    feasible strict improvements into one lock-free best-so-far cell
    ([Atomic] compare-and-swap keeping the maximum of a strict total
    order on exact-integer volume, with lexicographic-placement then
    member-rank tie-breaks), so {!best_now} is wait-free and the cell
    content never worsens.

    {b Determinism.}  Each member receives a fixed split of the one
    root [rng], taken in member-list order before any domain starts.
    With a step-count budget ([?steps]) the set of candidates every
    member publishes is therefore a pure function of [(seed, k, steps,
    members)] — and since the cell keeps the {e maximum} of a total
    order, the final {!await} answer is bit-identical across runs and
    across domain counts.  (Wall-clock deadlines trade that determinism
    for latency, by design.)

    {b Anytime contract.}  [start] synchronously publishes the greedy
    cover (member ["cover"]) before spawning anything, so once [start]
    returns, a feasible instance always has a feasible best-so-far —
    an [await ~deadline_ms:0] never comes back empty-handed. *)

type member = Anneal | Genetic | Seed of string
(** [Seed name] wraps the registry solver [name] in a restart loop with
    per-restart rng splits; deterministic solvers stop after two
    identical consecutive runs.  A [Seed] naming a tree-only solver
    contributes only when {!start} received [?tree]. *)

val member_name : member -> string
val default_members : member list
(** [Seed "gtp"; Anneal; Genetic; Seed "hat"; Seed "random"]. *)

type best = {
  volume : int;  (** exact-integer diminished volume (maximised) *)
  bandwidth : float;  (** presentation-layer bandwidth of [placement] *)
  placement : int list;  (** sorted, feasible *)
  member : string;  (** who published it *)
  rank : int;  (** publisher's 1-based member-list position; 0 = cover *)
}

type t

val start :
  ?members:member list ->
  ?domains:int ->
  ?steps:int ->
  ?tree:Tdmd.Instance.Tree.t ->
  ?on_publish:(best -> unit) ->
  rng:Tdmd_prelude.Rng.t ->
  k:int ->
  Tdmd.Instance.t ->
  t
(** Launch the race.  [?steps] bounds each member's move count (the
    reproducible budget); omitted, members run until {!stop} or
    {!await}'s deadline cancels them.  [?domains] caps the pool size
    (default {!Tdmd_prelude.Parallel.recommended_domains}, clamped to
    the member count).  [?on_publish] observes every successful cell
    improvement, in publication order.
    @raise Invalid_argument on an empty member list or [k < 0]. *)

val best_now : t -> best option
(** Wait-free read of the best-so-far cell ([None] only while no
    feasible placement has been published — i.e. the greedy cover
    itself found nothing feasible). *)

val improvements : t -> int
(** Successful cell improvements so far (scheduling-dependent; the
    {e final placement} is deterministic, this counter is not). *)

val await : ?deadline_ms:int -> t -> best option
(** Block until every member finished (no deadline) or until
    [deadline_ms] elapses, whichever first; then {!stop} and return the
    cell.  In-flight members are cancelled cooperatively, so the call
    may overshoot the deadline by one member step. *)

val stop : t -> unit
(** Cancel cooperatively and join the pool.  Idempotent; {!best_now}
    remains readable afterwards. *)

val outcome_of :
  ?telemetry:Tdmd_obs.Telemetry.t -> t -> best option -> Tdmd.Solver_intf.outcome
(** Package an {!await} result as a registry outcome.  [None] falls
    back to the greedy cover computed at {!start} (flagged as member
    ["fallback"], infeasible when even the cover is).  Member,
    improvement-count and budget stats ride along in the telemetry. *)
