(** Registry hookup for the portfolio solvers. *)

val install : unit -> unit
(** Register ["anneal"], ["genetic"] and ["portfolio"] in
    {!Tdmd.Solvers} (via {!Tdmd.Solvers.register_general}) with fixed
    step budgets, making them reachable from [--algo], the serve layer
    and the bench sweep.  Idempotent; call once at start-up.  The
    serving layer ([Tdmd_server.Session]) installs on module
    initialisation, so any program linking [tdmd.server] gets the names
    for free. *)

val anneal_solver : Tdmd.Solvers.general_solver
val genetic_solver : Tdmd.Solvers.general_solver
val portfolio_solver : Tdmd.Solvers.general_solver
(** The registered entries, exposed for direct calls and tests. *)
