open Tdmd_prelude
module S = Tdmd_submod.Submodular

(* A concrete weighted-coverage oracle (classically submodular). *)
let coverage_oracle () =
  let sets = [| [ 0; 1 ]; [ 1; 2; 3 ]; [ 3 ]; [ 0; 1; 2; 3; 4 ] |] in
  let weights = [| 5.0; 1.0; 3.0; 2.0; 0.5 |] in
  S.make
    ~ground:(Array.length sets)
    ~value:(fun chosen ->
      let covered = Hashtbl.create 8 in
      List.iter (fun i -> List.iter (fun e -> Hashtbl.replace covered e ()) sets.(i)) chosen;
      Hashtbl.fold (fun e () acc -> acc +. weights.(e)) covered 0.0)
    ()

let test_greedy_coverage () =
  let oracle = coverage_oracle () in
  let r = S.greedy ~k:2 oracle in
  (* Best first pick: set 3 (value 11.5); then set 0 adds nothing new
     except... set 0 = {0,1} both covered; every other adds 0 -> stops. *)
  Alcotest.(check (list int)) "single set suffices" [ 3 ] r.S.chosen;
  Alcotest.(check int) "one gain" 1 (List.length r.S.gains);
  Alcotest.(check (float 1e-9)) "gain value" 11.5 (List.hd r.S.gains)

let test_greedy_k_limit () =
  let oracle =
    S.make ~ground:4 ~value:(fun chosen -> float_of_int (List.length chosen)) ()
  in
  let r = S.greedy ~k:2 oracle in
  Alcotest.(check int) "stops at k" 2 (List.length r.S.chosen)

let test_greedy_stop () =
  let oracle =
    S.make ~ground:5 ~value:(fun chosen -> float_of_int (List.length chosen)) ()
  in
  let r = S.greedy ~stop:(fun chosen -> List.length chosen >= 3) ~k:5 oracle in
  Alcotest.(check int) "stop predicate respected" 3 (List.length r.S.chosen)

let test_lazy_matches_plain_coverage () =
  let oracle = coverage_oracle () in
  let a = S.greedy ~k:3 oracle in
  let b = S.lazy_greedy ~k:3 oracle in
  Alcotest.(check (list int)) "same selection" a.S.chosen b.S.chosen;
  (* On tiny ground sets the lazy bookkeeping can cost a few extra
     evaluations; the saving shows at scale (asserted in the TDMD
     property below and measured in the ablation bench). *)
  Alcotest.(check bool) "calls comparable" true
    (b.S.oracle_calls <= a.S.oracle_calls + oracle.S.ground)

let test_checkers_accept_coverage () =
  let rng = Rng.create 31 in
  let oracle = coverage_oracle () in
  (match S.check_monotone rng ~trials:300 oracle with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  match S.check_submodular rng ~trials:300 oracle with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_checkers_reject_supermodular () =
  (* f(S) = |S|^2 is supermodular and must be caught. *)
  let oracle =
    S.make ~ground:6
      ~value:(fun chosen -> let n = float_of_int (List.length chosen) in n *. n)
      ()
  in
  let rng = Rng.create 32 in
  match S.check_submodular rng ~trials:500 oracle with
  | Ok () -> Alcotest.fail "supermodular function not detected"
  | Error _ -> ()

(* Theorem 2, empirically: the TDMD decrement of random instances is
   monotone submodular. *)
let prop_decrement_submodular =
  QCheck.Test.make ~name:"theorem 2: decrement is monotone submodular" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:(2 * n) ~max_rate:5
          ~lambda:(Rng.float rng 1.0)
      in
      let oracle = Tdmd.Bandwidth.oracle inst in
      S.check_monotone rng ~trials:60 oracle = Ok ()
      && S.check_submodular rng ~trials:60 oracle = Ok ())

(* CELF equivalence on the actual TDMD objective. *)
let prop_celf_equals_greedy_on_tdmd =
  QCheck.Test.make ~name:"CELF = plain greedy on TDMD decrement" ~count:30
    QCheck.(pair (int_bound 100000) (int_range 4 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:n ~max_rate:4 ~lambda:0.5
      in
      let oracle = Tdmd.Bandwidth.oracle inst in
      let a = S.greedy ~k:4 oracle in
      let b = S.lazy_greedy ~k:4 oracle in
      (* Selections can differ only on exact ties; values must agree. *)
      Float.abs (oracle.S.value a.S.chosen -. oracle.S.value b.S.chosen) < 1e-6)

let suite =
  [
    Alcotest.test_case "greedy: weighted coverage" `Quick test_greedy_coverage;
    Alcotest.test_case "greedy: cardinality limit" `Quick test_greedy_k_limit;
    Alcotest.test_case "greedy: stop predicate" `Quick test_greedy_stop;
    Alcotest.test_case "celf: matches plain greedy" `Quick
      test_lazy_matches_plain_coverage;
    Alcotest.test_case "checkers: accept coverage" `Quick test_checkers_accept_coverage;
    Alcotest.test_case "checkers: reject supermodular" `Quick
      test_checkers_reject_supermodular;
    QCheck_alcotest.to_alcotest prop_decrement_submodular;
    QCheck_alcotest.to_alcotest prop_celf_equals_greedy_on_tdmd;
  ]
