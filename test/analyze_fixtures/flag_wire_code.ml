(* must-flag: unregistered wire error codes on both sides of the wire
   (constructed reply at line 2, client match arm at line 4) *)
let reply () = Error ("nonsense-code", "boom")

let classify json = match json with Json.String "mystery-code" -> 1 | _ -> 0
