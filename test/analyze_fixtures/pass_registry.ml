(* must-pass: every wire/fault/counter literal below is in
   analyze_fixtures/registry.txt, and every registry entry is
   referenced here (so the orphan check stays quiet too) *)
let request = ("op", Json.String "ping")

let parse op = match op with "ping" -> true | _ -> false

let reply () = Error ("bad-request", "malformed request")

let fire faults = Faults.hit faults "wal.write"

let inject = "short@wal.write:1"

let bump tel = Tel.count tel "requests" 1
