(* must-flag: fault points the registry does not know (a code-declared
   point at line 2, an injection spec at line 4) *)
let fire faults = Faults.hit faults "no.such.point"

let inject = "crash@absent.point:1"
