(* must-flag: a telemetry counter the registry does not know (line 2) *)
let bump tel = Tel.count tel "bogus_counter" 1
