(* must-flag: shared mutable state mutated inside a spawned closure
   without with_lock or Atomic (lines 8 and 9) *)
let tally = Hashtbl.create 8

let run total =
  Thread.create
    (fun () ->
      total := !total + 1;
      Hashtbl.replace tally "x" 1)
    ()
