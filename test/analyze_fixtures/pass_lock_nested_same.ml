(* must-pass: sequential re-use of one lock, the same A->B nesting from
   two call sites, and a spawn under a held lock (the new thread starts
   with an empty held set) are all legal -- none may be reported as a
   cycle or a re-entry *)
let a = Mutex.create ()
let b = Mutex.create ()

let sequential () =
  Locked.with_lock a (fun () -> ());
  Locked.with_lock a (fun () -> ())

let nested_ab () =
  Locked.with_lock a (fun () ->
      Locked.with_lock b (fun () -> ()))

let nested_ab_again () =
  Locked.with_lock a (fun () ->
      Locked.with_lock b (fun () -> ()))

let spawn_under_lock () =
  Locked.with_lock a (fun () ->
      Thread.create (fun () -> Locked.with_lock a (fun () -> ())) ())
