(* must-flag: wire ops nobody registered (lines 2 and 4) *)
let bad_request = ("op", Json.String "frobnicate")

let dispatch op = match op with "mystery" -> 1 | _ -> 0
