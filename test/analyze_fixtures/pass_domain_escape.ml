(* must-pass: closure-local state, Atomic operations, and
   with_lock-guarded mutation may all cross a spawn boundary *)
let lock = Mutex.create ()
let tally = Hashtbl.create 8
let hits = Atomic.make 0

let run () =
  Thread.create
    (fun () ->
      let local = Hashtbl.create 4 in
      Hashtbl.replace local "x" 1;
      Atomic.incr hits;
      Locked.with_lock lock (fun () -> Hashtbl.replace tally "x" 1))
    ()
