(* must-flag: re-acquiring a held mutex (OCaml Mutex is not reentrant) *)
let l = Mutex.create ()

let f () =
  Locked.with_lock l (fun () ->
      Locked.with_lock l (fun () -> ()))
