(* must-flag: deliberate A->B / B->A lock-order cycle *)
let la = Mutex.create ()
let lb = Mutex.create ()

let f () =
  Locked.with_lock la (fun () ->
      Locked.with_lock lb (fun () -> ()))

let g () =
  Locked.with_lock lb (fun () ->
      Locked.with_lock la (fun () -> ()))
