(* must-flag: lock-order cycle threaded through a callee, so the
   witness is an interprocedural chain *)
let a = Mutex.create ()
let b = Mutex.create ()

let take_b () = Locked.with_lock b (fun () -> ())

let f () =
  Locked.with_lock a (fun () ->
      take_b ())

let g () =
  Locked.with_lock b (fun () ->
      Locked.with_lock a (fun () -> ()))
