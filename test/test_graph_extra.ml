(* Tests for the extended graph algorithms: MST, all-pairs, Yen's
   k-shortest paths, Bellman-Ford. *)

open Tdmd_prelude
module G = Tdmd_graph.Digraph

let weighted_square () =
  (* 0 -1- 1, 1 -2- 3, 0 -4- 2, 2 -1- 3, 0 -10- 3 *)
  let g = G.create 4 in
  G.add_undirected ~weight:1.0 g 0 1;
  G.add_undirected ~weight:2.0 g 1 3;
  G.add_undirected ~weight:4.0 g 0 2;
  G.add_undirected ~weight:1.0 g 2 3;
  G.add_undirected ~weight:10.0 g 0 3;
  g

let test_mst_square () =
  let g = weighted_square () in
  let mst = Tdmd_graph.Mst.kruskal g in
  Alcotest.(check int) "n-1 edges" 3 (List.length mst);
  Alcotest.(check (float 1e-9)) "weight 1+2+1" 4.0 (Tdmd_graph.Mst.total_weight mst);
  let t = Tdmd_graph.Mst.spanning_tree_digraph g in
  Alcotest.(check bool) "tree connected" true (G.is_connected_undirected t);
  Alcotest.(check int) "bidirectional arcs" 6 (G.edge_count t)

let test_mst_forest () =
  let g = G.create 4 in
  G.add_undirected g 0 1;
  G.add_undirected g 2 3;
  Alcotest.(check int) "spanning forest" 2 (List.length (Tdmd_graph.Mst.kruskal g))

let prop_mst_weight_minimal =
  QCheck.Test.make ~name:"MST <= any random spanning tree" ~count:60
    QCheck.(pair (int_range 2 15) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = G.create n in
      (* Random connected weighted graph. *)
      let order = Array.init n (fun i -> i) in
      Rng.shuffle rng order;
      for i = 1 to n - 1 do
        G.add_undirected ~weight:(1.0 +. Rng.float rng 9.0) g order.(i)
          order.(Rng.int rng i)
      done;
      for _ = 1 to n do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v && not (G.mem_edge g u v) then
          G.add_undirected ~weight:(1.0 +. Rng.float rng 9.0) g u v
      done;
      let mst_w = Tdmd_graph.Mst.total_weight (Tdmd_graph.Mst.kruskal g) in
      (* The random-attachment spanning tree is one feasible spanning
         tree; the MST must not exceed its weight. *)
      let bfs_tree = Tdmd_topo.Topo_general.spanning_tree rng g ~root:0 in
      let bfs_w = ref 0.0 in
      for v = 0 to n - 1 do
        let p = Tdmd_tree.Rooted_tree.parent bfs_tree v in
        if p >= 0 then
          bfs_w := !bfs_w +. Float.min (G.weight g v p) (G.weight g p v)
      done;
      mst_w <= !bfs_w +. 1e-9)

let test_floyd_warshall () =
  let g = weighted_square () in
  let d = Tdmd_graph.Floyd_warshall.distances g in
  Alcotest.(check (float 1e-9)) "0->3 shortest" 3.0 d.(0).(3);
  Alcotest.(check (float 1e-9)) "diagonal" 0.0 d.(2).(2);
  Alcotest.(check (float 1e-9)) "0->2 via 3" 4.0 d.(0).(2);
  Alcotest.(check (float 1e-9)) "diameter" 4.0 (Tdmd_graph.Floyd_warshall.diameter g)

let prop_floyd_matches_dijkstra =
  QCheck.Test.make ~name:"floyd-warshall = dijkstra from every source" ~count:40
    QCheck.(pair (int_range 2 15) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Tdmd_topo.Topo_general.erdos_renyi rng n ~p:0.3 in
      let fw = Tdmd_graph.Floyd_warshall.distances g in
      List.for_all
        (fun s ->
          let dj = Tdmd_graph.Dijkstra.distances g s in
          Array.for_all2 (fun a b -> a = b) fw.(s) dj)
        (Listx.range 0 (n - 1)))

let test_yen_square () =
  let g = weighted_square () in
  let paths = Tdmd_graph.Yen.k_shortest g ~src:0 ~dst:3 ~k:4 in
  Alcotest.(check int) "three loopless paths" 3 (List.length paths);
  (match paths with
  | (p1, w1) :: (p2, w2) :: (p3, w3) :: _ ->
    Alcotest.(check (list int)) "best" [ 0; 1; 3 ] p1;
    Alcotest.(check (float 1e-9)) "best weight" 3.0 w1;
    Alcotest.(check (list int)) "second" [ 0; 2; 3 ] p2;
    Alcotest.(check (float 1e-9)) "second weight" 5.0 w2;
    Alcotest.(check (list int)) "third" [ 0; 3 ] p3;
    Alcotest.(check (float 1e-9)) "third weight" 10.0 w3
  | _ -> Alcotest.fail "expected three paths");
  Alcotest.(check (list (pair (list int) (float 1e-9)))) "k=1 just shortest"
    [ ([ 0; 1; 3 ], 3.0) ]
    (Tdmd_graph.Yen.k_shortest g ~src:0 ~dst:3 ~k:1)

let prop_yen_sorted_loopless =
  QCheck.Test.make ~name:"yen: sorted, loopless, distinct, starts with dijkstra"
    ~count:40
    QCheck.(pair (int_range 3 12) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Tdmd_topo.Topo_general.erdos_renyi rng n ~p:0.3 in
      let src = 0 and dst = n - 1 in
      let paths = Tdmd_graph.Yen.k_shortest g ~src ~dst ~k:5 in
      let weights = List.map snd paths in
      let sorted = List.sort compare weights in
      let distinct =
        List.length (List.sort_uniq compare (List.map fst paths))
        = List.length paths
      in
      let loopless =
        List.for_all
          (fun (p, _) -> List.length (List.sort_uniq compare p) = List.length p)
          paths
      in
      let first_matches =
        match (paths, Tdmd_graph.Dijkstra.shortest_path g ~src ~dst) with
        | (_, w) :: _, Some (_, w') -> w = w'
        | [], None -> true
        | _ -> false
      in
      weights = sorted && distinct && loopless && first_matches)

let test_bellman_ford () =
  let g = weighted_square () in
  (match Tdmd_graph.Bellman_ford.distances g 0 with
  | Tdmd_graph.Bellman_ford.Distances d ->
    Alcotest.(check (float 1e-9)) "0->3" 3.0 d.(3)
  | Tdmd_graph.Bellman_ford.Negative_cycle ->
    Alcotest.fail "no negative cycle here");
  (* Negative edge but no cycle. *)
  let h = G.create 3 in
  G.add_edge ~weight:5.0 h 0 1;
  G.add_edge ~weight:(-3.0) h 1 2;
  (match Tdmd_graph.Bellman_ford.distances h 0 with
  | Tdmd_graph.Bellman_ford.Distances d ->
    Alcotest.(check (float 1e-9)) "negative edge ok" 2.0 d.(2)
  | Tdmd_graph.Bellman_ford.Negative_cycle -> Alcotest.fail "no cycle");
  (* Genuine negative cycle. *)
  let c = G.create 2 in
  G.add_edge ~weight:1.0 c 0 1;
  G.add_edge ~weight:(-2.0) c 1 0;
  match Tdmd_graph.Bellman_ford.distances c 0 with
  | Tdmd_graph.Bellman_ford.Negative_cycle -> ()
  | Tdmd_graph.Bellman_ford.Distances _ ->
    Alcotest.fail "negative cycle missed"

let prop_bellman_matches_dijkstra =
  QCheck.Test.make ~name:"bellman-ford = dijkstra on non-negative weights"
    ~count:40
    QCheck.(pair (int_range 2 20) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Tdmd_topo.Topo_general.erdos_renyi rng n ~p:0.2 in
      match Tdmd_graph.Bellman_ford.distances g 0 with
      | Tdmd_graph.Bellman_ford.Negative_cycle -> false
      | Tdmd_graph.Bellman_ford.Distances bf ->
        Array.for_all2 (fun a b -> a = b) bf (Tdmd_graph.Dijkstra.distances g 0))

let suite =
  [
    Alcotest.test_case "mst: weighted square" `Quick test_mst_square;
    Alcotest.test_case "mst: forest" `Quick test_mst_forest;
    QCheck_alcotest.to_alcotest prop_mst_weight_minimal;
    Alcotest.test_case "floyd-warshall: square" `Quick test_floyd_warshall;
    QCheck_alcotest.to_alcotest prop_floyd_matches_dijkstra;
    Alcotest.test_case "yen: square paths" `Quick test_yen_square;
    QCheck_alcotest.to_alcotest prop_yen_sorted_loopless;
    Alcotest.test_case "bellman-ford: cases" `Quick test_bellman_ford;
    QCheck_alcotest.to_alcotest prop_bellman_matches_dijkstra;
  ]
