(* Tdmd_obs: telemetry spans/counters, JSON round-trips and the
   JSON-lines sink. *)

module Tel = Tdmd_obs.Telemetry
module Json = Tdmd_obs.Json
module Sink = Tdmd_obs.Sink

let test_counters () =
  let tel = Tel.create () in
  Alcotest.(check int) "absent counter is 0" 0 (Tel.get_count tel "x");
  Tel.count tel "x" 3;
  Tel.count tel "x" 4;
  Alcotest.(check int) "counters accumulate" 7 (Tel.get_count tel "x");
  Tel.gauge tel "g" 1.5;
  Tel.gauge tel "g" 2.5;
  Alcotest.(check bool) "gauge last write wins" true
    (Tel.find tel "g" = Some (Tel.Float 2.5));
  Alcotest.(check bool) "metrics keep first-write order" true
    (List.map fst (Tel.metrics tel) = [ "x"; "g" ]);
  Alcotest.check_raises "count on a gauge rejected"
    (Invalid_argument "Telemetry.count: g is not a counter") (fun () ->
      Tel.count tel "g" 1)

let test_span_nesting () =
  let tel = Tel.create () in
  Tel.with_span tel "outer" (fun () ->
      Tel.with_span tel "first" (fun () -> Tel.count tel "work" 1);
      Tel.with_span tel "second" ignore);
  Tel.with_span tel "later" ignore;
  match Tel.spans tel with
  | [ outer; later ] ->
    Alcotest.(check string) "root label" "outer" outer.Tel.label;
    Alcotest.(check string) "second root" "later" later.Tel.label;
    Alcotest.(check (list string)) "children in start order" [ "first"; "second" ]
      (List.map (fun s -> s.Tel.label) outer.Tel.children);
    let child_total =
      List.fold_left
        (fun acc s -> Int64.add acc s.Tel.dur_ns)
        0L outer.Tel.children
    in
    Alcotest.(check bool) "parent spans its children" true
      (outer.Tel.dur_ns >= child_total)
  | spans -> Alcotest.failf "expected 2 root spans, got %d" (List.length spans)

let test_span_closes_on_raise () =
  let tel = Tel.create () in
  (try Tel.with_span tel "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span closed despite raise" 1 (List.length (Tel.spans tel));
  Alcotest.check_raises "close without open rejected"
    (Invalid_argument "Telemetry.span_close: no open span") (fun () ->
      Tel.span_close tel)

let test_merge () =
  let a = Tel.create () and b = Tel.create () in
  Tel.count a "calls" 2;
  Tel.gauge a "theta" 4.0;
  Tel.with_span a "a-root" ignore;
  Tel.count b "calls" 5;
  Tel.count b "extra" 1;
  Tel.gauge b "theta" 8.0;
  Tel.with_span b "b-root" ignore;
  Tel.merge ~into:a b;
  Alcotest.(check int) "counters add" 7 (Tel.get_count a "calls");
  Alcotest.(check int) "new counters appear" 1 (Tel.get_count a "extra");
  Alcotest.(check bool) "gauges overwrite" true
    (Tel.find a "theta" = Some (Tel.Float 8.0));
  Alcotest.(check (list string)) "spans append" [ "a-root"; "b-root" ]
    (List.map (fun s -> s.Tel.label) (Tel.spans a))

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("f", Json.Float 1.5);
        ("whole", Json.Float 3.0);
        ("s", Json.String "quote \" slash \\ newline \n");
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float (-2.5) ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok v' ->
    Alcotest.(check bool) "emit/parse round-trip" true (v = v');
    Alcotest.(check bool) "whole floats stay floats" true
      (Json.member "whole" v' = Some (Json.Float 3.0))

(* print ∘ parse = id over random JSON trees.  NaN/infinite floats are
   excluded by construction: they deliberately emit as [null] (JSON has
   no spelling for them), the one documented lossy case. *)
let json_arbitrary =
  let open QCheck.Gen in
  let any_string = string_size ~gen:char (int_bound 12) in
  let finite_float =
    oneof
      [
        oneofl
          [ 0.0; -0.0; 1.0; -1.5; 0.1; 1e-300; 1e300; Float.max_float;
            Float.min_float; 4.0 /. 3.0 ];
        map (fun f -> if Float.is_finite f then f else 0.0) float;
      ]
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) finite_float;
        map (fun s -> Json.String s) any_string;
      ]
  in
  let tree =
    fix
      (fun self n ->
        if n <= 0 then scalar
        else
          frequency
            [
              (3, scalar);
              (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
              ( 1,
                map
                  (fun l -> Json.Obj l)
                  (list_size (int_bound 4)
                     (pair any_string (self (n / 2)))) );
            ])
      8
  in
  QCheck.make ~print:Json.to_string tree

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json: print ∘ parse = id" ~count:500 json_arbitrary
    (fun v -> Json.of_string (Json.to_string v) = Ok v)

let test_json_escapes () =
  (* Control characters escape as \uXXXX and survive the round trip. *)
  let controls = String.init 0x20 Char.chr in
  Alcotest.(check bool) "control chars round-trip" true
    (Json.of_string (Json.to_string (Json.String controls))
    = Ok (Json.String controls));
  Alcotest.(check string) "low codes use \\u form" {|"\u0001"|}
    (Json.to_string (Json.String "\x01"));
  (* \uXXXX decodes to UTF-8, including astral plane surrogate pairs. *)
  Alcotest.(check bool) "\\u0041 is A" true
    (Json.of_string {|"\u0041\u00e9"|} = Ok (Json.String "A\xc3\xa9"));
  Alcotest.(check bool) "surrogate pair decodes" true
    (Json.of_string {|"\ud83d\ude00"|} = Ok (Json.String "\xf0\x9f\x98\x80"));
  (* Number edge cases: exponents are floats, bare digits are ints. *)
  Alcotest.(check bool) "1e3 is a float" true
    (Json.of_string "1e3" = Ok (Json.Float 1000.0));
  Alcotest.(check bool) "-12 is an int" true
    (Json.of_string "-12" = Ok (Json.Int (-12)));
  Alcotest.(check bool) "max_int round-trips" true
    (Json.of_string (Json.to_string (Json.Int max_int)) = Ok (Json.Int max_int));
  (* The documented lossy case: non-finite floats emit as null. *)
  Alcotest.(check string) "infinity emits null" "null"
    (Json.to_string (Json.Float infinity));
  Alcotest.(check string) "nan emits null" "null"
    (Json.to_string (Json.Float Float.nan))

let test_sink_jsonl () =
  let tel = Tel.create () in
  Tel.count tel "oracle_calls" 9;
  Tel.with_span tel "solve" (fun () -> Tel.with_span tel "inner" ignore);
  let buf = Buffer.create 256 in
  let sink = Sink.of_buffer buf in
  Sink.emit sink (Sink.record ~event:"run" ~extra:[ ("k", Json.Int 3) ] tel);
  Sink.emit sink (Sink.record ~event:"run" tel);
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one record per line" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "invalid JSON line %S: %s" line e
      | Ok record ->
        Alcotest.(check bool) "event field" true
          (Json.member "event" record = Some (Json.String "run"));
        let metrics =
          Option.bind (Json.member "telemetry" record) (Json.member "metrics")
        in
        Alcotest.(check bool) "counter survives" true
          (Option.bind metrics (Json.member "oracle_calls") = Some (Json.Int 9));
        let spans =
          Option.bind (Json.member "telemetry" record) (Json.member "spans")
        in
        (match spans with
        | Some (Json.List [ root ]) ->
          Alcotest.(check bool) "span label" true
            (Json.member "label" root = Some (Json.String "solve"));
          (match Json.member "children" root with
          | Some (Json.List [ _ ]) -> ()
          | _ -> Alcotest.fail "expected one child span")
        | _ -> Alcotest.fail "expected one root span"))
    lines

let suite =
  [
    Alcotest.test_case "telemetry: counters and gauges" `Quick test_counters;
    Alcotest.test_case "telemetry: span nesting" `Quick test_span_nesting;
    Alcotest.test_case "telemetry: span closes on raise" `Quick
      test_span_closes_on_raise;
    Alcotest.test_case "telemetry: merge" `Quick test_merge;
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "json: escapes and number edges" `Quick test_json_escapes;
    Alcotest.test_case "sink: JSON-lines records" `Quick test_sink_jsonl;
  ]
