(* Tdmd_obs: telemetry spans/counters, JSON round-trips and the
   JSON-lines sink. *)

module Tel = Tdmd_obs.Telemetry
module Json = Tdmd_obs.Json
module Sink = Tdmd_obs.Sink

let test_counters () =
  let tel = Tel.create () in
  Alcotest.(check int) "absent counter is 0" 0 (Tel.get_count tel "x");
  Tel.count tel "x" 3;
  Tel.count tel "x" 4;
  Alcotest.(check int) "counters accumulate" 7 (Tel.get_count tel "x");
  Tel.gauge tel "g" 1.5;
  Tel.gauge tel "g" 2.5;
  Alcotest.(check bool) "gauge last write wins" true
    (Tel.find tel "g" = Some (Tel.Float 2.5));
  Alcotest.(check bool) "metrics keep first-write order" true
    (List.map fst (Tel.metrics tel) = [ "x"; "g" ]);
  Alcotest.check_raises "count on a gauge rejected"
    (Invalid_argument "Telemetry.count: g is not a counter") (fun () ->
      Tel.count tel "g" 1)

let test_span_nesting () =
  let tel = Tel.create () in
  Tel.with_span tel "outer" (fun () ->
      Tel.with_span tel "first" (fun () -> Tel.count tel "work" 1);
      Tel.with_span tel "second" ignore);
  Tel.with_span tel "later" ignore;
  match Tel.spans tel with
  | [ outer; later ] ->
    Alcotest.(check string) "root label" "outer" outer.Tel.label;
    Alcotest.(check string) "second root" "later" later.Tel.label;
    Alcotest.(check (list string)) "children in start order" [ "first"; "second" ]
      (List.map (fun s -> s.Tel.label) outer.Tel.children);
    let child_total =
      List.fold_left
        (fun acc s -> Int64.add acc s.Tel.dur_ns)
        0L outer.Tel.children
    in
    Alcotest.(check bool) "parent spans its children" true
      (outer.Tel.dur_ns >= child_total)
  | spans -> Alcotest.failf "expected 2 root spans, got %d" (List.length spans)

let test_span_closes_on_raise () =
  let tel = Tel.create () in
  (try Tel.with_span tel "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span closed despite raise" 1 (List.length (Tel.spans tel));
  Alcotest.check_raises "close without open rejected"
    (Invalid_argument "Telemetry.span_close: no open span") (fun () ->
      Tel.span_close tel)

let test_merge () =
  let a = Tel.create () and b = Tel.create () in
  Tel.count a "calls" 2;
  Tel.gauge a "theta" 4.0;
  Tel.with_span a "a-root" ignore;
  Tel.count b "calls" 5;
  Tel.count b "extra" 1;
  Tel.gauge b "theta" 8.0;
  Tel.with_span b "b-root" ignore;
  Tel.merge ~into:a b;
  Alcotest.(check int) "counters add" 7 (Tel.get_count a "calls");
  Alcotest.(check int) "new counters appear" 1 (Tel.get_count a "extra");
  Alcotest.(check bool) "gauges overwrite" true
    (Tel.find a "theta" = Some (Tel.Float 8.0));
  Alcotest.(check (list string)) "spans append" [ "a-root"; "b-root" ]
    (List.map (fun s -> s.Tel.label) (Tel.spans a))

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("f", Json.Float 1.5);
        ("whole", Json.Float 3.0);
        ("s", Json.String "quote \" slash \\ newline \n");
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float (-2.5) ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok v' ->
    Alcotest.(check bool) "emit/parse round-trip" true (v = v');
    Alcotest.(check bool) "whole floats stay floats" true
      (Json.member "whole" v' = Some (Json.Float 3.0))

let test_sink_jsonl () =
  let tel = Tel.create () in
  Tel.count tel "oracle_calls" 9;
  Tel.with_span tel "solve" (fun () -> Tel.with_span tel "inner" ignore);
  let buf = Buffer.create 256 in
  let sink = Sink.of_buffer buf in
  Sink.emit sink (Sink.record ~event:"run" ~extra:[ ("k", Json.Int 3) ] tel);
  Sink.emit sink (Sink.record ~event:"run" tel);
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one record per line" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "invalid JSON line %S: %s" line e
      | Ok record ->
        Alcotest.(check bool) "event field" true
          (Json.member "event" record = Some (Json.String "run"));
        let metrics =
          Option.bind (Json.member "telemetry" record) (Json.member "metrics")
        in
        Alcotest.(check bool) "counter survives" true
          (Option.bind metrics (Json.member "oracle_calls") = Some (Json.Int 9));
        let spans =
          Option.bind (Json.member "telemetry" record) (Json.member "spans")
        in
        (match spans with
        | Some (Json.List [ root ]) ->
          Alcotest.(check bool) "span label" true
            (Json.member "label" root = Some (Json.String "solve"));
          (match Json.member "children" root with
          | Some (Json.List [ _ ]) -> ()
          | _ -> Alcotest.fail "expected one child span")
        | _ -> Alcotest.fail "expected one root span"))
    lines

let suite =
  [
    Alcotest.test_case "telemetry: counters and gauges" `Quick test_counters;
    Alcotest.test_case "telemetry: span nesting" `Quick test_span_nesting;
    Alcotest.test_case "telemetry: span closes on raise" `Quick
      test_span_closes_on_raise;
    Alcotest.test_case "telemetry: merge" `Quick test_merge;
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "sink: JSON-lines records" `Quick test_sink_jsonl;
  ]
