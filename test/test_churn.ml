(* Churn-drift regression suite for the rewritten incremental engine.

   The heart of it is a differential test: [Legacy] below is a verbatim
   transcription of the pre-rewrite engine (list-based flow store, float
   marginals with the 1e-9 threshold, unguarded on-path argmax), and at
   [migration_budget 0] the rewritten engine must track it bit for bit
   over random churn timelines — same selection order, same move counts,
   same bandwidth floats.  The remaining tests pin the individual bug
   fixes (deployed-winner guard, exact-integer marginals at extreme
   lambda, unknown-id departures) and the migration-budgeted rebalancer's
   accounting and restore semantics. *)

module Flow = Tdmd_flow.Flow
module Rng = Tdmd_prelude.Rng
module Inc = Tdmd.Incremental

(* ------------------------------------------------------------------ *)
(* The pre-rewrite engine, transcribed                                 *)
(* ------------------------------------------------------------------ *)

module Legacy = struct
  type t = {
    graph : Tdmd_graph.Digraph.t;
    lambda : float;
    k : int;
    mutable current : Flow.t list;  (* arrival order *)
    ids : (int, unit) Hashtbl.t;
    mutable placed : int list;      (* deployment, selection order *)
    mutable moves : int;
  }

  let create ~graph ~lambda ~k =
    { graph; lambda; k; current = []; ids = Hashtbl.create 64; placed = [];
      moves = 0 }

  let instance t =
    Tdmd.Instance.make ~graph:t.graph ~flows:t.current ~lambda:t.lambda

  let placement t = Tdmd.Placement.of_list t.placed
  let flows t = t.current
  let placed_order t = t.placed
  let bandwidth t = Tdmd.Bandwidth.total (instance t) (placement t)
  let feasible t = Tdmd.Allocation.is_feasible (instance t) (placement t)
  let moves t = t.moves

  let set_placed t placed =
    let before = Tdmd.Placement.of_list t.placed in
    let after = Tdmd.Placement.of_list placed in
    let added =
      List.length
        (List.filter
           (fun v -> not (Tdmd.Placement.mem before v))
           (Tdmd.Placement.to_list after))
    in
    let removed =
      List.length
        (List.filter
           (fun v -> not (Tdmd.Placement.mem after v))
           (Tdmd.Placement.to_list before))
    in
    t.moves <- t.moves + added + removed;
    t.placed <- placed

  (* The historical float threshold, kept verbatim: gains at or below
     1e-9 are invisible, which is the satellite bug pinned by
     [test_exact_marginal_extreme_lambda]. *)
  let best_marginal inst placed =
    let n = Tdmd.Instance.vertex_count inst in
    let p = Tdmd.Placement.of_list placed in
    let best = ref (-1) and best_gain = ref 1e-9 in
    for v = 0 to n - 1 do
      if not (Tdmd.Placement.mem p v) then begin
        let g = Tdmd.Bandwidth.marginal inst p v in
        if g > !best_gain then begin
          best := v;
          best_gain := g
        end
      end
    done;
    if !best < 0 then None else Some !best

  let arrive t f =
    if Hashtbl.mem t.ids f.Flow.id then
      invalid_arg "Legacy.arrive: duplicate flow id";
    (match Flow.validate t.graph f with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Legacy.arrive: " ^ msg));
    t.current <- t.current @ [ f ];
    Hashtbl.replace t.ids f.Flow.id ();
    let inst = instance t in
    if not (Tdmd.Allocation.is_feasible inst (placement t)) then begin
      let chosen =
        if List.length t.placed < t.k then begin
          let candidates = Array.to_list f.Flow.path in
          let p = placement t in
          let best =
            Tdmd_prelude.Listx.max_by
              (fun v -> Tdmd.Bandwidth.marginal inst p v)
              candidates
          in
          (* Unguarded: [best] may already be deployed (the
             zero-marginal tie), in which case this appends a
             duplicate that only Cover_fixup's dedup hides. *)
          t.placed @ [ best ]
        end
        else t.placed
      in
      set_placed t (Tdmd.Cover_fixup.within inst ~chosen ~budget:t.k)
    end

  let depart t id =
    t.current <- List.filter (fun f -> f.Flow.id <> id) t.current;
    Hashtbl.remove t.ids id;
    let inst = instance t in
    let p = placement t in
    let servers =
      Array.to_list (Tdmd.Allocation.all inst p)
      |> List.filter_map (function
           | Tdmd.Allocation.Served_at { vertex; _ } -> Some vertex
           | Tdmd.Allocation.Unserved -> None)
    in
    let useful = List.filter (fun v -> List.mem v servers) t.placed in
    if List.length useful < List.length t.placed then set_placed t useful;
    (if List.length t.placed < t.k then
       match best_marginal inst t.placed with
       | Some v -> set_placed t (t.placed @ [ v ])
       | None -> ());
    if not (Tdmd.Allocation.is_feasible inst (placement t)) then
      set_placed t (Tdmd.Cover_fixup.within inst ~chosen:t.placed ~budget:t.k)
end

(* ------------------------------------------------------------------ *)
(* Timeline scaffolding                                                *)
(* ------------------------------------------------------------------ *)

type event = Arrive of Flow.t | Depart of int

(* A deterministic arrive/depart timeline over random shortest paths.
   Departures pick a uniformly random live flow, so the schedule is a
   function of the seed alone. *)
let random_timeline rng g ~events =
  let n = Tdmd_graph.Digraph.vertex_count g in
  let next_id = ref 0 in
  let live = ref [] in
  let out = ref [] in
  let tries = ref 0 in
  while List.length !out < events && !tries < events * 20 do
    incr tries;
    if Rng.float rng 1.0 < 0.65 || !live = [] then begin
      let src = Rng.int rng n and dst = Rng.int rng n in
      if src <> dst then
        match Tdmd_graph.Bfs.shortest_path g ~src ~dst with
        | Some path ->
          let f = Flow.make ~id:!next_id ~rate:(Rng.int_in rng 1 5) ~path in
          incr next_id;
          live := f.Flow.id :: !live;
          out := Arrive f :: !out
        | None -> ()
    end
    else begin
      let ids = !live in
      let victim = List.nth ids (Rng.int rng (List.length ids)) in
      live := List.filter (fun id -> id <> victim) ids;
      out := Depart victim :: !out
    end
  done;
  List.rev !out

let apply_inc t = function
  | Arrive f -> Inc.arrive t f
  | Depart id -> Inc.depart t id

let apply_legacy t = function
  | Arrive f -> Legacy.arrive t f
  | Depart id -> Legacy.depart t id

let check_no_dup ctx placed =
  let sorted = List.sort compare placed in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then true else dup rest
    | _ -> false
  in
  if dup sorted then
    Alcotest.failf "%s: duplicate vertex in placed order [%s]" ctx
      (String.concat ";" (List.map string_of_int placed))

let flow_ids fs = List.map (fun f -> f.Flow.id) fs

(* ------------------------------------------------------------------ *)
(* Differential: budget 0 is bit-identical to the legacy engine        *)
(* ------------------------------------------------------------------ *)

let test_budget0_bit_identical () =
  for seed = 1 to 12 do
    let rng = Rng.create seed in
    let n = 8 + Rng.int rng 8 in
    let g = Tdmd_topo.Topo_general.erdos_renyi rng n ~p:0.3 in
    let k = 2 + Rng.int rng 3 in
    let timeline = random_timeline rng g ~events:70 in
    let t = Inc.create ~graph:g ~lambda:0.5 ~k () in
    let l = Legacy.create ~graph:g ~lambda:0.5 ~k in
    List.iteri
      (fun i ev ->
        apply_inc t ev;
        apply_legacy l ev;
        let ctx = Printf.sprintf "seed %d event %d" seed i in
        check_no_dup ctx (Inc.placed_order t);
        Alcotest.(check (list int))
          (ctx ^ ": placed order") (Legacy.placed_order l) (Inc.placed_order t);
        Alcotest.(check int) (ctx ^ ": moves") (Legacy.moves l) (Inc.moves t);
        Alcotest.(check (list int))
          (ctx ^ ": flow order") (flow_ids (Legacy.flows l)) (flow_ids (Inc.flows t));
        Alcotest.(check bool)
          (ctx ^ ": feasible") (Legacy.feasible l) (Inc.feasible t);
        Alcotest.(check (float 0.0))
          (ctx ^ ": bandwidth") (Legacy.bandwidth l) (Inc.bandwidth t))
      timeline;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no rebalance passes at budget 0" seed)
      0 (Inc.rebalances t)
  done

(* ------------------------------------------------------------------ *)
(* Satellite: deployed winner of a zero-marginal tie is not appended   *)
(* ------------------------------------------------------------------ *)

(* Two disconnected edges.  Restore a state where flow C is stranded
   (the historical engine could leave one behind at a budget-exhausted
   event) with deployment budget to spare, then arrive a flow whose
   first hop already carries a box: every on-path marginal is zero, so
   the historical argmax "wins" at the deployed vertex 0 and appends it
   again.  The guard must turn that into a no-op pick so the fix-up
   serves C without wasting a slot on a duplicate (or on a useless
   zero-gain vertex). *)
let test_arrive_guard_deployed_winner () =
  let g = Tdmd_graph.Digraph.create 4 in
  Tdmd_graph.Digraph.add_undirected g 0 1;
  Tdmd_graph.Digraph.add_undirected g 2 3;
  let a = Flow.make ~id:1 ~rate:1 ~path:[ 0; 1 ] in
  let c = Flow.make ~id:2 ~rate:1 ~path:[ 2; 3 ] in
  let t =
    Inc.restore ~graph:g ~lambda:0.5 ~k:3 ~flows:[ a; c ] ~placed:[ 0 ]
      ~moves:1 ~arrivals:2 ~departures:0 ()
  in
  Alcotest.(check bool) "restored state is infeasible" false (Inc.feasible t);
  Inc.arrive t (Flow.make ~id:3 ~rate:1 ~path:[ 0; 1 ]);
  check_no_dup "after tie arrival" (Inc.placed_order t);
  Alcotest.(check (list int))
    "fix-up serves the stranded flow without wasting a slot" [ 0; 2 ]
    (Inc.placed_order t);
  Alcotest.(check bool) "feasible after fix-up" true (Inc.feasible t);
  Alcotest.(check int) "exactly one move spent" 2 (Inc.moves t)

(* ------------------------------------------------------------------ *)
(* Satellite: exact integer marginals survive extreme lambda           *)
(* ------------------------------------------------------------------ *)

(* At lambda = 1.0 every float marginal is exactly 0.0, so the legacy
   1e-9 threshold never spends freed budget — a departure leaves flows
   served at late path positions even though moving a box upstream has
   positive diminished-volume gain.  The integer engine must not care
   about the float scale. *)
let test_exact_marginal_extreme_lambda () =
  let g = Tdmd_graph.Digraph.create 6 in
  for v = 0 to 4 do
    Tdmd_graph.Digraph.add_undirected g v (v + 1)
  done;
  let run arrive depart placed_of engine =
    arrive engine (Flow.make ~id:1 ~rate:1 ~path:[ 4; 5 ]);
    arrive engine (Flow.make ~id:2 ~rate:1 ~path:[ 2; 3; 4; 5 ]);
    depart engine 1;
    placed_of engine
  in
  let legacy =
    run Legacy.arrive Legacy.depart Legacy.placed_order
      (Legacy.create ~graph:g ~lambda:1.0 ~k:2)
  in
  let fixed =
    run Inc.arrive Inc.depart Inc.placed_order
      (Inc.create ~graph:g ~lambda:1.0 ~k:2 ())
  in
  (* The legacy engine is blind: the box stays where flow 1 put it. *)
  Alcotest.(check (list int)) "legacy leaves the box downstream" [ 4 ] legacy;
  (* The integer engine spends the freed slot at flow 2's first hop. *)
  Alcotest.(check (list int)) "integer engine serves the first hop" [ 4; 2 ]
    fixed;
  let dim placed =
    let inst =
      Tdmd.Instance.make ~graph:g
        ~flows:[ Flow.make ~id:2 ~rate:1 ~path:[ 2; 3; 4; 5 ] ]
        ~lambda:1.0
    in
    Tdmd.Bandwidth.diminished_volume inst (Tdmd.Placement.of_list placed)
  in
  Alcotest.(check bool) "strictly more diminished volume" true
    (dim fixed > dim legacy)

(* ------------------------------------------------------------------ *)
(* Satellite: unknown departures raise instead of counting             *)
(* ------------------------------------------------------------------ *)

let test_unknown_depart_raises () =
  let g = Tdmd_graph.Digraph.create 2 in
  Tdmd_graph.Digraph.add_undirected g 0 1;
  let t = Inc.create ~graph:g ~lambda:0.5 ~k:1 () in
  Inc.arrive t (Flow.make ~id:7 ~rate:1 ~path:[ 0; 1 ]);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Incremental.depart: unknown flow id") (fun () ->
      Inc.depart t 99);
  Alcotest.(check bool) "live flow untouched" true (Inc.mem_flow t 7);
  Alcotest.(check int) "flow count untouched" 1 (Inc.flow_count t);
  Inc.depart t 7;
  Alcotest.check_raises "double depart"
    (Invalid_argument "Incremental.depart: unknown flow id") (fun () ->
      Inc.depart t 7)

(* ------------------------------------------------------------------ *)
(* Satellite: arrival-ordered store survives tombstone compaction      *)
(* ------------------------------------------------------------------ *)

let test_flow_store_order_and_compaction () =
  let g = Tdmd_graph.Digraph.create 3 in
  Tdmd_graph.Digraph.add_undirected g 0 1;
  Tdmd_graph.Digraph.add_undirected g 1 2;
  let t = Inc.create ~graph:g ~lambda:0.5 ~k:1 () in
  for id = 0 to 119 do
    Inc.arrive t (Flow.make ~id ~rate:1 ~path:[ 0; 1; 2 ])
  done;
  (* Drop the first 100 in a scattered order: >64 tombstones and more
     dead than live forces a compaction pass. *)
  for i = 0 to 99 do
    Inc.depart t ((i * 37) mod 100)
  done;
  Alcotest.(check int) "live count" 20 (Inc.flow_count t);
  Alcotest.(check (list int)) "survivors in arrival order"
    (Tdmd_prelude.Listx.range 100 119)
    (flow_ids (Inc.flows t));
  for id = 200 to 204 do
    Inc.arrive t (Flow.make ~id ~rate:1 ~path:[ 2; 1; 0 ])
  done;
  Alcotest.(check (list int)) "appends keep arrival order"
    (Tdmd_prelude.Listx.range 100 119 @ Tdmd_prelude.Listx.range 200 204)
    (flow_ids (Inc.flows t));
  Alcotest.(check bool) "index agrees" true
    (Inc.mem_flow t 200 && not (Inc.mem_flow t 63))

(* ------------------------------------------------------------------ *)
(* Rebalancer: budget accounting and monotone improvement              *)
(* ------------------------------------------------------------------ *)

let dim_of t =
  Tdmd.Bandwidth.diminished_volume (Inc.instance t) (Inc.placement t)

let test_rebalance_accounting () =
  for seed = 21 to 26 do
    let rng = Rng.create seed in
    let g = Tdmd_topo.Topo_general.erdos_renyi rng 12 ~p:0.3 in
    let budget = 1 + Rng.int rng 4 in
    let timeline = random_timeline rng g ~events:50 in
    let t = Inc.create ~migration_budget:budget ~graph:g ~lambda:0.5 ~k:3 () in
    List.iteri
      (fun i ev ->
        apply_inc t ev;
        let ctx = Printf.sprintf "seed %d event %d" seed i in
        check_no_dup ctx (Inc.placed_order t);
        if List.length (Inc.placed_order t) > 3 then
          Alcotest.failf "%s: deployment exceeds k" ctx)
      timeline;
    let events = List.length timeline in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: one auto pass per event" seed)
      events (Inc.rebalances t);
    if Inc.rebalance_moves t > events * budget then
      Alcotest.failf "seed %d: rebalance overspent (%d moves, budget %d/event)"
        seed (Inc.rebalance_moves t) budget;
    if Inc.moves t < Inc.rebalance_moves t then
      Alcotest.failf "seed %d: rebalance moves not part of total moves" seed;
    (* An explicit pass never hurts: zero budget is a no-op, a large
       budget only grows served diminished volume. *)
    let before = dim_of t and placed_before = Inc.placed_order t in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: zero-budget pass spends nothing" seed)
      0
      (Inc.rebalance ~budget:0 t);
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: zero-budget pass moves nothing" seed)
      placed_before (Inc.placed_order t);
    let spent = Inc.rebalance ~budget:40 t in
    if spent > 40 then Alcotest.failf "seed %d: pass overspent" seed;
    if dim_of t < before then
      Alcotest.failf "seed %d: rebalance lost diminished volume (%d -> %d)"
        seed before (dim_of t)
  done

let test_budget_dominates_pin_only () =
  (* Same timeline, budget 0 vs a finite budget: migrations may only
     buy bandwidth, never cost it, on the final snapshot. *)
  let bw budget seed =
    let rng = Rng.create seed in
    let g = Tdmd_topo.Topo_general.erdos_renyi rng 14 ~p:0.25 in
    let timeline = random_timeline rng g ~events:60 in
    let t = Inc.create ~migration_budget:budget ~graph:g ~lambda:0.5 ~k:3 () in
    List.iter (apply_inc t) timeline;
    (Inc.bandwidth t, Inc.moves t)
  in
  List.iter
    (fun seed ->
      let pin, pin_moves = bw 0 seed in
      let lrs, lrs_moves = bw 6 seed in
      if lrs > pin +. 1e-9 then
        Alcotest.failf "seed %d: budget 6 worse than pin-only (%.3f > %.3f)"
          seed lrs pin;
      if lrs_moves < pin_moves then
        Alcotest.failf "seed %d: rebalancing spent fewer total moves" seed)
    [ 31; 32; 33 ]

(* ------------------------------------------------------------------ *)
(* Restore round-trips the rebalancer state                            *)
(* ------------------------------------------------------------------ *)

let test_restore_roundtrip_with_budget () =
  for seed = 41 to 44 do
    let rng = Rng.create seed in
    let g = Tdmd_topo.Topo_general.erdos_renyi rng 12 ~p:0.3 in
    let timeline = random_timeline rng g ~events:60 in
    let past = Tdmd_prelude.Listx.take 40 timeline in
    let future = List.filteri (fun i _ -> i >= 40) timeline in
    let t = Inc.create ~migration_budget:2 ~graph:g ~lambda:0.5 ~k:3 () in
    List.iter (apply_inc t) past;
    let arrivals =
      List.length (List.filter (function Arrive _ -> true | _ -> false) past)
    in
    let departures = List.length past - arrivals in
    let r =
      Inc.restore ~migration_budget:(Inc.migration_budget t)
        ~rebalances:(Inc.rebalances t) ~rebalance_moves:(Inc.rebalance_moves t)
        ~graph:g ~lambda:0.5 ~k:3 ~flows:(Inc.flows t)
        ~placed:(Inc.placed_order t) ~moves:(Inc.moves t) ~arrivals ~departures
        ()
    in
    let ctx = Printf.sprintf "seed %d" seed in
    Alcotest.(check (float 0.0))
      (ctx ^ ": bandwidth restored") (Inc.bandwidth t) (Inc.bandwidth r);
    Alcotest.(check bool)
      (ctx ^ ": feasibility restored") (Inc.feasible t) (Inc.feasible r);
    (* Bit-identical future: every subsequent event, including the
       automatic rebalance passes, must take the same decisions. *)
    List.iteri
      (fun i ev ->
        apply_inc t ev;
        apply_inc r ev;
        let ctx = Printf.sprintf "%s future event %d" ctx i in
        Alcotest.(check (list int))
          (ctx ^ ": placed order") (Inc.placed_order t) (Inc.placed_order r);
        Alcotest.(check int) (ctx ^ ": moves") (Inc.moves t) (Inc.moves r);
        Alcotest.(check int)
          (ctx ^ ": rebalances") (Inc.rebalances t) (Inc.rebalances r);
        Alcotest.(check int)
          (ctx ^ ": rebalance moves") (Inc.rebalance_moves t)
          (Inc.rebalance_moves r))
      future
  done

let suite =
  [
    Alcotest.test_case "budget 0 is bit-identical to the legacy engine" `Quick
      test_budget0_bit_identical;
    Alcotest.test_case "deployed winner of a zero-marginal tie is guarded"
      `Quick test_arrive_guard_deployed_winner;
    Alcotest.test_case "integer marginals survive lambda = 1.0" `Quick
      test_exact_marginal_extreme_lambda;
    Alcotest.test_case "unknown departures raise" `Quick
      test_unknown_depart_raises;
    Alcotest.test_case "flow store keeps arrival order across compaction"
      `Quick test_flow_store_order_and_compaction;
    Alcotest.test_case "rebalance accounting respects the budget" `Quick
      test_rebalance_accounting;
    Alcotest.test_case "finite budgets never lose to pin-only" `Quick
      test_budget_dominates_pin_only;
    Alcotest.test_case "restore round-trips the rebalancer state" `Quick
      test_restore_roundtrip_with_budget;
  ]
