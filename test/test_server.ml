(* tdmd.server integration: real sockets, in process.  Eight concurrent
   clients must get answers bit-identical to direct registry calls, and
   the failure paths promised by the protocol — deadline expiry,
   queue-full rejection, malformed frames, churn conflicts and graceful
   drain — must all be observable from the client side. *)

open Tdmd_prelude
module Json = Tdmd_obs.Json
module Sc = Tdmd_sim.Scenario
module P = Tdmd_server.Protocol
module Server = Tdmd_server.Server
module Client = Tdmd_server.Client
module Session = Tdmd_server.Session

(* New-API constructors; the deprecated [of_general]/[of_tree] aliases
   have their own equivalence test in test_engine.ml. *)
let session_of_general ?durability ~churn_k inst =
  Session.create
    ~config:
      {
        Session.Config.churn_k = churn_k;
        Session.Config.migration_budget = 0;
        Session.Config.dedup_cap = Session.default_dedup_cap;
        Session.Config.durability = durability;
        Session.Config.dtel = None;
      }
    inst

let session_of_tree ~churn_k t =
  Session.create_tree
    ~config:
      {
        Session.Config.churn_k = churn_k;
        Session.Config.migration_budget = 0;
        Session.Config.dedup_cap = Session.default_dedup_cap;
        Session.Config.durability = None;
        Session.Config.dtel = None;
      }
    t

let temp_addr () =
  let path = Filename.temp_file "tdmd-test" ".sock" in
  Sys.remove path;
  P.Unix_sock path

let with_server ?(domains = 2) ?(queue = 64) ?default_deadline_ms ?metrics_out
    session f =
  let addr = temp_addr () in
  let server =
    Server.start_session
      { Server.addr; domains; queue_capacity = queue; default_deadline_ms;
        metrics_out }
      session
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Server.wait server)
    (fun () -> f addr server)

let expect_ok ctx = function
  | Ok resp -> (
    match Json.member "ok" resp with
    | Some (Json.Bool true) -> resp
    | _ -> Alcotest.failf "%s: expected ok, got %s" ctx (Json.to_string resp))
  | Error msg -> Alcotest.failf "%s: transport error: %s" ctx msg

let expect_error ctx code = function
  | Ok resp -> (
    match (Json.member "ok" resp, Json.member "code" resp) with
    | Some (Json.Bool false), Some (Json.String c) when c = code -> resp
    | _ ->
      Alcotest.failf "%s: expected %S error, got %s" ctx code
        (Json.to_string resp))
  | Error msg -> Alcotest.failf "%s: transport error: %s" ctx msg

let int_field ctx name resp =
  match Json.member name resp with
  | Some (Json.Int v) -> v
  | _ -> Alcotest.failf "%s: missing int field %S in %s" ctx name
           (Json.to_string resp)

let contains_substring ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let int_list_field ctx name resp =
  match Json.member name resp with
  | Some (Json.List vs) ->
    List.map (function Json.Int v -> v | _ -> Alcotest.fail ctx) vs
  | _ -> Alcotest.failf "%s: missing list field %S" ctx name

(* A 4-vertex path 0-1-2-3 with one leaf-to-end flow: arrivals along
   [0;1;2;3] are valid, anything skipping a hop is not. *)
let tiny_general () =
  let g = Tdmd_graph.Digraph.create 4 in
  List.iter
    (fun (u, v) -> Tdmd_graph.Digraph.add_undirected g u v)
    [ (0, 1); (1, 2); (2, 3) ];
  Tdmd.Instance.make ~graph:g
    ~flows:[ Tdmd_flow.Flow.make ~id:1 ~rate:2 ~path:[ 0; 1; 2; 3 ] ]
    ~lambda:0.5

(* ------------------------------------------------------------------ *)
(* Raw framing helpers (pipelining and malformed frames need to go     *)
(* below the Client abstraction).                                      *)
(* ------------------------------------------------------------------ *)

let raw_connect addr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (P.sockaddr addr);
  fd

let write_all fd b =
  let n = Bytes.length b in
  (* tdmd-lint: allow bare-unix-io — deliberately raw: these tests craft torn/malformed frames below Protocol *)
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Length-prefixed payload with arbitrary (possibly invalid) bytes. *)
let write_raw_payload fd payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b

(* ------------------------------------------------------------------ *)
(* 1. Eight concurrent clients, answers cross-checked per request       *)
(* ------------------------------------------------------------------ *)

let test_concurrent_solves () =
  let tree_inst = Sc.build_tree (Rng.create 4242) Sc.default_tree in
  let k = Sc.default_tree.Sc.k in
  let session = session_of_tree ~churn_k:k tree_inst in
  with_server ~domains:2 session (fun addr _server ->
      let algos =
        [| "gtp"; "celf"; "dp"; "hat"; "random"; "best-effort"; "scaled-dp";
           "gtp-ls" |]
      in
      let clients = 8 and per_client = 6 in
      let failures = ref [] in
      let failures_lock = Mutex.create () in
      let fail fmt =
        Printf.ksprintf
          (fun msg ->
            Tdmd_prelude.Locked.with_lock failures_lock (fun () ->
                failures := msg :: !failures))
          fmt
      in
      let worker i () =
        let c = Client.connect addr in
        for j = 0 to per_client - 1 do
          let algo = algos.((i + j) mod Array.length algos) in
          let seed = (100 * i) + j in
          match Client.rpc c (P.Solve { algo; k; seed; target = P.Static }) with
          | Error msg -> fail "client %d: transport: %s" i msg
          | Ok resp -> (
            match Json.member "ok" resp with
            | Some (Json.Bool true) ->
              let direct =
                (Option.get (Tdmd.Solvers.on_tree algo))
                  ~rng:(Rng.create seed) ~k tree_inst
              in
              let placement =
                match Json.member "placement" resp with
                | Some (Json.List vs) ->
                  List.filter_map
                    (function Json.Int v -> Some v | _ -> None)
                    vs
                | _ -> []
              in
              if
                placement
                <> Tdmd.Placement.to_list direct.Tdmd.Solver_intf.placement
              then fail "client %d: %s seed %d: placement differs" i algo seed;
              (* Bit-identical: the served float must equal the direct
                 one exactly, not within an epsilon. *)
              if
                Json.member "bandwidth" resp
                <> Some (Json.Float direct.Tdmd.Solver_intf.bandwidth)
              then fail "client %d: %s seed %d: bandwidth differs" i algo seed
            | _ -> fail "client %d: error response %s" i (Json.to_string resp))
        done;
        Client.close c
      in
      let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
      List.iter Thread.join threads;
      (match !failures with
      | [] -> ()
      | msgs -> Alcotest.fail (String.concat "\n" msgs));
      let c = Client.connect addr in
      let stats = expect_ok "stats" (Client.rpc c P.Stats) in
      Client.close c;
      Alcotest.(check bool)
        "all solves completed"
        true
        (int_field "stats" "completed" stats >= clients * per_client))

(* ------------------------------------------------------------------ *)
(* 2. Deadline expiry while queued                                      *)
(* ------------------------------------------------------------------ *)

let test_deadline_expiry () =
  let session = session_of_general ~churn_k:2 (tiny_general ()) in
  with_server ~domains:1 ~queue:8 session (fun addr _server ->
      let sleeper = Client.connect addr in
      let th =
        Thread.create
          (fun () -> ignore (Client.rpc sleeper (P.Sleep 300)))
          ()
      in
      Thread.delay 0.05;
      (* The single worker is asleep for ~300 ms; a 50 ms queueing budget
         must expire before this request is picked up. *)
      let c = Client.connect addr in
      ignore
        (expect_error "queued past deadline" "deadline"
           (Client.rpc c ~deadline_ms:50 (P.Sleep 10)));
      let stats = expect_ok "stats" (Client.rpc c P.Stats) in
      Alcotest.(check bool)
        "timeout counted" true
        (int_field "stats" "timeouts" stats >= 1);
      Thread.join th;
      Client.close c;
      Client.close sleeper)

(* ------------------------------------------------------------------ *)
(* 2b. Deadlined solves answer anytime, never "deadline"                *)
(* ------------------------------------------------------------------ *)

let test_anytime_solve () =
  let session = session_of_general ~churn_k:2 (tiny_general ()) in
  with_server ~domains:2 session (fun addr _server ->
      let c = Client.connect addr in
      let solve deadline_ms =
        expect_ok "anytime solve"
          (Client.rpc c ?deadline_ms
             (P.Solve { algo = "portfolio"; k = 2; seed = 7; target = P.Static }))
      in
      (* Even a 1 ms budget answers with a placement: the greedy-cover
         fallback is published before the race starts. *)
      List.iter
        (fun budget ->
          let resp = solve (Some budget) in
          Alcotest.(check bool)
            (Printf.sprintf "anytime flag at %d ms" budget)
            true
            (Json.member "anytime" resp = Some (Json.Bool true));
          Alcotest.(check bool) "feasible" true
            (Json.member "feasible" resp = Some (Json.Bool true));
          Alcotest.(check bool) "non-empty placement" true
            (int_list_field "solve" "placement" resp <> []);
          Alcotest.(check bool) "member reported" true
            (match Json.member "member" resp with
            | Some (Json.String _) -> true
            | _ -> false);
          ignore (int_field "solve" "improvements" resp);
          ignore (int_field "solve" "budget_ms" resp))
        [ 1; 150 ];
      (* Registry seeds race too: a deadlined gtp must also answer. *)
      let resp =
        expect_ok "anytime gtp"
          (Client.rpc c ~deadline_ms:150
             (P.Solve { algo = "gtp"; k = 2; seed = 7; target = P.Static }))
      in
      Alcotest.(check bool) "gtp anytime flag" true
        (Json.member "anytime" resp = Some (Json.Bool true));
      (* Without a deadline the run-to-completion path is untouched. *)
      let plain =
        expect_ok "plain solve"
          (Client.rpc c
             (P.Solve { algo = "gtp"; k = 2; seed = 7; target = P.Static }))
      in
      Alcotest.(check bool) "no anytime field without deadline" true
        (Json.member "anytime" plain = None);
      (* Unknown names still fail loudly rather than racing nothing. *)
      ignore
        (expect_error "unknown algo" "unknown-algo"
           (Client.rpc c ~deadline_ms:50
              (P.Solve { algo = "nope"; k = 2; seed = 7; target = P.Static })));
      let stats = expect_ok "stats" (Client.rpc c P.Stats) in
      Alcotest.(check bool) "anytime solves counted" true
        (int_field "stats" "anytime_solves" stats >= 3);
      ignore (int_field "stats" "pool_job_errors" stats);
      Client.close c)

(* ------------------------------------------------------------------ *)
(* 3. Bounded queue: overload answered immediately                      *)
(* ------------------------------------------------------------------ *)

let test_overload_rejection () =
  let session = session_of_general ~churn_k:2 (tiny_general ()) in
  with_server ~domains:1 ~queue:2 session (fun addr _server ->
      let fd = raw_connect addr in
      let send ~id ms =
        P.write_frame fd (P.request_to_json ~id:(Json.Int id) (P.Sleep ms))
      in
      send ~id:1 300;
      Thread.delay 0.05;
      (* Worker busy with id 1; ids 2 and 3 fill the queue (capacity 2);
         id 4 must bounce with "overloaded" without waiting. *)
      send ~id:2 50;
      send ~id:3 50;
      send ~id:4 50;
      let responses = ref [] in
      for _ = 1 to 4 do
        match P.read_frame fd with
        | Ok resp ->
          responses :=
            (int_field "overload" "id" resp, resp) :: !responses
        | Error _ -> Alcotest.fail "overload: lost a response frame"
      done;
      let resp id = List.assoc id !responses in
      List.iter
        (fun id ->
          ignore (expect_ok (Printf.sprintf "sleep %d" id) (Ok (resp id))))
        [ 1; 2; 3 ];
      ignore (expect_error "4th pipelined sleep" "overloaded" (Ok (resp 4)));
      Unix.close fd;
      let c = Client.connect addr in
      let stats = expect_ok "stats" (Client.rpc c P.Stats) in
      Client.close c;
      Alcotest.(check int) "one rejection counted" 1
        (int_field "stats" "rejected" stats))

(* ------------------------------------------------------------------ *)
(* 4. Malformed input and registry errors                               *)
(* ------------------------------------------------------------------ *)

let test_malformed_and_unknown () =
  let session = session_of_general ~churn_k:2 (tiny_general ()) in
  with_server session (fun addr _server ->
      (* Invalid JSON in a well-framed payload: answered, then the
         connection is dropped (framing can no longer be trusted). *)
      let fd = raw_connect addr in
      write_raw_payload fd "{this is not json";
      (match P.read_frame fd with
      | Ok resp ->
        ignore (expect_error "bad frame" "bad-request" (Ok resp))
      | Error _ -> Alcotest.fail "bad frame: expected an error response");
      (match P.read_frame fd with
      | Error `Eof -> ()
      | Ok _ | Error (`Bad _) ->
        Alcotest.fail "connection should close after a bad frame");
      Unix.close fd;
      let c = Client.connect addr in
      (* Unknown op. *)
      ignore
        (expect_error "unknown op" "bad-request"
           (Client.rpc_json c (Json.Obj [ ("op", Json.String "frobnicate") ])));
      (* Unknown algorithm: the error must list the registry. *)
      let unknown =
        expect_error "unknown algo" "unknown-algo"
          (Client.rpc c
             (P.Solve { algo = "quantum"; k = 2; seed = 0; target = P.Static }))
      in
      (match Json.member "error" unknown with
      | Some (Json.String msg) ->
        List.iter
          (fun name ->
            Alcotest.(check bool)
              (Printf.sprintf "unknown-algo lists %S" name)
              true
              (contains_substring ~needle:name msg))
          [ "gtp"; "dp"; "hat" ]
      | _ -> Alcotest.fail "unknown algo: no error message");
      (* Tree-only solver against a general instance: refused with a
         pointer at the tree-only registry. *)
      let tree_only =
        expect_error "tree-only on general" "unknown-algo"
          (Client.rpc c
             (P.Solve { algo = "dp"; k = 2; seed = 0; target = P.Static }))
      in
      (match Json.member "error" tree_only with
      | Some (Json.String msg) ->
        Alcotest.(check bool) "mentions tree instances" true
          (contains_substring ~needle:"tree" msg)
      | _ -> Alcotest.fail "tree-only: no error message");
      Client.close c)

(* ------------------------------------------------------------------ *)
(* 5. Churn over the wire                                               *)
(* ------------------------------------------------------------------ *)

let test_churn_ops () =
  let session = session_of_general ~churn_k:2 (tiny_general ()) in
  with_server session (fun addr _server ->
      let c = Client.connect addr in
      let arrived =
        expect_ok "arrive"
          (Client.rpc c (P.Arrive { id = 7; rate = 3; path = [ 0; 1; 2; 3 ] }))
      in
      Alcotest.(check int) "one live flow" 1 (int_field "arrive" "flows" arrived);
      ignore
        (expect_error "duplicate id" "conflict"
           (Client.rpc c (P.Arrive { id = 7; rate = 1; path = [ 0; 1 ] })));
      ignore
        (expect_error "path not in graph" "bad-request"
           (Client.rpc c (P.Arrive { id = 8; rate = 1; path = [ 0; 2 ] })));
      (* The live target solves over the churn engine's flow set. *)
      let live =
        expect_ok "live solve"
          (Client.rpc c
             (P.Solve { algo = "gtp"; k = 2; seed = 5; target = P.Live }))
      in
      Alcotest.(check bool) "live placement within budget" true
        (List.length (int_list_field "live" "placement" live) <= 2);
      let departed = expect_ok "depart" (Client.rpc c (P.Depart 7)) in
      Alcotest.(check int) "flow gone" 0 (int_field "depart" "flows" departed);
      (* An unknown id is refused before anything reaches the journal:
         the engine treats phantom departures as caller bugs. *)
      ignore
        (expect_error "depart unknown id is a conflict" "conflict"
           (Client.rpc c (P.Depart 99)));
      let stats = expect_ok "stats" (Client.rpc c P.Stats) in
      (match Json.member "churn" stats with
      | Some churn ->
        Alcotest.(check int) "arrivals counted" 1
          (int_field "churn" "arrivals" churn)
      | None -> Alcotest.fail "stats: no churn section");
      Client.close c)

(* Idempotency over the wire: a mutating request retried with the same
   ["req"] envelope field is answered from the dedup table, not applied
   again — the contract Client.rpc_retry leans on. *)
let test_dedup_over_the_wire () =
  let session = session_of_general ~churn_k:2 (tiny_general ()) in
  with_server session (fun addr _server ->
      let c = Client.connect addr in
      let first =
        expect_ok "arrive"
          (Client.rpc c ~req:"wire-1"
             (P.Arrive { id = 7; rate = 3; path = [ 0; 1; 2; 3 ] }))
      in
      Alcotest.(check int) "applied" 1 (int_field "arrive" "flows" first);
      let retry =
        expect_ok "retried arrive"
          (Client.rpc c ~req:"wire-1"
             (P.Arrive { id = 7; rate = 3; path = [ 0; 1; 2; 3 ] }))
      in
      Alcotest.(check bool) "marked dedup" true
        (Json.member "dedup" retry = Some (Json.Bool true));
      Alcotest.(check int) "not applied twice" 1
        (int_field "retry" "flows" retry);
      (* Without a req the same frame is a genuine duplicate. *)
      ignore
        (expect_error "no req, no dedup" "conflict"
           (Client.rpc c (P.Arrive { id = 7; rate = 3; path = [ 0; 1; 2; 3 ] })));
      (* rpc_retry generates one req for all its attempts; against a
         healthy server it just behaves like rpc. *)
      let via_retry =
        expect_ok "rpc_retry depart"
          (Client.rpc_retry c (P.Depart 7))
      in
      Alcotest.(check int) "departed" 0 (int_field "depart" "flows" via_retry);
      let stats = expect_ok "stats" (Client.rpc c P.Stats) in
      (match Json.member "durability" stats with
      | Some _ -> Alcotest.fail "non-durable session must not report durability"
      | None -> ());
      Client.close c)

(* ------------------------------------------------------------------ *)
(* 6. Graceful drain: queued work is answered, then the door closes     *)
(* ------------------------------------------------------------------ *)

let test_graceful_drain () =
  let session = session_of_general ~churn_k:2 (tiny_general ()) in
  let metrics = Filename.temp_file "tdmd-test" ".jsonl" in
  Sys.remove metrics;
  let sock_path = ref "" in
  with_server ~domains:1 ~queue:8 ~metrics_out:metrics session
    (fun addr server ->
      (match addr with P.Unix_sock p -> sock_path := p | P.Tcp _ -> ());
      let fd = raw_connect addr in
      let send ~id ms =
        P.write_frame fd (P.request_to_json ~id:(Json.Int id) (P.Sleep ms))
      in
      send ~id:1 200;
      send ~id:2 100;
      send ~id:3 100;
      Thread.delay 0.05;
      (* Connection opened before the stop so its reader is live when
         the flag flips. *)
      let straggler = Client.connect addr in
      let c = Client.connect addr in
      ignore (expect_ok "shutdown ack" (Client.rpc c P.Shutdown));
      Thread.delay 0.05;
      ignore
        (expect_error "request during drain" "shutting-down"
           (Client.rpc straggler P.Ping));
      Server.wait server;
      (* Everything queued before the stop was executed and answered. *)
      let seen = ref [] in
      for _ = 1 to 3 do
        match P.read_frame fd with
        | Ok resp ->
          ignore (expect_ok "drained sleep" (Ok resp));
          seen := int_field "drain" "id" resp :: !seen
        | Error _ -> Alcotest.fail "drain: lost a queued response"
      done;
      Alcotest.(check (list int)) "all queued ids answered" [ 1; 2; 3 ]
        (List.sort compare !seen);
      (match P.read_frame fd with
      | Error `Eof -> ()
      | Ok _ | Error (`Bad _) -> Alcotest.fail "drain: expected EOF after drain");
      Unix.close fd;
      Client.close c;
      Client.close straggler);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists !sock_path);
  let ic = open_in metrics in
  let line = input_line ic in
  close_in ic;
  Sys.remove metrics;
  (match Json.of_string line with
  | Ok record ->
    Alcotest.(check bool) "metrics record is the serve summary" true
      (Json.member "event" record = Some (Json.String "serve"));
    Alcotest.(check bool) "metrics counted the sleeps" true
      (int_field "metrics" "completed" record >= 3)
  | Error msg -> Alcotest.failf "metrics record unparseable: %s" msg)

let suite =
  [
    Alcotest.test_case "8 concurrent clients match the registry" `Slow
      test_concurrent_solves;
    Alcotest.test_case "queued requests expire at their deadline" `Quick
      test_deadline_expiry;
    Alcotest.test_case "deadlined solves answer anytime" `Quick
      test_anytime_solve;
    Alcotest.test_case "full queue rejects with overloaded" `Quick
      test_overload_rejection;
    Alcotest.test_case "malformed frames and unknown names" `Quick
      test_malformed_and_unknown;
    Alcotest.test_case "churn ops over the wire" `Quick test_churn_ops;
    Alcotest.test_case "idempotent retries dedup over the wire" `Quick
      test_dedup_over_the_wire;
    Alcotest.test_case "graceful drain answers queued work" `Quick
      test_graceful_drain;
  ]
