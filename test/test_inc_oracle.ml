(* Differential tests: the incremental decrement oracle must agree with
   the from-scratch naive path bit-for-bit — same diminished volumes,
   same marginals, same greedy/CELF/HAT selections, same bandwidth.
   Exactness is by construction (all bookkeeping in integer
   diminished-volume units, λ applied once at the float boundary), and
   these properties lock it in over randomized instances. *)

open Tdmd_prelude
module S = Tdmd_submod.Submodular
module O = Tdmd.Inc_oracle

let dyadic_lambda rng =
  (* Dyadic λ keeps the legacy per-flow float summation exact too, so
     bandwidth comparisons below can demand exact equality. *)
  match Rng.int rng 4 with
  | 0 -> 0.0
  | 1 -> 0.25
  | 2 -> 0.5
  | _ -> 0.75

(* (a) Random add/remove/undo sequences tracked against a shadow
   placement stack: volume, feasibility and marginals must match the
   naive recomputation after every operation. *)
let prop_ops_differential =
  QCheck.Test.make ~name:"inc oracle = naive scan under random add/remove/undo"
    ~count:120
    QCheck.(pair (int_bound 1_000_000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:(2 * n) ~max_rate:6
          ~lambda:(dyadic_lambda rng)
      in
      let t = O.create inst in
      (* Shadow stack: current placement on top, one entry per journaled
         op (no-ops push their unchanged placement, mirroring the
         journal's Untouched entries). *)
      let stack = ref [ Tdmd.Placement.empty ] in
      let current () = List.hd !stack in
      let ok = ref true in
      let check () =
        let p = current () in
        ok :=
          !ok
          && O.diminished_volume t = Tdmd.Bandwidth.diminished_volume inst p
          && O.is_feasible t = Tdmd.Allocation.is_feasible inst p
          && O.size t = Tdmd.Placement.size p
          && Tdmd.Placement.to_list (O.placement t) = Tdmd.Placement.to_list p
          && O.bandwidth t = Tdmd.Bandwidth.total inst p
          &&
          let v = Rng.int rng n in
          O.marginal_volume t v
          = Tdmd.Bandwidth.diminished_volume inst (Tdmd.Placement.add p v)
            - Tdmd.Bandwidth.diminished_volume inst p
      in
      for _ = 1 to 60 do
        (match Rng.int rng 5 with
        | 0 | 1 ->
          let v = Rng.int rng n in
          O.add t v;
          stack := Tdmd.Placement.add (current ()) v :: !stack
        | 2 | 3 ->
          let v = Rng.int rng n in
          O.remove t v;
          stack := Tdmd.Placement.remove (current ()) v :: !stack
        | _ ->
          if List.length !stack > 1 then begin
            O.undo t;
            stack := List.tl !stack
          end);
        check ()
      done;
      !ok)

(* (b) Greedy / CELF over the submodular machinery: the incremental
   oracle must make the same selections with the same gains as the naive
   full-rescan oracle — exact float equality, no tolerance. *)
let prop_greedy_differential =
  QCheck.Test.make ~name:"greedy & CELF: incremental oracle = naive oracle"
    ~count:120
    QCheck.(pair (int_bound 1_000_000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:(2 * n) ~max_rate:6
          ~lambda:(Rng.float rng 1.0)
      in
      let k = 1 + Rng.int rng n in
      let same select =
        let a = select ~k (Tdmd.Bandwidth.oracle_naive inst) in
        let b = select ~k (Tdmd.Bandwidth.oracle inst) in
        a.S.chosen = b.S.chosen
        && a.S.gains = b.S.gains
        && Tdmd.Bandwidth.total inst (Tdmd.Placement.of_list a.S.chosen)
           = Tdmd.Bandwidth.total inst (Tdmd.Placement.of_list b.S.chosen)
      in
      same (fun ~k o -> S.greedy ~k o) && same (fun ~k o -> S.lazy_greedy ~k o))

(* (c) End-to-end GTP / CELF: ?incremental:false (naive reference) and
   the default incremental path must return identical reports. *)
let prop_gtp_run_differential =
  QCheck.Test.make ~name:"Gtp.run/run_celf: incremental = naive" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 4 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:n ~max_rate:5
          ~lambda:(Rng.float rng 1.0)
      in
      let budget = 1 + Rng.int rng n in
      let same run =
        let a = run ~budget ~incremental:false inst in
        let b = run ~budget ~incremental:true inst in
        Tdmd.Placement.to_list a.Tdmd.Gtp.placement
        = Tdmd.Placement.to_list b.Tdmd.Gtp.placement
        && a.Tdmd.Gtp.bandwidth = b.Tdmd.Gtp.bandwidth
        && a.Tdmd.Gtp.feasible = b.Tdmd.Gtp.feasible
      in
      same (fun ~budget ~incremental i -> Tdmd.Gtp.run ~budget ~incremental i)
      && same (fun ~budget ~incremental i ->
             Tdmd.Gtp.run_celf ~budget ~incremental i))

(* (d) HAT on random trees: the Δb probes answered by the oracle mirror
   must reproduce the naive merge sequence exactly. *)
let prop_hat_differential =
  QCheck.Test.make ~name:"Hat.run: incremental = naive" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 4 16))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_tree_instance rng ~n ~max_rate:6
          ~lambda:(Rng.float rng 1.0)
      in
      let k = 1 + Rng.int rng n in
      let a = Tdmd.Hat.run ~incremental:false ~k inst in
      let b = Tdmd.Hat.run ~incremental:true ~k inst in
      Tdmd.Placement.to_list a.Tdmd.Hat.placement
      = Tdmd.Placement.to_list b.Tdmd.Hat.placement
      && a.Tdmd.Hat.bandwidth = b.Tdmd.Hat.bandwidth
      && a.Tdmd.Hat.merges = b.Tdmd.Hat.merges)

(* (e) Cover_fixup.within against a naive reference of the same
   algorithm (prefix keep/drop + repeated best-cover picks, feasibility
   by full rescan). *)
let reference_within inst ~chosen ~budget =
  let chosen = Array.of_list chosen in
  let extend kept_len =
    let prefix =
      Array.to_list (Array.sub chosen 0 kept_len)
      |> List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) []
      |> List.rev
    in
    let rec grow sel =
      let p = Tdmd.Placement.of_list sel in
      if Tdmd.Allocation.is_feasible inst p || List.length sel >= budget then sel
      else begin
        match
          Tdmd.Cover_fixup.best_cover_vertex inst sel
            (Tdmd.Allocation.unserved inst p)
        with
        | None -> sel
        | Some v -> grow (sel @ [ v ])
      end
    in
    grow prefix
  in
  let rec attempt kept_len fallback =
    let candidate = extend kept_len in
    let feasible =
      Tdmd.Allocation.is_feasible inst (Tdmd.Placement.of_list candidate)
    in
    let fallback = match fallback with Some f -> Some f | None -> Some candidate in
    if feasible then candidate
    else if kept_len = 0 then (match fallback with Some f -> f | None -> candidate)
    else attempt (kept_len - 1) fallback
  in
  attempt (Array.length chosen) None

let prop_cover_fixup_differential =
  QCheck.Test.make ~name:"Cover_fixup.within: oracle path = naive reference"
    ~count:80
    QCheck.(pair (int_bound 1_000_000) (int_range 4 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:(2 * n) ~max_rate:5
          ~lambda:0.5
      in
      let budget = 1 + Rng.int rng n in
      let chosen =
        List.init (Rng.int rng (budget + 1)) (fun _ -> Rng.int rng n)
      in
      Tdmd.Cover_fixup.within inst ~chosen ~budget
      = reference_within inst ~chosen ~budget)

(* Spot-check the telemetry plumbing: the incremental GTP run records
   the new oracle counters. *)
let test_oracle_counters () =
  let rng = Rng.create 99 in
  let inst =
    Fixtures.random_general_instance rng ~n:10 ~flows:10 ~max_rate:5 ~lambda:0.5
  in
  let r = Tdmd.Gtp.run ~budget:4 inst in
  let tel = r.Tdmd.Gtp.telemetry in
  Alcotest.(check bool) "delta_evals recorded" true
    (Tdmd_obs.Telemetry.get_count tel "delta_evals" > 0);
  Alcotest.(check bool) "oracle_ns recorded" true
    (Tdmd_obs.Telemetry.find tel "oracle_ns" <> None)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ops_differential;
    QCheck_alcotest.to_alcotest prop_greedy_differential;
    QCheck_alcotest.to_alcotest prop_gtp_run_differential;
    QCheck_alcotest.to_alcotest prop_hat_differential;
    QCheck_alcotest.to_alcotest prop_cover_fixup_differential;
    Alcotest.test_case "telemetry: oracle counters recorded" `Quick
      test_oracle_counters;
  ]
