open Tdmd_prelude
module Sc = Tdmd_sim.Scenario
module Runner = Tdmd_sim.Runner

let test_build_tree_scenario () =
  let rng = Rng.create 51 in
  let inst = Sc.build_tree rng Sc.default_tree in
  let tree = inst.Tdmd.Instance.Tree.tree in
  Alcotest.(check int) "tree size" Sc.default_tree.Sc.size
    (Tdmd_tree.Rooted_tree.size tree);
  Alcotest.(check bool) "flows exist" true
    (Array.length inst.Tdmd.Instance.Tree.flows > 0);
  Alcotest.(check (float 1e-9)) "lambda" Sc.default_tree.Sc.lambda
    inst.Tdmd.Instance.Tree.lambda

let test_build_general_scenario () =
  let rng = Rng.create 52 in
  let inst = Sc.build_general rng Sc.default_general in
  Alcotest.(check int) "size" Sc.default_general.Sc.size
    (Tdmd.Instance.vertex_count inst);
  Alcotest.(check bool) "flows exist" true (Tdmd.Instance.flow_count inst > 0);
  (* Flows were validated by Instance.make; instance is connected. *)
  Alcotest.(check bool) "connected" true
    (Tdmd_graph.Digraph.is_connected_undirected inst.Tdmd.Instance.graph)

let test_scenarios_deterministic () =
  let build seed =
    let rng = Rng.create seed in
    let inst = Sc.build_tree rng { Sc.default_tree with Sc.size = 15 } in
    ( Tdmd_tree.Rooted_tree.size inst.Tdmd.Instance.Tree.tree,
      Array.length inst.Tdmd.Instance.Tree.flows,
      Tdmd.Instance.total_path_volume (Tdmd.Instance.Tree.to_general inst) )
  in
  Alcotest.(check (triple int int int)) "same seed, same instance" (build 7) (build 7);
  let a = build 7 and b = build 8 in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_runner_repeat () =
  let calls = ref 0 in
  let point =
    Runner.repeat ~seed:1 ~reps:5 ~x:2.0 (fun rng ->
        incr calls;
        let v = Rng.float rng 1.0 in
        {
          Runner.bandwidth = 10.0 +. v;
          seconds = 0.001;
          feasible = true;
          telemetry = Tdmd_obs.Telemetry.create ();
        })
  in
  Alcotest.(check int) "five runs" 5 !calls;
  Alcotest.(check int) "five observations" 5 point.Runner.bandwidth.Stats.n;
  Alcotest.(check (float 1e-9)) "x" 2.0 point.Runner.x;
  Alcotest.(check int) "none infeasible" 0 point.Runner.infeasible_runs;
  Alcotest.(check bool) "mean in range" true
    (point.Runner.bandwidth.Stats.mean >= 10.0
    && point.Runner.bandwidth.Stats.mean <= 11.0)

let test_runner_drops_infeasible () =
  let n = ref 0 in
  let point =
    Runner.repeat ~seed:1 ~reps:6 ~x:0.0 (fun _ ->
        incr n;
        let feasible = !n mod 2 = 0 in
        {
          Runner.bandwidth = (if feasible then 5.0 else 99.0);
          seconds = 0.0;
          feasible;
          telemetry = Tdmd_obs.Telemetry.create ();
        })
  in
  Alcotest.(check int) "three dropped" 3 point.Runner.infeasible_runs;
  Alcotest.(check (float 1e-9)) "mean over feasible only" 5.0
    point.Runner.bandwidth.Stats.mean

let test_measure () =
  let obs = Runner.measure (fun () -> 17) (fun x -> (float_of_int x, true)) in
  Alcotest.(check (float 1e-9)) "bandwidth extracted" 17.0 obs.Runner.bandwidth;
  Alcotest.(check bool) "feasible" true obs.Runner.feasible;
  Alcotest.(check bool) "time sane" true (obs.Runner.seconds >= 0.0)

let test_joint_parallel_identical () =
  (* Bandwidth summaries must be bit-identical whether repetitions run
     sequentially or across domains (timing obviously differs). *)
  let run domains =
    Runner.joint ~domains ~seed:99 ~reps:6 ~x:1.0
      ~build:(fun rng -> Sc.build_tree rng { Sc.default_tree with Sc.size = 14 })
      ~algos:
        [
          ( "gtp",
            fun inst _ ->
              Runner.measure
                (fun () -> Tdmd.Gtp.run ~budget:4 (Tdmd.Instance.Tree.to_general inst))
                (fun r -> (r.Tdmd.Gtp.bandwidth, r.Tdmd.Gtp.feasible)) );
          ( "hat",
            fun inst _ ->
              Runner.measure
                (fun () -> Tdmd.Hat.run ~k:4 inst)
                (fun r -> (r.Tdmd.Hat.bandwidth, r.Tdmd.Hat.feasible)) );
        ]
  in
  let a = run 1 and b = run 3 in
  Alcotest.(check int) "same redraws" a.Runner.redraws b.Runner.redraws;
  List.iter2
    (fun (n1, (p1 : Runner.point)) (n2, (p2 : Runner.point)) ->
      Alcotest.(check string) "algo order" n1 n2;
      Alcotest.(check (float 0.0)) "identical mean"
        p1.Runner.bandwidth.Stats.mean p2.Runner.bandwidth.Stats.mean;
      Alcotest.(check (float 0.0)) "identical stddev"
        p1.Runner.bandwidth.Stats.stddev p2.Runner.bandwidth.Stats.stddev)
    a.Runner.by_algo b.Runner.by_algo

let suite =
  [
    Alcotest.test_case "runner: parallel joint = sequential joint" `Quick
      test_joint_parallel_identical;
    Alcotest.test_case "scenario: tree builder" `Quick test_build_tree_scenario;
    Alcotest.test_case "scenario: general builder" `Quick test_build_general_scenario;
    Alcotest.test_case "scenario: determinism" `Quick test_scenarios_deterministic;
    Alcotest.test_case "runner: repeat + summaries" `Quick test_runner_repeat;
    Alcotest.test_case "runner: drops infeasible runs" `Quick
      test_runner_drops_infeasible;
    Alcotest.test_case "runner: measure" `Quick test_measure;
  ]
