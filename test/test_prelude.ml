open Tdmd_prelude

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let xs = List.init 16 (fun _ -> Rng.bits64 a) in
  let ys = List.init 16 (fun _ -> Rng.bits64 c) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "int in [0,10)" true (x >= 0 && x < 10);
    let y = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "int_in in [5,9]" true (y >= 5 && y <= 9);
    let f = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in [0,2.5)" true (f >= 0.0 && f < 2.5)
  done

let test_rng_sample_without_replacement () =
  let rng = Rng.create 3 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng 20 8 in
    Alcotest.(check int) "eight drawn" 8 (List.length s);
    Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare s));
    List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 20)) s
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_pareto_support () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.pareto rng ~alpha:1.5 ~x_min:4.0 in
    Alcotest.(check bool) "x >= x_min" true (x >= 4.0)
  done

let test_welford_matches_naive () =
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  let s = Stats.summarize xs in
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.mean;
  (* Sample stddev of this classic dataset: sqrt(32/7). *)
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (32.0 /. 7.0)) s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Stats.max;
  Alcotest.(check int) "n" 8 s.Stats.n

let test_percentile () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile a 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile a 1.0);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.percentile a 0.5)

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "header present" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv" "a,bb\n1,2\n333,\n" csv

let test_table_csv_quoting () =
  let t = Table.create [ "x" ] in
  Table.add_row t [ "a,b" ];
  Table.add_row t [ "say \"hi\"" ];
  Alcotest.(check string) "quoted" "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n" (Table.to_csv t)

let test_listx () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 4);
  Alcotest.(check (list int)) "empty range" [] (Listx.range 3 2);
  Alcotest.(check int) "frange count" 10
    (List.length (Listx.frange ~lo:0.0 ~hi:0.9 ~step:0.1));
  Alcotest.(check int) "max_by" 9 (Listx.max_by float_of_int [ 3; 9; 1 ]);
  Alcotest.(check int) "min_by" 1 (Listx.min_by float_of_int [ 3; 9; 1 ]);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list (pair int (list int)))) "group_by"
    [ (0, [ 2; 4 ]); (1, [ 1; 3 ]) ]
    (Listx.group_by (fun x -> x mod 2) [ 1; 2; 3; 4 ])

let test_timer () =
  let x, dt = Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0)

let test_histogram () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 () in
  List.iter (Histogram.add h) [ 0.5; 1.0; 2.5; 9.9; 15.0; -3.0 ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  (* 15.0 clamps into the last bin, -3.0 into the first. *)
  Alcotest.(check (array int)) "bins" [| 3; 1; 0; 0; 2 |] (Histogram.bin_counts h);
  let edges = Histogram.bin_edges h in
  Alcotest.(check (float 1e-9)) "first lower edge" 0.0 (fst edges.(0));
  Alcotest.(check (float 1e-9)) "last upper edge" 10.0 (snd edges.(4));
  Alcotest.(check bool) "renders" true (String.length (Histogram.render h) > 0);
  Alcotest.check_raises "bad bins"
    (Invalid_argument "Histogram.create: bins must be positive") (fun () ->
      ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0 ()))

let test_log_histogram () =
  let h = Histogram.create ~scale:Histogram.Log ~lo:1.0 ~hi:1000.0 ~bins:3 () in
  let edges = Histogram.bin_edges h in
  (* Geometric bins: decade boundaries. *)
  Alcotest.(check (float 1e-9)) "first upper edge" 10.0 (snd edges.(0));
  Alcotest.(check (float 1e-9)) "second upper edge" 100.0 (snd edges.(1));
  List.iter (Histogram.add h) [ 2.0; 5.0; 50.0; 500.0; 0.1; 5000.0 ];
  (* Out-of-range samples clamp like in the linear case. *)
  Alcotest.(check (array int)) "bins" [| 3; 1; 2 |] (Histogram.bin_counts h);
  Alcotest.check_raises "log scale needs lo > 0"
    (Invalid_argument "Histogram.create: log scale needs lo > 0") (fun () ->
      ignore (Histogram.create ~scale:Histogram.Log ~lo:0.0 ~hi:1.0 ~bins:4 ()))

let test_histogram_percentile () =
  let h = Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 () in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Histogram.percentile h 0.5));
  for i = 1 to 100 do
    Histogram.add h (float_of_int i -. 0.5)
  done;
  (* One sample per unit bin, so any percentile is exact to a bin
     width. *)
  Alcotest.(check (float 1.0)) "median" 50.0 (Histogram.percentile h 0.5);
  Alcotest.(check (float 1.0)) "p95" 95.0 (Histogram.percentile h 0.95);
  Alcotest.(check (float 1.0)) "p0 hits the low edge" 0.0
    (Histogram.percentile h 0.0);
  Alcotest.(check (float 1.0)) "p100 hits the high edge" 100.0
    (Histogram.percentile h 1.0)

let test_pool () =
  (* Happy path: every accepted job runs exactly once before shutdown
     returns. *)
  let pool = Parallel.Pool.create ~domains:2 ~capacity:64 () in
  let ran = Atomic.make 0 in
  let accepted = ref 0 in
  for _ = 1 to 20 do
    if Parallel.Pool.submit pool (fun () -> Atomic.incr ran) then incr accepted
  done;
  Parallel.Pool.shutdown pool;
  Alcotest.(check int) "all accepted jobs ran" !accepted (Atomic.get ran);
  Alcotest.(check bool) "submit after shutdown refused" false
    (Parallel.Pool.submit pool (fun () -> ()));
  (* Backpressure: one worker pinned, capacity-1 queue filled, the next
     submit must bounce instead of blocking. *)
  let pool = Parallel.Pool.create ~domains:1 ~capacity:1 () in
  let release = Atomic.make false in
  let pinned =
    Parallel.Pool.submit pool (fun () ->
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done)
  in
  Alcotest.(check bool) "blocker accepted" true pinned;
  (* Wait until the worker has dequeued the blocker so the queue state
     is deterministic. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Parallel.Pool.queue_depth pool > 0 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check bool) "filler accepted" true
    (Parallel.Pool.submit pool (fun () -> ()));
  Alcotest.(check bool) "full queue rejects" false
    (Parallel.Pool.submit pool (fun () -> ()));
  Alcotest.(check int) "rejected job not queued" 1
    (Parallel.Pool.queue_depth pool);
  Atomic.set release true;
  Parallel.Pool.shutdown pool;
  Alcotest.(check int) "drained" 0 (Parallel.Pool.queue_depth pool)

let test_parallel_map () =
  let xs = List.init 100 (fun i -> i) in
  let expected = List.map (fun x -> x * x) xs in
  Alcotest.(check (list int)) "sequential" expected (Parallel.map (fun x -> x * x) xs);
  Alcotest.(check (list int)) "2 domains" expected
    (Parallel.map ~domains:2 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "4 domains keeps order" expected
    (Parallel.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "more domains than tasks" [ 1; 4 ]
    (Parallel.map ~domains:8 (fun x -> x * x) [ 1; 2 ]);
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~domains:4 (fun x -> x) []);
  Alcotest.(check bool) "recommended >= 1" true (Parallel.recommended_domains () >= 1)

let test_parallel_exceptions () =
  Alcotest.check_raises "worker exception propagates" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~domains:3
           (fun x -> if x = 7 then failwith "boom" else x)
           (List.init 20 (fun i -> i))))

(* Backoff edge cases: previously only exercised indirectly through
   Client.rpc_retry. *)

let test_backoff_invalid_policy () =
  Alcotest.check_raises "zero base" (Invalid_argument "Backoff.policy: base must be > 0")
    (fun () -> ignore (Backoff.policy ~base:0.0 ()));
  Alcotest.check_raises "negative base"
    (Invalid_argument "Backoff.policy: base must be > 0") (fun () ->
      ignore (Backoff.policy ~base:(-0.5) ()));
  Alcotest.check_raises "cap below base"
    (Invalid_argument "Backoff.policy: cap must be >= base") (fun () ->
      ignore (Backoff.policy ~base:0.2 ~cap:0.1 ()));
  Alcotest.check_raises "negative attempts"
    (Invalid_argument "Backoff.policy: max_attempts < 0") (fun () ->
      ignore (Backoff.policy ~max_attempts:(-1) ()));
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Backoff.policy: budget < 0") (fun () ->
      ignore (Backoff.policy ~budget:(-1.0) ()))

let drain b =
  let rec go acc =
    match Backoff.next b with None -> List.rev acc | Some d -> go (d :: acc)
  in
  go []

let test_backoff_cap_saturation () =
  (* A tiny cap pins every delay into [base, cap] no matter how many
     attempts have inflated [3 * prev]. *)
  let p = Backoff.policy ~base:0.01 ~cap:0.02 ~max_attempts:50 ~budget:0.0 () in
  let delays = drain (Backoff.start ~seed:7 p) in
  Alcotest.(check int) "max_attempts bounds the schedule" 50 (List.length delays);
  List.iter
    (fun d ->
      Alcotest.(check bool) "delay >= base" true (d >= 0.01 -. 1e-12);
      Alcotest.(check bool) "delay <= cap" true (d <= 0.02 +. 1e-12))
    delays

let test_backoff_budget_clip () =
  (* The final delay is clipped so cumulative sleep lands exactly on the
     budget, never past it. *)
  let p = Backoff.policy ~base:0.4 ~cap:1.0 ~max_attempts:0 ~budget:1.0 () in
  let b = Backoff.start ~seed:3 p in
  let delays = drain b in
  let total = List.fold_left ( +. ) 0.0 delays in
  Alcotest.(check (float 1e-9)) "sums exactly to the budget" 1.0 total;
  Alcotest.(check (float 1e-9)) "elapsed agrees" 1.0 (Backoff.elapsed b);
  Alcotest.(check int) "attempts counted" (List.length delays) (Backoff.attempts b)

let test_backoff_determinism () =
  let p = Backoff.policy ~base:0.05 ~cap:1.0 ~max_attempts:20 ~budget:0.0 () in
  let a = drain (Backoff.start ~seed:42 p) in
  let b = drain (Backoff.start ~seed:42 p) in
  let c = drain (Backoff.start ~seed:43 p) in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule" a b;
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  (* First delay is always exactly [base]: no jitter before failure #2. *)
  Alcotest.(check (float 0.0)) "first delay is base" 0.05 (List.hd a)

let suite =
  [
    Alcotest.test_case "parallel: map" `Quick test_parallel_map;
    Alcotest.test_case "parallel: exception propagation" `Quick
      test_parallel_exceptions;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram: log bins" `Quick test_log_histogram;
    Alcotest.test_case "histogram: percentiles" `Quick test_histogram_percentile;
    Alcotest.test_case "parallel: worker pool" `Quick test_pool;
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: sampling w/o replacement" `Quick
      test_rng_sample_without_replacement;
    Alcotest.test_case "rng: shuffle is a permutation" `Quick
      test_rng_shuffle_permutation;
    Alcotest.test_case "rng: pareto support" `Quick test_pareto_support;
    Alcotest.test_case "stats: welford summary" `Quick test_welford_matches_naive;
    Alcotest.test_case "stats: percentile" `Quick test_percentile;
    Alcotest.test_case "table: render + csv" `Quick test_table_render;
    Alcotest.test_case "table: csv quoting" `Quick test_table_csv_quoting;
    Alcotest.test_case "listx helpers" `Quick test_listx;
    Alcotest.test_case "timer" `Quick test_timer;
    Alcotest.test_case "backoff: invalid policies" `Quick
      test_backoff_invalid_policy;
    Alcotest.test_case "backoff: cap saturation" `Quick
      test_backoff_cap_saturation;
    Alcotest.test_case "backoff: budget clip" `Quick test_backoff_budget_clip;
    Alcotest.test_case "backoff: determinism" `Quick test_backoff_determinism;
  ]
