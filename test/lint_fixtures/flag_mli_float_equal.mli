(* must-flag: expressions hide inside interface attribute payloads
   (float-equal at line 4) *)
val eps : float
[@@check fun x -> x = 0.0]
