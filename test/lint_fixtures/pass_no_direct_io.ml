(* must-pass: telemetry through Tdmd_obs, string building is fine *)
let announce tel msg =
  Tdmd_obs.Telemetry.count tel msg 1;
  Printf.sprintf "noted %s" msg
