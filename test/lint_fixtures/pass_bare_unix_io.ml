(* must-pass: I/O through the EINTR-safe wrappers *)
let send fd payload = Protocol.write_all fd payload
let recv fd n = Protocol.read_exact fd n ~clean_eof:false
