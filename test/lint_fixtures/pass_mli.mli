(* must-pass: a plain interface has nothing to flag *)
val solve : budget:int -> int list -> int list
