(* must-pass: scalar compares and dedicated equality go through *)
let same_id (a : int) (b : int) = a = b
let sorted rates = List.sort (fun a b -> compare b a) rates
let same_placement p q = Placement.to_list p = Placement.to_list q
