(* must-pass: the sanctioned absorb-and-restart site — one catch-all in
   the whole server, suppressed with a reason, mirroring
   Supervisor.protect (which re-raises Faults.Crash first) *)
let protect report fallback run =
  try run ()
  with
  (* tdmd-lint: allow catch-all — the supervisor's single sanctioned absorb-and-restart site; Crash is re-raised before this handler runs *)
  | _ as e ->
    report (Printexc.to_string e);
    fallback "shard failed"
