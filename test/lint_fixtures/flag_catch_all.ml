(* must-flag: catch-all at lines 3 and 7 *)
let size path =
  try Some (Unix.stat path).Unix.st_size with _ -> None

let first l =
  match List.hd l with
  | exception _ -> None
  | x -> Some x
