(* must-flag: float-equal at lines 3 and 6 *)
let is_zero x =
  x = 0.0

let not_one x =
  x <> 1.0
