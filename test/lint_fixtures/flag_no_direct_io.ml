(* must-flag: no-direct-io at lines 3 and 6 *)
let announce msg =
  print_endline msg

let warn code =
  Printf.eprintf "warning: %d\n%!" code
