(* must-flag: bare-unix-io at lines 3, 4 and 5 *)
let shovel fd buf =
  let got = Unix.read fd buf 0 (Bytes.length buf) in
  let _ = Unix.write fd buf 0 got in
  Unix.single_write fd buf 0 got
