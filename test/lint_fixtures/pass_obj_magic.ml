(* must-pass: Obj.repr/reachable_words are fine, only Obj.magic is banned *)
let heap_words x = Obj.reachable_words (Obj.repr x)
