(* must-flag: naked-mutex-lock at line 4 *)
let bump m counter =
  (* an exception from incr-adjacent code would leak the mutex *)
  Mutex.lock m;
  incr counter;
  Mutex.unlock m
