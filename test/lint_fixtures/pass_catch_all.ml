(* must-pass: explicit exception patterns; constructor args may be _ *)
let size path =
  try Some (Unix.stat path).Unix.st_size
  with Unix.Unix_error _ | Sys_error _ -> None

let first l = match List.hd l with exception Failure _ -> None | x -> Some x
