(* must-pass: Float.equal and tolerant comparisons; < is not equality *)
let is_zero x = Float.equal x 0.0
let near x y = Float.abs (x -. y) < 1e-9
let big x = x > 100.0
