(* must-flag: a supervisor-style absorb-and-restart site written as a
   bare catch-all (line 6) — even aliased, [_ as e] still matches
   Out_of_memory and Stack_overflow *)
let protect report fallback run =
  try run ()
  with _ as e ->
    report (Printexc.to_string e);
    fallback "shard failed"
