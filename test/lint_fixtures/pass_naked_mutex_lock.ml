(* must-pass: locking through the exception-safe combinator *)
let bump m counter =
  Tdmd_prelude.Locked.with_lock m (fun () -> incr counter)
