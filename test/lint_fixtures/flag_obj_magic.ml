(* must-flag: obj-magic at line 3 *)
let dummy : int =
  Obj.magic "not an int"
