(* must-flag: poly-compare-record at lines 3, 6 and 9 *)
let same_instance inst inst' =
  inst = inst'

let order_placements placement1 placement2 =
  compare placement1 placement2

let graph_changed graph old_graph =
  graph <> old_graph
