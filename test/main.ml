let () =
  Alcotest.run "tdmd"
    [
      ("prelude", Test_prelude.suite);
      ("heap", Test_heap.suite);
      ("graph", Test_graph.suite);
      ("graph-extra", Test_graph_extra.suite);
      ("tree", Test_tree.suite);
      ("flow", Test_flow.suite);
      ("traffic", Test_traffic.suite);
      ("topology", Test_topo.suite);
      ("setcover", Test_setcover.suite);
      ("submodular", Test_submod.suite);
      ("inc-oracle", Test_inc_oracle.suite);
      ("model", Test_model.suite);
      ("obs", Test_obs.suite);
      ("solvers", Test_solvers.suite);
      ("registry", Test_registry.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("extensions", Test_extensions.suite);
      ("netsim-chain", Test_netsim_chain.suite);
      ("sim", Test_sim.suite);
      ("portfolio", Test_portfolio.suite);
      ("server", Test_server.suite);
      ("journal", Test_journal.suite);
      ("engine", Test_engine.suite);
      ("churn", Test_churn.suite);
      ("experiments", Test_experiments.suite);
      ("lint", Test_lint.suite);
      ("analyze", Test_analyze.suite);
    ]
