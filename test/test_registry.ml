(* Solver registry: every registered solver must produce a feasible,
   correctly-priced outcome on the paper's worked examples, and the
   outcome telemetry must agree with the solvers' own report fields. *)

open Tdmd_prelude
module Solvers = Tdmd.Solvers
module Tel = Tdmd_obs.Telemetry

let check_priced name inst (o : Tdmd.Solver_intf.outcome) =
  Alcotest.(check bool) (name ^ " feasible") true o.Tdmd.Solver_intf.feasible;
  Alcotest.(check (float 1e-9)) (name ^ " bandwidth matches its placement")
    (Tdmd.Bandwidth.total inst o.Tdmd.Solver_intf.placement)
    o.Tdmd.Solver_intf.bandwidth

let test_general_solvers () =
  let inst = Fixtures.fig1_instance () in
  List.iter
    (fun (name, solve) ->
      let o = solve ~rng:(Rng.create 7) ~k:3 inst in
      check_priced name inst o)
    (Solvers.general ());
  (* Fig. 1 worked optimum at k = 3 is 8: brute must hit it and the
     greedy must match on this instance (Tab. 2's trace). *)
  let bw name =
    let solve = Option.get (Solvers.find_general name) in
    (solve ~rng:(Rng.create 7) ~k:3 inst).Tdmd.Solver_intf.bandwidth
  in
  Alcotest.(check (float 1e-9)) "brute optimum" 8.0 (bw "brute");
  Alcotest.(check (float 1e-9)) "gtp matches the worked example" 8.0 (bw "gtp");
  Alcotest.(check (float 1e-9)) "celf = gtp" (bw "gtp") (bw "celf")

let test_tree_solvers () =
  (* Fig. 5 is binary, so even dp-binary runs on it. *)
  let inst = Fixtures.fig5_instance () in
  let general = Tdmd.Instance.Tree.to_general inst in
  List.iter
    (fun (name, solve) ->
      let o = solve ~rng:(Rng.create 7) ~k:2 inst in
      check_priced name general o)
    (Solvers.tree ());
  let bw name =
    let solve = Option.get (Solvers.find_tree name) in
    (solve ~rng:(Rng.create 7) ~k:2 inst).Tdmd.Solver_intf.bandwidth
  in
  Alcotest.(check (float 1e-9)) "dp-binary = dp" (bw "dp") (bw "dp-binary");
  Alcotest.(check bool) "dp optimal vs hat" true (bw "dp" <= bw "hat" +. 1e-9)

let test_on_tree_lifts_general () =
  let inst = Fixtures.fig5_instance () in
  let lifted = Option.get (Solvers.on_tree "gtp") in
  let o = lifted ~rng:(Rng.create 7) ~k:2 inst in
  let direct = Tdmd.Gtp.run ~budget:2 (Tdmd.Instance.Tree.to_general inst) in
  Alcotest.(check (float 1e-9)) "lifted gtp = direct gtp"
    direct.Tdmd.Gtp.bandwidth o.Tdmd.Solver_intf.bandwidth;
  Alcotest.(check bool) "tree-only name not in general table" true
    (Solvers.find_general "dp" = None);
  Alcotest.(check bool) "unknown name rejected" true (Solvers.on_tree "nope" = None)

let test_telemetry_matches_reports () =
  let inst = Fixtures.fig1_instance () in
  let run name =
    let solve = Option.get (Solvers.find_general name) in
    solve ~rng:(Rng.create 7) ~k:3 inst
  in
  let gtp = Tdmd.Gtp.run ~budget:3 inst in
  Alcotest.(check int) "gtp oracle_calls counter = report field"
    gtp.Tdmd.Gtp.oracle_calls
    (Tel.get_count (run "gtp").Tdmd.Solver_intf.telemetry "oracle_calls");
  let celf = Tdmd.Gtp.run_celf ~budget:3 inst in
  Alcotest.(check int) "celf oracle_calls counter = report field"
    celf.Tdmd.Gtp.oracle_calls
    (Tel.get_count (run "celf").Tdmd.Solver_intf.telemetry "oracle_calls");
  Alcotest.(check bool) "celf lazily skips oracle calls" true
    (celf.Tdmd.Gtp.oracle_calls <= gtp.Tdmd.Gtp.oracle_calls);
  (* Every solver run leaves at least one closed span behind. *)
  List.iter
    (fun (name, solve) ->
      let o = solve ~rng:(Rng.create 7) ~k:3 inst in
      Alcotest.(check bool) (name ^ " recorded a span") true
        (Tel.spans o.Tdmd.Solver_intf.telemetry <> []))
    (Solvers.general ())

let test_names_unique () =
  let names = Solvers.names () in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length sorted);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " resolves on trees") true
        (Solvers.on_tree name <> None))
    names

let suite =
  [
    Alcotest.test_case "registry: general solvers on fig1" `Quick
      test_general_solvers;
    Alcotest.test_case "registry: tree solvers on fig5" `Quick test_tree_solvers;
    Alcotest.test_case "registry: on_tree lifts general solvers" `Quick
      test_on_tree_lifts_general;
    Alcotest.test_case "registry: telemetry matches report fields" `Quick
      test_telemetry_matches_reports;
    Alcotest.test_case "registry: names unique and tree-resolvable" `Quick
      test_names_unique;
  ]
