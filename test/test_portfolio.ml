(* The anytime metaheuristic portfolio: step-budgeted determinism
   across runs and domain counts, monotone feasible publications, the
   registry entries, and the deadline-zero fallback contract. *)

open Tdmd_prelude
module Pf = Tdmd_portfolio.Portfolio
module Anneal = Tdmd_portfolio.Anneal
module Genetic = Tdmd_portfolio.Genetic
module Search = Tdmd_portfolio.Search
module Oracle = Tdmd.Inc_oracle

let () = Tdmd_portfolio.Register.install ()

let mid_instance case_seed =
  let rng = Rng.create (7_000_000 + case_seed) in
  Fixtures.random_general_instance rng ~n:12 ~flows:20 ~max_rate:6 ~lambda:0.5

let race ~domains ~seed ~steps inst =
  let t = Pf.start ~domains ~steps ~rng:(Rng.create seed) ~k:4 inst in
  match Pf.await t with
  | Some b -> (b.Pf.volume, b.Pf.placement)
  | None -> (-1, [])

(* The satellite property: same seed + step budget => bit-identical
   answers, whatever the domain count and however the domains were
   scheduled.  (The improvements counter is scheduling-dependent and
   deliberately not compared.) *)
let prop_deterministic =
  QCheck.Test.make ~name:"await: step-budgeted answers are bit-identical"
    ~count:12
    QCheck.(pair (int_bound 1_000_000) (int_range 20 120))
    (fun (seed, steps) ->
      let inst = mid_instance (seed mod 5) in
      let a = race ~domains:1 ~seed ~steps inst in
      let b = race ~domains:1 ~seed ~steps inst in
      let c = race ~domains:3 ~seed ~steps inst in
      a = b && b = c)

let test_published_monotone_feasible () =
  let inst = mid_instance 1 in
  let log = ref [] in
  (* One worker domain: publications arrive sequentially (the start-time
     cover publish happens before any member is submitted), so a plain
     ref is race-free here. *)
  let t =
    Pf.start ~domains:1 ~steps:300
      ~on_publish:(fun b -> log := b :: !log)
      ~rng:(Rng.create 42) ~k:4 inst
  in
  ignore (Pf.await t);
  let published = List.rev !log in
  Alcotest.(check bool) "something was published" true (published <> []);
  let scratch = Oracle.create inst in
  List.iter
    (fun (b : Pf.best) ->
      let volume, feasible = Search.eval scratch b.Pf.placement in
      Alcotest.(check bool)
        (Printf.sprintf "published %s is feasible" b.Pf.member)
        true feasible;
      Alcotest.(check int) "published volume is the exact re-evaluation"
        volume b.Pf.volume;
      Alcotest.(check bool) "placement within budget" true
        (List.length b.Pf.placement <= 4))
    published;
  ignore
    (List.fold_left
       (fun prev (b : Pf.best) ->
         Alcotest.(check bool) "best-so-far never worsens" true
           (b.Pf.volume > prev);
         b.Pf.volume)
       (-1) published);
  (* The final cell is the last (greatest) publication. *)
  match Pf.best_now t with
  | None -> Alcotest.fail "cell empty after publications"
  | Some best ->
    Alcotest.(check int) "cell holds the maximum"
      (List.fold_left (fun acc (b : Pf.best) -> max acc b.Pf.volume) (-1) published)
      best.Pf.volume

let test_deadline_zero_has_answer () =
  let inst = mid_instance 2 in
  let t = Pf.start ~domains:2 ~rng:(Rng.create 9) ~k:4 inst in
  match Pf.await ~deadline_ms:0 t with
  | None -> Alcotest.fail "no answer at deadline 0 (cover not published?)"
  | Some b ->
    let scratch = Oracle.create inst in
    let _, feasible = Search.eval scratch b.Pf.placement in
    Alcotest.(check bool) "deadline-0 answer is feasible" true feasible

let test_solo_runs_deterministic () =
  (* Seed 3 needs five vertices before a full cover exists, so k = 6
     leaves slack for the searches to find a feasible answer. *)
  let inst = mid_instance 3 in
  let run_a () = Anneal.run ~rng:(Rng.create 5) ~k:6 ~steps:400 inst in
  let run_g () = Genetic.run ~rng:(Rng.create 5) ~k:6 ~steps:150 inst in
  let a1 = run_a () and a2 = run_a () in
  Alcotest.(check bool) "anneal deterministic" true
    (a1.Search.volume = a2.Search.volume
    && a1.Search.placement = a2.Search.placement);
  Alcotest.(check bool) "anneal found something" true a1.Search.feasible;
  let g1 = run_g () and g2 = run_g () in
  Alcotest.(check bool) "genetic deterministic" true
    (g1.Search.volume = g2.Search.volume
    && g1.Search.placement = g2.Search.placement);
  Alcotest.(check bool) "genetic found something" true g1.Search.feasible

let test_registry_entries () =
  let inst = Fixtures.fig1_instance () in
  List.iter
    (fun name ->
      match Tdmd.Solvers.find_general name with
      | None -> Alcotest.failf "%s not registered" name
      | Some solve ->
        let o = solve ~rng:(Rng.create 7) ~k:3 inst in
        Alcotest.(check bool) (name ^ " feasible on fig1") true
          o.Tdmd.Solver_intf.feasible;
        (* Fig. 1's worked optimum at k = 3 is 8 (brute force agrees);
           a 20-candidate search space leaves no excuse. *)
        Alcotest.(check (float 1e-9)) (name ^ " reaches the fig1 optimum")
          8.0 o.Tdmd.Solver_intf.bandwidth)
    [ "portfolio"; "anneal"; "genetic" ];
  Alcotest.(check bool) "names are listed" true
    (List.mem "portfolio" (Tdmd.Solvers.names ()));
  Alcotest.(check bool) "duplicate registration refused" true
    (match Tdmd.Solvers.register_general "portfolio" (fun ~rng:_ ~k:_ _ ->
         assert false)
     with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_portfolio_beats_members () =
  (* At a full step budget the portfolio must match its strongest
     member: it races gtp, so it can never answer worse than gtp. *)
  (* Seed 4's instance needs six vertices for a full cover. *)
  let inst = mid_instance 4 in
  let t = Pf.start ~steps:800 ~rng:(Rng.create 3) ~k:6 inst in
  let best = Pf.await t in
  let outcome = Pf.outcome_of t best in
  let gtp = Option.get (Tdmd.Solvers.find_general "gtp") in
  let g = gtp ~rng:(Rng.create 3) ~k:6 inst in
  Alcotest.(check bool) "portfolio feasible" true
    outcome.Tdmd.Solver_intf.feasible;
  Alcotest.(check bool) "portfolio <= gtp bandwidth" true
    (outcome.Tdmd.Solver_intf.bandwidth
    <= g.Tdmd.Solver_intf.bandwidth +. 1e-9)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_deterministic;
    Alcotest.test_case "portfolio: publications feasible and monotone" `Quick
      test_published_monotone_feasible;
    Alcotest.test_case "portfolio: deadline 0 still answers" `Quick
      test_deadline_zero_has_answer;
    Alcotest.test_case "anneal/genetic: fixed seed is deterministic" `Quick
      test_solo_runs_deterministic;
    Alcotest.test_case "registry: portfolio names installed" `Quick
      test_registry_entries;
    Alcotest.test_case "portfolio: never worse than its gtp member" `Quick
      test_portfolio_beats_members;
  ]
