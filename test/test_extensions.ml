(* Extension modules: the binary-tree DP transcription (Eqs. 7-8),
   local search, bounds, incremental maintenance, plus the Euler-tour
   LCA and the auxiliary traffic machinery. *)

open Tdmd_prelude
module P = Tdmd.Placement
module Flow = Tdmd_flow.Flow
module Rt = Tdmd_tree.Rooted_tree

(* ------------------------------------------------------------------ *)
(* Dp_binary vs Dp                                                     *)
(* ------------------------------------------------------------------ *)

let test_dp_binary_fig5 () =
  let inst = Fixtures.fig5_instance () in
  List.iter
    (fun k ->
      let a = Tdmd.Dp.solve ~k inst in
      let b = Tdmd.Dp_binary.solve ~k inst in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "values equal at k=%d" k)
        a.Tdmd.Dp.bandwidth b.Tdmd.Dp_binary.bandwidth)
    [ 1; 2; 3; 4 ]

let prop_dp_binary_matches_general =
  QCheck.Test.make ~name:"binary-tree DP (eqs 7-8) = general DP" ~count:60
    QCheck.(triple (int_bound 100000) (int_range 2 15) (int_range 1 5))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let tree = Tdmd_topo.Topo_tree.random_binary rng n in
      let leaves = List.filter (fun v -> v <> Rt.root tree) (Rt.leaves tree) in
      let flows =
        List.mapi
          (fun id leaf ->
            Flow.make ~id ~rate:(Rng.int_in rng 1 5) ~path:(Rt.path_to_root tree leaf))
          leaves
      in
      let inst = Tdmd.Instance.Tree.make ~tree ~flows ~lambda:0.5 in
      let a = Tdmd.Dp.solve ~k inst in
      let b = Tdmd.Dp_binary.solve ~k inst in
      a.Tdmd.Dp.feasible = b.Tdmd.Dp_binary.feasible
      && ((not a.Tdmd.Dp.feasible)
         || Float.abs (a.Tdmd.Dp.bandwidth -. b.Tdmd.Dp_binary.bandwidth) < 1e-6))

let test_dp_binary_rejects_wide () =
  let tree = Tdmd_topo.Topo_tree.star 5 in
  let flows =
    [ Flow.make ~id:0 ~rate:1 ~path:(Rt.path_to_root tree 1) ]
  in
  let inst = Tdmd.Instance.Tree.make ~tree ~flows ~lambda:0.5 in
  Alcotest.check_raises "more than two children"
    (Invalid_argument "Dp_binary.solve: vertex has more than two children")
    (fun () -> ignore (Tdmd.Dp_binary.solve ~k:2 inst))

let prop_dp_binary_placement_consistent =
  QCheck.Test.make ~name:"binary DP traceback evaluates to its value" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 2 15))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let tree = Tdmd_topo.Topo_tree.random_binary rng n in
      let leaves = List.filter (fun v -> v <> Rt.root tree) (Rt.leaves tree) in
      let flows =
        List.mapi
          (fun id leaf ->
            Flow.make ~id ~rate:(Rng.int_in rng 1 4) ~path:(Rt.path_to_root tree leaf))
          leaves
      in
      let inst = Tdmd.Instance.Tree.make ~tree ~flows ~lambda:0.3 in
      let r = Tdmd.Dp_binary.solve ~k:3 inst in
      (not r.Tdmd.Dp_binary.feasible)
      || Float.abs
           (Tdmd.Bandwidth.total (Tdmd.Instance.Tree.to_general inst)
              r.Tdmd.Dp_binary.placement
           -. r.Tdmd.Dp_binary.bandwidth)
         < 1e-6)

(* ------------------------------------------------------------------ *)
(* Local search                                                        *)
(* ------------------------------------------------------------------ *)

let test_local_search_improves_fig1 () =
  let inst = Fixtures.fig1_instance () in
  (* Start from the feasible-but-poor all-at-destination plan {v1,v2}. *)
  let start = P.of_list [ 0; 1 ] in
  let r = Tdmd.Local_search.refine ~k:2 inst start in
  Alcotest.(check bool) "improved" true (r.Tdmd.Local_search.bandwidth < 16.0);
  Alcotest.(check (float 1e-9)) "reaches the k=2 optimum" 12.0
    r.Tdmd.Local_search.bandwidth;
  Alcotest.(check bool) "still feasible" true
    (Tdmd.Feasibility.check inst r.Tdmd.Local_search.placement)

let test_local_search_rejects_infeasible () =
  let inst = Fixtures.fig1_instance () in
  Alcotest.check_raises "infeasible start"
    (Invalid_argument "Local_search.refine: infeasible starting deployment")
    (fun () -> ignore (Tdmd.Local_search.refine ~k:1 inst (P.of_list [ 3 ])))

let prop_local_search_never_worse =
  QCheck.Test.make ~name:"local search never worsens and stays feasible"
    ~count:40
    QCheck.(triple (int_bound 100000) (int_range 3 12) (int_range 1 4))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst =
        Fixtures.random_general_instance rng ~n ~flows:(2 * n) ~max_rate:5 ~lambda:0.5
      in
      let gtp = Tdmd.Gtp.run ~budget:k inst in
      (not gtp.Tdmd.Gtp.feasible)
      || begin
           let r = Tdmd.Local_search.refine ~k inst gtp.Tdmd.Gtp.placement in
           r.Tdmd.Local_search.bandwidth <= gtp.Tdmd.Gtp.bandwidth +. 1e-9
           && Tdmd.Feasibility.check inst r.Tdmd.Local_search.placement
           && P.size r.Tdmd.Local_search.placement <= k
         end)

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_bounds_fig1 () =
  let inst = Fixtures.fig1_instance () in
  let b = Tdmd.Bounds.compute ~k:3 inst in
  Alcotest.(check (float 1e-9)) "unprocessed" 16.0 b.Tdmd.Bounds.unprocessed;
  Alcotest.(check (float 1e-9)) "all sources" 8.0 b.Tdmd.Bounds.all_sources;
  (* top-3 singleton decrements: 4 + 3 + 3 = 10 -> 16 - 10 = 6 < 8. *)
  Alcotest.(check (float 1e-9)) "k-aware lower" 8.0 b.Tdmd.Bounds.k_lower;
  Alcotest.(check bool) "upper above optimum" true (b.Tdmd.Bounds.k_upper >= 8.0);
  Alcotest.(check bool) "check accepts the optimum" true
    (Tdmd.Bounds.check ~k:3 inst 8.0);
  Alcotest.(check bool) "check rejects impossible" false
    (Tdmd.Bounds.check ~k:3 inst 4.0)

let prop_bounds_sandwich_solvers =
  QCheck.Test.make ~name:"bounds sandwich every solver" ~count:40
    QCheck.(triple (int_bound 100000) (int_range 2 12) (int_range 1 4))
    (fun (seed, n, k) ->
      let rng = Rng.create seed in
      let inst = Fixtures.random_tree_instance rng ~n ~max_rate:5 ~lambda:0.5 in
      let general = Tdmd.Instance.Tree.to_general inst in
      let b = Tdmd.Bounds.compute ~k general in
      let dp = Tdmd.Dp.solve ~k inst in
      let hat = Tdmd.Hat.run ~k inst in
      b.Tdmd.Bounds.k_lower <= dp.Tdmd.Dp.bandwidth +. 1e-6
      && dp.Tdmd.Dp.bandwidth <= b.Tdmd.Bounds.unprocessed +. 1e-6
      && Tdmd.Bounds.check ~k general hat.Tdmd.Hat.bandwidth)

(* ------------------------------------------------------------------ *)
(* Incremental maintenance                                             *)
(* ------------------------------------------------------------------ *)

let chain_graph n =
  let g = Tdmd_graph.Digraph.create n in
  for v = 1 to n - 1 do
    Tdmd_graph.Digraph.add_undirected g v (v - 1)
  done;
  g

let test_incremental_basic () =
  let g = chain_graph 5 in
  let t = Tdmd.Incremental.create ~graph:g ~lambda:0.5 ~k:2 () in
  Alcotest.(check bool) "empty is feasible" true (Tdmd.Incremental.feasible t);
  Tdmd.Incremental.arrive t (Flow.make ~id:0 ~rate:4 ~path:[ 4; 3; 2; 1; 0 ]);
  Alcotest.(check bool) "served after arrival" true (Tdmd.Incremental.feasible t);
  Alcotest.(check int) "one box" 1 (P.size (Tdmd.Incremental.placement t));
  (* Best serving vertex for a single flow is its source. *)
  Alcotest.(check (list int)) "box at source" [ 4 ]
    (P.to_list (Tdmd.Incremental.placement t));
  Tdmd.Incremental.arrive t (Flow.make ~id:1 ~rate:2 ~path:[ 2; 1; 0 ]);
  Alcotest.(check bool) "still feasible" true (Tdmd.Incremental.feasible t);
  Alcotest.(check bool) "within budget" true
    (P.size (Tdmd.Incremental.placement t) <= 2);
  Tdmd.Incremental.depart t 0;
  Alcotest.(check bool) "feasible after departure" true (Tdmd.Incremental.feasible t);
  Alcotest.(check int) "one flow left" 1 (List.length (Tdmd.Incremental.flows t));
  Alcotest.(check bool) "moves counted" true (Tdmd.Incremental.moves t >= 2)

let test_incremental_rejects () =
  let g = chain_graph 3 in
  let t = Tdmd.Incremental.create ~graph:g ~lambda:0.5 ~k:1 () in
  Tdmd.Incremental.arrive t (Flow.make ~id:0 ~rate:1 ~path:[ 2; 1; 0 ]);
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Incremental.arrive: duplicate flow id") (fun () ->
      Tdmd.Incremental.arrive t (Flow.make ~id:0 ~rate:1 ~path:[ 1; 0 ]))

let prop_incremental_stays_feasible =
  QCheck.Test.make ~name:"incremental stays feasible through random churn"
    ~count:30
    QCheck.(pair (int_bound 100000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Tdmd_topo.Topo_general.erdos_renyi rng n ~p:0.3 in
      let t = Tdmd.Incremental.create ~graph:g ~lambda:0.5 ~k:(max 2 (n / 3)) () in
      let next_id = ref 0 in
      let ok = ref true in
      for _ = 1 to 30 do
        if Rng.float rng 1.0 < 0.6 || Tdmd.Incremental.flows t = [] then begin
          let src = Rng.int rng n and dst = Rng.int rng n in
          if src <> dst then begin
            match Tdmd_graph.Bfs.shortest_path g ~src ~dst with
            | Some path ->
              Tdmd.Incremental.arrive t
                (Flow.make ~id:!next_id ~rate:(Rng.int_in rng 1 5) ~path);
              incr next_id
            | None -> ()
          end
        end
        else begin
          let fs = Tdmd.Incremental.flows t in
          let victim = List.nth fs (Rng.int rng (List.length fs)) in
          Tdmd.Incremental.depart t victim.Flow.id
        end;
        if not (Tdmd.Incremental.feasible t) then begin
          (* Infeasibility is acceptable only when even the set-cover
             greedy cannot serve the current flows within k (the
             maintainer's last resort is exactly that cover). *)
          let inst = Tdmd.Incremental.instance t in
          match Tdmd.Feasibility.greedy_cover inst with
          | Some cover when P.size cover <= max 2 (n / 3) -> ok := false
          | _ -> ()
        end
      done;
      !ok)

let test_incremental_quality_vs_scratch () =
  (* Across a timeline, the maintained deployment should stay within a
     reasonable factor of from-scratch GTP on each snapshot. *)
  let rng = Rng.create 77 in
  let g = Tdmd_topo.Topo_general.erdos_renyi rng 12 ~p:0.3 in
  let k = 4 in
  let t = Tdmd.Incremental.create ~graph:g ~lambda:0.5 ~k () in
  let next_id = ref 0 in
  let worst_ratio = ref 1.0 in
  for _ = 1 to 25 do
    (if Rng.float rng 1.0 < 0.7 || Tdmd.Incremental.flows t = [] then begin
       let src = Rng.int rng 12 and dst = Rng.int rng 12 in
       if src <> dst then begin
         match Tdmd_graph.Bfs.shortest_path g ~src ~dst with
         | Some path ->
           Tdmd.Incremental.arrive t
             (Flow.make ~id:!next_id ~rate:(Rng.int_in rng 1 5) ~path);
           incr next_id
         | None -> ()
       end
     end
     else begin
       let fs = Tdmd.Incremental.flows t in
       let victim = List.nth fs (Rng.int rng (List.length fs)) in
       Tdmd.Incremental.depart t victim.Flow.id
     end);
    if Tdmd.Incremental.flows t <> [] then begin
      let scratch = Tdmd.Gtp.run ~budget:k (Tdmd.Incremental.instance t) in
      if scratch.Tdmd.Gtp.bandwidth > 0.0 then begin
        let ratio = Tdmd.Incremental.bandwidth t /. scratch.Tdmd.Gtp.bandwidth in
        if ratio > !worst_ratio then worst_ratio := ratio
      end
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "within 2x of scratch GTP (worst %.2f)" !worst_ratio)
    true (!worst_ratio <= 2.0)

(* ------------------------------------------------------------------ *)
(* Euler-tour LCA and tree printing                                    *)
(* ------------------------------------------------------------------ *)

let prop_euler_lca_matches =
  QCheck.Test.make ~name:"euler-tour LCA = binary lifting = naive" ~count:60
    QCheck.(pair (int_range 2 60) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let tree = Tdmd_topo.Topo_tree.random_attachment rng n in
      let lift = Tdmd_tree.Lca.build tree in
      let euler = Tdmd_tree.Euler_lca.build tree in
      let ok = ref true in
      for _ = 1 to 40 do
        let u = Rng.int rng n and v = Rng.int rng n in
        let a = Tdmd_tree.Lca.query lift u v in
        let b = Tdmd_tree.Euler_lca.query euler u v in
        let c = Tdmd_tree.Lca.naive tree u v in
        if a <> b || b <> c then ok := false
      done;
      !ok)

let test_tree_print () =
  let tree = Fixtures.fig5_tree () in
  let s = Tdmd_tree.Tree_print.render tree in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "one line per vertex" 8 (List.length lines);
  Alcotest.(check string) "root first" "0" (List.hd lines);
  let labelled =
    Tdmd_tree.Tree_print.render ~label:(fun v -> Printf.sprintf "v%d" (v + 1)) tree
  in
  Alcotest.(check bool) "labels used" true
    (String.split_on_char '\n' labelled |> List.exists (fun l -> l = "v1"))

(* ------------------------------------------------------------------ *)
(* Traffic extras: trace codec and temporal workloads                  *)
(* ------------------------------------------------------------------ *)

let test_trace_roundtrip () =
  let flows =
    [
      Flow.make ~id:0 ~rate:4 ~path:[ 4; 2; 0 ];
      Flow.make ~id:1 ~rate:2 ~path:[ 5; 2; 1 ];
      Flow.make ~id:7 ~rate:1 ~path:[ 3 ];
    ]
  in
  match Tdmd_traffic.Trace.of_csv (Tdmd_traffic.Trace.to_csv flows) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    Alcotest.(check int) "count" 3 (List.length parsed);
    List.iter2
      (fun a b ->
        Alcotest.(check int) "id" a.Flow.id b.Flow.id;
        Alcotest.(check int) "rate" a.Flow.rate b.Flow.rate;
        Alcotest.(check (array int)) "path" a.Flow.path b.Flow.path)
      flows parsed

let test_trace_errors () =
  (match Tdmd_traffic.Trace.of_csv "nope\n1,2,3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  (match Tdmd_traffic.Trace.of_csv "id,rate,path\n1,x,0-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad rate accepted");
  match Tdmd_traffic.Trace.of_csv "id,rate,path\n1,0,0-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero rate accepted"

let test_trace_file_roundtrip () =
  let flows = [ Flow.make ~id:3 ~rate:9 ~path:[ 1; 0 ] ] in
  let path = Filename.temp_file "tdmd_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tdmd_traffic.Trace.save path flows;
      match Tdmd_traffic.Trace.load path with
      | Ok [ f ] -> Alcotest.(check int) "rate" 9 f.Flow.rate
      | Ok _ -> Alcotest.fail "wrong count"
      | Error e -> Alcotest.fail e)

let test_temporal () =
  let rng = Rng.create 5 in
  let timeline =
    Tdmd_traffic.Temporal.generate rng ~horizon:100.0 ~mean_interarrival:2.0
      ~mean_lifetime:10.0
      ~draw_flow:(fun _ id -> Flow.make ~id ~rate:1 ~path:[ 1; 0 ])
  in
  Alcotest.(check bool) "events exist" true (timeline <> []);
  (* Times sorted, ids dense, departures after arrivals. *)
  let rec sorted = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted timeline);
  let arrivals = Hashtbl.create 64 in
  List.iter
    (fun (t, ev) ->
      match ev with
      | Tdmd_traffic.Temporal.Arrival f -> Hashtbl.replace arrivals f.Flow.id t
      | Tdmd_traffic.Temporal.Departure id ->
        (match Hashtbl.find_opt arrivals id with
        | Some t0 ->
          Alcotest.(check bool) "departure after arrival" true (t >= t0)
        | None -> Alcotest.fail "departure without arrival"))
    timeline;
  (* active_at is consistent with a manual replay. *)
  let active = Tdmd_traffic.Temporal.active_at timeline 50.0 in
  List.iter
    (fun f ->
      Alcotest.(check bool) "arrived before t" true
        (Hashtbl.find arrivals f.Flow.id <= 50.0))
    active

let suite =
  [
    Alcotest.test_case "dp-binary: fig5 agreement" `Quick test_dp_binary_fig5;
    QCheck_alcotest.to_alcotest prop_dp_binary_matches_general;
    Alcotest.test_case "dp-binary: rejects wide trees" `Quick
      test_dp_binary_rejects_wide;
    QCheck_alcotest.to_alcotest prop_dp_binary_placement_consistent;
    Alcotest.test_case "local search: improves fig1" `Quick
      test_local_search_improves_fig1;
    Alcotest.test_case "local search: rejects infeasible" `Quick
      test_local_search_rejects_infeasible;
    QCheck_alcotest.to_alcotest prop_local_search_never_worse;
    Alcotest.test_case "bounds: fig1 values" `Quick test_bounds_fig1;
    QCheck_alcotest.to_alcotest prop_bounds_sandwich_solvers;
    Alcotest.test_case "incremental: arrivals and departures" `Quick
      test_incremental_basic;
    Alcotest.test_case "incremental: rejects duplicates" `Quick
      test_incremental_rejects;
    QCheck_alcotest.to_alcotest prop_incremental_stays_feasible;
    Alcotest.test_case "incremental: quality vs scratch GTP" `Quick
      test_incremental_quality_vs_scratch;
    QCheck_alcotest.to_alcotest prop_euler_lca_matches;
    Alcotest.test_case "tree printing" `Quick test_tree_print;
    Alcotest.test_case "trace: csv roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace: error handling" `Quick test_trace_errors;
    Alcotest.test_case "trace: file roundtrip" `Quick test_trace_file_roundtrip;
    Alcotest.test_case "temporal workload" `Quick test_temporal;
  ]
