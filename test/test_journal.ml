(* Durability: CRC32 vectors, backoff schedules, the journal codec and
   its corruption/torn-tail detection, deterministic fault plans, and —
   the property the whole subsystem exists for — crash-recovery that is
   bit-identical and exactly-once at every named crash point. *)

module Json = Tdmd_obs.Json
module Crc32 = Tdmd_prelude.Crc32
module Backoff = Tdmd_prelude.Backoff
module Journal = Tdmd_server.Journal
module Faults = Tdmd_server.Faults
module Session = Tdmd_server.Session
module P = Tdmd_server.Protocol

(* New-API constructor (the deprecated [of_general] alias has its own
   equivalence test in test_engine.ml). *)
let session_of_general ?durability ?dedup_cap ~churn_k inst =
  Session.create
    ~config:
      {
        Session.Config.churn_k = churn_k;
        Session.Config.migration_budget = 0;
        Session.Config.dedup_cap =
          Option.value dedup_cap ~default:Session.default_dedup_cap;
        Session.Config.durability = durability;
        Session.Config.dtel = None;
      }
    inst

(* ------------------------------------------------------------------ *)
(* CRC32                                                               *)
(* ------------------------------------------------------------------ *)

let test_crc32_vectors () =
  (* The IEEE 802.3 check value, and friends. *)
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int) "a" 0xE8B7BE43 (Crc32.string "a");
  Alcotest.(check int) "abc" 0x352441C2 (Crc32.string "abc")

let test_crc32_incremental () =
  let whole = Crc32.string "hello, journal" in
  let part = Crc32.string ~crc:(Crc32.string "hello, ") "journal" in
  Alcotest.(check int) "chunked = one-shot" whole part;
  let b = Bytes.of_string "xxhello, journalyy" in
  Alcotest.(check int) "windowed"
    whole
    (Crc32.bytes ~pos:2 ~len:(Bytes.length b - 4) b)

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let drain b =
  let rec go acc = match Backoff.next b with
    | Some d -> go (d :: acc)
    | None -> List.rev acc
  in
  go []

let test_backoff_deterministic () =
  let p = Backoff.policy ~base:0.01 ~cap:0.2 ~max_attempts:12 () in
  let a = drain (Backoff.start ~seed:7 p) in
  let b = drain (Backoff.start ~seed:7 p) in
  let c = drain (Backoff.start ~seed:8 p) in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule" a b;
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  Alcotest.(check int) "max_attempts delays" 12 (List.length a);
  List.iteri
    (fun i d ->
      if d < p.Backoff.base -. 1e-12 || d > p.Backoff.cap +. 1e-12 then
        Alcotest.failf "delay %d = %g outside [base, cap]" i d)
    a;
  Alcotest.(check (float 1e-12)) "first delay is base" p.Backoff.base
    (List.hd a)

let test_backoff_budget () =
  let p = Backoff.policy ~base:0.01 ~cap:10.0 ~budget:0.5 () in
  let b = Backoff.start ~seed:3 p in
  let delays = drain b in
  let total = List.fold_left ( +. ) 0.0 delays in
  Alcotest.(check bool) "stops" true (List.length delays < 1000);
  if total > 0.5 +. 1e-9 then
    Alcotest.failf "planned sleep %g exceeds budget" total;
  Alcotest.(check (float 1e-9)) "elapsed = sum of delays" total
    (Backoff.elapsed b)

(* ------------------------------------------------------------------ *)
(* Journal record codec                                                *)
(* ------------------------------------------------------------------ *)

let op_gen =
  let open QCheck.Gen in
  let req = oneof [ return None; map (fun n -> Some (Printf.sprintf "req-%d" n)) (int_bound 9999) ] in
  oneof
    [
      (let* id = int_bound 100000 in
       let* rate = int_range 1 1000 in
       let* len = int_range 1 8 in
       let* path = list_repeat len (int_bound 63) in
       let* req = req in
       return (Journal.Arrive { id; rate; path; req }));
      (let* flow_id = int_bound 100000 in
       let* req = req in
       return (Journal.Depart { flow_id; req }));
      (let* budget = int_bound 100000 in
       let* req = req in
       return (Journal.Rebalance { budget; req }));
    ]

let op_print op = Json.to_string (Journal.op_to_json op)

let prop_op_roundtrip =
  QCheck.Test.make ~count:300 ~name:"journal op: encode . decode = id"
    (QCheck.make ~print:op_print op_gen)
    (fun op ->
      match Json.of_string (Json.to_string (Journal.op_to_json op)) with
      | Error _ -> false
      | Ok json -> (
        match Journal.op_of_json json with
        | Ok op' -> op = op'
        | Error _ -> false))

(* Write [ops] through the real writer into a temp file, return its
   path and raw contents. *)
let journal_on_disk ops =
  let path = Filename.temp_file "tdmd-wal" ".wal" in
  Sys.remove path;
  let j, replayed = Journal.open_append ~fsync:Journal.Never path in
  Alcotest.(check int) "fresh journal is empty" 0 (List.length replayed);
  List.iter (Journal.append j) ops;
  Journal.close j;
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (path, data)

let sample_ops =
  [
    Journal.Arrive { id = 1; rate = 3; path = [ 0; 1; 2 ]; req = Some "a" };
    Journal.Depart { flow_id = 1; req = None };
    Journal.Arrive { id = 2; rate = 1; path = [ 4; 3 ]; req = None };
    Journal.Arrive { id = 77; rate = 9; path = [ 5; 4; 3; 2; 1 ]; req = Some "b" };
    Journal.Depart { flow_id = 77; req = Some "c" };
    Journal.Rebalance { budget = 4; req = Some "d" };
  ]

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let firstn n xs = List.filteri (fun i _ -> i < n) xs

(* Which record does byte [i] of the file belong to? *)
let record_of_byte ops i =
  let rec go idx off = function
    | [] -> idx
    | op :: rest ->
      let len = String.length (Journal.encode op) in
      if i < off + len then idx else go (idx + 1) (off + len) rest
  in
  go 0 0 ops

let test_single_byte_flip () =
  let path, data = journal_on_disk sample_ops in
  let n = String.length data in
  for i = 0 to n - 1 do
    let corrupted = Bytes.of_string data in
    Bytes.set_uint8 corrupted i (Bytes.get_uint8 corrupted i lxor 0x40);
    write_file path (Bytes.to_string corrupted);
    let hit = record_of_byte sample_ops i in
    match Journal.replay path with
    | Error msg -> Alcotest.failf "flip at %d: replay refused the file: %s" i msg
    | Ok (ops, torn) ->
      (* The record containing the flip must not survive; everything
         before it must.  (A flipped length byte may also swallow later
         records — a *longer* prefix than [hit] is the one impossible
         outcome.) *)
      if List.length ops > hit then
        Alcotest.failf "flip at byte %d (record %d) yielded %d records" i hit
          (List.length ops);
      if List.length ops = hit && torn = 0 then
        Alcotest.failf "flip at byte %d: no torn bytes reported" i;
      if ops <> firstn (List.length ops) sample_ops then
        Alcotest.failf "flip at byte %d: surviving prefix differs" i
  done;
  Sys.remove path

let test_torn_tail_every_offset () =
  let path, data = journal_on_disk sample_ops in
  let boundaries =
    (* Cumulative record end offsets. *)
    List.rev
      (fst
         (List.fold_left
            (fun (acc, off) op ->
              let off = off + String.length (Journal.encode op) in
              (off :: acc, off))
            ([ 0 ], 0) sample_ops))
  in
  Alcotest.(check int) "sizes add up" (String.length data)
    (List.fold_left max 0 boundaries);
  let n = String.length data in
  for cut = 0 to n do
    write_file path (String.sub data 0 cut);
    let complete = List.length (List.filter (fun b -> b <= cut) boundaries) - 1 in
    (match Journal.replay path with
    | Error msg -> Alcotest.failf "cut at %d: replay refused: %s" cut msg
    | Ok (ops, torn) ->
      Alcotest.(check int)
        (Printf.sprintf "cut at %d: records" cut)
        complete (List.length ops);
      if ops <> firstn complete sample_ops then
        Alcotest.failf "cut at %d: prefix differs" cut;
      Alcotest.(check int)
        (Printf.sprintf "cut at %d: torn bytes" cut)
        (cut - List.nth boundaries complete)
        torn);
    (* The writer must also accept the torn file: truncate and go on. *)
    let tel = Tdmd_obs.Telemetry.create () in
    let j, replayed = Journal.open_append ~tel ~fsync:Journal.Never path in
    Alcotest.(check int)
      (Printf.sprintf "cut at %d: open_append replays" cut)
      complete (List.length replayed);
    Journal.append j (Journal.Depart { flow_id = 999; req = None });
    Journal.close j;
    (match Journal.replay path with
    | Ok (ops, 0) ->
      Alcotest.(check int)
        (Printf.sprintf "cut at %d: append after truncation" cut)
        (complete + 1) (List.length ops)
    | Ok (_, torn) -> Alcotest.failf "cut at %d: %d torn bytes survive" cut torn
    | Error msg -> Alcotest.failf "cut at %d: %s" cut msg)
  done;
  Sys.remove path

(* A write failure mid-record (ENOSPC, media error) must not leave the
   fd offset after the half-written garbage: later acked appends have
   to stay readable on replay.  short@wal.write:3 clamps the failing
   record's first pass (op 1's single pass consumes hits 1-2), then the
   EIO on its second pass aborts the append with a partial record on
   disk — which append must truncate away before rethrowing.
   (wal.write hit counts: each append fires mangle + per-pass clamp and
   eintr, so op 1 consumes 1-3 and op 2's first-pass clamp is hit 5;
   wal.write.fail counts per pass only: op 1 is 1, op 2's passes are
   2 and 3.) *)
let test_append_failure_restores_tail () =
  let path = Filename.temp_file "tdmd-wal" ".wal" in
  Sys.remove path;
  let faults =
    match Faults.of_spec "short@wal.write:5;fail@wal.write.fail:3;seed=5" with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let tel = Tdmd_obs.Telemetry.create () in
  let j, _ = Journal.open_append ~faults ~tel ~fsync:Journal.Never path in
  let op1 = List.nth sample_ops 0
  and op2 = List.nth sample_ops 3
  and op3 = List.nth sample_ops 4 in
  Journal.append j op1;
  (match Journal.append j op2 with
  | () -> Alcotest.fail "append through an EIO fault must raise"
  | exception Unix.Unix_error (Unix.EIO, _, _) -> ());
  Alcotest.(check bool) "invariant restored, not poisoned" false
    (Journal.poisoned j);
  Alcotest.(check int) "failure counted" 1
    (Tdmd_obs.Telemetry.get_count tel "wal_append_failures");
  Journal.append j op3;
  Journal.close j;
  (match Journal.replay path with
  | Ok (ops, 0) ->
    if ops <> [ op1; op3 ] then
      Alcotest.fail "surviving records are not exactly the acked appends"
  | Ok (_, torn) ->
    Alcotest.failf "%d bytes of half-written record survived" torn
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* Write-side and replay-side record limits must agree: an op the
   journal accepts (and the server acks) can never decode as corruption
   later.  Oversized ops are refused before any byte reaches the disk. *)
let test_oversized_record_rejected () =
  let big =
    Journal.Arrive
      { id = 1; rate = 1; path = List.init 300_000 (fun i -> i); req = None }
  in
  (match Journal.encode big with
  | _ -> Alcotest.fail "encode must refuse payloads above max_record"
  | exception Invalid_argument _ -> ());
  let path = Filename.temp_file "tdmd-wal" ".wal" in
  Sys.remove path;
  let j, _ = Journal.open_append ~fsync:Journal.Never path in
  let op1 = List.hd sample_ops in
  Journal.append j op1;
  (match Journal.append j big with
  | () -> Alcotest.fail "append must refuse payloads above max_record"
  | exception Invalid_argument _ -> ());
  let op3 = List.nth sample_ops 1 in
  Journal.append j op3;
  Journal.close j;
  (match Journal.replay path with
  | Ok (ops, 0) when ops = [ op1; op3 ] -> ()
  | Ok (ops, torn) ->
    Alcotest.failf "replay: %d records, %d torn bytes" (List.length ops) torn
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_fsync_policy_strings () =
  List.iter
    (fun (s, p) ->
      (match Journal.fsync_policy_of_string s with
      | Ok q when q = p -> ()
      | Ok _ -> Alcotest.failf "%s parsed wrong" s
      | Error msg -> Alcotest.failf "%s: %s" s msg);
      Alcotest.(check string) "roundtrip" s (Journal.fsync_policy_to_string p))
    [ ("always", Journal.Always); ("none", Journal.Never);
      ("every-16", Journal.Every_n 16) ];
  (match Journal.fsync_policy_of_string "every-0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "every-0 must be rejected");
  match Journal.fsync_policy_of_string "sometimes" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad policy must be rejected"

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let test_fault_spec () =
  (match Faults.of_spec "" with
  | Ok t -> Alcotest.(check bool) "empty spec is inert" false (Faults.enabled t)
  | Error msg -> Alcotest.fail msg);
  (match Faults.of_spec "crash@wal.append.post_write:3;seed=7" with
  | Ok t -> Alcotest.(check bool) "enabled" true (Faults.enabled t)
  | Error msg -> Alcotest.fail msg);
  (match Faults.of_spec "fail@wal.write.fail:2" with
  | Ok t -> Alcotest.(check bool) "fail kind parses" true (Faults.enabled t)
  | Error msg -> Alcotest.fail msg);
  (match Faults.of_spec "explode@somewhere" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind must be rejected");
  match Faults.of_spec "crash@" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty point must be rejected"

(* The PR 9 grammar extensions: probabilistic [:p=] triggers and the
   [die]/[delay] kinds, plus the conflict checks that keep a plan
   deterministic. *)
let test_fault_spec_extended () =
  let ok name spec =
    match Faults.of_spec spec with
    | Ok t -> Alcotest.(check bool) name true (Faults.enabled t)
    | Error msg -> Alcotest.failf "%s: %s" name msg
  in
  let contains msg needle =
    let n = String.length msg and m = String.length needle in
    let rec go i = i + m <= n && (String.sub msg i m = needle || go (i + 1)) in
    go 0
  in
  let refused name spec needle =
    match Faults.of_spec spec with
    | Error msg ->
      if not (contains msg needle) then
        Alcotest.failf "%s: error %S does not mention %S" name msg needle
    | Ok _ -> Alcotest.failf "%s: %S must be rejected" name spec
  in
  ok "die kind" "die@shard.apply:1";
  ok "delay kind" "delay@shard.apply:p=0.5";
  ok "p=1 is a valid probability" "die@p:p=1";
  ok "trigger defaults to :1" "delay@p";
  refused "p=0" "die@p:p=0" "probability";
  refused "p>1" "die@p:p=1.5" "probability";
  refused "malformed trigger" "die@p:often" "trigger";
  (* Conflicts: a plan where two raising kinds could fire on the same
     pass of one point is ambiguous, not deterministic. *)
  refused "exact duplicate" "die@p:2;die@p:2" "duplicate";
  refused "two raising kinds, same nth" "crash@p:2;die@p:2" "conflicting";
  refused "raising prob coincides with raising nth" "crash@p:p=0.5;die@p:7"
    "conflicting";
  (* Non-raising kinds coexist freely, with each other and with one
     raising kind; distinct points never conflict. *)
  ok "non-raising pair at one point" "short@p:2;eintr@p:2";
  ok "delay beside a raising kind" "delay@p:p=0.5;die@p:p=0.5";
  ok "raising kinds at distinct points" "die@p:1;die@q:1"

(* Round-trip: [of_spec . to_spec = id] over the full grammar.  Points
   are made distinct by index so generated plans never trip the
   conflict check — conflicts are covered deterministically above. *)
let fault_spec_gen =
  let open QCheck.Gen in
  let kind =
    oneofl [ "crash"; "eintr"; "short"; "corrupt"; "fail"; "die"; "delay" ]
  in
  let trigger =
    oneof
      [
        map (Printf.sprintf ":%d") (int_range 1 99);
        map (Printf.sprintf ":p=%.17g") (float_range 1e-6 1.0);
      ]
  in
  let* n = int_range 1 5 in
  let* kinds = list_repeat n kind in
  let* triggers = list_repeat n trigger in
  let* seed = int_bound 9999 in
  let directives =
    List.mapi
      (fun i (k, trig) -> Printf.sprintf "%s@pt%d%s" k i trig)
      (List.combine kinds triggers)
  in
  let parts =
    if seed = 0 then directives
    else directives @ [ Printf.sprintf "seed=%d" seed ]
  in
  return (String.concat ";" parts)

let prop_fault_spec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"fault spec: of_spec . to_spec = id"
    (QCheck.make ~print:Fun.id fault_spec_gen)
    (fun spec ->
      match Faults.of_spec spec with
      | Error _ -> false
      | Ok t -> (
        Faults.to_spec t = spec
        &&
        match Faults.of_spec (Faults.to_spec t) with
        | Ok t' -> Faults.to_spec t' = spec
        | Error _ -> false))

let test_fault_crash_fires_at_nth () =
  let t =
    match Faults.of_spec "crash@p:3" with Ok t -> t | Error m -> Alcotest.fail m
  in
  Faults.hit t "p";
  Faults.hit t "p";
  (match Faults.hit t "p" with
  | () -> Alcotest.fail "third hit must crash"
  | exception Faults.Crash point -> Alcotest.(check string) "point" "p" point);
  (* Consumed: later hits pass. *)
  Faults.hit t "p";
  Alcotest.(check (list (pair string int))) "hit counts" [ ("p", 4) ]
    (Faults.hits t)

(* ------------------------------------------------------------------ *)
(* EINTR / short I/O on the frame path                                 *)
(* ------------------------------------------------------------------ *)

let test_frame_io_under_faults () =
  let faults =
    match
      Faults.of_spec
        "eintr@sock.write;short@sock.write:2;short@sock.write:3;\
         eintr@sock.read;short@sock.read:2;short@sock.read:4;seed=11"
    with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close a; Unix.close b)
    (fun () ->
      let msg =
        Json.Obj
          [ ("op", Json.String "arrive");
            ("path", Json.List (List.init 40 (fun i -> Json.Int i)));
            ("note", Json.String (String.make 300 'x')) ]
      in
      P.write_frame ~faults a msg;
      match P.read_frame ~faults b with
      | Ok got ->
        Alcotest.(check string) "frame survives EINTR + short I/O"
          (Json.to_string msg) (Json.to_string got)
      | Error `Eof -> Alcotest.fail "eof"
      | Error (`Bad m) -> Alcotest.fail m)

(* ------------------------------------------------------------------ *)
(* Crash-recovery property                                             *)
(* ------------------------------------------------------------------ *)

let tiny_instance () =
  let g = Tdmd_graph.Digraph.create 6 in
  List.iter
    (fun (u, v) -> Tdmd_graph.Digraph.add_undirected g u v)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ];
  Tdmd.Instance.make ~graph:g
    ~flows:[ Tdmd_flow.Flow.make ~id:1000 ~rate:2 ~path:[ 0; 1; 2; 3 ] ]
    ~lambda:0.5

type wop = A of int * int * int list | D of int | DU of int | R of int

let workload =
  [
    A (1, 2, [ 0; 1; 2; 3 ]);
    A (2, 4, [ 5; 4; 3 ]);
    A (3, 1, [ 2; 3; 4 ]);
    D 2;
    A (4, 3, [ 1; 2; 3; 4; 5 ]);
    DU 9999;  (* unknown id: refused as a conflict, never journaled *)
    R 3;  (* journaled with its resolved budget; replay re-runs it *)
    A (5, 2, [ 3; 2; 1 ]);
    D 1;
    R 2;
  ]

let apply_wop session i wop =
  let req = Printf.sprintf "req-%d" i in
  match wop with
  | A (id, rate, path) -> Session.arrive session ~req ~id ~rate ~path ()
  | D id | DU id -> Session.depart session ~req id
  | R budget -> Session.rebalance session ~req ~budget ()

let expect_applied ctx = function
  | Ok _ -> ()
  | Error (code, msg) -> Alcotest.failf "%s: %s %s" ctx code msg

(* [DU] ops flip the expectation: an unknown depart is refused
   ("conflict") before the journal sees it, identically on every run
   and replay. *)
let expect_wop ctx wop reply =
  match (wop, reply) with
  | DU _, Error ("conflict", _) -> ()
  | DU _, Ok _ -> Alcotest.failf "%s: unknown depart was accepted" ctx
  | _, reply -> expect_applied ctx reply

(* The externally observable state: churn summary + a live solve with a
   seeded algorithm.  Bit-identical recovery means this string matches. *)
let fingerprint session =
  let churn = Json.to_string (Json.Obj (Session.churn_stats session)) in
  let solve =
    match Session.solve session ~algo:"gtp" ~k:2 ~seed:5 ~target:P.Live with
    | Ok (Json.Obj fields) ->
      (* Everything except wall-clock timing ("telemetry" carries
         oracle_ns/dur_ns, nondeterministic by nature). *)
      Json.to_string
        (Json.Obj (List.filter (fun (k, _) -> k <> "telemetry") fields))
    | Ok json -> Json.to_string json
    | Error (code, msg) -> Printf.sprintf "error %s: %s" code msg
  in
  churn ^ "|" ^ solve

let temp_dir () =
  let path = Filename.temp_file "tdmd-dur" "" in
  Sys.remove path;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let reference_fingerprint =
  lazy
    (let session = session_of_general ~churn_k:2 (tiny_instance ()) in
     List.iteri
       (fun i wop -> expect_wop "reference" wop (apply_wop session i wop))
       workload;
     fingerprint session)

(* Drive the workload against a durable session that crashes at the
   [nth] pass of [point]; recover; retry the crashed op with the same
   req id; finish the workload.  The final state must match the
   uninterrupted run and no op may be applied twice. *)
let crash_and_recover ~point ~nth ~snapshot_every =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let faults =
    match Faults.of_spec (Printf.sprintf "crash@%s:%d" point nth) with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let cfg = Session.durability ~snapshot_every ~faults dir in
  (* On Crash, abandon the session without closing — the in-process
     stand-in for the process dying.  (Re-opening in the same process
     works because POSIX record locks do not conflict within one
     process.) *)
  (match session_of_general ~durability:cfg ~churn_k:2 (tiny_instance ()) with
  | exception Faults.Crash _ -> ()
  | session -> (
    try
      List.iteri
        (fun i wop ->
          expect_wop (Printf.sprintf "%s op %d" point i) wop
            (apply_wop session i wop))
        workload
    with Faults.Crash _ -> ()));
  (* Recover, then replay the whole workload with the same req ids —
     already-applied ops dedup, missing ones apply.  This IS the client
     retry protocol, so it must converge to the uninterrupted state. *)
  let clean = Session.durability ~snapshot_every dir in
  match Session.recover clean with
  | Error msg -> Alcotest.failf "%s:%d: recover failed: %s" point nth msg
  | Ok recovered ->
    List.iteri
      (fun i wop ->
        expect_wop
          (Printf.sprintf "%s:%d replay op %d" point nth i)
          wop
          (apply_wop recovered i wop))
      workload;
    let got = fingerprint recovered in
    Session.close recovered;
    if got <> Lazy.force reference_fingerprint then
      Alcotest.failf "%s:%d: recovered state differs\nref: %s\ngot: %s" point
        nth
        (Lazy.force reference_fingerprint)
        got

let crash_matrix =
  [
    ("wal.append.pre_write", 1, 0);
    ("wal.append.pre_write", 4, 0);
    ("wal.append.post_write", 1, 0);
    ("wal.append.post_write", 4, 0);
    ("wal.append.post_fsync", 2, 0);
    ("wal.append.post_fsync", 8, 0);
    (* Snapshot points: hit 1 is the seed snapshot at construction, so
       nth=2 crashes the mid-workload snapshot (snapshot_every=3). *)
    ("snap.pre_write", 2, 3);
    ("snap.pre_rename", 2, 3);
    ("snap.post_rename", 2, 3);
    ("snap.post_retire", 2, 3);
    (* Appends interleaved with frequent rotation. *)
    ("wal.append.post_write", 3, 2);
  ]

let test_crash_recovery () =
  List.iter
    (fun (point, nth, snapshot_every) ->
      crash_and_recover ~point ~nth ~snapshot_every)
    crash_matrix

(* Exactly-once accounting: after a crash + full retry pass, arrivals/
   departures counters must equal the uninterrupted run's (checked via
   the fingerprint above) and dedup hits must equal the number of ops
   that had already been applied before the crash. *)
let test_dedup_suppression () =
  let session = session_of_general ~churn_k:2 (tiny_instance ()) in
  expect_applied "first"
    (Session.arrive session ~req:"r1" ~id:50 ~rate:1 ~path:[ 0; 1; 2 ] ());
  (match Session.arrive session ~req:"r1" ~id:50 ~rate:1 ~path:[ 0; 1; 2 ] () with
  | Ok json -> (
    match Json.member "dedup" json with
    | Some (Json.Bool true) -> ()
    | _ -> Alcotest.failf "expected dedup reply, got %s" (Json.to_string json))
  | Error (code, msg) -> Alcotest.failf "retry rejected: %s %s" code msg);
  (* Same req, conflicting op: still suppressed (it is the same request
     as far as the client is concerned). *)
  (match Session.depart session ~req:"r1" 50 with
  | Ok json -> (
    match Json.member "dedup" json with
    | Some (Json.Bool true) -> ()
    | _ -> Alcotest.fail "req-keyed dedup must not depend on the op")
  | Error (code, msg) -> Alcotest.failf "%s %s" code msg);
  Alcotest.(check int) "one flow" 1
    (match List.assoc "flows" (Session.churn_stats session) with
    | Json.Int n -> n
    | _ -> -1);
  Alcotest.(check int) "dedup hits" 2
    (Tdmd_obs.Telemetry.get_count (Session.durability_telemetry session)
       "dedup_hits")

let durability_int session name =
  match List.assoc_opt "durability" (Session.durability_stats session) with
  | Some (Json.Obj fields) -> (
    match List.assoc_opt name fields with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.failf "durability stats: no int field %S" name)
  | _ -> Alcotest.fail "no durability stats"

(* FIFO-bounded dedup: the cap holds, the *oldest* ids are the ones
   evicted, and the order survives snapshot + recover (so eviction
   after recovery picks the same victims). *)
let test_dedup_bounded () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = Session.durability dir in
  let s =
    session_of_general ~durability:cfg ~dedup_cap:3 ~churn_k:2 (tiny_instance ())
  in
  for i = 1 to 5 do
    expect_applied "bounded arrive"
      (Session.arrive s ~req:(Printf.sprintf "q%d" i) ~id:i ~rate:1
         ~path:[ 0; 1; 2 ] ())
  done;
  Alcotest.(check int) "table capped" 3 (durability_int s "dedup_size");
  Alcotest.(check int) "two evictions" 2 (durability_int s "dedup_evictions");
  (* q5 is remembered: the retry dedups.  q1 was evicted: the retry is
     judged on its merits again, and flow 1 being live makes it a
     conflict. *)
  (match Session.arrive s ~req:"q5" ~id:5 ~rate:1 ~path:[ 0; 1; 2 ] () with
  | Ok json when Json.member "dedup" json = Some (Json.Bool true) -> ()
  | Ok json -> Alcotest.failf "recent id must dedup, got %s" (Json.to_string json)
  | Error (code, msg) -> Alcotest.failf "%s %s" code msg);
  (match Session.arrive s ~req:"q1" ~id:1 ~rate:1 ~path:[ 0; 1; 2 ] () with
  | Error ("conflict", _) -> ()
  | Ok json -> Alcotest.failf "evicted id must not dedup: %s" (Json.to_string json)
  | Error (code, msg) -> Alcotest.failf "expected conflict, got %s %s" code msg);
  Session.close s;
  match Session.recover ~dedup_cap:3 (Session.durability dir) with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check int) "cap survives recovery" 3 (durability_int r "dedup_size");
    (match Session.arrive r ~req:"q5" ~id:5 ~rate:1 ~path:[ 0; 1; 2 ] () with
    | Ok json when Json.member "dedup" json = Some (Json.Bool true) -> ()
    | _ -> Alcotest.fail "recent id must still dedup after recovery");
    (match Session.arrive r ~req:"q1" ~id:1 ~rate:1 ~path:[ 0; 1; 2 ] () with
    | Error ("conflict", _) -> ()
    | _ -> Alcotest.fail "evicted id must stay evicted after recovery");
    Session.close r

(* A crash mid-rotation leaves a journal segment no snapshot names
   (before the rename: the half-born next segment; after it: the
   retired old one) plus possibly a snapshot temp file.  Recovery must
   sweep them, or they pile up forever. *)
let test_recover_removes_orphans () =
  List.iter
    (fun point ->
      let dir = temp_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let faults =
        match Faults.of_spec (Printf.sprintf "crash@%s:2" point) with
        | Ok t -> t
        | Error m -> Alcotest.fail m
      in
      let cfg = Session.durability ~snapshot_every:3 ~faults dir in
      (match session_of_general ~durability:cfg ~churn_k:2 (tiny_instance ()) with
      | exception Faults.Crash _ -> ()
      | session -> (
        try
          List.iteri
            (fun i wop ->
              expect_wop (point ^ " op") wop (apply_wop session i wop))
            workload
        with Faults.Crash _ -> ()));
      let segments () =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".wal")
      in
      if List.length (segments ()) < 2 then
        Alcotest.failf "%s: crash was expected to strand a segment" point;
      match Session.recover (Session.durability ~snapshot_every:3 dir) with
      | Error msg -> Alcotest.failf "%s: recover: %s" point msg
      | Ok r ->
        Alcotest.(check int) (point ^ ": one segment after recovery") 1
          (List.length (segments ()));
        if
          Array.exists
            (fun f -> Filename.check_suffix f ".tmp")
            (Sys.readdir dir)
        then Alcotest.failf "%s: snapshot temp file survives recovery" point;
        if durability_int r "wal_stale_segments_removed" < 1 then
          Alcotest.failf "%s: removal not counted" point;
        Session.close r)
    [ "snap.pre_rename"; "snap.post_rename" ]

let test_clean_restart_replays_nothing () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = Session.durability dir in
  let s = session_of_general ~durability:cfg ~churn_k:2 (tiny_instance ()) in
  List.iteri (fun i wop -> expect_wop "clean" wop (apply_wop s i wop)) workload;
  let fp = fingerprint s in
  Session.close s;
  match Session.recover (Session.durability dir) with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check int) "nothing to replay" 0
      (Tdmd_obs.Telemetry.get_count (Session.durability_telemetry r)
         "wal_replayed");
    Alcotest.(check string) "state preserved" fp (fingerprint r);
    Session.close r

let suite =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
    Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
    Alcotest.test_case "backoff budget" `Quick test_backoff_budget;
    QCheck_alcotest.to_alcotest prop_op_roundtrip;
    Alcotest.test_case "crc detects single-byte flips" `Quick
      test_single_byte_flip;
    Alcotest.test_case "torn tail at every offset" `Quick
      test_torn_tail_every_offset;
    Alcotest.test_case "append failure restores the tail" `Quick
      test_append_failure_restores_tail;
    Alcotest.test_case "oversized records refused at append" `Quick
      test_oversized_record_rejected;
    Alcotest.test_case "fsync policy strings" `Quick test_fsync_policy_strings;
    Alcotest.test_case "fault spec grammar" `Quick test_fault_spec;
    Alcotest.test_case "fault spec: extended grammar and conflicts" `Quick
      test_fault_spec_extended;
    QCheck_alcotest.to_alcotest prop_fault_spec_roundtrip;
    Alcotest.test_case "crash directive fires at nth" `Quick
      test_fault_crash_fires_at_nth;
    Alcotest.test_case "frames survive EINTR + short I/O" `Quick
      test_frame_io_under_faults;
    Alcotest.test_case "crash recovery at every point" `Quick
      test_crash_recovery;
    Alcotest.test_case "dedup suppression" `Quick test_dedup_suppression;
    Alcotest.test_case "dedup table is FIFO-bounded" `Quick test_dedup_bounded;
    Alcotest.test_case "recovery sweeps orphaned segments" `Quick
      test_recover_removes_orphans;
    Alcotest.test_case "clean restart replays nothing" `Quick
      test_clean_restart_replays_nothing;
  ]
