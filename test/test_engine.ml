(* The sharded engine: 1-shard answers bit-identical to the monolithic
   session, path-ownership routing with cross-shard two-phase apply,
   group commit under concurrency, per-shard crash recovery including
   coordinator replay, the versioned protocol envelope, and client-side
   redirect following. *)

open Tdmd_prelude
module Json = Tdmd_obs.Json
module P = Tdmd_server.Protocol
module Session = Tdmd_server.Session
module Engine = Tdmd_server.Engine
module Shard = Tdmd_server.Shard
module Journal = Tdmd_server.Journal
module Faults = Tdmd_server.Faults
module Server = Tdmd_server.Server
module Client = Tdmd_server.Client
module Supervisor = Tdmd_server.Supervisor
module Pt = Tdmd_topo.Partition
module Sc = Tdmd_sim.Scenario

let mk_config ?durability ?(churn_k = 2) () =
  {
    Session.Config.churn_k;
        Session.Config.migration_budget = 0;
    Session.Config.dedup_cap = Session.default_dedup_cap;
    Session.Config.durability;
    Session.Config.dtel = None;
  }

(* A line 0-1-...-(n-1) with one static flow, the shape every journal
   test in this repo uses: arrivals along contiguous runs are valid. *)
let line_instance n =
  let g = Tdmd_graph.Digraph.create n in
  for v = 0 to n - 2 do
    Tdmd_graph.Digraph.add_undirected g v (v + 1)
  done;
  Tdmd.Instance.make ~graph:g
    ~flows:[ Tdmd_flow.Flow.make ~id:0 ~rate:1 ~path:[ 0; 1; 2 ] ]
    ~lambda:0.5

let temp_dir () =
  let path = Filename.temp_file "tdmd-engine" "" in
  Sys.remove path;
  path

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let expect_applied ctx = function
  | Ok json -> json
  | Error (code, msg) -> Alcotest.failf "%s: %s %s" ctx code msg

let int_field ctx name json =
  match Json.member name json with
  | Some (Json.Int v) -> v
  | _ -> Alcotest.failf "%s: missing int field %S in %s" ctx name
           (Json.to_string json)

let strip_timing = function
  | Ok (Json.Obj fields) ->
    Ok (Json.Obj (List.filter (fun (k, _) -> k <> "telemetry") fields))
  | r -> r

let reply_to_string = function
  | Ok json -> Json.to_string json
  | Error (code, msg) -> Printf.sprintf "error %s: %s" code msg

(* Externally observable engine state: churn stats plus a seeded live
   solve, minus wall-clock timing. *)
let engine_fingerprint engine =
  Json.to_string (Json.Obj (Engine.churn_stats engine))
  ^ "|"
  ^ reply_to_string
      (strip_timing
         (Engine.solve engine ~algo:"gtp" ~k:2 ~seed:5 ~target:P.Live))

(* ------------------------------------------------------------------ *)
(* Session.Config construction                                         *)
(* ------------------------------------------------------------------ *)

let test_config_aliases () =
  let d = Session.Config.default in
  Alcotest.(check int) "default churn_k" 8 d.Session.Config.churn_k;
  Alcotest.(check int) "default dedup_cap" Session.default_dedup_cap
    d.Session.Config.dedup_cap;
  Alcotest.(check bool) "default not durable" true
    (d.Session.Config.durability = None);
  (* Two sessions built from the same Config must behave identically —
     construction is a pure function of (Config, instance). *)
  let drive session =
    ignore
      (expect_applied "arrive"
         (Session.arrive session ~req:"a1" ~id:7 ~rate:2 ~path:[ 0; 1; 2 ] ()));
    ignore (expect_applied "depart" (Session.depart session ~req:"d1" 7));
    Json.to_string (Json.Obj (Session.churn_stats session))
  in
  Alcotest.(check string) "create is deterministic"
    (drive (Session.create ~config:(mk_config ()) (line_instance 6)))
    (drive (Session.create ~config:(mk_config ()) (line_instance 6)));
  let tree_inst = Sc.build_tree (Rng.create 11) Sc.default_tree in
  let solve s =
    reply_to_string
      (strip_timing (Session.solve s ~algo:"gtp" ~k:3 ~seed:9 ~target:P.Static))
  in
  Alcotest.(check string) "create_tree is deterministic"
    (solve (Session.create_tree ~config:(mk_config ~churn_k:3 ()) tree_inst))
    (solve (Session.create_tree ~config:(mk_config ~churn_k:3 ()) tree_inst))

(* ------------------------------------------------------------------ *)
(* 1 shard: bit-identical to the pre-shard session                     *)
(* ------------------------------------------------------------------ *)

let test_one_shard_bit_identical () =
  let tree_inst = Sc.build_tree (Rng.create 4242) Sc.default_tree in
  let k = Sc.default_tree.Sc.k in
  let session = Session.create_tree ~config:(mk_config ~churn_k:k ()) tree_inst in
  let engine = Engine.create ~config:(mk_config ~churn_k:k ()) (Engine.Tree tree_inst) in
  Alcotest.(check int) "one shard" 1 (Engine.shard_count engine);
  (* Whole registry, static target: the engine answer must be the
     session answer, byte for byte. *)
  List.iter
    (fun algo ->
      Alcotest.(check string)
        (Printf.sprintf "solve %s" algo)
        (reply_to_string
           (strip_timing (Session.solve session ~algo ~k ~seed:3 ~target:P.Static)))
        (reply_to_string
           (strip_timing (Engine.solve engine ~algo ~k ~seed:3 ~target:P.Static))))
    [ "gtp"; "celf"; "dp"; "hat"; "random"; "best-effort"; "scaled-dp"; "gtp-ls" ];
  Engine.close engine;
  (* Churn replies must match too — in particular no ["shard"] routing
     field may appear at one shard. *)
  let churn_session = Session.create ~config:(mk_config ()) (line_instance 12) in
  let churn_engine =
    Engine.create ~config:(mk_config ()) (Engine.General (line_instance 12))
  in
  let path = [ 4; 5; 6 ] in
  let via_session =
    reply_to_string
      (Session.arrive churn_session ~req:"r1" ~id:42 ~rate:2 ~path ())
  in
  let engine_reply =
    Engine.arrive churn_engine ~req:"r1" ~id:42 ~rate:2 ~path ()
  in
  Alcotest.(check string) "arrive replies identical" via_session
    (reply_to_string engine_reply);
  (match engine_reply with
  | Ok json ->
    Alcotest.(check bool) "no routing fields at one shard" true
      (Json.member "shard" json = None && Json.member "cross" json = None)
  | Error (code, msg) -> Alcotest.failf "one-shard arrive refused: %s %s" code msg);
  Alcotest.(check string) "depart replies identical"
    (reply_to_string (Session.depart churn_session ~req:"r2" 42))
    (reply_to_string (Engine.depart churn_engine ~req:"r2" 42));
  Alcotest.(check string) "churn stats identical"
    (Json.to_string (Json.Obj (Session.churn_stats churn_session)))
    (Json.to_string (Json.Obj (Engine.churn_stats churn_engine)));
  Engine.close churn_engine

(* ------------------------------------------------------------------ *)
(* Sharded routing                                                     *)
(* ------------------------------------------------------------------ *)

(* 24-vertex line, 4 shards seeded at region midpoints: shard [i] owns
   the contiguous block [6i .. 6i+5]. *)
let sharded_engine () =
  let inst = line_instance 24 in
  let partition =
    Pt.make ~seeds:[ 3; 9; 15; 21 ] inst.Tdmd.Instance.graph ~shards:4
  in
  (Engine.create ~config:(mk_config ()) ~shards:4 ~partition (Engine.General inst),
   partition)

let test_sharded_routing () =
  let engine, partition = sharded_engine () in
  (* BFS fronts from the midpoint seeds meet between blocks; the
     equidistant boundary vertex ties to the lower shard id. *)
  let expected_owner v =
    if v <= 6 then 0 else if v <= 12 then 1 else if v <= 18 then 2 else 3
  in
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "vertex %d owner" v)
        (expected_owner v) (Pt.owner partition v))
    (List.init 24 Fun.id);
  (* Local arrive: routed to its region's shard, tagged with it. *)
  let local =
    expect_applied "local arrive"
      (Engine.arrive engine ~req:"l1" ~id:1 ~rate:2 ~path:[ 7; 8; 9 ] ())
  in
  Alcotest.(check int) "routed to shard 1" 1 (int_field "local" "shard" local);
  Alcotest.(check bool) "local is not cross" true
    (Json.member "cross" local = None);
  (* Cross arrive: three of [4;5;6;7] live in shard 0, one in shard 1 —
     home is the majority owner, and the reply says so. *)
  let cross =
    expect_applied "cross arrive"
      (Engine.arrive engine ~req:"c1" ~id:2 ~rate:1 ~path:[ 4; 5; 6; 7 ] ())
  in
  Alcotest.(check int) "cross home" 0 (int_field "cross" "shard" cross);
  Alcotest.(check bool) "tagged cross" true
    (Json.member "cross" cross = Some (Json.Bool true));
  (* A duplicate id resident on another shard is refused without
     touching any session. *)
  (match Engine.arrive engine ~req:"dup" ~id:1 ~rate:1 ~path:[ 20; 21 ] () with
  | Error ("conflict", _) -> ()
  | r -> Alcotest.failf "cross-shard duplicate: expected conflict, got %s"
           (reply_to_string r));
  (* A retried arrive with the same req dedups at its home shard. *)
  let retry =
    expect_applied "retry"
      (Engine.arrive engine ~req:"l1" ~id:1 ~rate:2 ~path:[ 7; 8; 9 ] ())
  in
  Alcotest.(check bool) "retry dedups" true
    (Json.member "dedup" retry = Some (Json.Bool true));
  (* Invalid path: refused as bad-request by the router. *)
  (match Engine.arrive engine ~req:"bad" ~id:3 ~rate:1 ~path:[ 7; 99 ] () with
  | Error ("bad-request", _) -> ()
  | r -> Alcotest.failf "bad path: expected bad-request, got %s"
           (reply_to_string r));
  (match List.assoc "flows" (Engine.churn_stats engine) with
  | Json.Int v -> Alcotest.(check int) "two flows live" 2 v
  | _ -> Alcotest.fail "missing flows in churn stats");
  (* Departs route by the remembered assignment — no hint needed. *)
  let dep = expect_applied "depart" (Engine.depart engine ~req:"d1" 2) in
  Alcotest.(check int) "depart routed home" 0 (int_field "depart" "shard" dep);
  (* Unknown flows are refused before any shard journals anything. *)
  (match Engine.depart engine ~req:"d2" 999 with
  | Error ("conflict", _) -> ()
  | r ->
    Alcotest.failf "unknown depart: expected conflict, got %s"
      (reply_to_string r));
  (* Live solve runs over the union of the shards' flows. *)
  ignore
    (expect_applied "live solve"
       (Engine.solve engine ~algo:"gtp" ~k:2 ~seed:1 ~target:P.Live));
  (* Sharded stats carry the per-shard section. *)
  (match List.assoc_opt "shards" (Engine.stats_fields engine) with
  | Some (Json.List l) ->
    Alcotest.(check int) "one stats entry per shard" 4 (List.length l)
  | _ -> Alcotest.fail "sharded stats must carry a \"shards\" list");
  Engine.close engine

(* ------------------------------------------------------------------ *)
(* Group commit under concurrency, durable, with recovery              *)
(* ------------------------------------------------------------------ *)

let test_group_commit_concurrent () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let inst = line_instance 12 in
  let partition = Pt.make ~seeds:[ 2; 8 ] inst.Tdmd.Instance.graph ~shards:2 in
  let cfg = Session.durability ~fsync:Journal.Always dir in
  let engine =
    Engine.create ~config:(mk_config ~durability:cfg ()) ~shards:2 ~partition
      (Engine.General inst)
  in
  let threads = 6 and per_thread = 15 in
  let failures = ref [] in
  let failures_lock = Mutex.create () in
  let worker t () =
    let base = t * 6 in (* region of shard (t mod 2): a short run *)
    let lo = if t mod 2 = 0 then 0 else 6 in
    for r = 0 to per_thread - 1 do
      let id = ((t + 1) * 1000) + r in
      let path = [ lo + (r mod 4); lo + (r mod 4) + 1 ] in
      let reply =
        if r mod 3 = 2 then Engine.depart engine ~req:(Printf.sprintf "d%d" id) (id - 1)
        else
          Engine.arrive engine ~req:(Printf.sprintf "a%d" id) ~id ~rate:1 ~path ()
      in
      match reply with
      | Ok _ -> ()
      | Error (code, msg) ->
        Locked.with_lock failures_lock (fun () ->
            failures :=
              Printf.sprintf "thread %d op %d (base %d): %s %s" t r base code msg
              :: !failures)
    done
  in
  let ts = List.init threads (fun t -> Thread.create (worker t) ()) in
  List.iter Thread.join ts;
  (match !failures with
  | [] -> ()
  | msgs -> Alcotest.fail (String.concat "\n" msgs));
  (* Group commit accounting must be coherent on every shard. *)
  Array.iter
    (fun i ->
      let st = Shard.stats (Engine.shard engine i) in
      Alcotest.(check bool) "ops were batched" true (st.Shard.batches > 0);
      Alcotest.(check bool) "batch sizes coherent" true
        (st.Shard.batched_ops >= st.Shard.batches
        && st.Shard.batch_max >= 1
        && st.Shard.queue_depth = 0))
    [| 0; 1 |];
  let before = engine_fingerprint engine in
  Engine.close engine;
  (* A clean close snapshots every shard; recovery must reproduce the
     state bit for bit. *)
  match Engine.recover cfg with
  | Error msg -> Alcotest.failf "recover after close: %s" msg
  | Ok recovered ->
    Alcotest.(check int) "two shards detected" 2 (Engine.shard_count recovered);
    Alcotest.(check string) "recovered state identical" before
      (engine_fingerprint recovered);
    Engine.close recovered

(* ------------------------------------------------------------------ *)
(* Cross-shard two-phase apply: exactly once, replayed on recovery     *)
(* ------------------------------------------------------------------ *)

let test_cross_shard_replay () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let inst = line_instance 12 in
  let partition = Pt.make ~seeds:[ 2; 8 ] inst.Tdmd.Instance.graph ~shards:2 in
  let cfg = Session.durability ~fsync:Journal.Always dir in
  let engine =
    Engine.create ~config:(mk_config ~durability:cfg ()) ~shards:2 ~partition
      (Engine.General inst)
  in
  let boundary =
    (* First vertex owned by shard 1: a path from just before it spans
       both shards. *)
    let rec go v = if Pt.owner partition v = 1 then v else go (v + 1) in
    go 0
  in
  let cross_path = [ boundary - 1; boundary; boundary + 1 ] in
  let reply =
    expect_applied "cross arrive"
      (Engine.arrive engine ~req:"x1" ~id:50 ~rate:2 ~path:cross_path ())
  in
  Alcotest.(check bool) "cross tagged" true
    (Json.member "cross" reply = Some (Json.Bool true));
  let home = int_field "cross" "shard" reply in
  (* Retire verified: the coordinator is quiet again. *)
  (match List.assoc_opt "coord" (Engine.stats_fields engine) with
  | Some coord ->
    Alcotest.(check int) "prepared once" 1 (int_field "coord" "prepares" coord);
    Alcotest.(check int) "nothing in flight" 0 (int_field "coord" "inflight" coord)
  | None -> Alcotest.fail "durable sharded stats must carry \"coord\"");
  Engine.close engine;
  (* Simulate a coordinator that died between prepare and done: append
     a bare prepare to the (now compacted) coordinator journal, then
     recover.  The op must be applied exactly once. *)
  let coord_file = Filename.concat dir "coord.wal" in
  let journal, leftover = Journal.open_append ~fsync:Journal.Always coord_file in
  Alcotest.(check int) "coord journal compacted" 0 (List.length leftover);
  Journal.append journal
    (Journal.Cross_prepare
       {
         xid = "manual-77";
         home;
         op = Journal.Arrive { id = 77; rate = 1; path = cross_path; req = Some "manual-77" };
       });
  Journal.close journal;
  (match Engine.recover cfg with
  | Error msg -> Alcotest.failf "recover with inflight prepare: %s" msg
  | Ok recovered ->
    (match List.assoc_opt "coord" (Engine.stats_fields recovered) with
    | Some coord ->
      Alcotest.(check int) "replayed one prepare" 1
        (int_field "coord" "replayed" coord)
    | None -> Alcotest.fail "recovered stats must carry \"coord\"");
    (match List.assoc "flows" (Engine.churn_stats recovered) with
    | Json.Int f -> Alcotest.(check int) "both flows live" 2 f
    | _ -> Alcotest.fail "missing flows");
    (* A second recovery replays nothing: the done record (and the
       reset) retired the prepare. *)
    Engine.close recovered);
  match Engine.recover cfg with
  | Error msg -> Alcotest.failf "second recover: %s" msg
  | Ok again ->
    (match List.assoc "flows" (Engine.churn_stats again) with
    | Json.Int f -> Alcotest.(check int) "still exactly two flows" 2 f
    | _ -> Alcotest.fail "missing flows");
    Engine.close again

(* ------------------------------------------------------------------ *)
(* Per-shard crash matrix                                              *)
(* ------------------------------------------------------------------ *)

(* The PR 4 crash discipline, sharded: drive a workload that mixes
   shard-local and cross-shard ops against a 2-shard durable engine
   whose fault plan crashes at the nth pass of a WAL/snapshot point —
   in whichever journal (shard 0's, shard 1's or the coordinator's)
   happens to hit it.  Recover, replay the whole workload with the same
   req ids (the client retry protocol), and require the result to be
   bit-identical to an uninterrupted run. *)

type wop = A of int * int * int list | D of int | DU of int | R of int

(* On the default 2-shard partition of the 6-line, shard 0 owns
   {0, 1} and shard 1 owns {2, 3, 4, 5}; paths touching both sides are
   cross-shard ops. *)
let sharded_workload =
  [
    A (1, 2, [ 0; 1 ]);        (* local to shard 0 *)
    A (2, 4, [ 3; 4; 5 ]);     (* local to shard 1 *)
    A (3, 1, [ 1; 2; 3 ]);     (* cross *)
    D 2;
    A (4, 3, [ 0; 1; 2 ]);     (* cross, home 0 *)
    DU 9999;                   (* unknown id: refused, never journaled *)
    R 3;                       (* rebalance: fans out to both shards *)
    A (5, 2, [ 2; 3 ]);        (* local to shard 1 *)
    D 1;
    R 2;
  ]

let apply_wop engine i wop =
  let req = Printf.sprintf "req-%d" i in
  match wop with
  | A (id, rate, path) -> Engine.arrive engine ~req ~id ~rate ~path ()
  | D id | DU id -> Engine.depart engine ~req id
  | R budget -> Engine.rebalance engine ~req ~budget ()

(* [DU] ops expect the "conflict" refusal of an unknown depart. *)
let expect_wop ctx wop reply =
  match (wop, reply) with
  | DU _, Error ("conflict", _) -> ()
  | DU _, Ok _ -> Alcotest.failf "%s: unknown depart was accepted" ctx
  | _, reply -> ignore (expect_applied ctx reply)

let sharded_reference =
  lazy
    (let engine =
       Engine.create ~config:(mk_config ()) ~shards:2
         (Engine.General (line_instance 6))
     in
     List.iteri
       (fun i wop -> expect_wop "reference" wop (apply_wop engine i wop))
       sharded_workload;
     engine_fingerprint engine)

let crash_and_recover_sharded ~point ~nth ~snapshot_every =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let faults =
    match Faults.of_spec (Printf.sprintf "crash@%s:%d" point nth) with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let cfg = Session.durability ~snapshot_every ~faults dir in
  (* The engine is created with the DEFAULT partitioner so recovery —
     which recomputes the partition from the recovered graph — routes
     replayed ops exactly as the original did. *)
  (match
     Engine.create ~config:(mk_config ~durability:cfg ()) ~shards:2
       (Engine.General (line_instance 6))
   with
  | exception Faults.Crash _ -> ()
  | engine -> (
    try
      List.iteri
        (fun i wop ->
          expect_wop
            (Printf.sprintf "%s op %d" point i)
            wop
            (apply_wop engine i wop))
        sharded_workload
    with Faults.Crash _ -> ()));
  let clean = Session.durability ~snapshot_every dir in
  match Engine.recover clean with
  | Error msg -> Alcotest.failf "%s:%d: recover failed: %s" point nth msg
  | Ok recovered ->
    List.iteri
      (fun i wop ->
        expect_wop
          (Printf.sprintf "%s:%d replay op %d" point nth i)
          wop
          (apply_wop recovered i wop))
      sharded_workload;
    let got = engine_fingerprint recovered in
    Engine.close recovered;
    if got <> Lazy.force sharded_reference then
      Alcotest.failf "%s:%d: recovered state differs\nref: %s\ngot: %s" point
        nth
        (Lazy.force sharded_reference)
        got

let sharded_crash_matrix =
  [
    (* Early and late passes of every WAL point; the hit counter is
       global across the two shard journals and the coordinator's, so
       different [nth]s land the crash in different journals. *)
    ("wal.append.pre_write", 1, 0);
    ("wal.append.pre_write", 5, 0);
    ("wal.append.post_write", 2, 0);
    ("wal.append.post_write", 7, 0);
    ("wal.append.post_fsync", 3, 0);
    ("wal.append.post_fsync", 9, 0);
    (* Hits 1-2 are the two seed snapshots at construction; nth=3
       crashes the first mid-workload snapshot. *)
    ("snap.pre_rename", 3, 2);
    ("snap.post_rename", 3, 2);
  ]

let test_sharded_crash_matrix () =
  List.iter
    (fun (point, nth, snapshot_every) ->
      crash_and_recover_sharded ~point ~nth ~snapshot_every)
    sharded_crash_matrix

(* ------------------------------------------------------------------ *)
(* Versioned envelope                                                  *)
(* ------------------------------------------------------------------ *)

let test_envelope_versioning () =
  (match P.request_of_json (Json.Obj [ ("op", Json.String "ping") ]) with
  | Ok env -> Alcotest.(check int) "absent v is V1" 1 (P.version_to_int env.P.version)
  | Error e -> Alcotest.failf "bare ping refused: %s" e);
  (match
     P.request_of_json
       (Json.Obj [ ("op", Json.String "ping"); ("v", Json.Int 1) ])
   with
  | Ok env -> Alcotest.(check int) "explicit v=1" 1 (P.version_to_int env.P.version)
  | Error e -> Alcotest.failf "v=1 ping refused: %s" e);
  (match
     P.request_of_json
       (Json.Obj [ ("op", Json.String "ping"); ("v", Json.Int 2) ])
   with
  | Error e ->
    Alcotest.(check string) "future version named" "unsupported protocol version 2" e
  | Ok _ -> Alcotest.fail "v=2 must be refused");
  (match
     P.request_of_json
       (Json.Obj [ ("op", Json.String "ping"); ("v", Json.String "1") ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-integer v must be refused");
  (match
     P.request_of_json
       (Json.Obj
          [ ("op", Json.String "depart"); ("flow_id", Json.Int 3);
            ("shard_hint", Json.Int 2) ])
   with
  | Ok env -> Alcotest.(check (option int)) "shard_hint parsed" (Some 2) env.P.shard_hint
  | Error e -> Alcotest.failf "hinted depart refused: %s" e);
  (match
     P.request_of_json
       (Json.Obj
          [ ("op", Json.String "depart"); ("flow_id", Json.Int 3);
            ("shard_hint", Json.Int (-1)) ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative shard_hint must be refused");
  (* Round trip: the writer emits what the parser accepts. *)
  match
    P.request_of_json
      (P.request_to_json ~req:"r" ~shard_hint:1 (P.Depart 9))
  with
  | Ok env ->
    Alcotest.(check (option int)) "round-trip hint" (Some 1) env.P.shard_hint;
    Alcotest.(check bool) "round-trip op" true (env.P.request = P.Depart 9)
  | Error e -> Alcotest.failf "round trip failed: %s" e

(* ------------------------------------------------------------------ *)
(* Redirect following (client side)                                    *)
(* ------------------------------------------------------------------ *)

let temp_addr () =
  let path = Filename.temp_file "tdmd-engine" ".sock" in
  Sys.remove path;
  P.Unix_sock path

(* A one-frame fake replica: accepts connections and answers every
   frame with the given response. *)
let fake_replica addr respond =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (P.sockaddr addr);
  Unix.listen fd 4;
  let stop = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.accept fd with
          | exception Unix.Unix_error _ -> Atomic.set stop true
          | conn, _ ->
            (try
               let rec serve () =
                 match P.read_frame conn with
                 | Ok frame ->
                   P.write_frame conn (respond frame);
                   serve ()
                 | Error (`Eof | `Bad _) -> ()
               in
               serve ()
             with Unix.Unix_error _ -> ());
            (try Unix.close conn with Unix.Unix_error _ -> ())
        done)
      ()
  in
  fun () ->
    Atomic.set stop true;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Thread.join thread

let test_client_follows_redirect () =
  let real_addr = temp_addr () in
  let session = Session.create ~config:(mk_config ()) (line_instance 6) in
  let server = Server.start_session (Server.default_config real_addr) session in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Server.wait server)
  @@ fun () ->
  let fake_addr = temp_addr () in
  let stop_fake = fake_replica fake_addr (fun _ -> P.redirect real_addr) in
  Fun.protect ~finally:stop_fake @@ fun () ->
  let c = Client.connect fake_addr in
  (* One transparent hop: the reply comes from the real server. *)
  (match Client.rpc c P.Ping with
  | Ok resp ->
    Alcotest.(check bool) "redirected ping answered" true
      (Json.member "ok" resp = Some (Json.Bool true))
  | Error e -> Alcotest.failf "redirect not followed: %s" e);
  (* The new address sticks: a mutating op goes straight to the real
     server and is applied there. *)
  (match Client.rpc c (P.Arrive { id = 9; rate = 1; path = [ 0; 1; 2 ] }) with
  | Ok resp ->
    Alcotest.(check bool) "arrive after redirect" true
      (Json.member "ok" resp = Some (Json.Bool true))
  | Error e -> Alcotest.failf "post-redirect arrive failed: %s" e);
  Alcotest.(check int) "flow landed on the real server" 1
    (match List.assoc "flows" (Session.churn_stats session) with
    | Json.Int v -> v
    | _ -> -1);
  Client.close c

let test_client_redirect_loop_surfaces () =
  (* A replica that redirects to itself: the client follows once, then
     returns the second redirect verbatim instead of looping. *)
  let fake_addr = temp_addr () in
  let stop_fake = fake_replica fake_addr (fun _ -> P.redirect fake_addr) in
  Fun.protect ~finally:stop_fake @@ fun () ->
  let c = Client.connect fake_addr in
  (match Client.rpc c P.Ping with
  | Ok resp ->
    Alcotest.(check bool) "loop surfaced as redirect response" true
      (Json.member "code" resp = Some (Json.String "redirect"))
  | Error e -> Alcotest.failf "redirect loop: transport error %s" e);
  Client.close c

(* ------------------------------------------------------------------ *)
(* Client retry budget and retry_after_ms                              *)
(* ------------------------------------------------------------------ *)

let test_client_retry_budget_exhausted () =
  let addr = temp_addr () in
  let hits = Atomic.make 0 in
  let stop =
    fake_replica addr (fun _ ->
        Atomic.incr hits;
        P.error ~retry_after_ms:3 ~code:"unavailable" "shard restarting")
  in
  Fun.protect ~finally:stop @@ fun () ->
  let c = Client.connect ~seed:7 addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match
    Client.rpc_retry c
      ~policy:(Backoff.policy ~base:0.001 ~cap:0.002 ~max_attempts:2 ())
      P.Ping
  with
  | Ok _ -> Alcotest.fail "a permanently unavailable server must exhaust"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "flagged budget-exhausted (%s)" msg)
      true
      (Client.budget_exhausted msg);
    (* max_attempts 2 = the initial try plus two retries. *)
    Alcotest.(check int) "three attempts on the wire" 3 (Atomic.get hits)

let test_client_retry_honors_hint () =
  let addr = temp_addr () in
  let hits = Atomic.make 0 in
  let stop =
    fake_replica addr (fun _ ->
        if Atomic.fetch_and_add hits 1 < 2 then
          P.error ~retry_after_ms:25 ~code:"unavailable" "shard recovering"
        else P.ok [])
  in
  Fun.protect ~finally:stop @@ fun () ->
  let c = Client.connect ~seed:7 addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match
     Client.rpc_retry c
       ~policy:(Backoff.policy ~base:0.001 ~cap:1.0 ~max_attempts:5 ())
       P.Ping
   with
  | Ok resp ->
    Alcotest.(check bool) "answered once the shard is back" true
      (Json.member "ok" resp = Some (Json.Bool true))
  | Error e -> Alcotest.failf "retry through recovery failed: %s" e);
  Alcotest.(check int) "two refusals then success" 3 (Atomic.get hits);
  (* The two waits took the server's 25 ms hint, not the 1 ms base. *)
  Alcotest.(check bool) "server hint honored" true
    (Unix.gettimeofday () -. t0 >= 0.03)

(* ------------------------------------------------------------------ *)
(* Journal codec: cross-shard records                                  *)
(* ------------------------------------------------------------------ *)

let test_cross_record_codec () =
  let roundtrip op =
    match Journal.op_of_json (Journal.op_to_json op) with
    | Ok got -> Alcotest.(check bool) "roundtrip" true (got = op)
    | Error e -> Alcotest.failf "decode failed: %s" e
  in
  roundtrip
    (Journal.Cross_prepare
       {
         xid = "x-1";
         home = 3;
         op = Journal.Arrive { id = 7; rate = 2; path = [ 1; 2 ]; req = Some "x-1" };
       });
  roundtrip
    (Journal.Cross_prepare
       { xid = "x-2"; home = 0; op = Journal.Depart { flow_id = 7; req = None } });
  roundtrip (Journal.Cross_done { xid = "x-1" });
  (* Nested cross records are refused by the codec. *)
  match
    Journal.op_of_json
      (Journal.op_to_json
         (Journal.Cross_prepare
            { xid = "outer"; home = 0; op = Journal.Cross_done { xid = "inner" } }))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested cross record must be refused"

(* ------------------------------------------------------------------ *)
(* Supervision: degradation arc, breaker trip, 2PC abort, lost acks    *)
(* ------------------------------------------------------------------ *)

(* A 2-shard durable engine over the 6-line (shard 0 owns {0, 1},
   shard 1 owns {2..5}) with a fault plan and supervisor knobs chosen
   per test.  fsync Always + snapshot_every 0 keeps each shard's whole
   applied timeline in one journal. *)
let sup_create ~spec ~sup_cfg ?degraded_reads dir =
  let faults =
    match Faults.of_spec spec with Ok t -> t | Error m -> Alcotest.fail m
  in
  let cfg =
    Session.durability ~fsync:Journal.Always ~snapshot_every:0 ~faults dir
  in
  Engine.create ~supervisor:sup_cfg ?degraded_reads
    ~config:(mk_config ~durability:cfg ()) ~shards:2
    (Engine.General (line_instance 6))

(* Submit a shard-1-local arrive into an armed [die@shard.apply:1]: the
   leader dies with the batch un-applied, Supervisor.protect absorbs it,
   and the caller gets the supervised "unavailable" refusal. *)
let kill_shard1 engine =
  match Engine.arrive engine ~req:"kill" ~id:7 ~rate:1 ~path:[ 3; 4; 5 ] () with
  | Error ("unavailable", _) -> ()
  | r -> Alcotest.failf "killing op: expected unavailable, got %s"
           (reply_to_string r)

let coord_records dir =
  match Journal.replay (Filename.concat dir "coord.wal") with
  | Error msg -> Alcotest.failf "coord.wal replay: %s" msg
  | Ok (ops, torn) ->
    Alcotest.(check int) "coord.wal not torn" 0 torn;
    List.fold_left
      (fun (prepares, dones) op ->
        match op with
        | Journal.Cross_prepare _ -> (prepares + 1, dones)
        | Journal.Cross_done _ -> (prepares, dones + 1)
        | _ -> (prepares, dones))
      (0, 0) ops

(* The full arc: Serving -> failure -> Recovering (ops gated, healthy
   shards keep serving, live reads refused, static solves untouched) ->
   supervised restart -> Serving, with the gated ops' retries applying
   cleanly and the health counters telling the story. *)
let test_supervised_degradation_arc () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sup_cfg =
    Supervisor.config ~max_failures:3
      ~backoff:(Backoff.policy ~base:0.15 ~cap:0.3 ())
      ~retry_after_ms:7 ()
  in
  let engine = sup_create ~spec:"die@shard.apply:1" ~sup_cfg dir in
  Fun.protect ~finally:(fun () -> Engine.close engine) @@ fun () ->
  let sup = Engine.supervisor engine in
  Alcotest.(check int) "retry hint plumbed" 7 (Engine.retry_after_ms engine);
  kill_shard1 engine;
  (* report_failure fired synchronously before the refusal returned, and
     the recovery thread sleeps its 150 ms backoff base first — a
     deterministic Recovering window for the assertions below. *)
  Alcotest.(check bool) "shard 1 recovering" true
    (Supervisor.state sup 1 = Supervisor.Recovering);
  (match Engine.arrive engine ~req:"a2" ~id:8 ~rate:1 ~path:[ 4; 5 ] () with
  | Error ("unavailable", _) -> ()
  | r -> Alcotest.failf "op at recovering shard: %s" (reply_to_string r));
  ignore
    (expect_applied "healthy shard serves through the outage"
       (Engine.arrive engine ~req:"a0" ~id:9 ~rate:1 ~path:[ 0; 1 ] ()));
  (match Engine.read_status engine with
  | Engine.Read_unavailable _ -> ()
  | _ -> Alcotest.fail "live reads must be refused without degraded_reads");
  (match Engine.solve engine ~algo:"gtp" ~k:2 ~seed:1 ~target:P.Live with
  | Error ("unavailable", _) -> ()
  | r -> Alcotest.failf "live solve while down: %s" (reply_to_string r));
  ignore
    (expect_applied "static solve never health-gated"
       (Engine.solve engine ~algo:"gtp" ~k:2 ~seed:1 ~target:P.Static));
  Alcotest.(check bool) "supervised restart reaches Serving" true
    (Supervisor.await sup 1 Supervisor.Serving);
  (* The die fired before apply, so nothing was journaled: both gated
     ops' retries (same reqs) apply fresh rather than dedup. *)
  let retried =
    expect_applied "killed op retried"
      (Engine.arrive engine ~req:"kill" ~id:7 ~rate:1 ~path:[ 3; 4; 5 ] ())
  in
  Alcotest.(check bool) "fresh apply, not dedup" true
    (Json.member "dedup" retried = None);
  ignore
    (expect_applied "gated op retried"
       (Engine.arrive engine ~req:"a2" ~id:8 ~rate:1 ~path:[ 4; 5 ] ()));
  let h = (Supervisor.health sup).(1) in
  Alcotest.(check int) "one supervised restart" 1 h.Supervisor.restarts;
  Alcotest.(check int) "no breaker trip" 0 h.Supervisor.breaker_trips;
  Alcotest.(check bool) "healthy again" true
    (List.assoc "healthy" (Engine.health_fields engine) = Json.Bool true)

(* K consecutive failed recoveries trip the breaker: with every attempt
   at the sup.recover point dying, the shard lands Poisoned and stays
   there while the rest of the engine keeps serving. *)
let test_breaker_trips_to_poisoned () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sup_cfg =
    Supervisor.config ~max_failures:3
      ~backoff:(Backoff.policy ~base:0.001 ~cap:0.002 ()) ()
  in
  let engine =
    sup_create ~spec:"die@shard.apply:1;die@sup.recover:p=1;seed=3" ~sup_cfg dir
  in
  Fun.protect ~finally:(fun () -> Engine.close engine) @@ fun () ->
  let sup = Engine.supervisor engine in
  kill_shard1 engine;
  Alcotest.(check bool) "breaker trips to Poisoned" true
    (Supervisor.await sup 1 Supervisor.Poisoned);
  let h = (Supervisor.health sup).(1) in
  Alcotest.(check int) "one trip" 1 h.Supervisor.breaker_trips;
  Alcotest.(check int) "exactly K failed recoveries" 3 h.Supervisor.failures;
  Alcotest.(check int) "no successful restart" 0 h.Supervisor.restarts;
  (match Engine.arrive engine ~req:"after" ~id:8 ~rate:1 ~path:[ 4; 5 ] () with
  | Error ("unavailable", _) -> ()
  | r -> Alcotest.failf "op at poisoned shard: %s" (reply_to_string r));
  (* No new recovery episode: poisoned means an operator problem, not a
     crash loop. *)
  Alcotest.(check bool) "stays poisoned" true
    (Supervisor.state sup 1 = Supervisor.Poisoned);
  Alcotest.(check bool) "health says unhealthy" true
    (List.assoc "healthy" (Engine.health_fields engine) = Json.Bool false);
  ignore
    (expect_applied "healthy shard serves past the trip"
       (Engine.arrive engine ~req:"a0" ~id:9 ~rate:1 ~path:[ 0; 1 ] ()))

(* A cross-shard arrive whose non-home participant is down must abort
   before the coordinator writes anything: no orphan Cross_prepare for
   recovery to chew on, and the retry commits normally afterwards. *)
let test_cross_abort_participant_down () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sup_cfg =
    Supervisor.config ~backoff:(Backoff.policy ~base:0.3 ~cap:0.5 ()) ()
  in
  let engine = sup_create ~spec:"die@shard.apply:1" ~sup_cfg dir in
  Fun.protect ~finally:(fun () -> Engine.close engine) @@ fun () ->
  let sup = Engine.supervisor engine in
  kill_shard1 engine;
  Alcotest.(check bool) "shard 1 recovering" true
    (Supervisor.state sup 1 = Supervisor.Recovering);
  (* [0;1;2] is home shard 0 but spans shard 1. *)
  (match Engine.arrive engine ~req:"x" ~id:8 ~rate:1 ~path:[ 0; 1; 2 ] () with
  | Error ("unavailable", _) -> ()
  | r ->
    Alcotest.failf "cross arrive with participant down: %s"
      (reply_to_string r));
  let prepares, dones = coord_records dir in
  Alcotest.(check int) "no orphan prepare" 0 prepares;
  Alcotest.(check int) "no stray done" 0 dones;
  Alcotest.(check bool) "recovers" true
    (Supervisor.await sup 1 Supervisor.Serving);
  let retried =
    expect_applied "cross retry after recovery"
      (Engine.arrive engine ~req:"x" ~id:8 ~rate:1 ~path:[ 0; 1; 2 ] ())
  in
  Alcotest.(check bool) "tagged cross" true
    (Json.member "cross" retried = Some (Json.Bool true));
  (* The coordinator counts the retry's prepare and retires it; on disk
     a retired pair may already be compacted away, so the journal-level
     invariant is "no prepare without its done". *)
  (match List.assoc_opt "coord" (Engine.stats_fields engine) with
  | Some coord ->
    Alcotest.(check int) "prepared once" 1 (int_field "coord" "prepares" coord);
    Alcotest.(check int) "nothing in flight" 0
      (int_field "coord" "inflight" coord)
  | None -> Alcotest.fail "durable sharded stats must carry \"coord\"");
  let prepares, dones = coord_records dir in
  Alcotest.(check int) "every prepare retired" dones prepares

(* The router-reconcile regression the chaos soak caught: a depart that
   was applied and journaled but whose ack died with the leader must
   dedup on retry — reconcile keeping the departed flow's routing entry
   is what steers the retry back to shard 1's recovered dedup table
   instead of the shard-0 fallback (which would refuse it as
   "conflict"). *)
let test_depart_retry_after_lost_ack () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sup_cfg =
    Supervisor.config ~backoff:(Backoff.policy ~base:0.02 ~cap:0.05 ()) ()
  in
  let engine = sup_create ~spec:"die@shard.apply.post:2" ~sup_cfg dir in
  Fun.protect ~finally:(fun () -> Engine.close engine) @@ fun () ->
  let sup = Engine.supervisor engine in
  ignore
    (expect_applied "arrive"
       (Engine.arrive engine ~req:"a" ~id:10 ~rate:1 ~path:[ 3; 4; 5 ] ()));
  (* Second batch at the post-apply point: applied and durable, then the
     leader dies before acking — the canonical lost ack. *)
  (match Engine.depart engine ~req:"d" 10 with
  | Error ("unavailable", _) -> ()
  | r -> Alcotest.failf "lost-ack depart: %s" (reply_to_string r));
  Alcotest.(check bool) "recovers" true
    (Supervisor.await sup 1 Supervisor.Serving);
  let retried = expect_applied "depart retry" (Engine.depart engine ~req:"d" 10) in
  Alcotest.(check bool) "suppressed by the recovered dedup table" true
    (Json.member "dedup" retried = Some (Json.Bool true));
  (* Churned flows: the arrive and its depart cancelled out exactly
     once (the seed flow is static and not counted here). *)
  match List.assoc "flows" (Engine.churn_stats engine) with
  | Json.Int f -> Alcotest.(check int) "flow departed exactly once" 0 f
  | _ -> Alcotest.fail "missing flows in churn stats"

(* degraded_reads: live reads answer from the last applied state flagged
   "degraded": true while a shard is down, and drop the flag once the
   fleet is healthy again.  Writes stay gated regardless. *)
let test_degraded_reads () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sup_cfg =
    Supervisor.config ~backoff:(Backoff.policy ~base:0.2 ~cap:0.3 ()) ()
  in
  let engine =
    sup_create ~spec:"die@shard.apply:1" ~sup_cfg ~degraded_reads:true dir
  in
  Fun.protect ~finally:(fun () -> Engine.close engine) @@ fun () ->
  let sup = Engine.supervisor engine in
  kill_shard1 engine;
  Alcotest.(check bool) "read status degraded" true
    (Engine.read_status engine = Engine.Read_degraded);
  let live =
    expect_applied "degraded live solve"
      (Engine.solve engine ~algo:"gtp" ~k:2 ~seed:1 ~target:P.Live)
  in
  Alcotest.(check bool) "flagged degraded" true
    (Json.member "degraded" live = Some (Json.Bool true));
  (match Engine.arrive engine ~req:"w" ~id:8 ~rate:1 ~path:[ 4; 5 ] () with
  | Error ("unavailable", _) -> ()
  | r -> Alcotest.failf "writes must stay gated when degraded: %s"
           (reply_to_string r));
  Alcotest.(check bool) "recovers" true
    (Supervisor.await sup 1 Supervisor.Serving);
  let live =
    expect_applied "clean live solve"
      (Engine.solve engine ~algo:"gtp" ~k:2 ~seed:1 ~target:P.Live)
  in
  Alcotest.(check bool) "flag dropped once healthy" true
    (Json.member "degraded" live = None)

let suite =
  [
    Alcotest.test_case "config: defaults and deterministic construction" `Quick
      test_config_aliases;
    Alcotest.test_case "one shard: bit-identical to the session" `Quick
      test_one_shard_bit_identical;
    Alcotest.test_case "sharded: path-ownership routing" `Quick
      test_sharded_routing;
    Alcotest.test_case "sharded: group commit under concurrency" `Quick
      test_group_commit_concurrent;
    Alcotest.test_case "sharded: cross-shard two-phase replay" `Quick
      test_cross_shard_replay;
    Alcotest.test_case "sharded: crash matrix" `Quick test_sharded_crash_matrix;
    Alcotest.test_case "protocol: versioned envelope" `Quick
      test_envelope_versioning;
    Alcotest.test_case "client: follows one redirect" `Quick
      test_client_follows_redirect;
    Alcotest.test_case "client: redirect loop surfaces" `Quick
      test_client_redirect_loop_surfaces;
    Alcotest.test_case "client: retry budget exhausts" `Quick
      test_client_retry_budget_exhausted;
    Alcotest.test_case "client: honors retry_after_ms" `Quick
      test_client_retry_honors_hint;
    Alcotest.test_case "journal: cross record codec" `Quick
      test_cross_record_codec;
    Alcotest.test_case "supervised: degradation arc" `Quick
      test_supervised_degradation_arc;
    Alcotest.test_case "supervised: breaker trips to poisoned" `Quick
      test_breaker_trips_to_poisoned;
    Alcotest.test_case "supervised: 2PC aborts with participant down" `Quick
      test_cross_abort_participant_down;
    Alcotest.test_case "supervised: lost-ack depart retry dedups" `Quick
      test_depart_retry_after_lost_ack;
    Alcotest.test_case "supervised: degraded reads" `Quick test_degraded_reads;
  ]
