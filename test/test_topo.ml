open Tdmd_prelude
module G = Tdmd_graph.Digraph
module Rt = Tdmd_tree.Rooted_tree
module Tt = Tdmd_topo.Topo_tree
module Tg = Tdmd_topo.Topo_general
module Dc = Tdmd_topo.Datacenter

let test_path_star_balanced () =
  let p = Tt.path 5 in
  Alcotest.(check int) "path height" 4 (Rt.height p);
  Alcotest.(check (list int)) "path leaves" [ 4 ] (Rt.leaves p);
  let s = Tt.star 6 in
  Alcotest.(check int) "star height" 1 (Rt.height s);
  Alcotest.(check int) "star leaves" 5 (List.length (Rt.leaves s));
  let b = Tt.balanced ~arity:2 ~depth:3 in
  Alcotest.(check int) "perfect binary size" 15 (Rt.size b);
  Alcotest.(check int) "perfect binary leaves" 8 (List.length (Rt.leaves b));
  Alcotest.(check int) "height" 3 (Rt.height b)

let test_random_trees () =
  let rng = Rng.create 21 in
  for n = 1 to 40 do
    let t = Tt.random_attachment rng n in
    Alcotest.(check int) "size" n (Rt.size t);
    let tb = Tt.random_binary rng n in
    Alcotest.(check int) "binary size" n (Rt.size tb);
    for v = 0 to n - 1 do
      Alcotest.(check bool) "binary arity" true (List.length (Rt.children tb v) <= 2)
    done
  done

let test_tree_resize () =
  let rng = Rng.create 22 in
  let t = Tt.random_attachment rng 20 in
  let grown = Tt.resize rng t 35 in
  Alcotest.(check int) "grown" 35 (Rt.size grown);
  let shrunk = Tt.resize rng t 8 in
  Alcotest.(check int) "shrunk" 8 (Rt.size shrunk);
  Alcotest.(check int) "same" 20 (Rt.size (Tt.resize rng t 20))

let test_erdos_renyi_connected () =
  let rng = Rng.create 23 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 40 in
    let g = Tg.erdos_renyi rng n ~p:0.1 in
    Alcotest.(check bool) "connected" true (G.is_connected_undirected g);
    Alcotest.(check int) "size" n (G.vertex_count g)
  done

let test_waxman_connected () =
  let rng = Rng.create 24 in
  for _ = 1 to 10 do
    let g = Tg.waxman rng 25 ~alpha:0.4 ~beta:0.2 in
    Alcotest.(check bool) "connected" true (G.is_connected_undirected g)
  done

let test_barabasi_albert () =
  let rng = Rng.create 25 in
  let g = Tg.barabasi_albert rng 40 ~m:2 in
  Alcotest.(check bool) "connected" true (G.is_connected_undirected g);
  (* Each of the 37 non-seed vertices adds 2 undirected links. *)
  Alcotest.(check bool) "enough links" true (G.edge_count g >= 2 * (2 * 37))

let test_general_resize () =
  let rng = Rng.create 26 in
  let g = Tg.erdos_renyi rng 20 ~p:0.2 in
  let grown = Tg.resize rng g 30 in
  Alcotest.(check int) "grown" 30 (G.vertex_count grown);
  Alcotest.(check bool) "grown connected" true (G.is_connected_undirected grown);
  let shrunk = Tg.resize rng g 12 in
  Alcotest.(check int) "shrunk" 12 (G.vertex_count shrunk);
  Alcotest.(check bool) "shrunk connected" true (G.is_connected_undirected shrunk)

let test_spanning_tree () =
  let rng = Rng.create 27 in
  let g = Tg.erdos_renyi rng 25 ~p:0.25 in
  let t = Tg.spanning_tree rng g ~root:3 in
  Alcotest.(check int) "size" 25 (Rt.size t);
  Alcotest.(check int) "root" 3 (Rt.root t);
  (* Every tree edge exists in the graph (in some direction). *)
  for v = 0 to 24 do
    let p = Rt.parent t v in
    if p >= 0 then
      Alcotest.(check bool) "edge exists" true (G.mem_edge g v p || G.mem_edge g p v)
  done

let test_fat_tree () =
  let ft = Dc.fat_tree 4 in
  Alcotest.(check int) "core" 4 (List.length ft.Dc.core);
  Alcotest.(check int) "aggregation" 8 (List.length ft.Dc.aggregation);
  Alcotest.(check int) "edge" 8 (List.length ft.Dc.edge);
  Alcotest.(check int) "hosts" 16 (List.length ft.Dc.hosts);
  Alcotest.(check int) "vertices" 36 (G.vertex_count ft.Dc.graph);
  Alcotest.(check bool) "connected" true (G.is_connected_undirected ft.Dc.graph);
  (* k=4 fat-tree has 48 undirected links = 96 arcs. *)
  Alcotest.(check int) "arcs" 96 (G.edge_count ft.Dc.graph);
  List.iter
    (fun h -> Alcotest.(check int) "host degree 1" 1 (G.out_degree ft.Dc.graph h))
    ft.Dc.hosts;
  Alcotest.check_raises "odd k" (Invalid_argument "Datacenter.fat_tree: k must be even, >= 2")
    (fun () -> ignore (Dc.fat_tree 3))

let test_bcube () =
  let b = Dc.bcube ~n:4 ~level:1 in
  Alcotest.(check int) "servers" 16 (List.length b.Dc.servers);
  Alcotest.(check int) "switches" 8 (List.length b.Dc.switches);
  Alcotest.(check bool) "connected" true (G.is_connected_undirected b.Dc.graph);
  (* Each server has level+1 = 2 switch links. *)
  List.iter
    (fun s -> Alcotest.(check int) "server degree" 2 (G.out_degree b.Dc.graph s))
    b.Dc.servers;
  (* Each switch has n = 4 server links. *)
  List.iter
    (fun sw -> Alcotest.(check int) "switch degree" 4 (G.out_degree b.Dc.graph sw))
    b.Dc.switches

let test_ark () =
  let rng = Rng.create 28 in
  let a = Tdmd_topo.Ark.generate rng ~n:44 in
  Alcotest.(check int) "size" 44 (G.vertex_count a.Tdmd_topo.Ark.graph);
  Alcotest.(check bool) "connected" true
    (G.is_connected_undirected a.Tdmd_topo.Ark.graph);
  Alcotest.(check bool) "has hubs" true (a.Tdmd_topo.Ark.hubs <> []);
  Alcotest.(check int) "hubs + monitors = all" 44
    (List.length a.Tdmd_topo.Ark.hubs + List.length a.Tdmd_topo.Ark.monitors);
  let t = Tdmd_topo.Ark.tree_of rng a in
  Alcotest.(check int) "tree size" 44 (Rt.size t);
  Alcotest.(check bool) "tree rooted at hub" true
    (List.mem (Rt.root t) a.Tdmd_topo.Ark.hubs);
  let sub, dests = Tdmd_topo.Ark.general_of rng a ~size:20 in
  Alcotest.(check int) "subgraph size" 20 (G.vertex_count sub);
  Alcotest.(check bool) "subgraph connected" true (G.is_connected_undirected sub);
  Alcotest.(check bool) "has destinations" true (dests <> []);
  List.iter
    (fun d -> Alcotest.(check bool) "dest in range" true (d >= 0 && d < 20))
    dests

let prop_generators_connected =
  QCheck.Test.make ~name:"every generator yields a connected topology" ~count:60
    QCheck.(pair (int_range 2 50) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      G.is_connected_undirected (Tg.erdos_renyi rng n ~p:0.05)
      && G.is_connected_undirected
           (Tdmd_topo.Ark.generate rng ~n).Tdmd_topo.Ark.graph
      && Rt.size (Tt.random_attachment rng n) = n)

let test_random_regular () =
  let rng = Rng.create 29 in
  let g = Tdmd_topo.Random_regular.generate rng ~n:16 ~degree:3 in
  Alcotest.(check bool) "connected" true (G.is_connected_undirected g);
  for v = 0 to 15 do
    Alcotest.(check int) "regular degree" 3 (G.out_degree g v)
  done;
  Alcotest.check_raises "odd total stubs"
    (Invalid_argument "Random_regular.generate: n * degree must be even") (fun () ->
      ignore (Tdmd_topo.Random_regular.generate rng ~n:5 ~degree:3));
  Alcotest.check_raises "degree too large"
    (Invalid_argument "Random_regular.generate: need 1 <= degree < n") (fun () ->
      ignore (Tdmd_topo.Random_regular.generate rng ~n:4 ~degree:4))

let test_topo_stats () =
  (* A 4-cycle: every degree 2, diameter 2, mean distance 4/3. *)
  let g = G.create 4 in
  G.add_undirected g 0 1;
  G.add_undirected g 1 2;
  G.add_undirected g 2 3;
  G.add_undirected g 3 0;
  let s = Tdmd_topo.Topo_stats.compute g in
  Alcotest.(check int) "links" 4 s.Tdmd_topo.Topo_stats.undirected_links;
  Alcotest.(check int) "min degree" 2 s.Tdmd_topo.Topo_stats.min_degree;
  Alcotest.(check int) "max degree" 2 s.Tdmd_topo.Topo_stats.max_degree;
  Alcotest.(check (float 1e-9)) "mean degree" 2.0 s.Tdmd_topo.Topo_stats.mean_degree;
  Alcotest.(check (float 1e-9)) "diameter" 2.0 s.Tdmd_topo.Topo_stats.diameter;
  Alcotest.(check (float 1e-9)) "mean distance" (4.0 /. 3.0)
    s.Tdmd_topo.Topo_stats.mean_distance;
  Alcotest.(check (list (pair int int))) "degree histogram" [ (2, 4) ]
    s.Tdmd_topo.Topo_stats.degree_histogram;
  Alcotest.(check bool) "renders" true
    (String.length (Tdmd_topo.Topo_stats.render s) > 0)

(* ------------------------------------------------------------------ *)
(* Partition: hub-rooted regions for the sharded serve engine          *)
(* ------------------------------------------------------------------ *)

module Pt = Tdmd_topo.Partition

let random_path rng n =
  let len = 1 + Rng.int rng 8 in
  Array.init len (fun _ -> Rng.int rng n)

let prop_partition_total =
  QCheck.Test.make ~name:"partition: every vertex gets exactly one shard"
    ~count:80
    QCheck.(triple (int_range 2 60) (int_range 1 6) (int_bound 100000))
    (fun (n, shards, seed) ->
      let rng = Rng.create seed in
      let g = Tg.erdos_renyi rng n ~p:0.1 in
      let p = Pt.make g ~shards in
      Pt.shards p = shards
      && Pt.vertex_count p = n
      && List.for_all
           (fun v ->
             let s = Pt.owner p v in
             s >= 0 && s < shards)
           (List.init n Fun.id)
      && Array.fold_left ( + ) 0 (Pt.counts p) = n)

let prop_partition_deterministic =
  QCheck.Test.make
    ~name:"partition: a pure function of the graph (recovery recomputes it)"
    ~count:60
    QCheck.(triple (int_range 2 60) (int_range 1 6) (int_bound 100000))
    (fun (n, shards, seed) ->
      let rng = Rng.create seed in
      let g = Tg.erdos_renyi rng n ~p:0.1 in
      let a = Pt.make g ~shards and b = Pt.make g ~shards in
      List.for_all (fun v -> Pt.owner a v = Pt.owner b v) (List.init n Fun.id))

let prop_partition_one_shard_never_cross =
  QCheck.Test.make ~name:"partition: one shard owns every path" ~count:60
    QCheck.(pair (int_range 2 40) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Tg.erdos_renyi rng n ~p:0.1 in
      let p = Pt.make g ~shards:1 in
      List.for_all
        (fun _ -> Pt.ownership p (random_path rng n) = Pt.Owned 0)
        (List.init 20 Fun.id))

let prop_partition_home_majority =
  QCheck.Test.make
    ~name:"partition: cross home owns the most path vertices, ties low"
    ~count:80
    QCheck.(triple (int_range 4 60) (int_range 2 6) (int_bound 100000))
    (fun (n, shards, seed) ->
      let rng = Rng.create seed in
      let g = Tg.erdos_renyi rng n ~p:0.1 in
      let p = Pt.make g ~shards in
      List.for_all
        (fun _ ->
          let path = random_path rng n in
          let counts = Array.make shards 0 in
          Array.iter
            (fun v ->
              let s = Pt.owner p v in
              counts.(s) <- counts.(s) + 1)
            path;
          let expected_home = ref 0 in
          for s = 1 to shards - 1 do
            if counts.(s) > counts.(!expected_home) then expected_home := s
          done;
          let owners =
            List.sort_uniq compare
              (Array.to_list (Array.map (Pt.owner p) path))
          in
          match Pt.ownership p path with
          | Pt.Owned s -> owners = [ s ]
          | Pt.Cross { home; spans } ->
            home = !expected_home && spans = owners && List.length owners > 1)
        (List.init 20 Fun.id))

let test_partition_edges () =
  let g = G.create 6 in
  for v = 0 to 4 do
    G.add_undirected g v (v + 1)
  done;
  (* Explicit seeds pin the regions: BFS fronts from 1 and 4 meet in
     the middle of the line. *)
  let p = Pt.make ~seeds:[ 1; 4 ] g ~shards:2 in
  Alcotest.(check (list int)) "line splits contiguously"
    [ 0; 0; 0; 1; 1; 1 ]
    (List.map (Pt.owner p) [ 0; 1; 2; 3; 4; 5 ]);
  (match Pt.ownership p [| 2; 3 |] with
  | Pt.Cross { home = 0; spans = [ 0; 1 ] } -> ()
  | _ -> Alcotest.fail "straddling path must be cross with home 0");
  let t = Pt.trivial ~n:4 in
  Alcotest.(check int) "trivial is one shard" 1 (Pt.shards t);
  Alcotest.check_raises "empty path refused"
    (Invalid_argument "Partition.ownership: empty path") (fun () ->
      ignore (Pt.ownership p [||]));
  (* Ark partitions seed at the hubs; shard count defaults to the hub
     count. *)
  let ark = Tdmd_topo.Ark.generate (Rng.create 7) ~n:40 in
  let pa = Pt.of_ark ark in
  Alcotest.(check int) "one shard per hub"
    (List.length ark.Tdmd_topo.Ark.hubs)
    (Pt.shards pa);
  List.iteri
    (fun i h -> Alcotest.(check int) "hub owns its own region" i (Pt.owner pa h))
    ark.Tdmd_topo.Ark.hubs

let suite =
  [
    Alcotest.test_case "general: random regular (jellyfish)" `Quick
      test_random_regular;
    Alcotest.test_case "stats: 4-cycle" `Quick test_topo_stats;
    Alcotest.test_case "trees: path/star/balanced" `Quick test_path_star_balanced;
    Alcotest.test_case "trees: random generators" `Quick test_random_trees;
    Alcotest.test_case "trees: resize" `Quick test_tree_resize;
    Alcotest.test_case "general: erdos-renyi" `Quick test_erdos_renyi_connected;
    Alcotest.test_case "general: waxman" `Quick test_waxman_connected;
    Alcotest.test_case "general: barabasi-albert" `Quick test_barabasi_albert;
    Alcotest.test_case "general: resize" `Quick test_general_resize;
    Alcotest.test_case "general: spanning tree" `Quick test_spanning_tree;
    Alcotest.test_case "datacenter: fat-tree" `Quick test_fat_tree;
    Alcotest.test_case "datacenter: bcube" `Quick test_bcube;
    Alcotest.test_case "ark: generator, tree, subgraph" `Quick test_ark;
    QCheck_alcotest.to_alcotest prop_generators_connected;
    Alcotest.test_case "partition: line, trivial, ark" `Quick
      test_partition_edges;
    QCheck_alcotest.to_alcotest prop_partition_total;
    QCheck_alcotest.to_alcotest prop_partition_deterministic;
    QCheck_alcotest.to_alcotest prop_partition_one_shard_never_cross;
    QCheck_alcotest.to_alcotest prop_partition_home_majority;
  ]
