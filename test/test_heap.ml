open Tdmd_heap

let icmp = (compare : int -> int -> int)

let test_binary_heap_sorts () =
  let h = Binary_heap.of_list ~cmp:icmp [ 5; 3; 8; 1; 9; 2; 7 ] in
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 7; 8; 9 ]
    (Binary_heap.to_sorted_list h)

let test_binary_heap_push_pop () =
  let h = Binary_heap.create ~cmp:icmp () in
  Alcotest.(check bool) "empty" true (Binary_heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Binary_heap.peek h);
  Binary_heap.push h 4;
  Binary_heap.push h 2;
  Binary_heap.push h 6;
  Alcotest.(check (option int)) "peek min" (Some 2) (Binary_heap.peek h);
  Alcotest.(check int) "length" 3 (Binary_heap.length h);
  Alcotest.(check (option int)) "pop" (Some 2) (Binary_heap.pop h);
  Alcotest.(check (option int)) "pop" (Some 4) (Binary_heap.pop h);
  Binary_heap.push h 1;
  Alcotest.(check (option int)) "pop after interleave" (Some 1) (Binary_heap.pop h);
  Alcotest.(check (option int)) "pop last" (Some 6) (Binary_heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Binary_heap.pop h)

let test_binary_heap_duplicates () =
  let h = Binary_heap.of_list ~cmp:icmp [ 3; 3; 3; 1; 1 ] in
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 3; 3; 3 ]
    (Binary_heap.to_sorted_list h)

let test_indexed_heap_basic () =
  let h = Indexed_heap.create 10 in
  Indexed_heap.push h 3 5.0;
  Indexed_heap.push h 7 2.0;
  Indexed_heap.push h 1 9.0;
  Alcotest.(check bool) "mem" true (Indexed_heap.mem h 7);
  Alcotest.(check bool) "not mem" false (Indexed_heap.mem h 2);
  Alcotest.(check (option (pair int (float 0.0)))) "peek" (Some (7, 2.0))
    (Indexed_heap.peek h);
  Indexed_heap.decrease h 1 1.0;
  Alcotest.(check (option (pair int (float 0.0)))) "after decrease" (Some (1, 1.0))
    (Indexed_heap.peek h);
  Indexed_heap.remove h 1;
  Alcotest.(check (option (pair int (float 0.0)))) "after remove" (Some (7, 2.0))
    (Indexed_heap.peek h);
  Alcotest.(check int) "length" 2 (Indexed_heap.length h)

let test_indexed_heap_update () =
  let h = Indexed_heap.create 5 in
  Indexed_heap.update h 0 3.0;
  Indexed_heap.update h 1 1.0;
  Indexed_heap.update h 0 0.5;
  Alcotest.(check (option (pair int (float 0.0)))) "update down" (Some (0, 0.5))
    (Indexed_heap.peek h);
  Indexed_heap.update h 0 5.0;
  Alcotest.(check (option (pair int (float 0.0)))) "update up" (Some (1, 1.0))
    (Indexed_heap.peek h)

let test_indexed_heap_rejects () =
  let h = Indexed_heap.create 3 in
  Indexed_heap.push h 0 1.0;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Indexed_heap.push: duplicate key") (fun () ->
      Indexed_heap.push h 0 2.0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Indexed_heap.push: key out of range") (fun () ->
      Indexed_heap.push h 9 2.0);
  Alcotest.check_raises "bad decrease"
    (Invalid_argument "Indexed_heap.decrease: larger priority") (fun () ->
      Indexed_heap.decrease h 0 5.0)

let test_pairing_heap_basic () =
  let h = Pairing_heap.of_list ~cmp:icmp [ 4; 1; 3 ] in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 4 ] (Pairing_heap.to_sorted_list h);
  let h2 =
    Pairing_heap.merge
      (Pairing_heap.of_list ~cmp:icmp [ 5; 2 ])
      (Pairing_heap.of_list ~cmp:icmp [ 4; 1 ])
  in
  Alcotest.(check (list int)) "merged" [ 1; 2; 4; 5 ] (Pairing_heap.to_sorted_list h2);
  Alcotest.(check int) "length persists" 4 (Pairing_heap.length h2)

(* Property: both heaps drain any integer multiset in sorted order. *)
let prop_heaps_sort =
  QCheck.Test.make ~name:"binary & pairing heaps sort like List.sort" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let expected = List.sort compare xs in
      let bh = Tdmd_heap.Binary_heap.of_list ~cmp:icmp xs in
      let ph = Tdmd_heap.Pairing_heap.of_list ~cmp:icmp xs in
      Tdmd_heap.Binary_heap.to_sorted_list bh = expected
      && Tdmd_heap.Pairing_heap.to_sorted_list ph = expected)

(* Property: the binary heap is sound for boxed floats — the former
   [Obj.magic 0] dummy slot relied on every element sharing the dummy's
   runtime representation. *)
let prop_binary_heap_boxed_floats =
  QCheck.Test.make ~name:"binary heap drains boxed floats sorted" ~count:200
    QCheck.(list small_signed_int)
    (fun xs ->
      let xs = List.map (fun i -> float_of_int i *. 0.5) xs in
      let h = Binary_heap.create ~cmp:Float.compare () in
      List.iter (Binary_heap.push h) xs;
      Binary_heap.to_sorted_list h = List.sort Float.compare xs)

(* Same for tuples mixing a float key with payload (HAT's heap shape),
   interleaving pushes and pops. *)
let prop_binary_heap_tuples =
  QCheck.Test.make ~name:"binary heap drains float-keyed tuples sorted"
    ~count:200
    QCheck.(list (pair small_signed_int small_int))
    (fun xs ->
      let xs = List.map (fun (a, b) -> (float_of_int a *. 0.25, b)) xs in
      let h = Binary_heap.create ~capacity:1 ~cmp:compare () in
      (* Interleave: push two, pop one — exercises slot clearing and
         growth from a minimal capacity. *)
      let popped = ref [] in
      List.iter
        (fun x ->
          Binary_heap.push h x;
          if Binary_heap.length h mod 2 = 0 then
            match Binary_heap.pop h with
            | Some y -> popped := y :: !popped
            | None -> ())
        xs;
      let drained = List.rev !popped @ Binary_heap.to_sorted_list h in
      List.sort compare drained = List.sort compare xs)

(* Property: indexed heap pops keys in priority order after a random mix
   of pushes and priority updates. *)
let prop_indexed_heap =
  QCheck.Test.make ~name:"indexed heap respects final priorities" ~count:200
    QCheck.(list (pair (int_bound 19) (map (fun x -> Float.abs x) float)))
    (fun ops ->
      let h = Indexed_heap.create 20 in
      let final = Hashtbl.create 16 in
      List.iter
        (fun (key, prio) ->
          Indexed_heap.update h key prio;
          Hashtbl.replace final key prio)
        ops;
      let rec drain acc =
        match Indexed_heap.pop h with
        | None -> List.rev acc
        | Some (k, p) -> drain ((k, p) :: acc)
      in
      let popped = drain [] in
      let priorities = List.map snd popped in
      let sorted = List.sort compare priorities in
      priorities = sorted
      && List.for_all (fun (k, p) -> Hashtbl.find final k = p) popped
      && List.length popped = Hashtbl.length final)

let suite =
  [
    Alcotest.test_case "binary heap: heapify + drain" `Quick test_binary_heap_sorts;
    Alcotest.test_case "binary heap: push/pop interleave" `Quick
      test_binary_heap_push_pop;
    Alcotest.test_case "binary heap: duplicates" `Quick test_binary_heap_duplicates;
    Alcotest.test_case "indexed heap: basics" `Quick test_indexed_heap_basic;
    Alcotest.test_case "indexed heap: update both ways" `Quick
      test_indexed_heap_update;
    Alcotest.test_case "indexed heap: error cases" `Quick test_indexed_heap_rejects;
    Alcotest.test_case "pairing heap: basics + merge" `Quick test_pairing_heap_basic;
    QCheck_alcotest.to_alcotest prop_heaps_sort;
    QCheck_alcotest.to_alcotest prop_binary_heap_boxed_floats;
    QCheck_alcotest.to_alcotest prop_binary_heap_tuples;
    QCheck_alcotest.to_alcotest prop_indexed_heap;
  ]
