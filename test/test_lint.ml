(* tdmd-lint correctness: every rule fires on its must-flag fixture at
   the exact file/line and stays silent on its must-pass fixture; the
   suppression and baseline mechanisms behave as documented. *)

module L = Lint_core

let fixture name = Filename.concat "lint_fixtures" name

let hits file =
  List.map (fun d -> (d.L.rule, d.L.line)) (L.lint_file (fixture file))

let check_hits name file expected =
  Alcotest.(check (list (pair string int)))
    (name ^ ": exact rule/line hits") expected (hits file)

(* ------------------------------------------------------------------ *)
(* One must-flag and one must-pass fixture per rule                     *)
(* ------------------------------------------------------------------ *)

let test_obj_magic () =
  check_hits "obj-magic" "flag_obj_magic.ml" [ ("obj-magic", 3) ];
  check_hits "obj-magic pass" "pass_obj_magic.ml" []

let test_bare_unix_io () =
  check_hits "bare-unix-io" "flag_bare_unix_io.ml"
    [ ("bare-unix-io", 3); ("bare-unix-io", 4); ("bare-unix-io", 5) ];
  check_hits "bare-unix-io pass" "pass_bare_unix_io.ml" []

let test_naked_mutex_lock () =
  check_hits "naked-mutex-lock" "flag_naked_mutex_lock.ml"
    [ ("naked-mutex-lock", 4) ];
  check_hits "naked-mutex-lock pass" "pass_naked_mutex_lock.ml" []

let test_catch_all () =
  check_hits "catch-all" "flag_catch_all.ml"
    [ ("catch-all", 3); ("catch-all", 7) ];
  check_hits "catch-all pass" "pass_catch_all.ml" []

(* The supervisor hosts the project's single sanctioned catch-and-restart
   site: the aliased wildcard [_ as e] is still a catch-all to the rule,
   and the real site passes only because it carries a reasoned
   suppression (Supervisor.protect re-raises Faults.Crash first). *)
let test_catch_all_supervisor () =
  check_hits "catch-all supervisor" "flag_catch_all_supervisor.ml"
    [ ("catch-all", 6) ];
  check_hits "catch-all supervisor pass" "pass_catch_all_supervisor.ml" []

let test_no_direct_io () =
  check_hits "no-direct-io" "flag_no_direct_io.ml"
    [ ("no-direct-io", 3); ("no-direct-io", 6) ];
  check_hits "no-direct-io pass" "pass_no_direct_io.ml" []

let test_poly_compare_record () =
  check_hits "poly-compare-record" "flag_poly_compare_record.ml"
    [
      ("poly-compare-record", 3);
      ("poly-compare-record", 6);
      ("poly-compare-record", 9);
    ];
  check_hits "poly-compare-record pass" "pass_poly_compare_record.ml" []

let test_float_equal () =
  check_hits "float-equal" "flag_float_equal.ml"
    [ ("float-equal", 3); ("float-equal", 6) ];
  check_hits "float-equal pass" "pass_float_equal.ml" []

(* Interfaces are parsed too: expressions only occur inside attribute
   payloads there, but a float comparison is wrong wherever it hides. *)
let test_mli_fixtures () =
  check_hits "float-equal in mli payload" "flag_mli_float_equal.mli"
    [ ("float-equal", 4) ];
  check_hits "clean mli" "pass_mli.mli" []

(* ------------------------------------------------------------------ *)
(* Suppression comments                                                 *)
(* ------------------------------------------------------------------ *)

let lint_src src =
  List.map (fun d -> (d.L.rule, d.L.line)) (L.lint_source ~file:"inline.ml" src)

let test_suppression_same_line () =
  Alcotest.(check (list (pair string int)))
    "trailing comment suppresses its own line" []
    (lint_src
       "let f x = x = 0.0 (* tdmd-lint: allow float-equal \xe2\x80\x94 exact \
        sentinel *)\n")

let test_suppression_previous_line () =
  Alcotest.(check (list (pair string int)))
    "comment-only line suppresses the next line" []
    (lint_src
       "(* tdmd-lint: allow float-equal \xe2\x80\x94 exact sentinel *)\n\
        let f x = x = 0.0\n")

let test_suppression_does_not_leak () =
  Alcotest.(check (list (pair string int)))
    "suppression covers at most the next line"
    [ ("float-equal", 3) ]
    (lint_src
       "(* tdmd-lint: allow float-equal \xe2\x80\x94 exact sentinel *)\n\
        let f x = x\n\
        let g x = x = 0.0\n")

let test_suppression_wrong_rule () =
  Alcotest.(check (list (pair string int)))
    "suppressing a different rule does not help"
    [ ("float-equal", 1) ]
    (lint_src
       "let f x = x = 0.0 (* tdmd-lint: allow obj-magic \xe2\x80\x94 wrong \
        rule *)\n")

let test_suppression_needs_reason () =
  Alcotest.(check (list (pair string int)))
    "a reason is mandatory"
    [ ("float-equal", 1); ("suppression", 1) ]
    (lint_src "let f x = x = 0.0 (* tdmd-lint: allow float-equal *)\n")

let test_suppression_unknown_rule () =
  Alcotest.(check (list (pair string int)))
    "unknown rule names are reported"
    [ ("suppression", 1) ]
    (lint_src
       "let f x = x (* tdmd-lint: allow no-such-rule \xe2\x80\x94 whatever *)\n")

let test_suppression_multi_rule () =
  Alcotest.(check (list (pair string int)))
    "one comment may allow several rules" []
    (lint_src
       "(* tdmd-lint: allow float-equal, obj-magic \xe2\x80\x94 fixture *)\n\
        let f (x : float) : int = if x = 0.0 then Obj.magic x else 0\n")

(* ------------------------------------------------------------------ *)
(* Path policy, baseline, parse errors, JSON                            *)
(* ------------------------------------------------------------------ *)

let has_rule r rules = List.mem r rules

let test_rules_for_path () =
  let check name path rule expected =
    Alcotest.(check bool) name expected (has_rule rule (L.rules_for_path path))
  in
  check "protocol.ml may use bare Unix I/O" "lib/server/protocol.ml"
    L.Bare_unix_io false;
  check "everyone else may not" "lib/server/journal.ml" L.Bare_unix_io true;
  check "locked.ml may lock" "lib/prelude/locked.ml" L.Naked_mutex_lock false;
  check "everyone else must use with_lock" "lib/server/server.ml"
    L.Naked_mutex_lock true;
  check "no direct I/O inside lib/" "lib/sim/report.ml" L.Direct_io true;
  check "bin/ owns its stdout" "bin/tdmd_cli.ml" L.Direct_io false;
  check "catch-all enforced in bench/" "bench/main.ml" L.Catch_all true;
  check "tests may catch broadly" "test/test_server.ml" L.Catch_all false;
  check "poly compare watched in lib/core" "lib/core/gtp.ml"
    L.Poly_compare_record true;
  check "but not elsewhere" "lib/server/session.ml" L.Poly_compare_record
    false;
  check "obj-magic is global" "test/test_heap.ml" L.Obj_magic true;
  check "an mli inherits its implementation's policy"
    "lib/server/protocol.mli" L.Bare_unix_io false;
  check "other interfaces get the default policy" "lib/server/journal.mli"
    L.Bare_unix_io true

let test_baseline_roundtrip () =
  let d =
    { L.file = "lib/x.ml"; line = 7; rule = "obj-magic"; message = "m" }
  in
  Alcotest.(check string)
    "baseline key format" "lib/x.ml:7:obj-magic" (L.baseline_key d);
  let tmp = Filename.temp_file "tdmd_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "# comment\n\nlib/x.ml:7:obj-magic\n";
      close_out oc;
      let table = L.load_baseline tmp in
      Alcotest.(check bool)
        "entry present" true
        (Hashtbl.mem table (L.baseline_key d));
      Alcotest.(check bool)
        "comments are not entries" false (Hashtbl.mem table "# comment"))

let test_parse_error () =
  match L.lint_source ~file:"broken.ml" "let let let = = =\n" with
  | [ { L.rule = "parse-error"; _ } ] -> ()
  | other ->
    Alcotest.failf "expected one parse-error, got %d diagnostics"
      (List.length other)

let test_json_report () =
  let ds =
    [ { L.file = "a.ml"; line = 1; rule = "obj-magic"; message = "x \"y\"" } ]
  in
  let json = L.diagnostics_to_json ds in
  Alcotest.(check bool)
    "escapes quotes" true
    (let sub = "\"message\":\"x \\\"y\\\"\"" in
     let n = String.length json and m = String.length sub in
     let rec go i =
       i + m <= n && (String.sub json i m = sub || go (i + 1))
     in
     go 0);
  Alcotest.(check bool)
    "carries the count" true
    (let sub = "\"count\":1" in
     let n = String.length json and m = String.length sub in
     let rec go i =
       i + m <= n && (String.sub json i m = sub || go (i + 1))
     in
     go 0)

let suite =
  [
    Alcotest.test_case "obj-magic fixtures" `Quick test_obj_magic;
    Alcotest.test_case "bare-unix-io fixtures" `Quick test_bare_unix_io;
    Alcotest.test_case "naked-mutex-lock fixtures" `Quick
      test_naked_mutex_lock;
    Alcotest.test_case "catch-all fixtures" `Quick test_catch_all;
    Alcotest.test_case "catch-all supervisor fixtures" `Quick
      test_catch_all_supervisor;
    Alcotest.test_case "no-direct-io fixtures" `Quick test_no_direct_io;
    Alcotest.test_case "poly-compare-record fixtures" `Quick
      test_poly_compare_record;
    Alcotest.test_case "float-equal fixtures" `Quick test_float_equal;
    Alcotest.test_case "mli fixtures" `Quick test_mli_fixtures;
    Alcotest.test_case "suppression: same line" `Quick
      test_suppression_same_line;
    Alcotest.test_case "suppression: previous line" `Quick
      test_suppression_previous_line;
    Alcotest.test_case "suppression: no leak" `Quick
      test_suppression_does_not_leak;
    Alcotest.test_case "suppression: wrong rule" `Quick
      test_suppression_wrong_rule;
    Alcotest.test_case "suppression: needs reason" `Quick
      test_suppression_needs_reason;
    Alcotest.test_case "suppression: unknown rule" `Quick
      test_suppression_unknown_rule;
    Alcotest.test_case "suppression: multi rule" `Quick
      test_suppression_multi_rule;
    Alcotest.test_case "path policy" `Quick test_rules_for_path;
    Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
    Alcotest.test_case "parse error" `Quick test_parse_error;
    Alcotest.test_case "json report" `Quick test_json_report;
  ]
