(* tdmd-analyze correctness: the interprocedural lock-order analysis
   reports deliberate cycles with their exact witness chains and stays
   quiet on legal nestings; domain-escape and the registry rules fire
   on their must-flag fixtures at the exact file/line and pass their
   must-pass fixtures; suppression comments use the tdmd-analyze
   marker. *)

module A = Analyze_core
module K = Check_kit

let fixture name = Filename.concat "analyze_fixtures" name

let analyze ?registry files =
  A.analyze_files
    ?registry_path:(Option.map fixture registry)
    (List.map fixture files)

let hits ?registry files =
  List.map (fun d -> (d.K.rule, d.K.file, d.K.line)) (analyze ?registry files)

let check_hits name ?registry files expected =
  Alcotest.(check (list (triple string string int)))
    (name ^ ": exact rule/file/line hits") expected (hits ?registry files)

(* ------------------------------------------------------------------ *)
(* Lock order                                                          *)
(* ------------------------------------------------------------------ *)

(* The two-edge A->B / B->A cycle must come back as one diagnostic
   whose witness names both acquisition sites, the locks held at each,
   and the full cycle path. *)
let test_lock_cycle_witness () =
  match analyze [ "flag_lock_cycle.ml" ] with
  | [ d ] ->
    Alcotest.(check string) "rule" "lock-order" d.K.rule;
    Alcotest.(check string) "file" (fixture "flag_lock_cycle.ml") d.K.file;
    Alcotest.(check int) "line" 7 d.K.line;
    Alcotest.(check string)
      "exact two-edge witness"
      "lock-order cycle: Flag_lock_cycle.la -> Flag_lock_cycle.lb -> \
       Flag_lock_cycle.la; Flag_lock_cycle.f acquires Flag_lock_cycle.lb at \
       analyze_fixtures/flag_lock_cycle.ml:7 while holding \
       Flag_lock_cycle.la; Flag_lock_cycle.g acquires Flag_lock_cycle.la at \
       analyze_fixtures/flag_lock_cycle.ml:11 while holding \
       Flag_lock_cycle.lb"
      d.K.message
  | ds ->
    Alcotest.failf "expected exactly one lock-order diagnostic, got %d"
      (List.length ds)

(* A cycle threaded through a callee gets an interprocedural witness:
   "f calls take_b ... while holding a; take_b acquires b ...". *)
let test_lock_cycle_interprocedural () =
  match analyze [ "flag_lock_cycle_call.ml" ] with
  | [ d ] ->
    Alcotest.(check string) "rule" "lock-order" d.K.rule;
    let contains sub =
      let n = String.length d.K.message and m = String.length sub in
      let rec go i =
        i + m <= n && (String.sub d.K.message i m = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      "witness crosses the call" true
      (contains
         "Flag_lock_cycle_call.f calls Flag_lock_cycle_call.take_b at \
          analyze_fixtures/flag_lock_cycle_call.ml:10 while holding \
          Flag_lock_cycle_call.a");
    Alcotest.(check bool)
      "witness lands on the callee's acquisition" true
      (contains
         "Flag_lock_cycle_call.take_b acquires Flag_lock_cycle_call.b at \
          analyze_fixtures/flag_lock_cycle_call.ml:6")
  | ds ->
    Alcotest.failf "expected exactly one lock-order diagnostic, got %d"
      (List.length ds)

let test_lock_reentry () =
  match analyze [ "flag_lock_reentry.ml" ] with
  | [ d ] ->
    Alcotest.(check string) "rule" "lock-order" d.K.rule;
    Alcotest.(check int) "line" 6 d.K.line;
    Alcotest.(check string)
      "re-entry message"
      "lock Flag_lock_reentry.l is acquired while already held (Mutex is \
       not reentrant): Flag_lock_reentry.f acquires Flag_lock_reentry.l at \
       analyze_fixtures/flag_lock_reentry.ml:6 while holding \
       Flag_lock_reentry.l"
      d.K.message
  | ds ->
    Alcotest.failf "expected exactly one re-entry diagnostic, got %d"
      (List.length ds)

(* Sequential same-lock use, a repeated consistent nesting, and a spawn
   under a held lock must produce no diagnostics at all. *)
let test_lock_nested_same_no_false_positive () =
  check_hits "nested-same-lock" [ "pass_lock_nested_same.ml" ] []

(* ------------------------------------------------------------------ *)
(* Domain escape                                                       *)
(* ------------------------------------------------------------------ *)

let test_domain_escape () =
  let file = fixture "flag_domain_escape.ml" in
  check_hits "domain-escape" [ "flag_domain_escape.ml" ]
    [ ("domain-escape", file, 8); ("domain-escape", file, 9) ];
  check_hits "domain-escape pass" [ "pass_domain_escape.ml" ] []

(* ------------------------------------------------------------------ *)
(* Registry rules                                                      *)
(* ------------------------------------------------------------------ *)

(* Flag fixtures are analyzed together with pass_registry.ml so every
   registry entry keeps a live reference and only the unknown names
   are reported. *)
let with_pass file = [ file; "pass_registry.ml" ]

let test_registry_pass () =
  check_hits "registered names analyze clean" ~registry:"registry.txt"
    [ "pass_registry.ml" ] []

let test_wire_op_drift () =
  let file = fixture "flag_wire_op.ml" in
  check_hits "unknown wire ops" ~registry:"registry.txt"
    (with_pass "flag_wire_op.ml")
    [ ("wire-op", file, 2); ("wire-op", file, 4) ]

let test_wire_code_drift () =
  let file = fixture "flag_wire_code.ml" in
  check_hits "unknown wire codes" ~registry:"registry.txt"
    (with_pass "flag_wire_code.ml")
    [ ("wire-code", file, 3); ("wire-code", file, 5) ]

let test_fault_point_drift () =
  let file = fixture "flag_fault_point.ml" in
  check_hits "unknown fault points" ~registry:"registry.txt"
    (with_pass "flag_fault_point.ml")
    [ ("fault-point", file, 3); ("fault-point", file, 5) ]

let test_counter_drift () =
  let file = fixture "flag_counter.ml" in
  check_hits "unknown counter" ~registry:"registry.txt"
    (with_pass "flag_counter.ml")
    [ ("counter-name", file, 2) ]

(* The drift check runs both ways: an entry nothing references is
   reported at its line in the registry file itself. *)
let test_registry_orphan () =
  match analyze ~registry:"registry_orphan.txt" [ "pass_registry.ml" ] with
  | [ d ] ->
    Alcotest.(check string) "rule" "fault-point" d.K.rule;
    Alcotest.(check string) "file" (fixture "registry_orphan.txt") d.K.file;
    Alcotest.(check int) "line" 5 d.K.line;
    Alcotest.(check string)
      "orphan message"
      "registry fault \"ghost.point\" is orphaned: no code site passes it \
       to Faults"
      d.K.message
  | ds ->
    Alcotest.failf "expected exactly one orphan diagnostic, got %d"
      (List.length ds)

(* ------------------------------------------------------------------ *)
(* Suppressions use the tdmd-analyze marker                            *)
(* ------------------------------------------------------------------ *)

let analyze_src src =
  List.map
    (fun d -> (d.K.rule, d.K.line))
    (A.analyze_sources [ ("analyze_fixtures/inline.ml", src) ])

let test_suppression_marker () =
  Alcotest.(check (list (pair string int)))
    "a reasoned tdmd-analyze comment suppresses the next line" []
    (analyze_src
       "let l = Mutex.create ()\n\
        (* tdmd-analyze: allow lock-order \xe2\x80\x94 fixture *)\n\
        let f () = Locked.with_lock l (fun () -> Locked.with_lock l (fun () \
        -> ()))\n");
  Alcotest.(check (list (pair string int)))
    "the lint marker does not suppress analyzer rules"
    [ ("lock-order", 3) ]
    (analyze_src
       "let l = Mutex.create ()\n\
        (* tdmd-lint: allow lock-order \xe2\x80\x94 wrong tool *)\n\
        let f () = Locked.with_lock l (fun () -> Locked.with_lock l (fun () \
        -> ()))\n")

let suite =
  [
    Alcotest.test_case "lock cycle: exact witness" `Quick
      test_lock_cycle_witness;
    Alcotest.test_case "lock cycle: interprocedural" `Quick
      test_lock_cycle_interprocedural;
    Alcotest.test_case "lock re-entry" `Quick test_lock_reentry;
    Alcotest.test_case "nested same lock: no false positive" `Quick
      test_lock_nested_same_no_false_positive;
    Alcotest.test_case "domain escape fixtures" `Quick test_domain_escape;
    Alcotest.test_case "registry: pass" `Quick test_registry_pass;
    Alcotest.test_case "registry: wire-op drift" `Quick test_wire_op_drift;
    Alcotest.test_case "registry: wire-code drift" `Quick
      test_wire_code_drift;
    Alcotest.test_case "registry: fault-point drift" `Quick
      test_fault_point_drift;
    Alcotest.test_case "registry: counter drift" `Quick test_counter_drift;
    Alcotest.test_case "registry: orphan entry" `Quick test_registry_orphan;
    Alcotest.test_case "suppression marker" `Quick test_suppression_marker;
  ]
