(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 6) and runs Bechamel micro-benchmarks of each
   algorithm at the default scenario.

     dune exec bench/main.exe            # everything (figures 9-17 + micro + ablation)
     dune exec bench/main.exe fig9       # one figure
     dune exec bench/main.exe fig17
     dune exec bench/main.exe micro
     dune exec bench/main.exe solvers    # registry sweep -> BENCH_solvers.json
     dune exec bench/main.exe ablation

   Absolute values depend on this synthetic substrate (see DESIGN.md §2);
   the paper-shape expectations are recorded in EXPERIMENTS.md. *)

open Tdmd_sim

let reps = 5

(* Set TDMD_BENCH_CSV=<dir> to also dump each figure's series as CSV. *)
let csv_dir = Sys.getenv_opt "TDMD_BENCH_CSV"

let maybe_csv (result : Experiments.result) =
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (result.Experiments.fig_id ^ ".csv") in
    let oc = open_out path in
    output_string oc (Report.result_csv result);
    close_out oc;
    Printf.printf "(csv written to %s)\n" path

let print_line_figure result =
  Report.print_result result;
  maybe_csv result

(* The paper's Fig. 8: what the simulation topologies look like. *)
let fig8 () =
  let rng = Tdmd_prelude.Rng.create 8000 in
  let ark = Tdmd_topo.Ark.generate rng ~n:64 in
  print_endline "== fig8(a): synthetic Ark infrastructure ==\n";
  print_string (Tdmd_topo.Topo_stats.render (Tdmd_topo.Topo_stats.compute ark.Tdmd_topo.Ark.graph));
  let tree = Tdmd_topo.Topo_tree.resize rng (Tdmd_topo.Ark.tree_of rng ark) 22 in
  print_endline "\n== fig8(b): tree topology (22 vertices, root = hub) ==\n";
  print_string
    (Tdmd_topo.Topo_stats.render
       (Tdmd_topo.Topo_stats.compute (Tdmd_tree.Rooted_tree.to_digraph tree)));
  let general, dests = Tdmd_topo.Ark.general_of rng ark ~size:30 in
  Printf.printf "\n== fig8(c): general topology (30 vertices, %d red destinations) ==\n\n"
    (List.length dests);
  print_string (Tdmd_topo.Topo_stats.render (Tdmd_topo.Topo_stats.compute general))

let line_figures =
  [
    ("fig8", fig8);
    ("fig9", fun () -> print_line_figure (Experiments.fig9 ~reps ()));
    ("fig10", fun () -> print_line_figure (Experiments.fig10 ~reps ()));
    ("fig11", fun () -> print_line_figure (Experiments.fig11 ~reps ()));
    ("fig12", fun () -> print_line_figure (Experiments.fig12 ~reps ()));
    ("fig13", fun () -> print_line_figure (Experiments.fig13 ~reps ()));
    ("fig14", fun () -> print_line_figure (Experiments.fig14 ~reps ()));
    ("fig15", fun () -> print_line_figure (Experiments.fig15 ~reps ()));
    ("fig16", fun () -> print_line_figure (Experiments.fig16 ~reps ()));
    ( "fig17",
      fun () ->
        Report.print_grid (Experiments.fig17_tree ());
        print_newline ();
        Report.print_grid (Experiments.fig17_general ()) );
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per algorithm              *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let rng = Tdmd_prelude.Rng.create 4242 in
  let tree_inst = Scenario.build_tree rng Scenario.default_tree in
  let tree_general = Tdmd.Instance.Tree.to_general tree_inst in
  let general_inst = Scenario.build_general rng Scenario.default_general in
  let kt = Scenario.default_tree.Scenario.k in
  let kg = Scenario.default_general.Scenario.k in
  let tests =
    [
      Test.make ~name:"GTP (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Gtp.run ~budget:kt tree_general)));
      Test.make ~name:"GTP-CELF (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Gtp.run_celf ~budget:kt tree_general)));
      Test.make ~name:"HAT (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Hat.run ~k:kt tree_inst)));
      Test.make ~name:"DP (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Dp.solve ~k:kt tree_inst)));
      Test.make ~name:"Scaled-DP theta=4 (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Scaled_dp.solve ~k:kt ~theta:4 tree_inst)));
      Test.make ~name:"Best-effort (tree)"
        (Staged.stage (fun () ->
             ignore (Tdmd.Baselines.best_effort ~k:kt tree_general)));
      Test.make ~name:"GTP (general)"
        (Staged.stage (fun () -> ignore (Tdmd.Gtp.run ~budget:kg general_inst)));
      Test.make ~name:"Best-effort (general)"
        (Staged.stage (fun () ->
             ignore (Tdmd.Baselines.best_effort ~k:kg general_inst)));
      Test.make ~name:"Random (general)"
        (Staged.stage (fun () ->
             ignore (Tdmd.Baselines.random (Tdmd_prelude.Rng.create 7) ~k:kg general_inst)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  print_endline "== micro-benchmarks (Bechamel, monotonic clock) ==\n";
  let t = Tdmd_prelude.Table.create [ "algorithm"; "time per run" ] in
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name ols ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> est
            | _ -> nan
          in
          let cell =
            if Float.is_nan ns then "n/a"
            else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else Printf.sprintf "%.1f us" (ns /. 1e3)
          in
          Tdmd_prelude.Table.add_row t [ name; cell ])
        results)
    tests;
  Tdmd_prelude.Table.print t

let ablation () = Report.print_ablation (Experiments.ablation ())

(* ------------------------------------------------------------------ *)
(* Registry sweep: every solver at its default scenario, JSON-lines    *)
(* ------------------------------------------------------------------ *)

(* One record per registered solver into BENCH_solvers.json (path
   overridable with TDMD_BENCH_JSON): wall-clock summary over [reps]
   runs plus the last run's telemetry.  Solvers that cannot handle the
   default scenario (e.g. brute's subset cap) yield an error record
   instead of aborting the sweep. *)
let solvers_json_path =
  match Sys.getenv_opt "TDMD_BENCH_JSON" with
  | Some p -> p
  | None -> "BENCH_solvers.json"

let solvers () =
  let open Tdmd_prelude in
  let rng = Rng.create 4242 in
  let tree_inst = Scenario.build_tree rng Scenario.default_tree in
  let general_inst = Scenario.build_general rng Scenario.default_general in
  let kt = Scenario.default_tree.Scenario.k in
  let kg = Scenario.default_general.Scenario.k in
  let oc = open_out solvers_json_path in
  let sink = Tdmd_obs.Sink.of_channel oc in
  let summary_json (s : Stats.summary) =
    Tdmd_obs.Json.Obj
      [
        ("mean", Tdmd_obs.Json.Float s.Stats.mean);
        ("stddev", Tdmd_obs.Json.Float s.Stats.stddev);
        ("min", Tdmd_obs.Json.Float s.Stats.min);
        ("max", Tdmd_obs.Json.Float s.Stats.max);
      ]
  in
  let bench_one ~input ~name ~k run =
    let record =
      match
        List.init reps (fun i ->
            let rng = Rng.create (1000 + i) in
            Timer.time (fun () -> run ~rng ~k))
      with
      | runs ->
        let seconds = Stats.summarize (List.map snd runs) in
        let outcome = fst (List.hd (List.rev runs)) in
        Tdmd_obs.Sink.record ~event:"bench"
          ~extra:
            [
              ("solver", Tdmd_obs.Json.String name);
              ("input", Tdmd_obs.Json.String input);
              ("k", Tdmd_obs.Json.Int k);
              ("reps", Tdmd_obs.Json.Int reps);
              ("seconds", summary_json seconds);
              ( "bandwidth",
                Tdmd_obs.Json.Float outcome.Tdmd.Solver_intf.bandwidth );
              ( "feasible",
                Tdmd_obs.Json.Bool outcome.Tdmd.Solver_intf.feasible );
            ]
          outcome.Tdmd.Solver_intf.telemetry
      | exception exn ->
        Tdmd_obs.Json.Obj
          [
            ("event", Tdmd_obs.Json.String "bench-error");
            ("solver", Tdmd_obs.Json.String name);
            ("input", Tdmd_obs.Json.String input);
            ("error", Tdmd_obs.Json.String (Printexc.to_string exn));
          ]
    in
    Tdmd_obs.Sink.emit sink record
  in
  List.iter
    (fun (name, f) ->
      bench_one ~input:"general" ~name ~k:kg (fun ~rng ~k ->
          f ~rng ~k general_inst))
    Tdmd.Solvers.general;
  List.iter
    (fun (name, f) ->
      bench_one ~input:"tree" ~name ~k:kt (fun ~rng ~k -> f ~rng ~k tree_inst))
    Tdmd.Solvers.tree;
  close_out oc;
  Printf.printf "== solver registry sweep ==\n\nwrote %s (%d solvers)\n"
    solvers_json_path
    (List.length Tdmd.Solvers.names)

(* ------------------------------------------------------------------ *)
(* Oracle bench: naive full-rescan vs incremental decrement oracle     *)
(* ------------------------------------------------------------------ *)

(* Runs GTP's greedy core at several instance sizes with both oracle
   flavours, asserts they choose the same deployment, and writes one
   JSON-lines record per size to BENCH_oracle.json (path overridable
   with TDMD_BENCH_ORACLE_JSON, sizes with TDMD_BENCH_ORACLE_SIZES as a
   comma-separated list). *)
let oracle_json_path =
  match Sys.getenv_opt "TDMD_BENCH_ORACLE_JSON" with
  | Some p -> p
  | None -> "BENCH_oracle.json"

let oracle_sizes =
  match Sys.getenv_opt "TDMD_BENCH_ORACLE_SIZES" with
  | None -> [ 15; 30; 60; 90 ]
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun tok ->
           match int_of_string_opt (String.trim tok) with
           | Some n when n > 2 -> Some n
           | _ -> None)

let oracle_bench () =
  let open Tdmd_prelude in
  let oc = open_out oracle_json_path in
  let sink = Tdmd_obs.Sink.of_channel oc in
  let summary_json (s : Stats.summary) =
    Tdmd_obs.Json.Obj
      [
        ("mean", Tdmd_obs.Json.Float s.Stats.mean);
        ("stddev", Tdmd_obs.Json.Float s.Stats.stddev);
        ("min", Tdmd_obs.Json.Float s.Stats.min);
        ("max", Tdmd_obs.Json.Float s.Stats.max);
      ]
  in
  print_endline "== oracle bench: naive vs incremental greedy ==\n";
  let t =
    Table.create [ "size"; "k"; "naive (s)"; "incremental (s)"; "speedup" ]
  in
  List.iter
    (fun size ->
      let rng = Rng.create (9000 + size) in
      let inst =
        Scenario.build_general rng { Scenario.default_general with Scenario.size }
      in
      let k = max 1 (size / 3) in
      let time_greedy oracle_of =
        List.init reps (fun _ ->
            Timer.time (fun () ->
                Tdmd_submod.Submodular.greedy ~k (oracle_of inst)))
      in
      let naive_runs = time_greedy Tdmd.Bandwidth.oracle_naive in
      let inc_runs = time_greedy Tdmd.Bandwidth.oracle in
      let naive = Stats.summarize (List.map snd naive_runs) in
      let inc = Stats.summarize (List.map snd inc_runs) in
      let chosen (r : Tdmd_submod.Submodular.result) = r.Tdmd_submod.Submodular.chosen in
      let same_result =
        chosen (fst (List.hd naive_runs)) = chosen (fst (List.hd inc_runs))
      in
      if not same_result then
        Printf.eprintf "WARNING: oracle mismatch at size %d\n" size;
      let speedup =
        if inc.Stats.mean > 0.0 then naive.Stats.mean /. inc.Stats.mean else nan
      in
      Tdmd_obs.Sink.emit sink
        (Tdmd_obs.Json.Obj
           [
             ("event", Tdmd_obs.Json.String "bench-oracle");
             ("size", Tdmd_obs.Json.Int size);
             ("k", Tdmd_obs.Json.Int k);
             ("flows", Tdmd_obs.Json.Int (Array.length inst.Tdmd.Instance.flows));
             ("reps", Tdmd_obs.Json.Int reps);
             ("naive_seconds", summary_json naive);
             ("incremental_seconds", summary_json inc);
             ("speedup", Tdmd_obs.Json.Float speedup);
             ("same_result", Tdmd_obs.Json.Bool same_result);
           ]);
      Table.add_row t
        [
          string_of_int size;
          string_of_int k;
          Printf.sprintf "%.5f" naive.Stats.mean;
          Printf.sprintf "%.5f" inc.Stats.mean;
          Printf.sprintf "%.1fx" speedup;
        ])
    oracle_sizes;
  close_out oc;
  Table.print t;
  Printf.printf "\nwrote %s (%d sizes)\n" oracle_json_path
    (List.length oracle_sizes)

let run_all () =
  List.iter
    (fun (id, f) ->
      Printf.printf "\n";
      f ();
      ignore id)
    line_figures;
  print_newline ();
  micro ();
  print_newline ();
  solvers ();
  print_newline ();
  oracle_bench ();
  print_newline ();
  ablation ()

let () =
  match Sys.argv with
  | [| _ |] -> run_all ()
  | [| _; "micro" |] -> micro ()
  | [| _; "solvers" |] -> solvers ()
  | [| _; "oracle" |] -> oracle_bench ()
  | [| _; "ablation" |] -> ablation ()
  | [| _; fig |] -> (
    match List.assoc_opt fig line_figures with
    | Some f -> f ()
    | None ->
      Printf.eprintf
        "unknown target %s (expected fig8..fig17, micro, solvers, oracle, ablation)\n"
        fig;
      exit 1)
  | _ ->
    Printf.eprintf "usage: main.exe [fig8..fig17|micro|solvers|oracle|ablation]\n";
    exit 1
