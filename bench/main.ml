(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 6) and runs Bechamel micro-benchmarks of each
   algorithm at the default scenario.

     dune exec bench/main.exe            # everything (figures 9-17 + micro + ablation)
     dune exec bench/main.exe fig9       # one figure
     dune exec bench/main.exe fig17
     dune exec bench/main.exe micro
     dune exec bench/main.exe solvers    # registry sweep -> BENCH_solvers.json
     dune exec bench/main.exe churn-timeline  # budget Pareto -> BENCH_churn.json
     dune exec bench/main.exe portfolio  # quality vs budget -> BENCH_portfolio.json
     dune exec bench/main.exe chaos      # randomized fault soak -> BENCH_chaos.json
     dune exec bench/main.exe ablation

   Absolute values depend on this synthetic substrate (see DESIGN.md §2);
   the paper-shape expectations are recorded in EXPERIMENTS.md. *)

open Tdmd_sim

(* The metaheuristic portfolio registers its solvers dynamically; pull
   them in so the registry sweeps below see anneal/genetic/portfolio
   next to the builtins. *)
let () = Tdmd_portfolio.Register.install ()

let reps = 5

(* Set TDMD_BENCH_CSV=<dir> to also dump each figure's series as CSV. *)
let csv_dir = Sys.getenv_opt "TDMD_BENCH_CSV"

let maybe_csv (result : Experiments.result) =
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (result.Experiments.fig_id ^ ".csv") in
    let oc = open_out path in
    output_string oc (Report.result_csv result);
    close_out oc;
    Printf.printf "(csv written to %s)\n" path

let print_line_figure result =
  Report.print_result result;
  maybe_csv result

(* The paper's Fig. 8: what the simulation topologies look like. *)
let fig8 () =
  let rng = Tdmd_prelude.Rng.create 8000 in
  let ark = Tdmd_topo.Ark.generate rng ~n:64 in
  print_endline "== fig8(a): synthetic Ark infrastructure ==\n";
  print_string (Tdmd_topo.Topo_stats.render (Tdmd_topo.Topo_stats.compute ark.Tdmd_topo.Ark.graph));
  let tree = Tdmd_topo.Topo_tree.resize rng (Tdmd_topo.Ark.tree_of rng ark) 22 in
  print_endline "\n== fig8(b): tree topology (22 vertices, root = hub) ==\n";
  print_string
    (Tdmd_topo.Topo_stats.render
       (Tdmd_topo.Topo_stats.compute (Tdmd_tree.Rooted_tree.to_digraph tree)));
  let general, dests = Tdmd_topo.Ark.general_of rng ark ~size:30 in
  Printf.printf "\n== fig8(c): general topology (30 vertices, %d red destinations) ==\n\n"
    (List.length dests);
  print_string (Tdmd_topo.Topo_stats.render (Tdmd_topo.Topo_stats.compute general))

let line_figures =
  [
    ("fig8", fig8);
    ("fig9", fun () -> print_line_figure (Experiments.fig9 ~reps ()));
    ("fig10", fun () -> print_line_figure (Experiments.fig10 ~reps ()));
    ("fig11", fun () -> print_line_figure (Experiments.fig11 ~reps ()));
    ("fig12", fun () -> print_line_figure (Experiments.fig12 ~reps ()));
    ("fig13", fun () -> print_line_figure (Experiments.fig13 ~reps ()));
    ("fig14", fun () -> print_line_figure (Experiments.fig14 ~reps ()));
    ("fig15", fun () -> print_line_figure (Experiments.fig15 ~reps ()));
    ("fig16", fun () -> print_line_figure (Experiments.fig16 ~reps ()));
    ( "fig17",
      fun () ->
        Report.print_grid (Experiments.fig17_tree ());
        print_newline ();
        Report.print_grid (Experiments.fig17_general ()) );
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per algorithm              *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let rng = Tdmd_prelude.Rng.create 4242 in
  let tree_inst = Scenario.build_tree rng Scenario.default_tree in
  let tree_general = Tdmd.Instance.Tree.to_general tree_inst in
  let general_inst = Scenario.build_general rng Scenario.default_general in
  let kt = Scenario.default_tree.Scenario.k in
  let kg = Scenario.default_general.Scenario.k in
  let tests =
    [
      Test.make ~name:"GTP (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Gtp.run ~budget:kt tree_general)));
      Test.make ~name:"GTP-CELF (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Gtp.run_celf ~budget:kt tree_general)));
      Test.make ~name:"HAT (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Hat.run ~k:kt tree_inst)));
      Test.make ~name:"DP (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Dp.solve ~k:kt tree_inst)));
      Test.make ~name:"Scaled-DP theta=4 (tree)"
        (Staged.stage (fun () -> ignore (Tdmd.Scaled_dp.solve ~k:kt ~theta:4 tree_inst)));
      Test.make ~name:"Best-effort (tree)"
        (Staged.stage (fun () ->
             ignore (Tdmd.Baselines.best_effort ~k:kt tree_general)));
      Test.make ~name:"GTP (general)"
        (Staged.stage (fun () -> ignore (Tdmd.Gtp.run ~budget:kg general_inst)));
      Test.make ~name:"Best-effort (general)"
        (Staged.stage (fun () ->
             ignore (Tdmd.Baselines.best_effort ~k:kg general_inst)));
      Test.make ~name:"Random (general)"
        (Staged.stage (fun () ->
             ignore (Tdmd.Baselines.random (Tdmd_prelude.Rng.create 7) ~k:kg general_inst)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  print_endline "== micro-benchmarks (Bechamel, monotonic clock) ==\n";
  let t = Tdmd_prelude.Table.create [ "algorithm"; "time per run" ] in
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name ols ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> est
            | _ -> nan
          in
          let cell =
            if Float.is_nan ns then "n/a"
            else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else Printf.sprintf "%.1f us" (ns /. 1e3)
          in
          Tdmd_prelude.Table.add_row t [ name; cell ])
        results)
    tests;
  Tdmd_prelude.Table.print t

let ablation () = Report.print_ablation (Experiments.ablation ())

(* ------------------------------------------------------------------ *)
(* Registry sweep: every solver at its default scenario, JSON-lines    *)
(* ------------------------------------------------------------------ *)

(* One record per registered solver into BENCH_solvers.json (path
   overridable with TDMD_BENCH_JSON): wall-clock summary over [reps]
   runs plus the last run's telemetry.  Solvers that cannot handle the
   default scenario (e.g. brute's subset cap) yield an error record
   instead of aborting the sweep. *)
let solvers_json_path =
  match Sys.getenv_opt "TDMD_BENCH_JSON" with
  | Some p -> p
  | None -> "BENCH_solvers.json"

let solvers () =
  let open Tdmd_prelude in
  let rng = Rng.create 4242 in
  let tree_inst = Scenario.build_tree rng Scenario.default_tree in
  let general_inst = Scenario.build_general rng Scenario.default_general in
  let kt = Scenario.default_tree.Scenario.k in
  let kg = Scenario.default_general.Scenario.k in
  let oc = open_out solvers_json_path in
  let sink = Tdmd_obs.Sink.of_channel oc in
  let summary_json (s : Stats.summary) =
    Tdmd_obs.Json.Obj
      [
        ("mean", Tdmd_obs.Json.Float s.Stats.mean);
        ("stddev", Tdmd_obs.Json.Float s.Stats.stddev);
        ("min", Tdmd_obs.Json.Float s.Stats.min);
        ("max", Tdmd_obs.Json.Float s.Stats.max);
      ]
  in
  let bench_one ~input ~name ~k run =
    let record =
      match
        List.init reps (fun i ->
            let rng = Rng.create (1000 + i) in
            Timer.time (fun () -> run ~rng ~k))
      with
      | runs ->
        let seconds = Stats.summarize (List.map snd runs) in
        let outcome = fst (List.hd (List.rev runs)) in
        Tdmd_obs.Sink.record ~event:"bench"
          ~extra:
            [
              ("solver", Tdmd_obs.Json.String name);
              ("input", Tdmd_obs.Json.String input);
              ("k", Tdmd_obs.Json.Int k);
              ("reps", Tdmd_obs.Json.Int reps);
              ("seconds", summary_json seconds);
              ( "bandwidth",
                Tdmd_obs.Json.Float outcome.Tdmd.Solver_intf.bandwidth );
              ( "feasible",
                Tdmd_obs.Json.Bool outcome.Tdmd.Solver_intf.feasible );
            ]
          outcome.Tdmd.Solver_intf.telemetry
      | exception exn ->
        Tdmd_obs.Json.Obj
          [
            ("event", Tdmd_obs.Json.String "bench-error");
            ("solver", Tdmd_obs.Json.String name);
            ("input", Tdmd_obs.Json.String input);
            ("error", Tdmd_obs.Json.String (Printexc.to_string exn));
          ]
    in
    Tdmd_obs.Sink.emit sink record
  in
  List.iter
    (fun (name, f) ->
      bench_one ~input:"general" ~name ~k:kg (fun ~rng ~k ->
          f ~rng ~k general_inst))
    (Tdmd.Solvers.general ());
  List.iter
    (fun (name, f) ->
      bench_one ~input:"tree" ~name ~k:kt (fun ~rng ~k -> f ~rng ~k tree_inst))
    (Tdmd.Solvers.tree ());
  close_out oc;
  Printf.printf "== solver registry sweep ==\n\nwrote %s (%d solvers)\n"
    solvers_json_path
    (List.length (Tdmd.Solvers.names ()))

(* ------------------------------------------------------------------ *)
(* Oracle bench: naive full-rescan vs incremental decrement oracle     *)
(* ------------------------------------------------------------------ *)

(* Runs GTP's greedy core at several instance sizes with both oracle
   flavours, asserts they choose the same deployment, and writes one
   JSON-lines record per size to BENCH_oracle.json (path overridable
   with TDMD_BENCH_ORACLE_JSON, sizes with TDMD_BENCH_ORACLE_SIZES as a
   comma-separated list). *)
let oracle_json_path =
  match Sys.getenv_opt "TDMD_BENCH_ORACLE_JSON" with
  | Some p -> p
  | None -> "BENCH_oracle.json"

let oracle_sizes =
  match Sys.getenv_opt "TDMD_BENCH_ORACLE_SIZES" with
  | None -> [ 15; 30; 60; 90 ]
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun tok ->
           match int_of_string_opt (String.trim tok) with
           | Some n when n > 2 -> Some n
           | _ -> None)

let oracle_bench () =
  let open Tdmd_prelude in
  let oc = open_out oracle_json_path in
  let sink = Tdmd_obs.Sink.of_channel oc in
  let summary_json (s : Stats.summary) =
    Tdmd_obs.Json.Obj
      [
        ("mean", Tdmd_obs.Json.Float s.Stats.mean);
        ("stddev", Tdmd_obs.Json.Float s.Stats.stddev);
        ("min", Tdmd_obs.Json.Float s.Stats.min);
        ("max", Tdmd_obs.Json.Float s.Stats.max);
      ]
  in
  print_endline "== oracle bench: naive vs incremental greedy ==\n";
  let t =
    Table.create [ "size"; "k"; "naive (s)"; "incremental (s)"; "speedup" ]
  in
  List.iter
    (fun size ->
      let rng = Rng.create (9000 + size) in
      let inst =
        Scenario.build_general rng { Scenario.default_general with Scenario.size }
      in
      let k = max 1 (size / 3) in
      let time_greedy oracle_of =
        List.init reps (fun _ ->
            Timer.time (fun () ->
                Tdmd_submod.Submodular.greedy ~k (oracle_of inst)))
      in
      let naive_runs = time_greedy Tdmd.Bandwidth.oracle_naive in
      let inc_runs = time_greedy Tdmd.Bandwidth.oracle in
      let naive = Stats.summarize (List.map snd naive_runs) in
      let inc = Stats.summarize (List.map snd inc_runs) in
      let chosen (r : Tdmd_submod.Submodular.result) = r.Tdmd_submod.Submodular.chosen in
      let same_result =
        chosen (fst (List.hd naive_runs)) = chosen (fst (List.hd inc_runs))
      in
      if not same_result then
        Printf.eprintf "WARNING: oracle mismatch at size %d\n" size;
      let speedup =
        if inc.Stats.mean > 0.0 then naive.Stats.mean /. inc.Stats.mean else nan
      in
      Tdmd_obs.Sink.emit sink
        (Tdmd_obs.Json.Obj
           [
             ("event", Tdmd_obs.Json.String "bench-oracle");
             ("size", Tdmd_obs.Json.Int size);
             ("k", Tdmd_obs.Json.Int k);
             ("flows", Tdmd_obs.Json.Int (Array.length inst.Tdmd.Instance.flows));
             ("reps", Tdmd_obs.Json.Int reps);
             ("naive_seconds", summary_json naive);
             ("incremental_seconds", summary_json inc);
             ("speedup", Tdmd_obs.Json.Float speedup);
             ("same_result", Tdmd_obs.Json.Bool same_result);
           ]);
      Table.add_row t
        [
          string_of_int size;
          string_of_int k;
          Printf.sprintf "%.5f" naive.Stats.mean;
          Printf.sprintf "%.5f" inc.Stats.mean;
          Printf.sprintf "%.1fx" speedup;
        ])
    oracle_sizes;
  close_out oc;
  Table.print t;
  Printf.printf "\nwrote %s (%d sizes)\n" oracle_json_path
    (List.length oracle_sizes)

(* ------------------------------------------------------------------ *)
(* Serve bench: closed-loop clients against an in-process server       *)
(* ------------------------------------------------------------------ *)

(* Starts `tdmd serve` in-process on a Unix socket, then sweeps client
   concurrency; every client is one OS thread running a closed loop of
   solve requests over its own connection.  Per-request latency is
   measured client-side (includes framing + queueing + solve), p50/p95/
   p99 come from the raw samples, and one JSON-lines record per
   concurrency level lands in BENCH_serve.json (path overridable with
   TDMD_BENCH_SERVE_JSON; TDMD_BENCH_SERVE_QUICK=1 shrinks the sweep
   for CI smoke). *)
let serve_json_path =
  match Sys.getenv_opt "TDMD_BENCH_SERVE_JSON" with
  | Some p -> p
  | None -> "BENCH_serve.json"

let serve_quick = Sys.getenv_opt "TDMD_BENCH_SERVE_QUICK" <> None

let serve_bench () =
  let open Tdmd_prelude in
  let module Server = Tdmd_server.Server in
  let module Client = Tdmd_server.Client in
  let module P = Tdmd_server.Protocol in
  let levels = if serve_quick then [ 1; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let per_client = if serve_quick then 8 else 50 in
  let rng = Rng.create 4242 in
  let tree_inst = Scenario.build_tree rng Scenario.default_tree in
  let k = Scenario.default_tree.Scenario.k in
  let session =
    Tdmd_server.Session.create_tree
      ~config:
        {
          Tdmd_server.Session.Config.default with
          Tdmd_server.Session.Config.churn_k = k;
        }
      tree_inst
  in
  let sock = Filename.temp_file "tdmd-bench" ".sock" in
  Sys.remove sock;
  let addr = P.Unix_sock sock in
  let server =
    Server.start_session
      {
        Server.addr;
        domains = Parallel.recommended_domains ();
        queue_capacity = 256;
        default_deadline_ms = None;
        metrics_out = None;
      }
      session
  in
  (* Sanity: a served answer must be bit-identical to a direct registry
     call with the same seed. *)
  (let c = Result.get_ok (Client.connect_retry addr) in
   let response =
     Client.rpc c (P.Solve { algo = "gtp"; k; seed = 1; target = P.Static })
   in
   Client.close c;
   let direct =
     (Option.get (Tdmd.Solvers.on_tree "gtp")) ~rng:(Rng.create 1) ~k tree_inst
   in
   match response with
   | Ok resp ->
     let served_placement =
       match Tdmd_obs.Json.member "placement" resp with
       | Some (Tdmd_obs.Json.List vs) ->
         List.filter_map
           (function Tdmd_obs.Json.Int v -> Some v | _ -> None)
           vs
       | _ -> []
     in
     if
       served_placement
       <> Tdmd.Placement.to_list direct.Tdmd.Solver_intf.placement
       || Tdmd_obs.Json.member "bandwidth" resp
          <> Some (Tdmd_obs.Json.Float direct.Tdmd.Solver_intf.bandwidth)
     then failwith "serve bench: served answer differs from direct call"
   | Error msg -> failwith ("serve bench: " ^ msg));
  let oc = open_out serve_json_path in
  let sink = Tdmd_obs.Sink.of_channel oc in
  print_endline "== serve bench: closed-loop clients, solve(gtp) ==\n";
  let table =
    Table.create
      [ "clients"; "requests"; "wall (s)"; "req/s"; "p50 (ms)"; "p95 (ms)"; "p99 (ms)" ]
  in
  List.iter
    (fun clients ->
      let total = clients * per_client in
      let latencies_ms = Array.make total nan in
      let errors = Array.make clients 0 in
      let t0 = Tdmd_obs.Clock.now_ns () in
      let run ci =
        match Client.connect_retry addr with
        | Error _ -> errors.(ci) <- per_client
        | Ok c ->
          for r = 0 to per_client - 1 do
            let i = (ci * per_client) + r in
            let s0 = Tdmd_obs.Clock.now_ns () in
            (match
               Client.rpc c
                 (P.Solve { algo = "gtp"; k; seed = i; target = P.Static })
             with
            | Ok resp
              when Tdmd_obs.Json.member "ok" resp = Some (Tdmd_obs.Json.Bool true)
              ->
              latencies_ms.(i) <-
                Int64.to_float (Int64.sub (Tdmd_obs.Clock.now_ns ()) s0) /. 1e6
            | Ok _ | Error _ -> errors.(ci) <- errors.(ci) + 1)
          done;
          Client.close c
      in
      let threads = List.init clients (fun ci -> Thread.create run ci) in
      List.iter Thread.join threads;
      let wall =
        Int64.to_float (Int64.sub (Tdmd_obs.Clock.now_ns ()) t0) /. 1e9
      in
      let errors = Array.fold_left ( + ) 0 errors in
      let samples =
        Array.of_list
          (List.filter
             (fun x -> not (Float.is_nan x))
             (Array.to_list latencies_ms))
      in
      let pct p = if Array.length samples = 0 then nan else Stats.percentile samples p in
      let throughput = float_of_int (total - errors) /. Float.max wall 1e-9 in
      Tdmd_obs.Sink.emit sink
        (Tdmd_obs.Json.Obj
           [
             ("event", Tdmd_obs.Json.String "bench-serve");
             ("concurrency", Tdmd_obs.Json.Int clients);
             ("requests", Tdmd_obs.Json.Int total);
             ("errors", Tdmd_obs.Json.Int errors);
             ("wall_seconds", Tdmd_obs.Json.Float wall);
             ("throughput_rps", Tdmd_obs.Json.Float throughput);
             ("p50_ms", Tdmd_obs.Json.Float (pct 0.50));
             ("p95_ms", Tdmd_obs.Json.Float (pct 0.95));
             ("p99_ms", Tdmd_obs.Json.Float (pct 0.99));
           ]);
      Table.add_row table
        [
          string_of_int clients;
          string_of_int total;
          Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.0f" throughput;
          Printf.sprintf "%.2f" (pct 0.50);
          Printf.sprintf "%.2f" (pct 0.95);
          Printf.sprintf "%.2f" (pct 0.99);
        ])
    levels;
  Server.request_stop server;
  Server.wait server;
  Table.print table;
  (* Shard sweep: closed-loop churn (arrive/depart) against a durable
     sharded engine, fixed client count across shard counts — the rps
     column isolates what sharding buys.  On the line topology each
     shard's churn engine scans only its own region's flows, and the
     shards' group commits overlap, so rps should grow with the shard
     count.  Per-shard queue/batch counters come back over the wire via
     the [stats] op and land in the JSON record. *)
  print_endline "\n== serve bench: sharded churn, arrive/depart ==\n";
  let shard_levels = if serve_quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let churn_clients = if serve_quick then 4 else 8 in
  let churn_per_client = if serve_quick then 30 else 150 in
  let n_vertices = 256 in
  let g = Tdmd_graph.Digraph.create n_vertices in
  for v = 0 to n_vertices - 2 do
    Tdmd_graph.Digraph.add_undirected g v (v + 1)
  done;
  let base_inst =
    Tdmd.Instance.make ~graph:g
      ~flows:[ Tdmd_flow.Flow.make ~id:0 ~rate:1 ~path:[ 0; 1; 2 ] ]
      ~lambda:0.5
  in
  let rec rm_rf_rec dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.is_directory p then rm_rf_rec p else Sys.remove p)
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  let shard_table =
    Table.create
      [ "shards"; "requests"; "errors"; "wall (s)"; "req/s"; "speedup";
        "p50 (ms)"; "p99 (ms)"; "batch avg"; "queue peak" ]
  in
  let base_rps = ref nan in
  List.iter
    (fun shards ->
      let dir = Filename.temp_file "tdmd-bench-shard" "" in
      Sys.remove dir;
      (* Seeds at region midpoints so the BFS fronts meet at the block
         boundaries: shard i owns a contiguous slice of the line. *)
      let seeds =
        List.init shards (fun i ->
            (i * n_vertices / shards) + (n_vertices / (2 * shards)))
      in
      let partition = Tdmd_topo.Partition.make ~seeds g ~shards in
      let lo = Array.make shards max_int and hi = Array.make shards (-1) in
      for v = 0 to n_vertices - 1 do
        let s = Tdmd_topo.Partition.owner partition v in
        if v < lo.(s) then lo.(s) <- v;
        if v > hi.(s) then hi.(s) <- v
      done;
      let config =
        {
          Tdmd_server.Session.Config.default with
          Tdmd_server.Session.Config.durability =
            Some
              (Tdmd_server.Session.durability ~fsync:Tdmd_server.Journal.Always
                 dir);
        }
      in
      let engine =
        Tdmd_server.Engine.create ~config ~shards ~partition
          (Tdmd_server.Engine.General base_inst)
      in
      let sock = Filename.temp_file "tdmd-bench" ".sock" in
      Sys.remove sock;
      let addr = P.Unix_sock sock in
      let server =
        Server.start
          {
            Server.addr;
            domains = churn_clients;
            queue_capacity = 256;
            default_deadline_ms = None;
            metrics_out = None;
          }
          engine
      in
      let total = churn_clients * churn_per_client in
      let latencies_ms = Array.make total nan in
      let errors = Array.make churn_clients 0 in
      let t0 = Tdmd_obs.Clock.now_ns () in
      let run ci =
        match Client.connect_retry addr with
        | Error _ -> errors.(ci) <- churn_per_client
        | Ok c ->
          let s = ci mod shards in
          let rng = Rng.create (7001 + ci) in
          let live = ref [] in
          for r = 0 to churn_per_client - 1 do
            let i = (ci * churn_per_client) + r in
            let s0 = Tdmd_obs.Clock.now_ns () in
            let resp =
              if r mod 3 = 2 && !live <> [] then begin
                let id = List.hd !live in
                live := List.tl !live;
                Client.rpc c (P.Depart id)
              end
              else begin
                let id = ((ci + 1) * 1_000_000) + r in
                let path =
                  if r mod 16 = 15 && shards > 1 && s < shards - 1 then
                    (* Straddle the next block boundary: exercises the
                       cross-shard two-phase path. *)
                    List.init 6 (fun j -> hi.(s) - 2 + j)
                  else begin
                    let a = lo.(s) + Rng.int rng (hi.(s) - lo.(s) - 1) in
                    let b = min hi.(s) (a + 1 + Rng.int rng 5) in
                    List.init (b - a + 1) (fun j -> a + j)
                  end
                in
                let resp =
                  Client.rpc c (P.Arrive { id; rate = 1 + Rng.int rng 8; path })
                in
                (match resp with
                | Ok j
                  when Tdmd_obs.Json.member "ok" j
                       = Some (Tdmd_obs.Json.Bool true) ->
                  live := !live @ [ id ]
                | Ok _ | Error _ -> ());
                resp
              end
            in
            match resp with
            | Ok j
              when Tdmd_obs.Json.member "ok" j = Some (Tdmd_obs.Json.Bool true)
              ->
              latencies_ms.(i) <-
                Int64.to_float (Int64.sub (Tdmd_obs.Clock.now_ns ()) s0) /. 1e6
            | Ok _ | Error _ -> errors.(ci) <- errors.(ci) + 1
          done;
          Client.close c
      in
      let threads = List.init churn_clients (fun ci -> Thread.create run ci) in
      List.iter Thread.join threads;
      let wall =
        Int64.to_float (Int64.sub (Tdmd_obs.Clock.now_ns ()) t0) /. 1e9
      in
      (* Per-shard queue/batch counters, over the wire like any client
         would read them ([stats] carries a ["shards"] list when the
         engine is sharded). *)
      let per_shard =
        match Client.connect_retry addr with
        | Error _ -> Tdmd_obs.Json.List []
        | Ok c ->
          let stats = Client.rpc c P.Stats in
          Client.close c;
          (match stats with
          | Ok j -> (
            match Tdmd_obs.Json.member "shards" j with
            | Some (Tdmd_obs.Json.List l) -> Tdmd_obs.Json.List l
            | _ -> Tdmd_obs.Json.List [])
          | Error _ -> Tdmd_obs.Json.List [])
      in
      Server.request_stop server;
      Server.wait server;
      Tdmd_server.Engine.close engine;
      rm_rf_rec dir;
      let errors = Array.fold_left ( + ) 0 errors in
      let samples =
        Array.of_list
          (List.filter
             (fun x -> not (Float.is_nan x))
             (Array.to_list latencies_ms))
      in
      let pct p =
        if Array.length samples = 0 then nan else Stats.percentile samples p
      in
      let throughput = float_of_int (total - errors) /. Float.max wall 1e-9 in
      if shards = 1 then base_rps := throughput;
      let speedup = throughput /. !base_rps in
      let shard_float get =
        match per_shard with
        | Tdmd_obs.Json.List (_ :: _ as l) ->
          let vs =
            List.filter_map
              (fun o ->
                match Tdmd_obs.Json.member get o with
                | Some (Tdmd_obs.Json.Float f) -> Some f
                | Some (Tdmd_obs.Json.Int i) -> Some (float_of_int i)
                | _ -> None)
              l
          in
          if vs = [] then None
          else Some (List.fold_left Float.max neg_infinity vs)
        | _ -> None
      in
      Tdmd_obs.Sink.emit sink
        (Tdmd_obs.Json.Obj
           [
             ("event", Tdmd_obs.Json.String "bench-serve-shards");
             ("shards", Tdmd_obs.Json.Int shards);
             ("clients", Tdmd_obs.Json.Int churn_clients);
             ("requests", Tdmd_obs.Json.Int total);
             ("errors", Tdmd_obs.Json.Int errors);
             ("wall_seconds", Tdmd_obs.Json.Float wall);
             ("throughput_rps", Tdmd_obs.Json.Float throughput);
             ("speedup_vs_one_shard", Tdmd_obs.Json.Float speedup);
             ("p50_ms", Tdmd_obs.Json.Float (pct 0.50));
             ("p95_ms", Tdmd_obs.Json.Float (pct 0.95));
             ("p99_ms", Tdmd_obs.Json.Float (pct 0.99));
             ("per_shard", per_shard);
           ]);
      Table.add_row shard_table
        [
          string_of_int shards;
          string_of_int total;
          string_of_int errors;
          Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.0f" throughput;
          Printf.sprintf "%.2fx" speedup;
          Printf.sprintf "%.2f" (pct 0.50);
          Printf.sprintf "%.2f" (pct 0.99);
          (match shard_float "fsync_batch_avg" with
          | Some f -> Printf.sprintf "%.1f" f
          | None -> "-");
          (match shard_float "queue_peak" with
          | Some f -> Printf.sprintf "%.0f" f
          | None -> "-");
        ])
    shard_levels;
  close_out oc;
  Table.print shard_table;
  Printf.printf "\nwrote %s (%d concurrency levels, %d shard levels)\n"
    serve_json_path (List.length levels)
    (List.length shard_levels)

(* ------------------------------------------------------------------ *)
(* Recover bench: WAL append cost per fsync policy, replay throughput  *)
(* ------------------------------------------------------------------ *)

(* For each fsync policy: drive a deterministic churn workload through
   a durable session, abandon it without closing (the crash), then time
   Session.recover — snapshot parse + full journal replay.  One
   JSON-lines record per policy lands in BENCH_recover.json (path
   overridable with TDMD_BENCH_RECOVER_JSON; TDMD_BENCH_RECOVER_QUICK=1
   shrinks the op count for CI smoke). *)
let recover_json_path =
  match Sys.getenv_opt "TDMD_BENCH_RECOVER_JSON" with
  | Some p -> p
  | None -> "BENCH_recover.json"

let recover_quick = Sys.getenv_opt "TDMD_BENCH_RECOVER_QUICK" <> None

let recover_bench () =
  let open Tdmd_prelude in
  let module S = Tdmd_server.Session in
  let module J = Tdmd_server.Journal in
  let n_vertices = 64 in
  let g = Tdmd_graph.Digraph.create n_vertices in
  for v = 0 to n_vertices - 2 do
    Tdmd_graph.Digraph.add_undirected g v (v + 1)
  done;
  let inst =
    Tdmd.Instance.make ~graph:g
      ~flows:[ Tdmd_flow.Flow.make ~id:0 ~rate:1 ~path:[ 0; 1; 2 ] ]
      ~lambda:0.5
  in
  let ops = if recover_quick then 300 else 3000 in
  let temp_dir () =
    let path = Filename.temp_file "tdmd-bench-wal" "" in
    Sys.remove path;
    path
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  (* Deterministic workload: arrivals on random line segments, one
     departure every third op. *)
  let drive session =
    let rng = Rng.create 99 in
    let live = ref [] in
    for i = 1 to ops do
      let req = Printf.sprintf "bench-%d" i in
      if i mod 3 = 0 && !live <> [] then begin
        let id = List.hd !live in
        live := List.tl !live;
        match S.depart session ~req id with
        | Ok _ -> ()
        | Error (c, m) -> failwith (Printf.sprintf "bench depart: %s %s" c m)
      end
      else begin
        let a = Rng.int rng (n_vertices - 2) in
        let b = a + 1 + Rng.int rng (min 6 (n_vertices - a - 1)) in
        let path = List.init (b - a + 1) (fun j -> a + j) in
        match S.arrive session ~req ~id:i ~rate:(1 + Rng.int rng 8) ~path () with
        | Ok _ -> live := !live @ [ i ]
        | Error (c, m) -> failwith (Printf.sprintf "bench arrive: %s %s" c m)
      end
    done
  in
  let oc = open_out recover_json_path in
  let sink = Tdmd_obs.Sink.of_channel oc in
  print_endline "== recover bench: WAL append + crash recovery ==\n";
  let table =
    Table.create
      [ "fsync"; "ops"; "append ops/s"; "journal KiB"; "recover (ms)";
        "replay ops/s"; "snapshot KiB" ]
  in
  List.iter
    (fun fsync ->
      let dir = temp_dir () in
      let cfg = S.durability ~fsync dir in
      let session =
        S.create
          ~config:
            { S.Config.default with S.Config.durability = Some cfg }
          inst
      in
      let t0 = Tdmd_obs.Clock.now_ns () in
      drive session;
      let append_s =
        Int64.to_float (Int64.sub (Tdmd_obs.Clock.now_ns ()) t0) /. 1e9
      in
      let journal_bytes =
        match List.assoc_opt "durability" (S.durability_stats session) with
        | Some j -> (
          match Tdmd_obs.Json.member "journal_bytes" j with
          | Some (Tdmd_obs.Json.Int b) -> b
          | _ -> 0)
        | None -> 0
      in
      (* Crash: abandon the session; its whole history is in the WAL. *)
      let t1 = Tdmd_obs.Clock.now_ns () in
      let recovered =
        match S.recover (S.durability ~fsync dir) with
        | Ok s -> s
        | Error msg -> failwith ("bench recover: " ^ msg)
      in
      let recover_s =
        Int64.to_float (Int64.sub (Tdmd_obs.Clock.now_ns ()) t1) /. 1e9
      in
      let replayed =
        Tdmd_obs.Telemetry.get_count
          (S.durability_telemetry recovered)
          "wal_replayed"
      in
      if replayed <> ops then
        failwith
          (Printf.sprintf "bench recover: replayed %d of %d ops" replayed ops);
      (* Clean close writes a snapshot: its size is the compaction
         payoff. *)
      S.close recovered;
      let snapshot_bytes =
        try (Unix.stat (S.snapshot_file cfg)).Unix.st_size
        with Unix.Unix_error _ | Sys_error _ -> 0
      in
      rm_rf dir;
      let policy = J.fsync_policy_to_string fsync in
      Tdmd_obs.Sink.emit sink
        (Tdmd_obs.Json.Obj
           [
             ("event", Tdmd_obs.Json.String "bench-recover");
             ("fsync", Tdmd_obs.Json.String policy);
             ("ops", Tdmd_obs.Json.Int ops);
             ("append_seconds", Tdmd_obs.Json.Float append_s);
             ( "append_ops_per_s",
               Tdmd_obs.Json.Float (float_of_int ops /. Float.max append_s 1e-9)
             );
             ("journal_bytes", Tdmd_obs.Json.Int journal_bytes);
             ("recover_seconds", Tdmd_obs.Json.Float recover_s);
             ("replayed", Tdmd_obs.Json.Int replayed);
             ( "replay_ops_per_s",
               Tdmd_obs.Json.Float
                 (float_of_int replayed /. Float.max recover_s 1e-9) );
             ("snapshot_bytes", Tdmd_obs.Json.Int snapshot_bytes);
           ]);
      Table.add_row table
        [
          policy;
          string_of_int ops;
          Printf.sprintf "%.0f" (float_of_int ops /. Float.max append_s 1e-9);
          Printf.sprintf "%.1f" (float_of_int journal_bytes /. 1024.0);
          Printf.sprintf "%.2f" (recover_s *. 1000.0);
          Printf.sprintf "%.0f" (float_of_int replayed /. Float.max recover_s 1e-9);
          Printf.sprintf "%.1f" (float_of_int snapshot_bytes /. 1024.0);
        ])
    [ J.Never; J.Every_n 16; J.Always ];
  close_out oc;
  Table.print table;
  Printf.printf "\nwrote %s (3 fsync policies)\n" recover_json_path

(* ------------------------------------------------------------------ *)
(* Churn bench: bandwidth vs migrations across rebalance budgets       *)
(* ------------------------------------------------------------------ *)

(* One Temporal flow timeline replayed under the whole solver family:
   pin-only (migration budget 0, the historical engine), incremental-lrs
   at several finite budgets, and recompute-from-scratch GTP after every
   event as the quality ceiling.  Each variant yields one JSON-lines
   record in BENCH_churn.json (path overridable with
   TDMD_BENCH_CHURN_JSON; TDMD_BENCH_CHURN_QUICK=1 shrinks the replay
   for CI smoke) — together they trace the bandwidth-vs-migrations
   Pareto curve.  Bandwidth is sampled after every event, so the mean
   rewards staying good during churn rather than ending well. *)
let churn_json_path =
  match Sys.getenv_opt "TDMD_BENCH_CHURN_JSON" with
  | Some p -> p
  | None -> "BENCH_churn.json"

let churn_quick = Sys.getenv_opt "TDMD_BENCH_CHURN_QUICK" <> None

let churn_bench () =
  let open Tdmd_prelude in
  print_endline "== churn bench: one timeline, the whole budget family ==\n";
  let n = if churn_quick then 24 else 48 in
  let k = if churn_quick then 4 else 6 in
  let horizon = if churn_quick then 25.0 else 120.0 in
  let budgets = if churn_quick then [ 2 ] else [ 1; 2; 4; 8 ] in
  let lambda = 0.5 in
  let rng = Rng.create 4242 in
  let g = Tdmd_topo.Topo_general.erdos_renyi rng n ~p:0.15 in
  let draw_flow rng id =
    let rec pick attempts =
      if attempts > 100 then failwith "churn bench: cannot draw a flow path"
      else begin
        let src = Rng.int rng n and dst = Rng.int rng n in
        if src = dst then pick (attempts + 1)
        else
          match Tdmd_graph.Bfs.shortest_path g ~src ~dst with
          | Some path when List.length path > 1 ->
            Tdmd_flow.Flow.make ~id ~rate:(Rng.int_in rng 1 8) ~path
          | _ -> pick (attempts + 1)
      end
    in
    pick 0
  in
  let timeline =
    Tdmd_traffic.Temporal.generate rng ~horizon ~mean_interarrival:0.5
      ~mean_lifetime:8.0 ~draw_flow
  in
  let events = List.length timeline in
  (* Replay under an (apply, sample) pair shared by every variant:
     [apply] consumes one event, [sample] reads the bandwidth of the
     deployment it left behind. *)
  let replay ~apply ~sample =
    let sum = ref 0.0 in
    let (), seconds =
      Timer.time (fun () ->
          List.iter
            (fun (_, ev) ->
              apply ev;
              sum := !sum +. sample ())
            timeline)
    in
    (!sum /. float_of_int (max 1 events), sample (), seconds)
  in
  let oc = open_out churn_json_path in
  let sink = Tdmd_obs.Sink.of_channel oc in
  let table =
    Table.create
      [ "variant"; "budget/event"; "mean bw"; "final bw"; "moves";
        "rebalance moves"; "events/s" ]
  in
  let emit ~variant ~budget ~mean_bw ~final_bw ~moves ~rebalance_moves
      ~seconds =
    Tdmd_obs.Sink.emit sink
      (Tdmd_obs.Json.Obj
         [
           ("event", Tdmd_obs.Json.String "bench-churn");
           ("variant", Tdmd_obs.Json.String variant);
           ("budget_per_event", Tdmd_obs.Json.Int budget);
           ("vertices", Tdmd_obs.Json.Int n);
           ("k", Tdmd_obs.Json.Int k);
           ("lambda", Tdmd_obs.Json.Float lambda);
           ("events", Tdmd_obs.Json.Int events);
           ("mean_bandwidth", Tdmd_obs.Json.Float mean_bw);
           ("final_bandwidth", Tdmd_obs.Json.Float final_bw);
           ("moves", Tdmd_obs.Json.Int moves);
           ("rebalance_moves", Tdmd_obs.Json.Int rebalance_moves);
           ("seconds", Tdmd_obs.Json.Float seconds);
           ( "events_per_s",
             Tdmd_obs.Json.Float
               (float_of_int events /. Float.max seconds 1e-9) );
         ]);
    Table.add_row table
      [
        variant;
        string_of_int budget;
        Printf.sprintf "%.2f" mean_bw;
        Printf.sprintf "%.2f" final_bw;
        string_of_int moves;
        string_of_int rebalance_moves;
        Printf.sprintf "%.0f" (float_of_int events /. Float.max seconds 1e-9);
      ]
  in
  let incremental ~variant ~migration_budget =
    let t = Tdmd.Incremental.create ~migration_budget ~graph:g ~lambda ~k () in
    let apply = function
      | Tdmd_traffic.Temporal.Arrival f -> Tdmd.Incremental.arrive t f
      | Tdmd_traffic.Temporal.Departure id -> Tdmd.Incremental.depart t id
    in
    let mean_bw, final_bw, seconds =
      replay ~apply ~sample:(fun () -> Tdmd.Incremental.bandwidth t)
    in
    emit ~variant ~budget:migration_budget ~mean_bw ~final_bw
      ~moves:(Tdmd.Incremental.moves t)
      ~rebalance_moves:(Tdmd.Incremental.rebalance_moves t)
      ~seconds;
    mean_bw
  in
  let pin_mean = incremental ~variant:"pin-only" ~migration_budget:0 in
  let lrs_means =
    List.map
      (fun b ->
        incremental
          ~variant:(Printf.sprintf "incremental-lrs(%d)" b)
          ~migration_budget:b)
      budgets
  in
  (* Recompute-from-scratch ceiling: a fresh GTP after every event;
     migrations are the symmetric difference between consecutive
     deployments. *)
  let scratch_mean =
    let live = Hashtbl.create 64 in
    let order = ref [] in
    let placement = ref Tdmd.Placement.empty in
    let moves = ref 0 in
    let bw = ref 0.0 in
    let apply ev =
      (match ev with
      | Tdmd_traffic.Temporal.Arrival f ->
        Hashtbl.replace live f.Tdmd_flow.Flow.id f;
        order := f.Tdmd_flow.Flow.id :: !order
      | Tdmd_traffic.Temporal.Departure id ->
        Hashtbl.remove live id;
        order := List.filter (fun i -> i <> id) !order);
      (* [order] is newest-first, so [rev_map] restores arrival order. *)
      let flows = List.rev_map (fun id -> Hashtbl.find live id) !order in
      let inst = Tdmd.Instance.make ~graph:g ~flows ~lambda in
      let report = Tdmd.Gtp.run ~budget:k inst in
      let next = report.Tdmd.Gtp.placement in
      let diff a b =
        List.length
          (List.filter
             (fun v -> not (Tdmd.Placement.mem b v))
             (Tdmd.Placement.to_list a))
      in
      moves := !moves + diff next !placement + diff !placement next;
      placement := next;
      bw := report.Tdmd.Gtp.bandwidth
    in
    let mean_bw, final_bw, seconds =
      replay ~apply ~sample:(fun () -> !bw)
    in
    emit ~variant:"scratch-gtp" ~budget:(2 * k) ~mean_bw ~final_bw
      ~moves:!moves ~rebalance_moves:0 ~seconds;
    mean_bw
  in
  close_out oc;
  Table.print table;
  Printf.printf "\nwrote %s (%d variants, %d events)\n" churn_json_path
    (2 + List.length budgets)
    events;
  (* The whole point of the budget family: finite budgets must not lose
     to pin-only, and the scratch ceiling bounds them below. *)
  List.iter
    (fun lrs ->
      if lrs > pin_mean +. 1e-9 then
        failwith "churn bench: a finite budget lost to pin-only")
    lrs_means;
  if scratch_mean > pin_mean +. 1e-9 then
    failwith "churn bench: scratch GTP lost to pin-only"

(* ------------------------------------------------------------------ *)
(* Portfolio bench: solution quality vs step budget                    *)
(* ------------------------------------------------------------------ *)

(* Races the anytime portfolio at a family of step budgets on one
   general instance and sweeps the rest of the registry as the
   reference, comparing on the exact-integer diminished volume.  The
   anneal schedule is budget-independent (fixed half-life), so a larger
   budget replays a smaller one's prefix and the curve must be
   monotone; the run fails loudly if it is not, or if the full-budget
   portfolio answers worse than the best reference solver.  JSON lines
   go to BENCH_portfolio.json (overridable with
   TDMD_BENCH_PORTFOLIO_JSON; TDMD_BENCH_PORTFOLIO_QUICK=1 shrinks the
   instance and budget family for CI). *)
let portfolio_json_path =
  match Sys.getenv_opt "TDMD_BENCH_PORTFOLIO_JSON" with
  | Some p -> p
  | None -> "BENCH_portfolio.json"

let portfolio_quick = Sys.getenv_opt "TDMD_BENCH_PORTFOLIO_QUICK" <> None

let portfolio_bench () =
  let open Tdmd_prelude in
  let module Pf = Tdmd_portfolio.Portfolio in
  print_endline "== portfolio bench: quality vs step budget ==\n";
  let scenario =
    if portfolio_quick then { Scenario.default_general with Scenario.size = 22 }
    else { Scenario.default_general with Scenario.size = 40 }
  in
  let k = scenario.Scenario.k in
  let inst = Scenario.build_general (Rng.create 4242) scenario in
  let budgets =
    if portfolio_quick then [ 50; 400 ] else [ 50; 200; 800; 3200; 12800 ]
  in
  let volume_of placement =
    Tdmd.Inc_oracle.diminished_volume (Tdmd.Inc_oracle.of_list inst placement)
  in
  let oc = open_out portfolio_json_path in
  let sink = Tdmd_obs.Sink.of_channel oc in
  let base_fields =
    [
      ("vertices", Tdmd_obs.Json.Int scenario.Scenario.size);
      ("k", Tdmd_obs.Json.Int k);
      ("lambda", Tdmd_obs.Json.Float scenario.Scenario.lambda);
    ]
  in
  (* Reference sweep: every registered general solver except the
     portfolio's own members (and brute force, which cannot enumerate
     at this size). *)
  let excluded = [ "portfolio"; "anneal"; "genetic"; "brute" ] in
  let reference =
    List.filter_map
      (fun (name, solve) ->
        if List.mem name excluded then None
        else begin
          let o, seconds =
            Timer.time (fun () -> solve ~rng:(Rng.create 1000) ~k inst)
          in
          let volume =
            volume_of (Tdmd.Placement.to_list o.Tdmd.Solver_intf.placement)
          in
          Tdmd_obs.Sink.emit sink
            (Tdmd_obs.Json.Obj
               (("event", Tdmd_obs.Json.String "bench-portfolio-reference")
                :: ("solver", Tdmd_obs.Json.String name)
                :: ("volume", Tdmd_obs.Json.Int volume)
                :: ( "bandwidth",
                     Tdmd_obs.Json.Float o.Tdmd.Solver_intf.bandwidth )
                :: ("feasible", Tdmd_obs.Json.Bool o.Tdmd.Solver_intf.feasible)
                :: ("seconds", Tdmd_obs.Json.Float seconds)
                :: base_fields));
          if o.Tdmd.Solver_intf.feasible then Some (name, volume) else None
        end)
      (Tdmd.Solvers.general ())
  in
  let best_ref_name, best_ref =
    List.fold_left
      (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
      ("none", min_int) reference
  in
  let table =
    Table.create
      [ "budget"; "volume"; "bandwidth"; "member"; "improvements"; "seconds" ]
  in
  let points =
    List.map
      (fun steps ->
        let (best, improvements), seconds =
          Timer.time (fun () ->
              let t = Pf.start ~steps ~rng:(Rng.create 4242) ~k inst in
              let b = Pf.await t in
              (b, Pf.improvements t))
        in
        match best with
        | None -> failwith "portfolio bench: no feasible answer published"
        | Some b ->
          Tdmd_obs.Sink.emit sink
            (Tdmd_obs.Json.Obj
               (("event", Tdmd_obs.Json.String "bench-portfolio")
                :: ("budget_steps", Tdmd_obs.Json.Int steps)
                :: ("volume", Tdmd_obs.Json.Int b.Pf.volume)
                :: ("bandwidth", Tdmd_obs.Json.Float b.Pf.bandwidth)
                :: ("member", Tdmd_obs.Json.String b.Pf.member)
                :: ("improvements", Tdmd_obs.Json.Int improvements)
                :: ("seconds", Tdmd_obs.Json.Float seconds)
                :: base_fields));
          Table.add_row table
            [
              string_of_int steps;
              string_of_int b.Pf.volume;
              Printf.sprintf "%.2f" b.Pf.bandwidth;
              b.Pf.member;
              string_of_int improvements;
              Printf.sprintf "%.3f" seconds;
            ];
          (steps, b.Pf.volume))
      budgets
  in
  close_out oc;
  Table.print table;
  Printf.printf "\nbest reference: %s (volume %d)\nwrote %s (%d budgets, %d references)\n"
    best_ref_name best_ref portfolio_json_path (List.length budgets)
    (List.length reference);
  ignore
    (List.fold_left
       (fun prev (steps, v) ->
         if v < prev then
           failwith
             (Printf.sprintf
                "portfolio bench: volume worsened at budget %d (%d < %d)" steps
                v prev);
         v)
       min_int points);
  let _, full = List.nth points (List.length points - 1) in
  if full < best_ref then
    failwith
      (Printf.sprintf
         "portfolio bench: full budget (volume %d) lost to %s (volume %d)"
         full best_ref_name best_ref)

(* ------------------------------------------------------------------ *)
(* chaos: randomized soak of the supervised sharded server             *)
(* ------------------------------------------------------------------ *)

(* Drives thousands of mixed ops from concurrent retrying clients
   through `tdmd serve` (4 durable shards) under a seeded probabilistic
   fault schedule — shard kills mid-batch ([die@shard.apply]), kills in
   the exactly-once window ([die@shard.apply.post]), injected apply
   latency, WAL write failures — plus a vandal thread feeding the
   listener garbage frames, then verifies the failure-semantics
   invariants:

     1. no acked op lost: every acked arrive (not later departed) is in
        the final live flow set; every acked depart's flow is not;
     2. exactly once: every idempotency id appears at most once across
        the shard journals, and every acked op's id exactly once —
        retries after a mid-op kill were deduplicated, not re-applied;
     3. oracle replay: each shard's final in-memory state is
        bit-identical to a fresh fault-free session replaying that
        shard's journal (the acked timeline), and a full Engine.recover
        of the directory reproduces the live engine fingerprint.

   One JSON-lines record per seed lands in BENCH_chaos.json (path
   overridable with TDMD_BENCH_CHAOS_JSON).  TDMD_BENCH_CHAOS_QUICK=1
   shrinks to one seed for CI smoke; TDMD_CHAOS_SEED / TDMD_CHAOS_OPS
   override the seed list / per-seed op count. *)
let chaos_json_path =
  match Sys.getenv_opt "TDMD_BENCH_CHAOS_JSON" with
  | Some p -> p
  | None -> "BENCH_chaos.json"

let chaos_quick = Sys.getenv_opt "TDMD_BENCH_CHAOS_QUICK" <> None

let chaos_rm_rf root =
  let rec go dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.is_directory p then go p else Sys.remove p)
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  go root

(* The same substrate every engine test uses: a 24-vertex line (every
   contiguous run is a valid path) cut into 4 shards. *)
let chaos_instance () =
  let n = 24 in
  let g = Tdmd_graph.Digraph.create n in
  for v = 0 to n - 2 do
    Tdmd_graph.Digraph.add_undirected g v (v + 1)
  done;
  let inst =
    Tdmd.Instance.make ~graph:g
      ~flows:[ Tdmd_flow.Flow.make ~id:0 ~rate:1 ~path:[ 0; 1; 2 ] ]
      ~lambda:0.5
  in
  let partition =
    Tdmd_topo.Partition.make ~seeds:[ 3; 9; 15; 21 ] g ~shards:4
  in
  (inst, partition)

(* Per-worker op log, merged after the soak for the invariant checks. *)
type chaos_worker = {
  mutable arrives_acked : (int * string) list;  (* flow, req *)
  mutable departs_acked : (int * string) list;
  mutable arrives_unknown : (int * string) list;
      (* retry budget exhausted / definitive "internal": may or may not
         have been applied *)
  mutable departs_unknown : int list;
  mutable own_live : (int * string) list;  (* acked arrivals not yet departed *)
  mutable conflicts : int;
  mutable conflict_log : (string * int * string) list;  (* kind, flow, req *)
  mutable degraded : int;
  mutable exhausted : int;
}

let chaos_seed_run ~seed ~total_ops =
  let open Tdmd_prelude in
  let module Server = Tdmd_server.Server in
  let module Client = Tdmd_server.Client in
  let module P = Tdmd_server.Protocol in
  let module Session = Tdmd_server.Session in
  let module Engine = Tdmd_server.Engine in
  let module Shard = Tdmd_server.Shard in
  let module Journal = Tdmd_server.Journal in
  let module Faults = Tdmd_server.Faults in
  let module Supervisor = Tdmd_server.Supervisor in
  let module Json = Tdmd_obs.Json in
  let inst, partition = chaos_instance () in
  let root = Filename.temp_file "tdmd-chaos" "" in
  Sys.remove root;
  let faults =
    match
      Faults.of_spec
        (Printf.sprintf
           "die@shard.apply:p=0.012;die@shard.apply.post:p=0.006;delay@shard.apply:p=0.03;fail@wal.write.fail:p=0.008;seed=%d"
           seed)
    with
    | Ok f -> f
    | Error msg -> failwith ("chaos: bad fault spec: " ^ msg)
  in
  let config =
    {
      Session.Config.default with
      Session.Config.churn_k = 2;
      Session.Config.durability =
        Some
          (Session.durability ~fsync:Journal.Always ~snapshot_every:0 ~faults
             root);
    }
  in
  let supervisor =
    Supervisor.config ~max_failures:8
      ~backoff:
        (Backoff.policy ~base:0.02 ~cap:0.1 ~max_attempts:0 ~budget:0.0 ())
      ~retry_after_ms:20 ()
  in
  let engine =
    Engine.create ~supervisor ~degraded_reads:true ~config ~shards:4 ~partition
      (Engine.General inst)
  in
  let sock = Filename.temp_file "tdmd-chaos" ".sock" in
  Sys.remove sock;
  let addr = P.Unix_sock sock in
  let server =
    Server.start
      {
        Server.addr;
        domains = 4;
        queue_capacity = 256;
        default_deadline_ms = None;
        metrics_out = None;
      }
      engine
  in
  let workers = 8 in
  let per_worker = max 1 (total_ops / workers) in
  let acked = Atomic.make 0 in
  let results =
    Array.init workers (fun _ ->
        {
          arrives_acked = [];
          departs_acked = [];
          arrives_unknown = [];
          departs_unknown = [];
          own_live = [];
          conflicts = 0;
          conflict_log = [];
          degraded = 0;
          exhausted = 0;
        })
  in
  let retry_policy =
    Backoff.policy ~base:0.005 ~cap:0.05 ~max_attempts:0 ~budget:30.0 ()
  in
  let is_acked resp = Json.member "ok" resp = Some (Json.Bool true) in
  let code_of resp =
    match Json.member "code" resp with Some (Json.String c) -> c | _ -> ""
  in
  let worker w () =
    let rng = Rng.create ((seed * 1000) + w) in
    let res = results.(w) in
    match Client.connect_retry ~policy:retry_policy ~seed:((seed * 31) + w) addr with
    | Error msg -> failwith ("chaos worker connect: " ^ msg)
    | Ok c ->
      let next_flow = ref 0 in
      for i = 0 to per_worker - 1 do
        let req = Printf.sprintf "s%d.w%d.%d" seed w i in
        let r = Rng.int rng 100 in
        let mutate kind flow request =
          match Client.rpc_retry c ~req ~policy:retry_policy request with
          | Ok resp when is_acked resp -> (
            Atomic.incr acked;
            match kind with
            | `Arrive ->
              res.arrives_acked <- (flow, req) :: res.arrives_acked;
              res.own_live <- (flow, req) :: res.own_live
            | `Depart ->
              res.departs_acked <- (flow, req) :: res.departs_acked;
              res.own_live <- List.filter (fun (f, _) -> f <> flow) res.own_live)
          | Ok resp -> (
            (* Definitive refusal.  "conflict" would mean exactly-once
               was violated (our id spaces are disjoint); "internal" is
               an injected WAL failure whose outcome is unknown. *)
            if code_of resp = "conflict" then begin
              res.conflicts <- res.conflicts + 1;
              res.conflict_log <-
                ( (match kind with `Arrive -> "arrive" | `Depart -> "depart"),
                  flow, req )
                :: res.conflict_log
            end;
            match kind with
            | `Arrive ->
              res.arrives_unknown <- (flow, req) :: res.arrives_unknown
            | `Depart ->
              res.departs_unknown <- flow :: res.departs_unknown;
              res.own_live <- List.filter (fun (f, _) -> f <> flow) res.own_live)
          | Error msg -> (
            if Client.budget_exhausted msg then
              res.exhausted <- res.exhausted + 1;
            match kind with
            | `Arrive ->
              res.arrives_unknown <- (flow, req) :: res.arrives_unknown
            | `Depart ->
              res.departs_unknown <- flow :: res.departs_unknown;
              res.own_live <- List.filter (fun (f, _) -> f <> flow) res.own_live)
        in
        if r < 40 || (r < 70 && res.own_live = []) then begin
          let flow = 1_000_000 + (w * 100_000) + !next_flow in
          incr next_flow;
          let a = Rng.int rng 23 in
          let b = min 23 (a + 1 + Rng.int rng 5) in
          let path = List.init (b - a + 1) (fun k -> a + k) in
          mutate `Arrive flow (P.Arrive { id = flow; rate = 1 + Rng.int rng 4; path })
        end
        else if r < 70 then begin
          let flow, _ =
            List.nth res.own_live (Rng.int rng (List.length res.own_live))
          in
          mutate `Depart flow (P.Depart flow)
        end
        else if r < 85 then begin
          match
            Client.rpc_retry c ~policy:retry_policy
              (P.Solve { algo = "gtp"; k = 2; seed = i; target = P.Live })
          with
          | Ok resp ->
            if is_acked resp then Atomic.incr acked;
            if Json.member "degraded" resp = Some (Json.Bool true) then
              res.degraded <- res.degraded + 1
          | Error _ -> ()
        end
        else begin
          let request = if r < 95 then P.Stats else P.Health in
          match Client.rpc_retry c ~policy:retry_policy request with
          | Ok resp ->
            if is_acked resp then Atomic.incr acked;
            if Json.member "degraded" resp = Some (Json.Bool true) then
              res.degraded <- res.degraded + 1
          | Error _ -> ()
        end
      done;
      Client.close c
  in
  (* Vandal: feeds the listener garbage and half-frames, then vanishes
     without reading — socket-level chaos the reader threads must absorb
     without disturbing anyone else's connection. *)
  let stop = Atomic.make false in
  let vandal_hits = ref 0 in
  let vandal () =
    while not (Atomic.get stop) do
      (match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ -> ()
      | fd ->
        (try
           Unix.connect fd (P.sockaddr addr);
           let junk =
             if !vandal_hits mod 2 = 0 then "\xff\xff\xff\xff\x00garbage"
             else "\x00\x00\x00\x08{\"op\":"  (* truncated frame *)
           in
           ignore (Unix.write_substring fd junk 0 (String.length junk));
           incr vandal_hits
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ()));
      Thread.delay 0.02
    done
  in
  (* Probe: polls the always-inline health RPC and measures whether the
     rest of the fleet keeps acking while some shard is recovering. *)
  let recovering_pairs = ref 0 in
  let acks_during_recovery = ref 0 in
  let recovering_polls = ref 0 in
  let probe () =
    match Client.connect_retry ~policy:retry_policy addr with
    | Error _ -> ()
    | Ok c ->
      let prev_recovering = ref false in
      let prev_acked = ref (Atomic.get acked) in
      while not (Atomic.get stop) do
        (match Client.rpc_retry c ~policy:retry_policy P.Health with
        | Ok resp ->
          let recovering =
            match Json.member "shards" resp with
            | Some (Json.List shards) ->
              List.exists
                (fun s ->
                  Json.member "state" s = Some (Json.String "recovering"))
                shards
            | _ -> false
          in
          let now = Atomic.get acked in
          if recovering then incr recovering_polls;
          if recovering && !prev_recovering then begin
            incr recovering_pairs;
            acks_during_recovery := !acks_during_recovery + (now - !prev_acked)
          end;
          prev_recovering := recovering;
          prev_acked := now
        | Error _ -> ());
        Thread.delay 0.004
      done;
      Client.close c
  in
  let t0 = Tdmd_obs.Clock.now_ns () in
  let vandal_t = Thread.create vandal () in
  let probe_t = Thread.create probe () in
  let threads = List.init workers (fun w -> Thread.create (worker w) ()) in
  List.iter Thread.join threads;
  Atomic.set stop true;
  Thread.join vandal_t;
  Thread.join probe_t;
  Server.request_stop server;
  Server.wait server;
  let wall = Int64.to_float (Int64.sub (Tdmd_obs.Clock.now_ns ()) t0) /. 1e9 in
  (* Let in-flight recoveries finish before reading the final state. *)
  let sup = Engine.supervisor engine in
  let deadline = Unix.gettimeofday () +. 15.0 in
  while
    (not
       (Array.for_all
          (fun h -> h.Supervisor.state <> Supervisor.Recovering)
          (Supervisor.health sup)))
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  let health = Supervisor.health sup in
  Array.iteri
    (fun i h ->
      if h.Supervisor.state <> Supervisor.Serving then
        failwith
          (Printf.sprintf "chaos seed %d: shard %d finished %s" seed i
             (Supervisor.state_to_string h.Supervisor.state)))
    health;
  let restarts =
    Array.fold_left (fun acc h -> acc + h.Supervisor.restarts) 0 health
  in
  let trips =
    Array.fold_left (fun acc h -> acc + h.Supervisor.breaker_trips) 0 health
  in
  if trips > 0 then
    failwith (Printf.sprintf "chaos seed %d: circuit breaker tripped" seed);
  (* ---- gather the op log ---- *)
  let conflicts = Array.fold_left (fun a r -> a + r.conflicts) 0 results in
  let arrives_acked =
    Array.to_list results |> List.concat_map (fun r -> r.arrives_acked)
  in
  let departs_acked =
    Array.to_list results |> List.concat_map (fun r -> r.departs_acked)
  in
  let arrives_unknown =
    Array.to_list results |> List.concat_map (fun r -> r.arrives_unknown)
  in
  let departs_unknown =
    Array.to_list results |> List.concat_map (fun r -> r.departs_unknown)
  in
  let acked_total = Atomic.get acked in
  (* ---- invariant 1: no acked op lost ---- *)
  let live_set = Hashtbl.create 1024 in
  for i = 0 to Engine.shard_count engine - 1 do
    List.iter
      (fun (f : Tdmd_flow.Flow.t) -> Hashtbl.replace live_set f.Tdmd_flow.Flow.id ())
      (Session.live_flows (Shard.session (Engine.shard engine i)))
  done;
  let departed = Hashtbl.create 256 in
  List.iter (fun (f, _) -> Hashtbl.replace departed f ()) departs_acked;
  let depart_unknown = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace depart_unknown f ()) departs_unknown;
  List.iter
    (fun (flow, req) ->
      if Hashtbl.mem departed flow then begin
        if Hashtbl.mem live_set flow then
          failwith
            (Printf.sprintf
               "chaos seed %d: flow %d still live after an acked depart" seed
               flow)
      end
      else if not (Hashtbl.mem depart_unknown flow) then
        if not (Hashtbl.mem live_set flow) then
          failwith
            (Printf.sprintf
               "chaos seed %d: acked arrive %s (flow %d) lost — not in the \
                final live set"
               seed req flow))
    arrives_acked;
  (* No phantom flows either: everything live was at least attempted. *)
  let attempted = Hashtbl.create 1024 in
  List.iter (fun (f, _) -> Hashtbl.replace attempted f ()) arrives_acked;
  List.iter (fun (f, _) -> Hashtbl.replace attempted f ()) arrives_unknown;
  Hashtbl.iter
    (fun f () ->
      if f <> 0 && not (Hashtbl.mem attempted f) then
        failwith (Printf.sprintf "chaos seed %d: phantom live flow %d" seed f))
    live_set;
  (* ---- invariant 2: exactly once across the shard journals ---- *)
  let journal_ops_of_shard i =
    let dir = Filename.concat root (Printf.sprintf "shard-%d" i) in
    let segments =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 8
             && String.sub f 0 8 = "journal-"
             && Filename.check_suffix f ".wal")
    in
    match segments with
    | [ seg ] -> (
      match Journal.replay (Filename.concat dir seg) with
      | Ok (ops, 0) -> ops
      | Ok (_, torn) ->
        failwith
          (Printf.sprintf "chaos seed %d: shard %d journal has %d torn bytes"
             seed i torn)
      | Error msg ->
        failwith (Printf.sprintf "chaos seed %d: shard %d replay: %s" seed i msg))
    | segs ->
      failwith
        (Printf.sprintf "chaos seed %d: shard %d has %d journal segments" seed i
           (List.length segs))
  in
  let shard_ops = List.init 4 journal_ops_of_shard in
  if conflicts > 0 then begin
    Array.iter
      (fun r ->
        List.iter
          (fun (kind, flow, req) ->
            Printf.eprintf "conflict: %s flow %d req %s\n" kind flow req;
            List.iteri
              (fun i ops ->
                List.iter
                  (fun op ->
                    match op with
                    | Journal.Arrive { id; req = r; _ } when id = flow ->
                      Printf.eprintf "  shard %d journal: arrive id=%d req=%s\n"
                        i id (Option.value ~default:"-" r)
                    | Journal.Depart { flow_id; req = r } when flow_id = flow ->
                      Printf.eprintf "  shard %d journal: depart id=%d req=%s\n"
                        i flow_id (Option.value ~default:"-" r)
                    | _ -> ())
                  ops)
              shard_ops)
          r.conflict_log)
      results;
    failwith
      (Printf.sprintf
         "chaos seed %d: %d conflict replies — an op was applied twice or a \
          flow lost"
         seed conflicts)
  end;
  let req_counts = Hashtbl.create 4096 in
  let count_req = function
    | Some r ->
      Hashtbl.replace req_counts r
        (1 + Option.value ~default:0 (Hashtbl.find_opt req_counts r))
    | None -> ()
  in
  List.iter
    (List.iter (function
      | Journal.Arrive { req; _ } | Journal.Depart { req; _ }
      | Journal.Rebalance { req; _ } ->
        count_req req
      | Journal.Cross_prepare _ | Journal.Cross_done _ ->
        failwith
          (Printf.sprintf "chaos seed %d: cross record in a shard journal" seed)))
    shard_ops;
  Hashtbl.iter
    (fun r n ->
      if n > 1 then
        failwith
          (Printf.sprintf "chaos seed %d: req %s applied %d times" seed r n))
    req_counts;
  List.iter
    (fun (_, req) ->
      if Hashtbl.find_opt req_counts req <> Some 1 then
        failwith
          (Printf.sprintf "chaos seed %d: acked arrive %s not journaled" seed req))
    arrives_acked;
  List.iter
    (fun (_, req) ->
      if Hashtbl.find_opt req_counts req <> Some 1 then
        failwith
          (Printf.sprintf "chaos seed %d: acked depart %s not journaled" seed req))
    departs_acked;
  (* ---- invariant 3: bit-identical to the fault-free oracle ---- *)
  let oracle_config = { config with Session.Config.durability = None } in
  List.iteri
    (fun i ops ->
      let oracle = Session.create ~config:oracle_config inst in
      List.iter
        (fun op ->
          let bop =
            match op with
            | Journal.Arrive { id; rate; path; req } ->
              Session.Batch_arrive { req; id; rate; path }
            | Journal.Depart { flow_id; req } ->
              Session.Batch_depart { req; flow_id }
            | Journal.Rebalance { budget; req } ->
              Session.Batch_rebalance { req; budget = Some budget }
            | Journal.Cross_prepare _ | Journal.Cross_done _ -> assert false
          in
          match Session.apply_batch oracle [ bop ] with
          | [ Ok _ ] -> ()
          | [ Error (code, msg) ] ->
            failwith
              (Printf.sprintf "chaos seed %d: oracle refused a journaled op: %s %s"
                 seed code msg)
          | _ -> assert false)
        ops;
      let live =
        Json.to_string
          (Json.Obj
             (Session.churn_stats (Shard.session (Engine.shard engine i))))
      in
      let replayed = Json.to_string (Json.Obj (Session.churn_stats oracle)) in
      if live <> replayed then
        failwith
          (Printf.sprintf
             "chaos seed %d: shard %d diverged from its oracle replay\n\
              live:   %s\n\
              oracle: %s"
             seed i live replayed);
      Session.close oracle)
    shard_ops;
  (* ---- and the directory as a whole recovers to the same engine ---- *)
  let strip_timing = function
    | Ok (Json.Obj fields) ->
      Ok (Json.Obj (List.filter (fun (k, _) -> k <> "telemetry") fields))
    | r -> r
  in
  let reply_str = function
    | Ok j -> Json.to_string j
    | Error (c, m) -> Printf.sprintf "error %s: %s" c m
  in
  let fingerprint e =
    Json.to_string (Json.Obj (Engine.churn_stats e))
    ^ "|"
    ^ reply_str
        (strip_timing (Engine.solve e ~algo:"gtp" ~k:2 ~seed:5 ~target:P.Live))
  in
  let before = fingerprint engine in
  Engine.close engine;
  (match
     Engine.recover
       (Session.durability ~fsync:Journal.Always ~snapshot_every:0 root)
   with
  | Error msg -> failwith (Printf.sprintf "chaos seed %d: recover: %s" seed msg)
  | Ok recovered ->
    let after = fingerprint recovered in
    Engine.close recovered;
    if before <> after then
      failwith
        (Printf.sprintf
           "chaos seed %d: recovered engine differs from the live one\n\
            live:      %s\n\
            recovered: %s"
           seed before after));
  chaos_rm_rf root;
  (try Sys.remove sock with Sys_error _ -> ());
  let exhausted = Array.fold_left (fun a r -> a + r.exhausted) 0 results in
  let degraded = Array.fold_left (fun a r -> a + r.degraded) 0 results in
  ( wall,
    [
      ("event", Json.String "bench-chaos");
      ("seed", Json.Int seed);
      ("ops", Json.Int (workers * per_worker));
      ("acked", Json.Int acked_total);
      ("arrives_acked", Json.Int (List.length arrives_acked));
      ("departs_acked", Json.Int (List.length departs_acked));
      ("unknown_outcomes",
       Json.Int (List.length arrives_unknown + List.length departs_unknown));
      ("retry_budget_exhausted", Json.Int exhausted);
      ("restarts", Json.Int restarts);
      ("recovering_polls", Json.Int !recovering_polls);
      ("acks_during_recovery", Json.Int !acks_during_recovery);
      ("recovering_pairs", Json.Int !recovering_pairs);
      ("degraded_answers", Json.Int degraded);
      ("vandal_frames", Json.Int !vandal_hits);
      ("wall_seconds", Json.Float wall);
    ],
    restarts,
    (!recovering_pairs, !acks_during_recovery) )

let chaos_bench () =
  let open Tdmd_prelude in
  let module Json = Tdmd_obs.Json in
  let seeds =
    match Sys.getenv_opt "TDMD_CHAOS_SEED" with
    | Some s -> [ int_of_string s ]
    | None -> if chaos_quick then [ 1 ] else [ 1; 2; 3; 4; 5 ]
  in
  let total_ops =
    match Sys.getenv_opt "TDMD_CHAOS_OPS" with
    | Some s -> int_of_string s
    | None -> if chaos_quick then 400 else 2400
  in
  print_endline "== chaos soak: supervised shards under a seeded fault schedule ==\n";
  let oc = open_out chaos_json_path in
  let sink = Tdmd_obs.Sink.of_channel oc in
  let table =
    Table.create
      [ "seed"; "ops"; "acked"; "restarts"; "rec. acks"; "degraded"; "wall (s)" ]
  in
  let total_restarts = ref 0 in
  List.iter
    (fun seed ->
      let wall, fields, restarts, (pairs, rec_acks) =
        chaos_seed_run ~seed ~total_ops
      in
      total_restarts := !total_restarts + restarts;
      (* Healthy shards must keep answering while a peer recovers: when
         the probe caught recovery windows, acks advanced inside them. *)
      if (not chaos_quick) && pairs >= 5 && rec_acks = 0 then
        failwith
          (Printf.sprintf
             "chaos seed %d: fleet went silent during recovery (%d windows, 0 \
              acks)"
             seed pairs);
      Tdmd_obs.Sink.emit sink (Json.Obj fields);
      let get name =
        match List.assoc_opt name fields with
        | Some (Json.Int v) -> string_of_int v
        | _ -> "0"
      in
      Table.add_row table
        [
          string_of_int seed;
          get "ops";
          get "acked";
          get "restarts";
          get "acks_during_recovery";
          get "degraded_answers";
          Printf.sprintf "%.2f" wall;
        ])
    seeds;
  close_out oc;
  Table.print table;
  if (not chaos_quick) && !total_restarts = 0 then
    failwith
      "chaos: no supervised restart happened across any seed — the fault \
       schedule is not reaching the shards";
  Printf.printf "(json written to %s)\n%!" chaos_json_path

let run_all () =
  List.iter
    (fun (id, f) ->
      Printf.printf "\n";
      f ();
      ignore id)
    line_figures;
  print_newline ();
  micro ();
  print_newline ();
  solvers ();
  print_newline ();
  oracle_bench ();
  print_newline ();
  serve_bench ();
  print_newline ();
  recover_bench ();
  print_newline ();
  churn_bench ();
  print_newline ();
  portfolio_bench ();
  print_newline ();
  chaos_bench ();
  print_newline ();
  ablation ()

let () =
  match Sys.argv with
  | [| _ |] -> run_all ()
  | [| _; "micro" |] -> micro ()
  | [| _; "solvers" |] -> solvers ()
  | [| _; "oracle" |] -> oracle_bench ()
  | [| _; "serve" |] -> serve_bench ()
  | [| _; "recover" |] -> recover_bench ()
  | [| _; "churn-timeline" |] -> churn_bench ()
  | [| _; "portfolio" |] -> portfolio_bench ()
  | [| _; "chaos" |] -> chaos_bench ()
  | [| _; "ablation" |] -> ablation ()
  | [| _; fig |] -> (
    match List.assoc_opt fig line_figures with
    | Some f -> f ()
    | None ->
      Printf.eprintf
        "unknown target %s (expected fig8..fig17, micro, solvers, oracle, serve, recover, churn-timeline, portfolio, chaos, ablation)\n"
        fig;
      exit 1)
  | _ ->
    Printf.eprintf
      "usage: main.exe [fig8..fig17|micro|solvers|oracle|serve|recover|churn-timeline|portfolio|chaos|ablation]\n";
    exit 1
