(* Maintaining a deployment under flow churn.

   Static placement is solved per snapshot by the paper; in operation,
   flows arrive and depart continuously.  This example drives the
   incremental maintainer over a Poisson arrival/departure timeline on
   an Ark-like WAN and compares it, at every event, against solving the
   snapshot from scratch with GTP - plotting the classic
   quality-vs-churn trade-off.

   Run with:  dune exec examples/dynamic_flows.exe *)

open Tdmd_prelude
module Flow = Tdmd_flow.Flow

let () =
  let rng = Rng.create 314 in
  let ark = Tdmd_topo.Ark.generate rng ~n:40 in
  let graph, dests = Tdmd_topo.Ark.general_of rng ark ~size:26 in
  let dest_arr = Array.of_list dests in
  let n = Tdmd_graph.Digraph.vertex_count graph in
  let k = 6 in
  Printf.printf "WAN: %d sites, %d collectors, budget %d middleboxes (lambda 0.5)\n\n"
    n (Array.length dest_arr) k;

  let timeline =
    Tdmd_traffic.Temporal.generate rng ~horizon:40.0 ~mean_interarrival:1.2
      ~mean_lifetime:10.0 ~draw_flow:(fun rng id ->
        let rec draw () =
          let src = Rng.int rng n in
          let dst = Rng.choose rng dest_arr in
          if src = dst then draw ()
          else begin
            match Tdmd_graph.Bfs.shortest_path graph ~src ~dst with
            | Some path -> Flow.make ~id ~rate:(Rng.int_in rng 1 8) ~path
            | None -> draw ()
          end
        in
        draw ())
  in
  Printf.printf "timeline: %d events over 40 time units\n\n" (List.length timeline);

  let inc = Tdmd.Incremental.create ~graph ~lambda:0.5 ~k () in
  let t = Table.create [ "time"; "event"; "flows"; "b(maintained)"; "b(scratch GTP)"; "moves" ] in
  let scratch_total_moves = ref 0 in
  let last_scratch = ref Tdmd.Placement.empty in
  List.iter
    (fun (time, ev) ->
      let label =
        match ev with
        | Tdmd_traffic.Temporal.Arrival f ->
          Tdmd.Incremental.arrive inc f;
          Printf.sprintf "+f%d (r=%d)" f.Flow.id f.Flow.rate
        | Tdmd_traffic.Temporal.Departure id ->
          Tdmd.Incremental.depart inc id;
          Printf.sprintf "-f%d" id
      in
      let scratch = Tdmd.Gtp.run ~budget:k (Tdmd.Incremental.instance inc) in
      (* Count how much a naive re-solve would churn the deployment. *)
      let diff a b =
        List.length
          (List.filter
             (fun v -> not (Tdmd.Placement.mem b v))
             (Tdmd.Placement.to_list a))
      in
      scratch_total_moves :=
        !scratch_total_moves
        + diff scratch.Tdmd.Gtp.placement !last_scratch
        + diff !last_scratch scratch.Tdmd.Gtp.placement;
      last_scratch := scratch.Tdmd.Gtp.placement;
      Table.add_row t
        [
          Printf.sprintf "%.1f" time;
          label;
          string_of_int (List.length (Tdmd.Incremental.flows inc));
          Table.cell_float (Tdmd.Incremental.bandwidth inc);
          Table.cell_float scratch.Tdmd.Gtp.bandwidth;
          string_of_int (Tdmd.Incremental.moves inc);
        ])
    (Tdmd_prelude.Listx.take 18 timeline);
  Table.print t;
  Printf.printf
    "\nMaintained deployment: %d moves total; re-solving from scratch at every\n"
    (Tdmd.Incremental.moves inc);
  Printf.printf
    "event would have churned %d box moves for the bandwidth in column 5.\n"
    !scratch_total_moves
