(* Service chains: the generalisation the paper narrows from.

   An enterprise edge runs a DPI (samples traffic, lambda = 0.9) followed
   by a WAN optimizer (compresses, lambda = 0.4); every flow must cross
   both, in that order.  This example places chain instances on an
   Ark-like WAN with the greedy chain solver and contrasts the
   single-flow optimum (all stages at the source for diminishing chains)
   with what sharing under a budget forces.

   Run with:  dune exec examples/service_chain.exe *)

open Tdmd_prelude

let () =
  let spec = Tdmd.Chain.make_spec [ 0.9; 0.4 ] in

  (* Single-flow intuition first: positions for one 10-unit flow on an
     8-hop path. *)
  let positions, value = Tdmd.Chain.single_flow spec ~rate:10 ~hops:8 in
  Printf.printf "single 10-unit flow over 8 hops:\n";
  Printf.printf "  optimal stage offsets: %s -> consumption %g (unprocessed: 80)\n\n"
    (String.concat ", " (List.map string_of_int positions))
    value;

  (* Multi-flow shared placement under a budget. *)
  let rng = Rng.create 2718 in
  let ark = Tdmd_topo.Ark.generate rng ~n:36 in
  let graph, dests = Tdmd_topo.Ark.general_of rng ark ~size:24 in
  let flows =
    Tdmd_traffic.Workload.gravity_flows rng graph ~dests
      ~rates:(Tdmd_traffic.Rate_dist.Caida_like { r_max = 20 })
      ~density:0.4 ~link_capacity:40 ()
  in
  let inst = Tdmd.Instance.make ~graph ~flows ~lambda:0.5 in
  Printf.printf "WAN: %d sites, %d flows; chain = [DPI 0.9; WANopt 0.4]\n\n"
    (Tdmd_graph.Digraph.vertex_count graph)
    (List.length flows);
  let volume = float_of_int (Tdmd.Instance.total_path_volume inst) in
  let t = Table.create [ "budget k"; "bandwidth"; "saved"; "instances (vertex:type)" ] in
  List.iter
    (fun k ->
      let r = Tdmd.Chain.greedy ~k spec inst in
      Table.add_row t
        [
          string_of_int k;
          Table.cell_float r.Tdmd.Chain.bandwidth;
          Printf.sprintf "%.1f%%"
            (100.0 *. (1.0 -. (r.Tdmd.Chain.bandwidth /. volume)));
          String.concat " "
            (List.map (fun (v, ty) -> Printf.sprintf "%d:%d" v ty)
               r.Tdmd.Chain.deployment)
          ^ (if r.Tdmd.Chain.feasible then "" else "  (incomplete chains)");
        ])
    [ 2; 4; 6; 10 ];
  Table.print t;
  Printf.printf
    "\nThe greedy co-locates both stages at hub sites (a flow only benefits\n";
  Printf.printf
    "from the compressor after its DPI stage, so instances pair up), and\n";
  Printf.printf
    "small budgets leave tail flows with incomplete chains - the coverage\n";
  Printf.printf "pressure that motivates the paper's feasibility analysis.\n"
