(* tdmd-cli: generate TDMD instances and solve them from the command
   line.

     tdmd-cli solve --topology tree --size 22 --k 8 --algo dp
     tdmd-cli solve --topology general --size 30 --k 10 --algo gtp --lambda 0.2
     tdmd-cli figures fig9
     tdmd-cli dot --topology fattree --size 4 > fat.dot *)

open Cmdliner
open Tdmd_prelude

type topology = Tree | General | Fattree

let topology_conv =
  let parse = function
    | "tree" -> Ok Tree
    | "general" -> Ok General
    | "fattree" -> Ok Fattree
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S" s))
  in
  let print ppf t =
    Format.pp_print_string ppf
      (match t with Tree -> "tree" | General -> "general" | Fattree -> "fattree")
  in
  Arg.conv (parse, print)

(* [--algo] accepts any name in the solver registry; validation happens
   at parse time so typos fail before an instance is generated. *)
let algo_conv =
  let parse s =
    if List.mem s Tdmd.Solvers.names then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown algorithm %S (expected one of: %s)" s
             (String.concat " | " Tdmd.Solvers.names)))
  in
  Arg.conv (parse, Format.pp_print_string)

let topology_arg =
  Arg.(value & opt topology_conv Tree & info [ "topology"; "t" ] ~doc:"tree | general | fattree")

let size_arg = Arg.(value & opt int 22 & info [ "size"; "n" ] ~doc:"Topology size (fat-tree: pod count k, must be even)")
let k_arg = Arg.(value & opt int 8 & info [ "k"; "budget" ] ~doc:"Middlebox budget")
let lambda_arg = Arg.(value & opt float 0.5 & info [ "lambda" ] ~doc:"Traffic-changing ratio in [0,1]")
let density_arg = Arg.(value & opt float 0.5 & info [ "density" ] ~doc:"Flow density")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed")
let algo_arg =
  Arg.(
    value
    & opt algo_conv "gtp"
    & info [ "algo"; "a" ] ~doc:(String.concat " | " Tdmd.Solvers.names))

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Print the solver's span tree and telemetry metrics")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Append the run's telemetry as one JSON line to $(docv)")

let build_instances topology ~size ~lambda ~density ~seed =
  let rng = Rng.create seed in
  match topology with
  | Tree ->
    let scenario =
      { Tdmd_sim.Scenario.default_tree with Tdmd_sim.Scenario.size; lambda; density }
    in
    let inst = Tdmd_sim.Scenario.build_tree rng scenario in
    (Some inst, Tdmd.Instance.Tree.to_general inst)
  | General ->
    let scenario =
      { Tdmd_sim.Scenario.default_general with Tdmd_sim.Scenario.size; lambda; density }
    in
    (None, Tdmd_sim.Scenario.build_general rng scenario)
  | Fattree ->
    let ft = Tdmd_topo.Datacenter.fat_tree size in
    let g = ft.Tdmd_topo.Datacenter.graph in
    let hosts = ft.Tdmd_topo.Datacenter.hosts in
    let collector = List.hd hosts in
    let flows =
      List.filteri (fun i _ -> i > 0) hosts
      |> List.mapi (fun id host ->
             match Tdmd_graph.Bfs.shortest_path g ~src:host ~dst:collector with
             | None -> assert false
             | Some path -> Tdmd_flow.Flow.make ~id ~rate:(1 + Rng.int rng 8) ~path)
    in
    (None, Tdmd.Instance.make ~graph:g ~flows ~lambda)

let solve topology size k lambda density seed algo trace metrics_out =
  let tree_inst, general = build_instances topology ~size ~lambda ~density ~seed in
  let volume = float_of_int (Tdmd.Instance.total_path_volume general) in
  Printf.printf "instance: %d vertices, %d flows, unprocessed volume %g\n"
    (Tdmd.Instance.vertex_count general)
    (Tdmd.Instance.flow_count general)
    volume;
  (* Registry dispatch: tree instances resolve tree solvers first and
     lift general ones; general/fat-tree instances take general solvers
     only (tree-only algorithms have no meaning there). *)
  let rng = Rng.create (seed + 1) in
  let run =
    match tree_inst with
    | Some t -> (
      match Tdmd.Solvers.on_tree algo with
      | Some f -> fun () -> f ~rng ~k t
      | None -> assert false (* algo_conv validated the name *))
    | None -> (
      match Tdmd.Solvers.find_general algo with
      | Some f -> fun () -> f ~rng ~k general
      | None ->
        Printf.eprintf "%s runs on tree topologies only (use --topology tree)\n"
          algo;
        exit 2)
  in
  let outcome, seconds = Timer.time run in
  let { Tdmd.Solver_intf.placement; bandwidth; feasible; telemetry } = outcome in
  Format.printf "placement: %a\n" Tdmd.Placement.pp placement;
  Printf.printf "bandwidth: %g  (%.1f%% of unprocessed)\n" bandwidth
    (100.0 *. bandwidth /. Float.max volume 1.0);
  Printf.printf "feasible:  %b\n" feasible;
  Printf.printf "time:      %.3f s\n" seconds;
  if trace then Format.printf "telemetry:@.%a@." Tdmd_obs.Telemetry.pp telemetry;
  match metrics_out with
  | None -> ()
  | Some file ->
    let oc =
      try open_out_gen [ Open_append; Open_creat ] 0o644 file
      with Sys_error msg ->
        Printf.eprintf "cannot write metrics: %s\n" msg;
        exit 2
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Tdmd_obs.Sink.emit (Tdmd_obs.Sink.of_channel oc)
          (Tdmd_obs.Sink.record ~event:"solve"
             ~extra:
               [
                 ("algo", Tdmd_obs.Json.String algo);
                 ("k", Tdmd_obs.Json.Int k);
                 ("seed", Tdmd_obs.Json.Int seed);
                 ("bandwidth", Tdmd_obs.Json.Float bandwidth);
                 ("feasible", Tdmd_obs.Json.Bool feasible);
                 ("seconds", Tdmd_obs.Json.Float seconds);
               ]
             telemetry))

let figures target =
  let known =
    [
      ("fig9", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig9 ()));
      ("fig10", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig10 ()));
      ("fig11", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig11 ()));
      ("fig12", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig12 ()));
      ("fig13", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig13 ()));
      ("fig14", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig14 ()));
      ("fig15", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig15 ()));
      ("fig16", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig16 ()));
      ( "fig17",
        fun () ->
          Tdmd_sim.Report.print_grid (Tdmd_sim.Experiments.fig17_tree ());
          Tdmd_sim.Report.print_grid (Tdmd_sim.Experiments.fig17_general ()) );
    ]
  in
  match List.assoc_opt target known with
  | Some f -> f ()
  | None ->
    Printf.eprintf "unknown figure %s\n" target;
    exit 2

let dot topology size seed =
  let rng = Rng.create seed in
  let g =
    match topology with
    | Tree -> Tdmd_tree.Rooted_tree.to_digraph (Tdmd_topo.Topo_tree.random_attachment rng size)
    | General -> Tdmd_topo.Topo_general.erdos_renyi rng size ~p:0.15
    | Fattree -> (Tdmd_topo.Datacenter.fat_tree size).Tdmd_topo.Datacenter.graph
  in
  print_string (Tdmd_graph.Digraph.to_dot g)

let stats topology size seed =
  let rng = Rng.create seed in
  let g =
    match topology with
    | Tree -> Tdmd_tree.Rooted_tree.to_digraph (Tdmd_topo.Topo_tree.random_attachment rng size)
    | General -> fst (Tdmd_topo.Ark.general_of rng (Tdmd_topo.Ark.generate rng ~n:(2 * size)) ~size)
    | Fattree -> (Tdmd_topo.Datacenter.fat_tree size).Tdmd_topo.Datacenter.graph
  in
  print_string (Tdmd_topo.Topo_stats.render (Tdmd_topo.Topo_stats.compute g))

let solve_cmd =
  let term =
    Term.(
      const solve $ topology_arg $ size_arg $ k_arg $ lambda_arg $ density_arg
      $ seed_arg $ algo_arg $ trace_arg $ metrics_out_arg)
  in
  Cmd.v (Cmd.info "solve" ~doc:"Generate an instance and place middleboxes") term

let figures_cmd =
  let target =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc:"fig9..fig17")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate one of the paper's evaluation figures")
    Term.(const figures $ target)

let svg topology size seed boxes =
  let rng = Rng.create seed in
  let boxes = List.filter_map int_of_string_opt (String.split_on_char ',' boxes) in
  match topology with
  | Tree ->
    print_string
      (Tdmd_topo.Svg_render.tree ~boxes (Tdmd_topo.Topo_tree.random_attachment rng size))
  | General ->
    let graph, dests =
      Tdmd_topo.Ark.general_of rng (Tdmd_topo.Ark.generate rng ~n:(2 * size)) ~size
    in
    print_string (Tdmd_topo.Svg_render.graph ~highlight:dests ~boxes graph)
  | Fattree ->
    print_string
      (Tdmd_topo.Svg_render.graph ~boxes
         (Tdmd_topo.Datacenter.fat_tree size).Tdmd_topo.Datacenter.graph)

let svg_cmd =
  let boxes_arg =
    Arg.(value & opt string "" & info [ "boxes" ] ~doc:"Comma-separated middlebox vertices")
  in
  Cmd.v
    (Cmd.info "svg" ~doc:"Emit a generated topology as SVG (squares = middleboxes)")
    Term.(const svg $ topology_arg $ size_arg $ seed_arg $ boxes_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print structural statistics of a generated topology")
    Term.(const stats $ topology_arg $ size_arg $ seed_arg)

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a generated topology as Graphviz DOT")
    Term.(const dot $ topology_arg $ size_arg $ seed_arg)

let () =
  let info =
    Cmd.info "tdmd-cli" ~version:"1.0.0"
      ~doc:"Traffic-diminishing middlebox placement (ICPP 2020 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ solve_cmd; figures_cmd; dot_cmd; stats_cmd; svg_cmd ]))
