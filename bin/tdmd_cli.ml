(* tdmd-cli: generate TDMD instances and solve them from the command
   line, or serve them over a socket.

     tdmd-cli solve --topology tree --size 22 --k 8 --algo dp
     tdmd-cli solve --topology general --size 30 --k 10 --algo gtp --lambda 0.2
     tdmd-cli figures fig9
     tdmd-cli dot --topology fattree --size 4 > fat.dot
     tdmd-cli serve --topology tree --size 22 --listen /tmp/tdmd.sock
     tdmd-cli client --connect /tmp/tdmd.sock --op solve --algo gtp --k 8
     tdmd-cli churn --topology general --size 30 --horizon 50 *)

open Cmdliner
open Tdmd_prelude

(* Bring the portfolio's registry entries (portfolio / anneal / genetic)
   in before any [--algo] list or validation is built. *)
let () = Tdmd_portfolio.Register.install ()

type topology = Tree | General | Fattree

let topology_conv =
  let parse = function
    | "tree" -> Ok Tree
    | "general" -> Ok General
    | "fattree" -> Ok Fattree
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S" s))
  in
  let print ppf t =
    Format.pp_print_string ppf
      (match t with Tree -> "tree" | General -> "general" | Fattree -> "fattree")
  in
  Arg.conv (parse, print)

(* [--algo] accepts any name in the solver registry; validation happens
   at parse time so typos fail before an instance is generated. *)
let algo_conv =
  let parse s =
    if List.mem s (Tdmd.Solvers.names ()) then Ok s
    else Error (`Msg (Tdmd.Solvers.describe_unknown ~tree_input:true s))
  in
  Arg.conv (parse, Format.pp_print_string)

let topology_arg =
  Arg.(value & opt topology_conv Tree & info [ "topology"; "t" ] ~doc:"tree | general | fattree")

let size_arg = Arg.(value & opt int 22 & info [ "size"; "n" ] ~doc:"Topology size (fat-tree: pod count k, must be even)")
let k_arg = Arg.(value & opt int 8 & info [ "k"; "budget" ] ~doc:"Middlebox budget")
let lambda_arg = Arg.(value & opt float 0.5 & info [ "lambda" ] ~doc:"Traffic-changing ratio in [0,1]")
let density_arg = Arg.(value & opt float 0.5 & info [ "density" ] ~doc:"Flow density")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed")
let algo_arg =
  Arg.(
    value
    & opt algo_conv "gtp"
    & info [ "algo"; "a" ] ~doc:(String.concat " | " (Tdmd.Solvers.names ())))

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Print the solver's span tree and telemetry metrics")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Append the run's telemetry as one JSON line to $(docv)")

let build_instances topology ~size ~lambda ~density ~seed =
  let rng = Rng.create seed in
  match topology with
  | Tree ->
    let scenario =
      { Tdmd_sim.Scenario.default_tree with Tdmd_sim.Scenario.size; lambda; density }
    in
    let inst = Tdmd_sim.Scenario.build_tree rng scenario in
    (Some inst, Tdmd.Instance.Tree.to_general inst)
  | General ->
    let scenario =
      { Tdmd_sim.Scenario.default_general with Tdmd_sim.Scenario.size; lambda; density }
    in
    (None, Tdmd_sim.Scenario.build_general rng scenario)
  | Fattree ->
    let ft = Tdmd_topo.Datacenter.fat_tree size in
    let g = ft.Tdmd_topo.Datacenter.graph in
    let hosts = ft.Tdmd_topo.Datacenter.hosts in
    let collector = List.hd hosts in
    let flows =
      List.filteri (fun i _ -> i > 0) hosts
      |> List.mapi (fun id host ->
             match Tdmd_graph.Bfs.shortest_path g ~src:host ~dst:collector with
             | None -> assert false
             | Some path -> Tdmd_flow.Flow.make ~id ~rate:(1 + Rng.int rng 8) ~path)
    in
    (None, Tdmd.Instance.make ~graph:g ~flows ~lambda)

let solve topology size k lambda density seed algo trace metrics_out =
  let tree_inst, general = build_instances topology ~size ~lambda ~density ~seed in
  let volume = float_of_int (Tdmd.Instance.total_path_volume general) in
  Printf.printf "instance: %d vertices, %d flows, unprocessed volume %g\n"
    (Tdmd.Instance.vertex_count general)
    (Tdmd.Instance.flow_count general)
    volume;
  (* Registry dispatch: tree instances resolve tree solvers first and
     lift general ones; general/fat-tree instances take general solvers
     only (tree-only algorithms have no meaning there). *)
  let rng = Rng.create (seed + 1) in
  let run =
    match tree_inst with
    | Some t -> (
      match Tdmd.Solvers.on_tree algo with
      | Some f -> fun () -> f ~rng ~k t
      | None -> assert false (* algo_conv validated the name *))
    | None -> (
      match Tdmd.Solvers.find_general algo with
      | Some f -> fun () -> f ~rng ~k general
      | None ->
        (* The name parsed, so it is registered — it must be tree-only. *)
        Printf.eprintf "%s\n" (Tdmd.Solvers.describe_unknown algo);
        exit 2)
  in
  let outcome, seconds = Timer.time run in
  let { Tdmd.Solver_intf.placement; bandwidth; feasible; telemetry } = outcome in
  Format.printf "placement: %a\n" Tdmd.Placement.pp placement;
  Printf.printf "bandwidth: %g  (%.1f%% of unprocessed)\n" bandwidth
    (100.0 *. bandwidth /. Float.max volume 1.0);
  Printf.printf "feasible:  %b\n" feasible;
  Printf.printf "time:      %.3f s\n" seconds;
  if trace then Format.printf "telemetry:@.%a@." Tdmd_obs.Telemetry.pp telemetry;
  match metrics_out with
  | None -> ()
  | Some file ->
    let oc =
      try open_out_gen [ Open_append; Open_creat ] 0o644 file
      with Sys_error msg ->
        Printf.eprintf "cannot write metrics: %s\n" msg;
        exit 2
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Tdmd_obs.Sink.emit (Tdmd_obs.Sink.of_channel oc)
          (Tdmd_obs.Sink.record ~event:"solve"
             ~extra:
               [
                 ("algo", Tdmd_obs.Json.String algo);
                 ("k", Tdmd_obs.Json.Int k);
                 ("seed", Tdmd_obs.Json.Int seed);
                 ("bandwidth", Tdmd_obs.Json.Float bandwidth);
                 ("feasible", Tdmd_obs.Json.Bool feasible);
                 ("seconds", Tdmd_obs.Json.Float seconds);
               ]
             telemetry))

let figures target =
  let known =
    [
      ("fig9", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig9 ()));
      ("fig10", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig10 ()));
      ("fig11", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig11 ()));
      ("fig12", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig12 ()));
      ("fig13", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig13 ()));
      ("fig14", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig14 ()));
      ("fig15", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig15 ()));
      ("fig16", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig16 ()));
      ( "fig17",
        fun () ->
          Tdmd_sim.Report.print_grid (Tdmd_sim.Experiments.fig17_tree ());
          Tdmd_sim.Report.print_grid (Tdmd_sim.Experiments.fig17_general ()) );
    ]
  in
  match List.assoc_opt target known with
  | Some f -> f ()
  | None ->
    Printf.eprintf "unknown figure %s\n" target;
    exit 2

let dot topology size seed =
  let rng = Rng.create seed in
  let g =
    match topology with
    | Tree -> Tdmd_tree.Rooted_tree.to_digraph (Tdmd_topo.Topo_tree.random_attachment rng size)
    | General -> Tdmd_topo.Topo_general.erdos_renyi rng size ~p:0.15
    | Fattree -> (Tdmd_topo.Datacenter.fat_tree size).Tdmd_topo.Datacenter.graph
  in
  print_string (Tdmd_graph.Digraph.to_dot g)

let stats topology size seed =
  let rng = Rng.create seed in
  let g =
    match topology with
    | Tree -> Tdmd_tree.Rooted_tree.to_digraph (Tdmd_topo.Topo_tree.random_attachment rng size)
    | General -> fst (Tdmd_topo.Ark.general_of rng (Tdmd_topo.Ark.generate rng ~n:(2 * size)) ~size)
    | Fattree -> (Tdmd_topo.Datacenter.fat_tree size).Tdmd_topo.Datacenter.graph
  in
  print_string (Tdmd_topo.Topo_stats.render (Tdmd_topo.Topo_stats.compute g))

let solve_cmd =
  let term =
    Term.(
      const solve $ topology_arg $ size_arg $ k_arg $ lambda_arg $ density_arg
      $ seed_arg $ algo_arg $ trace_arg $ metrics_out_arg)
  in
  Cmd.v (Cmd.info "solve" ~doc:"Generate an instance and place middleboxes") term

let figures_cmd =
  let target =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc:"fig9..fig17")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate one of the paper's evaluation figures")
    Term.(const figures $ target)

let svg topology size seed boxes =
  let rng = Rng.create seed in
  let boxes = List.filter_map int_of_string_opt (String.split_on_char ',' boxes) in
  match topology with
  | Tree ->
    print_string
      (Tdmd_topo.Svg_render.tree ~boxes (Tdmd_topo.Topo_tree.random_attachment rng size))
  | General ->
    let graph, dests =
      Tdmd_topo.Ark.general_of rng (Tdmd_topo.Ark.generate rng ~n:(2 * size)) ~size
    in
    print_string (Tdmd_topo.Svg_render.graph ~highlight:dests ~boxes graph)
  | Fattree ->
    print_string
      (Tdmd_topo.Svg_render.graph ~boxes
         (Tdmd_topo.Datacenter.fat_tree size).Tdmd_topo.Datacenter.graph)

let svg_cmd =
  let boxes_arg =
    Arg.(value & opt string "" & info [ "boxes" ] ~doc:"Comma-separated middlebox vertices")
  in
  Cmd.v
    (Cmd.info "svg" ~doc:"Emit a generated topology as SVG (squares = middleboxes)")
    Term.(const svg $ topology_arg $ size_arg $ seed_arg $ boxes_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print structural statistics of a generated topology")
    Term.(const stats $ topology_arg $ size_arg $ seed_arg)

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a generated topology as Graphviz DOT")
    Term.(const dot $ topology_arg $ size_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* serve / client: the placement service                               *)
(* ------------------------------------------------------------------ *)

let addr_conv =
  let parse s =
    match Tdmd_server.Protocol.addr_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  let print ppf a =
    Format.pp_print_string ppf (Tdmd_server.Protocol.addr_to_string a)
  in
  Arg.conv (parse, print)

let listen_arg =
  Arg.(
    value
    & opt addr_conv (Tdmd_server.Protocol.Unix_sock "tdmd.sock")
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:"Listen address: unix:PATH, tcp:HOST:PORT, or a bare socket path")

let connect_arg =
  Arg.(
    value
    & opt addr_conv (Tdmd_server.Protocol.Unix_sock "tdmd.sock")
    & info [ "connect"; "c" ] ~docv:"ADDR"
        ~doc:"Server address: unix:PATH, tcp:HOST:PORT, or a bare socket path")

let load_instance_file file =
  let contents =
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Printf.eprintf "cannot read instance: %s\n" msg;
      exit 2
  in
  match
    Result.bind
      (Tdmd_obs.Json.of_string contents)
      Tdmd_server.Protocol.instance_of_json
  with
  | Ok inst -> inst
  | Error msg ->
    Printf.eprintf "invalid instance %s: %s\n" file msg;
    exit 2

let parse_durability journal fsync snapshot_every =
  match journal with
  | None -> None
  | Some dir ->
    let fsync =
      match Tdmd_server.Journal.fsync_policy_of_string fsync with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf "--fsync: %s\n" msg;
        exit 2
    in
    if snapshot_every < 0 then begin
      Printf.eprintf "--snapshot-every must be >= 0\n";
      exit 2
    end;
    Some
      (Tdmd_server.Session.durability ~fsync ~snapshot_every
         ~faults:(Tdmd_server.Faults.from_env ()) dir)

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Durability directory: write-ahead journal + snapshots.  If $(docv) \
           already holds a snapshot the session is recovered from it")

let fsync_arg =
  Arg.(
    value & opt string "always"
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:"Journal fsync policy: always | every-N | none")

let snapshot_every_arg =
  Arg.(
    value & opt int 0
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Snapshot (and truncate the journal) after every $(docv) journaled \
           ops; 0 = only at startup and shutdown")

(* A durability root already holding state — either the flat PR 4
   layout (snapshot in the root) or the sharded one (shard-0/ dir) —
   is continued rather than started over. *)
let durability_holds_state cfg =
  Sys.file_exists (Tdmd_server.Session.snapshot_file cfg)
  || Sys.file_exists (Filename.concat cfg.Tdmd_server.Session.dir "shard-0")

let serve listen topology size lambda density seed instance_file domains queue
    deadline_ms churn_k migration_budget shards metrics_out journal fsync
    snapshot_every degraded_reads =
  if shards < 1 then begin
    Printf.eprintf "--shards must be >= 1\n";
    exit 2
  end;
  if migration_budget < 0 then begin
    Printf.eprintf "--migration-budget must be >= 0\n";
    exit 2
  end;
  let durability = parse_durability journal fsync snapshot_every in
  let config =
    {
      Tdmd_server.Session.Config.default with
      Tdmd_server.Session.Config.churn_k;
      Tdmd_server.Session.Config.migration_budget;
      Tdmd_server.Session.Config.durability;
    }
  in
  let engine =
    match durability with
    | Some cfg when durability_holds_state cfg -> (
      match Tdmd_server.Engine.recover ~degraded_reads cfg with
      | Ok e ->
        Printf.printf "tdmd serve: recovered %d shard(s) from %s\n%!"
          (Tdmd_server.Engine.shard_count e)
          cfg.Tdmd_server.Session.dir;
        e
      | Error msg ->
        Printf.eprintf "cannot recover from %s: %s\n"
          cfg.Tdmd_server.Session.dir msg;
        exit 2)
    | _ -> (
      let source =
        match instance_file with
        | Some file -> Tdmd_server.Engine.General (load_instance_file file)
        | None -> (
          let tree_inst, general =
            build_instances topology ~size ~lambda ~density ~seed
          in
          match tree_inst with
          | Some t -> Tdmd_server.Engine.Tree t
          | None -> Tdmd_server.Engine.General general)
      in
      try Tdmd_server.Engine.create ~degraded_reads ~config ~shards source
      with Invalid_argument msg ->
        Printf.eprintf "--shards: %s\n" msg;
        exit 2)
  in
  let cfg =
    {
      Tdmd_server.Server.addr = listen;
      domains;
      queue_capacity = queue;
      default_deadline_ms = deadline_ms;
      metrics_out;
    }
  in
  let server =
    try Tdmd_server.Server.start cfg engine
    with Unix.Unix_error (err, _, arg) ->
      Printf.eprintf "cannot listen on %s: %s %s\n"
        (Tdmd_server.Protocol.addr_to_string listen)
        (Unix.error_message err) arg;
      exit 2
  in
  let stop _ = Tdmd_server.Server.request_stop server in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  let inst = Tdmd_server.Engine.general engine in
  Printf.printf
    "tdmd serve: %d vertices, %d flows, lambda %g | %d shard(s), %d worker \
     domain(s), queue %d | listening on %s\n\
     %!"
    (Tdmd.Instance.vertex_count inst)
    (Tdmd.Instance.flow_count inst)
    inst.Tdmd.Instance.lambda
    (Tdmd_server.Engine.shard_count engine)
    domains queue
    (Tdmd_server.Protocol.addr_to_string listen);
  Tdmd_server.Server.wait server;
  Tdmd_server.Engine.close engine;
  print_endline "tdmd serve: drained, bye"

let serve_cmd =
  let instance_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "instance" ] ~docv:"FILE"
          ~doc:"Serve the inline JSON instance from $(docv) instead of a generated topology")
  in
  let domains_arg =
    Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Worker domains")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue" ] ~doc:"Bounded request-queue capacity")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ]
          ~doc:"Default deadline for requests that carry none (solves answer anytime within it)")
  in
  let churn_k_arg =
    Arg.(value & opt int 8 & info [ "churn-k" ] ~doc:"Middlebox budget of the churn engine")
  in
  let migration_budget_arg =
    Arg.(
      value & opt int 0
      & info [ "migration-budget" ] ~docv:"B"
          ~doc:
            "Instance moves the rebalancer may spend after each churn event \
             (per shard).  0 (the default) pins placements as before; larger \
             budgets trade migrations for bandwidth.  Recovered directories \
             keep the budget recorded in their snapshot")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the topology into $(docv) shards, each with its own \
             churn engine and journal; 1 (the default) is the pre-shard \
             single-engine behaviour, bit for bit")
  in
  let degraded_reads_arg =
    Arg.(
      value & flag
      & info [ "degraded-reads" ]
          ~doc:
            "While a shard is recovering, answer read-only ops (stats, live \
             solves) from the last applied state with \"degraded\": true \
             instead of refusing them \"unavailable\"")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the placement service (length-prefixed JSON over a socket)")
    Term.(
      const serve $ listen_arg $ topology_arg $ size_arg $ lambda_arg
      $ density_arg $ seed_arg $ instance_arg $ domains_arg $ queue_arg
      $ deadline_arg $ churn_k_arg $ migration_budget_arg $ shards_arg
      $ metrics_out_arg $ journal_arg $ fsync_arg $ snapshot_every_arg
      $ degraded_reads_arg)

(* ------------------------------------------------------------------ *)
(* recover: offline rebuild + compaction of a journal directory        *)
(* ------------------------------------------------------------------ *)

let recover journal fsync =
  match parse_durability journal fsync 0 with
  | None ->
    Printf.eprintf "recover: --journal DIR is required\n";
    exit 2
  | Some cfg -> (
    (* [Engine.recover] detects the layout: a flat PR 4 directory comes
       back as one shard, a shard-<i> tree as a sharded engine with the
       coordinator's in-flight cross ops replayed. *)
    match Tdmd_server.Engine.recover cfg with
    | Error msg ->
      Printf.eprintf "cannot recover from %s: %s\n"
        cfg.Tdmd_server.Session.dir msg;
      exit 2
    | Ok engine ->
      let fields =
        ("op", Tdmd_obs.Json.String "recover")
        :: ( "shards",
             Tdmd_obs.Json.Int (Tdmd_server.Engine.shard_count engine) )
        :: Tdmd_server.Engine.churn_stats engine
        @ Tdmd_server.Engine.stats_fields engine
      in
      (* [close] writes fresh snapshots, so recover doubles as offline
         compaction: the journals are empty afterwards. *)
      Tdmd_server.Engine.close engine;
      print_endline (Tdmd_obs.Json.to_string (Tdmd_obs.Json.Obj fields)))

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild a session (or sharded engine) from a journal directory \
          (snapshot + WAL replay), print its state, and compact the journals")
    Term.(const recover $ journal_arg $ fsync_arg)

let client connect op algo k seed on flow_id rate path ms budget deadline_ms
    req_id =
  let module P = Tdmd_server.Protocol in
  let parse_path s =
    List.filter_map int_of_string_opt (String.split_on_char ',' s)
  in
  let request =
    match op with
    | "ping" -> P.Ping
    | "stats" -> P.Stats
    | "health" -> P.Health
    | "shutdown" -> P.Shutdown
    | "sleep" -> P.Sleep ms
    | "solve" ->
      P.Solve
        {
          algo;
          k;
          seed;
          target = (if on = "live" then P.Live else P.Static);
        }
    | "arrive" -> P.Arrive { id = flow_id; rate; path = parse_path path }
    | "depart" -> P.Depart flow_id
    | "rebalance" -> P.Rebalance { budget }
    | other ->
      Printf.eprintf
        "unknown op %S (ping | stats | health | solve | arrive | depart | \
         rebalance | sleep | shutdown)\n"
        other;
      exit 2
  in
  let policy = Tdmd_prelude.Backoff.policy ~base:0.05 ~cap:0.5 ~budget:3.0 () in
  match Tdmd_server.Client.connect_retry ~policy connect with
  | Error msg ->
    Printf.eprintf "cannot connect to %s: %s\n" (P.addr_to_string connect) msg;
    exit 2
  | Ok c ->
    let result = Tdmd_server.Client.rpc_retry c ?deadline_ms ?req:req_id request in
    Tdmd_server.Client.close c;
    (match result with
    | Error msg ->
      Printf.eprintf "rpc failed: %s\n" msg;
      exit 2
    | Ok response ->
      print_endline (Tdmd_obs.Json.to_string response);
      (match Tdmd_obs.Json.member "ok" response with
      | Some (Tdmd_obs.Json.Bool true) -> ()
      | _ -> exit 1))

let client_cmd =
  let op_arg =
    Arg.(
      value & opt string "ping"
      & info [ "op" ]
          ~doc:
            "ping | stats | health | solve | arrive | depart | rebalance | \
             sleep | shutdown")
  in
  let on_arg =
    Arg.(
      value & opt string "static"
      & info [ "on" ] ~doc:"solve target: static | live")
  in
  let flow_id_arg =
    Arg.(value & opt int 0 & info [ "flow-id" ] ~doc:"Flow id for arrive/depart")
  in
  let rate_arg =
    Arg.(value & opt int 1 & info [ "rate" ] ~doc:"Flow rate for arrive")
  in
  let path_arg =
    Arg.(
      value & opt string ""
      & info [ "path" ] ~docv:"V0,V1,..."
          ~doc:"Comma-separated vertex path for arrive")
  in
  let ms_arg =
    Arg.(value & opt int 100 & info [ "ms" ] ~doc:"Milliseconds for sleep")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "move-budget" ] ~docv:"B"
          ~doc:
            "Move budget for rebalance (default: the server's configured \
             migration budget)")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~doc:"Per-request deadline (a deadlined solve answers anytime)")
  in
  let req_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "req-id" ] ~docv:"ID"
          ~doc:
            "Idempotency id for arrive/depart: the server deduplicates ops it \
             has already applied under $(docv).  Mutating ops without one get \
             a generated id (retries are still safe)")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running tdmd serve and print the response")
    Term.(
      const client $ connect_arg $ op_arg $ algo_arg $ k_arg $ seed_arg $ on_arg
      $ flow_id_arg $ rate_arg $ path_arg $ ms_arg $ budget_arg $ deadline_arg
      $ req_id_arg)

(* ------------------------------------------------------------------ *)
(* churn: replay an arrival/departure trace through Incremental        *)
(* ------------------------------------------------------------------ *)

let churn topology size k migration_budget lambda density seed horizon
    interarrival lifetime trace metrics_out =
  if migration_budget < 0 then begin
    Printf.eprintf "--migration-budget must be >= 0\n";
    exit 2
  end;
  let _, general = build_instances topology ~size ~lambda ~density ~seed in
  let graph = general.Tdmd.Instance.graph in
  let n = Tdmd.Instance.vertex_count general in
  let rng = Rng.create (seed + 7) in
  let draw_flow rng id =
    (* Random shortest-path flow; the generated topologies are
       connected, so a handful of draws always finds a distinct pair. *)
    let rec pick attempts =
      if attempts > 100 then failwith "churn: cannot draw a flow path"
      else begin
        let src = Rng.int rng n and dst = Rng.int rng n in
        if src = dst then pick (attempts + 1)
        else begin
          match Tdmd_graph.Bfs.shortest_path graph ~src ~dst with
          | Some path when List.length path > 1 ->
            Tdmd_flow.Flow.make ~id ~rate:(Rng.int_in rng 1 8) ~path
          | _ -> pick (attempts + 1)
        end
      end
    in
    pick 0
  in
  let timeline =
    Tdmd_traffic.Temporal.generate rng ~horizon ~mean_interarrival:interarrival
      ~mean_lifetime:lifetime ~draw_flow
  in
  let engine =
    Tdmd.Incremental.create ~migration_budget ~graph
      ~lambda:general.Tdmd.Instance.lambda ~k ()
  in
  let events = List.length timeline in
  let (), seconds =
    Timer.time (fun () ->
        List.iter
          (fun (_, event) ->
            match event with
            | Tdmd_traffic.Temporal.Arrival f -> Tdmd.Incremental.arrive engine f
            | Tdmd_traffic.Temporal.Departure id -> Tdmd.Incremental.depart engine id)
          timeline)
  in
  let tel = Tdmd.Incremental.telemetry engine in
  let final_flows = List.length (Tdmd.Incremental.flows engine) in
  let bandwidth = Tdmd.Incremental.bandwidth engine in
  let volume =
    Tdmd_flow.Flow.total_path_volume (Tdmd.Incremental.flows engine)
  in
  Printf.printf "trace:      %d events over horizon %g (%d arrivals, %d departures)\n"
    events horizon
    (Tdmd_obs.Telemetry.get_count tel "arrivals")
    (Tdmd_obs.Telemetry.get_count tel "departures");
  Printf.printf "final:      %d active flows, %d/%d boxes deployed\n" final_flows
    (Tdmd.Placement.size (Tdmd.Incremental.placement engine))
    k;
  Printf.printf "bandwidth:  %g  (%.1f%% of unprocessed)\n" bandwidth
    (100.0 *. bandwidth /. Float.max (float_of_int volume) 1.0);
  Printf.printf "feasible:   %b\n" (Tdmd.Incremental.feasible engine);
  Printf.printf "moves:      %d  (%.2f per event)\n"
    (Tdmd.Incremental.moves engine)
    (float_of_int (Tdmd.Incremental.moves engine)
    /. Float.max 1.0 (float_of_int events));
  if migration_budget > 0 then
    Printf.printf "rebalance:  budget %d/event, %d passes, %d moves\n"
      migration_budget
      (Tdmd.Incremental.rebalances engine)
      (Tdmd.Incremental.rebalance_moves engine);
  Printf.printf "time:       %.3f s  (%.0f events/s)\n" seconds
    (float_of_int events /. Float.max seconds 1e-9);
  if trace then Format.printf "telemetry:@.%a@." Tdmd_obs.Telemetry.pp tel;
  match metrics_out with
  | None -> ()
  | Some file ->
    let oc =
      try open_out_gen [ Open_append; Open_creat ] 0o644 file
      with Sys_error msg ->
        Printf.eprintf "cannot write metrics: %s\n" msg;
        exit 2
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Tdmd_obs.Sink.emit (Tdmd_obs.Sink.of_channel oc)
          (Tdmd_obs.Sink.record ~event:"churn"
             ~extra:
               [
                 ("k", Tdmd_obs.Json.Int k);
                 ("seed", Tdmd_obs.Json.Int seed);
                 ("events", Tdmd_obs.Json.Int events);
                 ("bandwidth", Tdmd_obs.Json.Float bandwidth);
                 ("seconds", Tdmd_obs.Json.Float seconds);
               ]
             tel))

let churn_cmd =
  let horizon_arg =
    Arg.(value & opt float 50.0 & info [ "horizon" ] ~doc:"Virtual-time horizon")
  in
  let interarrival_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interarrival" ] ~doc:"Mean flow inter-arrival time")
  in
  let lifetime_arg =
    Arg.(value & opt float 10.0 & info [ "lifetime" ] ~doc:"Mean flow lifetime")
  in
  let migration_budget_arg =
    Arg.(
      value & opt int 0
      & info [ "migration-budget" ] ~docv:"B"
          ~doc:
            "Instance moves the rebalancer may spend after each event; 0 \
             (the default) pins placements as before")
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:"Replay a generated arrival/departure trace through the churn engine")
    Term.(
      const churn $ topology_arg $ size_arg $ k_arg $ migration_budget_arg
      $ lambda_arg $ density_arg $ seed_arg $ horizon_arg $ interarrival_arg
      $ lifetime_arg $ trace_arg $ metrics_out_arg)

let () =
  let info =
    Cmd.info "tdmd-cli" ~version:"1.0.0"
      ~doc:"Traffic-diminishing middlebox placement (ICPP 2020 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd;
            figures_cmd;
            dot_cmd;
            stats_cmd;
            svg_cmd;
            serve_cmd;
            recover_cmd;
            client_cmd;
            churn_cmd;
          ]))
