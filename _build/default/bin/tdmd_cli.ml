(* tdmd-cli: generate TDMD instances and solve them from the command
   line.

     tdmd-cli solve --topology tree --size 22 --k 8 --algo dp
     tdmd-cli solve --topology general --size 30 --k 10 --algo gtp --lambda 0.2
     tdmd-cli figures fig9
     tdmd-cli dot --topology fattree --size 4 > fat.dot *)

open Cmdliner
open Tdmd_prelude

type topology = Tree | General | Fattree

let topology_conv =
  let parse = function
    | "tree" -> Ok Tree
    | "general" -> Ok General
    | "fattree" -> Ok Fattree
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S" s))
  in
  let print ppf t =
    Format.pp_print_string ppf
      (match t with Tree -> "tree" | General -> "general" | Fattree -> "fattree")
  in
  Arg.conv (parse, print)

type algo = Dp | Hat | Gtp | Celf | Random_a | Best_effort | Brute

let algo_conv =
  let parse = function
    | "dp" -> Ok Dp
    | "hat" -> Ok Hat
    | "gtp" -> Ok Gtp
    | "celf" -> Ok Celf
    | "random" -> Ok Random_a
    | "best-effort" -> Ok Best_effort
    | "brute" -> Ok Brute
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Dp -> "dp"
      | Hat -> "hat"
      | Gtp -> "gtp"
      | Celf -> "celf"
      | Random_a -> "random"
      | Best_effort -> "best-effort"
      | Brute -> "brute")
  in
  Arg.conv (parse, print)

let topology_arg =
  Arg.(value & opt topology_conv Tree & info [ "topology"; "t" ] ~doc:"tree | general | fattree")

let size_arg = Arg.(value & opt int 22 & info [ "size"; "n" ] ~doc:"Topology size (fat-tree: pod count k, must be even)")
let k_arg = Arg.(value & opt int 8 & info [ "k"; "budget" ] ~doc:"Middlebox budget")
let lambda_arg = Arg.(value & opt float 0.5 & info [ "lambda" ] ~doc:"Traffic-changing ratio in [0,1]")
let density_arg = Arg.(value & opt float 0.5 & info [ "density" ] ~doc:"Flow density")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed")
let algo_arg =
  Arg.(value & opt algo_conv Gtp & info [ "algo"; "a" ] ~doc:"dp | hat | gtp | celf | random | best-effort | brute")

let build_instances topology ~size ~lambda ~density ~seed =
  let rng = Rng.create seed in
  match topology with
  | Tree ->
    let scenario =
      { Tdmd_sim.Scenario.default_tree with Tdmd_sim.Scenario.size; lambda; density }
    in
    let inst = Tdmd_sim.Scenario.build_tree rng scenario in
    (Some inst, Tdmd.Instance.Tree.to_general inst)
  | General ->
    let scenario =
      { Tdmd_sim.Scenario.default_general with Tdmd_sim.Scenario.size; lambda; density }
    in
    (None, Tdmd_sim.Scenario.build_general rng scenario)
  | Fattree ->
    let ft = Tdmd_topo.Datacenter.fat_tree size in
    let g = ft.Tdmd_topo.Datacenter.graph in
    let hosts = ft.Tdmd_topo.Datacenter.hosts in
    let collector = List.hd hosts in
    let flows =
      List.filteri (fun i _ -> i > 0) hosts
      |> List.mapi (fun id host ->
             match Tdmd_graph.Bfs.shortest_path g ~src:host ~dst:collector with
             | None -> assert false
             | Some path -> Tdmd_flow.Flow.make ~id ~rate:(1 + Rng.int rng 8) ~path)
    in
    (None, Tdmd.Instance.make ~graph:g ~flows ~lambda)

let solve topology size k lambda density seed algo =
  let tree_inst, general = build_instances topology ~size ~lambda ~density ~seed in
  let volume = float_of_int (Tdmd.Instance.total_path_volume general) in
  Printf.printf "instance: %d vertices, %d flows, unprocessed volume %g\n"
    (Tdmd.Instance.vertex_count general)
    (Tdmd.Instance.flow_count general)
    volume;
  let requires_tree name =
    match tree_inst with
    | Some t -> t
    | None ->
      Printf.eprintf "%s runs on tree topologies only (use --topology tree)\n" name;
      exit 2
  in
  let (placement, bandwidth, feasible), seconds =
    Timer.time (fun () ->
        match algo with
        | Dp ->
          let r = Tdmd.Dp.solve ~k (requires_tree "dp") in
          (r.Tdmd.Dp.placement, r.Tdmd.Dp.bandwidth, r.Tdmd.Dp.feasible)
        | Hat ->
          let r = Tdmd.Hat.run ~k (requires_tree "hat") in
          (r.Tdmd.Hat.placement, r.Tdmd.Hat.bandwidth, r.Tdmd.Hat.feasible)
        | Gtp ->
          let r = Tdmd.Gtp.run ~budget:k general in
          (r.Tdmd.Gtp.placement, r.Tdmd.Gtp.bandwidth, r.Tdmd.Gtp.feasible)
        | Celf ->
          let r = Tdmd.Gtp.run_celf ~budget:k general in
          (r.Tdmd.Gtp.placement, r.Tdmd.Gtp.bandwidth, r.Tdmd.Gtp.feasible)
        | Random_a ->
          let r = Tdmd.Baselines.random (Rng.create (seed + 1)) ~k general in
          (r.Tdmd.Baselines.placement, r.Tdmd.Baselines.bandwidth, r.Tdmd.Baselines.feasible)
        | Best_effort ->
          let r = Tdmd.Baselines.best_effort ~k general in
          (r.Tdmd.Baselines.placement, r.Tdmd.Baselines.bandwidth, r.Tdmd.Baselines.feasible)
        | Brute ->
          let r = Tdmd.Brute.solve ~k general in
          (r.Tdmd.Brute.placement, r.Tdmd.Brute.bandwidth, r.Tdmd.Brute.feasible))
  in
  Format.printf "placement: %a\n" Tdmd.Placement.pp placement;
  Printf.printf "bandwidth: %g  (%.1f%% of unprocessed)\n" bandwidth
    (100.0 *. bandwidth /. Float.max volume 1.0);
  Printf.printf "feasible:  %b\n" feasible;
  Printf.printf "time:      %.3f s\n" seconds

let figures target =
  let known =
    [
      ("fig9", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig9 ()));
      ("fig10", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig10 ()));
      ("fig11", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig11 ()));
      ("fig12", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig12 ()));
      ("fig13", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig13 ()));
      ("fig14", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig14 ()));
      ("fig15", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig15 ()));
      ("fig16", fun () -> Tdmd_sim.Report.print_result (Tdmd_sim.Experiments.fig16 ()));
      ( "fig17",
        fun () ->
          Tdmd_sim.Report.print_grid (Tdmd_sim.Experiments.fig17_tree ());
          Tdmd_sim.Report.print_grid (Tdmd_sim.Experiments.fig17_general ()) );
    ]
  in
  match List.assoc_opt target known with
  | Some f -> f ()
  | None ->
    Printf.eprintf "unknown figure %s\n" target;
    exit 2

let dot topology size seed =
  let rng = Rng.create seed in
  let g =
    match topology with
    | Tree -> Tdmd_tree.Rooted_tree.to_digraph (Tdmd_topo.Topo_tree.random_attachment rng size)
    | General -> Tdmd_topo.Topo_general.erdos_renyi rng size ~p:0.15
    | Fattree -> (Tdmd_topo.Datacenter.fat_tree size).Tdmd_topo.Datacenter.graph
  in
  print_string (Tdmd_graph.Digraph.to_dot g)

let stats topology size seed =
  let rng = Rng.create seed in
  let g =
    match topology with
    | Tree -> Tdmd_tree.Rooted_tree.to_digraph (Tdmd_topo.Topo_tree.random_attachment rng size)
    | General -> fst (Tdmd_topo.Ark.general_of rng (Tdmd_topo.Ark.generate rng ~n:(2 * size)) ~size)
    | Fattree -> (Tdmd_topo.Datacenter.fat_tree size).Tdmd_topo.Datacenter.graph
  in
  print_string (Tdmd_topo.Topo_stats.render (Tdmd_topo.Topo_stats.compute g))

let solve_cmd =
  let term =
    Term.(
      const solve $ topology_arg $ size_arg $ k_arg $ lambda_arg $ density_arg
      $ seed_arg $ algo_arg)
  in
  Cmd.v (Cmd.info "solve" ~doc:"Generate an instance and place middleboxes") term

let figures_cmd =
  let target =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc:"fig9..fig17")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate one of the paper's evaluation figures")
    Term.(const figures $ target)

let svg topology size seed boxes =
  let rng = Rng.create seed in
  let boxes = List.filter_map int_of_string_opt (String.split_on_char ',' boxes) in
  match topology with
  | Tree ->
    print_string
      (Tdmd_topo.Svg_render.tree ~boxes (Tdmd_topo.Topo_tree.random_attachment rng size))
  | General ->
    let graph, dests =
      Tdmd_topo.Ark.general_of rng (Tdmd_topo.Ark.generate rng ~n:(2 * size)) ~size
    in
    print_string (Tdmd_topo.Svg_render.graph ~highlight:dests ~boxes graph)
  | Fattree ->
    print_string
      (Tdmd_topo.Svg_render.graph ~boxes
         (Tdmd_topo.Datacenter.fat_tree size).Tdmd_topo.Datacenter.graph)

let svg_cmd =
  let boxes_arg =
    Arg.(value & opt string "" & info [ "boxes" ] ~doc:"Comma-separated middlebox vertices")
  in
  Cmd.v
    (Cmd.info "svg" ~doc:"Emit a generated topology as SVG (squares = middleboxes)")
    Term.(const svg $ topology_arg $ size_arg $ seed_arg $ boxes_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print structural statistics of a generated topology")
    Term.(const stats $ topology_arg $ size_arg $ seed_arg)

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a generated topology as Graphviz DOT")
    Term.(const dot $ topology_arg $ size_arg $ seed_arg)

let () =
  let info =
    Cmd.info "tdmd-cli" ~version:"1.0.0"
      ~doc:"Traffic-diminishing middlebox placement (ICPP 2020 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ solve_cmd; figures_cmd; dot_cmd; stats_cmd; svg_cmd ]))
