lib/submodular/submodular.ml: List Printf Rng Tdmd_heap Tdmd_prelude
