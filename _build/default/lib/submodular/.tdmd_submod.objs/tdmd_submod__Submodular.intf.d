lib/submodular/submodular.mli: Stdlib Tdmd_prelude
