(** Flow-rate distributions.

    The paper samples flow sizes from a 1-hour CAIDA packet trace; the
    trace itself is not redistributable, so [Caida_like] provides the
    property that matters — a heavy-tailed mice/elephants mixture with
    integral rates (see DESIGN.md §2). *)

open Tdmd_prelude

type t =
  | Constant of int                       (** every flow has this rate *)
  | Uniform of int * int                  (** inclusive integer range *)
  | Pareto_int of { alpha : float; x_min : int; cap : int }
      (** Pareto tail rounded to integers and truncated at [cap] *)
  | Caida_like of { r_max : int }
      (** ~80% mice at rate 1–2, ~15% mid flows, ~5% elephants with a
          Pareto tail up to [r_max] *)

val sample : t -> Rng.t -> int
(** Always >= 1. *)

val mean : t -> float
(** Expected rate (estimate for the mixtures; used for density
    targeting). *)

val default_caida : t
(** [Caida_like { r_max = 50 }] — the repository-wide default. *)
