module Flow = Tdmd_flow.Flow

let to_csv flows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "id,rate,path\n";
  List.iter
    (fun f ->
      let path =
        String.concat "-" (List.map string_of_int (Array.to_list f.Flow.path))
      in
      Buffer.add_string buf (Printf.sprintf "%d,%d,%s\n" f.Flow.id f.Flow.rate path))
    flows;
  Buffer.contents buf

let parse_row line_no line =
  match String.split_on_char ',' line with
  | [ id; rate; path ] -> (
    match
      ( int_of_string_opt (String.trim id),
        int_of_string_opt (String.trim rate),
        String.split_on_char '-' (String.trim path)
        |> List.map (fun s -> int_of_string_opt (String.trim s)) )
    with
    | Some id, Some rate, hops when List.for_all Option.is_some hops -> (
      let path = List.map Option.get hops in
      try Ok (Flow.make ~id ~rate ~path)
      with Invalid_argument msg -> Error (Printf.sprintf "line %d: %s" line_no msg))
    | _ -> Error (Printf.sprintf "line %d: malformed fields" line_no))
  | _ -> Error (Printf.sprintf "line %d: expected 3 columns" line_no)

let of_csv text =
  match String.split_on_char '\n' text with
  | [] -> Error "empty input"
  | header :: rows ->
    if String.trim header <> "id,rate,path" then Error "missing id,rate,path header"
    else begin
      let rec go line_no acc = function
        | [] -> Ok (List.rev acc)
        | row :: rest when String.trim row = "" -> go (line_no + 1) acc rest
        | row :: rest -> (
          match parse_row line_no row with
          | Ok f -> go (line_no + 1) (f :: acc) rest
          | Error e -> Error e)
      in
      go 2 [] rows
    end

let save path flows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv flows))

let load path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_csv (In_channel.input_all ic))
  end
