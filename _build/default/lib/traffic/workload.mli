(** Workload generation with flow-density targeting.

    The paper's *flow density* is "the ratio of the total traffic load to
    the total capacity of the network" (Sec. 6.2).  We take the load of a
    flow set to be Σ_f r_f·|p_f| (its link-level occupancy before any
    middlebox processing) and the capacity to be
    [link_capacity × (number of directed links usable by flows)]:
    [n−1] uplinks in a rooted tree, all arcs in a general topology.
    Generators keep adding flows until the requested density is met. *)

open Tdmd_prelude

val default_link_capacity : int
(** 100 rate units per directed link. *)

val tree_flows :
  Rng.t ->
  Tdmd_tree.Rooted_tree.t ->
  rates:Rate_dist.t ->
  density:float ->
  ?link_capacity:int ->
  unit ->
  Tdmd_flow.Flow.t list
(** Flows from uniformly random leaves to the root (the paper's tree
    workload).  Flows from the same leaf are kept separate here; solvers
    that want the merged view call {!Tdmd_flow.Flow.merge_same_source}.
    A tree with only the root yields no flows. *)

val general_flows :
  Rng.t ->
  Tdmd_graph.Digraph.t ->
  dests:int list ->
  rates:Rate_dist.t ->
  density:float ->
  ?link_capacity:int ->
  unit ->
  Tdmd_flow.Flow.t list
(** Flows from random sources to random members of [dests] (the paper's
    red destination nodes), routed on BFS shortest paths. *)

val gravity_flows :
  Tdmd_prelude.Rng.t ->
  Tdmd_graph.Digraph.t ->
  dests:int list ->
  rates:Rate_dist.t ->
  density:float ->
  ?link_capacity:int ->
  unit ->
  Tdmd_flow.Flow.t list
(** Gravity-model variant of {!general_flows}: source vertices are
    drawn proportionally to a per-vertex "mass" (its undirected degree,
    the classical proxy), so hub-adjacent sites originate more traffic
    — closer to measured WAN matrices than the uniform draw. *)

val density :
  links:int -> ?link_capacity:int -> Tdmd_flow.Flow.t list -> float
(** Achieved density of a flow set. *)

val tree_link_count : Tdmd_tree.Rooted_tree.t -> int
val general_link_count : Tdmd_graph.Digraph.t -> int
