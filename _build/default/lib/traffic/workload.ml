open Tdmd_prelude
module Rt = Tdmd_tree.Rooted_tree
module G = Tdmd_graph.Digraph
module Flow = Tdmd_flow.Flow

let default_link_capacity = 100

let tree_link_count tree = Rt.size tree - 1
let general_link_count g = G.edge_count g

let degree_weighted_vertex rng g =
  (* Urn of vertices repeated by (undirected) degree. *)
  let n = G.vertex_count g in
  let urn = ref [] in
  for v = 0 to n - 1 do
    let d =
      List.length (List.sort_uniq compare (G.succ g v @ G.pred g v))
    in
    for _ = 1 to max d 1 do
      urn := v :: !urn
    done
  done;
  Rng.choose rng (Array.of_list !urn)

let density ~links ?(link_capacity = default_link_capacity) flows =
  if links = 0 then 0.0
  else
    float_of_int (Flow.total_path_volume flows)
    /. float_of_int (links * link_capacity)

(* Add flows drawn by [draw] until the density target is reached.  Each
   draw yields (rate, path); paths of length 1 (src = dst) are skipped
   by the callers. *)
let fill ~target_volume ~draw =
  let rec go id volume acc =
    if volume >= target_volume then List.rev acc
    else begin
      match draw () with
      | None -> List.rev acc
      | Some (rate, path) ->
        let f = Flow.make ~id ~rate ~path in
        go (id + 1) (volume + (rate * Flow.hop_count f)) (f :: acc)
    end
  in
  go 0 0 []

let tree_flows rng tree ~rates ~density ?(link_capacity = default_link_capacity) () =
  let links = tree_link_count tree in
  if links = 0 then []
  else begin
    let target_volume =
      int_of_float (Float.ceil (density *. float_of_int (links * link_capacity)))
    in
    let leaves = Array.of_list (List.filter (fun v -> v <> Rt.root tree) (Rt.leaves tree)) in
    if Array.length leaves = 0 then []
    else begin
      let draw () =
        let leaf = Rng.choose rng leaves in
        let rate = Rate_dist.sample rates rng in
        Some (rate, Rt.path_to_root tree leaf)
      in
      fill ~target_volume ~draw
    end
  end

let flows_toward_dests rng g ~dests ~rates ~density ~link_capacity ~pick_src =
  let links = general_link_count g in
  if links = 0 || dests = [] then []
  else begin
    let n = G.vertex_count g in
    let dest_arr = Array.of_list dests in
    let target_volume =
      int_of_float (Float.ceil (density *. float_of_int (links * link_capacity)))
    in
    (* Bail out after enough failed draws (e.g. every vertex is a
       destination) rather than looping forever. *)
    let failures = ref 0 in
    let rec draw () =
      if !failures > 100 * n then None
      else begin
        let src = pick_src () in
        let dst = Rng.choose rng dest_arr in
        if src = dst then begin
          incr failures;
          draw ()
        end
        else begin
          match Tdmd_graph.Bfs.shortest_path g ~src ~dst with
          | None ->
            incr failures;
            draw ()
          | Some path ->
            failures := 0;
            Some (Rate_dist.sample rates rng, path)
        end
      end
    in
    fill ~target_volume ~draw
  end


let general_flows rng g ~dests ~rates ~density ?(link_capacity = default_link_capacity) () =
  let n = G.vertex_count g in
  flows_toward_dests rng g ~dests ~rates ~density ~link_capacity
    ~pick_src:(fun () -> Rng.int rng n)

let gravity_flows rng g ~dests ~rates ~density ?(link_capacity = default_link_capacity) () =
  flows_toward_dests rng g ~dests ~rates ~density ~link_capacity
    ~pick_src:(fun () -> degree_weighted_vertex rng g)
