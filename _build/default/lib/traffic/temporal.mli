(** Temporal workloads: flow arrivals and departures over virtual time.

    The paper's instances are static, but its motivation cites traffic
    demand changes (Sec. 6.1); the {!Tdmd.Incremental} extension
    maintains a deployment across such events.  Flows arrive as a
    Poisson-ish process (exponential inter-arrivals) and live for an
    exponential holding time. *)

type event =
  | Arrival of Tdmd_flow.Flow.t
  | Departure of int  (** flow id *)

type timeline = (float * event) list
(** Events in non-decreasing time order. *)

val generate :
  Tdmd_prelude.Rng.t ->
  horizon:float ->
  mean_interarrival:float ->
  mean_lifetime:float ->
  draw_flow:(Tdmd_prelude.Rng.t -> int -> Tdmd_flow.Flow.t) ->
  timeline
(** [draw_flow rng id] builds the flow for the [id]-th arrival (ids are
    dense from 0).  Departures past the horizon are dropped — flows
    alive at the horizon simply never depart. *)

val active_at : timeline -> float -> Tdmd_flow.Flow.t list
(** Flows arrived and not yet departed strictly before/at the given
    time, in arrival order. *)
