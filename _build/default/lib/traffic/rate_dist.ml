open Tdmd_prelude

type t =
  | Constant of int
  | Uniform of int * int
  | Pareto_int of { alpha : float; x_min : int; cap : int }
  | Caida_like of { r_max : int }

let clamp lo hi x = max lo (min hi x)

let sample_pareto rng ~alpha ~x_min ~cap =
  let x = Rng.pareto rng ~alpha ~x_min:(float_of_int x_min) in
  clamp x_min cap (int_of_float (Float.round x))

let sample t rng =
  match t with
  | Constant r ->
    assert (r >= 1);
    r
  | Uniform (lo, hi) ->
    assert (1 <= lo && lo <= hi);
    Rng.int_in rng lo hi
  | Pareto_int { alpha; x_min; cap } -> sample_pareto rng ~alpha ~x_min ~cap
  | Caida_like { r_max } ->
    let u = Rng.float rng 1.0 in
    if u < 0.80 then Rng.int_in rng 1 2
    else if u < 0.95 then Rng.int_in rng 3 (max 3 (r_max / 5))
    else sample_pareto rng ~alpha:1.3 ~x_min:(max 4 (r_max / 5)) ~cap:r_max

let mean t =
  match t with
  | Constant r -> float_of_int r
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.0
  | Pareto_int { alpha; x_min; cap } ->
    if alpha > 1.0 then
      Float.min (float_of_int cap) (alpha *. float_of_int x_min /. (alpha -. 1.0))
    else float_of_int cap /. 2.0
  | Caida_like { r_max } ->
    let mid = float_of_int (3 + max 3 (r_max / 5)) /. 2.0 in
    let tail_lo = float_of_int (max 4 (r_max / 5)) in
    let tail = Float.min (float_of_int r_max) (1.3 *. tail_lo /. 0.3) in
    (0.80 *. 1.5) +. (0.15 *. mid) +. (0.05 *. tail)

let default_caida = Caida_like { r_max = 50 }
