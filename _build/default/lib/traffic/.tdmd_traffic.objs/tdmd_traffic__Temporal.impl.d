lib/traffic/temporal.ml: Hashtbl List Rng Tdmd_flow Tdmd_prelude
