lib/traffic/rate_dist.mli: Rng Tdmd_prelude
