lib/traffic/workload.ml: Array Float List Rate_dist Rng Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_tree
