lib/traffic/rate_dist.ml: Float Rng Tdmd_prelude
