lib/traffic/trace.ml: Array Buffer Fun In_channel List Option Printf String Sys Tdmd_flow
