lib/traffic/temporal.mli: Tdmd_flow Tdmd_prelude
