lib/traffic/workload.mli: Rate_dist Rng Tdmd_flow Tdmd_graph Tdmd_prelude Tdmd_tree
