lib/traffic/trace.mli: Tdmd_flow
