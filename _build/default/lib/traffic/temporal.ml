open Tdmd_prelude
module Flow = Tdmd_flow.Flow

type event =
  | Arrival of Flow.t
  | Departure of int

type timeline = (float * event) list

let generate rng ~horizon ~mean_interarrival ~mean_lifetime ~draw_flow =
  assert (horizon > 0.0 && mean_interarrival > 0.0 && mean_lifetime > 0.0);
  let events = ref [] in
  let rec arrivals t id =
    let t = t +. Rng.exponential rng mean_interarrival in
    if t <= horizon then begin
      let f = draw_flow rng id in
      events := (t, Arrival f) :: !events;
      let leave = t +. Rng.exponential rng mean_lifetime in
      if leave <= horizon then events := (leave, Departure f.Flow.id) :: !events;
      arrivals t (id + 1)
    end
  in
  arrivals 0.0 0;
  (* Stable sort keeps an arrival before a same-instant departure. *)
  List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) (List.rev !events)

let active_at timeline time =
  let alive = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (t, ev) ->
      if t <= time then begin
        match ev with
        | Arrival f ->
          Hashtbl.replace alive f.Flow.id f;
          order := f.Flow.id :: !order
        | Departure id -> Hashtbl.remove alive id
      end)
    timeline;
  List.rev !order
  |> List.filter_map (fun id -> Hashtbl.find_opt alive id)
