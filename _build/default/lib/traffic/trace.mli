(** Flow-set persistence: a tiny CSV codec so generated workloads can be
    saved, inspected, and replayed bit-for-bit across runs (the stand-in
    for the paper's captured CAIDA trace file). *)

val to_csv : Tdmd_flow.Flow.t list -> string
(** Header [id,rate,path]; paths are ['-']-separated vertex ids. *)

val of_csv : string -> (Tdmd_flow.Flow.t list, string) result
(** Parses what {!to_csv} produces (header required).  Returns a
    descriptive error on malformed rows rather than raising. *)

val save : string -> Tdmd_flow.Flow.t list -> unit
(** Write to a file path. *)

val load : string -> (Tdmd_flow.Flow.t list, string) result
