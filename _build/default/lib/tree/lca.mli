(** Lowest common ancestors (paper Def. 3, with the reflexive descendant
    convention).

    HAT calls LCA once per heap update, so we precompute binary-lifting
    tables: O(n log n) construction, O(log n) per query.  [naive] walks
    parent pointers and exists to cross-check the tables in tests. *)

type t

val build : Rooted_tree.t -> t
val query : t -> int -> int -> int
(** [query t u v] is the lowest vertex having both [u] and [v] as
    descendants (possibly [u] or [v] itself). *)

val naive : Rooted_tree.t -> int -> int -> int
(** Reference implementation: climb the deeper vertex, then both. *)

val distance : t -> int -> int -> int
(** Hop distance between two vertices through their LCA. *)
