lib/tree/lca.mli: Rooted_tree
