lib/tree/rooted_tree.ml: Array List Queue Tdmd_graph
