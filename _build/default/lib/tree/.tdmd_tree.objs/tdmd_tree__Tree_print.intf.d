lib/tree/tree_print.mli: Rooted_tree
