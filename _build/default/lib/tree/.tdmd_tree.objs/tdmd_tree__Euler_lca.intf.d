lib/tree/euler_lca.mli: Rooted_tree
