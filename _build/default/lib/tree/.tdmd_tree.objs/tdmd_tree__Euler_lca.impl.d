lib/tree/euler_lca.ml: Array List Rooted_tree
