lib/tree/rooted_tree.mli: Tdmd_graph
