lib/tree/lca.ml: Array Rooted_tree
