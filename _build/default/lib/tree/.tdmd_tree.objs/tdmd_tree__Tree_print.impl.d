lib/tree/tree_print.ml: Buffer Rooted_tree
