type t = {
  euler : int array;        (* vertex at each tour position *)
  depth : int array;        (* depth at each tour position *)
  first : int array;        (* first tour position of each vertex *)
  table : int array array;  (* sparse table of argmin positions *)
  log2 : int array;         (* floor(log2 i) for 1 <= i <= tour length *)
}

let build tree =
  let n = Rooted_tree.size tree in
  let tour_len = (2 * n) - 1 in
  let euler = Array.make tour_len 0 in
  let depth = Array.make tour_len 0 in
  let first = Array.make n (-1) in
  let pos = ref 0 in
  let rec visit v =
    euler.(!pos) <- v;
    depth.(!pos) <- Rooted_tree.depth tree v;
    if first.(v) < 0 then first.(v) <- !pos;
    incr pos;
    List.iter
      (fun c ->
        visit c;
        euler.(!pos) <- v;
        depth.(!pos) <- Rooted_tree.depth tree v;
        incr pos)
      (Rooted_tree.children tree v)
  in
  visit (Rooted_tree.root tree);
  assert (!pos = tour_len);
  let log2 = Array.make (tour_len + 1) 0 in
  for i = 2 to tour_len do
    log2.(i) <- log2.(i / 2) + 1
  done;
  let levels = log2.(tour_len) + 1 in
  let table = Array.make levels [||] in
  table.(0) <- Array.init tour_len (fun i -> i);
  for j = 1 to levels - 1 do
    let span = 1 lsl j in
    let prev = table.(j - 1) in
    let width = tour_len - span + 1 in
    table.(j) <-
      Array.init (max width 0) (fun i ->
          let a = prev.(i) and b = prev.(i + (span / 2)) in
          if depth.(a) <= depth.(b) then a else b)
  done;
  { euler; depth; first; table; log2 }

let query t u v =
  let a = t.first.(u) and b = t.first.(v) in
  let lo, hi = if a <= b then (a, b) else (b, a) in
  let j = t.log2.(hi - lo + 1) in
  let x = t.table.(j).(lo) in
  let y = t.table.(j).(hi - (1 lsl j) + 1) in
  t.euler.(if t.depth.(x) <= t.depth.(y) then x else y)
