type t = {
  tree : Rooted_tree.t;
  up : int array array;  (* up.(j).(v) = 2^j-th ancestor of v, or -1 *)
  log : int;
}

let build tree =
  let n = Rooted_tree.size tree in
  let log =
    let rec go l = if 1 lsl l >= n then l + 1 else go (l + 1) in
    go 0
  in
  let up = Array.make_matrix log n (-1) in
  for v = 0 to n - 1 do
    up.(0).(v) <- Rooted_tree.parent tree v
  done;
  for j = 1 to log - 1 do
    for v = 0 to n - 1 do
      let mid = up.(j - 1).(v) in
      up.(j).(v) <- (if mid < 0 then -1 else up.(j - 1).(mid))
    done
  done;
  { tree; up; log }

let ancestor_at t v steps =
  let v = ref v and steps = ref steps and j = ref 0 in
  while !steps > 0 && !v >= 0 do
    if !steps land 1 = 1 then v := t.up.(!j).(!v);
    steps := !steps lsr 1;
    incr j
  done;
  !v

let query t u v =
  let du = Rooted_tree.depth t.tree u and dv = Rooted_tree.depth t.tree v in
  let u, v = if du >= dv then (u, v) else (v, u) in
  let u = ancestor_at t u (abs (du - dv)) in
  if u = v then u
  else begin
    let u = ref u and v = ref v in
    for j = t.log - 1 downto 0 do
      if t.up.(j).(!u) <> t.up.(j).(!v) then begin
        u := t.up.(j).(!u);
        v := t.up.(j).(!v)
      end
    done;
    t.up.(0).(!u)
  end

let naive tree u v =
  let rec climb u v =
    if u = v then u
    else begin
      let du = Rooted_tree.depth tree u and dv = Rooted_tree.depth tree v in
      if du > dv then climb (Rooted_tree.parent tree u) v
      else if dv > du then climb u (Rooted_tree.parent tree v)
      else climb (Rooted_tree.parent tree u) (Rooted_tree.parent tree v)
    end
  in
  climb u v

let distance t u v =
  let a = query t u v in
  Rooted_tree.depth t.tree u + Rooted_tree.depth t.tree v
  - (2 * Rooted_tree.depth t.tree a)
